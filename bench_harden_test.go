// Flat-versus-hierarchical benchmark for the hardened-macro flow.
// `make bench-harden` runs it through benchjson into BENCH_harden.json;
// the headline ratio is harden_flat_over_hier.
package macro3d_test

import (
	"os"
	"testing"

	"macro3d"
)

// BenchmarkHardenArray composes the same 4×4 tile array two ways:
//
//   - flat: sign off one tile with the Macro-3D flow, stitch the array
//     by abutment, and re-verify the flat array with full STA over all
//     N²·|cells| instances.
//   - hier: instantiate N² hardened abstracts in the parent flow —
//     route, clock tree, and sign off against the abstracts' boundary
//     timing model only. The abstract comes from the stage cache
//     (pre-warmed once in setup), the steady state for sweeps and
//     repeated parent runs.
//
// Both paths must close timing at the tile period, so the ratio is a
// wall-clock comparison over equally signed-off arrays.
func BenchmarkHardenArray(b *testing.B) {
	const n = 4
	cfg := macro3d.FlowConfig{Piton: macro3d.TinyTile(), Seed: 5}

	b.Run("flat", func(b *testing.B) {
		t, err := macro3d.New28(6)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_, st, _, err := macro3d.RunMacro3D(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := macro3d.VerifyTileArray(cfg, st, t, n, n)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.ClosesAtTile {
				b.Fatal("flat array failed timing")
			}
		}
	})

	b.Run("hier", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "bench-harden-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		seedCache, err := macro3d.OpenStageCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		warm := cfg
		warm.Cache = seedCache
		if _, err := macro3d.Harden(warm, macro3d.HardenFlowMacro3D); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache, err := macro3d.OpenStageCache(dir)
			if err != nil {
				b.Fatal(err)
			}
			hcfg := cfg
			hcfg.Cache = cache
			b.StartTimer()
			rep, err := macro3d.RunHierArray(hcfg, macro3d.HardenFlowMacro3D, n, n)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if !rep.ClosesAtTile {
				b.Fatal("hierarchical array failed timing")
			}
			if !rep.HardenCacheHit {
				b.Fatal("hardened abstract missed the warm cache")
			}
			b.StartTimer()
		}
	})
}
