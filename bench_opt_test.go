// Optimizer micro-benchmarks: the same routed, extracted pre-opt state
// the 2D flow hands to opt.Optimize, timed with the incremental engine
// (journal rollback + dirty-cone STA updates) against the full-STA
// baseline. `make bench` runs these together with BenchmarkTableII and
// records the ns/op comparison in BENCH_opt.json.
package macro3d_test

import (
	"testing"

	"macro3d/internal/cts"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/opt"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

// buildPreOpt replicates the 2D flow up to (but excluding) the
// optimization stage: generate, floorplan, place, CTS, route, extract.
// Each call returns a fresh state, because Optimize mutates it.
func buildPreOpt(b *testing.B) *opt.Context {
	b.Helper()
	t, err := tech.New28(6)
	if err != nil {
		b.Fatal(err)
	}
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		b.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, t.RowHeight)
	if err != nil {
		b.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		b.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)
	if _, err := place.Place(d, fp, t.RowHeight, place.Options{Seed: 2}); err != nil {
		b.Fatal(err)
	}
	clk := d.Net("clk")
	src := geom.Pt(sz.Die2D.Lx, sz.Die2D.Center().Y)
	if p := d.Port("clk_i"); p != nil {
		src = p.Loc
	}
	tree := cts.Build(d, clk, src, d.Lib, t.Logic, cts.Options{})
	db := route.NewDB(sz.Die2D, t.Logic, fp.RouteBlk, route.Options{})
	routes, err := route.RouteDesign(d, db)
	if err != nil {
		b.Fatal(err)
	}
	slow := t.CornerScaleFor(tech.CornerSlow)
	ex := extract.Extract(d, routes, db, slow)
	if err := ex.CheckFinite(); err != nil {
		b.Fatal(err)
	}
	return &opt.Context{
		Clock: tree,
		FP:    fp, RowHeight: t.RowHeight,
		DDB: ddb.New(d, db, routes, ex, slow),
	}
}

func benchOptimize(b *testing.B, o opt.Options) {
	var last *opt.Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := buildPreOpt(b)
		b.StartTimer()
		res, err := opt.Optimize(ctx, sta.Options{}, o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.Iters), "iters")
		b.ReportMetric(last.Report.MinPeriod, "minPeriod_ps")
	}
}

// BenchmarkOptimizeIncremental is the production configuration:
// dirty-cone STA updates seeded from the transaction journal.
func BenchmarkOptimizeIncremental(b *testing.B) {
	benchOptimize(b, opt.Options{})
}

// BenchmarkOptimizeFull forces a from-scratch STA pass per iteration —
// the pre-refactor analysis cost on identical edit decisions (both
// configurations produce bit-identical reports; the equivalence test
// in internal/ddb asserts exactly that).
func BenchmarkOptimizeFull(b *testing.B) {
	benchOptimize(b, opt.Options{FullRecompute: true})
}
