package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"macro3d"
)

// hardenMain is the "macro3d harden" subcommand: run a sub-block flow
// to signoff, condense it into a hardened-macro abstract (boundary
// pins, per-layer obstructions, boundary timing model), and optionally
// re-instantiate it as an N×N parent-level array.
//
//	macro3d harden -config tiny -flow macro3d -resume            # harden once, cache it
//	macro3d harden -config tiny -array 4 -resume                 # warm: parent flow only
//	macro3d harden -config tiny -o tile_abstract.lef             # export the abstract LEF
//
// With a cache directory the hardened abstract is content-addressed by
// everything the sub-block signoff depends on, so sweeps and repeated
// parent runs harden each distinct configuration exactly once.
func hardenMain(args []string) int {
	fs := flag.NewFlagSet("macro3d harden", flag.ExitOnError)
	var (
		config   = fs.String("config", "tiny", "tile configuration: small, large or tiny")
		flowKind = fs.String("flow", "macro3d", "sub-block signoff flow: macro3d or 2d")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		jobs     = fs.Int("j", 0, "worker count (0 = all CPUs; results are bit-identical at any setting)")
		metals   = fs.Int("macrodiemetals", 6, "macro-die metal layers (macro3d flow)")
		array    = fs.Int("array", 0, "instantiate an N×N abstract array as the hierarchical parent flow")
		verify   = fs.Bool("verify", true, "run independent sign-off verification on the parent array")
		lefOut   = fs.String("o", "", "write the hardened abstract (pins, obstructions, timing properties) as LEF to this file")
		cacheDir = fs.String("cache-dir", "", "content-addressed cache directory: hardened abstracts are stored and reloaded by config hash")
		resume   = fs.Bool("resume", false, "shorthand for -cache-dir "+defaultCacheDir)
		cacheMax = fs.Int64("cache-max-bytes", 0, "cache byte budget with LRU eviction (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pc, err := tileConfig(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macro3d harden:", err)
		return 2
	}
	cdir := *cacheDir
	if cdir == "" && *resume {
		cdir = defaultCacheDir
	}
	var cache *macro3d.StageCache
	if cdir != "" {
		if cache, err = macro3d.OpenStageCacheLimited(cdir, *cacheMax); err != nil {
			fmt.Fprintln(os.Stderr, "macro3d harden: -cache-dir:", err)
			return 1
		}
		defer func() { printCacheSummary(cache) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := macro3d.FlowConfig{
		Piton: pc, Seed: *seed, MacroDieMetals: *metals,
		Workers: *jobs, Cache: cache, Verify: *verify && *array <= 1,
	}
	hr, err := macro3d.HardenCtx(ctx, cfg, *flowKind)
	if err != nil {
		printFailure(err)
		return 1
	}
	abs := hr.Abstract
	src := "hardened"
	if hr.CacheHit {
		src = "cache"
	}
	mdObs := 0
	for _, o := range abs.Obstructions {
		if strings.HasSuffix(o.Layer, "_MD") {
			mdObs++
		}
	}
	fmt.Printf("abstract %s (%s, %v): %.1f×%.1f µm, %d pins, %d obstructions (%d on _MD layers)\n",
		abs.Name, src, hr.Elapsed.Round(time.Millisecond), abs.Width, abs.Height,
		len(abs.Pins), len(abs.Obstructions), mdObs)
	fmt.Printf("  source flow    %s (%s)\n", abs.Abstract.SourceFlow, abs.Abstract.SourceConfig)
	fmt.Printf("  min period     %10.1f ps (%.0f MHz)\n", abs.Abstract.MinPeriodPs, 1e6/abs.Abstract.MinPeriodPs)
	fmt.Printf("  energy/cycle   %10.1f fJ\n", abs.Abstract.EnergyPerCycleFJ)
	fmt.Printf("  leakage        %10.1f µW\n", abs.Abstract.LeakageUW)
	fmt.Printf("  F2F bumps      %10d\n", abs.Abstract.F2FBumps)

	if *lefOut != "" {
		if err := writeAbstractLEF(*lefOut, abs); err != nil {
			fmt.Fprintln(os.Stderr, "macro3d harden: -o:", err)
			return 1
		}
		fmt.Printf("  abstract LEF written to %s\n", *lefOut)
	}

	if *array > 1 {
		cfg.Verify = *verify
		rep, err := macro3d.InstantiateArray(cfg, hr, *array, *array)
		if err != nil {
			printFailure(err)
			return 1
		}
		fmt.Printf("%dx%d hierarchical array (parent level %v): tile %.0f ps vs array %.0f ps — timing closes: %v\n",
			rep.Nx, rep.Ny, rep.ParentElapsed.Round(time.Millisecond),
			rep.TilePeriodPs, rep.ArrayPeriodPs, rep.ClosesAtTile)
		fmt.Printf("  stitched nets  %10d\n", rep.StitchedNets)
		fmt.Printf("  F2F bumps      %10d (incl. %d per hardened instance)\n", rep.F2FBumps, abs.Abstract.F2FBumps)
		fmt.Printf("  energy/cycle   %10.1f fJ\n", rep.EnergyPerCycleFJ)
		fmt.Printf("  power          %10.1f µW (leakage %.1f µW)\n", rep.PowerUW, rep.LeakageUW)
		if *verify {
			fmt.Println("  verification   clean")
		}
	}
	return 0
}

// writeAbstractLEF exports a single-macro library LEF carrying the
// abstract's boundary pins, obstructions and timing properties.
func writeAbstractLEF(path string, abs *macro3d.Cell) error {
	lib := macro3d.NewLibrary(abs.Name + "_lib")
	lib.Add(abs)
	f, err := createAtomic(path)
	if err != nil {
		return err
	}
	if err := macro3d.WriteLEF(f, nil, lib); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}
