package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"macro3d"
)

// traceReportMain is the "macro3d trace-report" subcommand: the
// parallelism bottleneck report of an execution trace. It either
// analyzes a trace file previously written with -trace (or by the
// daemon's -trace-dir) or runs a flow with an in-memory tracer and
// reports on it directly.
//
//	macro3d trace-report -in route.trace.json
//	macro3d trace-report -flow macro3d -config tiny -j 4 -top 10
//
// The report lists, per engine phase, worker occupancy, serial
// fraction, critical path and the Amdahl speedup ceiling, followed by
// the top serial segments ranked by wall-clock share — the places
// where adding workers cannot help.
func traceReportMain(args []string) int {
	fs := flag.NewFlagSet("macro3d trace-report", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "analyze this Chrome trace-event JSON file (written by -trace or serve -trace-dir)")
		flow    = fs.String("flow", "", "run this flow with tracing and report on it: 2d, macro3d, s2d, bfs2d, c2d")
		config  = fs.String("config", "small", "tile configuration for -flow: small, large or tiny")
		seed    = fs.Uint64("seed", 1, "deterministic seed for -flow")
		jobs    = fs.Int("j", 0, "worker count for -flow (0 = all CPUs)")
		metals  = fs.Int("macrodiemetals", 6, "macro-die metal layers (3D flows)")
		out     = fs.String("out", "", "with -flow: also write the recorded trace to this file")
		top     = fs.Int("top", 10, "serial segments to list")
		timeout = fs.Duration("timeout", 0, "with -flow: cancel the run after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*in == "") == (*flow == "") {
		fmt.Fprintln(os.Stderr, "macro3d trace-report: exactly one of -in or -flow is required")
		fs.Usage()
		return 2
	}

	var tr *macro3d.ExecTracer
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macro3d trace-report: -in:", err)
			return 1
		}
		tr, err = macro3d.ReadExecTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "macro3d trace-report: -in:", err)
			return 1
		}
	} else {
		pc, err := tileConfig(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macro3d trace-report:", err)
			return 2
		}
		tr = macro3d.NewExecTracer()
		cfg := macro3d.FlowConfig{Piton: pc, Seed: *seed, MacroDieMetals: *metals, Workers: *jobs, Trace: tr}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		start := time.Now()
		switch *flow {
		case "2d":
			_, _, err = macro3d.Run2DCtx(ctx, cfg)
		case "macro3d":
			_, _, _, err = macro3d.RunMacro3DCtx(ctx, cfg)
		case "s2d":
			_, _, err = macro3d.RunS2DCtx(ctx, cfg, false)
		case "bfs2d":
			_, _, err = macro3d.RunS2DCtx(ctx, cfg, true)
		case "c2d":
			_, _, err = macro3d.RunC2DCtx(ctx, cfg)
		default:
			fmt.Fprintf(os.Stderr, "macro3d trace-report: unknown flow %q\n", *flow)
			return 2
		}
		if err != nil {
			printFailure(err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "macro3d trace-report: %s/%s completed in %v\n",
			*flow, *config, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			f, err := createAtomic(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "macro3d trace-report: -out:", err)
				return 1
			}
			if err := tr.WriteChrome(f); err != nil {
				f.Abort()
				fmt.Fprintln(os.Stderr, "macro3d trace-report: -out:", err)
				return 1
			}
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "macro3d trace-report: -out:", err)
				return 1
			}
		}
	}

	fmt.Print(macro3d.AnalyzeExecTrace(tr).Format(*top))
	return 0
}
