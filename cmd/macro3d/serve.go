package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"macro3d/internal/serve"
	"macro3d/internal/stash"
)

// serveMain is the "macro3d serve" daemon: a JSON-over-HTTP job API
// (submit, status, cancel, event streaming) in front of a bounded
// worker pool, with every job sharing one content-addressed stage
// cache so concurrent tenants warm each other's runs.
//
//	macro3d serve -addr 127.0.0.1:8080 -workers 4 -queue 32 \
//	  -cache-dir /tmp/stash -cache-max-bytes 268435456
//
// SIGINT/SIGTERM drains: admission stops, queued and running jobs get
// -drain-timeout to finish, stragglers are canceled and abandoned past
// the deadline. The exit status is 0 on a clean drain.
func serveMain(args []string) int {
	fs := flag.NewFlagSet("macro3d serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers      = fs.Int("workers", 2, "job worker pool size")
		queue        = fs.Int("queue", 16, "admission queue depth; submissions beyond it are rejected with 429")
		jobTimeout   = fs.Duration("job-timeout", 10*time.Minute, "per-job wall-clock ceiling")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "on shutdown: how long queued and running jobs may finish before being canceled")
		cacheDir     = fs.String("cache-dir", "", "shared content-addressed stage cache directory (empty = caching off)")
		cacheMax     = fs.Int64("cache-max-bytes", 0, "stage cache byte budget with LRU eviction (0 = unlimited)")
		cacheVerify  = fs.Bool("cache-verify", false, "paranoia mode: re-run cached stages and fail on snapshot mismatch")
		allowFaults  = fs.Bool("allow-faults", false, "honour fault-injection fields in job specs (testing only)")
		traceDir     = fs.String("trace-dir", "", "write per-job execution traces (<jobid>.trace.json) and the server scheduling trace (serve.trace.json) to this directory as Chrome trace-event JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cache *stash.Store
	if *cacheDir != "" {
		var err error
		if cache, err = stash.OpenLimited(*cacheDir, *cacheMax); err != nil {
			fmt.Fprintln(os.Stderr, "macro3d serve: -cache-dir:", err)
			return 1
		}
	}

	srv := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		Cache:       cache,
		CacheVerify: *cacheVerify,
		AllowFaults: *allowFaults,
		TraceDir:    *traceDir,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macro3d serve: listen:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	// The smoke script parses this line to find the bound port.
	fmt.Fprintf(os.Stderr, "macro3d serve: listening at http://%s (POST /jobs)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "macro3d serve: draining...")

	code := 0
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "macro3d serve:", err)
		code = 1
	}
	httpCtx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		_ = httpSrv.Close()
	}

	if cache != nil {
		st := cache.Stats()
		total, max := cache.Usage()
		fmt.Fprintf(os.Stderr, "macro3d serve: stage cache %s: %d hits, %d misses, %d stored, %d dup puts, %d evicted, %d B used (cap %d)\n",
			cache.Dir(), st.Hits, st.Misses, st.Puts, st.DupPuts, st.Evictions, total, max)
	}
	fmt.Fprintln(os.Stderr, "macro3d serve: stopped")
	return code
}
