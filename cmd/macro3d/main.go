// Command macro3d runs the physical-design flows and the paper's
// experiments from the command line.
//
// Usage:
//
//	macro3d -flow 2d|macro3d|s2d|bfs2d|c2d [-config small|large] [-seed N]
//	macro3d -experiment table1|table2|table3|isoperf|flowtrace [-seed N]
//	macro3d -experiment table1 -timeout 2m -keep-going
//	macro3d -experiment table2 -cpuprofile cpu.prof -memprofile mem.prof
//	macro3d -experiment table1 -cache-dir /tmp/stash   # populate, then re-run to resume
//	macro3d -flow macro3d -resume                      # cache under .macro3d-stash
//
// -timeout bounds the whole invocation (flows are cancelled at the
// next stage boundary); -keep-going lets multi-column experiments
// print the surviving columns when one flow fails. On a flow failure
// the stage diagnostics (flow, stage, seed, attempt, cause) are
// printed to stderr and the exit status is non-zero.
//
// -cache-dir enables the content-addressed stage cache: completed
// place/route/sign-off stages are snapshotted, and a later run with
// the same inputs restores them instead of recomputing (results are
// bit-identical either way). -resume is shorthand that defaults the
// directory to .macro3d-stash; -cache-verify re-runs cached stages
// and fails if the snapshot does not match bit-for-bit.
//
// -cpuprofile and -memprofile write runtime/pprof profiles covering the
// whole run (the memory profile is a heap snapshot taken at exit, after
// a final GC). Inspect them with `go tool pprof`. All file outputs
// (-events, -metrics-out, profiles) are written to a temporary file in
// the destination directory and renamed into place on success, so a
// crashed or failed write never leaves a truncated file behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"macro3d"
)

// defaultCacheDir is where -resume keeps snapshots when -cache-dir is
// not given.
const defaultCacheDir = ".macro3d-stash"

func main() {
	// "macro3d serve" is the daemon mode: a JSON-over-HTTP job API in
	// front of a bounded worker pool sharing one stage cache.
	if len(os.Args) >= 2 && os.Args[1] == "serve" {
		os.Exit(serveMain(os.Args[2:]))
	}
	// "macro3d harden" hardens a sub-block into a reusable abstract
	// and optionally instantiates it as a hierarchical array.
	if len(os.Args) >= 2 && os.Args[1] == "harden" {
		os.Exit(hardenMain(os.Args[2:]))
	}
	// "macro3d trace-report" analyzes an execution trace (or records
	// one) and prints the parallelism bottleneck report.
	if len(os.Args) >= 2 && os.Args[1] == "trace-report" {
		os.Exit(traceReportMain(os.Args[2:]))
	}
	// Cleanups (profile flushes, event-stream commits) must run even on
	// a failing exit, so the exit status is decided after realMain
	// returns.
	os.Exit(realMain())
}

// atomicFile writes to a temporary file next to the destination and
// renames it into place on Commit, so readers never observe a partial
// file and a failed run never clobbers a previous good output.
type atomicFile struct {
	*os.File
	path string
	done bool
}

func createAtomic(path string) (*atomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, err
	}
	return &atomicFile{File: f, path: path}, nil
}

// Commit syncs, closes and renames the temporary file onto the
// destination. Any failure removes the temporary file.
func (a *atomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	err := a.File.Sync()
	if cerr := a.File.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(a.File.Name())
		return err
	}
	if err := os.Rename(a.File.Name(), a.path); err != nil {
		os.Remove(a.File.Name())
		return err
	}
	return nil
}

// Abort discards the temporary file, leaving any previous destination
// file untouched.
func (a *atomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.File.Close()
	os.Remove(a.File.Name())
}

// cleanup is one teardown step; errors surface on stderr and force a
// non-zero exit.
type cleanup struct {
	name string
	fn   func() error
}

func realMain() (code int) {
	var (
		flow          = flag.String("flow", "", "run one flow: 2d, macro3d, s2d, bfs2d, c2d")
		experiment    = flag.String("experiment", "", "run an experiment: table1, table2, table3, isoperf, flowtrace, sweepblockage, sweeppitch, heterotech")
		config        = flag.String("config", "small", "tile configuration: small, large or tiny")
		seed          = flag.Uint64("seed", 1, "deterministic seed")
		jobs          = flag.Int("j", 0, "routing/placement worker count (0 = all CPUs, 1 = serial; results are bit-identical at any setting)")
		metals        = flag.Int("macrodiemetals", 6, "macro-die metal layers (3D flows)")
		array         = flag.Int("array", 0, "after -flow 2d/macro3d: verify an N×N abutted tile array")
		timeout       = flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
		keepGoing     = flag.Bool("keep-going", false, "in table experiments, skip failed columns and print the partial table")
		cacheDir      = flag.String("cache-dir", "", "content-addressed stage cache directory: snapshots of completed stages skip recomputation on later runs")
		resume        = flag.Bool("resume", false, "resume from cached stage snapshots (implies -cache-dir "+defaultCacheDir+" when unset)")
		cacheVerify   = flag.Bool("cache-verify", false, "paranoia mode: re-run cached stages and fail unless the snapshot matches bit-for-bit")
		cacheMax      = flag.Int64("cache-max-bytes", 0, "stage cache byte budget: evict least-recently-used snapshots to stay under this size (0 = unlimited)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		events        = flag.String("events", "", "write the observability JSONL event stream (spans, metric samples, fault tags) to this file")
		obsAddr       = flag.String("obs-addr", "", "serve live observability endpoints (/metrics, /metrics.json, /debug/vars, /debug/pprof/) on this address, e.g. :9090 or 127.0.0.1:0")
		metricsOut    = flag.String("metrics-out", "", "write a final Prometheus text snapshot of the run's metrics to this file")
		obsLinger     = flag.Duration("obs-linger", 0, "with -obs-addr: keep serving this long after a successful run (live inspection, smoke tests)")
		traceOut      = flag.String("trace", "", "record the engines' per-worker execution timeline and write it as Chrome trace-event JSON (Perfetto / chrome://tracing; analyze with 'macro3d trace-report -in')")
		fastRoute     = flag.Bool("fast-route", false, "region-sharded router and banded legalizer: deterministic at any -j but NOT bit-identical to the default engines; PPA stays within the bounds documented in DESIGN.md §15")
		fastVerify    = flag.Bool("fast-route-verify", false, "with -fast-route: re-route serially with the default engine and fail unless the fast result is within the documented wirelength/overflow bounds")
		analyticPlace = flag.Bool("analytic-place", false, "electrostatics-style analytical global placer (WA wirelength + Poisson density, die-aware F2F-bump weighting): deterministic at any -j but NOT bit-identical to the default quadratic placer; HPWL no worse on the reference tiles (DESIGN.md §16)")
	)
	flag.Parse()

	if *flow == "" && *experiment == "" {
		flag.Usage()
		return 2
	}

	// Cleanups run last-registered-first on every exit path, so a
	// failing run still flushes profiles, commits the event stream and
	// writes the metrics snapshot; a cleanup failure itself makes the
	// exit status non-zero.
	var cleanups []cleanup
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			if err := cleanups[i].fn(); err != nil {
				fmt.Fprintf(os.Stderr, "macro3d: %s: %v\n", cleanups[i].name, err)
				if code == 0 {
					code = 1
				}
			}
		}
	}()

	if *cpuProfile != "" {
		f, err := createAtomic(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macro3d: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			fmt.Fprintln(os.Stderr, "macro3d: -cpuprofile:", err)
			return 1
		}
		cleanups = append(cleanups, cleanup{"-cpuprofile", func() error {
			pprof.StopCPUProfile()
			return f.Commit()
		}})
	}
	if *memProfile != "" {
		path := *memProfile
		cleanups = append(cleanups, cleanup{"-memprofile", func() error {
			f, err := createAtomic(path)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Abort()
				return err
			}
			return f.Commit()
		}})
	}

	// Any observability flag turns recording on; with all of them off
	// rec stays nil and the flows run with observability disabled (the
	// zero-overhead default — results are byte-identical either way).
	var rec *macro3d.ObsRecorder
	if *events != "" || *obsAddr != "" || *metricsOut != "" {
		rec = macro3d.NewObsRecorder()
	}
	if *events != "" {
		f, err := createAtomic(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macro3d: -events:", err)
			return 1
		}
		rec.SetSink(f)
		cleanups = append(cleanups, cleanup{"-events", func() error {
			// A cleanly flushed stream is committed even when the run
			// failed (its events are the diagnostics); a flush error
			// discards the temp file and fails the invocation.
			if err := rec.Close(); err != nil {
				f.Abort()
				return err
			}
			return f.Commit()
		}})
	}
	if *metricsOut != "" {
		path := *metricsOut
		cleanups = append(cleanups, cleanup{"-metrics-out", func() error {
			f, err := createAtomic(path)
			if err != nil {
				return err
			}
			if err := rec.Registry().WritePrometheus(f); err != nil {
				f.Abort()
				return err
			}
			return f.Commit()
		}})
	}
	// Like observability, tracing is off (nil, near-zero overhead) by
	// default; results are byte-identical with it on.
	var tracer *macro3d.ExecTracer
	if *traceOut != "" {
		tracer = macro3d.NewExecTracer()
		path := *traceOut
		cleanups = append(cleanups, cleanup{"-trace", func() error {
			f, err := createAtomic(path)
			if err != nil {
				return err
			}
			if err := tracer.WriteChrome(f); err != nil {
				f.Abort()
				return err
			}
			return f.Commit()
		}})
	}
	var obsSrv *macro3d.ObsServer
	if *obsAddr != "" {
		srv, err := rec.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macro3d: -obs-addr:", err)
			return 1
		}
		obsSrv = srv
		cleanups = append(cleanups, cleanup{"-obs-addr", obsSrv.Close})
		fmt.Fprintf(os.Stderr, "macro3d: observability endpoint at %s/metrics (also /metrics.json, /debug/vars, /debug/pprof/)\n", obsSrv.URL())
	}

	cdir := *cacheDir
	if cdir == "" && *resume {
		cdir = defaultCacheDir
	}
	if *cacheVerify && cdir == "" {
		fmt.Fprintln(os.Stderr, "macro3d: -cache-verify needs -cache-dir or -resume")
		return 2
	}
	var cache *macro3d.StageCache
	if cdir != "" {
		var err error
		if cache, err = macro3d.OpenStageCacheLimited(cdir, *cacheMax); err != nil {
			fmt.Fprintln(os.Stderr, "macro3d: -cache-dir:", err)
			return 1
		}
		cleanups = append(cleanups, cleanup{"stage cache", func() error {
			printCacheSummary(cache)
			return nil
		}})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *flow, *experiment, *config, *seed, *jobs, *metals, *array, *keepGoing, rec, tracer, cache, *cacheVerify, *fastRoute, *fastVerify, *analyticPlace); err != nil {
		printFailure(err)
		return 1
	}
	if obsSrv != nil && *obsLinger > 0 {
		fmt.Fprintf(os.Stderr, "macro3d: run complete; serving observability for %v (Ctrl-C to stop)\n", *obsLinger)
		select {
		case <-ctx.Done():
		case <-time.After(*obsLinger):
		}
	}
	return 0
}

// printCacheSummary renders one run's cache traffic, including the
// duplicate-put races a shared cache absorbs and the hardened-abstract
// lookups (a harden hit skips an entire sub-block signoff).
func printCacheSummary(cache *macro3d.StageCache) {
	s := cache.Stats()
	fmt.Fprintf(os.Stderr, "macro3d: stage cache %s: %d hits, %d misses, %d stored (%d dup), %d evicted, %d errors, %d B read, %d B written\n",
		cache.Dir(), s.Hits, s.Misses, s.Puts, s.DupPuts, s.Evictions, s.Errors, s.BytesRead, s.BytesWritten)
	if s.HardenHits+s.HardenMisses > 0 {
		fmt.Fprintf(os.Stderr, "macro3d: hardened abstracts: %d cache hits, %d hardened fresh\n",
			s.HardenHits, s.HardenMisses)
	}
}

// printFailure renders a flow failure: StageError diagnostics when the
// error chain carries one, a plain message otherwise.
func printFailure(err error) {
	var se *macro3d.StageError
	if !errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, "macro3d:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "macro3d: flow failed")
	fmt.Fprintf(os.Stderr, "  flow    %s\n", se.Flow)
	fmt.Fprintf(os.Stderr, "  stage   %s\n", se.Stage)
	fmt.Fprintf(os.Stderr, "  seed    %d (attempt %d)\n", se.Seed, se.Attempt)
	if se.Config != "" {
		fmt.Fprintf(os.Stderr, "  config  %s\n", se.Config)
	}
	fmt.Fprintf(os.Stderr, "  cause   %v\n", se.Cause)
	var pe *macro3d.PanicError
	if errors.As(se.Cause, &pe) && len(pe.Stack) > 0 {
		fmt.Fprintf(os.Stderr, "  stack:\n%s\n", pe.Stack)
	}
	fmt.Fprintf(os.Stderr, "  (full error: %v)\n", err)
}

func tileConfig(name string) (macro3d.TileConfig, error) {
	switch name {
	case "small":
		return macro3d.SmallCache(), nil
	case "large":
		return macro3d.LargeCache(), nil
	case "tiny":
		return macro3d.TinyTile(), nil
	}
	return macro3d.TileConfig{}, fmt.Errorf("unknown config %q (want small, large or tiny)", name)
}

func run(ctx context.Context, flow, experiment, config string, seed uint64, jobs, metals, array int, keepGoing bool, rec *macro3d.ObsRecorder, tracer *macro3d.ExecTracer, cache *macro3d.StageCache, cacheVerify, fastRoute, fastVerify, analyticPlace bool) error {
	pc, err := tileConfig(config)
	if err != nil {
		return err
	}
	cfg := macro3d.FlowConfig{Piton: pc, Seed: seed, MacroDieMetals: metals, Obs: rec, Trace: tracer, Workers: jobs, Cache: cache, CacheVerify: cacheVerify,
		FastRoute: fastRoute, FastRouteVerify: fastVerify, AnalyticPlace: analyticPlace}

	if flow != "" {
		var ppa *macro3d.PPA
		var st *macro3d.FlowState
		switch flow {
		case "2d":
			ppa, st, err = macro3d.Run2DCtx(ctx, cfg)
		case "macro3d":
			ppa, st, _, err = macro3d.RunMacro3DCtx(ctx, cfg)
		case "s2d":
			ppa, _, err = macro3d.RunS2DCtx(ctx, cfg, false)
		case "bfs2d":
			ppa, _, err = macro3d.RunS2DCtx(ctx, cfg, true)
		case "c2d":
			ppa, _, err = macro3d.RunC2DCtx(ctx, cfg)
		default:
			return fmt.Errorf("unknown flow %q", flow)
		}
		if err != nil {
			return err
		}
		printPPA(ppa)
		if array > 1 {
			if st == nil {
				return fmt.Errorf("-array requires -flow 2d or macro3d")
			}
			t, err := macro3d.New28(6)
			if err != nil {
				return err
			}
			rep, err := macro3d.VerifyTileArray(cfg, st, t, array, array)
			if err != nil {
				return err
			}
			fmt.Printf("%dx%d array: tile %.0f ps vs array %.0f ps — timing closes: %v (%d stitched nets, %d bumps)\n",
				rep.Nx, rep.Ny, rep.TilePeriod, rep.ArrayPeriod, rep.ClosesAtTile, rep.StitchedNets, rep.F2FBumps)
		}
	}

	// Experiments pick their own tiles per column; the shared config
	// carries the seed, the hardening knobs and the stage cache.
	ecfg := macro3d.FlowConfig{Seed: seed, Obs: rec, Trace: tracer, Workers: jobs, Cache: cache, CacheVerify: cacheVerify,
		FastRoute: fastRoute, FastRouteVerify: fastVerify, AnalyticPlace: analyticPlace}

	// Table experiments return the partial table alongside the error,
	// so in keep-going mode the surviving columns still print before
	// the failure diagnostics.
	printPartial := func(format func() string, err error) error {
		if err == nil || keepGoing {
			fmt.Print(format())
		}
		return err
	}

	switch experiment {
	case "":
	case "table1":
		t, err := macro3d.RunTableIWith(ctx, ecfg, keepGoing)
		if err := printPartial(t.Format, err); err != nil {
			return err
		}
	case "table2":
		tcfg := ecfg
		tcfg.MacroDieMetals = metals
		t, err := macro3d.RunTableIIWith(ctx, tcfg, keepGoing)
		if err := printPartial(t.Format, err); err != nil {
			return err
		}
	case "table3":
		t, err := macro3d.RunTableIIIWith(ctx, ecfg, keepGoing)
		if err := printPartial(t.Format, err); err != nil {
			return err
		}
	case "isoperf":
		for _, pc := range []macro3d.TileConfig{macro3d.SmallCache(), macro3d.LargeCache()} {
			icfg := ecfg
			icfg.Piton = pc
			r, err := macro3d.RunIsoPerfWith(ctx, icfg)
			if err != nil {
				return err
			}
			fmt.Print(r.Format())
		}
	case "flowtrace":
		return flowTrace(ctx, cfg)
	case "sweepblockage":
		sw, err := macro3d.RunBlockageSweepWith(ctx, ecfg, nil, keepGoing)
		if err := printPartial(sw.Format, err); err != nil {
			return err
		}
	case "sweeppitch":
		sw, err := macro3d.RunPitchSweepWith(ctx, ecfg, nil, keepGoing)
		if err := printPartial(sw.Format, err); err != nil {
			return err
		}
	case "heterotech":
		sw, err := macro3d.RunHeteroTechSweepWith(ctx, ecfg, keepGoing)
		if err := printPartial(sw.Format, err); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

func printPPA(p *macro3d.PPA) {
	fmt.Println(p)
	fmt.Printf("  min period     %10.1f ps\n", p.MinPeriodPs)
	fmt.Printf("  power          %10.1f µW\n", p.PowerUW)
	fmt.Printf("  logic cells    %10.3f mm²\n", p.LogicCellAreaMM2)
	fmt.Printf("  metal area     %10.1f mm²\n", p.MetalAreaMM2)
	fmt.Printf("  Cpin / Cwire   %7.3f / %.3f nF\n", p.CpinNF, p.CwireNF)
	fmt.Printf("  clk skew       %10.1f ps (depth %d)\n", p.ClkSkewPs, p.ClkDepth)
	fmt.Printf("  crit path      %10.1f ps over %.2f mm\n", p.CritPathPs, p.CritPathWLmm)
	fmt.Printf("  route overflow %10d gcell-layers\n", p.RouteOverflow)
	fmt.Printf("  opt edits      %6d resized, %d buffers\n", p.Resized, p.Buffers)
}

// flowTrace regenerates Fig. 2: the Macro-3D flow's stages with the
// live statistics of each step.
func flowTrace(ctx context.Context, cfg macro3d.FlowConfig) error {
	fmt.Println("Macro-3D flow trace (paper Fig. 2):")
	fmt.Println(" step 1: per-die floorplans — macros placed on the macro die")
	ppa, st, md, err := macro3d.RunMacro3DCtx(ctx, cfg)
	if err != nil {
		return err
	}
	stats := st.Design.ComputeStats()
	fmt.Printf("   macros %d (substrate footprint after edit %.4f mm² — shrunk to filler), logic cells %d (%.2f mm²), die %.2f mm²\n",
		stats.NumMacros, stats.MacroArea/1e6, stats.NumStdCells, stats.StdCellArea/1e6,
		st.Die.Area()/1e6)
	fmt.Println(" step 2: combined BEOL + edited macro abstracts")
	fmt.Printf("   stack: %v\n", md.Combined)
	fmt.Printf("   edited macros: %d (pins remapped to _MD, footprint shrunk to filler)\n", md.EditedMacros)
	fmt.Println(" step 3: single-pass 2D P&R over the combined stack")
	fmt.Printf("   routed %.2f m, %d F2F bumps, overflow %d\n",
		ppa.TotalWLm, ppa.F2FBumps, ppa.RouteOverflow)
	fmt.Println(" step 4: separation into production layouts")
	logic, macro, err := macro3d.SeparateDies(md, st)
	if err != nil {
		return err
	}
	fmt.Printf("   logic die: %d cells, layers %v\n", logic.StdCells, logic.Layers)
	fmt.Printf("   macro die: %d macros, layers %v\n", macro.Macros, macro.Layers)
	fmt.Printf("   shared F2F bumps: %d\n", len(logic.Bumps))
	fmt.Println(" sign-off (valid for the 3D stack by construction):")
	printPPA(ppa)
	return nil
}
