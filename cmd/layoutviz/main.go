// Command layoutviz renders the paper's figures as SVG files (plus an
// ASCII preview on stdout):
//
//	-fig 1: 2D vs MoL stack cross sections
//	-fig 4: memory-macro floorplans of the 2D and MoL designs
//	-fig 5: final placed-and-routed 2D layout
//	-fig 6: separated MoL dies with F2F bumps
//	-fig 7: hierarchical parent array of hardened-macro abstracts with
//	        their dashed boundaries and per-layer routing obstructions
//	        (logic-die layers blue, _MD macro-die layers red)
//
// Usage:
//
//	layoutviz -fig 1|4|5|6|7 [-config tiny|small|large] [-o DIR] [-seed N] [-array N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"macro3d"
	"macro3d/internal/netlist"
)

func main() {
	var (
		fig    = flag.Int("fig", 4, "paper figure to regenerate: 1, 4, 5, 6 or 7")
		config = flag.String("config", "small", "tile configuration: tiny, small or large")
		out    = flag.String("o", ".", "output directory for SVG files")
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		array  = flag.Int("array", 3, "abstract array size for -fig 7 (N×N)")
	)
	flag.Parse()
	if err := run(*fig, *config, *out, *seed, *array); err != nil {
		fmt.Fprintln(os.Stderr, "layoutviz:", err)
		os.Exit(1)
	}
}

func run(fig int, config, out string, seed uint64, array int) error {
	var pc macro3d.TileConfig
	switch config {
	case "tiny":
		pc = macro3d.TinyTile()
	case "small":
		pc = macro3d.SmallCache()
	case "large":
		pc = macro3d.LargeCache()
	default:
		return fmt.Errorf("unknown config %q", config)
	}
	cfg := macro3d.FlowConfig{Piton: pc, Seed: seed}
	write := func(name, svg string) error {
		path := filepath.Join(out, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	switch fig {
	case 1:
		if err := write("fig1_2d_cross.svg", macro3d.CrossSectionSVG(6, 0, false)); err != nil {
			return err
		}
		return write("fig1_mol_cross.svg", macro3d.CrossSectionSVG(6, 6, true))

	case 4:
		// Macro floorplans only (no cells): 2D periphery ring and the
		// MoL macro die.
		_, st2d, err := macro3d.Run2D(cfg)
		if err != nil {
			return err
		}
		if err := write("fig4_2d_floorplan_"+config+".svg",
			macro3d.LayoutSVG(st2d.Design, st2d.Die, macro3d.VizOptions{
				Title: "2D macro floorplan (" + config + ")", ShowPorts: true,
			})); err != nil {
			return err
		}
		_, st3d, _, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			return err
		}
		md := netlist.MacroDie
		return write("fig4_mol_floorplan_"+config+".svg",
			macro3d.LayoutSVG(st3d.Design, st3d.Die, macro3d.VizOptions{
				Title: "MoL macro-die floorplan (" + config + ")", DieFilter: &md,
			}))

	case 5:
		_, st, err := macro3d.Run2D(cfg)
		if err != nil {
			return err
		}
		fmt.Print(macro3d.ASCIIDensity(st.Design, st.Die, 72, nil))
		return write("fig5_2d_layout_"+config+".svg",
			macro3d.LayoutSVG(st.Design, st.Die, macro3d.VizOptions{
				Title: "final 2D layout (" + config + ")", ShowCells: true, ShowPorts: true,
			}))

	case 6:
		_, st, mol, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			return err
		}
		logic, macroD, err := macro3d.SeparateDies(mol, st)
		if err != nil {
			return err
		}
		// GDSII production streams alongside the SVGs.
		for _, part := range []*macro3d.DieLayout{logic, macroD} {
			path := filepath.Join(out, part.Name+".gds")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := macro3d.WriteGDS(f, st, part); err != nil {
				f.Close()
				return err
			}
			f.Close()
			fmt.Println("wrote", path)
		}
		ld := netlist.LogicDie
		if err := write("fig6_mol_logic_die_"+config+".svg",
			macro3d.LayoutSVG(st.Design, st.Die, macro3d.VizOptions{
				Title:     fmt.Sprintf("MoL logic die (%s) — %d bumps", config, len(logic.Bumps)),
				ShowCells: true, DieFilter: &ld, Bumps: logic.Bumps, ShowPorts: true,
			})); err != nil {
			return err
		}
		mdie := netlist.MacroDie
		fmt.Print(macro3d.ASCIIDensity(st.Design, st.Die, 72, &ld))
		return write("fig6_mol_macro_die_"+config+".svg",
			macro3d.LayoutSVG(st.Design, st.Die, macro3d.VizOptions{
				Title:     fmt.Sprintf("MoL macro die (%s) — %d bumps", config, len(macroD.Bumps)),
				DieFilter: &mdie, Bumps: macroD.Bumps,
			}))

	case 7:
		if array < 2 {
			array = 2
		}
		rep, err := macro3d.RunHierArray(cfg, macro3d.HardenFlowMacro3D, array, array)
		if err != nil {
			return err
		}
		mdObs := 0
		for _, inst := range rep.Design.Macros() {
			if inst.Master.Abstract == nil {
				continue
			}
			for _, ob := range inst.Master.Obstructions {
				if len(ob.Layer) > 3 && ob.Layer[len(ob.Layer)-3:] == "_MD" {
					mdObs++
				}
			}
		}
		fmt.Print(macro3d.ASCIIDensity(rep.Design, rep.Die, 72, nil))
		return write(fmt.Sprintf("fig7_hier_array_%s_%dx%d.svg", config, array, array),
			macro3d.LayoutSVG(rep.Design, rep.Die, macro3d.VizOptions{
				Title: fmt.Sprintf("hierarchical %d×%d array of %s (%d _MD obstructions/instance total %d)",
					array, array, rep.Abstract.Name, mdObs/(array*array), mdObs),
				ShowObstructions: true, ShowPorts: true,
			}))
	}
	return fmt.Errorf("unknown figure %d (want 1, 4, 5, 6 or 7)", fig)
}
