package main

import (
	"math"
	"testing"
)

func ent(runs ...float64) *entry {
	e := &entry{Name: "b", Runs: runs, Metrics: map[string]float64{}}
	e.finalize()
	return e
}

// A single run — the `-count 1` common case — must yield clean zeros
// for the spread statistics, never NaN or Inf.
func TestFinalizeSingleRun(t *testing.T) {
	e := ent(100)
	if e.RunsCount != 1 || e.MeanNsOp != 100 || e.BestNsOp != 100 {
		t.Fatalf("basic stats wrong: %+v", e)
	}
	for _, v := range []float64{e.StddevNs, e.CV, e.ci()} {
		if v != 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("n=1 spread stat not a clean zero: stddev=%v cv=%v ci=%v",
				e.StddevNs, e.CV, e.ci())
		}
	}
}

func TestFinalizeMultiRun(t *testing.T) {
	e := ent(90, 110, 100)
	if e.MeanNsOp != 100 || e.BestNsOp != 90 {
		t.Fatalf("mean/best: %v/%v", e.MeanNsOp, e.BestNsOp)
	}
	if math.Abs(e.StddevNs-10) > 1e-9 {
		t.Fatalf("sample stddev = %v, want 10", e.StddevNs)
	}
	if math.Abs(e.CV-0.1) > 1e-9 {
		t.Fatalf("cv = %v, want 0.1", e.CV)
	}
	if e.ci() <= 0 {
		t.Fatalf("ci = %v, want positive with 3 runs", e.ci())
	}
}

// A zero mean (degenerate input) must leave CV at zero, not NaN.
func TestFinalizeZeroMean(t *testing.T) {
	e := ent(0, 0)
	if e.CV != 0 || math.IsNaN(e.CV) {
		t.Fatalf("zero-mean cv = %v", e.CV)
	}
}

func TestFinalizeEmpty(t *testing.T) {
	e := &entry{Name: "b"}
	e.finalize()
	if e.RunsCount != 0 || e.MeanNsOp != 0 || math.IsNaN(e.MeanNsOp) {
		t.Fatalf("empty entry: %+v", e)
	}
}

// A zero-mean denominator yields no pair at all — the old code put
// ±Inf in the ratio.
func TestPairZeroDenominator(t *testing.T) {
	if p := pair(ent(100), ent(0)); p != nil {
		t.Fatalf("pair against zero mean = %+v, want nil", p)
	}
}

// Two single-run entries with identical means must not be flagged as
// noise: with n=1 there is no spread to overlap, and the documented
// contract is to trust the point estimate. The old overlap test
// degenerated to mean-equality and returned Noise=true here.
func TestPairSingleRunNeverNoise(t *testing.T) {
	p := pair(ent(100), ent(100))
	if p == nil {
		t.Fatal("pair = nil")
	}
	if p.Noise {
		t.Fatal("n=1 pair flagged as noise")
	}
	if p.Ratio != 1 || p.BestRatio != 1 {
		t.Fatalf("ratios: %v / %v", p.Ratio, p.BestRatio)
	}
}

// With real spreads the overlap verdict still fires both ways.
func TestPairNoiseVerdict(t *testing.T) {
	overlapping := pair(ent(95, 105), ent(96, 106))
	if overlapping == nil || !overlapping.Noise {
		t.Fatalf("overlapping CIs not flagged: %+v", overlapping)
	}
	distinct := pair(ent(200, 201), ent(100, 101))
	if distinct == nil || distinct.Noise {
		t.Fatalf("well-separated CIs flagged as noise: %+v", distinct)
	}
	if math.Abs(distinct.Ratio-2.0) > 0.02 {
		t.Fatalf("ratio = %v, want ~2", distinct.Ratio)
	}
}
