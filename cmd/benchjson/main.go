// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary on stdout. `make bench` pipes the
// optimizer benchmarks through it to produce BENCH_opt.json, so the
// incremental-vs-full comparison is recorded alongside the repo.
//
// Usage:
//
//	go test -bench 'TableII|Optimize' -count 5 -run '^$' . | benchjson
//	go test -bench StashSweep -run '^$' . | benchjson -o BENCH_stash.json
//
// With -o the summary is written to the file via a same-directory
// temporary and an atomic rename, so a failed run never leaves a
// truncated JSON behind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// line shape: BenchmarkName-8   3   123456789 ns/op   12 extra/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)
var metricRe = regexp.MustCompile(`([0-9.e+-]+) (\S+)`)

type entry struct {
	Name      string             `json:"name"`
	Runs      []float64          `json:"ns_per_op"`
	MeanNsOp  float64            `json:"mean_ns_per_op"`
	BestNsOp  float64            `json:"best_ns_per_op"`
	StddevNs  float64            `json:"stddev_ns_per_op"` // sample stddev; 0 with <2 runs
	CV        float64            `json:"cv"`               // stddev/mean — run-to-run noise level
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	RunsCount int                `json:"runs"`
}

// pairStats qualifies one speedup ratio. Ratio compares the means;
// Noise reports whether the two sides' ~95% confidence intervals
// (mean ± 1.96·stddev/√n) overlap — an overlapping pair means the
// measured difference is not distinguishable from run-to-run variance,
// so the ratio should be read as ~1× regardless of its nominal value.
type pairStats struct {
	Ratio     float64 `json:"ratio"`
	BestRatio float64 `json:"best_ratio"` // best-over-best, noise floor
	Noise     bool    `json:"noise"`
	NumCV     float64 `json:"numerator_cv"`
	DenCV     float64 `json:"denominator_cv"`
}

type summary struct {
	Benchmarks []*entry           `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`

	// SpeedupStats carries, per Speedup key, the confidence view of the
	// same ratio: is it real or inside the noise band?
	SpeedupStats map[string]*pairStats `json:"speedup_stats,omitempty"`

	// Env pins the measurement environment the engine benchmarks
	// report: gomaxprocs, the pinned worker count, the flat array size.
	Env map[string]float64 `json:"env,omitempty"`

	// Quality compares result metrics rather than runtimes: the flat
	// placement benchmark's HPWL under each alternative engine over the
	// default quadratic engine's. flat_place_analytic_hpwl_over_default
	// ≤ 1.0 is the -analytic-place acceptance bound (DESIGN.md §16).
	Quality map[string]float64 `json:"quality,omitempty"`

	// Parallelism lifts the execution-trace metrics the engine
	// benchmarks report (per-phase worker occupancy, serial fraction,
	// Amdahl ceiling at the pinned worker count, critical-path speedup)
	// to the top level, keyed "<metric>/<variant>", e.g.
	// "route_occupancy/parallel" or "route_cp_speedup/flat_sharded".
	Parallelism map[string]float64 `json:"parallelism,omitempty"`
}

// finalize computes the derived statistics from Runs. Every divisor is
// guarded: a single run leaves StddevNs, CV (and later ci) at zero
// rather than NaN, and a zero mean leaves CV at zero. `go test -bench X
// -count 1` is the common case, so n=1 must produce a clean summary.
func (e *entry) finalize() {
	e.RunsCount = len(e.Runs)
	if e.RunsCount == 0 {
		return
	}
	best := e.Runs[0]
	sum := 0.0
	for _, v := range e.Runs {
		sum += v
		if v < best {
			best = v
		}
	}
	e.MeanNsOp = sum / float64(e.RunsCount)
	e.BestNsOp = best
	if n := e.RunsCount; n >= 2 {
		var ss float64
		for _, v := range e.Runs {
			d := v - e.MeanNsOp
			ss += d * d
		}
		e.StddevNs = math.Sqrt(ss / float64(n-1))
		if e.MeanNsOp > 0 {
			e.CV = e.StddevNs / e.MeanNsOp
		}
	}
}

// ci returns the half-width of the ~95% confidence interval of the
// mean under a normal approximation. Zero with fewer than two runs.
func (e *entry) ci() float64 {
	if e.RunsCount < 2 {
		return 0
	}
	return 1.96 * e.StddevNs / math.Sqrt(float64(e.RunsCount))
}

// pair builds the qualified ratio num.Mean/den.Mean, or nil when the
// denominator mean is not positive (a zero-mean entry would otherwise
// put ±Inf/NaN in the JSON). Noise — the two ~95% confidence intervals
// overlapping — is only meaningful when both sides carry a spread, so
// pairs where either side has fewer than two runs are never flagged:
// with a single run the point estimate is all there is to trust.
func pair(num, den *entry) *pairStats {
	if den.MeanNsOp <= 0 {
		return nil
	}
	p := &pairStats{Ratio: num.MeanNsOp / den.MeanNsOp, NumCV: num.CV, DenCV: den.CV}
	if den.BestNsOp > 0 {
		p.BestRatio = num.BestNsOp / den.BestNsOp
	}
	if num.RunsCount >= 2 && den.RunsCount >= 2 {
		nLo, nHi := num.MeanNsOp-num.ci(), num.MeanNsOp+num.ci()
		dLo, dHi := den.MeanNsOp-den.ci(), den.MeanNsOp+den.ci()
		p.Noise = nLo <= dHi && dLo <= nHi
	}
	return p
}

func main() {
	outPath := flag.String("o", "", "write the JSON summary to this file (atomically) instead of stdout")
	flag.Parse()
	byName := map[string]*entry{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := byName[name]
		if e == nil {
			e = &entry{Name: name, Metrics: map[string]float64{}}
			byName[name] = e
			order = append(order, name)
		}
		e.Runs = append(e.Runs, ns)
		for _, mm := range metricRe.FindAllStringSubmatch(m[4], -1) {
			if mm[2] == "ns/op" {
				continue
			}
			if v, err := strconv.ParseFloat(mm[1], 64); err == nil {
				e.Metrics[mm[2]] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	out := &summary{Speedup: map[string]float64{}}
	for _, name := range order {
		e := byName[name]
		e.finalize()
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		out.Benchmarks = append(out.Benchmarks, e)
	}
	// The headline ratios: full-recompute optimization vs incremental,
	// and — when lines from the pre-refactor checkpoint engine are
	// included on stdin (built from the commit before internal/ddb) —
	// pre-refactor vs incremental.
	inc, okI := byName["BenchmarkOptimizeIncremental"]
	if full, ok := byName["BenchmarkOptimizeFull"]; ok && okI && inc.MeanNsOp > 0 {
		out.Speedup["optimize_full_over_incremental"] = full.MeanNsOp / inc.MeanNsOp
	}
	if pre, ok := byName["BenchmarkOptimizePreRefactor"]; ok && okI && inc.MeanNsOp > 0 {
		out.Speedup["optimize_prerefactor_over_incremental"] = pre.MeanNsOp / inc.MeanNsOp
	}
	// Parallel-engine ratios (`make bench-route`): serial reference
	// over the parallel engine at the pinned worker count. The default
	// engines produce bit-identical results, so >1 is pure scheduling
	// win; the flat sharded/fast ratios additionally buy concurrency
	// with the -fast-route engines (deterministic, not bit-identical).
	// Every ratio carries a SpeedupStats twin with the noise verdict.
	out.SpeedupStats = map[string]*pairStats{}
	for _, pr := range [][3]string{
		{"BenchmarkRouteDesign/serial", "BenchmarkRouteDesign/parallel", "route_serial_over_parallel"},
		{"BenchmarkPlace/serial", "BenchmarkPlace/parallel", "place_serial_over_parallel"},
		{"BenchmarkRouteFlat/serial", "BenchmarkRouteFlat/parallel", "flat_route_serial_over_parallel"},
		{"BenchmarkRouteFlat/serial", "BenchmarkRouteFlat/sharded", "flat_route_serial_over_sharded"},
		{"BenchmarkPlaceFlat/serial", "BenchmarkPlaceFlat/parallel", "flat_place_serial_over_parallel"},
		{"BenchmarkPlaceFlat/serial", "BenchmarkPlaceFlat/fast", "flat_place_serial_over_fast"},
		{"BenchmarkPlaceFlat/serial", "BenchmarkPlaceFlat/analytic", "flat_place_serial_over_analytic"},
	} {
		ser, okS := byName[pr[0]]
		par, okP := byName[pr[1]]
		if okS && okP {
			if p := pair(ser, par); p != nil {
				out.Speedup[pr[2]] = p.Ratio
				out.SpeedupStats[pr[2]] = p
			}
		}
	}
	if len(out.SpeedupStats) == 0 {
		out.SpeedupStats = nil
	}
	// Stage-cache ratio (`make bench-stash`): the same sweep cold
	// (populating the cache) versus warm (restoring every checkpoint).
	cold, okC := byName["BenchmarkStashSweep/cold"]
	if warm, ok := byName["BenchmarkStashSweep/warm"]; ok && okC && warm.MeanNsOp > 0 {
		out.Speedup["stash_cold_over_warm"] = cold.MeanNsOp / warm.MeanNsOp
	}
	// Hierarchical ratio (`make bench-harden`): the same 4×4 tile
	// array re-verified flat versus instantiated from a cached
	// hardened abstract in the parent flow.
	flat, okF := byName["BenchmarkHardenArray/flat"]
	if hier, ok := byName["BenchmarkHardenArray/hier"]; ok && okF && hier.MeanNsOp > 0 {
		out.Speedup["harden_flat_over_hier"] = flat.MeanNsOp / hier.MeanNsOp
	}
	if len(out.Speedup) == 0 {
		out.Speedup = nil
	}
	// Quality ratios (`make bench-route`): HPWL of the flat placement
	// under the alternative engines over the default engine's. <1 means
	// the engine places tighter; the analytic row must stay ≤1.
	out.Quality = map[string]float64{}
	if ref, ok := byName["BenchmarkPlaceFlat/serial"]; ok && ref.Metrics["HPWL_m"] > 0 {
		for _, qr := range [][2]string{
			{"BenchmarkPlaceFlat/fast", "flat_place_fast_hpwl_over_default"},
			{"BenchmarkPlaceFlat/analytic", "flat_place_analytic_hpwl_over_default"},
		} {
			if e, ok := byName[qr[0]]; ok && e.Metrics["HPWL_m"] > 0 {
				out.Quality[qr[1]] = e.Metrics["HPWL_m"] / ref.Metrics["HPWL_m"]
			}
		}
	}
	if len(out.Quality) == 0 {
		out.Quality = nil
	}
	// Parallelism rollup (`make bench-route`): the traced engines'
	// occupancy / serial-fraction / Amdahl numbers explain the speedup
	// ratios above, so they ride along at the top level.
	out.Parallelism = map[string]float64{}
	out.Env = map[string]float64{}
	for _, vp := range [][2]string{
		{"BenchmarkRouteDesign/serial", "serial"},
		{"BenchmarkRouteDesign/parallel", "parallel"},
		{"BenchmarkPlace/serial", "serial"},
		{"BenchmarkPlace/parallel", "parallel"},
		{"BenchmarkRouteFlat/serial", "flat_serial"},
		{"BenchmarkRouteFlat/parallel", "flat_parallel"},
		{"BenchmarkRouteFlat/sharded", "flat_sharded"},
		{"BenchmarkPlaceFlat/serial", "flat_serial"},
		{"BenchmarkPlaceFlat/parallel", "flat_parallel"},
		{"BenchmarkPlaceFlat/fast", "flat_fast"},
		{"BenchmarkPlaceFlat/analytic", "flat_analytic"},
	} {
		e := byName[vp[0]]
		if e == nil {
			continue
		}
		for k, v := range e.Metrics {
			switch {
			case strings.HasSuffix(k, "_occupancy"), strings.HasSuffix(k, "_serial_frac"),
				strings.HasSuffix(k, "_amdahl_atW"), strings.HasSuffix(k, "_cp_speedup"):
				out.Parallelism[k+"/"+vp[1]] = v
			case k == "gomaxprocs" || k == "array_n":
				out.Env[k] = v
			case k == "workers" && !strings.HasSuffix(vp[0], "/serial"):
				out.Env[k] = v
			}
		}
	}
	if len(out.Parallelism) == 0 {
		out.Parallelism = nil
	}
	if len(out.Env) == 0 {
		out.Env = nil
	}
	if err := write(*outPath, out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// write emits the summary to stdout, or — with a path — atomically via
// a sibling temporary file and rename.
func write(path string, out *summary) error {
	emit := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	if path == "" {
		return emit(os.Stdout)
	}
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = emit(f)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
