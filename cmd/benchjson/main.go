// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary on stdout. `make bench` pipes the
// optimizer benchmarks through it to produce BENCH_opt.json, so the
// incremental-vs-full comparison is recorded alongside the repo.
//
// Usage:
//
//	go test -bench 'TableII|Optimize' -count 5 -run '^$' . | benchjson
//	go test -bench StashSweep -run '^$' . | benchjson -o BENCH_stash.json
//
// With -o the summary is written to the file via a same-directory
// temporary and an atomic rename, so a failed run never leaves a
// truncated JSON behind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// line shape: BenchmarkName-8   3   123456789 ns/op   12 extra/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)
var metricRe = regexp.MustCompile(`([0-9.e+-]+) (\S+)`)

type entry struct {
	Name      string             `json:"name"`
	Runs      []float64          `json:"ns_per_op"`
	MeanNsOp  float64            `json:"mean_ns_per_op"`
	BestNsOp  float64            `json:"best_ns_per_op"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	RunsCount int                `json:"runs"`
}

type summary struct {
	Benchmarks []*entry           `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`

	// Parallelism lifts the execution-trace metrics the engine
	// benchmarks report (per-phase worker occupancy, serial fraction,
	// Amdahl ceiling at the native worker count) to the top level, keyed
	// "<metric>/<variant>", e.g. "route_occupancy/parallel".
	Parallelism map[string]float64 `json:"parallelism,omitempty"`
}

func main() {
	outPath := flag.String("o", "", "write the JSON summary to this file (atomically) instead of stdout")
	flag.Parse()
	byName := map[string]*entry{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := byName[name]
		if e == nil {
			e = &entry{Name: name, Metrics: map[string]float64{}}
			byName[name] = e
			order = append(order, name)
		}
		e.Runs = append(e.Runs, ns)
		for _, mm := range metricRe.FindAllStringSubmatch(m[4], -1) {
			if mm[2] == "ns/op" {
				continue
			}
			if v, err := strconv.ParseFloat(mm[1], 64); err == nil {
				e.Metrics[mm[2]] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	out := &summary{Speedup: map[string]float64{}}
	for _, name := range order {
		e := byName[name]
		e.RunsCount = len(e.Runs)
		best := e.Runs[0]
		sum := 0.0
		for _, v := range e.Runs {
			sum += v
			if v < best {
				best = v
			}
		}
		e.MeanNsOp = sum / float64(len(e.Runs))
		e.BestNsOp = best
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		out.Benchmarks = append(out.Benchmarks, e)
	}
	// The headline ratios: full-recompute optimization vs incremental,
	// and — when lines from the pre-refactor checkpoint engine are
	// included on stdin (built from the commit before internal/ddb) —
	// pre-refactor vs incremental.
	inc, okI := byName["BenchmarkOptimizeIncremental"]
	if full, ok := byName["BenchmarkOptimizeFull"]; ok && okI && inc.MeanNsOp > 0 {
		out.Speedup["optimize_full_over_incremental"] = full.MeanNsOp / inc.MeanNsOp
	}
	if pre, ok := byName["BenchmarkOptimizePreRefactor"]; ok && okI && inc.MeanNsOp > 0 {
		out.Speedup["optimize_prerefactor_over_incremental"] = pre.MeanNsOp / inc.MeanNsOp
	}
	// Parallel-engine ratios (`make bench-route`): serial reference
	// over the parallel engine at native GOMAXPROCS. Both produce
	// bit-identical results, so >1 is pure scheduling win.
	for _, pair := range [][3]string{
		{"BenchmarkRouteDesign/serial", "BenchmarkRouteDesign/parallel", "route_serial_over_parallel"},
		{"BenchmarkPlace/serial", "BenchmarkPlace/parallel", "place_serial_over_parallel"},
	} {
		ser, okS := byName[pair[0]]
		par, okP := byName[pair[1]]
		if okS && okP && par.MeanNsOp > 0 {
			out.Speedup[pair[2]] = ser.MeanNsOp / par.MeanNsOp
		}
	}
	// Stage-cache ratio (`make bench-stash`): the same sweep cold
	// (populating the cache) versus warm (restoring every checkpoint).
	cold, okC := byName["BenchmarkStashSweep/cold"]
	if warm, ok := byName["BenchmarkStashSweep/warm"]; ok && okC && warm.MeanNsOp > 0 {
		out.Speedup["stash_cold_over_warm"] = cold.MeanNsOp / warm.MeanNsOp
	}
	// Hierarchical ratio (`make bench-harden`): the same 4×4 tile
	// array re-verified flat versus instantiated from a cached
	// hardened abstract in the parent flow.
	flat, okF := byName["BenchmarkHardenArray/flat"]
	if hier, ok := byName["BenchmarkHardenArray/hier"]; ok && okF && hier.MeanNsOp > 0 {
		out.Speedup["harden_flat_over_hier"] = flat.MeanNsOp / hier.MeanNsOp
	}
	if len(out.Speedup) == 0 {
		out.Speedup = nil
	}
	// Parallelism rollup (`make bench-route`): the traced engines'
	// occupancy / serial-fraction / Amdahl numbers explain the speedup
	// ratios above, so they ride along at the top level.
	out.Parallelism = map[string]float64{}
	for _, pair := range [][2]string{
		{"BenchmarkRouteDesign/serial", "serial"},
		{"BenchmarkRouteDesign/parallel", "parallel"},
		{"BenchmarkPlace/serial", "serial"},
		{"BenchmarkPlace/parallel", "parallel"},
	} {
		e := byName[pair[0]]
		if e == nil {
			continue
		}
		for k, v := range e.Metrics {
			if strings.HasSuffix(k, "_occupancy") || strings.HasSuffix(k, "_serial_frac") || strings.HasSuffix(k, "_amdahl_atW") {
				out.Parallelism[k+"/"+pair[1]] = v
			}
		}
	}
	if len(out.Parallelism) == 0 {
		out.Parallelism = nil
	}
	if err := write(*outPath, out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// write emits the summary to stdout, or — with a path — atomically via
// a sibling temporary file and rename.
func write(path string, out *summary) error {
	emit := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	if path == "" {
		return emit(os.Stdout)
	}
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = emit(f)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
