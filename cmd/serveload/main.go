// Command serveload is the daemon's load-test driver: it stands up an
// in-process macro3d daemon (the same serve.Server "macro3d serve"
// runs, behind an httptest listener), then hammers it with N
// concurrent tenants whose sweeps overlap — plus one injected
// panicking job — and asserts the robustness contract:
//
//   - every non-faulted job completes with zero dropped or corrupted
//     results (identical specs agree byte-for-byte),
//   - queue overflow surfaces as 429 + Retry-After and retried
//     submissions eventually land (backpressure, not data loss),
//   - the panicking job fails typed while the daemon keeps serving,
//   - cross-tenant cache hits occur and the hit rate is reported,
//   - the shared stage cache stays under its byte cap throughout.
//
// It prints a JSON summary and exits non-zero on any violation.
//
//	go run ./cmd/serveload [-tenants 8] [-jobs-per-tenant 2] [-workers 4] [-queue 4] [-cache-max-bytes N]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"macro3d/internal/serve"
	"macro3d/internal/stash"
)

type summary struct {
	Tenants       int      `json:"tenants"`
	JobsSubmitted int      `json:"jobs_submitted"`
	JobsDone      int      `json:"jobs_done"`
	JobsFailed    int      `json:"jobs_failed"` // excluding the injected panic job
	Rejected429   int      `json:"rejected_429"`
	PanicIsolated bool     `json:"panic_job_isolated"`
	CacheHits     uint64   `json:"cache_hits"`
	CacheMisses   uint64   `json:"cache_misses"`
	HitRate       float64  `json:"cache_hit_rate"`
	CacheBytes    int64    `json:"cache_bytes"`
	CacheCap      int64    `json:"cache_cap_bytes"`
	DiskBytes     int64    `json:"cache_disk_bytes"`
	Corrupted     int      `json:"corrupted_results"`
	ElapsedMS     int64    `json:"elapsed_ms"`

	// Queue-wait visibility from /metrics.json: the daemon's
	// serve_queue_wait_ms histogram must have observed every executed
	// job — a small queue in front of a busy pool makes waits the
	// load story, so an empty histogram means the metric is broken.
	QueueWaitObserved uint64  `json:"queue_wait_observed"`
	QueueWaitMeanMS   float64 `json:"queue_wait_mean_ms"`
	JobRunObserved    uint64  `json:"job_run_observed"`

	Violations []string `json:"violations"`
}

func main() {
	var (
		tenants  = flag.Int("tenants", 8, "concurrent tenants (the acceptance floor is 8)")
		perTen   = flag.Int("jobs-per-tenant", 2, "jobs each tenant submits")
		workers  = flag.Int("workers", 4, "daemon worker pool size")
		queue    = flag.Int("queue", 4, "queue depth (small, to exercise 429 backpressure)")
		cacheMax = flag.Int64("cache-max-bytes", 256<<20, "shared stage cache byte cap")
	)
	flag.Parse()

	dir, err := os.MkdirTemp("", "serveload-stash-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	cache, err := stash.OpenLimited(dir, *cacheMax)
	if err != nil {
		fatal(err)
	}

	srv := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		Cache:       cache,
		AllowFaults: true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	sum := summary{Tenants: *tenants}
	var violations []string
	violate := func(format string, a ...any) {
		violations = append(violations, fmt.Sprintf(format, a...))
	}

	// Each tenant submits jobs from a small spec pool, so tenants
	// overlap heavily and warm each other's cache. Submissions retry on
	// 429 with the server's backoff hint.
	type result struct {
		seedKey  string
		view     jobView
		rejected int
	}
	results := make(chan result, *tenants**perTen)
	var wg sync.WaitGroup
	for tn := 0; tn < *tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for j := 0; j < *perTen; j++ {
				seed := uint64(1 + (tn+j)%2) // two distinct seeds → overlap
				spec := map[string]any{"flow": "2d", "config": "tiny", "seed": seed}
				view, rejected, err := submitWithRetry(ts.URL, spec, 60*time.Second)
				if err != nil {
					violate("tenant %d job %d: %v", tn, j, err)
					results <- result{rejected: rejected}
					continue
				}
				results <- result{seedKey: fmt.Sprint(seed), view: view, rejected: rejected}
			}
		}(tn)
	}

	// The saboteur: one panicking job mid-load. The daemon must record
	// it failed and keep serving everyone else.
	panicIsolated := make(chan bool, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		view, _, err := submitWithRetry(ts.URL, map[string]any{
			"flow": "2d", "config": "tiny", "fault": "panic"}, 60*time.Second)
		if err != nil {
			panicIsolated <- false
			return
		}
		v, err := awaitTerminal(ts.URL, view.ID, 120*time.Second)
		panicIsolated <- err == nil && v.State == "failed" && v.StageError != nil && v.StageError.Panicked
	}()
	wg.Wait()
	close(results)

	// Await every tenant job and check result integrity: identical
	// specs must produce byte-identical results.
	bySeed := map[string]string{}
	for r := range results {
		sum.Rejected429 += r.rejected
		if r.view.ID == "" {
			continue
		}
		sum.JobsSubmitted++
		v, err := awaitTerminal(ts.URL, r.view.ID, 300*time.Second)
		if err != nil {
			violate("job %s: %v", r.view.ID, err)
			continue
		}
		switch v.State {
		case "done":
			sum.JobsDone++
			if v.Result == "" {
				sum.Corrupted++
				violate("job %s: done with empty result", v.ID)
			} else if prev, ok := bySeed[r.seedKey]; ok && prev != v.Result {
				sum.Corrupted++
				violate("job %s: result diverged for seed %s", v.ID, r.seedKey)
			} else {
				bySeed[r.seedKey] = v.Result
			}
		default:
			sum.JobsFailed++
			violate("job %s: state %s (%s)", v.ID, v.State, v.Error)
		}
	}
	sum.PanicIsolated = <-panicIsolated
	if !sum.PanicIsolated {
		violate("panicking job was not isolated as a typed failure")
	}

	// Post-panic liveness: the daemon still takes and finishes work.
	view, _, err := submitWithRetry(ts.URL, map[string]any{"flow": "2d", "config": "tiny"}, 60*time.Second)
	if err != nil {
		violate("post-panic submit: %v", err)
	} else if v, err := awaitTerminal(ts.URL, view.ID, 120*time.Second); err != nil || v.State != "done" {
		violate("post-panic job did not complete: %+v (%v)", v, err)
	}

	// Backpressure must actually have fired with a queue this small.
	if sum.Rejected429 == 0 {
		violate("no 429 rejections observed — queue never overflowed (raise -tenants or shrink -queue)")
	}

	st := cache.Stats()
	sum.CacheHits, sum.CacheMisses = st.Hits, st.Misses
	if st.Hits+st.Misses > 0 {
		sum.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	if st.Hits == 0 {
		violate("zero cross-tenant cache hits under overlapping specs")
	}
	sum.CacheBytes, sum.CacheCap = cache.Usage()
	sum.DiskBytes = diskBytes(dir)
	if sum.DiskBytes > sum.CacheCap {
		violate("cache directory %d bytes exceeds its %d cap", sum.DiskBytes, sum.CacheCap)
	}

	// Queue-wait visibility: every job that ran must have contributed a
	// serve_queue_wait_ms and a serve_job_run_ms observation.
	if qw, jr, err := scrapeWaitMetrics(ts.URL); err != nil {
		violate("metrics scrape: %v", err)
	} else {
		sum.QueueWaitObserved, sum.JobRunObserved = qw.count, jr.count
		if qw.count > 0 {
			sum.QueueWaitMeanMS = qw.sum / float64(qw.count)
		}
		if qw.count == 0 {
			violate("serve_queue_wait_ms observed no jobs — queue-wait visibility is broken")
		}
		if jr.count == 0 {
			violate("serve_job_run_ms observed no jobs")
		}
	}

	// Clean shutdown under load history.
	sdCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		violate("shutdown: %v", err)
	}

	sum.ElapsedMS = time.Since(start).Milliseconds()
	sum.Violations = violations
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// jobView mirrors the daemon's job record JSON.
type jobView struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Error      string `json:"error"`
	Result     string `json:"result"`
	Abandoned  bool   `json:"abandoned"`
	StageError *struct {
		Stage    string `json:"stage"`
		Panicked bool   `json:"panicked"`
	} `json:"stage_error"`
}

// submitWithRetry POSTs a job, retrying 429s with the Retry-After hint
// (capped to keep the driver brisk) until the deadline. Returns the
// accepted view and how many rejections preceded it.
func submitWithRetry(base string, spec map[string]any, within time.Duration) (jobView, int, error) {
	body, _ := json.Marshal(spec)
	deadline := time.Now().Add(within)
	rejected := 0
	for {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return jobView{}, rejected, err
		}
		var v jobView
		dec := json.NewDecoder(resp.Body)
		switch resp.StatusCode {
		case http.StatusAccepted:
			err := dec.Decode(&v)
			resp.Body.Close()
			return v, rejected, err
		case http.StatusTooManyRequests:
			resp.Body.Close()
			rejected++
			if time.Now().After(deadline) {
				return jobView{}, rejected, fmt.Errorf("still 429 after %v", within)
			}
			time.Sleep(25 * time.Millisecond)
		default:
			resp.Body.Close()
			return jobView{}, rejected, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
	}
}

// awaitTerminal polls a job record until it reaches a terminal state.
func awaitTerminal(base, id string, within time.Duration) (jobView, error) {
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return jobView{}, err
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return jobView{}, err
		}
		switch v.State {
		case "done", "failed", "canceled":
			return v, nil
		}
		if time.Now().After(deadline) {
			return v, fmt.Errorf("job %s still %s after %v", id, v.State, within)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// histStat is one histogram's scrape: observation count and sum.
type histStat struct {
	count uint64
	sum   float64
}

// scrapeWaitMetrics pulls the serve_queue_wait_ms and serve_job_run_ms
// histograms from the daemon's /metrics.json endpoint.
func scrapeWaitMetrics(base string) (queueWait, jobRun histStat, err error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return histStat{}, histStat{}, err
	}
	defer resp.Body.Close()
	var doc struct {
		Metrics []struct {
			Name  string          `json:"name"`
			Count uint64          `json:"count"`
			Sum   json.RawMessage `json:"sum"` // float, or a string for ±Inf/NaN
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return histStat{}, histStat{}, err
	}
	for _, m := range doc.Metrics {
		var sum float64
		_ = json.Unmarshal(m.Sum, &sum)
		switch m.Name {
		case "serve_queue_wait_ms":
			queueWait = histStat{count: m.Count, sum: sum}
		case "serve_job_run_ms":
			jobRun = histStat{count: m.Count, sum: sum}
		}
	}
	return queueWait, jobRun, nil
}

// diskBytes sums the snapshot files actually on disk.
func diskBytes(dir string) int64 {
	paths, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	var total int64
	for _, p := range paths {
		if info, err := os.Stat(p); err == nil {
			total += info.Size()
		}
	}
	return total
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serveload:", err)
	os.Exit(1)
}
