// Command pitongen generates and inspects the OpenPiton-like benchmark
// netlists (paper Fig. 3: the tile architecture).
//
// Usage:
//
//	pitongen -config small|large [-stats] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"macro3d"
	"macro3d/internal/geom"
)

func main() {
	var (
		config = flag.String("config", "small", "tile configuration: small, large or tiny")
		stats  = flag.Bool("stats", true, "print netlist statistics")
		seed   = flag.Uint64("seed", 0, "override the configuration seed (0 = default)")
		lefOut = flag.String("lef", "", "write the cell library + macros as LEF to this file")
		defOut = flag.String("def", "", "write the (unplaced) netlist as DEF to this file")
	)
	flag.Parse()

	var cfg macro3d.TileConfig
	switch *config {
	case "small":
		cfg = macro3d.SmallCache()
	case "large":
		cfg = macro3d.LargeCache()
	case "tiny":
		cfg = macro3d.TinyTile()
	default:
		fmt.Fprintf(os.Stderr, "pitongen: unknown config %q\n", *config)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	tile, err := macro3d.GenerateTile(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pitongen:", err)
		os.Exit(1)
	}
	if *lefOut != "" {
		f, err := os.Create(*lefOut)
		if err != nil {
			log.Fatal(err)
		}
		b, _ := macro3d.NewBEOL28("logic28", 6)
		if err := macro3d.WriteLEF(f, b, tile.Design.Lib); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", *lefOut)
	}
	if *defOut != "" {
		f, err := os.Create(*defOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := macro3d.WriteDEF(f, tile.Design, geom.R(0, 0, 1000, 1000)); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", *defOut)
	}
	if !*stats {
		return
	}
	d := tile.Design
	st := d.ComputeStats()
	fmt.Printf("tile %s (Fig. 3 architecture)\n", cfg.Name)
	fmt.Printf("  caches: L1I %d kB, L1D %d kB, L2 %d kB, L3 %d kB\n",
		cfg.L1I/1024, cfg.L1D/1024, cfg.L2/1024, cfg.L3/1024)
	fmt.Printf("  core: %d pipeline stages × %d bits; %d parallel NoCs × %d-bit flits\n",
		cfg.CoreStages, cfg.CoreWidth, cfg.NoCs, cfg.DataWidth)
	fmt.Printf("  instances: %d (%d std cells, %d macros, %d sequential)\n",
		st.NumInstances, st.NumStdCells, st.NumMacros, st.NumSeq)
	fmt.Printf("  nets: %d, ports: %d (inter-tile ports half-cycle constrained)\n",
		st.NumNets, st.NumPorts)
	fmt.Printf("  area: logic %.3f mm², macros %.3f mm² (%.0f%% of cell area)\n",
		st.StdCellArea/1e6, st.MacroArea/1e6,
		100*st.MacroArea/(st.MacroArea+st.StdCellArea))

	// Bank inventory per cache level.
	type lv struct {
		banks int
		bytes int
	}
	levels := map[string]*lv{}
	for _, m := range d.Macros() {
		name := m.Name[:strings.Index(m.Name, "_")]
		if levels[name] == nil {
			levels[name] = &lv{}
		}
		levels[name].banks++
		levels[name].bytes += m.Master.Macro.CapacityBytes
	}
	names := make([]string, 0, len(levels))
	for n := range levels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-4s %d bank(s), %d kB total\n", n, levels[n].banks, levels[n].bytes/1024)
	}
}
