// Cold-versus-warm benchmark for the content-addressed stage cache.
// `make bench-stash` runs it through benchjson into BENCH_stash.json;
// the headline ratio is stash_cold_over_warm.
package macro3d_test

import (
	"context"
	"os"
	"reflect"
	"testing"

	"macro3d"
)

// stashSweep is the workload: the full Table I sweep (all four flows
// on the small-cache tile), the shape a user resumes most often.
func stashSweep(b *testing.B, cache *macro3d.StageCache) *macro3d.TableI {
	b.Helper()
	cfg := macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1, Cache: cache}
	t, err := macro3d.RunTableIWith(context.Background(), cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkStashSweep measures the sweep cold (empty cache directory
// every iteration) and warm (cache pre-populated once; every iteration
// restores all checkpoints). Both sub-benchmarks verify the table
// against an uncached reference, so the speedup is over identical
// results.
func BenchmarkStashSweep(b *testing.B) {
	ref, err := macro3d.RunTableIWith(context.Background(),
		macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1}, false)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "stash-cold-*")
			if err != nil {
				b.Fatal(err)
			}
			cache, err := macro3d.OpenStageCache(dir)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			t := stashSweep(b, cache)
			b.StopTimer()
			if !reflect.DeepEqual(ref, t) {
				b.Fatal("cold cached table differs from uncached reference")
			}
			if s := cache.Stats(); s.Hits != 0 || s.Puts == 0 {
				b.Fatalf("cold stats = %+v", s)
			}
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})

	b.Run("warm", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "stash-warm-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		seedCache, err := macro3d.OpenStageCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		stashSweep(b, seedCache)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache, err := macro3d.OpenStageCache(dir)
			if err != nil {
				b.Fatal(err)
			}
			t := stashSweep(b, cache)
			b.StopTimer()
			if !reflect.DeepEqual(ref, t) {
				b.Fatal("warm cached table differs from uncached reference")
			}
			if s := cache.Stats(); s.Hits == 0 || s.Misses != 0 {
				b.Fatalf("warm stats = %+v", s)
			}
			b.StartTimer()
		}
	})
}
