// Benchmark harness regenerating every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results):
//
//	BenchmarkTableI          — Table I: 2D / MoL S2D / BF S2D / Macro-3D
//	BenchmarkTableII         — Table II: in-depth 2D vs Macro-3D
//	BenchmarkTableIII        — Table III: M6–M6 vs M6–M4 ablation
//	BenchmarkIsoPerformance  — §V-A iso-performance power
//	BenchmarkFig3TileGen     — Fig. 3: benchmark netlist generation
//	BenchmarkFig4Floorplans  — Fig. 4: 2D and MoL macro floorplans
//	BenchmarkFig5Layout2D    — Fig. 5: final 2D layout
//	BenchmarkFig6LayoutMoL   — Fig. 6: separated MoL dies + bumps
//
// plus the substrate micro-benchmarks (placement, routing, STA) that
// size the engine itself. Run with:
//
//	go test -bench=. -benchmem
package macro3d_test

import (
	"sync"
	"testing"

	"macro3d"
)

// Experiments are deterministic, so repeated b.N iterations recompute
// the same result; each benchmark still re-runs the full flow per
// iteration (that is the thing being measured).

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := macro3d.RunTableI(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.TwoD.FclkMHz, "fclk2D_MHz")
		b.ReportMetric(t.S2D.FclkMHz, "fclkS2D_MHz")
		b.ReportMetric(t.BFS2D.FclkMHz, "fclkBFS2D_MHz")
		b.ReportMetric(t.Macro3D.FclkMHz, "fclkM3D_MHz")
		b.ReportMetric(float64(t.Macro3D.F2FBumps), "bumpsM3D")
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := macro3d.RunTableII(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(t.SmallM3D.FclkMHz/t.Small2D.FclkMHz-1), "smallGain_pct")
		b.ReportMetric(100*(t.LargeM3D.FclkMHz/t.Large2D.FclkMHz-1), "largeGain_pct")
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := macro3d.RunTableIII(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(t.SmallM6M4.FclkMHz/t.SmallM6M6.FclkMHz-1), "smallFclkDelta_pct")
		b.ReportMetric(100*(t.SmallM6M4.MetalAreaMM2/t.SmallM6M6.MetalAreaMM2-1), "metalDelta_pct")
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

func BenchmarkIsoPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pc := range []macro3d.TileConfig{macro3d.SmallCache(), macro3d.LargeCache()} {
			r, err := macro3d.RunIsoPerf(pc, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Log(r.Format())
			}
		}
	}
}

func BenchmarkFig3TileGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tile, err := macro3d.GenerateTile(macro3d.SmallCache())
		if err != nil {
			b.Fatal(err)
		}
		st := tile.Design.ComputeStats()
		b.ReportMetric(float64(st.NumInstances), "instances")
	}
}

func BenchmarkFig4Floorplans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1}
		_, st2d, err := macro3d.Run2D(cfg)
		if err != nil {
			b.Fatal(err)
		}
		svg2d := macro3d.LayoutSVG(st2d.Design, st2d.Die, macro3d.VizOptions{Title: "2D floorplan"})
		_, st3d, _, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			b.Fatal(err)
		}
		svg3d := macro3d.LayoutSVG(st3d.Design, st3d.Die, macro3d.VizOptions{Title: "MoL floorplan"})
		b.ReportMetric(float64(len(svg2d)+len(svg3d)), "svgBytes")
	}
}

func BenchmarkFig5Layout2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1}
		_, st, err := macro3d.Run2D(cfg)
		if err != nil {
			b.Fatal(err)
		}
		svg := macro3d.LayoutSVG(st.Design, st.Die, macro3d.VizOptions{ShowCells: true})
		b.ReportMetric(float64(len(svg)), "svgBytes")
	}
}

func BenchmarkFig6LayoutMoL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1}
		_, st, mol, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logic, macroDie, err := macro3d.SeparateDies(mol, st)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(logic.Bumps)), "bumps")
		_ = macroDie
	}
}

func BenchmarkAblationBlockageResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := macro3d.RunBlockageSweep(1, []float64{20, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sw.Format())
		}
	}
}

func BenchmarkAblationF2FPitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := macro3d.RunPitchSweep(1, []float64{1, 5, 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + sw.Format())
		}
	}
}

// --- substrate micro-benchmarks ---

var tileOnce struct {
	sync.Once
	tile *macro3d.Tile
	err  error
}

func smallTile(b *testing.B) *macro3d.Tile {
	tileOnce.Do(func() {
		tileOnce.tile, tileOnce.err = macro3d.GenerateTile(macro3d.SmallCache())
	})
	if tileOnce.err != nil {
		b.Fatal(tileOnce.err)
	}
	return tileOnce.tile
}

func BenchmarkFlow2DSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _, err := macro3d.Run2D(macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.FclkMHz, "fclk_MHz")
	}
}

func BenchmarkFlowMacro3DSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _, _, err := macro3d.RunMacro3D(macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.FclkMHz, "fclk_MHz")
	}
}

func BenchmarkFlowS2DSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _, err := macro3d.RunS2D(macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.FclkMHz, "fclk_MHz")
	}
}

func BenchmarkFlowC2DSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, _, err := macro3d.RunC2D(macro3d.FlowConfig{Piton: macro3d.SmallCache(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.FclkMHz, "fclk_MHz")
	}
}

func BenchmarkSensorSoCMacro3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := macro3d.FlowConfig{Seed: 7, MacroDieMetals: 4,
			Generator: func() (*macro3d.Tile, error) {
				return macro3d.GenerateSensorSoC(macro3d.DefaultSensorSoC())
			}}
		p, _, _, err := macro3d.RunMacro3D(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.FclkMHz, "fclk_MHz")
	}
}
