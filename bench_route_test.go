// Routing and placement engine benchmarks: the large-cache tile's
// route stage and global-placement stage, serial reference (Workers 1)
// against the parallel engines at a pinned worker count (BENCH_ROUTE_J,
// default 8). Default-mode serial and parallel produce bit-identical
// results — TestWorkerEquivalence asserts exactly that — so the ratio
// measures scheduling, not quality drift. The flat N×N benchmarks add
// the -fast-route configurations (sharded router, banded legalizer),
// which are deterministic at any worker count but trade bit-identity
// with the default engines for concurrency. `make bench-route` records
// everything in BENCH_route.json; on a host whose GOMAXPROCS caps real
// concurrency the wall-clock ratios saturate at the core count and the
// *_cp_speedup metrics report what the recorded fork-join structure
// supports.
package macro3d_test

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// benchWorkers is the pinned parallel worker count. The benchmarks
// never depend silently on the host's GOMAXPROCS: the parallel
// configurations run at exactly this count (BENCH_ROUTE_J, default 8)
// and every benchmark reports both gomaxprocs and workers as metrics,
// so BENCH_route.json records the environment a ratio was measured in.
func benchWorkers() int {
	if s := os.Getenv("BENCH_ROUTE_J"); s != "" {
		if j, err := strconv.Atoi(s); err == nil && j > 0 {
			return j
		}
	}
	return 8
}

// benchArrayN is the flat-array edge size: the large-cache tile abutted
// N×N and routed/placed as one flat design (BENCH_ROUTE_N, default 3).
func benchArrayN() int {
	if s := os.Getenv("BENCH_ROUTE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 3
}

// reportEnv pins the execution environment into the benchmark record.
func reportEnv(b *testing.B, workers int) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(par.Workers(workers)), "workers")
}

// reportTraceStats runs the execution-trace analyzer over one traced
// engine run and reports the named phase's parallelism numbers as
// benchmark metrics, so `make bench-route` lands worker occupancy,
// serial fraction and the Amdahl ceiling in BENCH_route.json next to
// the wall-clock ratio they explain.
func reportTraceStats(b *testing.B, tr *trace.Tracer, phase string) {
	b.Helper()
	for _, ph := range trace.Analyze(tr).Phases {
		if ph.Phase != phase {
			continue
		}
		b.ReportMetric(ph.Occupancy, phase+"_occupancy")
		b.ReportMetric(ph.SerialFrac, phase+"_serial_frac")
		b.ReportMetric(ph.AmdahlAtW, phase+"_amdahl_atW")
		// CP speedup = wall / critical path: the speedup the recorded
		// fork-join structure supports with enough cores. On a host
		// whose GOMAXPROCS serializes the workers this is the honest
		// parallelism headline — the wall-clock ratio cannot move there.
		b.ReportMetric(ph.CPSpeedup, phase+"_cp_speedup")
	}
}

// routeBench is the shared placed large-cache tile. Building it once
// is safe: RouteDesign never mutates the design, and place.Place
// reseeds initial positions from its RNG, so repeated stage runs are
// deterministic functions of (design, seed).
var routeBench struct {
	once sync.Once
	err  error

	t    *tech.Tech
	tile *piton.Tile
	d    *netlist.Design
	fp   *floorplan.Floorplan
	sz   floorplan.Sizing
}

func routeBenchSetup(b *testing.B) {
	b.Helper()
	routeBench.once.Do(func() {
		routeBench.err = func() error {
			t, err := tech.New28(6)
			if err != nil {
				return err
			}
			tile, err := piton.Generate(piton.LargeCache())
			if err != nil {
				return err
			}
			d := tile.Design
			sz, err := floorplan.SizeDesign(d, 0.70, 1.0, t.RowHeight)
			if err != nil {
				return err
			}
			fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
			if err != nil {
				return err
			}
			floorplan.BuildBlockages(fp, d, netlist.LogicDie)
			floorplan.AssignPorts(tile, sz.Die2D)
			if _, err := place.Place(d, fp, t.RowHeight, place.Options{Seed: 2}); err != nil {
				return err
			}
			// Warm-up route: settles the heap so the generator/placer
			// allocation debt is not collected inside the first timed
			// iteration.
			db := route.NewDB(sz.Die2D, t.Logic, fp.RouteBlk, route.Options{})
			if _, err := route.RouteDesign(d, db); err != nil {
				return err
			}
			routeBench.t, routeBench.tile, routeBench.d, routeBench.fp = t, tile, d, fp
			routeBench.sz = sz
			return nil
		}()
	})
	if routeBench.err != nil {
		b.Fatal(routeBench.err)
	}
}

func benchRouteDesign(b *testing.B, workers int) {
	routeBenchSetup(b)
	b.ResetTimer()
	var last *route.Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := route.NewDB(routeBench.sz.Die2D, routeBench.t.Logic,
			routeBench.fp.RouteBlk, route.Options{Workers: workers})
		b.StartTimer()
		res, err := route.RouteDesign(routeBench.d, db)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Metrics only after the loop: ResetTimer deletes reported metrics.
	reportEnv(b, workers)
	if last != nil {
		b.ReportMetric(last.WL/1e6, "WL_m")
		b.ReportMetric(float64(last.Overflow), "overflow")
	}
	// One extra traced run, off the clock: tracing is only near-zero
	// overhead, so the timed iterations stay untraced.
	b.StopTimer()
	tr := trace.New()
	db := route.NewDB(routeBench.sz.Die2D, routeBench.t.Logic,
		routeBench.fp.RouteBlk, route.Options{Workers: workers, Trace: tr})
	if _, err := route.RouteDesign(routeBench.d, db); err != nil {
		b.Fatal(err)
	}
	reportTraceStats(b, tr, "route")
}

func BenchmarkRouteDesign(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchRouteDesign(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchRouteDesign(b, benchWorkers()) })
}

func benchPlace(b *testing.B, workers int) {
	routeBenchSetup(b)
	b.ResetTimer()
	var last *place.Result
	for i := 0; i < b.N; i++ {
		res, err := place.Place(routeBench.d, routeBench.fp, routeBench.t.RowHeight,
			place.Options{Seed: 2, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportEnv(b, workers)
	if last != nil {
		b.ReportMetric(last.HPWL/1e6, "HPWL_m")
	}
	b.StopTimer()
	tr := trace.New()
	if _, err := place.Place(routeBench.d, routeBench.fp, routeBench.t.RowHeight,
		place.Options{Seed: 2, Workers: workers, Trace: tr}); err != nil {
		b.Fatal(err)
	}
	reportTraceStats(b, tr, "place")
}

func BenchmarkPlace(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchPlace(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchPlace(b, benchWorkers()) })
}

// --- Flat N×N array benchmarks ---
//
// The sharded router's case: a single flat design big enough that the
// region decomposition has real work per region. The placed large-cache
// tile is abutted N×N into ONE flat netlist (piton.Abut — the paper's
// §V-1 composition) and then placed/routed from scratch as a flat
// problem: no per-tile route replication, no hierarchy. serial is the
// -j 1 reference; parallel is the default deterministic batch engine at
// the pinned worker count; sharded adds -fast-route (region-sharded
// concurrent routing, deterministic at any -j but not bit-identical to
// the default engine — see DESIGN.md §15).

var flatBench struct {
	once sync.Once
	err  error

	n   int
	die geom.Rect
	d   *netlist.Design
	fp  *floorplan.Floorplan
}

func flatBenchSetup(b *testing.B) {
	b.Helper()
	routeBenchSetup(b)
	flatBench.once.Do(func() {
		flatBench.err = func() error {
			n := benchArrayN()
			arr, die, err := piton.Abut(routeBench.tile, routeBench.sz.Die2D, n, n)
			if err != nil {
				return err
			}
			// Every copy contributes its macro blockages at its offset.
			fp := &floorplan.Floorplan{Die: die, RowHeight: routeBench.t.RowHeight}
			tw, th := routeBench.sz.Die2D.W(), routeBench.sz.Die2D.H()
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					off := geom.Pt(tw*float64(ix), th*float64(iy))
					for _, bl := range routeBench.fp.PlaceBlk {
						fp.PlaceBlk = append(fp.PlaceBlk, floorplan.Blockage{
							Rect: bl.Rect.Translate(off), Fraction: bl.Fraction,
						})
					}
					for _, bl := range routeBench.fp.RouteBlk {
						fp.RouteBlk = append(fp.RouteBlk, floorplan.RouteBlockage{
							Layer: bl.Layer, Rect: bl.Rect.Translate(off),
						})
					}
				}
			}
			// Canonical flat placement: Place reseeds from its RNG, so
			// re-running it (as BenchmarkPlaceFlat does) reproduces the
			// same locations — benchmark ordering cannot skew the route
			// comparisons.
			if _, err := place.Place(arr, fp, routeBench.t.RowHeight, place.Options{Seed: 2}); err != nil {
				return err
			}
			flatBench.n, flatBench.die, flatBench.d, flatBench.fp = n, die, arr, fp
			return nil
		}()
	})
	if flatBench.err != nil {
		b.Fatal(flatBench.err)
	}
}

func benchRouteFlat(b *testing.B, workers int, sharded bool) {
	flatBenchSetup(b)
	b.ResetTimer()
	var last *route.Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := route.NewDB(flatBench.die, routeBench.t.Logic, flatBench.fp.RouteBlk,
			route.Options{Workers: workers, Sharded: sharded})
		b.StartTimer()
		res, err := route.RouteDesign(flatBench.d, db)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportEnv(b, workers)
	b.ReportMetric(float64(flatBench.n), "array_n")
	if last != nil {
		b.ReportMetric(last.WL/1e6, "WL_m")
		b.ReportMetric(float64(last.Overflow), "overflow")
	}
	b.StopTimer()
	tr := trace.New()
	db := route.NewDB(flatBench.die, routeBench.t.Logic, flatBench.fp.RouteBlk,
		route.Options{Workers: workers, Sharded: sharded, Trace: tr})
	if _, err := route.RouteDesign(flatBench.d, db); err != nil {
		b.Fatal(err)
	}
	reportTraceStats(b, tr, "route")
}

func BenchmarkRouteFlat(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchRouteFlat(b, 1, false) })
	b.Run("parallel", func(b *testing.B) { benchRouteFlat(b, benchWorkers(), false) })
	b.Run("sharded", func(b *testing.B) { benchRouteFlat(b, benchWorkers(), true) })
}

func benchPlaceFlat(b *testing.B, workers int, fast, analytic bool) {
	flatBenchSetup(b)
	b.ResetTimer()
	var last *place.Result
	for i := 0; i < b.N; i++ {
		res, err := place.Place(flatBench.d, flatBench.fp, routeBench.t.RowHeight,
			place.Options{Seed: 2, Workers: workers, Fast: fast, Analytic: analytic})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportEnv(b, workers)
	b.ReportMetric(float64(flatBench.n), "array_n")
	if last != nil {
		b.ReportMetric(last.HPWL/1e6, "HPWL_m")
	}
	b.StopTimer()
	tr := trace.New()
	if _, err := place.Place(flatBench.d, flatBench.fp, routeBench.t.RowHeight,
		place.Options{Seed: 2, Workers: workers, Fast: fast, Analytic: analytic, Trace: tr}); err != nil {
		b.Fatal(err)
	}
	reportTraceStats(b, tr, "place")
	// Leave the canonical default-mode placement behind for any later
	// route benchmark iteration in the same process.
	if fast || analytic {
		if _, err := place.Place(flatBench.d, flatBench.fp, routeBench.t.RowHeight,
			place.Options{Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// The analytic variant is the -analytic-place engine (DESIGN.md §16):
// its HPWL_m metric against serial's is the quality row benchjson
// records as flat_place_analytic_hpwl_over_default — ≤ 1.0 is the
// engine's acceptance bound.
func BenchmarkPlaceFlat(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchPlaceFlat(b, 1, false, false) })
	b.Run("parallel", func(b *testing.B) { benchPlaceFlat(b, benchWorkers(), false, false) })
	b.Run("fast", func(b *testing.B) { benchPlaceFlat(b, benchWorkers(), true, false) })
	b.Run("analytic", func(b *testing.B) { benchPlaceFlat(b, benchWorkers(), false, true) })
}
