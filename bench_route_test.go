// Routing and placement engine benchmarks: the large-cache tile's
// route stage and global-placement stage, serial reference (Workers 1)
// against the parallel engines at the host's native GOMAXPROCS
// (Workers 0). Both configurations produce bit-identical results —
// TestWorkerEquivalence asserts exactly that — so the ratio measures
// scheduling, not quality drift. `make bench-route` records the
// comparison in BENCH_route.json; on a single-CPU host Workers 0
// resolves to the serial path and the ratio is ~1.
package macro3d_test

import (
	"sync"
	"testing"

	"macro3d/internal/floorplan"
	"macro3d/internal/netlist"
	"macro3d/internal/obs/trace"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// reportTraceStats runs the execution-trace analyzer over one traced
// engine run and reports the named phase's parallelism numbers as
// benchmark metrics, so `make bench-route` lands worker occupancy,
// serial fraction and the Amdahl ceiling in BENCH_route.json next to
// the wall-clock ratio they explain.
func reportTraceStats(b *testing.B, tr *trace.Tracer, phase string) {
	b.Helper()
	for _, ph := range trace.Analyze(tr).Phases {
		if ph.Phase != phase {
			continue
		}
		b.ReportMetric(ph.Occupancy, phase+"_occupancy")
		b.ReportMetric(ph.SerialFrac, phase+"_serial_frac")
		b.ReportMetric(ph.AmdahlAtW, phase+"_amdahl_atW")
	}
}

// routeBench is the shared placed large-cache tile. Building it once
// is safe: RouteDesign never mutates the design, and place.Place
// reseeds initial positions from its RNG, so repeated stage runs are
// deterministic functions of (design, seed).
var routeBench struct {
	once sync.Once
	err  error

	t  *tech.Tech
	d  *netlist.Design
	fp *floorplan.Floorplan
	sz floorplan.Sizing
}

func routeBenchSetup(b *testing.B) {
	b.Helper()
	routeBench.once.Do(func() {
		routeBench.err = func() error {
			t, err := tech.New28(6)
			if err != nil {
				return err
			}
			tile, err := piton.Generate(piton.LargeCache())
			if err != nil {
				return err
			}
			d := tile.Design
			sz, err := floorplan.SizeDesign(d, 0.70, 1.0, t.RowHeight)
			if err != nil {
				return err
			}
			fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
			if err != nil {
				return err
			}
			floorplan.BuildBlockages(fp, d, netlist.LogicDie)
			floorplan.AssignPorts(tile, sz.Die2D)
			if _, err := place.Place(d, fp, t.RowHeight, place.Options{Seed: 2}); err != nil {
				return err
			}
			// Warm-up route: settles the heap so the generator/placer
			// allocation debt is not collected inside the first timed
			// iteration.
			db := route.NewDB(sz.Die2D, t.Logic, fp.RouteBlk, route.Options{})
			if _, err := route.RouteDesign(d, db); err != nil {
				return err
			}
			routeBench.t, routeBench.d, routeBench.fp = t, d, fp
			routeBench.sz = sz
			return nil
		}()
	})
	if routeBench.err != nil {
		b.Fatal(routeBench.err)
	}
}

func benchRouteDesign(b *testing.B, workers int) {
	routeBenchSetup(b)
	b.ResetTimer()
	var last *route.Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := route.NewDB(routeBench.sz.Die2D, routeBench.t.Logic,
			routeBench.fp.RouteBlk, route.Options{Workers: workers})
		b.StartTimer()
		res, err := route.RouteDesign(routeBench.d, db)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.WL/1e6, "WL_m")
		b.ReportMetric(float64(last.Overflow), "overflow")
	}
	// One extra traced run, off the clock: tracing is only near-zero
	// overhead, so the timed iterations stay untraced.
	b.StopTimer()
	tr := trace.New()
	db := route.NewDB(routeBench.sz.Die2D, routeBench.t.Logic,
		routeBench.fp.RouteBlk, route.Options{Workers: workers, Trace: tr})
	if _, err := route.RouteDesign(routeBench.d, db); err != nil {
		b.Fatal(err)
	}
	reportTraceStats(b, tr, "route")
}

func BenchmarkRouteDesign(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchRouteDesign(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchRouteDesign(b, 0) })
}

func benchPlace(b *testing.B, workers int) {
	routeBenchSetup(b)
	b.ResetTimer()
	var last *place.Result
	for i := 0; i < b.N; i++ {
		res, err := place.Place(routeBench.d, routeBench.fp, routeBench.t.RowHeight,
			place.Options{Seed: 2, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.HPWL/1e6, "HPWL_m")
	}
	b.StopTimer()
	tr := trace.New()
	if _, err := place.Place(routeBench.d, routeBench.fp, routeBench.t.RowHeight,
		place.Options{Seed: 2, Workers: workers, Trace: tr}); err != nil {
		b.Fatal(err)
	}
	reportTraceStats(b, tr, "place")
}

func BenchmarkPlace(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchPlace(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchPlace(b, 0) })
}
