#!/bin/sh
# cache-smoke: end-to-end check of the content-addressed stage cache.
# Runs a tiny flow cold (populating the cache), warm (restoring every
# checkpoint) and in -cache-verify paranoia mode, asserting hit/miss
# counters and byte-identical PPA output; then exercises the -resume
# default directory. Fails on any mismatch.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

echo "cache-smoke: building cmd/macro3d"
$GO build -o "$dir/macro3d" ./cmd/macro3d

run="$dir/macro3d -flow macro3d -config tiny -seed 7"

echo "cache-smoke: cold run (empty cache)"
$run -cache-dir "$dir/stash" >"$dir/cold.out" 2>"$dir/cold.err"
grep -Eq 'stage cache .*: 0 hits, [1-9][0-9]* misses, [1-9][0-9]* stored' "$dir/cold.err" || {
	echo "cache-smoke: FAIL: cold run stats should show misses and stores, no hits" >&2
	cat "$dir/cold.err" >&2
	exit 1
}
ls "$dir/stash"/*.snap >/dev/null 2>&1 || { echo "cache-smoke: FAIL: no snapshots on disk" >&2; exit 1; }

echo "cache-smoke: warm run (every checkpoint restored)"
$run -cache-dir "$dir/stash" >"$dir/warm.out" 2>"$dir/warm.err"
grep -Eq 'stage cache .*: [1-9][0-9]* hits, 0 misses' "$dir/warm.err" || {
	echo "cache-smoke: FAIL: warm run stats should show hits and no misses" >&2
	cat "$dir/warm.err" >&2
	exit 1
}
cmp -s "$dir/cold.out" "$dir/warm.out" || {
	echo "cache-smoke: FAIL: warm PPA output differs from cold" >&2
	diff "$dir/cold.out" "$dir/warm.out" >&2 || true
	exit 1
}

echo "cache-smoke: -cache-verify paranoia pass"
$run -cache-dir "$dir/stash" -cache-verify >"$dir/verify.out" 2>"$dir/verify.err"
grep -Eq 'stage cache .*: [1-9][0-9]* hits, .* 0 errors' "$dir/verify.err" || {
	echo "cache-smoke: FAIL: verify run should confirm every hit without errors" >&2
	cat "$dir/verify.err" >&2
	exit 1
}
cmp -s "$dir/cold.out" "$dir/verify.out" || {
	echo "cache-smoke: FAIL: verify PPA output differs from cold" >&2
	exit 1
}

echo "cache-smoke: -resume default directory"
(cd "$dir" && ./macro3d -flow macro3d -config tiny -seed 7 -resume >/dev/null 2>&1)
[ -d "$dir/.macro3d-stash" ] || { echo "cache-smoke: FAIL: -resume did not create .macro3d-stash" >&2; exit 1; }
(cd "$dir" && ./macro3d -flow macro3d -config tiny -seed 7 -resume >resume.out 2>resume.err)
grep -Eq 'stage cache .*: [1-9][0-9]* hits, 0 misses' "$dir/resume.err" || {
	echo "cache-smoke: FAIL: second -resume run should be all hits" >&2
	cat "$dir/resume.err" >&2
	exit 1
}
cmp -s "$dir/cold.out" "$dir/resume.out" || {
	echo "cache-smoke: FAIL: -resume PPA output differs from cold" >&2
	exit 1
}

echo "cache-smoke: OK"
