#!/bin/sh
# obs-smoke: end-to-end check of the enabled observability path.
# Runs a tiny flow with -events and -obs-addr, scrapes /metrics and
# /debug/vars while the server lingers, validates the JSONL stream and
# the final -metrics-out snapshot, and fails on any malformed output.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT INT TERM

echo "obs-smoke: building cmd/macro3d"
$GO build -o "$dir/macro3d" ./cmd/macro3d

echo "obs-smoke: running tiny macro3d flow with observability on"
"$dir/macro3d" -flow macro3d -config tiny -seed 7 \
	-events "$dir/events.jsonl" \
	-metrics-out "$dir/metrics.prom" \
	-obs-addr 127.0.0.1:0 -obs-linger 60s \
	>"$dir/stdout.log" 2>"$dir/stderr.log" &
pid=$!

# The bound URL (ephemeral port) is printed on startup.
url=""
for _ in $(seq 1 100); do
	url=$(sed -n 's#.*observability endpoint at \(http://[^/ ]*\)/metrics.*#\1#p' "$dir/stderr.log" | head -n 1)
	[ -n "$url" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: FAIL: run exited before printing the endpoint URL" >&2; cat "$dir/stderr.log" >&2; exit 1; }
	sleep 0.1
done
[ -n "$url" ] || { echo "obs-smoke: FAIL: endpoint URL never appeared on stderr" >&2; exit 1; }
echo "obs-smoke: endpoint $url"

# Poll /metrics until the flow has finished (flow_runs_completed_total
# is only incremented when a flow completes its stage sequence).
done=""
for _ in $(seq 1 600); do
	if curl -fsS "$url/metrics" 2>/dev/null | grep -q '^flow_runs_completed_total [1-9]'; then
		done=1
		break
	fi
	kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: FAIL: run died before completing" >&2; cat "$dir/stderr.log" >&2; exit 1; }
	sleep 0.1
done
[ -n "$done" ] || { echo "obs-smoke: FAIL: flow_runs_completed_total never reached 1 on /metrics" >&2; exit 1; }

echo "obs-smoke: checking /metrics families and exposition format"
curl -fsS "$url/metrics" >"$dir/live.prom"
for family in route_ place_ sta_ ddb_; do
	grep -q "^$family" "$dir/live.prom" || {
		echo "obs-smoke: FAIL: /metrics lacks the $family family" >&2
		cat "$dir/live.prom" >&2
		exit 1
	}
done
# Every non-comment line must be exactly "<name>[{labels}] <value>".
awk '!/^# / && NF != 2 { print "obs-smoke: FAIL: malformed exposition line: " $0; bad = 1 } END { exit bad }' "$dir/live.prom"

echo "obs-smoke: checking /debug/vars"
vars=$(curl -fsS "$url/debug/vars")
case "$vars" in
"{"*) ;;
*) echo "obs-smoke: FAIL: /debug/vars is not a JSON object" >&2; exit 1 ;;
esac
echo "$vars" | grep -q '"memstats"' || { echo "obs-smoke: FAIL: /debug/vars lacks memstats" >&2; exit 1; }

echo "obs-smoke: stopping the lingering server"
kill "$pid"
wait "$pid" 2>/dev/null || true

echo "obs-smoke: validating the JSONL event stream"
[ -s "$dir/events.jsonl" ] || { echo "obs-smoke: FAIL: events file is empty" >&2; exit 1; }
awk 'substr($0, 1, 1) != "{" { print "obs-smoke: FAIL: non-JSON event line: " $0; bad = 1 } END { exit bad }' "$dir/events.jsonl"
grep -q '"ev":"span_open"' "$dir/events.jsonl" || { echo "obs-smoke: FAIL: no span_open events" >&2; exit 1; }
grep -q '"ev":"span_close"' "$dir/events.jsonl" || { echo "obs-smoke: FAIL: no span_close events" >&2; exit 1; }
grep -q '"ev":"sample"' "$dir/events.jsonl" || { echo "obs-smoke: FAIL: no sample events" >&2; exit 1; }

echo "obs-smoke: validating the -metrics-out snapshot"
[ -s "$dir/metrics.prom" ] || { echo "obs-smoke: FAIL: -metrics-out wrote nothing" >&2; exit 1; }
grep -q '^flow_runs_completed_total' "$dir/metrics.prom" || { echo "obs-smoke: FAIL: snapshot lacks flow_runs_completed_total" >&2; exit 1; }

echo "obs-smoke: OK"
