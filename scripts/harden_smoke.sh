#!/bin/sh
# harden-smoke: end-to-end check of the hierarchical hardened-macro
# flow. Hardens the tiny tile cold (populating the cache with the
# abstract), re-hardens warm and instantiates a 3×3 parent array off
# the cached abstract, asserting the harden-cache counters, a clean
# parent verification, timing closure at the tile period, and a
# well-formed abstract LEF export. Fails on any mismatch.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

echo "harden-smoke: building cmd/macro3d"
$GO build -o "$dir/macro3d" ./cmd/macro3d

run="$dir/macro3d harden -config tiny -seed 7 -cache-dir $dir/stash"

echo "harden-smoke: cold harden (abstract hardened fresh)"
$run -o "$dir/abs.lef" >"$dir/cold.out" 2>"$dir/cold.err"
grep -q 'hardened,' "$dir/cold.out" || {
	echo "harden-smoke: FAIL: cold run should harden fresh" >&2
	cat "$dir/cold.out" >&2
	exit 1
}
grep -Eq 'hardened abstracts: 0 cache hits, 1 hardened fresh' "$dir/cold.err" || {
	echo "harden-smoke: FAIL: cold harden-cache counters wrong" >&2
	cat "$dir/cold.err" >&2
	exit 1
}
grep -Eq '[1-9][0-9]* on _MD layers' "$dir/cold.out" || {
	echo "harden-smoke: FAIL: abstract carries no macro-die obstructions" >&2
	cat "$dir/cold.out" >&2
	exit 1
}
grep -q 'MACRO ' "$dir/abs.lef" && grep -q 'PROPERTY abstract' "$dir/abs.lef" \
	&& grep -q 'PROPERTY arc' "$dir/abs.lef" && grep -q 'OBS' "$dir/abs.lef" || {
	echo "harden-smoke: FAIL: abstract LEF missing macro/properties/obstructions" >&2
	exit 1
}

echo "harden-smoke: warm harden + 3x3 parent array"
$run -array 3 >"$dir/warm.out" 2>"$dir/warm.err"
grep -q '(cache,' "$dir/warm.out" || {
	echo "harden-smoke: FAIL: warm run should reload the abstract from cache" >&2
	cat "$dir/warm.out" >&2
	exit 1
}
grep -Eq 'hardened abstracts: 1 cache hits, 0 hardened fresh' "$dir/warm.err" || {
	echo "harden-smoke: FAIL: warm harden-cache counters wrong" >&2
	cat "$dir/warm.err" >&2
	exit 1
}
grep -q 'timing closes: true' "$dir/warm.out" || {
	echo "harden-smoke: FAIL: hierarchical array did not close at the tile period" >&2
	cat "$dir/warm.out" >&2
	exit 1
}
grep -q 'verification   clean' "$dir/warm.out" || {
	echo "harden-smoke: FAIL: parent array verification not clean" >&2
	cat "$dir/warm.out" >&2
	exit 1
}

echo "harden-smoke: PASS"
