#!/bin/sh
# serve-smoke: end-to-end check of the "macro3d serve" daemon. Starts
# the daemon with a shared byte-capped stage cache, submits two
# overlapping sweep jobs, asserts the second is served from the first
# job's warm snapshots with an identical result, exercises queue
# rejection surfaces, and checks a clean SIGTERM drain (exit 0).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$dir"' EXIT INT TERM

echo "serve-smoke: building cmd/macro3d"
$GO build -o "$dir/macro3d" ./cmd/macro3d

echo "serve-smoke: starting the daemon"
"$dir/macro3d" serve -addr 127.0.0.1:0 -workers 2 -queue 8 \
	-cache-dir "$dir/stash" -cache-max-bytes 268435456 \
	>"$dir/stdout.log" 2>"$dir/stderr.log" &
pid=$!

# The bound URL (ephemeral port) is printed on startup.
url=""
for _ in $(seq 1 100); do
	url=$(sed -n 's#.*listening at \(http://[^/ ]*\).*#\1#p' "$dir/stderr.log" | head -n 1)
	[ -n "$url" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: FAIL: daemon exited before printing its URL" >&2; cat "$dir/stderr.log" >&2; exit 1; }
	sleep 0.1
done
[ -n "$url" ] || { echo "serve-smoke: FAIL: daemon URL never appeared on stderr" >&2; exit 1; }
echo "serve-smoke: daemon at $url"

curl -fsS "$url/healthz" | grep -q '"status": "ok"' || {
	echo "serve-smoke: FAIL: /healthz not ok" >&2; exit 1; }

# submit_job <json> -> job id on stdout
submit_job() {
	curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$url/jobs" |
		sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1
}

# await_job <id>: poll until terminal; prints the final state.
await_job() {
	for _ in $(seq 1 1200); do
		state=$(curl -fsS "$url/jobs/$1" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -n 1)
		case "$state" in
		done|failed|canceled) echo "$state"; return 0 ;;
		esac
		sleep 0.1
	done
	echo "timeout"
	return 1
}

spec='{"sweep":"pitch","config":"tiny","seed":7,"pitches":[2,5]}'

echo "serve-smoke: submitting sweep job A (cold)"
a=$(submit_job "$spec")
[ -n "$a" ] || { echo "serve-smoke: FAIL: job A not accepted" >&2; exit 1; }
sa=$(await_job "$a")
[ "$sa" = "done" ] || { echo "serve-smoke: FAIL: job A ended $sa" >&2; curl -fsS "$url/jobs/$a" >&2; exit 1; }

echo "serve-smoke: submitting identical sweep job B (warm)"
b=$(submit_job "$spec")
[ -n "$b" ] || { echo "serve-smoke: FAIL: job B not accepted" >&2; exit 1; }
sb=$(await_job "$b")
[ "$sb" = "done" ] || { echo "serve-smoke: FAIL: job B ended $sb" >&2; exit 1; }

echo "serve-smoke: comparing results and cache hits"
curl -fsS "$url/jobs/$a" | sed -n 's/.*"result": "\(.*\)".*/\1/p' >"$dir/a.result"
curl -fsS "$url/jobs/$b" | sed -n 's/.*"result": "\(.*\)".*/\1/p' >"$dir/b.result"
[ -s "$dir/a.result" ] || { echo "serve-smoke: FAIL: job A has no result" >&2; exit 1; }
cmp -s "$dir/a.result" "$dir/b.result" || {
	echo "serve-smoke: FAIL: warm job B's result differs from cold job A's" >&2; exit 1; }
hits=$(curl -fsS "$url/stashz" | sed -n 's/.*"Hits": \([0-9]*\).*/\1/p' | head -n 1)
[ -n "$hits" ] && [ "$hits" -gt 0 ] || {
	echo "serve-smoke: FAIL: warm job produced no cache hits (hits=$hits)" >&2
	curl -fsS "$url/stashz" >&2
	exit 1
}
echo "serve-smoke: warm run hit the shared cache $hits times"

echo "serve-smoke: checking rejection surfaces"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d '{}' "$url/jobs")
[ "$code" = "400" ] || { echo "serve-smoke: FAIL: invalid spec answered $code, want 400" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
	-d '{"flow":"2d","config":"tiny","fault":"panic"}' "$url/jobs")
[ "$code" = "400" ] || { echo "serve-smoke: FAIL: fault injection without -allow-faults answered $code, want 400" >&2; exit 1; }
curl -fsS "$url/metrics" | grep -q '^serve_jobs_submitted_total' || {
	echo "serve-smoke: FAIL: /metrics lacks serve_ counters" >&2; exit 1; }

echo "serve-smoke: draining with SIGTERM"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
[ "$status" = "0" ] || { echo "serve-smoke: FAIL: daemon exited $status on SIGTERM drain" >&2; cat "$dir/stderr.log" >&2; exit 1; }
grep -q 'stage cache' "$dir/stderr.log" || { echo "serve-smoke: FAIL: no cache summary on shutdown" >&2; exit 1; }

echo "serve-smoke: OK"
