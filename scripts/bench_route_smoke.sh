#!/bin/sh
# Benchmark-pipeline smoke: one cheap flat-array benchmark run
# (BENCH_ROUTE_N=1, count 1) piped through benchjson must land the
# flat speedup pair, its confidence/noise verdict, stddev/CV fields
# and the pinned environment (gomaxprocs, workers) in the JSON.
# Guards the `make bench-route` plumbing — bench_route_test.go's
# fixtures and metrics plus cmd/benchjson's aggregation — without the
# cost of the full -count 5, N=3 measurement run.
set -eu
: "${GO:=go}"
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

echo "bench-route-smoke: running the flat route+place benchmarks (N=1, count 1)"
BENCH_ROUTE_N=1 BENCH_ROUTE_J=4 $GO test -bench 'BenchmarkRouteFlat|BenchmarkPlaceFlat' \
	-count 1 -benchtime 1x -run '^$' . >"$dir/bench.out"
$GO run ./cmd/benchjson <"$dir/bench.out" >"$dir/bench.json"
cat "$dir/bench.json"

need() {
	grep -q "$1" "$dir/bench.json" || {
		echo "bench-route-smoke: FAIL: missing $1 in benchjson output" >&2
		exit 1
	}
}
need '"flat_route_serial_over_parallel"'
need '"flat_route_serial_over_sharded"'
need '"noise"'
need '"stddev_ns_per_op"'
need '"cv"'
need '"gomaxprocs"'
need '"workers": 4'
need '"route_cp_speedup/flat_sharded"'
need '"route_occupancy/flat_parallel"'
need '"flat_place_serial_over_analytic"'
need '"flat_place_analytic_hpwl_over_default"'

echo "bench-route-smoke: OK"
