#!/bin/sh
# trace-smoke: end-to-end check of the execution tracer.
# Runs a tiny flow with -trace, validates the Chrome trace-event JSON,
# feeds it back through `macro3d trace-report -in`, asserts the
# bottleneck table names the engine phases, and checks that two
# identical traced runs export byte-identical JSON once timestamps are
# normalized (the determinism contract from DESIGN.md §14).
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

echo "trace-smoke: building cmd/macro3d"
$GO build -o "$dir/macro3d" ./cmd/macro3d

echo "trace-smoke: running tiny macro3d flow twice with -trace"
"$dir/macro3d" -flow macro3d -config tiny -seed 7 -j 4 -trace "$dir/run1.trace.json" >"$dir/run1.out" 2>&1
"$dir/macro3d" -flow macro3d -config tiny -seed 7 -j 4 -trace "$dir/run2.trace.json" >"$dir/run2.out" 2>&1

echo "trace-smoke: validating Chrome trace-event JSON shape"
for f in run1 run2; do
	[ -s "$dir/$f.trace.json" ] || { echo "trace-smoke: FAIL: $f.trace.json is empty" >&2; exit 1; }
	head -c 16 "$dir/$f.trace.json" | grep -q '{"traceEvents"' || {
		echo "trace-smoke: FAIL: $f.trace.json does not open with a traceEvents array" >&2
		head -c 200 "$dir/$f.trace.json" >&2
		exit 1
	}
	for needle in '"ph":"M"' '"ph":"X"' '"name":"worker 0"' '"name":"stages"' '"cat":"route"' '"cat":"place"'; do
		grep -q "$needle" "$dir/$f.trace.json" || {
			echo "trace-smoke: FAIL: $f.trace.json lacks $needle" >&2
			exit 1
		}
	done
done

echo "trace-smoke: checking normalized determinism of the two runs"
norm() { sed 's/"ts":[0-9.e+-]*/"ts":0/g; s/"dur":[0-9.e+-]*/"dur":0/g' "$1"; }
norm "$dir/run1.trace.json" >"$dir/run1.norm"
norm "$dir/run2.trace.json" >"$dir/run2.norm"
cmp -s "$dir/run1.norm" "$dir/run2.norm" || {
	echo "trace-smoke: FAIL: normalized traces of identical runs differ" >&2
	diff "$dir/run1.norm" "$dir/run2.norm" | head -20 >&2
	exit 1
}

echo "trace-smoke: running trace-report on the recorded trace"
"$dir/macro3d" trace-report -in "$dir/run1.trace.json" -top 10 >"$dir/report.txt"
cat "$dir/report.txt"
grep -q '^trace: wall' "$dir/report.txt" || { echo "trace-smoke: FAIL: report lacks the wall-clock header" >&2; exit 1; }
grep -q 'amdahl@inf' "$dir/report.txt" || { echo "trace-smoke: FAIL: report lacks the Amdahl columns" >&2; exit 1; }
for phase in route place; do
	grep -q "^$phase " "$dir/report.txt" || {
		echo "trace-smoke: FAIL: report lacks the $phase phase row" >&2
		exit 1
	}
done
grep -q 'serial segments by wall-clock share' "$dir/report.txt" || {
	echo "trace-smoke: FAIL: report lacks the serial-segment table" >&2
	exit 1
}

echo "trace-smoke: run-and-report in one step"
"$dir/macro3d" trace-report -flow 2d -config tiny -seed 7 -j 4 -top 5 >"$dir/report2.txt" 2>"$dir/report2.err"
grep -q '^trace: wall' "$dir/report2.txt" || { echo "trace-smoke: FAIL: -flow report lacks the wall-clock header" >&2; cat "$dir/report2.err" >&2; exit 1; }

echo "trace-smoke: checking PPA is byte-identical with tracing off"
"$dir/macro3d" -flow macro3d -config tiny -seed 7 -j 4 >"$dir/off.out" 2>&1
cmp -s "$dir/run1.out" "$dir/off.out" || {
	echo "trace-smoke: FAIL: -trace changed the flow's output" >&2
	diff "$dir/run1.out" "$dir/off.out" >&2
	exit 1
}

echo "trace-smoke: OK"
