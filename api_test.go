package macro3d_test

import (
	"strings"
	"testing"

	"macro3d"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// The facade tests run the public API end to end on the tiny tile.

func tinyFlowConfig() macro3d.FlowConfig {
	return macro3d.FlowConfig{Piton: macro3d.TinyTile(), Seed: 9}
}

func TestPublicAPITinyFlows(t *testing.T) {
	p2d, st2d, err := macro3d.Run2D(tinyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p2d.FclkMHz <= 0 || st2d.Design == nil {
		t.Fatal("2D flow result incomplete")
	}
	p3d, st3d, mol, err := macro3d.RunMacro3D(tinyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mol.EditedMacros == 0 {
		t.Fatal("no macros edited")
	}
	logic, macroDie, err := macro3d.SeparateDies(mol, st3d)
	if err != nil {
		t.Fatal(err)
	}
	if logic.StdCells == 0 || macroDie.Macros == 0 {
		t.Fatal("separation incomplete")
	}
	if len(logic.Bumps) != p3d.F2FBumps {
		t.Fatalf("bump accounting differs: %d vs %d", len(logic.Bumps), p3d.F2FBumps)
	}
}

func TestPublicAPITechAndCells(t *testing.T) {
	tech, err := macro3d.New28(6)
	if err != nil {
		t.Fatal(err)
	}
	macroStack, err := macro3d.NewBEOL28("m", 4)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := macro3d.CombineBEOL(tech.Logic, macroStack, macro3d.DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	if comb.NumLayers() != 10 {
		t.Fatalf("combined layers = %d", comb.NumLayers())
	}
	sram, err := macro3d.NewSRAM(macro3d.SRAMSpec{Name: "s", Words: 512, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	edited, err := macro3d.EditMacroForMacroDie(sram, 0.19, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Pins[0].Layer != "M4_MD" {
		t.Fatalf("edit failed: %s", edited.Pins[0].Layer)
	}
}

func TestPublicAPILEFDEF(t *testing.T) {
	lib := macro3d.NewStdLib28(macro3d.DefaultLibOptions())
	b, _ := macro3d.NewBEOL28("l", 4)
	var sb strings.Builder
	if err := macro3d.WriteLEF(&sb, b, lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := macro3d.ParseLEF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Lib.Len() != lib.Len() {
		t.Fatal("LEF round trip lost masters")
	}
	rew := macro3d.RewriteMacroDieLayers(sb.String(), 0.19, 1.2)
	if rew == "" {
		t.Fatal("rewrite produced nothing")
	}
}

func TestPublicAPIViz(t *testing.T) {
	tile, err := macro3d.GenerateTile(macro3d.TinyTile())
	if err != nil {
		t.Fatal(err)
	}
	// Unplaced design still renders the die and ports.
	svg := macro3d.LayoutSVG(tile.Design, tileDie(), macro3d.VizOptions{Title: "tiny"})
	if !strings.Contains(svg, "<svg") {
		t.Fatal("no SVG")
	}
	cs := macro3d.CrossSectionSVG(6, 4, true)
	if !strings.Contains(cs, "F2F_VIA") {
		t.Fatal("cross section lost the F2F layer")
	}
	var ld = netlist.LogicDie
	_ = macro3d.ASCIIDensity(tile.Design, tileDie(), 20, &ld)
}

func tileDie() geom.Rect { return geom.R(0, 0, 500, 500) }
