GO ?= go

.PHONY: check build test vet race equiv faults bench bench-route bench-stash benchall obs-smoke cache-smoke

## check: the full gate — vet, build, unit tests, the race-enabled
## fault-injection suite, then the observability and stage-cache smoke
## tests (what CI should run).
check: vet build test race obs-smoke cache-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: race-enabled run of the hardened-runner, fault-harness and
## incremental-engine packages. Includes the ddb equivalence property
## test (parallel extract/STA at GOMAXPROCS 4) and the flows
## worker-equivalence test, which audits the parallel router and
## placer for data races while asserting bit-identical PPA against the
## -j 1 serial reference; under -race both run reduced configs — see
## the race_on_test.go files.
race:
	$(GO) test -race ./internal/faults/ ./internal/report/ ./internal/obs/
	$(GO) test -race -timeout 30m ./internal/flows/ ./internal/ddb/ ./internal/opt/

## equiv: just the parallel-vs-serial equivalence proof — every flow at
## -j 1 / 4 / 0 must produce an identical PPA, run under the race
## detector. A focused subset of what `make check` already covers.
equiv:
	$(GO) test -race -timeout 30m -run TestWorkerEquivalence -v ./internal/flows/

## obs-smoke: end-to-end observability check — tiny flow with -events
## and -obs-addr, live /metrics and /debug/vars scrapes, JSONL and
## Prometheus snapshot validation. Fails on any malformed output.
obs-smoke:
	GO="$(GO)" sh scripts/obs_smoke.sh

## cache-smoke: end-to-end stage-cache check — tiny flow cold, warm and
## in -cache-verify mode, asserting hit counters and byte-identical PPA
## output, plus the -resume default directory.
cache-smoke:
	GO="$(GO)" sh scripts/cache_smoke.sh

## faults: just the fault-injection matrix, verbosely.
faults:
	$(GO) test -race -v -run 'TestInjection|TestOffGrid|TestCleanFlows' ./internal/faults/

## bench: the incremental-optimizer comparison — TableII end to end plus
## the Optimize full-vs-incremental micro-benchmarks — recorded as
## machine-readable BENCH_opt.json.
bench:
	$(GO) test -bench 'TableII|Optimize' -count 5 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson | tee BENCH_opt.json

## bench-route: the parallel-engine comparison — large-cache route and
## placement stages, serial (-j 1) vs parallel (-j 0, native
## GOMAXPROCS) — recorded as machine-readable BENCH_route.json. The
## serial/parallel ratio is pure scheduling win: both configurations
## produce bit-identical results (see `make equiv`).
bench-route:
	$(GO) test -bench 'BenchmarkRouteDesign|BenchmarkPlace' -count 5 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson | tee BENCH_route.json

## bench-stash: the stage-cache comparison — the Table I sweep cold
## (populating the cache) vs warm (restoring every checkpoint), both
## verified against an uncached reference — recorded as BENCH_stash.json
## with the stash_cold_over_warm headline ratio.
bench-stash:
	$(GO) test -bench BenchmarkStashSweep -count 3 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_stash.json
	cat BENCH_stash.json

## benchall: every benchmark, human-readable.
benchall:
	$(GO) test -bench=. -benchmem
