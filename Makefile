GO ?= go

.PHONY: check build test vet race equiv faults bench bench-route bench-stash bench-harden benchall obs-smoke cache-smoke serve-smoke harden-smoke trace-smoke bench-route-smoke serve-load

## check: the full gate — vet, build, unit tests, the race-enabled
## fault-injection suite, then the observability, stage-cache, daemon,
## hardened-macro and execution-tracer smoke tests (what CI should run).
check: vet build test race obs-smoke cache-smoke serve-smoke harden-smoke trace-smoke bench-route-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: race-enabled run of the hardened-runner, fault-harness and
## incremental-engine packages. Includes the ddb equivalence property
## test (parallel extract/STA at GOMAXPROCS 4) and the flows
## worker-equivalence tests — default and -analytic-place — which
## audit the parallel router and placers for data races while
## asserting identical PPA against the -j 1 serial reference; under
## -race both run reduced configs — see the race_on_test.go files.
## internal/place rides along for the analytic placer's own
## determinism and quality tests.
race:
	$(GO) test -race ./internal/faults/ ./internal/report/ ./internal/obs/ ./internal/stash/ ./internal/serve/
	$(GO) test -race -timeout 30m ./internal/flows/ ./internal/ddb/ ./internal/opt/ ./internal/place/

## equiv: just the parallel-vs-serial equivalence proof — every flow at
## -j 1 / 4 / 0 must produce an identical PPA, run under the race
## detector. A focused subset of what `make check` already covers.
equiv:
	$(GO) test -race -timeout 30m -run TestWorkerEquivalence -v ./internal/flows/

## obs-smoke: end-to-end observability check — tiny flow with -events
## and -obs-addr, live /metrics and /debug/vars scrapes, JSONL and
## Prometheus snapshot validation. Fails on any malformed output.
obs-smoke:
	GO="$(GO)" sh scripts/obs_smoke.sh

## cache-smoke: end-to-end stage-cache check — tiny flow cold, warm and
## in -cache-verify mode, asserting hit counters and byte-identical PPA
## output, plus the -resume default directory.
cache-smoke:
	GO="$(GO)" sh scripts/cache_smoke.sh

## serve-smoke: end-to-end daemon check — start "macro3d serve" with a
## byte-capped shared cache, submit two overlapping sweep jobs, assert
## the second is served warm with an identical result, then drain
## cleanly on SIGTERM.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

## harden-smoke: end-to-end hierarchical-flow check — harden the tiny
## tile cold into the cache, reload it warm into a 3×3 parent array,
## asserting harden-cache counters, clean verification, closure at the
## tile period and a well-formed abstract LEF export.
harden-smoke:
	GO="$(GO)" sh scripts/harden_smoke.sh

## trace-smoke: end-to-end execution-tracer check — tiny flow with
## -trace, Chrome trace-event JSON validation, normalized-determinism
## comparison of two identical runs, the trace-report bottleneck table,
## and byte-identical flow output with tracing off.
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh

## bench-route-smoke: benchmark-pipeline check — one cheap flat-array
## benchmark run (N=1, count 1) piped through benchjson, asserting the
## speedup pairs, their noise verdicts, stddev/CV, the analytic
## placer's HPWL quality row and the pinned environment all land in
## the JSON.
bench-route-smoke:
	GO="$(GO)" sh scripts/bench_route_smoke.sh

## serve-load: the multi-tenant load driver — 8 concurrent tenants with
## overlapping specs against a small queue (exercising 429
## backpressure) plus one injected panicking job; asserts zero
## dropped/corrupted results, panic isolation, cross-tenant cache hits
## and the cache byte cap, and prints a JSON summary.
serve-load:
	$(GO) run ./cmd/serveload -tenants 8 -jobs-per-tenant 2 -workers 4 -queue 2

## faults: just the fault-injection matrix, verbosely.
faults:
	$(GO) test -race -v -run 'TestInjection|TestOffGrid|TestCleanFlows' ./internal/faults/

## bench: the incremental-optimizer comparison — TableII end to end plus
## the Optimize full-vs-incremental micro-benchmarks — recorded as
## machine-readable BENCH_opt.json.
bench:
	$(GO) test -bench 'TableII|Optimize' -count 5 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson | tee BENCH_opt.json

## bench-route: the parallel-engine comparison — the large-cache tile
## and the flat BENCH_SIZE×BENCH_SIZE tile array, serial (-j 1) vs the
## default parallel engines vs -fast-route (sharded router, banded
## legalizer) vs -analytic-place (electrostatics placer) at BENCH_J
## pinned workers — recorded as machine-readable BENCH_route.json with
## stddev/CV, a noise verdict per speedup pair, and the analytic
## placer's HPWL-over-default quality ratio. Knobs: BENCH_COUNT
## repetitions, BENCH_SIZE array edge, BENCH_J workers, e.g.
## `make bench-route BENCH_COUNT=3 BENCH_SIZE=2`.
BENCH_COUNT ?= 5
BENCH_SIZE  ?= 3
BENCH_J     ?= 8
bench-route:
	BENCH_ROUTE_N=$(BENCH_SIZE) BENCH_ROUTE_J=$(BENCH_J) $(GO) test -timeout 0 -bench 'BenchmarkRouteDesign|BenchmarkPlace|BenchmarkRouteFlat|BenchmarkPlaceFlat' -count $(BENCH_COUNT) -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson | tee BENCH_route.json

## bench-stash: the stage-cache comparison — the Table I sweep cold
## (populating the cache) vs warm (restoring every checkpoint), both
## verified against an uncached reference — recorded as BENCH_stash.json
## with the stash_cold_over_warm headline ratio.
bench-stash:
	$(GO) test -bench BenchmarkStashSweep -count 3 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_stash.json
	cat BENCH_stash.json

## bench-harden: the hierarchical-flow comparison — the same 4×4 tile
## array re-verified flat (full STA over every cell) vs instantiated
## from a cached hardened abstract in the parent flow — recorded as
## BENCH_harden.json with the harden_flat_over_hier headline ratio.
bench-harden:
	$(GO) test -bench BenchmarkHardenArray -count 3 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_harden.json
	cat BENCH_harden.json

## benchall: every benchmark, human-readable.
benchall:
	$(GO) test -bench=. -benchmem
