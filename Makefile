GO ?= go

.PHONY: check build test vet race faults bench

## check: the full gate — vet, build, unit tests, then the race-enabled
## fault-injection suite (what CI should run).
check: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: race-enabled run of the hardened-runner and fault-harness
## packages (the fault matrix is skipped under -short).
race:
	$(GO) test -race ./internal/faults/ ./internal/flows/ ./internal/report/

## faults: just the fault-injection matrix, verbosely.
faults:
	$(GO) test -race -v -run 'TestInjection|TestOffGrid|TestCleanFlows' ./internal/faults/

bench:
	$(GO) test -bench=. -benchmem
