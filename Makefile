GO ?= go

.PHONY: check build test vet race faults bench benchall obs-smoke

## check: the full gate — vet, build, unit tests, the race-enabled
## fault-injection suite, then the observability smoke test (what CI
## should run).
check: vet build test race obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: race-enabled run of the hardened-runner, fault-harness and
## incremental-engine packages (includes the ddb equivalence property
## test, which exercises the parallel extract/STA paths at GOMAXPROCS 4;
## under -race it runs the small-cache config only — see race_on_test.go).
race:
	$(GO) test -race ./internal/faults/ ./internal/flows/ ./internal/report/ ./internal/obs/
	$(GO) test -race -timeout 30m ./internal/ddb/ ./internal/opt/

## obs-smoke: end-to-end observability check — tiny flow with -events
## and -obs-addr, live /metrics and /debug/vars scrapes, JSONL and
## Prometheus snapshot validation. Fails on any malformed output.
obs-smoke:
	GO="$(GO)" sh scripts/obs_smoke.sh

## faults: just the fault-injection matrix, verbosely.
faults:
	$(GO) test -race -v -run 'TestInjection|TestOffGrid|TestCleanFlows' ./internal/faults/

## bench: the incremental-optimizer comparison — TableII end to end plus
## the Optimize full-vs-incremental micro-benchmarks — recorded as
## machine-readable BENCH_opt.json.
bench:
	$(GO) test -bench 'TableII|Optimize' -count 5 -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson | tee BENCH_opt.json

## benchall: every benchmark, human-readable.
benchall:
	$(GO) test -bench=. -benchmem
