package route

import (
	"container/heap"
	"fmt"
	"sort"

	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/tech"
)

// RouteDesign globally routes every non-clock signal net of the design
// over the database's grid, then runs negotiation iterations until
// overflow clears or the iteration budget is spent.
func RouteDesign(d *netlist.Design, db *DB) (*Result, error) {
	res := &Result{
		Routes:     make([]*NetRoute, len(d.Nets)),
		WLPerLayer: make([]float64, db.Beol.NumLayers()),
	}

	// Initial pattern routing, long nets first (they set the congestion
	// landscape the short nets then dodge).
	order := make([]*netlist.Net, 0, len(d.Nets))
	for _, n := range d.Nets {
		if n.Clock || len(n.Sinks) == 0 {
			continue
		}
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool {
		hi, hj := order[i].HPWL(), order[j].HPWL()
		if hi != hj {
			return hi > hj
		}
		return order[i].ID < order[j].ID
	})
	// Metric handles are hoisted out of the negotiation loop; every
	// call is a no-op when no recorder backs the stage span.
	sp := db.opt.Obs
	reg := sp.Reg()
	routedC := reg.Counter("route_nets_routed_total",
		"Signal nets routed by the initial pattern pass.")
	iterC := reg.Counter("route_negotiation_iterations_total",
		"Rip-up-and-reroute negotiation iterations executed.")
	ripupC := reg.Counter("route_ripup_nets_total",
		"Overflowed nets ripped up and rerouted during negotiation.")
	failC := reg.Counter("route_reroute_failed_total",
		"Rip-up attempts that kept the old route after a failed reroute.")
	overG := reg.Gauge("route_overflow_gcells",
		"Gcell-layers above capacity after the latest negotiation state.")

	for _, n := range order {
		r, err := db.routeNet(n, false)
		if err != nil {
			return nil, err
		}
		db.addUsage(r, 1)
		res.Routes[n.ID] = r
	}
	routedC.Add(uint64(len(order)))

	// Negotiated rip-up and reroute. Early iterations reroute with
	// congestion-aware pattern routes (cheap); later iterations escal-
	// ate to full maze search for the stubborn remainder.
	for it := 0; it < db.opt.MaxIters; it++ {
		over := db.Overflow()
		overG.Set(float64(over))
		if over == 0 {
			break
		}
		db.bumpHistory()
		victims := db.overflowedNets(res)
		if len(victims) == 0 {
			break
		}
		isp := sp.Child("rip-up-iter",
			obs.KV("iter", it), obs.KV("overflow", over), obs.KV("victims", len(victims)))
		iterC.Inc()
		// Bound the work per iteration; the worst offenders first
		// (longest nets through congestion).
		sort.Slice(victims, func(i, j int) bool { return victims[i].HPWL() > victims[j].HPWL() })
		const maxVictims = 600
		if len(victims) > maxVictims {
			victims = victims[:maxVictims]
		}
		useMaze := it >= 2
		for _, n := range victims {
			old := res.Routes[n.ID]
			db.addUsage(old, -1)
			r, err := db.routeNet(n, useMaze)
			if err != nil {
				// Keep the old route rather than fail the design.
				db.addUsage(old, 1)
				failC.Inc()
				continue
			}
			db.addUsage(r, 1)
			res.Routes[n.ID] = r
		}
		ripupC.Add(uint64(len(victims)))
		isp.End()
	}

	// Final accounting.
	for _, r := range res.Routes {
		if r == nil {
			continue
		}
		r.WL, r.Vias, r.F2F = 0, 0, 0
		for _, s := range r.Segments {
			if s.IsVia() {
				r.Vias++
				lo := min(s.A.L, s.B.L)
				if db.f2fIdx >= 0 && lo == db.f2fIdx {
					r.F2F++
				}
				continue
			}
			l := db.segLen(s)
			r.WL += l
			res.WLPerLayer[s.A.L] += l
		}
		res.WL += r.WL
		res.Vias += r.Vias
		res.F2FBumps += r.F2F
	}
	res.Overflow = db.Overflow()
	overG.Set(float64(res.Overflow))
	return res, nil
}

// RouteNet routes a single net against current congestion and commits
// its usage. Used by the optimizer for incrementally created nets
// (buffer insertion) and by flows for ECO reroutes.
func (db *DB) RouteNet(n *netlist.Net) (*NetRoute, error) {
	r, err := db.routeNet(n, false)
	if err != nil {
		return nil, err
	}
	db.opt.Obs.Reg().Counter("route_eco_reroutes_total",
		"Single-net ECO routes (optimizer buffer nets and reroutes).").Inc()
	db.addUsage(r, 1)
	// Account the per-route metrics.
	for _, s := range r.Segments {
		if s.IsVia() {
			r.Vias++
			if db.f2fIdx >= 0 && min(s.A.L, s.B.L) == db.f2fIdx {
				r.F2F++
			}
			continue
		}
		r.WL += db.segLen(s)
	}
	return r, nil
}

// TranslateRoute returns a copy of a route shifted by (dx, dy) gcells
// — the tile-array composition primitive (routes replicate with their
// tile copy; grids must be aligned).
func TranslateRoute(r *NetRoute, dx, dy int) *NetRoute {
	t := &NetRoute{Net: r.Net, WL: r.WL, Vias: r.Vias, F2F: r.F2F}
	t.Segments = make([]Seg, len(r.Segments))
	for i, s := range r.Segments {
		t.Segments[i] = Seg{
			A: Node{X: s.A.X + dx, Y: s.A.Y + dy, L: s.A.L},
			B: Node{X: s.B.X + dx, Y: s.B.Y + dy, L: s.B.L},
		}
	}
	t.PinNode = make([]Node, len(r.PinNode))
	for i, n := range r.PinNode {
		t.PinNode[i] = Node{X: n.X + dx, Y: n.Y + dy, L: n.L}
	}
	return t
}

// CommitRoute registers an externally constructed route's congestion
// usage (counterpart of ReleaseNet).
func (db *DB) CommitRoute(r *NetRoute) {
	db.addUsage(r, 1)
}

// RebuildUsage recomputes the database's congestion state from scratch
// out of the given routes — used after a rollback of incremental
// edits.
func (db *DB) RebuildUsage(res *Result) {
	for i := range db.usage {
		db.usage[i] = 0
	}
	if db.f2fUse != nil {
		for i := range db.f2fUse {
			db.f2fUse[i] = 0
		}
	}
	for _, r := range res.Routes {
		if r != nil {
			db.addUsage(r, 1)
		}
	}
}

// SetRoute stores (or replaces) the route of a net, growing the table
// for incrementally added nets.
func (res *Result) SetRoute(netID int, r *NetRoute) {
	for netID >= len(res.Routes) {
		res.Routes = append(res.Routes, nil)
	}
	res.Routes[netID] = r
}

// ReleaseNet removes a route's usage (rip-up) ahead of a reroute.
func (db *DB) ReleaseNet(r *NetRoute) {
	db.addUsage(r, -1)
}

// Recount recomputes the result's aggregate metrics after incremental
// edits (added/changed routes).
func (res *Result) Recount(db *DB) {
	res.WL, res.Vias, res.F2FBumps = 0, 0, 0
	for i := range res.WLPerLayer {
		res.WLPerLayer[i] = 0
	}
	for _, r := range res.Routes {
		if r == nil {
			continue
		}
		r.WL, r.Vias, r.F2F = 0, 0, 0
		for _, s := range r.Segments {
			if s.IsVia() {
				r.Vias++
				if db.f2fIdx >= 0 && min(s.A.L, s.B.L) == db.f2fIdx {
					r.F2F++
				}
				continue
			}
			l := db.segLen(s)
			r.WL += l
			res.WLPerLayer[s.A.L] += l
		}
		res.WL += r.WL
		res.Vias += r.Vias
		res.F2FBumps += r.F2F
	}
	res.Overflow = db.Overflow()
}

// overflowedNets returns nets whose routes touch an overflowed
// gcell-layer.
func (db *DB) overflowedNets(res *Result) []*netlist.Net {
	bad := make(map[int]bool)
	for i := range db.usage {
		if db.usage[i] > db.cap[i] {
			bad[i] = true
		}
	}
	badF2F := make(map[int]bool)
	if db.f2fCap != nil {
		for i := range db.f2fUse {
			if db.f2fUse[i] > db.f2fCap[i] {
				badF2F[i] = true
			}
		}
	}
	var out []*netlist.Net
	for _, r := range res.Routes {
		if r == nil {
			continue
		}
		hit := false
		for _, s := range r.Segments {
			if s.IsVia() {
				if db.f2fIdx >= 0 && min(s.A.L, s.B.L) == db.f2fIdx &&
					badF2F[db.Grid.Index(s.A.X, s.A.Y)] {
					hit = true
				}
				continue
			}
			forEachStep(s, func(n Node) {
				if bad[db.idx(n)] {
					hit = true
				}
			})
			if hit {
				break
			}
		}
		if hit {
			out = append(out, r.Net)
		}
	}
	return out
}

// routeNet routes one net: MST decomposition, then pattern (or maze)
// routing per two-pin connection.
func (db *DB) routeNet(n *netlist.Net, maze bool) (*NetRoute, error) {
	pins := n.Pins()
	r := &NetRoute{Net: n, PinNode: make([]Node, len(pins))}
	for i, p := range pins {
		nd, err := db.PinNode(p)
		if err != nil {
			return nil, fmt.Errorf("net %s: %w", n.Name, err)
		}
		r.PinNode[i] = nd
	}
	if len(pins) < 2 {
		return r, nil
	}
	// Prim MST over pin grid locations.
	inTree := make([]bool, len(pins))
	inTree[0] = true
	type edge struct{ from, to int }
	edges := make([]edge, 0, len(pins)-1)
	for k := 1; k < len(pins); k++ {
		best, bi, bj := 1<<30, -1, -1
		for i := range pins {
			if !inTree[i] {
				continue
			}
			for j := range pins {
				if inTree[j] {
					continue
				}
				d := abs(r.PinNode[i].X-r.PinNode[j].X) + abs(r.PinNode[i].Y-r.PinNode[j].Y)
				if d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		inTree[bj] = true
		edges = append(edges, edge{bi, bj})
	}
	for _, e := range edges {
		var segs []Seg
		var err error
		if maze {
			segs, err = db.mazeRoute(r.PinNode[e.from], r.PinNode[e.to])
			if err != nil {
				segs = db.patternRoute(r.PinNode[e.from], r.PinNode[e.to])
			}
		} else {
			segs = db.patternRoute(r.PinNode[e.from], r.PinNode[e.to])
		}
		r.Segments = append(r.Segments, segs...)
	}
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// viaStack emits via segments moving from layer la to lb at (x, y).
func viaStack(x, y, la, lb int) []Seg {
	var segs []Seg
	step := 1
	if lb < la {
		step = -1
	}
	for l := la; l != lb; l += step {
		segs = append(segs, Seg{Node{x, y, l}, Node{x, y, l + step}})
	}
	return segs
}

// viaStackCost prices a via stack, including F2F crossings.
func (db *DB) viaStackCost(x, y, la, lb int) float64 {
	cost := float64(abs(lb-la)) * db.opt.ViaCost
	lo, hi := min(la, lb), la+lb-min(la, lb)
	if db.f2fIdx >= 0 && lo <= db.f2fIdx && hi > db.f2fIdx {
		i := db.Grid.Index(x, y)
		if db.f2fUse[i]+1 > db.f2fCap[i] {
			cost += 64
		} else {
			// Bump crossings are cheap (44 mΩ, 1 fF): hybrid bonding is
			// dense enough that the router may route through the other
			// die to avoid congestion — the paper's routability
			// argument for Macro-3D.
			cost += 0.3
		}
	}
	return cost
}

// runCost prices a straight run on a layer.
func (db *DB) runCost(a, b Node) float64 {
	cost := 0.0
	forEachStep(Seg{a, b}, func(n Node) {
		cost += 1 + db.congestionCost(db.idx(n))
	})
	return cost
}

// patternRoute connects two nodes with the cheaper of the two L-shapes
// over a selection of H/V layer pairs.
func (db *DB) patternRoute(a, b Node) []Seg {
	pairs := db.hvPairs()
	if len(pairs) == 0 {
		// Degenerate single-direction stack: direct via stack plus run.
		return append(viaStack(a.X, a.Y, a.L, b.L), Seg{Node{a.X, a.Y, b.L}, b})
	}
	// Candidate pairs: prefer lower pairs for short nets, upper for
	// long; always consider every pair but bias via order (cost
	// decides).
	dist := abs(a.X-b.X) + abs(a.Y-b.Y)
	sort.SliceStable(pairs, func(i, j int) bool {
		// Rank by |preferred − pairLevel|: short nets target low
		// layers, long nets the top pair of the logic die; the longest
		// nets on a combined stack also consider the macro die's top
		// pair, routing through the other die when it is cheaper (the
		// F2F bump is nearly free at 44 mΩ / 1 fF).
		pref := 0
		if dist > 24 && db.f2fIdx >= 0 {
			pref = db.f2fIdx + 1
		} else if dist > 12 {
			pref = db.Beol.LogicDieLayers() - 1
		} else if dist > 4 {
			pref = 2
		}
		di := abs((pairs[i][0]+pairs[i][1])/2 - pref)
		dj := abs((pairs[j][0]+pairs[j][1])/2 - pref)
		return di < dj
	})
	if len(pairs) > 3 {
		pairs = pairs[:3]
	}

	best := -1.0
	var bestSegs []Seg
	for _, pr := range pairs {
		h, v := pr[0], pr[1]
		for _, firstH := range []bool{true, false} {
			var segs []Seg
			cost := 0.0
			if firstH {
				// a → (b.X, a.Y) horizontal on h, then vertical on v.
				segs = append(segs, viaStack(a.X, a.Y, a.L, h)...)
				cost += db.viaStackCost(a.X, a.Y, a.L, h)
				if b.X != a.X {
					s := Seg{Node{a.X, a.Y, h}, Node{b.X, a.Y, h}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(b.X, a.Y, h, v)...)
				cost += db.viaStackCost(b.X, a.Y, h, v)
				if b.Y != a.Y {
					s := Seg{Node{b.X, a.Y, v}, Node{b.X, b.Y, v}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(b.X, b.Y, v, b.L)...)
				cost += db.viaStackCost(b.X, b.Y, v, b.L)
			} else {
				// a → (a.X, b.Y) vertical on v, then horizontal on h.
				segs = append(segs, viaStack(a.X, a.Y, a.L, v)...)
				cost += db.viaStackCost(a.X, a.Y, a.L, v)
				if b.Y != a.Y {
					s := Seg{Node{a.X, a.Y, v}, Node{a.X, b.Y, v}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(a.X, b.Y, v, h)...)
				cost += db.viaStackCost(a.X, b.Y, v, h)
				if b.X != a.X {
					s := Seg{Node{a.X, b.Y, h}, Node{b.X, b.Y, h}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(b.X, b.Y, h, b.L)...)
				cost += db.viaStackCost(b.X, b.Y, h, b.L)
			}
			if best < 0 || cost < best {
				best = cost
				bestSegs = segs
			}
		}
	}
	return compactSegs(bestSegs)
}

// compactSegs drops zero-length artifacts.
func compactSegs(segs []Seg) []Seg {
	out := segs[:0]
	for _, s := range segs {
		if s.A == s.B {
			continue
		}
		out = append(out, s)
	}
	return out
}

// --- A* maze routing ---

type pqItem struct {
	node Node
	cost float64
	est  float64
	idx  int
}

type pq []*pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].est < p[j].est }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].idx = i; p[j].idx = j }
func (p *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// mazeRoute finds a least-cost path with 3D A*.
func (db *DB) mazeRoute(a, b Node) ([]Seg, error) {
	g := db.Grid
	nl := db.Beol.NumLayers()
	size := nl * g.Bins()
	dist := make([]float64, size)
	for i := range dist {
		dist[i] = -1
	}
	prev := make([]int32, size)
	for i := range prev {
		prev[i] = -1
	}
	h := func(n Node) float64 {
		return float64(abs(n.X-b.X)+abs(n.Y-b.Y)) + float64(abs(n.L-b.L))*db.opt.ViaCost
	}
	start := db.idx(a)
	dist[start] = 0
	q := &pq{}
	heap.Push(q, &pqItem{node: a, cost: 0, est: h(a)})
	// Expansion budget keeps pathological cases bounded.
	budget := size * 2
	for q.Len() > 0 && budget > 0 {
		budget--
		it := heap.Pop(q).(*pqItem)
		n := it.node
		ni := db.idx(n)
		if it.cost > dist[ni] {
			continue
		}
		if n == b {
			return db.tracePath(prev, a, b), nil
		}
		// Neighbors: preferred-direction steps and vias.
		var neigh [4]Node
		var ncost [4]float64
		cnt := 0
		ly := db.Beol.Layers[n.L]
		if ly.Dir == tech.DirHorizontal {
			if n.X > 0 {
				neigh[cnt] = Node{n.X - 1, n.Y, n.L}
				cnt++
			}
			if n.X < g.NX-1 {
				neigh[cnt] = Node{n.X + 1, n.Y, n.L}
				cnt++
			}
		} else {
			if n.Y > 0 {
				neigh[cnt] = Node{n.X, n.Y - 1, n.L}
				cnt++
			}
			if n.Y < g.NY-1 {
				neigh[cnt] = Node{n.X, n.Y + 1, n.L}
				cnt++
			}
		}
		wireN := cnt
		if n.L > 0 {
			neigh[cnt] = Node{n.X, n.Y, n.L - 1}
			cnt++
		}
		if n.L < nl-1 {
			neigh[cnt] = Node{n.X, n.Y, n.L + 1}
			cnt++
		}
		for k := 0; k < cnt; k++ {
			m := neigh[k]
			if k < wireN {
				ncost[k] = 1 + db.congestionCost(db.idx(m))
			} else {
				ncost[k] = db.viaStackCost(n.X, n.Y, n.L, m.L)
			}
			mi := db.idx(m)
			nc := it.cost + ncost[k]
			if dist[mi] < 0 || nc < dist[mi] {
				dist[mi] = nc
				prev[mi] = int32(ni)
				heap.Push(q, &pqItem{node: m, cost: nc, est: nc + h(m)})
			}
		}
	}
	return nil, fmt.Errorf("route: maze route %v→%v failed", a, b)
}

// tracePath reconstructs segments from the predecessor array, merging
// consecutive steps in the same direction.
func (db *DB) tracePath(prev []int32, a, b Node) []Seg {
	// Collect nodes b → a.
	var nodes []Node
	cur := db.idx(b)
	for cur >= 0 {
		nodes = append(nodes, db.nodeOf(cur))
		if db.nodeOf(cur) == a {
			break
		}
		cur = int(prev[cur])
	}
	// Reverse to a → b.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	var segs []Seg
	for i := 1; i < len(nodes); i++ {
		p, n := nodes[i-1], nodes[i]
		if len(segs) > 0 {
			last := &segs[len(segs)-1]
			// Extend the last straight segment when collinear.
			if !last.IsVia() && !(Seg{p, n}).IsVia() &&
				((last.A.Y == last.B.Y && last.B.Y == n.Y && last.A.L == n.L) ||
					(last.A.X == last.B.X && last.B.X == n.X && last.A.L == n.L)) {
				last.B = n
				continue
			}
		}
		segs = append(segs, Seg{p, n})
	}
	return segs
}

func (db *DB) nodeOf(i int) Node {
	l := i / db.Grid.Bins()
	b := i % db.Grid.Bins()
	x, y := db.Grid.Coords(b)
	return Node{x, y, l}
}
