package route

import (
	"sort"
	"time"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
)

// routeMetrics bundles the parallel-engine instrumentation handles
// threaded through routeAll: batch counts, batch-size distribution,
// planner conflicts (deferred nets per round) and the summed worker
// busy time feeding the utilization gauge. All handles are nil-safe
// no-ops when the flow runs without a recorder.
type routeMetrics struct {
	batches       *obs.Counter
	batchNets     *obs.Histogram
	conflicts     *obs.Counter
	shardBoundary *obs.Counter
	busy          time.Duration

	// Execution-tracer handles: the per-worker track set for routing
	// chunks and the orchestrator track for the serial plan/commit
	// segments. Both are nil-safe; nil means tracing is off.
	ts   *trace.Set
	main *trace.Track
}

// RouteDesign globally routes every non-clock signal net of the design
// over the database's grid, then runs negotiation iterations until
// overflow clears or the iteration budget is spent.
//
// With Options.Workers != 1 the initial pass and every negotiation
// wave execute as deterministic spatially-disjoint batches (see
// batch.go); results are bit-identical to the serial reference at any
// worker count.
func RouteDesign(d *netlist.Design, db *DB) (*Result, error) {
	t0 := time.Now()
	workers := par.Workers(db.opt.Workers)
	res := &Result{
		Routes:     make([]*NetRoute, len(d.Nets)),
		WLPerLayer: make([]float64, db.Beol.NumLayers()),
	}

	// Initial pattern routing, long nets first (they set the congestion
	// landscape the short nets then dodge).
	order := make([]*netlist.Net, 0, len(d.Nets))
	for _, n := range d.Nets {
		if n.Clock || len(n.Sinks) == 0 {
			continue
		}
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool {
		hi, hj := order[i].HPWL(), order[j].HPWL()
		if hi != hj {
			return hi > hj
		}
		return order[i].ID < order[j].ID
	})
	// Metric handles are hoisted out of the negotiation loop; every
	// call is a no-op when no recorder backs the stage span.
	sp := db.opt.Obs
	reg := sp.Reg()
	routedC := reg.Counter("route_nets_routed_total",
		"Signal nets routed by the initial pattern pass.")
	iterC := reg.Counter("route_negotiation_iterations_total",
		"Rip-up-and-reroute negotiation iterations executed.")
	ripupC := reg.Counter("route_ripup_nets_total",
		"Overflowed nets ripped up and rerouted during negotiation.")
	failC := reg.Counter("route_reroute_failed_total",
		"Rip-up attempts that kept the old route after a failed reroute.")
	overG := reg.Gauge("route_overflow_gcells",
		"Gcell-layers above capacity after the latest negotiation state.")
	reg.Gauge("route_workers",
		"Worker goroutines used by the parallel routing engine.").Set(float64(workers))
	met := &routeMetrics{
		batches: reg.Counter("route_parallel_batches_total",
			"Conflict-free net batches executed by the parallel router."),
		batchNets: reg.Histogram("route_batch_nets",
			"Nets per conflict-free routing batch.", 1, 4, 16, 64, 256, 1024, 4096),
		conflicts: reg.Counter("route_batch_conflicts_total",
			"Nets deferred to a later batch by a footprint conflict."),
		shardBoundary: reg.Counter("route_shard_boundary_nets_total",
			"Region-crossing nets reconciled through the ordered batch engine."),
		ts:   db.opt.Trace.WorkerSet("route", workers),
		main: db.opt.Trace.Track("main"),
	}
	// The engine dispatcher: the default deterministic batch engine, or
	// the region-sharded fast engine when Options.Sharded is set. Both
	// the initial pass and every negotiation wave go through it.
	routeWave := db.routeAll
	if db.opt.Sharded {
		routeWave = db.routeAllSharded
		reg.Gauge("route_shard_regions",
			"Fixed region count of the sharded routing engine.").
			Set(float64(db.shardPlanFor().regions()))
	}
	// Rip-up iterations render as containers on their own track; the
	// analyzer charges them only for time no leaf slice covers.
	iterTrack := db.opt.Trace.Track("route iterations")

	// One maze scratch per worker, reused across every two-pin search
	// of the run (index 0 doubles as the serial path's scratch).
	pool := make([]*mazeScratch, workers)
	for i := range pool {
		pool[i] = &mazeScratch{}
	}

	// Net prep (pin nodes, MST decomposition) is a pure function of
	// the placement, so it parallelizes freely.
	tasks := make([]*netTask, len(order))
	errs := make([]error, len(order))
	met.busy += par.ItemsTr(met.ts, "route/prep", workers, len(order), func(w, i int) {
		tasks[i], errs[i] = db.prepTask(order[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	routeWave(tasks, false, workers, pool, met, func(t *netTask) {
		db.addUsage(t.route, 1)
		res.Routes[t.net.ID] = t.route
	})
	routedC.Add(uint64(len(order)))

	// Negotiated rip-up and reroute. Early iterations reroute with
	// congestion-aware pattern routes (cheap); later iterations escal-
	// ate to full maze search for the stubborn remainder.
	for it := 0; it < db.opt.MaxIters; it++ {
		over := db.Overflow()
		overG.Set(float64(over))
		if over == 0 {
			break
		}
		db.bumpHistory()
		victims := db.overflowedNets(res, workers)
		if len(victims) == 0 {
			break
		}
		isp := sp.Child("rip-up-iter",
			obs.KV("iter", it), obs.KV("overflow", over), obs.KV("victims", len(victims)))
		itsl := iterTrack.Begin("stage", "route/rip-up-iter")
		iterC.Inc()
		// Bound the work per iteration; the worst offenders first
		// (longest nets through congestion).
		sort.Slice(victims, func(i, j int) bool { return victims[i].HPWL() > victims[j].HPWL() })
		const maxVictims = 600
		if len(victims) > maxVictims {
			victims = victims[:maxVictims]
		}
		useMaze := it >= 2
		vt := make([]*netTask, 0, len(victims))
		for _, n := range victims {
			t, err := db.prepTask(n)
			if err != nil {
				// Keep the old route rather than fail the design.
				failC.Inc()
				continue
			}
			t.old = res.Routes[n.ID]
			vt = append(vt, t)
		}
		routeWave(vt, useMaze, workers, pool, met, func(t *netTask) {
			db.addUsage(t.route, 1)
			res.Routes[t.net.ID] = t.route
		})
		ripupC.Add(uint64(len(victims)))
		itsl.End(trace.N("iter", int64(it)), trace.N("victims", int64(len(victims))),
			trace.N("overflow", int64(over)))
		isp.End()
	}

	// Final accounting.
	for _, r := range res.Routes {
		if r == nil {
			continue
		}
		r.WL, r.Vias, r.F2F = 0, 0, 0
		for _, s := range r.Segments {
			if s.IsVia() {
				r.Vias++
				lo := min(s.A.L, s.B.L)
				if db.f2fIdx >= 0 && lo == db.f2fIdx {
					r.F2F++
				}
				continue
			}
			l := db.segLen(s)
			r.WL += l
			res.WLPerLayer[s.A.L] += l
		}
		res.WL += r.WL
		res.Vias += r.Vias
		res.F2FBumps += r.F2F
	}
	res.Overflow = db.Overflow()
	overG.Set(float64(res.Overflow))

	// Scratch reuse and worker utilization for this run.
	var hits, misses uint64
	for _, s := range pool {
		hits += s.hits
		misses += s.misses
	}
	reg.Counter("route_scratch_hits_total",
		"Maze searches served by an already-sized scratch allocation.").Add(hits)
	reg.Counter("route_scratch_misses_total",
		"Maze searches that had to grow their scratch backing arrays.").Add(misses)
	if hits+misses > 0 {
		reg.Gauge("route_scratch_hit_ratio",
			"Fraction of maze searches reusing scratch memory, latest run.").
			Set(float64(hits) / float64(hits+misses))
	}
	if wall := time.Since(t0).Seconds(); wall > 0 && workers > 1 {
		reg.Gauge("route_worker_utilization_ratio",
			"Summed worker busy time over workers × stage wall time, latest run.").
			Set(met.busy.Seconds() / (wall * float64(workers)))
	}
	if db.opt.Sharded && db.opt.ShardVerify {
		if err := db.verifySharded(d, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RouteNet routes a single net against current congestion and commits
// its usage. Used by the optimizer for incrementally created nets
// (buffer insertion) and by flows for ECO reroutes.
func (db *DB) RouteNet(n *netlist.Net) (*NetRoute, error) {
	t, err := db.prepTask(n)
	if err != nil {
		return nil, err
	}
	db.routeTask(t, false, db.scratch())
	r := t.route
	db.opt.Obs.Reg().Counter("route_eco_reroutes_total",
		"Single-net ECO routes (optimizer buffer nets and reroutes).").Inc()
	db.addUsage(r, 1)
	// Account the per-route metrics.
	for _, s := range r.Segments {
		if s.IsVia() {
			r.Vias++
			if db.f2fIdx >= 0 && min(s.A.L, s.B.L) == db.f2fIdx {
				r.F2F++
			}
			continue
		}
		r.WL += db.segLen(s)
	}
	return r, nil
}

// TranslateRoute returns a copy of a route shifted by (dx, dy) gcells
// — the tile-array composition primitive (routes replicate with their
// tile copy; grids must be aligned).
func TranslateRoute(r *NetRoute, dx, dy int) *NetRoute {
	t := &NetRoute{Net: r.Net, WL: r.WL, Vias: r.Vias, F2F: r.F2F}
	t.Segments = make([]Seg, len(r.Segments))
	for i, s := range r.Segments {
		t.Segments[i] = Seg{
			A: Node{X: s.A.X + dx, Y: s.A.Y + dy, L: s.A.L},
			B: Node{X: s.B.X + dx, Y: s.B.Y + dy, L: s.B.L},
		}
	}
	t.PinNode = make([]Node, len(r.PinNode))
	for i, n := range r.PinNode {
		t.PinNode[i] = Node{X: n.X + dx, Y: n.Y + dy, L: n.L}
	}
	return t
}

// CommitRoute registers an externally constructed route's congestion
// usage (counterpart of ReleaseNet).
func (db *DB) CommitRoute(r *NetRoute) {
	db.addUsage(r, 1)
}

// RebuildUsage recomputes the database's congestion state from scratch
// out of the given routes — used after a rollback of incremental
// edits.
func (db *DB) RebuildUsage(res *Result) {
	for i := range db.usage {
		db.usage[i] = 0
	}
	if db.f2fUse != nil {
		for i := range db.f2fUse {
			db.f2fUse[i] = 0
		}
	}
	for _, r := range res.Routes {
		if r != nil {
			db.addUsage(r, 1)
		}
	}
}

// SetRoute stores (or replaces) the route of a net, growing the table
// for incrementally added nets.
func (res *Result) SetRoute(netID int, r *NetRoute) {
	for netID >= len(res.Routes) {
		res.Routes = append(res.Routes, nil)
	}
	res.Routes[netID] = r
}

// ReleaseNet removes a route's usage (rip-up) ahead of a reroute.
func (db *DB) ReleaseNet(r *NetRoute) {
	db.addUsage(r, -1)
}

// Recount recomputes the result's aggregate metrics after incremental
// edits (added/changed routes).
func (res *Result) Recount(db *DB) {
	res.WL, res.Vias, res.F2FBumps = 0, 0, 0
	for i := range res.WLPerLayer {
		res.WLPerLayer[i] = 0
	}
	for _, r := range res.Routes {
		if r == nil {
			continue
		}
		r.WL, r.Vias, r.F2F = 0, 0, 0
		for _, s := range r.Segments {
			if s.IsVia() {
				r.Vias++
				if db.f2fIdx >= 0 && min(s.A.L, s.B.L) == db.f2fIdx {
					r.F2F++
				}
				continue
			}
			l := db.segLen(s)
			r.WL += l
			res.WLPerLayer[s.A.L] += l
		}
		res.WL += r.WL
		res.Vias += r.Vias
		res.F2FBumps += r.F2F
	}
	res.Overflow = db.Overflow()
}

// overflowedNets returns nets whose routes touch an overflowed
// gcell-layer, in net-ID order. The route scan fans out over
// contiguous net-ID chunks whose per-worker hit lists concatenate in
// chunk order, so the result is identical at any worker count.
func (db *DB) overflowedNets(res *Result, workers int) []*netlist.Net {
	bad := make([]bool, len(db.usage))
	any := false
	for i := range db.usage {
		if db.usage[i] > db.cap[i] {
			bad[i] = true
			any = true
		}
	}
	var badF2F []bool
	if db.f2fCap != nil {
		badF2F = make([]bool, len(db.f2fUse))
		for i := range db.f2fUse {
			if db.f2fUse[i] > db.f2fCap[i] {
				badF2F[i] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	workers = par.Workers(workers)
	hits := make([][]*netlist.Net, workers)
	par.Chunks(workers, len(res.Routes), func(w, lo, hi int) {
		for _, r := range res.Routes[lo:hi] {
			if r == nil {
				continue
			}
			hit := false
			for _, s := range r.Segments {
				if s.IsVia() {
					if badF2F != nil && db.f2fIdx >= 0 && min(s.A.L, s.B.L) == db.f2fIdx &&
						badF2F[db.Grid.Index(s.A.X, s.A.Y)] {
						hit = true
					}
					continue
				}
				forEachStep(s, func(n Node) {
					if bad[db.idx(n)] {
						hit = true
					}
				})
				if hit {
					break
				}
			}
			if hit {
				hits[w] = append(hits[w], r.Net)
			}
		}
	})
	var out []*netlist.Net
	for _, h := range hits {
		out = append(out, h...)
	}
	return out
}

// viaStack emits via segments moving from layer la to lb at (x, y).
func viaStack(x, y, la, lb int) []Seg {
	var segs []Seg
	step := 1
	if lb < la {
		step = -1
	}
	for l := la; l != lb; l += step {
		segs = append(segs, Seg{Node{x, y, l}, Node{x, y, l + step}})
	}
	return segs
}

// viaStackCost prices a via stack, including F2F crossings.
func (db *DB) viaStackCost(x, y, la, lb int) float64 {
	cost := float64(geom.AbsInt(lb-la)) * db.opt.ViaCost
	lo, hi := min(la, lb), max(la, lb)
	if db.f2fIdx >= 0 && lo <= db.f2fIdx && hi > db.f2fIdx {
		i := db.Grid.Index(x, y)
		if db.f2fUse[i]+1 > db.f2fCap[i] {
			cost += 64
		} else {
			// Bump crossings are cheap (44 mΩ, 1 fF): hybrid bonding is
			// dense enough that the router may route through the other
			// die to avoid congestion — the paper's routability
			// argument for Macro-3D.
			cost += 0.3
		}
	}
	return cost
}

// runCost prices a straight run on a layer.
func (db *DB) runCost(a, b Node) float64 {
	cost := 0.0
	forEachStep(Seg{a, b}, func(n Node) {
		cost += 1 + db.congestionCost(db.idx(n))
	})
	return cost
}

// patternRoute connects two nodes with the cheaper of the two L-shapes
// over a selection of H/V layer pairs.
func (db *DB) patternRoute(a, b Node) []Seg {
	pairs := db.hvPairs()
	if len(pairs) == 0 {
		// Degenerate single-direction stack: direct via stack plus run.
		return append(viaStack(a.X, a.Y, a.L, b.L), Seg{Node{a.X, a.Y, b.L}, b})
	}
	// Candidate pairs: prefer lower pairs for short nets, upper for
	// long; always consider every pair but bias via order (cost
	// decides).
	dist := geom.AbsInt(a.X-b.X) + geom.AbsInt(a.Y-b.Y)
	sort.SliceStable(pairs, func(i, j int) bool {
		// Rank by |preferred − pairLevel|: short nets target low
		// layers, long nets the top pair of the logic die; the longest
		// nets on a combined stack also consider the macro die's top
		// pair, routing through the other die when it is cheaper (the
		// F2F bump is nearly free at 44 mΩ / 1 fF).
		pref := 0
		if dist > 24 && db.f2fIdx >= 0 {
			pref = db.f2fIdx + 1
		} else if dist > 12 {
			pref = db.Beol.LogicDieLayers() - 1
		} else if dist > 4 {
			pref = 2
		}
		di := geom.AbsInt((pairs[i][0]+pairs[i][1])/2 - pref)
		dj := geom.AbsInt((pairs[j][0]+pairs[j][1])/2 - pref)
		return di < dj
	})
	if len(pairs) > 3 {
		pairs = pairs[:3]
	}

	best := -1.0
	var bestSegs []Seg
	for _, pr := range pairs {
		h, v := pr[0], pr[1]
		for _, firstH := range []bool{true, false} {
			var segs []Seg
			cost := 0.0
			if firstH {
				// a → (b.X, a.Y) horizontal on h, then vertical on v.
				segs = append(segs, viaStack(a.X, a.Y, a.L, h)...)
				cost += db.viaStackCost(a.X, a.Y, a.L, h)
				if b.X != a.X {
					s := Seg{Node{a.X, a.Y, h}, Node{b.X, a.Y, h}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(b.X, a.Y, h, v)...)
				cost += db.viaStackCost(b.X, a.Y, h, v)
				if b.Y != a.Y {
					s := Seg{Node{b.X, a.Y, v}, Node{b.X, b.Y, v}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(b.X, b.Y, v, b.L)...)
				cost += db.viaStackCost(b.X, b.Y, v, b.L)
			} else {
				// a → (a.X, b.Y) vertical on v, then horizontal on h.
				segs = append(segs, viaStack(a.X, a.Y, a.L, v)...)
				cost += db.viaStackCost(a.X, a.Y, a.L, v)
				if b.Y != a.Y {
					s := Seg{Node{a.X, a.Y, v}, Node{a.X, b.Y, v}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(a.X, b.Y, v, h)...)
				cost += db.viaStackCost(a.X, b.Y, v, h)
				if b.X != a.X {
					s := Seg{Node{a.X, b.Y, h}, Node{b.X, b.Y, h}}
					segs = append(segs, s)
					cost += db.runCost(s.A, s.B)
				}
				segs = append(segs, viaStack(b.X, b.Y, h, b.L)...)
				cost += db.viaStackCost(b.X, b.Y, h, b.L)
			}
			if best < 0 || cost < best {
				best = cost
				bestSegs = segs
			}
		}
	}
	return compactSegs(bestSegs)
}

// compactSegs drops zero-length artifacts.
func compactSegs(segs []Seg) []Seg {
	out := segs[:0]
	for _, s := range segs {
		if s.A == s.B {
			continue
		}
		out = append(out, s)
	}
	return out
}
