package route

import (
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/tech"
)

func db6(t *testing.T, die geom.Rect, blk []floorplan.RouteBlockage) *DB {
	t.Helper()
	b, err := tech.NewBEOL28("logic", 6)
	if err != nil {
		t.Fatal(err)
	}
	return NewDB(die, b, blk, Options{GCellPitch: 10})
}

// twoPinDesign: one INV at (10,10) driving one INV at (x,y).
func twoPinDesign(x, y float64) *netlist.Design {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("two", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	a.Loc = geom.Pt(10, 10)
	b := d.AddInstance("b", lib.MustCell("INV_X1"))
	b.Loc = geom.Pt(x, y)
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(b, "A"))
	return d
}

func TestRouteTwoPin(t *testing.T) {
	d := twoPinDesign(210, 110)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Routes[0]
	if r == nil || len(r.Segments) == 0 {
		t.Fatal("no route produced")
	}
	// Routed length ≥ HPWL and within 2× (L-shape).
	hpwl := d.Nets[0].HPWL()
	if res.WL < hpwl*0.5 || res.WL > hpwl*2.5 {
		t.Fatalf("WL = %v for HPWL %v", res.WL, hpwl)
	}
	if r.Vias == 0 {
		t.Fatal("no vias: pins are on M1, runs are above")
	}
	if r.F2F != 0 || res.F2FBumps != 0 {
		t.Fatal("single-die route crossed F2F")
	}
	if res.Overflow != 0 {
		t.Fatalf("overflow = %d", res.Overflow)
	}
	checkConnected(t, db, r)
}

// checkConnected verifies segment endpoints form a connected set
// containing every pin node.
func checkConnected(t *testing.T, db *DB, r *NetRoute) {
	t.Helper()
	adj := make(map[Node][]Node)
	add := func(a, b Node) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, s := range r.Segments {
		if s.IsVia() {
			add(s.A, s.B)
			continue
		}
		// Straight runs connect all intermediate gcells.
		var prevN *Node
		forEachStep(s, func(n Node) {
			if prevN != nil {
				add(*prevN, n)
			}
			c := n
			prevN = &c
		})
	}
	if len(r.PinNode) == 0 {
		return
	}
	// BFS from pin 0.
	seen := map[Node]bool{r.PinNode[0]: true}
	queue := []Node{r.PinNode[0]}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	for i, pn := range r.PinNode {
		if !seen[pn] {
			t.Fatalf("pin %d node %v not connected to driver", i, pn)
		}
	}
}

func TestRouteSameGCell(t *testing.T) {
	d := twoPinDesign(11, 11)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	// Pins in one gcell on the same layer: nothing to route.
	if res.WL != 0 {
		t.Fatalf("WL = %v for same-gcell net", res.WL)
	}
}

func TestObstructionForcesClimb(t *testing.T) {
	// A wall of M1–M4 obstruction between the pins: the route must use
	// M5/M6 over it (the 2D memory-overflight situation).
	die := geom.R(0, 0, 400, 400)
	wall := geom.R(150, 0, 250, 400)
	var blk []floorplan.RouteBlockage
	for _, ly := range []string{"M1", "M2", "M3", "M4"} {
		blk = append(blk, floorplan.RouteBlockage{Layer: ly, Rect: wall})
	}
	d := twoPinDesign(380, 15)
	db := db6(t, die, blk)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow != 0 {
		t.Fatalf("overflow = %d crossing obstruction", res.Overflow)
	}
	// The crossing segment must be on M5 or M6.
	r := res.Routes[0]
	crossesHigh := false
	for _, s := range r.Segments {
		if s.IsVia() {
			continue
		}
		x0 := float64(min(s.A.X, s.B.X)) * db.Grid.DX
		x1 := float64(max(s.A.X, s.B.X)+1) * db.Grid.DX
		if x0 < 250 && x1 > 150 && s.A.L >= 4 {
			crossesHigh = true
		}
	}
	if !crossesHigh {
		t.Fatal("route did not climb over the M1–M4 wall")
	}
}

func TestCombinedStackCrossesF2F(t *testing.T) {
	// Pin on a macro-die layer (M4_MD): the route must cross the F2F
	// boundary exactly once and count one bump.
	logic, _ := tech.NewBEOL28("logic", 6)
	macro, _ := tech.NewBEOL28("macro", 4)
	comb, err := tech.Combine(logic, macro, tech.DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("x", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	a.Loc = geom.Pt(10, 10)
	// A fake macro with one input pin on M4_MD.
	mm := &cell.Cell{
		Name: "mac", Kind: cell.KindMacro, Width: 50, Height: 50,
		Pins: []cell.Pin{{Name: "D", Dir: cell.DirIn, Cap: 2, Layer: "M4_MD",
			Offset: geom.Pt(25, 25)}},
	}
	m := d.AddInstance("m", mm)
	m.Loc = geom.Pt(200, 200)
	m.Fixed, m.Placed = true, true
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(m, "D"))

	db := NewDB(geom.R(0, 0, 400, 400), comb, nil, Options{GCellPitch: 10})
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.F2FBumps != 1 {
		t.Fatalf("F2F bumps = %d, want 1", res.F2FBumps)
	}
	checkConnected(t, db, res.Routes[0])
}

func TestNegotiationReducesOverflow(t *testing.T) {
	// Many parallel nets through a 1-gcell-wide channel: initial
	// pattern routes collide; negotiation must spread them across
	// layers/detours.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("cong", lib)
	for i := 0; i < 60; i++ {
		a := d.AddInstance("a"+itoa(i), lib.MustCell("INV_X1"))
		a.Loc = geom.Pt(5, float64(5+i))
		b := d.AddInstance("b"+itoa(i), lib.MustCell("INV_X1"))
		b.Loc = geom.Pt(395, float64(5+i))
		d.AddNet("n"+itoa(i), netlist.IPin(a, "Y"), netlist.IPin(b, "A"))
	}
	b6, _ := tech.NewBEOL28("logic", 6)
	db := NewDB(geom.R(0, 0, 400, 400), b6, nil, Options{GCellPitch: 20, MaxIters: 8})
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("congestion test: WL %.0f, vias %d, overflow %d", res.WL, res.Vias, res.Overflow)
	// 60 nets over ~6 usable H layers × ~13 tracks each: should fit.
	if res.Overflow > 3 {
		t.Fatalf("negotiation left overflow = %d", res.Overflow)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestRoutePitonTile(t *testing.T) {
	if testing.Short() {
		t.Skip("tile routing in -short mode")
	}
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		t.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)
	if _, err := place.Place(d, fp, 1.2, place.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	b6, _ := tech.NewBEOL28("logic", 6)
	db := NewDB(sz.Die2D, b6, fp.RouteBlk, Options{})
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	hpwl := 0.0
	for _, n := range d.Nets {
		if !n.Clock {
			hpwl += n.HPWL()
		}
	}
	t.Logf("tile route: WL %.2f m (HPWL %.2f m), %d vias, overflow %d",
		res.WL/1e6, hpwl/1e6, res.Vias, res.Overflow)
	if res.WL < hpwl*0.8 {
		t.Fatalf("routed WL %.2f below HPWL %.2f", res.WL/1e6, hpwl/1e6)
	}
	if res.WL > hpwl*2.0 {
		t.Fatalf("routed WL %.2f more than 2× HPWL %.2f", res.WL/1e6, hpwl/1e6)
	}
	if res.Overflow > 50 {
		t.Fatalf("tile overflow = %d", res.Overflow)
	}
	// Per-layer WL accounting must sum to the total.
	sum := 0.0
	for _, w := range res.WLPerLayer {
		sum += w
	}
	if diff := sum - res.WL; diff > 1 || diff < -1 {
		t.Fatalf("per-layer WL sum %v != total %v", sum, res.WL)
	}
}

func TestUsageSnapshot(t *testing.T) {
	d := twoPinDesign(210, 110)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	if _, err := RouteDesign(d, db); err != nil {
		t.Fatal(err)
	}
	snap := db.UsageSnapshot()
	if len(snap) != 6 {
		t.Fatalf("snapshot layers = %d", len(snap))
	}
	any := false
	for _, u := range snap {
		if u > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no layer shows usage")
	}
}

func TestMazeRouteDirect(t *testing.T) {
	db := db6(t, geom.R(0, 0, 200, 200), nil)
	segs, err := db.mazeRoute(Node{0, 0, 0}, Node{10, 10, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("empty maze route")
	}
	// Path starts at source and ends at target.
	if segs[0].A != (Node{0, 0, 0}) {
		t.Fatalf("path starts at %v", segs[0].A)
	}
	if segs[len(segs)-1].B != (Node{10, 10, 3}) {
		t.Fatalf("path ends at %v", segs[len(segs)-1].B)
	}
	// Respect preferred directions on every straight segment.
	for _, s := range segs {
		if s.IsVia() {
			continue
		}
		ly := db.Beol.Layers[s.A.L]
		if ly.Dir == tech.DirHorizontal && s.A.Y != s.B.Y {
			t.Fatalf("vertical run on horizontal layer %s", ly.Name)
		}
		if ly.Dir == tech.DirVertical && s.A.X != s.B.X {
			t.Fatalf("horizontal run on vertical layer %s", ly.Name)
		}
	}
}

func TestTranslateRoute(t *testing.T) {
	d := twoPinDesign(210, 110)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Routes[0]
	tr := TranslateRoute(r, 5, 7)
	if len(tr.Segments) != len(r.Segments) {
		t.Fatal("segment count changed")
	}
	for i, s := range tr.Segments {
		o := r.Segments[i]
		if s.A.X-o.A.X != 5 || s.A.Y-o.A.Y != 7 || s.A.L != o.A.L {
			t.Fatalf("segment %d not translated: %v vs %v", i, s, o)
		}
	}
	if tr.WL != r.WL || tr.Vias != r.Vias || tr.F2F != r.F2F {
		t.Fatal("metrics changed by translation")
	}
	// Original untouched.
	if r.Segments[0].A.X != tr.Segments[0].A.X-5 {
		t.Fatal("TranslateRoute mutated input")
	}
}

func TestCommitAndRebuildUsage(t *testing.T) {
	d := twoPinDesign(210, 110)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling a route's usage then rebuilding from the result must
	// return to the single-use state.
	r := res.Routes[0]
	db.CommitRoute(r)
	snapDouble := db.UsageSnapshot()
	db.RebuildUsage(res)
	snapSingle := db.UsageSnapshot()
	moreDouble := false
	for l := range snapDouble {
		if snapDouble[l] > snapSingle[l] {
			moreDouble = true
		}
	}
	if !moreDouble {
		t.Fatal("double-commit not visible in usage")
	}
	// Release + rebuild equivalence.
	db.ReleaseNet(r)
	db.CommitRoute(r)
	snapAgain := db.UsageSnapshot()
	for l := range snapAgain {
		if snapAgain[l] != snapSingle[l] {
			t.Fatalf("layer %d usage drifted: %v vs %v", l, snapAgain[l], snapSingle[l])
		}
	}
}

func TestGridOverride(t *testing.T) {
	b6, _ := tech.NewBEOL28("l", 6)
	g := geom.Grid{Region: geom.R(0, 0, 300, 300), NX: 30, NY: 30, DX: 10, DY: 10}
	db := NewDB(geom.R(0, 0, 300, 300), b6, nil, Options{GCellPitch: 50, Grid: &g})
	if db.Grid.NX != 30 || db.Grid.DX != 10 {
		t.Fatalf("grid override ignored: %+v", db.Grid)
	}
}

func TestRecountMatchesRouteDesign(t *testing.T) {
	d := twoPinDesign(250, 130)
	db := db6(t, geom.R(0, 0, 400, 400), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	wl, vias := res.WL, res.Vias
	res.Recount(db)
	if res.WL != wl || res.Vias != vias {
		t.Fatalf("Recount changed totals: %v/%d vs %v/%d", res.WL, res.Vias, wl, vias)
	}
}

func TestPatternRouteAlwaysConnectsProperty(t *testing.T) {
	// Property: for random pin pairs anywhere on the die, the pattern
	// router produces a connected route that respects preferred
	// directions.
	b6, _ := tech.NewBEOL28("l", 6)
	db := NewDB(geom.R(0, 0, 500, 500), b6, nil, Options{GCellPitch: 10})
	rng := geom.NewRNG(17)
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	for i := 0; i < 60; i++ {
		d := netlist.NewDesign("p"+itoa(i), lib)
		a := d.AddInstance("a", lib.MustCell("INV_X1"))
		a.Loc = geom.Pt(rng.Range(5, 480), rng.Range(5, 480))
		c := d.AddInstance("b", lib.MustCell("INV_X1"))
		c.Loc = geom.Pt(rng.Range(5, 480), rng.Range(5, 480))
		d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(c, "A"))
		res, err := RouteDesign(d, db)
		if err != nil {
			t.Fatal(err)
		}
		r := res.Routes[0]
		checkConnected(t, db, r)
		for _, s := range r.Segments {
			if s.IsVia() {
				continue
			}
			ly := db.Beol.Layers[s.A.L]
			if ly.Dir == tech.DirHorizontal && s.A.Y != s.B.Y {
				t.Fatalf("iteration %d: vertical run on %s", i, ly.Name)
			}
			if ly.Dir == tech.DirVertical && s.A.X != s.B.X {
				t.Fatalf("iteration %d: horizontal run on %s", i, ly.Name)
			}
		}
		// Clean up usage so iterations are independent.
		db.ReleaseNet(r)
	}
}
