package route

import (
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/tech"
)

// multiNetDesign builds a design with n parallel two-pin nets, enough
// to give the usage arrays non-trivial structure.
func multiNetDesign(n int) *netlist.Design {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("multi", lib)
	for i := 0; i < n; i++ {
		a := d.AddInstance("a"+itoa(i), lib.MustCell("INV_X1"))
		a.Loc = geom.Pt(5, float64(5+i*8))
		b := d.AddInstance("b"+itoa(i), lib.MustCell("INV_X1"))
		b.Loc = geom.Pt(280, float64(9+i*8))
		d.AddNet("n"+itoa(i), netlist.IPin(a, "Y"), netlist.IPin(b, "A"))
	}
	return d
}

// TestRebuildUsageExact: RebuildUsage must restore the usage arrays to
// exactly the committed-routes state, element by element, no matter
// how they were scrambled in between.
func TestRebuildUsageExact(t *testing.T) {
	d := multiNetDesign(20)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), db.usage...)
	for i := 0; i < len(db.usage); i += 7 {
		db.usage[i] += int32(i%5) + 1
	}
	db.RebuildUsage(res)
	for i := range want {
		if db.usage[i] != want[i] {
			t.Fatalf("usage[%d] = %d after rebuild, want %d", i, db.usage[i], want[i])
		}
	}
}

// TestRebuildUsageExactF2F is the combined-stack variant: the F2F bump
// usage grid must rebuild exactly too.
func TestRebuildUsageExactF2F(t *testing.T) {
	logic, _ := tech.NewBEOL28("logic", 6)
	macro, _ := tech.NewBEOL28("macro", 4)
	comb, err := tech.Combine(logic, macro, tech.DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("x", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	a.Loc = geom.Pt(10, 10)
	mm := &cell.Cell{
		Name: "mac", Kind: cell.KindMacro, Width: 50, Height: 50,
		Pins: []cell.Pin{{Name: "D", Dir: cell.DirIn, Cap: 2, Layer: "M4_MD",
			Offset: geom.Pt(25, 25)}},
	}
	m := d.AddInstance("m", mm)
	m.Loc = geom.Pt(200, 200)
	m.Fixed, m.Placed = true, true
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(m, "D"))

	db := NewDB(geom.R(0, 0, 400, 400), comb, nil, Options{GCellPitch: 10})
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.F2FBumps == 0 {
		t.Fatal("fixture produced no F2F crossing")
	}
	wantUse := append([]int32(nil), db.usage...)
	wantF2F := append([]int32(nil), db.f2fUse...)
	for i := range db.usage {
		db.usage[i] = 99
	}
	for i := range db.f2fUse {
		db.f2fUse[i] = 99
	}
	db.RebuildUsage(res)
	for i := range wantUse {
		if db.usage[i] != wantUse[i] {
			t.Fatalf("usage[%d] = %d after rebuild, want %d", i, db.usage[i], wantUse[i])
		}
	}
	for i := range wantF2F {
		if db.f2fUse[i] != wantF2F[i] {
			t.Fatalf("f2fUse[%d] = %d after rebuild, want %d", i, db.f2fUse[i], wantF2F[i])
		}
	}
}

// TestRecountExact: Recount must reconstruct every aggregate — totals,
// per-layer wirelength and per-route metrics — exactly from the
// segments, regardless of prior corruption.
func TestRecountExact(t *testing.T) {
	d := multiNetDesign(12)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	wantWL, wantVias, wantF2F, wantOver := res.WL, res.Vias, res.F2FBumps, res.Overflow
	wantLayers := append([]float64(nil), res.WLPerLayer...)
	wantNetWL := make([]float64, len(res.Routes))
	for i, r := range res.Routes {
		if r != nil {
			wantNetWL[i] = r.WL
		}
	}

	res.WL, res.Vias, res.F2FBumps = -1, -1, -1
	for i := range res.WLPerLayer {
		res.WLPerLayer[i] = -42
	}
	for _, r := range res.Routes {
		if r != nil {
			r.WL, r.Vias, r.F2F = -5, -5, -5
		}
	}

	res.Recount(db)
	if res.WL != wantWL || res.Vias != wantVias || res.F2FBumps != wantF2F || res.Overflow != wantOver {
		t.Fatalf("Recount: WL %v/%v vias %d/%d f2f %d/%d overflow %d/%d",
			res.WL, wantWL, res.Vias, wantVias, res.F2FBumps, wantF2F, res.Overflow, wantOver)
	}
	for l := range wantLayers {
		if res.WLPerLayer[l] != wantLayers[l] {
			t.Fatalf("Recount layer %d WL = %v, want %v", l, res.WLPerLayer[l], wantLayers[l])
		}
	}
	for i, r := range res.Routes {
		if r != nil && r.WL != wantNetWL[i] {
			t.Fatalf("Recount net %d WL = %v, want %v", i, r.WL, wantNetWL[i])
		}
	}
}

// TestTranslateRouteRoundTrip: translating by (dx, dy) and back —
// including negative offsets — must reproduce the original route
// exactly (segments, pin nodes, metrics) without mutating the input.
func TestTranslateRouteRoundTrip(t *testing.T) {
	d := twoPinDesign(210, 110)
	db := db6(t, geom.R(0, 0, 300, 300), nil)
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Routes[0]
	origSegs := append([]Seg(nil), r.Segments...)
	origPins := append([]Node(nil), r.PinNode...)

	back := TranslateRoute(TranslateRoute(r, -3, -9), 3, 9)
	if len(back.Segments) != len(origSegs) {
		t.Fatalf("round trip changed segment count: %d vs %d", len(back.Segments), len(origSegs))
	}
	for i := range origSegs {
		if back.Segments[i] != origSegs[i] {
			t.Fatalf("segment %d = %v after round trip, want %v", i, back.Segments[i], origSegs[i])
		}
	}
	if len(back.PinNode) != len(origPins) {
		t.Fatal("round trip changed pin-node count")
	}
	for i := range origPins {
		if back.PinNode[i] != origPins[i] {
			t.Fatalf("pin node %d = %v after round trip, want %v", i, back.PinNode[i], origPins[i])
		}
	}
	if back.WL != r.WL || back.Vias != r.Vias || back.F2F != r.F2F {
		t.Fatal("round trip changed metrics")
	}
	// Input untouched by either translation.
	for i := range origSegs {
		if r.Segments[i] != origSegs[i] {
			t.Fatal("TranslateRoute mutated its input")
		}
	}
	for i := range origPins {
		if r.PinNode[i] != origPins[i] {
			t.Fatal("TranslateRoute mutated input pin nodes")
		}
	}
}
