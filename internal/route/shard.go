package route

import (
	"fmt"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
)

// --- region-sharded fast routing ---
//
// The deterministic batch engine (batch.go) is bit-identical to the
// serial reference, but it pays for that with a serial planning scan
// and an ordered commit every round. On large flat designs those
// serial segments bound the speedup (Amdahl). The sharded engine
// trades bit-identity with the *default* engine for a schedule with
// almost no serial footprint:
//
//   - the gcell grid is partitioned into a fixed rx×ry region grid
//     (ShardRegions, default 8 — a constant of the configuration,
//     never derived from the worker count);
//   - a net whose entire read/write footprint (pattern frame or maze
//     window, union over its MST edges) fits inside one region is
//     owned by that region. Regions are spatially disjoint, so every
//     region routes its nets concurrently against the shared usage
//     grid with no synchronization at all — reads and writes cannot
//     leave the region;
//   - boundary-crossing nets — the halo traffic — are routed first,
//     in their original serial order, through the deterministic batch
//     engine. Long nets are exactly the ones that cross regions, so
//     this also preserves the "long nets set the congestion landscape"
//     ordering heuristic;
//   - rip-up releases all happen up front, in task order, before any
//     concurrent work.
//
// Results are NOT bit-identical to the default engine (region-local
// nets no longer interleave with boundary nets in global order), but
// they are deterministic at any -j: the region grid is fixed, region
// buckets preserve serial order, regions are disjoint, and the
// boundary pass is the ordered batch engine. Options.ShardVerify
// re-routes with the serial reference and enforces the documented
// PPA bounds (shardVerifyWLTol / shardVerifyOverflowSlack).

// defaultShardRegions is the fixed region count of the sharded
// router. Eight regions keep every -j ≤ 8 fully fed while remaining a
// configuration constant: changing it changes results, changing -j
// does not.
const defaultShardRegions = 8

// Sharded-vs-serial verification bounds (Options.ShardVerify): the
// fast result must stay within these limits of the serial reference.
const (
	// shardVerifyWLTol bounds the relative routed-wirelength drift.
	shardVerifyWLTol = 0.10
	// shardVerifyOverflowFrac and shardVerifyOverflowSlack bound the
	// overflow regression: fast ≤ serial×(1+frac) + slack gcells.
	shardVerifyOverflowFrac  = 0.10
	shardVerifyOverflowSlack = 16
)

// shardPlan is the fixed rectangular region decomposition of a grid.
type shardPlan struct {
	rx, ry int // region grid dimensions (rx*ry regions)
	bx, by int // gcells per region step (last row/col absorbs remainder)
}

// newShardPlan factors `regions` into the rx×ry split whose regions
// are closest to square in gcells — a pure function of the grid, so
// every run over the same die shards identically.
func newShardPlan(g geom.Grid, regions int) *shardPlan {
	if regions < 1 {
		regions = 1
	}
	best := &shardPlan{rx: 1, ry: 1}
	bestScore := -1.0
	for rx := 1; rx <= regions; rx++ {
		if regions%rx != 0 {
			continue
		}
		ry := regions / rx
		if rx > g.NX || ry > g.NY {
			continue
		}
		w := float64(g.NX) / float64(rx)
		h := float64(g.NY) / float64(ry)
		score := w / h
		if score > 1 {
			score = 1 / score // aspect ratio in (0,1], 1 is square
		}
		if score > bestScore {
			bestScore = score
			best = &shardPlan{rx: rx, ry: ry}
		}
	}
	best.bx = (g.NX + best.rx - 1) / best.rx
	best.by = (g.NY + best.ry - 1) / best.ry
	return best
}

func (p *shardPlan) regions() int { return p.rx * p.ry }

// regionOf maps a gcell to its owning region index.
func (p *shardPlan) regionOf(x, y int) int {
	ix := min(x/p.bx, p.rx-1)
	iy := min(y/p.by, p.ry-1)
	return iy*p.rx + ix
}

// assign returns the owning region of a task whose whole footprint
// bbox sits inside one region, or -1 for a boundary-crossing task.
// The bbox is the union over MST edges of the pattern pin bbox (the
// L-shape frames never leave it) or the expanded maze window (the
// declared search read/write volume).
func (db *DB) shardAssign(p *shardPlan, t *netTask, maze bool) int {
	if len(t.edges) == 0 {
		if len(t.route.PinNode) == 0 {
			return 0
		}
		n := t.route.PinNode[0]
		return p.regionOf(n.X, n.Y)
	}
	x0, y0 := db.Grid.NX, db.Grid.NY
	x1, y1 := 0, 0
	for _, e := range t.edges {
		a, b := t.route.PinNode[e[0]], t.route.PinNode[e[1]]
		if maze {
			w := db.mazeWindow(a, b)
			x0, y0 = min(x0, w.x0), min(y0, w.y0)
			x1, y1 = max(x1, w.x1), max(y1, w.y1)
			continue
		}
		x0, y0 = min(x0, min(a.X, b.X)), min(y0, min(a.Y, b.Y))
		x1, y1 = max(x1, max(a.X, b.X)), max(y1, max(a.Y, b.Y))
	}
	r := p.regionOf(x0, y0)
	if p.regionOf(x1, y1) != r {
		return -1
	}
	return r
}

// shardPlanFor lazily builds (and caches) the DB's region plan.
func (db *DB) shardPlanFor() *shardPlan {
	if db.shards == nil {
		db.shards = newShardPlan(db.Grid, db.opt.ShardRegions)
	}
	return db.shards
}

// routeAllSharded routes the ordered tasks with the region-sharded
// schedule: up-front ordered rip-up releases, boundary nets through
// the deterministic batch engine (in order), then every region's
// local nets concurrently. commit(t) must only write state disjoint
// per net (usage along the route, the net's result slot) — the same
// contract routeAll's batch commits rely on.
func (db *DB) routeAllSharded(tasks []*netTask, maze bool, workers int, pool []*mazeScratch,
	met *routeMetrics, commit func(*netTask)) {

	p := db.shardPlanFor()
	nr := p.regions()

	// Ordered releases first: every rip-up victim's old usage comes
	// off before any routing reads congestion, so the concurrent
	// phase sees one consistent pre-pass snapshot of released state.
	rsp := met.main.Begin("route", "route/shard-release")
	released := 0
	for _, t := range tasks {
		if t.old != nil {
			db.addUsage(t.old, -1)
			t.old = nil
			released++
		}
	}
	rsp.End(trace.N("nets", int64(released)))

	// Region assignment is a pure function of placement and grid —
	// it fans out freely.
	region := make([]int16, len(tasks))
	met.busy += par.ItemsTr(met.ts, "route/shard-assign", workers, len(tasks), func(w, i int) {
		region[i] = int16(db.shardAssign(p, tasks[i], maze))
	})

	// Bucket in task order: per-region lists and the boundary set
	// each preserve the serial order of their members.
	buckets := make([][]*netTask, nr)
	var boundary []*netTask
	for i, t := range tasks {
		if r := region[i]; r >= 0 {
			buckets[r] = append(buckets[r], t)
		} else {
			boundary = append(boundary, t)
		}
	}
	met.shardBoundary.Add(uint64(len(boundary)))

	// Boundary-crossing nets first, through the ordered batch engine:
	// the long nets that span regions set the congestion landscape the
	// region-local nets then dodge — the same priority the serial
	// HPWL sort encodes.
	db.routeAll(boundary, maze, workers, pool, met, commit)

	// Concurrent region routing: regions are spatially disjoint, so
	// each worker routes and commits its regions' nets directly
	// against the shared grid — no planning, no ordered merge, no
	// synchronization beyond the final barrier.
	met.busy += par.ItemsTr(met.ts, "route/shard", workers, nr, func(w, r int) {
		s := pool[w]
		for _, t := range buckets[r] {
			db.routeTask(t, maze, s)
			commit(t)
		}
	})
}

// verifySharded re-routes the design with the serial reference engine
// on a fresh usage view and checks the sharded result against the
// documented PPA bounds. Called once, after the sharded run's final
// accounting; roughly doubles routing cost while enabled.
func (db *DB) verifySharded(d *netlist.Design, res *Result) error {
	ref := db.cloneEmpty()
	refRes, err := RouteDesign(d, ref)
	if err != nil {
		return fmt.Errorf("route: shard verify reference run: %w", err)
	}
	if refRes.WL > 0 {
		drift := (res.WL - refRes.WL) / refRes.WL
		if drift < 0 {
			drift = -drift
		}
		if drift > shardVerifyWLTol {
			return fmt.Errorf("route: shard verify: WL %.0f µm drifts %.1f%% from serial reference %.0f µm (bound %.0f%%)",
				res.WL, 100*drift, refRes.WL, 100*shardVerifyWLTol)
		}
	}
	bound := int(float64(refRes.Overflow)*(1+shardVerifyOverflowFrac)) + shardVerifyOverflowSlack
	if res.Overflow > bound {
		return fmt.Errorf("route: shard verify: overflow %d exceeds serial reference %d beyond bound %d",
			res.Overflow, refRes.Overflow, bound)
	}
	return nil
}

// cloneEmpty copies the DB's immutable configuration (grid, BEOL,
// capacities) with fresh usage/history state — the verification
// reference view. Capacity arrays are read-only after NewDB and are
// shared, not copied.
func (db *DB) cloneEmpty() *DB {
	opt := db.opt
	opt.Workers = 1
	opt.Sharded = false
	opt.ShardVerify = false
	opt.Obs = nil
	opt.Trace = nil
	c := &DB{
		Grid:     db.Grid,
		Beol:     db.Beol,
		opt:      opt,
		layerIdx: db.layerIdx,
		cap:      db.cap,
		usage:    make([]int32, len(db.usage)),
		hist:     make([]float32, len(db.hist)),
		f2fIdx:   db.f2fIdx,
		gcellWL:  db.gcellWL,
	}
	if db.f2fCap != nil {
		c.f2fCap = db.f2fCap
		c.f2fUse = make([]int32, len(db.f2fUse))
	}
	return c
}
