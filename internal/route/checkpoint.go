package route

import "fmt"

// DynState returns copies of the DB's mutable routing state: per-bin
// wire usage, negotiated-congestion history cost, and F2F bump usage.
// Together with the Result these fully determine the DB's behaviour in
// downstream optimization (congestion cost reads both usage and
// history), so a checkpoint that restores them resumes bit-identically.
func (db *DB) DynState() (usage []int32, hist []float32, f2fUse []int32) {
	usage = append([]int32(nil), db.usage...)
	hist = append([]float32(nil), db.hist...)
	f2fUse = append([]int32(nil), db.f2fUse...)
	return usage, hist, f2fUse
}

// SetDynState installs usage, history and F2F usage captured by
// DynState on an identically-constructed DB. Lengths are validated
// before any mutation, so a corrupt snapshot leaves the DB untouched.
func (db *DB) SetDynState(usage []int32, hist []float32, f2fUse []int32) error {
	if len(usage) != len(db.usage) || len(hist) != len(db.hist) || len(f2fUse) != len(db.f2fUse) {
		return fmt.Errorf("route: dyn state shape %d/%d/%d, want %d/%d/%d",
			len(usage), len(hist), len(f2fUse), len(db.usage), len(db.hist), len(db.f2fUse))
	}
	copy(db.usage, usage)
	copy(db.hist, hist)
	copy(db.f2fUse, f2fUse)
	return nil
}
