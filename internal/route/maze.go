package route

import (
	"fmt"

	"macro3d/internal/geom"
	"macro3d/internal/tech"
)

// --- windowed A* maze routing ---
//
// Maze search runs inside a bounding-box window around the two pins
// (expanded by mazeMargin gcells for detours) instead of the whole
// grid. That bounds both the work and — together with the reusable
// per-worker scratch below — the allocations: the historical
// implementation allocated whole-grid dist/prev arrays and a boxed
// container/heap item per push for every two-pin connection, which
// dominated negotiation time on the large tile. The window is also
// the search's declared read/write footprint, which is what lets the
// batch planner run disjoint maze reroutes concurrently.

// mazeMargin is the detour allowance around the two-pin bounding box,
// in gcells per side.
const mazeMargin = 16

// window is a clamped sub-volume of the routing grid with its own
// dense local indexing (layer-major, then rows).
type window struct {
	x0, y0, x1, y1 int // inclusive gcell bounds
	wx, wy, nl     int
}

func (w window) size() int { return w.nl * w.wx * w.wy }

func (w window) idx(n Node) int {
	return (n.L*w.wy+(n.Y-w.y0))*w.wx + (n.X - w.x0)
}

func (w window) node(i int) Node {
	x := i%w.wx + w.x0
	r := i / w.wx
	return Node{X: x, Y: r%w.wy + w.y0, L: r / w.wy}
}

// mazeWindow is the search window for a two-pin connection: the pin
// bounding box expanded by mazeMargin, clamped to the grid, over all
// layers.
func (db *DB) mazeWindow(a, b Node) window {
	g := db.Grid
	w := window{
		x0: max(0, min(a.X, b.X)-mazeMargin),
		y0: max(0, min(a.Y, b.Y)-mazeMargin),
		x1: min(g.NX-1, max(a.X, b.X)+mazeMargin),
		y1: min(g.NY-1, max(a.Y, b.Y)+mazeMargin),
		nl: db.Beol.NumLayers(),
	}
	w.wx = w.x1 - w.x0 + 1
	w.wy = w.y1 - w.y0 + 1
	return w
}

// mazeEntry is one open-list element of the typed priority queue —
// a plain value, no boxing, no per-push allocation. Stale entries
// (lazy deletion) are skipped on pop via the dist check.
type mazeEntry struct {
	idx  int32
	cost float64
	est  float64
}

// mazeScratch is the reusable per-worker state of the windowed A*:
// dist/prev backing arrays sized to the largest window seen so far,
// the typed binary heap, and the path-trace node buffer. One scratch
// serves one goroutine; RouteDesign keeps one per worker and reuses
// them across every two-pin search of the run — including across
// shard batches of the region-sharded router, whose per-region
// windows vary wildly in size.
//
// Visited state is generation-stamped: a node's dist/prev entries are
// valid only when gen[i] matches the current search generation, so a
// reset never touches the backing arrays at all — it bumps one
// counter. The historical implementation re-filled dist with -1 on
// every search (O(window) per two-pin connection), which showed up as
// measurable reset time once windows grew to region size.
type mazeScratch struct {
	dist  []float64
	prev  []int32
	gen   []uint32 // dist/prev valid iff gen[i] == cur
	cur   uint32   // current search generation
	heap  []mazeEntry
	nodes []Node

	hits   uint64 // searches served by the existing backing arrays
	misses uint64 // searches that had to (re)grow the arrays
}

// reset prepares the scratch for a search over `size` window nodes:
// grow-only — the backing arrays reallocate only when the window
// exceeds every previous one, and an in-capacity reset is O(1) (a
// generation bump, no clearing).
func (s *mazeScratch) reset(size int) {
	if cap(s.dist) < size {
		s.dist = make([]float64, size)
		s.prev = make([]int32, size)
		s.gen = make([]uint32, size) // zeroed: nothing valid yet
		s.cur = 0
		s.misses++
	} else {
		s.hits++
	}
	s.dist = s.dist[:size]
	s.prev = s.prev[:size]
	s.gen = s.gen[:size]
	s.cur++
	if s.cur == 0 { // generation wrap: stale stamps could collide
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
	s.heap = s.heap[:0]
	s.nodes = s.nodes[:0]
}

// visited reports whether the node has a valid dist this generation.
func (s *mazeScratch) visited(i int) bool { return s.gen[i] == s.cur }

// visit records dist/prev for a node under the current generation.
func (s *mazeScratch) visit(i int, d float64, p int32) {
	s.dist[i] = d
	s.prev[i] = p
	s.gen[i] = s.cur
}

func (s *mazeScratch) push(e mazeEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].est <= s.heap[i].est {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *mazeScratch) pop() mazeEntry {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.heap = h[:last]
	h = s.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].est < h[m].est {
			m = l
		}
		if r < len(h) && h[r].est < h[m].est {
			m = r
		}
		if m == i {
			return top
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// mazeRoute finds a least-cost path with windowed 3D A*, using the
// DB-resident scratch. ECO reroutes and tests use this entry point;
// the parallel router hands each worker its own scratch via
// mazeRouteScratch.
func (db *DB) mazeRoute(a, b Node) ([]Seg, error) {
	return db.mazeRouteScratch(db.scratch(), a, b, nil)
}

// scratch lazily builds the DB's single-threaded maze scratch.
func (db *DB) scratch() *mazeScratch {
	if db.eco == nil {
		db.eco = &mazeScratch{}
	}
	return db.eco
}

// mazeRouteScratch runs A* from a to b inside the expanded pin-bbox
// window, appending the path segments to dst (which may be nil). All
// mutable search state lives in s; the congestion grid is only read,
// so disjoint searches may run concurrently.
func (db *DB) mazeRouteScratch(s *mazeScratch, a, b Node, dst []Seg) ([]Seg, error) {
	win := db.mazeWindow(a, b)
	size := win.size()
	s.reset(size)

	h := func(n Node) float64 {
		return float64(geom.AbsInt(n.X-b.X)+geom.AbsInt(n.Y-b.Y)) +
			float64(geom.AbsInt(n.L-b.L))*db.opt.ViaCost
	}
	start := win.idx(a)
	goal := int32(win.idx(b))
	s.visit(start, 0, -1)
	s.push(mazeEntry{idx: int32(start), cost: 0, est: h(a)})
	// Expansion budget keeps pathological cases bounded.
	budget := size * 2
	for len(s.heap) > 0 && budget > 0 {
		budget--
		it := s.pop()
		if it.cost > s.dist[it.idx] {
			continue
		}
		if it.idx == goal {
			return db.tracePath(s, win, a, b, dst), nil
		}
		n := win.node(int(it.idx))
		// Neighbors: preferred-direction steps and vias, all clamped
		// to the window.
		var neigh [4]Node
		var ncost [4]float64
		cnt := 0
		ly := db.Beol.Layers[n.L]
		if ly.Dir == tech.DirHorizontal {
			if n.X > win.x0 {
				neigh[cnt] = Node{n.X - 1, n.Y, n.L}
				cnt++
			}
			if n.X < win.x1 {
				neigh[cnt] = Node{n.X + 1, n.Y, n.L}
				cnt++
			}
		} else {
			if n.Y > win.y0 {
				neigh[cnt] = Node{n.X, n.Y - 1, n.L}
				cnt++
			}
			if n.Y < win.y1 {
				neigh[cnt] = Node{n.X, n.Y + 1, n.L}
				cnt++
			}
		}
		wireN := cnt
		if n.L > 0 {
			neigh[cnt] = Node{n.X, n.Y, n.L - 1}
			cnt++
		}
		if n.L < win.nl-1 {
			neigh[cnt] = Node{n.X, n.Y, n.L + 1}
			cnt++
		}
		for k := 0; k < cnt; k++ {
			m := neigh[k]
			if k < wireN {
				ncost[k] = 1 + db.congestionCost(db.idx(m))
			} else {
				ncost[k] = db.viaStackCost(n.X, n.Y, n.L, m.L)
			}
			mi := win.idx(m)
			nc := it.cost + ncost[k]
			if !s.visited(mi) || nc < s.dist[mi] {
				s.visit(mi, nc, it.idx)
				s.push(mazeEntry{idx: int32(mi), cost: nc, est: nc + h(m)})
			}
		}
	}
	return dst, fmt.Errorf("route: maze route %v→%v failed", a, b)
}

// tracePath reconstructs segments from the window-local predecessor
// array, merging consecutive steps in the same direction, and appends
// them to dst.
func (db *DB) tracePath(s *mazeScratch, win window, a, b Node, dst []Seg) []Seg {
	// Collect nodes b → a into the scratch buffer.
	s.nodes = s.nodes[:0]
	cur := int32(win.idx(b))
	for cur >= 0 {
		n := win.node(int(cur))
		s.nodes = append(s.nodes, n)
		if n == a {
			break
		}
		cur = s.prev[cur]
	}
	// Reverse to a → b.
	for i, j := 0, len(s.nodes)-1; i < j; i, j = i+1, j-1 {
		s.nodes[i], s.nodes[j] = s.nodes[j], s.nodes[i]
	}
	base := len(dst)
	for i := 1; i < len(s.nodes); i++ {
		p, n := s.nodes[i-1], s.nodes[i]
		if len(dst) > base {
			last := &dst[len(dst)-1]
			// Extend the last straight segment when collinear.
			if !last.IsVia() && !(Seg{p, n}).IsVia() &&
				((last.A.Y == last.B.Y && last.B.Y == n.Y && last.A.L == n.L) ||
					(last.A.X == last.B.X && last.B.X == n.X && last.A.L == n.L)) {
				last.B = n
				continue
			}
		}
		dst = append(dst, Seg{p, n})
	}
	return dst
}
