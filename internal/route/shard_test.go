package route

import (
	"testing"

	"macro3d/internal/geom"
	"macro3d/internal/tech"
)

// TestShardPlanGeometry pins the region decomposition: a fixed region
// count factors to the near-square grid, every gcell maps to exactly
// one in-range region, and the mapping is independent of anything but
// the grid.
func TestShardPlanGeometry(t *testing.T) {
	g := geom.NewGrid(geom.R(0, 0, 1200, 600), 15)
	p := newShardPlan(g, 8)
	if p.regions() != 8 {
		t.Fatalf("regions = %d, want 8", p.regions())
	}
	// 1200×600 µm at 15 µm pitch is an 80×40 grid; the squarest 8-way
	// split is 4×2 (20×20-gcell regions).
	if p.rx != 4 || p.ry != 2 {
		t.Fatalf("factorization = %d×%d, want 4×2", p.rx, p.ry)
	}
	seen := make([]bool, p.regions())
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			r := p.regionOf(x, y)
			if r < 0 || r >= p.regions() {
				t.Fatalf("regionOf(%d,%d) = %d out of range", x, y, r)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("region %d owns no gcells", r)
		}
	}
	// A grid smaller than the requested split degrades gracefully.
	tiny := geom.Grid{NX: 2, NY: 1, DX: 15, DY: 15}
	tp := newShardPlan(tiny, 8)
	if tp.regions() > 2 {
		t.Fatalf("tiny grid got %d regions, want ≤ 2", tp.regions())
	}
}

// TestShardAssignContainment checks the ownership rule: a task is
// owned by a region only if its whole footprint bbox is inside it;
// bbox-crossing tasks report boundary (-1). Maze mode must use the
// expanded search window, not the bare pin bbox.
func TestShardAssignContainment(t *testing.T) {
	db := db6(t, geom.R(0, 0, 1200, 600), nil)
	p := db.shardPlanFor() // 120×60 gcells → 4×2 regions of 30×30

	task := func(ax, ay, bx, by int) *netTask {
		r := &NetRoute{PinNode: []Node{{X: ax, Y: ay, L: 0}, {X: bx, Y: by, L: 0}}}
		return &netTask{route: r, edges: [][2]int{{0, 1}}}
	}

	// Fully inside region 0 (x,y < 30).
	if r := db.shardAssign(p, task(27, 27, 28, 28), false); r != 0 {
		t.Fatalf("interior pattern task assigned to %d, want 0", r)
	}
	// Crossing the x=30 region boundary.
	if r := db.shardAssign(p, task(28, 5, 32, 5), false); r != -1 {
		t.Fatalf("boundary-crossing task assigned to %d, want -1", r)
	}
	// Pattern-safe but maze-unsafe: the pin bbox sits inside region 0,
	// but the ±16-gcell maze window leaks across x=30.
	if r := db.shardAssign(p, task(27, 27, 28, 28), true); r != -1 {
		t.Fatalf("maze window leaks the region but task assigned to %d", r)
	}
	// Maze-safe only when the window clamps to the grid edge inside the
	// region: pins at the origin corner keep the whole window in region 0.
	if r := db.shardAssign(p, task(0, 0, 2, 2), true); r != 0 {
		t.Fatalf("clamped maze window task assigned to %d, want 0", r)
	}
}

// TestShardedWorkerDeterminism pins the sharded engine's contract:
// results are NOT bit-identical to the default engine, but they ARE
// byte-identical across worker counts — the region grid is fixed and
// never derived from -j.
func TestShardedWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("tile routing in -short mode")
	}
	d, die, blk := placedSmallTile(t)
	b6, _ := tech.NewBEOL28("logic", 6)

	type run struct {
		workers int
		db      *DB
		res     *Result
	}
	var runs []run
	for _, w := range []int{1, 4, 0} {
		db := NewDB(die, b6, blk, Options{Workers: w, Sharded: true})
		res, err := RouteDesign(d, db)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		runs = append(runs, run{w, db, res})
	}
	ref := runs[0]
	for _, r := range runs[1:] {
		if r.res.WL != ref.res.WL || r.res.Vias != ref.res.Vias ||
			r.res.F2FBumps != ref.res.F2FBumps || r.res.Overflow != ref.res.Overflow {
			t.Fatalf("sharded workers=%d aggregates diverged: WL %v/%v vias %d/%d overflow %d/%d",
				r.workers, r.res.WL, ref.res.WL, r.res.Vias, ref.res.Vias,
				r.res.Overflow, ref.res.Overflow)
		}
		for i := range ref.db.usage {
			if r.db.usage[i] != ref.db.usage[i] {
				t.Fatalf("sharded workers=%d usage[%d] = %d, want %d",
					r.workers, i, r.db.usage[i], ref.db.usage[i])
			}
		}
		for id, rr := range ref.res.Routes {
			pr := r.res.Routes[id]
			if (rr == nil) != (pr == nil) {
				t.Fatalf("sharded workers=%d net %d presence diverged", r.workers, id)
			}
			if rr == nil {
				continue
			}
			if len(pr.Segments) != len(rr.Segments) {
				t.Fatalf("sharded workers=%d net %d has %d segments, want %d",
					r.workers, id, len(pr.Segments), len(rr.Segments))
			}
			for si := range rr.Segments {
				if pr.Segments[si] != rr.Segments[si] {
					t.Fatalf("sharded workers=%d net %d segment %d = %v, want %v",
						r.workers, id, si, pr.Segments[si], rr.Segments[si])
				}
			}
		}
	}
}

// TestShardedVerifyBounds runs the sharded engine with ShardVerify on:
// the built-in serial-reference comparison must hold on the small tile
// (WL within shardVerifyWLTol, overflow within the documented slack).
func TestShardedVerifyBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("tile routing in -short mode")
	}
	d, die, blk := placedSmallTile(t)
	b6, _ := tech.NewBEOL28("logic", 6)
	db := NewDB(die, b6, blk, Options{Workers: 0, Sharded: true, ShardVerify: true})
	res, err := RouteDesign(d, db)
	if err != nil {
		t.Fatalf("sharded route with verify: %v", err)
	}
	if res.WL <= 0 {
		t.Fatal("sharded route produced no wirelength")
	}
}
