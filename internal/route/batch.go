package route

import (
	"fmt"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
)

// --- deterministic parallel batching ---
//
// The router's serial semantics are: nets are processed in a fixed
// order, and each net routes against the congestion left by every net
// before it. The parallel engine keeps those semantics bit-identical
// by only routing nets concurrently whose read/write footprints are
// spatially disjoint:
//
//   - a pattern route's footprint is the frame of each MST edge's
//     bounding box (the four edge lines carrying every candidate
//     L-shape, via stack and congestion lookup);
//   - a maze reroute's footprint is the whole expanded A* window;
//   - a rip-up victim additionally claims its old route's segments
//     (released usage is a write).
//
// Batches are planned by scanning the pending nets in serial order
// and stamping every scanned footprint into a coarse tile raster: a
// net joins the current batch only if none of its tiles were stamped
// by an earlier-scanned net (batched OR deferred — a net may never
// jump the queue past a conflicting predecessor). Batch members are
// routed concurrently against the frozen pre-batch congestion and
// committed in order; deferred nets retry next round. Because every
// pair of concurrently routed nets is disjoint, and usage commits are
// integer adds merged in net order, the result is byte-identical to
// the workers==1 serial reference at any worker count.

// netTask is the per-net unit of work: the deterministic prep (pin
// nodes, MST edges) shared by the batch planner and the routing
// workers, plus the old route when the task is a negotiation rip-up.
type netTask struct {
	net   *netlist.Net
	route *NetRoute
	edges [][2]int  // MST edges as pin-index pairs
	old   *NetRoute // non-nil for rip-up victims
}

// prepTask resolves pin nodes and decomposes the net into two-pin MST
// edges. Pure function of the placement — independent of congestion,
// so prep order never affects results.
func (db *DB) prepTask(n *netlist.Net) (*netTask, error) {
	pins := n.Pins()
	r := &NetRoute{Net: n, PinNode: make([]Node, len(pins))}
	for i, p := range pins {
		nd, err := db.PinNode(p)
		if err != nil {
			return nil, fmt.Errorf("net %s: %w", n.Name, err)
		}
		r.PinNode[i] = nd
	}
	t := &netTask{net: n, route: r}
	if len(pins) < 2 {
		return t, nil
	}
	// Prim MST over pin grid locations.
	inTree := make([]bool, len(pins))
	inTree[0] = true
	t.edges = make([][2]int, 0, len(pins)-1)
	for k := 1; k < len(pins); k++ {
		best, bi, bj := 1<<30, -1, -1
		for i := range pins {
			if !inTree[i] {
				continue
			}
			for j := range pins {
				if inTree[j] {
					continue
				}
				d := geom.AbsInt(r.PinNode[i].X-r.PinNode[j].X) +
					geom.AbsInt(r.PinNode[i].Y-r.PinNode[j].Y)
				if d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		inTree[bj] = true
		t.edges = append(t.edges, [2]int{bi, bj})
	}
	return t, nil
}

// routeTask computes the task's segments against current congestion,
// one MST edge at a time. Maze-mode failures fall back to the pattern
// route exactly like the serial router. Only reads shared state; all
// mutable search state lives in s.
func (db *DB) routeTask(t *netTask, maze bool, s *mazeScratch) {
	for _, e := range t.edges {
		a, b := t.route.PinNode[e[0]], t.route.PinNode[e[1]]
		if maze {
			segs, err := db.mazeRouteScratch(s, a, b, t.route.Segments)
			if err == nil {
				t.route.Segments = segs
				continue
			}
		}
		t.route.Segments = append(t.route.Segments, db.patternRoute(a, b)...)
	}
}

// tileMap is the conflict raster of the batch planner: the gcell grid
// coarsened to tilePx×tilePx tiles. Each tile records (epoch, token)
// packed into one uint64, so rounds reset in O(1) (epoch bump) and a
// task can stamp-and-detect in a single visit: tiles marked this epoch
// by a *different* token are conflicts, its own token is not — which
// is what lets the conflict check and the claim share one pass where
// the historical planner walked every footprint twice.
type tileMap struct {
	tx, ty int
	epoch  uint32
	mark   []uint64
}

// tilePx is the conflict-tile edge in gcells. Coarser tiles cost
// parallelism (false conflicts), finer tiles cost planning time; 4
// keeps planning under 1% of routing on the large tile.
const tilePx = 4

func newTileMap(g geom.Grid) *tileMap {
	tx := (g.NX + tilePx - 1) / tilePx
	ty := (g.NY + tilePx - 1) / tilePx
	return &tileMap{tx: tx, ty: ty, mark: make([]uint64, tx*ty)}
}

func (m *tileMap) next() { m.epoch++ }

// tileRect is one stamped rectangle in tile coordinates — the
// precomputed unit the serial planner scan marks. Footprints are
// reduced to tile rects in parallel ahead of the scan, so the scan
// itself is pure integer marking.
type tileRect struct {
	x0, y0, x1, y1 int32
}

// stampTok claims the tile rect for (current epoch, tok) and reports
// whether any tile was already claimed this epoch by a different
// token. Rectangles of one task may overlap each other; sharing the
// token keeps self-overlap from reading as a conflict.
func (m *tileMap) stampTok(r tileRect, tok uint32) bool {
	v := uint64(m.epoch)<<32 | uint64(tok)
	hit := false
	for ty := r.y0; ty <= r.y1; ty++ {
		row := int(ty) * m.tx
		for tx := r.x0; tx <= r.x1; tx++ {
			i := row + int(tx)
			if cur := m.mark[i]; cur>>32 == uint64(m.epoch) && cur != v {
				hit = true
			}
			m.mark[i] = v
		}
	}
	return hit
}

// footprint visits every gcell rectangle the task may read or write:
// per MST edge the pattern frame (or the maze window), plus the old
// route's segments for rip-ups.
func (db *DB) footprint(t *netTask, maze bool, visit func(x0, y0, x1, y1 int)) {
	for _, e := range t.edges {
		a, b := t.route.PinNode[e[0]], t.route.PinNode[e[1]]
		if maze {
			w := db.mazeWindow(a, b)
			visit(w.x0, w.y0, w.x1, w.y1)
			continue
		}
		x0, x1 := min(a.X, b.X), max(a.X, b.X)
		y0, y1 := min(a.Y, b.Y), max(a.Y, b.Y)
		visit(x0, y0, x1, y0)
		visit(x0, y1, x1, y1)
		visit(x0, y0, x0, y1)
		visit(x1, y0, x1, y1)
	}
	if t.old != nil {
		for _, s := range t.old.Segments {
			visit(min(s.A.X, s.B.X), min(s.A.Y, s.B.Y),
				max(s.A.X, s.B.X), max(s.A.Y, s.B.Y))
		}
	}
}

// footprintRects appends the task's footprint as tile-space rects.
func (db *DB) footprintRects(t *netTask, maze bool, dst []tileRect) []tileRect {
	db.footprint(t, maze, func(x0, y0, x1, y1 int) {
		dst = append(dst, tileRect{
			x0: int32(x0 / tilePx), y0: int32(y0 / tilePx),
			x1: int32(x1 / tilePx), y1: int32(y1 / tilePx),
		})
	})
	return dst
}

// Per-round planning caps. Scanning stops after scanCap tasks (or
// batchCap accepted ones); everything past the cutoff defers
// wholesale, keeping its order. Without the cutoff, planning rescans
// every pending footprint each round — quadratic when conflicts keep
// batches small. Both are constants, never derived from the worker
// count: batch composition feeds each net a specific congestion
// snapshot, so a workers-dependent cap would break the bit-identical
// guarantee across -j settings. The caps were grown 4× from the
// first parallel engine (128/512): on flat multi-tile designs the
// small caps throttled batches far below what spatial disjointness
// allows, making the per-round serial overhead dominate.
const (
	batchCap = 512
	scanCap  = 2048
)

// planBatch splits pending (in order) into the next conflict-free
// batch and the deferred remainder. Every scanned task stamps its
// footprint — batched or not — so no later task can overtake a
// conflicting predecessor; that ordering invariant is what makes the
// parallel schedule equivalent to the serial one.
//
// The geometric work (windows, frames, tile reduction) fans out over
// the workers first; the serial scan that remains is pure integer
// marking over the precomputed rects. Stamp order — and therefore
// batch composition — stays a pure function of the scan order, so
// results are independent of the worker count.
func (db *DB) planBatch(pending []*netTask, maze bool, m *tileMap, workers int,
	ts *trace.Set) (batch, deferred []*netTask) {

	m.next()
	n := min(len(pending), scanCap)
	// Parallel footprint precompute into per-task reusable buffers.
	if cap(db.planRects) < n {
		db.planRects = make([][]tileRect, n)
	}
	rects := db.planRects[:n]
	par.ChunksTr(ts, "route/plan-footprints", workers, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			rects[i] = db.footprintRects(pending[i], maze, rects[i][:0])
		}
	})
	// Serial ordered scan: stamp-and-detect per task, first hit defers.
	batch = make([]*netTask, 0, min(n, batchCap))
	for i, t := range pending[:n] {
		tok := uint32(i + 1) // 0 is the unstamped sentinel
		hit := false
		for _, r := range rects[i] {
			if m.stampTok(r, tok) {
				hit = true
			}
		}
		if hit {
			deferred = append(deferred, t)
		} else {
			batch = append(batch, t)
			if len(batch) == batchCap {
				deferred = append(deferred, pending[i+1:]...)
				return batch, deferred
			}
		}
	}
	deferred = append(deferred, pending[n:]...)
	return batch, deferred
}

// routeAll routes the ordered tasks and commits each with commit(t),
// preserving serial semantics. workers == 1 runs the plain sequential
// reference; otherwise tasks execute as deterministic conflict-free
// batches: rip-up releases in order, concurrent routing against the
// frozen snapshot (one scratch per worker), commits merged back in
// order.
func (db *DB) routeAll(tasks []*netTask, maze bool, workers int, pool []*mazeScratch,
	met *routeMetrics, commit func(*netTask)) {

	if workers <= 1 {
		ssp := met.main.Begin("route", "route/serial-pass")
		s := pool[0]
		for _, t := range tasks {
			if t.old != nil {
				db.addUsage(t.old, -1)
			}
			db.routeTask(t, maze, s)
			commit(t)
		}
		ssp.End(trace.N("nets", int64(len(tasks))))
		return
	}
	m := db.tiles
	if m == nil {
		m = newTileMap(db.Grid)
		db.tiles = m
	}
	pending := tasks
	for len(pending) > 0 {
		psp := met.main.Begin("route", "route/plan")
		batch, deferred := db.planBatch(pending, maze, m, workers, met.ts)
		psp.End(trace.N("batch", int64(len(batch))), trace.N("deferred", int64(len(deferred))))
		met.batches.Inc()
		met.batchNets.Observe(float64(len(batch)))
		met.conflicts.Add(uint64(len(deferred)))
		// Rip-up releases, in order, before the concurrent phase. A
		// released route lies inside its task's stamped footprint, so
		// it is invisible to every other batch member.
		rsp := met.main.Begin("route", "route/release")
		released := 0
		for _, t := range batch {
			if t.old != nil {
				db.addUsage(t.old, -1)
				released++
			}
		}
		rsp.End(trace.N("nets", int64(released)))
		met.busy += par.ChunksTr(met.ts, "route/batch", workers, len(batch), func(w, lo, hi int) {
			s := pool[w]
			for _, t := range batch[lo:hi] {
				db.routeTask(t, maze, s)
			}
		})
		// Ordered merge: usage deltas commit in net order.
		csp := met.main.Begin("route", "route/commit")
		for _, t := range batch {
			commit(t)
		}
		csp.End(trace.N("nets", int64(len(batch))))
		pending = deferred
	}
}
