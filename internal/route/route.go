// Package route implements global routing over a gcell grid spanning
// an arbitrary BEOL — including the 10–13-layer combined stacks of
// Macro-3D designs. Nets are decomposed into two-pin connections by a
// rectilinear MST, routed with congestion-aware pattern routes
// (L-shapes over an H/V layer pair), and negotiated with
// PathFinder-style rip-up-and-reroute using 3D A* for overflowed nets.
//
// The router honours preferred directions, per-layer track capacities,
// macro obstructions (which is what forces ≥6 metal layers over
// memories in 2D designs), and the F2F bonding via: crossing the F2F
// boundary consumes bump capacity on the bump grid, and every crossing
// is counted — the paper's F2F-bump cost metric.
package route

import (
	"fmt"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/tech"
)

// Options tunes the router.
type Options struct {
	// GCellPitch is the routing grid pitch, µm (default 15).
	GCellPitch float64
	// MaxIters is the number of negotiation iterations (default 6).
	MaxIters int
	// CapacityFill derates raw track capacity (default 0.65 — tracks
	// lost to pins, power and detailed-routing inefficiency).
	CapacityFill float64
	// ViaCost is the routing cost of one via step, in gcell-lengths
	// (default 1.0).
	ViaCost float64
	// Grid, when non-nil, overrides the gcell grid (it must tile the
	// die exactly). Used when composing tile arrays so routes can be
	// translated between aligned grids.
	Grid *geom.Grid
	// Workers sets the routing worker count: 0 (default) uses every
	// CPU (GOMAXPROCS), 1 runs the plain serial reference path, and
	// n > 1 routes spatially disjoint net batches on n goroutines.
	// Results are bit-identical at any setting.
	Workers int
	// Sharded enables the region-sharded fast engine (the CLI's
	// -fast-route): the gcell grid splits into a fixed region grid and
	// region-local nets route concurrently without the batch engine's
	// per-round serial planning and ordered commits (see shard.go).
	// Results stay deterministic at any Workers setting but are NOT
	// bit-identical to the default engine, so the flag is part of the
	// result-defining configuration (it enters the stage-cache key).
	Sharded bool
	// ShardRegions is the fixed region count of the sharded engine
	// (default 8). A configuration constant, never derived from
	// Workers — that independence is what keeps sharded results
	// identical across -j settings.
	ShardRegions int
	// ShardVerify re-routes the design with the serial reference after
	// a sharded run and fails if wirelength or overflow drift past the
	// documented bounds (shardVerifyWLTol, shardVerifyOverflowFrac).
	// Roughly doubles routing cost; a validation mode, not a default.
	ShardVerify bool

	// Obs, when non-nil, is the stage span the router hangs its
	// rip-up-iteration phase spans under and whose registry receives
	// the routing metrics. nil disables instrumentation.
	Obs *obs.Span

	// Trace, when non-nil, receives task-level execution slices —
	// batch plan/execute/commit, prep fan-outs, rip-up iterations —
	// on per-worker tracks. nil disables tracing at the cost of one
	// pointer comparison per call site; routing results are identical
	// either way.
	Trace *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.GCellPitch <= 0 {
		o.GCellPitch = 15
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 6
	}
	if o.CapacityFill <= 0 {
		o.CapacityFill = 0.65
	}
	if o.ViaCost <= 0 {
		o.ViaCost = 1.0
	}
	if o.ShardRegions <= 0 {
		o.ShardRegions = defaultShardRegions
	}
	return o
}

// Node is a point on the routing grid: gcell (X, Y) on layer L.
type Node struct {
	X, Y int
	L    int
}

// Seg is one straight route element on a single layer (A.L == B.L) or
// a via (A.X==B.X, A.Y==B.Y, |A.L−B.L|==1).
type Seg struct {
	A, B Node
}

// IsVia reports whether the segment is a layer change.
func (s Seg) IsVia() bool { return s.A.L != s.B.L }

// NetRoute is the routing result of one net.
type NetRoute struct {
	Net      *netlist.Net
	Segments []Seg
	// PinNode maps pin index (net.Pins() order) to its grid node at
	// the pin's layer.
	PinNode []Node

	WL   float64 // routed wirelength, µm
	Vias int
	F2F  int // F2F bump crossings
}

// Result is the design-level routing outcome.
type Result struct {
	Routes []*NetRoute // indexed by net ID (nil for clock/unrouted)

	WL         float64   // total routed wirelength, µm
	WLPerLayer []float64 // µm per layer
	Vias       int
	F2FBumps   int
	Overflow   int // gcell-layers above capacity after negotiation
	OverflowWL float64
}

// DB is the routing database: capacities and usage per gcell per layer.
type DB struct {
	Grid geom.Grid
	Beol *tech.BEOL
	opt  Options

	layerIdx map[string]int

	cap   []int32 // per layer*bins, tracks available
	usage []int32
	hist  []float32 // negotiation history cost

	f2fIdx  int // via index of the F2F boundary, -1 if none
	f2fCap  []int32
	f2fUse  []int32
	gcellWL float64 // µm per grid step (average of DX, DY)

	eco       *mazeScratch // single-thread maze scratch (ECO routes, tests)
	tiles     *tileMap     // batch-planner conflict raster, reused per round
	planRects [][]tileRect // per-task footprint buffers, reused per round
	shards    *shardPlan   // region decomposition of the sharded router
}

// NewDB builds the routing database for a die, BEOL and blockage set.
func NewDB(die geom.Rect, beol *tech.BEOL, blk []floorplan.RouteBlockage, opt Options) *DB {
	opt = opt.withDefaults()
	g := geom.NewGrid(die, opt.GCellPitch)
	if opt.Grid != nil {
		g = *opt.Grid
	}
	nl := beol.NumLayers()
	db := &DB{
		Grid:     g,
		Beol:     beol,
		opt:      opt,
		layerIdx: make(map[string]int, nl),
		cap:      make([]int32, nl*g.Bins()),
		usage:    make([]int32, nl*g.Bins()),
		hist:     make([]float32, nl*g.Bins()),
		f2fIdx:   beol.F2FViaIndex(),
		gcellWL:  (g.DX + g.DY) / 2,
	}
	for i, l := range beol.Layers {
		db.layerIdx[l.Name] = i
		// Tracks crossing a gcell in the preferred direction.
		span := g.DY
		if l.Dir == tech.DirVertical {
			span = g.DX
		}
		tracks := int32(span / l.Pitch * opt.CapacityFill)
		if tracks < 1 {
			tracks = 1
		}
		base := i * g.Bins()
		for b := 0; b < g.Bins(); b++ {
			db.cap[base+b] = tracks
		}
	}
	// Obstructions knock capacity out.
	for _, rb := range blk {
		li, ok := db.layerIdx[rb.Layer]
		if !ok {
			continue
		}
		x0, y0, x1, y1, ok := g.CoverRange(rb.Rect)
		if !ok {
			continue
		}
		base := li * g.Bins()
		for iy := y0; iy <= y1; iy++ {
			for ix := x0; ix <= x1; ix++ {
				bin := g.BinRect(ix, iy)
				frac := rb.Rect.Intersect(bin).Area() / bin.Area()
				i := base + g.Index(ix, iy)
				left := float64(db.cap[i]) * (1 - frac)
				db.cap[i] = int32(left)
			}
		}
	}
	// F2F bump capacity per gcell from the bump pitch.
	if db.f2fIdx >= 0 {
		p := beol.Vias[db.f2fIdx].Pitch
		per := int32(g.DX / p * g.DY / p * 0.5)
		if per < 1 {
			per = 1
		}
		db.f2fCap = make([]int32, g.Bins())
		db.f2fUse = make([]int32, g.Bins())
		for b := range db.f2fCap {
			db.f2fCap[b] = per
		}
	}
	return db
}

func (db *DB) idx(n Node) int { return n.L*db.Grid.Bins() + db.Grid.Index(n.X, n.Y) }

// LayerIndex resolves a layer name (-1 when absent).
func (db *DB) LayerIndex(name string) int {
	if i, ok := db.layerIdx[name]; ok {
		return i
	}
	return -1
}

// congestionCost is the PathFinder-style cost of using one more track
// in a gcell-layer.
func (db *DB) congestionCost(i int) float64 {
	c := float64(db.cap[i])
	if c <= 0 {
		return 64 + float64(db.hist[i])
	}
	u := float64(db.usage[i])
	over := (u + 1) / c
	if over <= 0.8 {
		return float64(db.hist[i]) * 0.1
	}
	// Quadratic penalty past 80 % fill, steep past capacity.
	pen := (over - 0.8) * (over - 0.8) * 8
	if u+1 > c {
		pen += 16
	}
	return pen + float64(db.hist[i])
}

// addUsage commits or releases (delta ±1) a route's occupancy.
func (db *DB) addUsage(r *NetRoute, delta int32) {
	for _, s := range r.Segments {
		if s.IsVia() {
			lo := s.A.L
			if s.B.L < lo {
				lo = s.B.L
			}
			if db.f2fIdx >= 0 && lo == db.f2fIdx {
				db.f2fUse[db.Grid.Index(s.A.X, s.A.Y)] += delta
			}
			continue
		}
		// Walk the gcells under the straight segment.
		forEachStep(s, func(n Node) {
			db.usage[db.idx(n)] += delta
		})
	}
}

// forEachStep visits every gcell of a straight segment, inclusive of
// both ends.
func forEachStep(s Seg, f func(Node)) {
	dx := sign(s.B.X - s.A.X)
	dy := sign(s.B.Y - s.A.Y)
	n := s.A
	for {
		f(n)
		if n.X == s.B.X && n.Y == s.B.Y {
			return
		}
		n.X += dx
		n.Y += dy
	}
}

func sign(v int) int {
	if v > 0 {
		return 1
	}
	if v < 0 {
		return -1
	}
	return 0
}

// segLen returns the µm length of a straight segment.
func (db *DB) segLen(s Seg) float64 {
	return float64(geom.AbsInt(s.B.X-s.A.X))*db.Grid.DX +
		float64(geom.AbsInt(s.B.Y-s.A.Y))*db.Grid.DY
}

// PinNode maps a pin reference to its routing-grid node.
func (db *DB) PinNode(p netlist.PinRef) (Node, error) {
	li := db.LayerIndex(p.Layer())
	if li < 0 {
		return Node{}, fmt.Errorf("route: pin %s on unknown layer %q", p, p.Layer())
	}
	ix, iy := db.Grid.Locate(p.Loc())
	return Node{X: ix, Y: iy, L: li}, nil
}

// hvPairs enumerates (H-layer, V-layer) adjacent pairs usable by the
// pattern router, lowest first.
func (db *DB) hvPairs() [][2]int {
	var out [][2]int
	ls := db.Beol.Layers
	for i := 0; i+1 < len(ls); i++ {
		a, b := i, i+1
		if ls[a].Dir == tech.DirHorizontal && ls[b].Dir == tech.DirVertical {
			out = append(out, [2]int{a, b})
		} else if ls[a].Dir == tech.DirVertical && ls[b].Dir == tech.DirHorizontal {
			out = append(out, [2]int{b, a})
		}
	}
	return out
}

// Overflow recomputes the current overflow (gcell-layers over
// capacity).
func (db *DB) Overflow() int {
	over := 0
	for i := range db.usage {
		if db.usage[i] > db.cap[i] {
			over++
		}
	}
	if db.f2fCap != nil {
		for i := range db.f2fUse {
			if db.f2fUse[i] > db.f2fCap[i] {
				over++
			}
		}
	}
	return over
}

// bumpHistory raises history cost on currently overflowed nodes.
func (db *DB) bumpHistory() {
	for i := range db.usage {
		if db.usage[i] > db.cap[i] {
			db.hist[i] += 2
		}
	}
}

// UsedObstructions condenses the committed routing into per-layer
// blockage rectangles: every gcell with nonzero usage (or with its
// capacity fully knocked out by an input obstruction) is covered.
// Per row, consecutive used gcells merge into runs; vertically
// identical runs merge into taller rects. This is what hardening a
// block exports as the abstract's routing obstructions — a parent flow
// then blocks only the layers and regions the block really uses,
// instead of treating it as an opaque full-stack blockage. Output
// order is deterministic (layer index, then scan order).
func (db *DB) UsedObstructions() []floorplan.RouteBlockage {
	type run struct {
		x0, x1, y0, y1 int
	}
	var out []floorplan.RouteBlockage
	g := db.Grid
	for l := 0; l < db.Beol.NumLayers(); l++ {
		base := l * g.Bins()
		used := func(ix, iy int) bool {
			i := base + g.Index(ix, iy)
			return db.usage[i] > 0 || db.cap[i] == 0
		}
		var open []run // runs still growing upward, sorted by x0
		for iy := 0; iy < g.NY; iy++ {
			var rows []run
			for ix := 0; ix < g.NX; ix++ {
				if !used(ix, iy) {
					continue
				}
				x1 := ix
				for x1+1 < g.NX && used(x1+1, iy) {
					x1++
				}
				rows = append(rows, run{x0: ix, x1: x1, y0: iy, y1: iy})
				ix = x1
			}
			// Extend an open run only by an identical row run; emit the
			// rest.
			var next []run
			for _, o := range open {
				ext := false
				for i := range rows {
					if rows[i].x0 == o.x0 && rows[i].x1 == o.x1 && rows[i].y0 == o.y1+1 {
						o.y1 = rows[i].y0
						rows[i].x1 = -1 // consumed
						next = append(next, o)
						ext = true
						break
					}
				}
				if !ext {
					out = append(out, db.runBlockage(l, o.x0, o.y0, o.x1, o.y1))
				}
			}
			for _, r := range rows {
				if r.x1 >= 0 {
					next = append(next, r)
				}
			}
			open = next
		}
		for _, o := range open {
			out = append(out, db.runBlockage(l, o.x0, o.y0, o.x1, o.y1))
		}
	}
	return out
}

func (db *DB) runBlockage(l, x0, y0, x1, y1 int) floorplan.RouteBlockage {
	a := db.Grid.BinRect(x0, y0)
	b := db.Grid.BinRect(x1, y1)
	return floorplan.RouteBlockage{
		Layer: db.Beol.Layers[l].Name,
		Rect:  a.Union(b),
	}
}

// UsageSnapshot returns a per-layer utilization summary (mean fill of
// used gcells) for reports.
func (db *DB) UsageSnapshot() []float64 {
	nl := db.Beol.NumLayers()
	out := make([]float64, nl)
	for l := 0; l < nl; l++ {
		var u, c float64
		base := l * db.Grid.Bins()
		for b := 0; b < db.Grid.Bins(); b++ {
			u += float64(db.usage[base+b])
			c += float64(db.cap[base+b])
		}
		if c > 0 {
			out[l] = u / c
		}
	}
	return out
}
