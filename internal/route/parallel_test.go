package route

import (
	"testing"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/tech"
)

// placedSmallTile generates, floorplans and places the small-cache
// piton tile — the shared fixture of the worker-determinism test.
func placedSmallTile(t *testing.T) (*netlist.Design, geom.Rect, []floorplan.RouteBlockage) {
	t.Helper()
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		t.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)
	if _, err := place.Place(d, fp, 1.2, place.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return d, sz.Die2D, fp.RouteBlk
}

// TestRouteWorkerDeterminism pins the parallel engine's core contract:
// routing the same placed tile with the serial reference (Workers 1),
// a forced batch schedule (Workers 4) and the default (Workers 0)
// produces byte-identical results — every usage counter, every
// segment of every net, every aggregate.
func TestRouteWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("tile routing in -short mode")
	}
	d, die, blk := placedSmallTile(t)
	b6, _ := tech.NewBEOL28("logic", 6)

	type run struct {
		workers int
		db      *DB
		res     *Result
	}
	var runs []run
	for _, w := range []int{1, 4, 0} {
		db := NewDB(die, b6, blk, Options{Workers: w})
		res, err := RouteDesign(d, db)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		runs = append(runs, run{w, db, res})
	}

	ref := runs[0]
	for _, r := range runs[1:] {
		if r.res.WL != ref.res.WL || r.res.Vias != ref.res.Vias ||
			r.res.F2FBumps != ref.res.F2FBumps || r.res.Overflow != ref.res.Overflow {
			t.Fatalf("workers=%d aggregates diverged: WL %v/%v vias %d/%d f2f %d/%d overflow %d/%d",
				r.workers, r.res.WL, ref.res.WL, r.res.Vias, ref.res.Vias,
				r.res.F2FBumps, ref.res.F2FBumps, r.res.Overflow, ref.res.Overflow)
		}
		for l, wl := range ref.res.WLPerLayer {
			if r.res.WLPerLayer[l] != wl {
				t.Fatalf("workers=%d layer %d WL %v, serial %v", r.workers, l, r.res.WLPerLayer[l], wl)
			}
		}
		for i := range ref.db.usage {
			if r.db.usage[i] != ref.db.usage[i] {
				t.Fatalf("workers=%d usage[%d] = %d, serial %d", r.workers, i, r.db.usage[i], ref.db.usage[i])
			}
		}
		for i := range ref.db.f2fUse {
			if r.db.f2fUse[i] != ref.db.f2fUse[i] {
				t.Fatalf("workers=%d f2fUse[%d] = %d, serial %d", r.workers, i, r.db.f2fUse[i], ref.db.f2fUse[i])
			}
		}
		for id, rr := range ref.res.Routes {
			pr := r.res.Routes[id]
			if (rr == nil) != (pr == nil) {
				t.Fatalf("workers=%d net %d presence diverged", r.workers, id)
			}
			if rr == nil {
				continue
			}
			if len(pr.Segments) != len(rr.Segments) {
				t.Fatalf("workers=%d net %d has %d segments, serial %d",
					r.workers, id, len(pr.Segments), len(rr.Segments))
			}
			for si := range rr.Segments {
				if pr.Segments[si] != rr.Segments[si] {
					t.Fatalf("workers=%d net %d segment %d = %v, serial %v",
						r.workers, id, si, pr.Segments[si], rr.Segments[si])
				}
			}
		}
	}
}

// TestMazeAllocs bounds the steady-state allocation count of one
// two-pin maze connection. The pre-window implementation allocated
// whole-grid dist/prev arrays plus one boxed container/heap item per
// push — hundreds of allocations per connection. With the reusable
// scratch only the returned segment slice survives.
func TestMazeAllocs(t *testing.T) {
	db := db6(t, geom.R(0, 0, 200, 200), nil)
	a, b := Node{0, 0, 0}, Node{10, 10, 3}
	if _, err := db.mazeRoute(a, b); err != nil {
		t.Fatal(err) // warm-up sizes the scratch
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := db.mazeRoute(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Fatalf("maze route allocates %.0f objects per connection, want ≤ 10", allocs)
	}
}

// TestScratchReuse verifies the scratch actually gets reused: the
// first search grows the backing arrays (a miss), repeats over the
// same window are served from the existing allocation (hits).
func TestScratchReuse(t *testing.T) {
	db := db6(t, geom.R(0, 0, 200, 200), nil)
	a, b := Node{0, 0, 0}, Node{10, 10, 3}
	for i := 0; i < 3; i++ {
		if _, err := db.mazeRoute(a, b); err != nil {
			t.Fatal(err)
		}
	}
	s := db.scratch()
	if s.misses == 0 {
		t.Fatal("first search should have grown the scratch (miss)")
	}
	if s.hits < 2 {
		t.Fatalf("repeat searches should reuse the scratch: hits = %d", s.hits)
	}
}

// TestPlanBatchOrdering checks the planner's two structural
// invariants on a synthetic conflict chain: members of one batch are
// pairwise disjoint, and a net never overtakes an earlier conflicting
// net (the deferred set keeps serial order).
func TestPlanBatchOrdering(t *testing.T) {
	db := db6(t, geom.R(0, 0, 400, 400), nil)
	m := newTileMap(db.Grid)
	// Ten tasks on one horizontal line: every footprint overlaps its
	// neighbours, so each round batches alternating tasks at most.
	var tasks []*netTask
	for i := 0; i < 10; i++ {
		r := &NetRoute{PinNode: []Node{{X: i * 3, Y: 5, L: 0}, {X: i*3 + 6, Y: 5, L: 0}}}
		tasks = append(tasks, &netTask{route: r, edges: [][2]int{{0, 1}}})
	}
	batch, deferred := db.planBatch(tasks, false, m, 1, nil)
	if len(batch) == 0 {
		t.Fatal("first task must always batch (fresh epoch)")
	}
	if len(batch)+len(deferred) != len(tasks) {
		t.Fatalf("planner lost tasks: %d + %d != %d", len(batch), len(deferred), len(tasks))
	}
	// Deferred keeps input order.
	pos := map[*netTask]int{}
	for i, tk := range tasks {
		pos[tk] = i
	}
	for i := 1; i < len(deferred); i++ {
		if pos[deferred[i-1]] > pos[deferred[i]] {
			t.Fatal("deferred tasks reordered")
		}
	}
	// Overlapping neighbours never share a batch.
	inBatch := map[*netTask]bool{}
	for _, tk := range batch {
		inBatch[tk] = true
	}
	for i := 1; i < len(tasks); i++ {
		if inBatch[tasks[i-1]] && inBatch[tasks[i]] {
			t.Fatalf("overlapping tasks %d and %d batched together", i-1, i)
		}
	}
}
