package flows

import (
	"context"
	"fmt"
	"time"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/piton"
	"macro3d/internal/sta"
	"macro3d/internal/stash"
	"macro3d/internal/tech"
)

// Hardening flow kinds accepted by Harden.
const (
	HardenMacro3D = "macro3d" // sub-block signed off with the paper's 3D flow
	Harden2D      = "2d"      // sub-block signed off with the 2D baseline
)

// HardenResult is the outcome of hardening a sub-block: the abstract
// master ready for re-instantiation, plus the sub-block's full
// implementation when it was actually run (nil on a warm cache hit —
// the whole point of the cache is not having it).
type HardenResult struct {
	// Abstract is the hardened macro: boundary pins with entry caps
	// and timing arcs, per-layer routing obstructions, and the
	// AbstractInfo provenance record. Local frame origin (0,0).
	Abstract *cell.Cell

	// Tile is a fresh (un-implemented) handle of the hardened
	// benchmark, carrying the netlist-level facts composition needs:
	// port directions, abutment groups, half-cycle flags, clock port.
	Tile *piton.Tile

	// PPA and State hold the sub-block signoff when the flow ran;
	// both are nil when the abstract came out of the cache.
	PPA   *PPA
	State *State

	CacheHit bool
	Elapsed  time.Duration
}

// hardenCounter mirrors the stash's harden hit/miss tallies into the
// run's metric registry, so the Prometheus and JSON exporters surface
// them alongside the stage-cache counters (the CLI summary and
// /stashz read the store's own Stats directly).
func hardenCounter(cfg Config, hit bool) {
	reg := cfg.Obs.Registry()
	if reg == nil {
		return
	}
	if hit {
		reg.Counter("stash_harden_hits_total",
			"Hardened-abstract cache hits (abstract restored instead of hardening).").Inc()
	} else {
		reg.Counter("stash_harden_misses_total",
			"Hardened-abstract cache misses (the sub-block flow ran and stored its abstract).").Inc()
	}
}

// Harden runs a sub-block flow to signoff and condenses the result
// into an abstract master (LEF-style boundary view: pins, per-layer
// obstructions, boundary timing model) that a parent flow instantiates
// as an opaque macro. With cfg.Cache set, the abstract is
// content-addressed by everything the sub-block implementation depends
// on, so sweeps and concurrent serve tenants harden each distinct
// configuration exactly once.
func Harden(cfg Config, flow string) (*HardenResult, error) {
	return HardenCtx(context.Background(), cfg, flow)
}

// HardenCtx is Harden with run cancellation.
func HardenCtx(ctx context.Context, cfg Config, flow string) (*HardenResult, error) {
	cfg = cfg.withDefaults()
	if flow == "" {
		flow = HardenMacro3D
	}
	start := time.Now()

	t, err := tech.New28(cfg.LogicMetals)
	if err != nil {
		return nil, err
	}

	var key stash.Key
	useCache := cfg.cacheEnabled()
	if useCache {
		key, err = hardenKey(cfg, flow, t)
		if err != nil {
			return nil, err
		}
		if b, ok := cfg.Cache.Get(key); ok {
			abs, err := decodeAbstract(b)
			if err == nil {
				cfg.Cache.NoteHarden(true)
				hardenCounter(cfg, true)
				tile, err := cfg.generate()
				if err != nil {
					return nil, err
				}
				return &HardenResult{
					Abstract: abs, Tile: tile,
					CacheHit: true, Elapsed: time.Since(start),
				}, nil
			}
			// A snapshot that frames correctly but no longer decodes
			// (codec drift) reads as a miss.
			cfg.Cache.Evict(key)
		}
		cfg.Cache.NoteHarden(false)
		hardenCounter(cfg, false)
	}

	var (
		ppa *PPA
		st  *State
	)
	switch flow {
	case HardenMacro3D:
		ppa, st, _, err = RunMacro3DCtx(ctx, cfg)
	case Harden2D:
		ppa, st, err = Run2DCtx(ctx, cfg)
	default:
		return nil, fmt.Errorf("harden: unknown flow %q (want %q or %q)", flow, HardenMacro3D, Harden2D)
	}
	if err != nil {
		return nil, err
	}

	abs, err := buildAbstract(st, ppa, t)
	if err != nil {
		return nil, fmt.Errorf("harden %s: %w", st.Design.Name, err)
	}
	if useCache {
		if err := cfg.Cache.Put(key, encodeAbstract(abs)); err != nil {
			return nil, err
		}
	}
	return &HardenResult{
		Abstract: abs, Tile: st.Tile, PPA: ppa, State: st,
		Elapsed: time.Since(start),
	}, nil
}

// hardenKey content-addresses a hardened abstract: the root material
// of the sub-block run (technology fingerprint, benchmark config,
// seed) under a harden-specific flow kind, chained with the inputs the
// signoff additionally depends on (3D stack, optimization target).
func hardenKey(cfg Config, flow string, t *tech.Tech) (stash.Key, error) {
	rk, err := rootKey("harden:"+flow, cfg)
	if err != nil {
		return stash.Key{}, err
	}
	e := stash.NewEnc()
	e.F64(cfg.TargetPeriod)
	e.Blob(stackMaterial(cfg, t))
	return rk.Derive("harden", e.Bytes()), nil
}

// buildAbstract condenses a signed-off implementation into its
// abstract master. The local frame is the die translated to origin
// (0,0); pins keep the signoff port locations so abutment composition
// reproduces the §V-1 alignment invariant exactly.
func buildAbstract(st *State, ppa *PPA, t *tech.Tech) (*cell.Cell, error) {
	d := st.Design
	tile := st.Tile
	origin := st.Die.LL()
	slow := t.CornerScaleFor(tech.CornerSlow)

	arcs, err := sta.BoundaryArcs(d, st.ExSlow, sta.Options{Corner: slow, Clock: st.Tree})
	if err != nil {
		return nil, fmt.Errorf("boundary arcs: %w", err)
	}

	// Entry cap of an input pin is everything the parent drives
	// through it: the port's internal net, wire plus sink pins, at
	// the signoff extraction.
	inNet := map[int]int{}  // port ID → net ID driven by the port
	outNet := map[int]int{} // port ID → net ID sunk by the port
	for _, n := range d.Nets {
		if n.Clock {
			continue
		}
		if n.Driver.IsPort() {
			inNet[n.Driver.Port.ID] = n.ID
		}
		for _, s := range n.Sinks {
			if s.IsPort() {
				outNet[s.Port.ID] = n.ID
			}
		}
	}

	abs := &cell.Cell{
		Name:   d.Name + "_abs",
		Kind:   cell.KindMacro,
		Width:  st.Die.W(),
		Height: st.Die.H(),
		// The block's standing power; its dynamic energy lives in
		// AbstractInfo and is accounted per cycle by the parent flow.
		Leakage: ppa.LeakageUW * 1000, // µW → nW
		Abstract: &cell.AbstractInfo{
			SourceFlow:       ppa.Flow,
			SourceConfig:     ppa.Config,
			MinPeriodPs:      ppa.MinPeriodPs,
			EnergyPerCycleFJ: ppa.EmeanFJ,
			LeakageUW:        ppa.LeakageUW,
			F2FBumps:         ppa.F2FBumps,
		},
	}

	clkCap := clockEntryCap(d.Lib)
	for _, p := range d.Ports {
		pin := cell.Pin{
			Name:   p.Name,
			Dir:    p.Dir,
			Offset: p.Loc.Sub(origin),
			Layer:  p.Layer,
			Clock:  p.Name == tile.ClockPort,
		}
		arc := arcs[p.Name]
		switch {
		case pin.Clock:
			pin.Cap = clkCap
		case p.Dir == cell.DirIn:
			if id, ok := inNet[p.ID]; ok && st.ExSlow.Nets[id] != nil {
				pin.Cap = st.ExSlow.Nets[id].CTotal()
			}
			pin.Setup = arc.SetupPs
		default:
			pin.ClkQ = arc.ClkQPs
			if id, ok := outNet[p.ID]; ok {
				n := d.Nets[id]
				if !n.Driver.IsPort() {
					if r := n.Driver.Inst.Master.DriveRes; r > abs.DriveRes {
						abs.DriveRes = r
					}
				}
			}
		}
		abs.Pins = append(abs.Pins, pin)
	}
	if abs.ClockPin() == nil {
		return nil, fmt.Errorf("abstract %s has no clock pin", abs.Name)
	}

	// Per-layer obstructions: every gcell the implementation actually
	// uses (or fully blocks), per layer — including the _MD macro-die
	// layers of a Macro-3D-hardened block — so the parent router sees
	// exactly the residual capacity over the instance.
	for _, b := range st.DB.UsedObstructions() {
		abs.Obstructions = append(abs.Obstructions, cell.Obstruction{
			Layer: b.Layer,
			Rect:  b.Rect.Translate(geom.Point{}.Sub(origin)),
		})
	}
	return abs, nil
}

// clockEntryCap is the load a parent clock tree sees at the abstract's
// clock pin: the input of the hardened block's root clock buffer (the
// biggest buffer in its library; the internal tree behind it is
// already folded into the boundary arcs via the mean-latency
// reference).
func clockEntryCap(lib *cell.Library) float64 {
	best := 2.0
	drive := -1
	for _, c := range lib.Cells() {
		if c.Kind != cell.KindBuf || c.Drive <= drive {
			continue
		}
		for i := range c.Pins {
			if c.Pins[i].Dir == cell.DirIn {
				best, drive = c.Pins[i].Cap, c.Drive
				break
			}
		}
	}
	return best
}

// Abstract snapshot codec (cache payload). Purely self-describing
// numbers and strings; decode validates fully before returning.

func encodeAbstract(c *cell.Cell) []byte {
	e := stash.NewEnc()
	e.Str(c.Name)
	e.F64(c.Width)
	e.F64(c.Height)
	e.F64(c.DriveRes)
	e.F64(c.Leakage)
	e.Int(len(c.Pins))
	for i := range c.Pins {
		p := &c.Pins[i]
		e.Str(p.Name)
		e.U8(uint8(p.Dir))
		e.F64(p.Cap)
		e.F64(p.Offset.X)
		e.F64(p.Offset.Y)
		e.Str(p.Layer)
		e.Bool(p.Clock)
		e.F64(p.Setup)
		e.F64(p.ClkQ)
	}
	e.Int(len(c.Obstructions))
	for _, o := range c.Obstructions {
		e.Str(o.Layer)
		e.F64(o.Rect.Lx)
		e.F64(o.Rect.Ly)
		e.F64(o.Rect.Ux)
		e.F64(o.Rect.Uy)
	}
	a := c.Abstract
	e.Str(a.SourceFlow)
	e.Str(a.SourceConfig)
	e.F64(a.MinPeriodPs)
	e.F64(a.EnergyPerCycleFJ)
	e.F64(a.LeakageUW)
	e.Int(a.F2FBumps)
	return e.Bytes()
}

func decodeAbstract(b []byte) (*cell.Cell, error) {
	d := stash.NewDec(b)
	c := &cell.Cell{Kind: cell.KindMacro}
	c.Name = d.Str()
	c.Width = d.F64()
	c.Height = d.F64()
	c.DriveRes = d.F64()
	c.Leakage = d.F64()
	nPins := d.Int()
	if nPins < 0 || nPins > 1<<20 {
		return nil, fmt.Errorf("harden: snapshot pin count %d", nPins)
	}
	for i := 0; i < nPins; i++ {
		var p cell.Pin
		p.Name = d.Str()
		p.Dir = cell.PinDir(d.U8())
		p.Cap = d.F64()
		p.Offset.X = d.F64()
		p.Offset.Y = d.F64()
		p.Layer = d.Str()
		p.Clock = d.Bool()
		p.Setup = d.F64()
		p.ClkQ = d.F64()
		c.Pins = append(c.Pins, p)
	}
	nObs := d.Int()
	if nObs < 0 || nObs > 1<<24 {
		return nil, fmt.Errorf("harden: snapshot obstruction count %d", nObs)
	}
	for i := 0; i < nObs; i++ {
		var o cell.Obstruction
		o.Layer = d.Str()
		o.Rect.Lx = d.F64()
		o.Rect.Ly = d.F64()
		o.Rect.Ux = d.F64()
		o.Rect.Uy = d.F64()
		c.Obstructions = append(c.Obstructions, o)
	}
	a := &cell.AbstractInfo{}
	a.SourceFlow = d.Str()
	a.SourceConfig = d.Str()
	a.MinPeriodPs = d.F64()
	a.EnergyPerCycleFJ = d.F64()
	a.LeakageUW = d.F64()
	a.F2FBumps = d.Int()
	c.Abstract = a
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	if c.Name == "" || c.Width <= 0 || c.Height <= 0 || len(c.Pins) == 0 {
		return nil, fmt.Errorf("harden: snapshot decodes to degenerate abstract")
	}
	return c, nil
}
