package flows

import (
	"context"
	"fmt"

	"macro3d/internal/core"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/opt"
	"macro3d/internal/partition"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

// RunS2D executes the Shrunk-2D baseline [5]: a pseudo design with
// cells shrunk to 50 % area is placed and optimized in the 3D
// footprint against *partial* macro blockages and a single-die BEOL;
// the sizing and locations are then transferred to the real design,
// which is tier-partitioned, overlap-legalized against the real macro
// extents, and rerouted on the true combined stack with optimization
// frozen — the sequence whose compounding errors the paper documents.
//
// balanced selects the BF S2D variant: macros distributed over both
// dies with maximal z-overlap, turning partial blockages into full
// ones (S2D's best case, at the cost of MoL's manufacturing
// advantages).
func RunS2D(cfg Config, balanced bool) (*PPA, *State, error) {
	return RunS2DCtx(context.Background(), cfg, balanced)
}

// RunS2DCtx is RunS2D honouring cancellation and per-stage deadlines
// at stage boundaries.
func RunS2DCtx(ctx context.Context, cfg Config, balanced bool) (*PPA, *State, error) {
	cfg = cfg.withDefaults()
	style := floorplan.StyleMoL
	name := "S2D"
	if balanced {
		style = floorplan.StyleBalanced
		name = "BF S2D"
	}
	stP := &State{}
	r := newRunner(ctx, name, cfg, stP)

	var t *tech.Tech
	var realTile *piton.Tile
	var dReal *netlist.Design
	var sz floorplan.Sizing
	var die geom.Rect
	if err := r.stage(StageGenerate, func() error {
		if cfg.Generator != nil {
			return fmt.Errorf("flows: custom generators are only supported by Run2D/RunMacro3D")
		}
		var err error
		if t, err = tech.New28(cfg.LogicMetals); err != nil {
			return err
		}
		// Real design determines footprints and macro floorplan.
		if realTile, err = piton.Generate(cfg.Piton); err != nil {
			return err
		}
		dReal = realTile.Design
		return nil
	}); err != nil {
		return nil, stP, err
	}

	if err := r.stage(StageFloorplan, func() error {
		var err error
		sz, err = floorplan.SizeDesign(dReal, cfg.Util, 1.0, t.RowHeight)
		if err != nil {
			return err
		}
		die = sz.Die3D
		if _, _, err := floorplan.PlaceMacros(dReal, die, style); err != nil {
			return err
		}
		floorplan.AssignPorts(realTile, die)
		return nil
	}); err != nil {
		return nil, stP, err
	}

	// ---- Phase A: the pseudo (shrunk) design. ----
	// The whole pseudo P&R plus the transfer is one checkpoint: its
	// only effect phase B can see is the transferred location, placed
	// flag and drive choice of each real standard cell.
	var dP *netlist.Design
	var fpP *floorplan.Floorplan
	pseudoBody := func() error {
		if err := r.stage("pseudo-"+StageFloorplan, func() error {
			pcfg := cfg.Piton
			pcfg.TargetLogicArea *= 0.5 // the 50 % area shrink
			pseudoTile, err := piton.Generate(pcfg)
			if err != nil {
				return err
			}
			dP = pseudoTile.Design

			// Pseudo macros sit at the real floorplan locations, pins in
			// the single-die BEOL (the S2D inaccuracy: the final pins live
			// in the other die's metal).
			var logicRects, macroRects []geom.Rect
			for _, m := range dReal.Macros() {
				pm := dP.Instance(m.Name)
				if pm == nil {
					return fmt.Errorf("s2d: pseudo design lacks macro %s", m.Name)
				}
				pm.Loc = m.Loc
				pm.Fixed, pm.Placed = true, true
				pm.Die = netlist.LogicDie // single-die view
				if m.Die == netlist.LogicDie {
					logicRects = append(logicRects, m.Bounds())
				} else {
					macroRects = append(macroRects, m.Bounds())
				}
			}
			floorplan.AssignPorts(pseudoTile, die)

			// Partial blockages rasterized at the coarse resolution.
			pbm := floorplan.NewPartialBlockageMap(die, cfg.BlockageResolution, logicRects, macroRects)
			fpP = &floorplan.Floorplan{Die: die, PlaceBlk: pbm.Blockages()}
			// Routing obstructions only where a macro occupies *this* die
			// in the pseudo single-die view (logic-die macros).
			for _, m := range dReal.Macros() {
				if m.Die != netlist.LogicDie {
					continue
				}
				for _, o := range m.Master.Obstructions {
					fpP.RouteBlk = append(fpP.RouteBlk, floorplan.RouteBlockage{
						Layer: o.Layer, Rect: o.Rect.Translate(m.Loc),
					})
				}
			}

			// Shrunk interconnect geometry (50 % dimensions → 1/√2 pitch);
			// per-µm parasitics unchanged — S2D's estimation model.
			shrunkBeol := tech.ShrinkGeometry(t.Logic, 0.7071)
			stP.Design, stP.Tile, stP.Die = dP, pseudoTile, die
			stP.FP, stP.Beol, stP.Sizing = fpP, shrunkBeol, sz
			return nil
		}); err != nil {
			return err
		}

		if err := r.seededStage("pseudo-"+StagePlace, cfg.Seed+3, func(seed uint64) error {
			_, err := place.Place(dP, fpP, t.RowHeight, place.Options{Seed: seed, Obs: r.obs(), Workers: cfg.Workers, Fast: cfg.FastRoute, Analytic: cfg.AnalyticPlace, Trace: cfg.Trace})
			return err
		}); err != nil {
			return err
		}

		if err := r.stage("pseudo-"+StageRoute, func() error {
			buildClock(stP)
			stP.DB = route.NewDB(die, stP.Beol, fpP.RouteBlk, route.Options{Obs: r.obs(), Workers: cfg.Workers, Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})
			var err error
			stP.Routes, err = route.RouteDesign(dP, stP.DB)
			return err
		}); err != nil {
			return err
		}

		// Optimize against the pseudo parasitics (sizing only — buffer
		// replication across the transfer is not part of the reference
		// flows either).
		if err := r.stage("pseudo-"+StageOpt, func() error {
			slow := t.CornerScaleFor(tech.CornerSlow)
			stP.ExSlow = extract.Extract(dP, stP.Routes, stP.DB, slow)
			if err := stP.ExSlow.CheckFinite(); err != nil {
				return err
			}
			stP.DDB = ddb.New(dP, stP.DB, stP.Routes, stP.ExSlow, slow)
			_, err := opt.Optimize(&opt.Context{
				Clock: stP.Tree,
				FP:    fpP, RowHeight: t.RowHeight,
				DDB: stP.DDB,
			}, sta.Options{}, opt.Options{BufferElmore: 1e12, SelfCheck: cfg.SelfCheck})
			return err
		}); err != nil {
			return err
		}

		// ---- Transfer: unshrink, keep (x, y) and sizing. ----
		return r.stage(StageTransfer, func() error {
			return transferPseudoScaled(dP, dReal, 1)
		})
	}
	if err := r.checkpointed(pseudoCheckpoint(resolutionMaterial(cfg), dReal), pseudoBody); err != nil {
		return nil, stP, err
	}

	// ---- Phase B: partition, legalize, reroute frozen. ----
	return finish3DBaseline(r, cfg, t, realTile, die, sz, opt.Options{Frozen: true})
}

// finish3DBaseline is the shared S2D/C2D back end: tier partitioning,
// per-die overlap legalization, combined-stack reroute, frozen
// sign-off.
func finish3DBaseline(r *runner, cfg Config, t *tech.Tech, tile *piton.Tile, die geom.Rect, sz floorplan.Sizing, optCfg opt.Options) (*PPA, *State, error) {
	d := tile.Design
	st := &State{Design: d, Tile: tile, Die: die, Sizing: sz}
	r.setState(st)

	if err := r.checkpointed(placementCheckpoint(StagePartition, resolutionMaterial(cfg), d), func() error {
		return r.seededStage(StagePartition, cfg.Seed, func(seed uint64) error {
			if _, err := partition.TierPartition(d, partition.Options{Seed: seed}); err != nil {
				return err
			}
			partition.BinBalance(d, die, cfg.BlockageResolution)
			_, err := partition.LegalizeTiers(d, die, t.RowHeight)
			return err
		})
	}); err != nil {
		return nil, st, err
	}

	// Combined-stack view: edit macro-die macros; remap macro-die
	// cells' pin layers.
	var md *core.MoLDesign
	if err := r.stage(StagePrepare, func() error {
		macroBeol, err := tech.NewBEOL28("macro28", cfg.MacroDieMetals)
		if err != nil {
			return err
		}
		filler := d.Lib.MustCell("FILL_X1")
		if md, err = core.PrepareMoL(d, t.Logic, macroBeol, t.F2F, die, filler.Width, filler.Height); err != nil {
			return fmt.Errorf("%s prepare: %w", r.flow, err)
		}
		for _, c := range d.StdCells() {
			if c.Die == netlist.MacroDie {
				c.Master = core.CellForDie(c.Master, netlist.MacroDie)
			}
		}
		// Logic-die macros (BF floorplan) still obstruct the logic
		// BEOL and block placement — PrepareMoL already added those.
		st.FP, st.Beol = md.FP, md.Combined
		return nil
	}); err != nil {
		return nil, st, err
	}

	if err := r.stage(StageCTS, func() error {
		buildClock(st)
		return nil
	}); err != nil {
		return nil, st, err
	}

	buildDB := func() {
		st.DB = route.NewDB(die, md.Combined, md.FP.RouteBlk, route.Options{Obs: r.obs(), Workers: cfg.Workers, Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})
	}
	if err := r.checkpointed(routeCheckpoint(st, d, stackMaterial(cfg, t), buildDB), func() error {
		return r.stage(StageRoute, func() error {
			buildDB()
			var err error
			st.Routes, err = route.RouteDesign(d, st.DB)
			return err
		})
	}); err != nil {
		return nil, st, err
	}

	// Sign-off under the baseline's post-partition budget: frozen for
	// S2D; a limited touch-up for C2D (its "post-tier-partitioning
	// optimization"). Either way, the sizing decided against pseudo
	// parasitics is essentially locked in (paper §III).
	ppa, err := signoff(r, cfg, st, t, optCfg, 2, cfg.LogicMetals+cfg.MacroDieMetals)
	if err != nil {
		return nil, st, err
	}
	if err := verifyStage(r, cfg, st, t, md); err != nil {
		return nil, st, err
	}
	r.finish()
	ppa.Flow = r.flow
	return ppa, st, nil
}
