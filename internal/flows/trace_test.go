package flows

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"macro3d/internal/obs/trace"
	"macro3d/internal/piton"
)

// tracedRun executes the tiny Macro-3D flow with an execution tracer
// attached and returns the outcome plus the tracer.
func tracedRun(t *testing.T) (*PPA, *State, *trace.Tracer) {
	t.Helper()
	tr := trace.New()
	cfg := Config{Piton: piton.Tiny(), Seed: 7, Workers: 4, Verify: true, Trace: tr}
	ppa, st, _, err := RunMacro3D(cfg)
	if err != nil {
		t.Fatalf("traced run failed: %v", err)
	}
	return ppa, st, tr
}

// TestTraceDisabledIsByteIdentical extends the zero-overhead contract
// to the execution tracer: the same flow with tracing off (nil Tracer,
// the default) and on must produce byte-identical results — identical
// PPA in every field and the same stage sequence. The tracer records
// the timeline, it never steers it.
func TestTraceDisabledIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two tiny flows")
	}
	off, stOff, _, err := RunMacro3D(Config{Piton: piton.Tiny(), Seed: 7, Workers: 4, Verify: true})
	if err != nil {
		t.Fatalf("untraced run failed: %v", err)
	}
	on, stOn, tr := tracedRun(t)

	if !reflect.DeepEqual(*off, *on) {
		t.Errorf("PPA differs with tracing on:\noff: %#v\non:  %#v", *off, *on)
	}
	if got, want := fmt.Sprintf("%#v", *on), fmt.Sprintf("%#v", *off); got != want {
		t.Errorf("PPA rendering not byte-identical:\noff: %s\non:  %s", want, got)
	}
	var offStages, onStages []string
	for _, s := range stOff.Trace.Stages {
		offStages = append(offStages, s.Stage)
	}
	for _, s := range stOn.Trace.Stages {
		onStages = append(onStages, s.Stage)
	}
	if !reflect.DeepEqual(offStages, onStages) {
		t.Errorf("stage sequence differs:\noff: %v\non:  %v", offStages, onStages)
	}
	if len(tr.Tracks()) == 0 {
		t.Fatal("traced run recorded no tracks")
	}
}

// TestTraceChromeExportIsDeterministic is the golden-determinism
// contract at the flow level: two identical runs export byte-identical
// Chrome trace JSON once wall-clock timestamps and durations are
// normalized — same tracks in the same order, same slices in the same
// order, same step ids and args. This is what makes traces diffable
// across commits.
func TestTraceChromeExportIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two tiny flows")
	}
	export := func() []byte {
		t.Helper()
		_, _, tr := tracedRun(t)
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		return trace.NormalizeChrome(buf.Bytes())
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := max(0, i-120)
				t.Fatalf("normalized Chrome exports diverge at byte %d:\nrun1: …%s\nrun2: …%s",
					i, a[lo:min(len(a), i+120)], b[lo:min(len(b), i+120)])
			}
		}
		t.Fatalf("normalized Chrome exports differ in length: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceCoversFlowStructure checks the recorded timeline has the
// shape the analyzer and the timeline viewer rely on: a stage track
// naming every executed stage in order, per-worker engine tracks, and
// an analyzer report with route and place phases plus serial segments.
func TestTraceCoversFlowStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiny flow")
	}
	_, st, tr := tracedRun(t)

	byName := map[string][]trace.Slice{}
	for _, trk := range tr.Tracks() {
		byName[trk.Name()] = trk.Slices()
	}
	var stageNames []string
	for _, sl := range byName["stages"] {
		stageNames = append(stageNames, sl.Name)
	}
	var want []string
	for _, s := range st.Trace.Stages {
		want = append(want, s.Stage)
	}
	if !reflect.DeepEqual(stageNames, want) {
		t.Errorf("stage track does not match RunReport:\ntrack:  %v\nreport: %v", stageNames, want)
	}
	if len(byName["worker 0"]) == 0 {
		t.Error("no slices on worker 0's track")
	}

	rep := trace.Analyze(tr)
	if rep.WallNS <= 0 {
		t.Fatalf("analyzer wall clock %d", rep.WallNS)
	}
	phases := map[string]bool{}
	for _, ph := range rep.Phases {
		phases[ph.Phase] = true
		if ph.Occupancy < 0 || ph.Occupancy > 1 {
			t.Errorf("phase %s occupancy %v out of range", ph.Phase, ph.Occupancy)
		}
		if ph.SerialFrac < 0 || ph.SerialFrac > 1 {
			t.Errorf("phase %s serial fraction %v out of range", ph.Phase, ph.SerialFrac)
		}
	}
	for _, p := range []string{"route", "place"} {
		if !phases[p] {
			t.Errorf("analyzer report lacks the %s phase (got %v)", p, rep.Phases)
		}
	}
	if len(rep.Serial) == 0 {
		t.Error("analyzer found no serial segments in a full flow run")
	}
}
