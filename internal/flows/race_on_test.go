//go:build race

package flows

// raceEnabled reports whether this test binary was built with the race
// detector. The worker-equivalence test shrinks its matrix under -race
// (small cache only, two worker settings): the instrumentation slows
// the full flows by an order of magnitude, while the reduced matrix
// already drives every parallel code path under the detector.
const raceEnabled = true
