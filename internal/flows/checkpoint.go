package flows

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"

	"macro3d/internal/cell"
	"macro3d/internal/core"
	"macro3d/internal/geom"
	"macro3d/internal/lefdef"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/route"
	"macro3d/internal/stash"
	"macro3d/internal/tech"
)

// cacheEnabled reports whether this run participates in stage
// checkpointing. Custom generators produce netlists the cache key
// cannot fingerprint, and AfterStage hooks (instrumentation, fault
// injection) may mutate state a snapshot would not capture — both
// disable caching rather than risk a wrong resume.
func (c Config) cacheEnabled() bool {
	return c.Cache != nil && c.Generator == nil && c.AfterStage == nil
}

// techFingerprint hashes the technology the run builds on: the logic
// BEOL and the standard-cell library, rendered through the LEF writer
// so any change to the built-in tables invalidates the cache.
func techFingerprint(logicMetals int) ([]byte, error) {
	t, err := tech.New28(logicMetals)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := lefdef.WriteLEF(&buf, t.Logic, cell.NewStdLib28(cell.DefaultLibOptions())); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(buf.Bytes())
	return sum[:], nil
}

// rootKey derives the first key of a run's checkpoint chain from
// everything every stage depends on: codec version, flow kind,
// technology fingerprint and the full benchmark configuration.
//
// Deliberately excluded: Workers (results are bit-identical at any
// worker count — the parallel-engine equivalence guarantee, pinned by
// TestStageCacheKeyStability), Obs/Trace/SelfCheck/Verify (pure
// observation and checking — the execution tracer records timelines,
// it never changes results), StageTimeout (fails runs, never changes
// results), and
// per-stage inputs like TargetPeriod, MacroDieMetals, F2F and
// BlockageResolution, which enter the chain as key material of the
// first checkpoint that depends on them so unrelated prefixes still
// hit. The seed is included: results depend on it, so sharing entries
// across seeds would be unsound.
func rootKey(flow string, cfg Config) (stash.Key, error) {
	fp, err := techFingerprint(cfg.LogicMetals)
	if err != nil {
		return stash.Key{}, err
	}
	e := stash.NewEnc()
	e.U32(stash.Version)
	e.Str(flow)
	e.Blob(fp)
	p := cfg.Piton
	e.Str(p.Name)
	e.Int(p.L1I)
	e.Int(p.L1D)
	e.Int(p.L2)
	e.Int(p.L3)
	e.Int(p.DataWidth)
	e.Int(p.CoreStages)
	e.Int(p.CoreWidth)
	e.Int(p.CloudDepth)
	e.Int(p.NoCs)
	e.F64(p.TargetLogicArea)
	e.F64(p.MacroProcess.ClkQScale)
	e.F64(p.MacroProcess.EnergyScale)
	e.F64(p.MacroProcess.LeakageScale)
	e.U64(p.Seed)
	e.U64(cfg.Seed)
	e.Int(cfg.LogicMetals)
	e.F64(cfg.Util)
	e.Int(cfg.Retry.MaxAttempts)
	// FastRoute selects different engines with different results, so
	// fast and default runs must never share snapshots.
	// FastRouteVerify is pure checking and stays excluded.
	e.Bool(cfg.FastRoute)
	// AnalyticPlace likewise selects a different placement engine with
	// different results; analytic and default runs never alias.
	e.Bool(cfg.AnalyticPlace)
	return stash.NewKey(e.Bytes()), nil
}

// stackMaterial is the key material of the first checkpoint that
// depends on the 3D stack: the macro-die metal count and the effective
// F2F via technology, which shape the combined BEOL the prepare stage
// builds.
func stackMaterial(cfg Config, t *tech.Tech) []byte {
	f2f := t.F2F
	if cfg.F2F != nil {
		f2f = *cfg.F2F
	}
	e := stash.NewEnc()
	e.Int(cfg.MacroDieMetals)
	e.F64(f2f.Pitch)
	e.F64(f2f.Size)
	e.F64(f2f.Height)
	e.F64(f2f.R)
	e.F64(f2f.C)
	return e.Bytes()
}

// resolutionMaterial keys the S2D/C2D pseudo and partition
// checkpoints on the partial-blockage rasterization pitch.
func resolutionMaterial(cfg Config) []byte {
	e := stash.NewEnc()
	e.F64(cfg.BlockageResolution)
	return e.Bytes()
}

// checkpoint is one cacheable region of a flow: a name (also the span
// and trace label of a hit), key material covering the region's own
// inputs beyond the upstream chain, and the snapshot codec. load must
// fully validate before mutating any state — a failed load falls back
// to running the region, so a half-applied snapshot would corrupt it.
type checkpoint struct {
	name     string
	material []byte
	save     func(*stash.Enc) error
	load     func(*stash.Dec) error
}

// counter returns a named run counter, or nil (nil counters no-op).
func (r *runner) counter(name, help string) *obs.Counter {
	if reg := r.cfg.Obs.Registry(); reg != nil {
		return reg.Counter(name, help)
	}
	return nil
}

func (r *runner) stashHits() *obs.Counter {
	return r.counter("stash_hits_total", "Stage-cache hits (snapshots loaded instead of running the stage).")
}

func (r *runner) stashMisses() *obs.Counter {
	return r.counter("stash_misses_total", "Stage-cache misses (stage ran and its snapshot was stored).")
}

func (r *runner) stashBytes() *obs.Counter {
	return r.counter("stash_bytes_total", "Snapshot payload bytes read on hits and written on misses.")
}

func (r *runner) stashErrors() *obs.Counter {
	return r.counter("stash_errors_total", "Stage-cache failures: corrupt loads, store errors, verify mismatches.")
}

// checkpointed runs a cacheable region: on a hit the snapshot is
// loaded and the region skipped; on a miss (or a corrupt snapshot,
// which is evicted) the region runs and its snapshot is stored. Cache
// failures never fail a flow — except under CacheVerify, where a hit
// re-runs the region and a snapshot that is not bit-identical to the
// re-run state is a hard error.
func (r *runner) checkpointed(cp checkpoint, body func() error) error {
	if !r.caching {
		return body()
	}
	key := r.key.Derive(cp.name, cp.material)
	r.key = key

	if payload, ok := r.cfg.Cache.Get(key); ok {
		if r.cfg.CacheVerify {
			return r.verifyHit(cp, key, payload, body)
		}
		sp := r.span.Child(cp.name, obs.KV("cache", "hit"), obs.KV("bytes", len(payload)))
		r.cur = sp
		csl := r.stages.Begin("cache", cp.name+" (cache-load)")
		err := contain(func() error { return cp.load(stash.NewDec(payload)) })
		csl.End(trace.N("hit", 1), trace.N("bytes", int64(len(payload))))
		if err == nil {
			sp.End()
			r.cur = nil
			r.trace.Stages = append(r.trace.Stages, StageRecord{
				Stage: cp.name, Attempt: 1, Seed: r.cfg.Seed,
				Duration: sp.Duration(), Cached: true,
			})
			r.stashHits().Inc()
			r.stashBytes().Add(uint64(len(payload)))
			r.cfg.Obs.Sample()
			return nil
		}
		// A snapshot that decodes or validates badly is treated
		// exactly like corruption: evict, record, run the region.
		sp.SetAttr("err", err.Error())
		sp.End()
		r.cur = nil
		r.record(cp.name, 1, r.cfg.Seed, sp.Duration(), false,
			fmt.Errorf("cache load: %w", err))
		r.cfg.Cache.Evict(key)
		r.stashErrors().Inc()
		r.stashMisses().Inc()
		return r.runAndStore(cp, key, body)
	}
	r.stashMisses().Inc()
	return r.runAndStore(cp, key, body)
}

// runAndStore executes the region and stores its snapshot. Store
// failures (encode panic, full disk) only count an error — the flow's
// own result is already computed and stands.
func (r *runner) runAndStore(cp checkpoint, key stash.Key, body func() error) error {
	if err := body(); err != nil {
		return err
	}
	enc := stash.NewEnc()
	if err := contain(func() error { return cp.save(enc) }); err != nil {
		r.stashErrors().Inc()
		return nil
	}
	if err := r.cfg.Cache.Put(key, enc.Bytes()); err != nil {
		r.stashErrors().Inc()
		return nil
	}
	r.stashBytes().Add(uint64(enc.Len()))
	return nil
}

// verifyHit is the paranoia mode: the region re-runs, its state is
// re-encoded, and anything short of bit-identity with the cached
// snapshot evicts the entry and fails the run.
func (r *runner) verifyHit(cp checkpoint, key stash.Key, payload []byte, body func() error) error {
	if err := body(); err != nil {
		return err
	}
	enc := stash.NewEnc()
	if err := contain(func() error { return cp.save(enc) }); err != nil {
		r.cfg.Cache.Evict(key)
		r.stashErrors().Inc()
		verr := fmt.Errorf("cache verify: re-encode: %w", err)
		r.record(cp.name, 1, r.cfg.Seed, 0, false, verr)
		return r.fail(cp.name, r.cfg.Seed, 1, verr)
	}
	if !bytes.Equal(enc.Bytes(), payload) {
		r.cfg.Cache.Evict(key)
		r.stashErrors().Inc()
		verr := fmt.Errorf("cache verify: region %q re-ran to state differing from the cached snapshot (%d vs %d bytes)",
			cp.name, enc.Len(), len(payload))
		r.record(cp.name, 1, r.cfg.Seed, 0, false, verr)
		return r.fail(cp.name, r.cfg.Seed, 1, verr)
	}
	r.stashHits().Inc()
	r.counter("stash_verified_total", "Cache hits re-run and confirmed bit-identical under -cache-verify.").Inc()
	r.stashBytes().Add(uint64(len(payload)))
	return nil
}

// ---- shared wire helpers ----

// resolveMaster maps a snapshotted master name back to a library cell.
// cur short-circuits the common unchanged case; names with the
// macro-die suffix resolve through CellForDie so post-partition designs
// (whose per-die clones are not library members) round-trip. mdCache
// shares one clone per name within a single load.
func resolveMaster(d *netlist.Design, cur *cell.Cell, name string, mdCache map[string]*cell.Cell) (*cell.Cell, error) {
	if cur != nil && cur.Name == name {
		return cur, nil
	}
	if m := d.Lib.Cell(name); m != nil {
		return m, nil
	}
	if base, ok := strings.CutSuffix(name, tech.MDSuffix); ok {
		if c, ok := mdCache[name]; ok {
			return c, nil
		}
		if m := d.Lib.Cell(base); m != nil {
			c := core.CellForDie(m, netlist.MacroDie)
			mdCache[name] = c
			return c, nil
		}
	}
	return nil, fmt.Errorf("snapshot references unknown master %q", name)
}

func encodePinRef(e *stash.Enc, ref netlist.PinRef) {
	var flags uint8
	if ref.Inst != nil {
		flags |= 1
	}
	if ref.Port != nil {
		flags |= 2
	}
	e.U8(flags)
	if ref.Inst != nil {
		e.U32(uint32(ref.Inst.ID))
		e.Str(ref.Pin)
	}
	if ref.Port != nil {
		e.U32(uint32(ref.Port.ID))
	}
}

type pinRefWire struct {
	hasInst bool
	instID  uint32
	pin     string
	hasPort bool
	portID  uint32
}

func decodePinRefWire(dec *stash.Dec) pinRefWire {
	var w pinRefWire
	flags := dec.U8()
	w.hasInst = flags&1 != 0
	w.hasPort = flags&2 != 0
	if w.hasInst {
		w.instID = dec.U32()
		w.pin = dec.Str()
	}
	if w.hasPort {
		w.portID = dec.U32()
	}
	return w
}

func (w pinRefWire) validate(nInst, nPort int) error {
	if w.hasInst && int(w.instID) >= nInst {
		return fmt.Errorf("pin ref instance %d out of range (%d instances)", w.instID, nInst)
	}
	if w.hasPort && int(w.portID) >= nPort {
		return fmt.Errorf("pin ref port %d out of range (%d ports)", w.portID, nPort)
	}
	return nil
}

// resolve builds the live PinRef; call only after validate and after
// any appended instances exist.
func (w pinRefWire) resolve(d *netlist.Design) netlist.PinRef {
	var ref netlist.PinRef
	if w.hasInst {
		ref.Inst = d.Instances[w.instID]
		ref.Pin = w.pin
	}
	if w.hasPort {
		ref.Port = d.Ports[w.portID]
	}
	return ref
}

// ---- placement snapshots ----

type instStateWire struct {
	name   string // appended instances only
	master string
	x, y   float64
	orient uint8
	flags  uint8 // bit 0 Fixed, bit 1 Placed
	die    uint8

	resolved *cell.Cell
}

func encodeInstState(e *stash.Enc, inst *netlist.Instance, withName bool) {
	if withName {
		e.Str(inst.Name)
	}
	e.Str(inst.Master.Name)
	e.F64(inst.Loc.X)
	e.F64(inst.Loc.Y)
	e.U8(uint8(inst.Orient))
	var flags uint8
	if inst.Fixed {
		flags |= 1
	}
	if inst.Placed {
		flags |= 2
	}
	e.U8(flags)
	e.U8(uint8(inst.Die))
}

func decodeInstState(dec *stash.Dec, withName bool) instStateWire {
	var w instStateWire
	if withName {
		w.name = dec.Str()
	}
	w.master = dec.Str()
	w.x = dec.F64()
	w.y = dec.F64()
	w.orient = dec.U8()
	w.flags = dec.U8()
	w.die = dec.U8()
	return w
}

func (w instStateWire) apply(inst *netlist.Instance) {
	if w.resolved != nil {
		inst.Master = w.resolved
	}
	inst.Loc = geom.Pt(w.x, w.y)
	inst.Orient = geom.Orient(w.orient)
	inst.Fixed = w.flags&1 != 0
	inst.Placed = w.flags&2 != 0
	inst.Die = netlist.Die(w.die)
}

// placementCheckpoint snapshots the full placement state of every
// instance (location, orientation, die, flags, master). Used for the
// place stage of the 2D and Macro-3D flows and for the S2D/C2D tier
// partition, none of which add or remove instances.
func placementCheckpoint(name string, material []byte, d *netlist.Design) checkpoint {
	return checkpoint{
		name:     name,
		material: material,
		save: func(e *stash.Enc) error {
			e.Int(len(d.Instances))
			for _, inst := range d.Instances {
				encodeInstState(e, inst, false)
			}
			return nil
		},
		load: func(dec *stash.Dec) error {
			n := dec.Int()
			if dec.Err() == nil && n != len(d.Instances) {
				return fmt.Errorf("placement snapshot has %d instances, design has %d", n, len(d.Instances))
			}
			states := make([]instStateWire, 0, len(d.Instances))
			for i := 0; i < n && dec.Err() == nil; i++ {
				states = append(states, decodeInstState(dec, false))
			}
			if err := dec.Done(); err != nil {
				return err
			}
			mdCache := map[string]*cell.Cell{}
			for i := range states {
				m, err := resolveMaster(d, d.Instances[i].Master, states[i].master, mdCache)
				if err != nil {
					return err
				}
				states[i].resolved = m
			}
			for i := range states {
				states[i].apply(d.Instances[i])
			}
			return nil
		},
	}
}

// pseudoCheckpoint snapshots the net effect of the S2D/C2D pseudo
// phase on the real design: each standard cell's transferred location,
// placed flag and drive choice. The pseudo design itself is scratch
// state that phase B never reads, so it is not captured — on a hit the
// whole shrunk/scaled P&R and the transfer are skipped.
func pseudoCheckpoint(material []byte, d *netlist.Design) checkpoint {
	return checkpoint{
		name:     "pseudo",
		material: material,
		save: func(e *stash.Enc) error {
			cells := d.StdCells()
			e.Int(len(cells))
			for _, c := range cells {
				e.Str(c.Master.Name)
				e.F64(c.Loc.X)
				e.F64(c.Loc.Y)
				e.Bool(c.Placed)
			}
			return nil
		},
		load: func(dec *stash.Dec) error {
			cells := d.StdCells()
			n := dec.Int()
			if dec.Err() == nil && n != len(cells) {
				return fmt.Errorf("pseudo snapshot has %d cells, design has %d", n, len(cells))
			}
			type cw struct {
				m    *cell.Cell
				x, y float64
				p    bool
			}
			states := make([]cw, 0, len(cells))
			mdCache := map[string]*cell.Cell{}
			for i := 0; i < n && dec.Err() == nil; i++ {
				name := dec.Str()
				x, y := dec.F64(), dec.F64()
				p := dec.Bool()
				if dec.Err() != nil {
					break
				}
				m, err := resolveMaster(d, cells[i].Master, name, mdCache)
				if err != nil {
					return err
				}
				states = append(states, cw{m: m, x: x, y: y, p: p})
			}
			if err := dec.Done(); err != nil {
				return err
			}
			for i, s := range states {
				cells[i].Master = s.m
				cells[i].Loc = geom.Pt(s.x, s.y)
				cells[i].Placed = s.p
			}
			return nil
		},
	}
}

// ---- routing snapshots ----

func encodeResult(e *stash.Enc, res *route.Result) {
	e.Int(len(res.Routes))
	for _, nr := range res.Routes {
		e.Bool(nr != nil)
		if nr == nil {
			continue
		}
		e.Int(len(nr.Segments))
		for _, s := range nr.Segments {
			e.Int(s.A.X)
			e.Int(s.A.Y)
			e.Int(s.A.L)
			e.Int(s.B.X)
			e.Int(s.B.Y)
			e.Int(s.B.L)
		}
		e.Int(len(nr.PinNode))
		for _, p := range nr.PinNode {
			e.Int(p.X)
			e.Int(p.Y)
			e.Int(p.L)
		}
		e.F64(nr.WL)
		e.Int(nr.Vias)
		e.Int(nr.F2F)
	}
	e.F64(res.WL)
	e.F64s(res.WLPerLayer)
	e.Int(res.Vias)
	e.Int(res.F2FBumps)
	e.Int(res.Overflow)
	e.F64(res.OverflowWL)
}

type netRouteWire struct {
	present bool
	segs    []route.Seg
	pins    []route.Node
	wl      float64
	vias    int
	f2f     int
}

type resultWire struct {
	routes     []netRouteWire
	wl         float64
	perLayer   []float64
	vias       int
	f2fBumps   int
	overflow   int
	overflowWL float64
}

func decodeResultWire(dec *stash.Dec) resultWire {
	var w resultWire
	n := dec.Int()
	for i := 0; i < n && dec.Err() == nil; i++ {
		var nr netRouteWire
		nr.present = dec.Bool()
		if nr.present {
			ns := dec.Int()
			for j := 0; j < ns && dec.Err() == nil; j++ {
				nr.segs = append(nr.segs, route.Seg{
					A: route.Node{X: dec.Int(), Y: dec.Int(), L: dec.Int()},
					B: route.Node{X: dec.Int(), Y: dec.Int(), L: dec.Int()},
				})
			}
			np := dec.Int()
			for j := 0; j < np && dec.Err() == nil; j++ {
				nr.pins = append(nr.pins, route.Node{X: dec.Int(), Y: dec.Int(), L: dec.Int()})
			}
			nr.wl = dec.F64()
			nr.vias = dec.Int()
			nr.f2f = dec.Int()
		}
		w.routes = append(w.routes, nr)
	}
	w.wl = dec.F64()
	w.perLayer = dec.F64s()
	w.vias = dec.Int()
	w.f2fBumps = dec.Int()
	w.overflow = dec.Int()
	w.overflowWL = dec.F64()
	return w
}

// build materializes the decoded result against the live design;
// len(w.routes) must already be validated == len(d.Nets).
func (w resultWire) build(d *netlist.Design) *route.Result {
	res := &route.Result{
		Routes:     make([]*route.NetRoute, len(w.routes)),
		WL:         w.wl,
		WLPerLayer: w.perLayer,
		Vias:       w.vias,
		F2FBumps:   w.f2fBumps,
		Overflow:   w.overflow,
		OverflowWL: w.overflowWL,
	}
	for i, nr := range w.routes {
		if !nr.present {
			continue
		}
		res.Routes[i] = &route.NetRoute{
			Net: d.Nets[i], Segments: nr.segs, PinNode: nr.pins,
			WL: nr.wl, Vias: nr.vias, F2F: nr.f2f,
		}
	}
	return res
}

// routeCheckpoint snapshots the routing result plus the DB's dynamic
// state (usage, negotiation history, F2F bump usage — the history is
// not derivable from the final routes but feeds downstream ECO cost).
// build reconstructs the empty DB on the load path exactly as the
// route stage would.
func routeCheckpoint(st *State, d *netlist.Design, material []byte, build func()) checkpoint {
	return checkpoint{
		name:     StageRoute,
		material: material,
		save: func(e *stash.Enc) error {
			encodeResult(e, st.Routes)
			u, h, f := st.DB.DynState()
			e.I32s(u)
			e.F32s(h)
			e.I32s(f)
			return nil
		},
		load: func(dec *stash.Dec) error {
			w := decodeResultWire(dec)
			u := dec.I32s()
			h := dec.F32s()
			f := dec.I32s()
			if err := dec.Done(); err != nil {
				return err
			}
			if len(w.routes) != len(d.Nets) {
				return fmt.Errorf("route snapshot covers %d nets, design has %d", len(w.routes), len(d.Nets))
			}
			build()
			if err := st.DB.SetDynState(u, h, f); err != nil {
				return err
			}
			st.Routes = w.build(d)
			return nil
		},
	}
}
