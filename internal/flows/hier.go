package flows

import (
	"context"
	"fmt"
	"time"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/power"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
	"macro3d/internal/verify"
)

// HierReport is the outcome of the hierarchical parent flow: one tile
// hardened into an abstract, nx×ny abstract instances composed by
// abutment, and only the parent-level work (stitch routing, clock
// tree, boundary STA, verification) done from scratch.
type HierReport struct {
	Nx, Ny   int
	Abstract *cell.Cell
	Design   *netlist.Design
	Die      geom.Rect
	Routes   *route.Result
	Tree     *cts.Tree

	TilePeriodPs  float64 // the hardened block's own sign-off period
	ArrayPeriodPs float64 // parent minimum period (floored by the tile's)
	ClosesAtTile  bool    // array period ≤ tile period (+2 % tolerance)
	Critical      sta.Path

	StitchedNets int // inter-tile abutment connections routed by the parent
	F2FBumps     int // parent stitch crossings + per-instance hardened bumps

	// Energy per cycle: parent stitching + clock dynamic energy plus
	// the hardened block's per-cycle energy per instance. Leakage
	// covers every abstract instance (Cell.Leakage) plus the parent
	// clock buffers.
	EnergyPerCycleFJ float64
	PowerUW          float64
	LeakageUW        float64

	HardenCacheHit bool
	HardenElapsed  time.Duration // hardening (or cache load) wall clock
	ParentElapsed  time.Duration // parent-level compose→signoff wall clock
}

// RunHierArray is the hierarchical flow of DESIGN.md §13: harden the
// configured tile once (flow is HardenMacro3D or Harden2D), then
// instantiate the abstract nx×ny by abutment and sign off only the
// parent level. Against VerifyTileArray's flat re-verification this
// trades per-instance detail for wall clock: the sub-block P&R runs
// once (or zero times, on a warm cache), not per instance.
func RunHierArray(cfg Config, flow string, nx, ny int) (*HierReport, error) {
	return RunHierArrayCtx(context.Background(), cfg, flow, nx, ny)
}

// RunHierArrayCtx is RunHierArray with run cancellation.
func RunHierArrayCtx(ctx context.Context, cfg Config, flow string, nx, ny int) (*HierReport, error) {
	cfg = cfg.withDefaults()
	hr, err := HardenCtx(ctx, cfg, flow)
	if err != nil {
		return nil, err
	}
	rep, err := InstantiateArray(cfg, hr, nx, ny)
	if err != nil {
		return nil, err
	}
	rep.HardenCacheHit = hr.CacheHit
	rep.HardenElapsed = hr.Elapsed
	return rep, nil
}

// InstantiateArray runs the parent level of the hierarchical flow on
// an already-hardened block: compose nx×ny abstracts by abutment,
// route the stitched nets against the abstracts' per-layer
// obstructions, synthesize the parent clock tree over the abstract
// clock pins, extract, and close timing with the boundary model.
func InstantiateArray(cfg Config, hr *HardenResult, nx, ny int) (*HierReport, error) {
	cfg = cfg.withDefaults()
	t0 := time.Now()
	abs := hr.Abstract
	if abs == nil || abs.Abstract == nil {
		return nil, fmt.Errorf("hier: HardenResult carries no abstract")
	}

	t, err := tech.New28(cfg.LogicMetals)
	if err != nil {
		return nil, err
	}
	beol, err := parentBEOL(cfg, t, abs)
	if err != nil {
		return nil, err
	}

	tileDie := geom.R(0, 0, abs.Width, abs.Height)
	d, die, err := piton.ComposeAbstract(hr.Tile, abs, tileDie, nx, ny)
	if err != nil {
		return nil, err
	}

	// The parent router sees each instance as its per-layer residual:
	// obstructions cover exactly the gcells the hardened
	// implementation used or blocked, so stitch routes thread the
	// genuinely free tracks over the macros instead of detouring
	// around opaque full-stack blockages.
	var blk []floorplan.RouteBlockage
	for _, inst := range d.Instances {
		for _, o := range inst.Master.Obstructions {
			blk = append(blk, floorplan.RouteBlockage{
				Layer: o.Layer, Rect: o.Rect.Translate(inst.Loc),
			})
		}
	}
	db := route.NewDB(die, beol, blk, route.Options{Workers: cfg.Workers,
		Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		return nil, fmt.Errorf("hier: stitch routing: %w", err)
	}

	clkSrc := geom.Pt(die.Lx, die.Center().Y)
	if p := d.Port("clk_i"); p != nil {
		clkSrc = p.Loc
	}
	tree := cts.Build(d, d.Net("clk"), clkSrc, d.Lib, beol, cts.Options{})

	slow := t.CornerScaleFor(tech.CornerSlow)
	ex := extract.Extract(d, res, db, slow)
	if err := ex.CheckFinite(); err != nil {
		return nil, fmt.Errorf("hier: %w", err)
	}
	srep, err := sta.Analyze(d, ex, abs.Abstract.MinPeriodPs, sta.Options{Corner: slow, Clock: tree})
	if err != nil {
		return nil, fmt.Errorf("hier: STA: %w", err)
	}

	if cfg.Verify {
		f2f := t.F2F
		if cfg.F2F != nil {
			f2f = *cfg.F2F
		}
		vrep := verify.Full(d, die, res, nil, f2f, nil)
		if !vrep.Clean() {
			return nil, &verify.Error{Report: vrep}
		}
	}

	// Power: the parent-level analysis sees the stitch wires, the
	// clock tree and every instance's leakage; each instance's
	// dynamic energy comes from its hardened signoff.
	typ := t.CornerScaleFor(tech.CornerTypical)
	exT := extract.Extract(d, res, db, typ)
	fclk := 1e6 / srep.MinPeriod
	pw := power.Analyze(d, exT, tree, fclk, power.Options{})

	stitched := 0
	for _, n := range d.Nets {
		if !n.Clock && len(n.Sinks) > 0 && !n.Driver.IsPort() && !n.Sinks[0].IsPort() {
			stitched++
		}
	}

	out := &HierReport{
		Nx: nx, Ny: ny,
		Abstract: abs, Design: d, Die: die,
		Routes: res, Tree: tree,

		TilePeriodPs:  abs.Abstract.MinPeriodPs,
		ArrayPeriodPs: srep.MinPeriod,
		Critical:      srep.Critical,

		StitchedNets: stitched,
		F2FBumps:     res.F2FBumps + nx*ny*abs.Abstract.F2FBumps,

		EnergyPerCycleFJ: pw.DynamicFJ + float64(nx*ny)*abs.Abstract.EnergyPerCycleFJ,
		LeakageUW:        pw.LeakageUW,

		ParentElapsed: time.Since(t0),
	}
	out.ClosesAtTile = srep.MinPeriod <= abs.Abstract.MinPeriodPs*1.02
	out.PowerUW = out.EnergyPerCycleFJ*fclk*1e-3 + pw.LeakageUW
	return out, nil
}

// parentBEOL picks the routing stack the parent level runs on: the
// hardened block's own stack. A Macro-3D-hardened abstract carries
// obstructions on the _MD macro-die layers, so the parent must route
// on the same combined BEOL; a 2D-hardened abstract lives on the
// plain logic stack.
func parentBEOL(cfg Config, t *tech.Tech, abs *cell.Cell) (*tech.BEOL, error) {
	needMD := false
	for _, o := range abs.Obstructions {
		if t.Logic.LayerIndex(o.Layer) < 0 {
			needMD = true
			break
		}
	}
	if !needMD {
		return t.Logic, nil
	}
	macroBeol, err := tech.NewBEOL28("macro28", cfg.MacroDieMetals)
	if err != nil {
		return nil, err
	}
	f2f := t.F2F
	if cfg.F2F != nil {
		f2f = *cfg.F2F
	}
	return tech.Combine(t.Logic, macroBeol, f2f)
}
