package flows

import (
	"bytes"
	"strings"
	"testing"

	"macro3d/internal/piton"
	"macro3d/internal/stash"
	"macro3d/internal/tech"
)

func hierCfg() Config {
	return Config{Piton: piton.Tiny(), Seed: 7}
}

// TestHardenAbstract checks that hardening the tiny tile through the
// Macro-3D flow produces a well-formed abstract: every tile port
// becomes a boundary pin, the clock pin exists, the boundary timing
// model is populated, and the obstructions include the macro-die
// (_MD) layers the implementation routed on.
func TestHardenAbstract(t *testing.T) {
	hr, err := Harden(hierCfg(), HardenMacro3D)
	if err != nil {
		t.Fatal(err)
	}
	abs := hr.Abstract
	if abs == nil || abs.Abstract == nil {
		t.Fatal("no abstract produced")
	}
	if hr.CacheHit {
		t.Fatal("cacheless harden reported a cache hit")
	}
	if abs.Abstract.MinPeriodPs <= 0 {
		t.Fatalf("abstract MinPeriodPs = %v", abs.Abstract.MinPeriodPs)
	}
	if abs.Width <= 0 || abs.Height <= 0 {
		t.Fatalf("degenerate abstract %v×%v", abs.Width, abs.Height)
	}
	if got, want := len(abs.Pins), len(hr.State.Design.Ports); got != want {
		t.Fatalf("abstract has %d pins, tile has %d ports", got, want)
	}
	if abs.ClockPin() == nil {
		t.Fatal("abstract has no clock pin")
	}
	var setups, clkqs, md int
	for _, p := range abs.Pins {
		if p.Setup > 0 {
			setups++
		}
		if p.ClkQ > 0 {
			clkqs++
		}
	}
	if setups == 0 || clkqs == 0 {
		t.Fatalf("boundary timing model empty: %d setups, %d clk→out arcs", setups, clkqs)
	}
	if len(abs.Obstructions) == 0 {
		t.Fatal("abstract has no routing obstructions")
	}
	for _, o := range abs.Obstructions {
		if strings.HasSuffix(o.Layer, tech.MDSuffix) {
			md++
		}
		r := o.Rect
		if r.Lx < -1e-6 || r.Ly < -1e-6 || r.Ux > abs.Width+1e-6 || r.Uy > abs.Height+1e-6 {
			t.Fatalf("obstruction %v on %s outside the abstract frame", r, o.Layer)
		}
	}
	if md == 0 {
		t.Fatal("Macro-3D-hardened abstract has no _MD-layer obstructions")
	}
}

// TestHierArrayClosesAtTile proves the hierarchical §V-1 argument:
// 2×2 abstract instances composed by abutment verify clean and close
// timing at the tile's own period.
func TestHierArrayClosesAtTile(t *testing.T) {
	cfg := hierCfg()
	cfg.Verify = true
	rep, err := RunHierArray(cfg, HardenMacro3D, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ClosesAtTile {
		t.Fatalf("array period %.1f ps does not close at tile period %.1f ps",
			rep.ArrayPeriodPs, rep.TilePeriodPs)
	}
	if rep.ArrayPeriodPs < rep.TilePeriodPs {
		t.Fatalf("array period %.1f ps below the tile floor %.1f ps",
			rep.ArrayPeriodPs, rep.TilePeriodPs)
	}
	if rep.StitchedNets == 0 {
		t.Fatal("no stitched inter-tile nets")
	}
	if rep.EnergyPerCycleFJ <= 0 || rep.LeakageUW <= 0 {
		t.Fatalf("power accounting empty: E=%v fJ, leak=%v µW",
			rep.EnergyPerCycleFJ, rep.LeakageUW)
	}
	if n := len(rep.Design.Instances); n != 4 {
		t.Fatalf("parent design has %d instances, want 4", n)
	}
}

// TestHardenCacheWarm checks that a second harden of the same
// configuration is served from the stash — bit-identical abstract,
// no sub-block flow run — and that the harden traffic counters see it.
func TestHardenCacheWarm(t *testing.T) {
	store, err := stash.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := hierCfg()
	cfg.Cache = store

	cold, err := Harden(cfg, HardenMacro3D)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first harden hit an empty cache")
	}
	warm, err := Harden(cfg, HardenMacro3D)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second harden missed the cache")
	}
	if warm.State != nil || warm.PPA != nil {
		t.Fatal("warm harden carries implementation state")
	}
	if !bytes.Equal(encodeAbstract(cold.Abstract), encodeAbstract(warm.Abstract)) {
		t.Fatal("cached abstract differs from the freshly built one")
	}
	st := store.Stats()
	if st.HardenHits != 1 || st.HardenMisses != 1 {
		t.Fatalf("harden traffic = %d hits / %d misses, want 1/1", st.HardenHits, st.HardenMisses)
	}

	// A different seed is a different block: it must not share the entry.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	other, err := Harden(cfg2, HardenMacro3D)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Fatal("different seed hit the first seed's cache entry")
	}
}

// TestHierArrayDeterministic pins the parallel-engine guarantee on the
// hierarchical flow: identical results at any worker count.
func TestHierArrayDeterministic(t *testing.T) {
	run := func(workers int) *HierReport {
		cfg := hierCfg()
		cfg.Workers = workers
		rep, err := RunHierArray(cfg, HardenMacro3D, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(4)
	if a.ArrayPeriodPs != b.ArrayPeriodPs {
		t.Fatalf("array period differs across worker counts: %v vs %v",
			a.ArrayPeriodPs, b.ArrayPeriodPs)
	}
	if a.StitchedNets != b.StitchedNets || a.F2FBumps != b.F2FBumps {
		t.Fatalf("stitch results differ: %d/%d nets, %d/%d bumps",
			a.StitchedNets, b.StitchedNets, a.F2FBumps, b.F2FBumps)
	}
	if !bytes.Equal(encodeAbstract(a.Abstract), encodeAbstract(b.Abstract)) {
		t.Fatal("abstract differs across worker counts")
	}
}
