package flows

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"macro3d/internal/piton"
)

func TestPerturbSeed(t *testing.T) {
	if PerturbSeed(42, 1) != 42 {
		t.Fatal("attempt 1 must use the seed unchanged")
	}
	a2, a3 := PerturbSeed(42, 2), PerturbSeed(42, 3)
	if a2 == 42 || a3 == 42 || a2 == a3 {
		t.Fatalf("retry seeds not distinct: %d %d", a2, a3)
	}
	if a2 != PerturbSeed(42, 2) {
		t.Fatal("perturbation not deterministic")
	}
}

func TestPanicContainedAsStageError(t *testing.T) {
	cfg := Config{
		Generator: func() (*piton.Tile, error) { panic("boom: synthetic generator fault") },
	}
	_, st, err := Run2D(cfg)
	if err == nil {
		t.Fatal("panicking generator did not fail the flow")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *StageError: %T %v", err, err)
	}
	if se.Stage != StageGenerate || se.Flow != "2D" {
		t.Fatalf("wrong stage attribution: %+v", se)
	}
	if len(se.Stack) == 0 {
		t.Fatal("contained panic lost its stack")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom: synthetic generator fault" {
		t.Fatalf("panic value not preserved: %v", err)
	}
	if st == nil || st.Trace == nil || st.Trace.Completed {
		t.Fatal("failed run must leave an incomplete trace")
	}
	if !st.Trace.Stages[len(st.Trace.Stages)-1].Panicked {
		t.Fatal("trace did not record the panic")
	}
}

func TestCancelledContextStopsAtStageBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := Run2DCtx(ctx, Config{Piton: piton.Tiny(), Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageGenerate {
		t.Fatalf("cancellation not attributed to the first stage: %v", err)
	}
	if st.Trace == nil || len(st.Trace.Stages) != 1 {
		t.Fatalf("pre-cancelled run executed stages: %+v", st.Trace)
	}
}

func TestCancelMidFlowReturnsWithinOneStage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a partial tiny flow")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Piton: piton.Tiny(), Seed: 1}
	cfg.AfterStage = func(flow, stage string, st *State) {
		if stage == StagePlace {
			cancel()
		}
	}
	_, st, err := Run2DCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancel fired after "place" completed; the very next stage
	// boundary (cts) must observe it.
	if last := st.Trace.LastStage(); last != StageCTS {
		t.Fatalf("flow ran past the cancellation boundary: last stage %q\n%s", last, st.Trace)
	}
}

func TestSeededRetryPerturbsSeedAndRecordsAttempts(t *testing.T) {
	cfg := Config{Piton: piton.Tiny(), Seed: 9, Retry: RetryPolicy{MaxAttempts: 3}}.withDefaults()
	st := &State{}
	r := newRunner(context.Background(), "test", cfg, st)
	var seeds []uint64
	err := r.seededStage(StagePlace, 9, func(seed uint64) error {
		seeds = append(seeds, seed)
		if len(seeds) < 3 {
			return fmt.Errorf("synthetic stochastic failure %d", len(seeds))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stage failed despite retry budget: %v", err)
	}
	if len(seeds) != 3 || seeds[0] != 9 || seeds[1] == 9 || seeds[2] == 9 || seeds[1] == seeds[2] {
		t.Fatalf("retry seeds wrong: %v", seeds)
	}
	if len(st.Trace.Stages) != 3 {
		t.Fatalf("every attempt must be recorded, got %d", len(st.Trace.Stages))
	}
	for i, rec := range st.Trace.Stages {
		if rec.Attempt != i+1 || rec.Seed != seeds[i] {
			t.Fatalf("attempt record %d wrong: %+v", i, rec)
		}
	}
	if st.Trace.Stages[0].Err == "" || st.Trace.Stages[2].Err != "" {
		t.Fatalf("attempt outcomes wrong: %+v", st.Trace.Stages)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	cfg := Config{Piton: piton.Tiny(), Seed: 9, Retry: RetryPolicy{MaxAttempts: 2}}.withDefaults()
	r := newRunner(context.Background(), "test", cfg, &State{})
	calls := 0
	err := r.seededStage(StagePlace, 9, func(seed uint64) error {
		calls++
		return fmt.Errorf("always fails")
	})
	var se *StageError
	if !errors.As(err, &se) || se.Attempt != 2 || calls != 2 {
		t.Fatalf("budget handling wrong: calls=%d err=%v", calls, err)
	}
	if se.Seed != PerturbSeed(9, 2) {
		t.Fatalf("StageError must carry the failing attempt's seed, got %d", se.Seed)
	}
}

func TestStageTimeoutFailsAtBoundary(t *testing.T) {
	cfg := Config{Piton: piton.Tiny(), Seed: 1, StageTimeout: time.Nanosecond}.withDefaults()
	r := newRunner(context.Background(), "test", cfg, &State{})
	err := r.stage("slow", func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded wrap, got %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "slow" {
		t.Fatalf("timeout not a StageError: %v", err)
	}
}

func TestPanickingAfterStageHookIsContained(t *testing.T) {
	cfg := Config{Piton: piton.Tiny(), Seed: 1}
	cfg.AfterStage = func(flow, stage string, st *State) {
		panic("hook fault")
	}
	_, _, err := Run2D(cfg)
	var se *StageError
	if !errors.As(err, &se) || len(se.Stack) == 0 {
		t.Fatalf("hook panic not contained as StageError: %v", err)
	}
}

func TestCleanTinyFlowTraceCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full tiny flow")
	}
	cfg := Config{Piton: piton.Tiny(), Seed: 5, Verify: true}
	_, st, err := Run2D(cfg)
	if err != nil {
		t.Fatalf("clean tiny 2D flow failed: %v", err)
	}
	if st.Trace == nil || !st.Trace.Completed || st.Trace.Err != nil {
		t.Fatalf("trace not completed: %+v", st.Trace)
	}
	want := []string{StageGenerate, StageFloorplan, StagePlace, StageCTS, StageRoute,
		StageExtract, StageOpt, StageSTA, StagePower, StageVerify}
	var got []string
	for _, rec := range st.Trace.Stages {
		got = append(got, rec.Stage)
	}
	if len(got) != len(want) {
		t.Fatalf("stage sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage sequence %v, want %v", got, want)
		}
	}
}

// TestRunReportSubMillisecondDurations pins the adaptive-precision
// rendering: a sub-millisecond stage (the norm on tiny configs) must
// not collapse to "0s" in the trace, and every magnitude keeps at
// least two significant digits.
func TestRunReportSubMillisecondDurations(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{737 * time.Microsecond, "737µs"},
		{737*time.Microsecond + 432*time.Nanosecond, "737.43µs"},
		{950 * time.Nanosecond, "950ns"},
		{12*time.Millisecond + 345*time.Microsecond, "12.35ms"},
		{3*time.Second + 456*time.Millisecond, "3.46s"},
		{2*time.Minute + 3*time.Second, "2m3s"},
	}
	for _, c := range cases {
		if got := fmtDuration(c.d); got != c.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}

	rep := &RunReport{Flow: "2D", Config: "tiny", Completed: true, Stages: []StageRecord{
		{Stage: StagePlace, Attempt: 1, Seed: 7, Duration: 737 * time.Microsecond},
	}}
	s := rep.String()
	if strings.Contains(s, " 0s ") || strings.Contains(s, "\t0s") {
		t.Errorf("sub-millisecond stage rendered as 0s:\n%s", s)
	}
	if !strings.Contains(s, "737µs") {
		t.Errorf("trace does not show the sub-ms duration:\n%s", s)
	}
}
