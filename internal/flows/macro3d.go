package flows

import (
	"fmt"

	"macro3d/internal/core"
	"macro3d/internal/floorplan"
	"macro3d/internal/opt"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// RunMacro3D executes the paper's flow (§IV): macro-die floorplan,
// combined BEOL, single-pass 2D P&R that is directly the final 3D
// result, and die separation.
func RunMacro3D(cfg Config) (*PPA, *State, *core.MoLDesign, error) {
	cfg = cfg.withDefaults()
	t, err := tech.New28(cfg.LogicMetals)
	if err != nil {
		return nil, nil, nil, err
	}
	macroBeol, err := tech.NewBEOL28("macro28", cfg.MacroDieMetals)
	if err != nil {
		return nil, nil, nil, err
	}
	tile, err := cfg.generate()
	if err != nil {
		return nil, nil, nil, err
	}
	d := tile.Design

	sz, err := floorplan.SizeDesign(d, cfg.Util, 1.0, t.RowHeight)
	if err != nil {
		return nil, nil, nil, err
	}
	st := &State{Design: d, Tile: tile, Die: sz.Die3D, Sizing: sz}

	// Step 1: the two per-die floorplans (macros → macro die).
	if _, _, err := floorplan.PlaceMacros(d, sz.Die3D, floorplan.StyleMoL); err != nil {
		return nil, nil, nil, err
	}
	floorplan.AssignPorts(tile, sz.Die3D)

	// Step 2: combined BEOL + macro editing + superimposed floorplan.
	f2f := t.F2F
	if cfg.F2F != nil {
		f2f = *cfg.F2F
	}
	filler := d.Lib.MustCell("FILL_X1")
	md, err := core.PrepareMoL(d, t.Logic, macroBeol, f2f, sz.Die3D, filler.Width, filler.Height)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("macro3d prepare: %w", err)
	}
	st.FP = md.FP
	st.Beol = md.Combined

	// Step 3: standard 2D P&R over the combined stack — the result is
	// directly valid for the 3D target.
	if _, err := place.Place(d, md.FP, t.RowHeight, place.Options{Seed: cfg.Seed + 2}); err != nil {
		return nil, nil, nil, fmt.Errorf("macro3d place: %w", err)
	}
	buildClock(st)
	st.DB = route.NewDB(sz.Die3D, md.Combined, md.FP.RouteBlk, route.Options{})
	st.Routes, err = route.RouteDesign(d, st.DB)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("macro3d route: %w", err)
	}

	// Sign-off with full optimization (the engine sees reality, so
	// optimization is trustworthy — the paper's key property).
	ppa, err := signoff(cfg, st, t, opt.Options{}, 2, cfg.LogicMetals+cfg.MacroDieMetals)
	if err != nil {
		return nil, nil, nil, err
	}
	ppa.Flow = "Macro-3D"
	return ppa, st, md, nil
}
