package flows

import (
	"context"
	"fmt"

	"macro3d/internal/core"
	"macro3d/internal/floorplan"
	"macro3d/internal/opt"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// RunMacro3D executes the paper's flow (§IV): macro-die floorplan,
// combined BEOL, single-pass 2D P&R that is directly the final 3D
// result, and die separation.
func RunMacro3D(cfg Config) (*PPA, *State, *core.MoLDesign, error) {
	return RunMacro3DCtx(context.Background(), cfg)
}

// RunMacro3DCtx is RunMacro3D honouring cancellation and per-stage
// deadlines at stage boundaries.
func RunMacro3DCtx(ctx context.Context, cfg Config) (*PPA, *State, *core.MoLDesign, error) {
	cfg = cfg.withDefaults()
	st := &State{}
	r := newRunner(ctx, "Macro-3D", cfg, st)

	var t *tech.Tech
	var macroBeol *tech.BEOL
	if err := r.stage(StageGenerate, func() error {
		var err error
		if t, err = tech.New28(cfg.LogicMetals); err != nil {
			return err
		}
		if macroBeol, err = tech.NewBEOL28("macro28", cfg.MacroDieMetals); err != nil {
			return err
		}
		tile, err := cfg.generate()
		if err != nil {
			return err
		}
		st.Design, st.Tile = tile.Design, tile
		return nil
	}); err != nil {
		return nil, st, nil, err
	}
	d := st.Design

	// Step 1: the two per-die floorplans (macros → macro die).
	if err := r.stage(StageFloorplan, func() error {
		sz, err := floorplan.SizeDesign(d, cfg.Util, 1.0, t.RowHeight)
		if err != nil {
			return err
		}
		st.Die, st.Sizing = sz.Die3D, sz
		if _, _, err := floorplan.PlaceMacros(d, sz.Die3D, floorplan.StyleMoL); err != nil {
			return err
		}
		floorplan.AssignPorts(st.Tile, sz.Die3D)
		return nil
	}); err != nil {
		return nil, st, nil, err
	}

	// Step 2: combined BEOL + macro editing + superimposed floorplan.
	var md *core.MoLDesign
	if err := r.stage(StagePrepare, func() error {
		f2f := t.F2F
		if cfg.F2F != nil {
			f2f = *cfg.F2F
		}
		filler := d.Lib.MustCell("FILL_X1")
		var err error
		md, err = core.PrepareMoL(d, t.Logic, macroBeol, f2f, st.Die, filler.Width, filler.Height)
		if err != nil {
			return fmt.Errorf("macro3d prepare: %w", err)
		}
		st.FP = md.FP
		st.Beol = md.Combined
		return nil
	}); err != nil {
		return nil, st, nil, err
	}

	// Step 3: standard 2D P&R over the combined stack — the result is
	// directly valid for the 3D target.
	// The place checkpoint's key material covers the 3D-specific
	// inputs of the stages above it (prepare's combined BEOL and F2F
	// spec); everything else is in the root key.
	if err := r.checkpointed(placementCheckpoint(StagePlace, stackMaterial(cfg, t), d), func() error {
		return r.seededStage(StagePlace, cfg.Seed+2, func(seed uint64) error {
			_, err := place.Place(d, md.FP, t.RowHeight, place.Options{Seed: seed, Obs: r.obs(), Workers: cfg.Workers, Fast: cfg.FastRoute, Analytic: cfg.AnalyticPlace, Trace: cfg.Trace})
			return err
		})
	}); err != nil {
		return nil, st, nil, err
	}

	if err := r.stage(StageCTS, func() error {
		buildClock(st)
		return nil
	}); err != nil {
		return nil, st, nil, err
	}

	buildDB := func() {
		st.DB = route.NewDB(st.Die, md.Combined, md.FP.RouteBlk, route.Options{Obs: r.obs(), Workers: cfg.Workers, Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})
	}
	if err := r.checkpointed(routeCheckpoint(st, d, nil, buildDB), func() error {
		return r.stage(StageRoute, func() error {
			buildDB()
			var err error
			st.Routes, err = route.RouteDesign(d, st.DB)
			return err
		})
	}); err != nil {
		return nil, st, nil, err
	}

	// Sign-off with full optimization (the engine sees reality, so
	// optimization is trustworthy — the paper's key property).
	ppa, err := signoff(r, cfg, st, t, opt.Options{}, 2, cfg.LogicMetals+cfg.MacroDieMetals)
	if err != nil {
		return nil, st, nil, err
	}
	if err := verifyStage(r, cfg, st, t, md); err != nil {
		return nil, st, md, err
	}
	r.finish()
	ppa.Flow = "Macro-3D"
	return ppa, st, md, nil
}
