package flows

import (
	"reflect"
	"runtime"
	"testing"

	"macro3d/internal/stash"
)

// TestAnalyticWorkerEquivalence pins the analytic placer's flow-level
// determinism contract: the Macro-3D flow with AnalyticPlace produces
// an identical PPA at Workers 1, 4 and 0. (The default path's
// bit-identity is TestWorkerEquivalence; this covers the other engine.)
func TestAnalyticWorkerEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	workerSets := []int{1, 4, 0}
	if raceEnabled {
		workerSets = []int{1, 4}
	}
	var ref *PPA
	for _, w := range workerSets {
		cfg := tinyCacheCfg()
		cfg.Workers = w
		cfg.AnalyticPlace = true
		got := runFlow(t, "macro3d", cfg)
		if ref == nil {
			ref = got
			continue
		}
		if *got != *ref {
			t.Fatalf("analytic workers=%d PPA diverged:\n got: %+v\nwant: %+v", w, *got, *ref)
		}
	}
}

// TestStageCacheAnalyticKeySplit pins the snapshot-aliasing contract:
// AnalyticPlace selects a different placement engine with different
// results, so an analytic run over a store populated by a default run
// must miss every checkpoint (the flag is part of the rootKey hash
// chain), while a second analytic run hits all of its own.
func TestStageCacheAnalyticKeySplit(t *testing.T) {
	dir := t.TempDir()

	def, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheCfg()
	cfg.Cache = def
	defPPA := runFlow(t, "macro3d", cfg)

	an, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCacheCfg()
	cfg.Cache = an
	cfg.AnalyticPlace = true
	anPPA := runFlow(t, "macro3d", cfg)
	if st := an.Stats(); st.Hits != 0 || st.Misses == 0 {
		t.Errorf("analytic run over default store: stats = %+v; want no hits (snapshots must never alias)", st)
	}

	warm, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCacheCfg()
	cfg.Cache = warm
	cfg.AnalyticPlace = true
	warmPPA := runFlow(t, "macro3d", cfg)
	if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Errorf("warm analytic run: stats = %+v; want all hits", st)
	}
	if !reflect.DeepEqual(anPPA, warmPPA) {
		t.Errorf("warm analytic PPA differs from cold:\n  %+v\n  %+v", anPPA, warmPPA)
	}
	if reflect.DeepEqual(defPPA, anPPA) {
		t.Logf("note: analytic and default PPA coincide on the tiny tile: %+v", defPPA)
	}
}
