package flows

import (
	"testing"

	"macro3d/internal/piton"
)

// smallCfg returns the small-cache configuration used across tests.
func smallCfg() Config {
	return Config{Piton: piton.SmallCache(), Seed: 1}
}

func TestRun2DSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in -short mode")
	}
	ppa, st, err := Run2D(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ppa)
	if ppa.Flow != "2D" || ppa.Dies != 1 {
		t.Fatalf("flow identity wrong: %+v", ppa)
	}
	// Paper-scale expectations (broad bands): fclk in the hundreds of
	// MHz, footprint ≈ 1.2 mm², no F2F bumps, 6-layer metal area.
	if ppa.FclkMHz < 100 || ppa.FclkMHz > 1200 {
		t.Fatalf("2D fclk = %.0f MHz", ppa.FclkMHz)
	}
	if ppa.FootprintMM2 < 0.9 || ppa.FootprintMM2 > 1.6 {
		t.Fatalf("2D footprint = %.2f mm²", ppa.FootprintMM2)
	}
	if ppa.F2FBumps != 0 {
		t.Fatalf("2D design has %d F2F bumps", ppa.F2FBumps)
	}
	if ppa.CritPathWLmm <= 0 || ppa.TotalWLm <= 0 {
		t.Fatal("missing wirelength metrics")
	}
	if st.Report == nil || st.Tree == nil {
		t.Fatal("state incomplete")
	}
}

func TestRunMacro3DSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in -short mode")
	}
	ppa, st, md, err := RunMacro3D(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ppa)
	if ppa.Dies != 2 {
		t.Fatal("Macro-3D must report two dies")
	}
	if ppa.F2FBumps == 0 {
		t.Fatal("Macro-3D produced no F2F bumps")
	}
	if md.EditedMacros == 0 {
		t.Fatal("no macros edited")
	}
	if st.Beol.F2FViaIndex() < 0 {
		t.Fatal("not routed on a combined stack")
	}
}

func TestMacro3DBeats2D(t *testing.T) {
	if testing.Short() {
		t.Skip("full flows in -short mode")
	}
	p2d, _, err := Run2D(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	p3d, _, _, err := RunMacro3D(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2D:       %v", p2d)
	t.Logf("Macro-3D: %v", p3d)
	// The paper's headline: Macro-3D outperforms 2D (+20.5 % small
	// cache) at half the footprint with shorter wires.
	if p3d.FclkMHz <= p2d.FclkMHz {
		t.Fatalf("Macro-3D (%.0f MHz) not faster than 2D (%.0f MHz)", p3d.FclkMHz, p2d.FclkMHz)
	}
	if p3d.FootprintMM2 >= p2d.FootprintMM2*0.55 {
		t.Fatalf("footprint not halved: %.2f vs %.2f", p3d.FootprintMM2, p2d.FootprintMM2)
	}
	if p3d.TotalWLm >= p2d.TotalWLm {
		t.Fatalf("wirelength not reduced: %.2f vs %.2f m", p3d.TotalWLm, p2d.TotalWLm)
	}
	// Critical-path wirelength is path-class dependent (which path
	// ends up worst after optimization differs between runs), so it is
	// not asserted here; EXPERIMENTS.md discusses the deviation. The
	// energy check below keeps the wire-capacitance story honest.
	// Energy stays in the same ballpark (paper: ±1 %; accept ±25 %).
	r := p3d.EmeanFJ / p2d.EmeanFJ
	if r < 0.75 || r > 1.25 {
		t.Fatalf("Emean ratio = %.2f, diverged", r)
	}
}
