// Package flows implements the four end-to-end physical-design flows
// the paper compares on the OpenPiton tile:
//
//   - Flow2D: the baseline single-die flow (macros ring the periphery,
//     six metal layers).
//   - Macro3D: the paper's flow — combined two-die BEOL, edited macro
//     abstracts, single-pass true 3D P&R, then die separation.
//   - S2D (Shrunk-2D, [5]): cells shrunk to 50 % area and placed in
//     the 3D footprint against coarse partial blockages, sized against
//     the pseudo parasitics, then unshrunk, tier-partitioned,
//     overlap-legalized and rerouted with frozen optimization.
//   - C2D (Compact-2D, [6]): cells placed at full size in a 2×
//     footprint with per-unit parasitics scaled by 1/√2, linearly
//     mapped into the 3D footprint, then partitioned and rerouted with
//     frozen optimization.
//
// Every flow ends in the same sign-off: slow-corner STA for f_max,
// typical-corner extraction for power, and the PPA record holding the
// paper's Table I–III rows.
package flows

import (
	"fmt"
	"math"
	"time"

	"macro3d/internal/core"
	"macro3d/internal/cts"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/opt"
	"macro3d/internal/piton"
	"macro3d/internal/power"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/stash"
	"macro3d/internal/tech"
	"macro3d/internal/verify"
)

// Config selects the benchmark and flow parameters.
type Config struct {
	// Piton is the tile configuration (piton.SmallCache() /
	// piton.LargeCache()).
	Piton piton.Config

	// LogicMetals per die (paper: 6). MacroDieMetals only affects 3D
	// flows (6 for M6–M6, 4 for the Table III M6–M4 ablation).
	LogicMetals    int
	MacroDieMetals int

	// Util is the standard-cell utilization target for die sizing
	// (default 0.70).
	Util float64

	// TargetPeriod, when > 0, runs timing optimization only until the
	// target is met (iso-performance mode); 0 = max performance.
	TargetPeriod float64

	// BlockageResolution is the partial-blockage rasterization pitch
	// of the S2D/C2D flows, µm (default 50 — deliberately coarse, the
	// commercial-tool behaviour the paper observed).
	BlockageResolution float64

	// F2F overrides the face-to-face via technology (nil = the
	// paper's defaults). Used by the bump-pitch ablation.
	F2F *tech.F2FSpec

	// Generator, when set, supplies the benchmark netlist instead of
	// piton.Generate(Piton) — e.g. a sensor-on-logic SoC. Flows call
	// it freshly per run because they mutate the design. Only Run2D
	// and RunMacro3D support it; the S2D/C2D baselines need the
	// shrunk/scaled pseudo-design regeneration that is specific to the
	// tile generator.
	Generator func() (*piton.Tile, error)

	Seed uint64

	// Retry bounds re-runs of failed stochastic stages (placement,
	// tier partitioning) with deterministically perturbed seeds.
	Retry RetryPolicy

	// StageTimeout, when > 0, is the per-stage wall-clock budget:
	// a stage that exceeds it fails the run with a StageError whose
	// cause wraps context.DeadlineExceeded. Enforced at the stage
	// boundary (stages are not preempted mid-flight).
	StageTimeout time.Duration

	// Verify, when true, appends independent sign-off verification as
	// a final stage (plus die separation for 3D flows to obtain the
	// bump list); a dirty report fails the run with a StageError
	// wrapping *verify.Error.
	Verify bool

	// AfterStage, when set, is invoked after every successful stage
	// with the flow name, stage name and the stage's working state.
	// Used by instrumentation and the fault-injection harness.
	AfterStage func(flow, stage string, st *State)

	// SelfCheck makes every optimization iteration verify its
	// incrementally maintained extraction and timing against a
	// from-scratch recompute (equivalence testing; slow).
	SelfCheck bool

	// Obs, when set, records the run: hierarchical spans (flow →
	// stage → engine phase), per-engine metrics, and the JSONL event
	// stream. nil (the default) disables observability entirely —
	// flows produce byte-identical results either way.
	Obs *obs.Recorder

	// Trace, when set, records the execution timeline: stage slices
	// on a flow-stage track plus per-worker task slices from the
	// parallel engines, exportable as Chrome trace-event JSON
	// (DESIGN.md §14). nil (the default) disables tracing; like Obs,
	// tracing never changes results — flows are byte-identical with
	// it on or off, and it does not enter the stage-cache key.
	Trace *trace.Tracer

	// Workers sets the worker count of the parallel routing and
	// placement engines (the CLI's -j flag): 0 (default) uses every
	// CPU, 1 forces the serial reference path. Results are
	// bit-identical at any setting.
	Workers int

	// FastRoute enables the fast physical-design engines (the CLI's
	// -fast-route flag): the region-sharded router, which routes
	// region-local nets concurrently without the batch engine's serial
	// planning and ordered commits, and the placer's banded parallel
	// legalization. Results stay deterministic at any Workers setting
	// but are NOT bit-identical to the default engines — the flag is
	// part of the result-defining configuration and enters the
	// stage-cache key. PPA stays within the bounds documented in
	// DESIGN.md §15 (wirelength within 10% of the reference).
	FastRoute bool

	// FastRouteVerify, with FastRoute, re-routes each design with the
	// serial reference engine and fails the run if the fast result
	// drifts past the documented PPA bounds. Roughly doubles routing
	// cost; pure checking, so it does not enter the cache key.
	FastRouteVerify bool

	// AnalyticPlace switches global placement to the analytic
	// electrostatics-style engine (the CLI's -analytic-place flag):
	// WA wirelength gradient plus a Poisson bin-density field, with a
	// die-aware weight pricing F2F-bump crossings on nets that span
	// `_MD` macro-die layers. Deterministic at any Workers setting but
	// NOT bit-identical to the default quadratic placer — the flag is
	// part of the result-defining configuration and enters the
	// stage-cache key. HPWL is no worse than the default engine's on
	// the reference tiles (DESIGN.md §16).
	AnalyticPlace bool

	// Cache, when set, enables content-addressed stage checkpointing:
	// completed regions store deterministic snapshots keyed by
	// everything they depend on, and later runs with matching inputs
	// load the snapshot instead of recomputing (DESIGN.md §11).
	// Results are byte-identical with and without the cache. Disabled
	// automatically for runs with a custom Generator or an AfterStage
	// hook, whose state the snapshots cannot capture.
	Cache *stash.Store

	// CacheVerify is the paranoia mode: a cache hit re-runs the region
	// anyway and fails the run unless the recomputed state is
	// bit-identical to the snapshot.
	CacheVerify bool
}

// generate produces a fresh benchmark netlist for a flow run.
func (c Config) generate() (*piton.Tile, error) {
	if c.Generator != nil {
		return c.Generator()
	}
	return piton.Generate(c.Piton)
}

func (c Config) withDefaults() Config {
	if c.LogicMetals == 0 {
		c.LogicMetals = 6
	}
	if c.MacroDieMetals == 0 {
		c.MacroDieMetals = 6
	}
	if c.Util == 0 {
		c.Util = 0.70
	}
	if c.BlockageResolution == 0 {
		c.BlockageResolution = 50
	}
	return c
}

// PPA is the flow outcome — one column of the paper's tables.
type PPA struct {
	Flow   string
	Config string

	FclkMHz     float64 // max clock frequency (slow corner)
	MinPeriodPs float64
	EmeanFJ     float64 // energy per cycle, typical corner, at Fclk
	PowerUW     float64
	LeakageUW   float64

	FootprintMM2     float64 // per-die footprint (A_footprint)
	LogicCellAreaMM2 float64 // A_logic-cells
	MetalAreaMM2     float64 // footprint × metal layers over all dies

	TotalWLm  float64 // routed + clock wire, metres
	F2FBumps  int
	CpinNF    float64
	CwireNF   float64
	ClkDepth  int
	ClkSkewPs float64

	CritPathWLmm float64
	CritPathPs   float64

	RouteOverflow int
	Dies          int

	// Hold sign-off (extension beyond the paper's setup-only flow).
	HoldWNSps      float64
	HoldViolations int

	// Optimization statistics.
	Resized, Buffers int
}

// String renders a one-line summary.
func (p *PPA) String() string {
	return fmt.Sprintf("%s/%s: fclk %.0f MHz, Emean %.0f fJ/cyc, A %.2f mm², WL %.2f m, bumps %d, clk depth %d, critWL %.2f mm",
		p.Flow, p.Config, p.FclkMHz, p.EmeanFJ, p.FootprintMM2, p.TotalWLm, p.F2FBumps, p.ClkDepth, p.CritPathWLmm)
}

// State exposes the full implementation objects of a finished flow for
// visualization and deeper inspection.
type State struct {
	Design *netlist.Design
	Tile   *piton.Tile
	Die    geom.Rect
	FP     *floorplan.Floorplan
	Beol   *tech.BEOL
	DB     *route.DB
	Routes *route.Result
	Tree   *cts.Tree
	ExSlow *extract.Design
	DDB    *ddb.DB
	Report *sta.Report
	Sizing floorplan.Sizing

	// Trace is the instrumented stage-by-stage record of the run,
	// populated even when the flow fails part-way.
	Trace *RunReport
}

// signoff runs the common final analysis as instrumented stages:
// slow-corner extraction, optimization under the given budget (frozen
// for S2D, limited for C2D, full for 2D and Macro-3D), hold STA,
// typical-corner power, PPA assembly. Non-finite extraction or power
// results fail the run instead of propagating into the tables.
func signoff(r *runner, cfg Config, st *State, t *tech.Tech, optCfg opt.Options, dies int, metalLayers int) (*PPA, error) {
	slow := t.CornerScaleFor(tech.CornerSlow)
	typ := t.CornerScaleFor(tech.CornerTypical)

	// The effective optimization budget is resolved up front so the
	// signoff checkpoint's key material matches what the optimizer
	// actually runs with.
	if optCfg.TargetPeriod == 0 {
		optCfg.TargetPeriod = cfg.TargetPeriod
	}
	optCfg.SelfCheck = optCfg.SelfCheck || cfg.SelfCheck

	var resized, buffers int
	body := func() error {
		if err := r.stage(StageExtract, func() error {
			st.ExSlow = extract.Extract(st.Design, st.Routes, st.DB, slow)
			if err := st.ExSlow.CheckFinite(); err != nil {
				return err
			}
			st.DDB = ddb.New(st.Design, st.DB, st.Routes, st.ExSlow, slow)
			st.DDB.AttachObs(r.obs())
			return nil
		}); err != nil {
			return err
		}
		return r.stage(StageOpt, func() error {
			octx := &opt.Context{
				Clock: st.Tree,
				FP:    st.FP, RowHeight: t.RowHeight,
				DDB: st.DDB,
				Obs: r.obs(),
			}
			ores, err := opt.Optimize(octx, sta.Options{}, optCfg)
			if err != nil {
				return fmt.Errorf("%s: optimization: %w", st.Design.Name, err)
			}
			st.Report = ores.Report
			resized, buffers = ores.Resized, ores.Buffers
			st.Routes.Recount(st.DB)
			return nil
		})
	}
	if err := r.checkpointed(signoffCheckpoint(r, st, t, signoffMaterial(optCfg), &resized, &buffers), body); err != nil {
		return nil, err
	}

	// Hold sign-off on the final state.
	var hold *sta.Report
	if err := r.stage(StageSTA, func() error {
		var err error
		hold, err = sta.Analyze(st.Design, st.ExSlow, st.Report.MinPeriod, sta.Options{
			Corner: slow, Clock: st.Tree, CheckHold: true, Obs: r.obs(),
		})
		if err != nil {
			return fmt.Errorf("%s: hold sign-off: %w", st.Design.Name, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Power at the typical corner, at the achieved frequency (or the
	// target, for iso-performance runs).
	var exTyp *extract.Design
	var pw *power.Report
	var fclk float64
	if err := r.stage(StagePower, func() error {
		exTyp = extract.Extract(st.Design, st.Routes, st.DB, typ)
		if err := exTyp.CheckFinite(); err != nil {
			return err
		}
		fclk = 1e6 / st.Report.MinPeriod
		if cfg.TargetPeriod > 0 {
			fclk = 1e6 / cfg.TargetPeriod
		}
		pw = power.Analyze(st.Design, exTyp, st.Tree, fclk, power.Options{Corner: typ})
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"energy/cycle", pw.EnergyPerCycleFJ},
			{"power", pw.PowerUW(fclk)},
			{"leakage", pw.LeakageUW},
		} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				return fmt.Errorf("power: non-finite %s (%v)", v.name, v.val)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	p := &PPA{
		Config:      st.Design.Name,
		FclkMHz:     fclk,
		MinPeriodPs: st.Report.MinPeriod,
		EmeanFJ:     pw.EnergyPerCycleFJ,
		PowerUW:     pw.PowerUW(fclk),
		LeakageUW:   pw.LeakageUW,

		FootprintMM2:     st.Die.Area() / 1e6,
		LogicCellAreaMM2: opt.LogicCellArea(st.Design) / 1e6,
		MetalAreaMM2:     st.Die.Area() / 1e6 * float64(metalLayers),

		TotalWLm: (st.Routes.WL + st.Tree.Wirelength) / 1e6,
		F2FBumps: st.Routes.F2FBumps,
		CpinNF:   (exTyp.CPinTotal + st.Tree.PinCap) / 1e6,
		CwireNF:  (exTyp.CWireTotal + st.Tree.WireCap) / 1e6,

		ClkDepth:  st.Tree.Depth,
		ClkSkewPs: st.Tree.Skew,

		CritPathWLmm: st.Report.Critical.Wirelength / 1e3,
		CritPathPs:   st.Report.Critical.Delay,

		HoldWNSps:      hold.HoldWNS,
		HoldViolations: hold.HoldViolations,

		RouteOverflow: st.Routes.Overflow,
		Dies:          dies,
		Resized:       resized,
		Buffers:       buffers,
	}
	return p, nil
}

// signoffMaterial is the signoff checkpoint's own key material: the
// resolved optimization budget. SelfCheck is excluded — it verifies,
// it never changes results.
func signoffMaterial(o opt.Options) []byte {
	e := stash.NewEnc()
	e.Int(o.MaxIters)
	e.Int(o.MaxMovesPerIter)
	e.F64(o.BufferElmore)
	e.F64(o.BufferSpan)
	e.F64(o.FanoutCap)
	e.F64(o.TargetPeriod)
	e.Bool(o.Frozen)
	e.Bool(o.FullRecompute)
	return e.Bytes()
}

// verifyStage runs the optional independent sign-off check. For 3D
// flows (md != nil) the dies are first separated so the bump list can
// be checked against the bonding pitch. A dirty report fails the run
// with a StageError wrapping *verify.Error.
func verifyStage(r *runner, cfg Config, st *State, t *tech.Tech, md *core.MoLDesign) error {
	if !cfg.Verify {
		return nil
	}
	var bumps []geom.Point
	if md != nil {
		if err := r.stage(StageSeparate, func() error {
			logicPart, _, err := core.Separate(md, st.Routes, st.DB)
			if err != nil {
				return err
			}
			bumps = logicPart.Bumps
			return nil
		}); err != nil {
			return err
		}
	}
	return r.stage(StageVerify, func() error {
		f2f := t.F2F
		if cfg.F2F != nil {
			f2f = *cfg.F2F
		}
		rep := verify.Full(st.Design, st.Die, st.Routes, bumps, f2f, nil)
		if reg := r.obs().Reg(); reg != nil {
			reg.Counter("verify_violations_total",
				"Sign-off verification violations found, duplicates included.").Add(uint64(rep.Total))
			reg.Counter("verify_checked_instances_total",
				"Instances examined by sign-off verification.").Add(uint64(rep.Checked.Instances))
			reg.Counter("verify_checked_nets_total",
				"Nets examined by sign-off verification.").Add(uint64(rep.Checked.Nets))
		}
		if !rep.Clean() {
			return &verify.Error{Report: rep}
		}
		return nil
	})
}

// buildClock synthesizes the clock tree for the placed design.
func buildClock(st *State) {
	d := st.Design
	clk := d.Net("clk")
	src := geom.Pt(st.Die.Lx, st.Die.Center().Y)
	if p := d.Port("clk_i"); p != nil {
		src = p.Loc
	}
	st.Tree = cts.Build(d, clk, src, d.Lib, st.Beol, cts.Options{})
}
