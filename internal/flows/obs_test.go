package flows

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"macro3d/internal/obs"
	"macro3d/internal/piton"
)

// recordedRun executes the tiny Macro-3D flow with a live recorder and
// returns the outcome plus the captured JSONL stream.
func recordedRun(t *testing.T) (*PPA, *State, *obs.Recorder, string) {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.New()
	rec.SetSink(&buf)
	cfg := Config{Piton: piton.Tiny(), Seed: 7, Verify: true, Obs: rec}
	ppa, st, _, err := RunMacro3D(cfg)
	if err != nil {
		t.Fatalf("recorded run failed: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("event sink: %v", err)
	}
	return ppa, st, rec, buf.String()
}

// TestObsDisabledIsByteIdentical is the zero-overhead contract: the
// same flow with observability off (nil Recorder, the default) and on
// must produce byte-identical results — identical PPA in every field
// and the same stage sequence. Instrumentation may observe the flow,
// never steer it.
func TestObsDisabledIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two tiny flows")
	}
	off, stOff, _, err := RunMacro3D(Config{Piton: piton.Tiny(), Seed: 7, Verify: true})
	if err != nil {
		t.Fatalf("unrecorded run failed: %v", err)
	}
	on, stOn, _, events := recordedRun(t)

	if !reflect.DeepEqual(*off, *on) {
		t.Errorf("PPA differs with observability on:\noff: %#v\non:  %#v", *off, *on)
	}
	if got, want := fmt.Sprintf("%#v", *on), fmt.Sprintf("%#v", *off); got != want {
		t.Errorf("PPA rendering not byte-identical:\noff: %s\non:  %s", want, got)
	}
	var offStages, onStages []string
	for _, s := range stOff.Trace.Stages {
		offStages = append(offStages, s.Stage)
	}
	for _, s := range stOn.Trace.Stages {
		onStages = append(onStages, s.Stage)
	}
	if !reflect.DeepEqual(offStages, onStages) {
		t.Errorf("stage sequence differs:\noff: %v\non:  %v", offStages, onStages)
	}
	if strings.TrimSpace(events) == "" {
		t.Error("recorded run produced an empty event stream")
	}
}

// TestSpanTreeMatchesRunReport cross-checks the two views of the same
// run: the JSONL span tree (flow root, one child span per stage
// attempt) must list exactly the stages the RunReport recorded, in the
// same order, and the flow root must close last, marked completed.
func TestSpanTreeMatchesRunReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiny flow")
	}
	_, st, _, events := recordedRun(t)

	type ev struct {
		T      int64          `json:"t"`
		Ev     string         `json:"ev"`
		ID     int64          `json:"id"`
		Parent int64          `json:"parent"`
		Span   string         `json:"span"`
		Metric string         `json:"metric"`
		Attrs  map[string]any `json:"attrs"`
	}
	var rootID, lastT int64 = 0, -1
	var stageSpans []string
	var rootClosed bool
	var rootAttrs map[string]any
	sawCompletedSample := false
	for _, line := range strings.Split(strings.TrimSpace(events), "\n") {
		var e ev
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
		if e.T < lastT {
			t.Fatalf("timestamps not monotonic at %q", line)
		}
		lastT = e.T
		switch {
		case e.Ev == "span_open" && e.Span == "macro3d" && e.Parent == 0:
			rootID = e.ID
		case e.Ev == "span_close" && e.Parent == rootID && rootID != 0:
			// Direct children of the flow root are stage spans named
			// "macro3d/<stage>"; engine phase spans sit deeper.
			stageSpans = append(stageSpans, strings.TrimPrefix(e.Span, "macro3d/"))
		case e.Ev == "span_close" && e.ID == rootID && rootID != 0:
			rootClosed = true
			rootAttrs = e.Attrs
		case e.Ev == "sample" && e.Metric == "flow_runs_completed_total":
			sawCompletedSample = true
		}
	}

	var want []string
	for _, s := range st.Trace.Stages {
		want = append(want, s.Stage)
	}
	if !reflect.DeepEqual(stageSpans, want) {
		t.Errorf("span tree stage sequence does not match RunReport:\nspans:  %v\nreport: %v", stageSpans, want)
	}
	if !rootClosed {
		t.Fatal("flow root span never closed")
	}
	if v, ok := rootAttrs["completed"]; !ok || v != true {
		t.Errorf("flow root close lacks completed=true: %v", rootAttrs)
	}
	if !sawCompletedSample {
		t.Error("no sample event for flow_runs_completed_total in the stream")
	}
}

// TestMetricsEndpointServesEngineFamilies runs a recorded flow and
// scrapes the live handler: /metrics must be parseable Prometheus text
// exposition carrying at least the router, placer, STA and design-
// database metric families, and /metrics.json must be valid JSON of
// the same snapshot.
func TestMetricsEndpointServesEngineFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiny flow")
	}
	_, _, rec, _ := recordedRun(t)

	get := func(path string) string {
		t.Helper()
		w := httptest.NewRecorder()
		rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != 200 {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
		return w.Body.String()
	}

	text := get("/metrics")
	for _, family := range []string{"route_", "place_", "sta_", "ddb_", "verify_", "flow_runs_completed_total"} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics lacks the %s family:\n%s", family, text)
		}
	}
	// Every line is a comment or "<name>[{labels}] <value>".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}

	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("/metrics.json snapshot is empty")
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars lacks memstats")
	}
}
