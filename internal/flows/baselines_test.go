package flows

import (
	"sort"
	"strings"
	"testing"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/tech"
)

// tinyCfg keeps flow-level tests fast.
func tinyCfg() Config {
	return Config{Piton: piton.Tiny(), Seed: 5}
}

func TestRunS2DTiny(t *testing.T) {
	ppa, st, err := RunS2D(tinyCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ppa)
	if ppa.Flow != "S2D" || ppa.Dies != 2 {
		t.Fatalf("identity: %+v", ppa)
	}
	if ppa.F2FBumps == 0 {
		t.Fatal("S2D produced no bumps despite tier partitioning")
	}
	// The frozen sign-off must not have inserted buffers or resized.
	if ppa.Resized != 0 || ppa.Buffers != 0 {
		t.Fatalf("frozen S2D sign-off made %d/%d edits", ppa.Resized, ppa.Buffers)
	}
	// Cells ended up on both dies (bin-balanced partitioning).
	onMacro := 0
	for _, c := range st.Design.StdCells() {
		if c.Die == netlist.MacroDie {
			onMacro++
		}
	}
	if onMacro == 0 {
		t.Fatal("no cells on the macro die after partitioning")
	}
	// Macro-die cells carry _MD pin layers.
	for _, c := range st.Design.StdCells() {
		if c.Die == netlist.MacroDie {
			if !strings.HasSuffix(c.Master.Pins[0].Layer, "_MD") {
				t.Fatalf("macro-die cell %s pins on %s", c.Name, c.Master.Pins[0].Layer)
			}
			break
		}
	}
}

func TestRunBFS2DTiny(t *testing.T) {
	ppa, st, err := RunS2D(tinyCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ppa)
	if ppa.Flow != "BF S2D" {
		t.Fatalf("flow name %q", ppa.Flow)
	}
	// Balanced floorplan: macros on both dies.
	nl, nm := 0, 0
	for _, m := range st.Design.Macros() {
		if m.Die == netlist.LogicDie {
			nl++
		} else {
			nm++
		}
	}
	if nl == 0 || nm == 0 {
		t.Fatalf("BF floorplan not balanced: %d/%d", nl, nm)
	}
}

func TestRunC2DTiny(t *testing.T) {
	ppa, _, err := RunC2D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ppa)
	if ppa.Flow != "C2D" || ppa.Dies != 2 {
		t.Fatalf("identity: %+v", ppa)
	}
	if ppa.F2FBumps == 0 {
		t.Fatal("C2D produced no bumps")
	}
}

func TestBaselinesDoNotBeat2DOnTiny(t *testing.T) {
	// Even at the tiny scale the pseudo-flows should not outperform
	// the 2D baseline (the paper's macro-heavy regime holds: tiny is
	// still >50 % macro area).
	p2d, _, err := Run2D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	ps2d, _, err := RunS2D(tinyCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	if ps2d.FclkMHz > p2d.FclkMHz*1.05 {
		t.Fatalf("S2D (%f) beat 2D (%f) — mechanism broken", ps2d.FclkMHz, p2d.FclkMHz)
	}
}

func TestMacro3DTinyAndSeparation(t *testing.T) {
	ppa, st, md, err := RunMacro3D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ppa)
	if md.EditedMacros == 0 || ppa.F2FBumps == 0 {
		t.Fatal("Macro-3D identity broken")
	}
	// Footprint halves against 2D with the same seed.
	p2d, _, err := Run2D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := ppa.FootprintMM2 / p2d.FootprintMM2
	if r < 0.45 || r > 0.55 {
		t.Fatalf("footprint ratio = %v", r)
	}
	_ = st
}

func TestGeneratorHookSensor(t *testing.T) {
	cfg := Config{Seed: 7, Generator: func() (*piton.Tile, error) {
		sc := piton.DefaultSensorSoC()
		sc.Sensors = 4
		sc.Stages = 2
		sc.StageWidth = 8
		sc.TargetLogicArea = 0.01e6
		return piton.GenerateSensorSoC(sc)
	}}
	p2d, _, err := Run2D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MacroDieMetals = 4
	p3d, _, _, err := RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sensor tiny: 2D %.0f MHz vs M3D %.0f MHz", p2d.FclkMHz, p3d.FclkMHz)
	if p3d.FootprintMM2 >= p2d.FootprintMM2 {
		t.Fatal("sensor 3D footprint not reduced")
	}
	if p3d.MetalAreaMM2 >= p2d.MetalAreaMM2*2 {
		t.Fatal("heterogeneous stack shows no metal saving vs doubled 2D")
	}
	// S2D must reject custom generators.
	if _, _, err := RunS2D(cfg, false); err == nil {
		t.Fatal("S2D accepted a custom generator")
	}
	if _, _, err := RunC2D(cfg); err == nil {
		t.Fatal("C2D accepted a custom generator")
	}
}

func TestIsoPerformanceTargetPeriod(t *testing.T) {
	p2d, _, err := Run2D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg()
	cfg.TargetPeriod = p2d.MinPeriodPs
	p3dIso, _, _, err := RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Iso run reports at the target frequency…
	if p3dIso.FclkMHz != 1e6/p2d.MinPeriodPs {
		t.Fatalf("iso fclk %.1f, want %.1f", p3dIso.FclkMHz, 1e6/p2d.MinPeriodPs)
	}
	// …and meets the target.
	if p3dIso.MinPeriodPs > p2d.MinPeriodPs*1.001 {
		t.Fatalf("iso run missed target: %.0f > %.0f", p3dIso.MinPeriodPs, p2d.MinPeriodPs)
	}
	// Iso power ≤ max-performance power (less aggressive sizing).
	cfgMax := tinyCfg()
	p3dMax, _, _, err := RunMacro3D(cfgMax)
	if err != nil {
		t.Fatal(err)
	}
	if p3dIso.PowerUW > p3dMax.PowerUW*1.05 {
		t.Fatalf("iso power %.1f exceeds max-perf power %.1f", p3dIso.PowerUW, p3dMax.PowerUW)
	}
}

func TestFlowsDeterministicTiny(t *testing.T) {
	a, _, err := Run2D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run2D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("2D flow not deterministic:\n%+v\n%+v", a, b)
	}
	c, _, _, err := RunMacro3D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	d, _, _, err := RunMacro3D(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if *c != *d {
		t.Fatal("Macro-3D flow not deterministic")
	}
}

func TestTableIIIShapeTiny(t *testing.T) {
	// M6–M4 ablation on the tiny tile: fclk within a few percent,
	// metal area exactly −16.7 %.
	c6 := tinyCfg()
	c6.MacroDieMetals = 6
	p6, _, _, err := RunMacro3D(c6)
	if err != nil {
		t.Fatal(err)
	}
	c4 := tinyCfg()
	c4.MacroDieMetals = 4
	p4, _, _, err := RunMacro3D(c4)
	if err != nil {
		t.Fatal(err)
	}
	if r := p4.MetalAreaMM2 / p6.MetalAreaMM2; r < 0.82 || r > 0.85 {
		t.Fatalf("metal ratio = %v, want 10/12", r)
	}
	if r := p4.FclkMHz / p6.FclkMHz; r < 0.85 || r > 1.15 {
		t.Fatalf("fclk ratio = %v, ablation should be nearly free", r)
	}
}

func TestArrayTimingClosure2D(t *testing.T) {
	// The §V-1 claim: a tile signed off with half-cycle inter-tile
	// constraints composes into arrays that meet the tile frequency.
	cfg := tinyCfg()
	_, st, err := Run2D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tech6, _ := tech.New28(6)
	rep, err := VerifyTileArray(cfg, st, tech6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2x2 array: tile %.0f ps vs array %.0f ps (closes=%v)",
		rep.TilePeriod, rep.ArrayPeriod, rep.ClosesAtTile)
	if !rep.ClosesAtTile {
		t.Fatalf("array misses tile timing: %.0f > %.0f ps", rep.ArrayPeriod, rep.TilePeriod)
	}
	if rep.F2FBumps != 0 {
		t.Fatal("2D array has F2F bumps")
	}
}

func TestArrayTimingClosureMacro3D(t *testing.T) {
	cfg := tinyCfg()
	_, st, _, err := RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tech6, _ := tech.New28(6)
	rep, err := VerifyTileArray(cfg, st, tech6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3D 2x2 array: tile %.0f ps vs array %.0f ps, %d bumps",
		rep.TilePeriod, rep.ArrayPeriod, rep.F2FBumps)
	if !rep.ClosesAtTile {
		t.Fatalf("3D array misses tile timing: %.0f > %.0f ps", rep.ArrayPeriod, rep.TilePeriod)
	}
	// Each of the 4 tiles contributes its macro-access bumps.
	if rep.F2FBumps == 0 {
		t.Fatal("3D array lost its F2F bumps")
	}
}

func TestSignoffIsPhysicallyLegal(t *testing.T) {
	// The optimizer's ECO placement must leave every flow's result
	// legal: re-check independently (same checks internal/verify runs;
	// spelled out here to avoid an import cycle).
	for _, run := range []struct {
		name string
		st   func() (*State, error)
	}{
		{"2D", func() (*State, error) { _, st, err := Run2D(tinyCfg()); return st, err }},
		{"Macro3D", func() (*State, error) { _, st, _, err := RunMacro3D(tinyCfg()); return st, err }},
	} {
		st, err := run.st()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		type box struct {
			r    geom.Rect
			name string
			die  netlist.Die
		}
		var cells []box
		for _, inst := range st.Design.Instances {
			if !inst.Placed || inst.IsMacro() {
				continue
			}
			b := inst.Bounds()
			if !st.Die.ContainsRect(b.Expand(-1e-7)) {
				t.Errorf("%s: %s off-die at %v", run.name, inst.Name, b)
			}
			cells = append(cells, box{b, inst.Name, inst.Die})
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].r.Lx < cells[j].r.Lx })
		overlaps := 0
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells) && cells[j].r.Lx < cells[i].r.Ux-1e-9; j++ {
				if cells[i].die == cells[j].die &&
					cells[i].r.Expand(-1e-7).Intersects(cells[j].r) {
					overlaps++
					if overlaps < 4 {
						t.Errorf("%s: %s overlaps %s", run.name, cells[i].name, cells[j].name)
					}
				}
			}
		}
		if overlaps > 0 {
			t.Fatalf("%s: %d overlaps after sign-off", run.name, overlaps)
		}
	}
}
