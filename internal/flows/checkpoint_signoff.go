package flows

import (
	"fmt"

	"macro3d/internal/cell"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
	"macro3d/internal/sta"
	"macro3d/internal/stash"
	"macro3d/internal/tech"
)

// netStateWire is one net's connectivity in a signoff snapshot.
// Existing nets are overwritten wholesale because buffer insertion
// rewires their sinks; appended nets additionally carry their name.
type netStateWire struct {
	name   string
	clock  bool
	weight float64
	driver pinRefWire
	sinks  []pinRefWire
}

func encodeNetState(e *stash.Enc, n *netlist.Net, withName bool) {
	if withName {
		e.Str(n.Name)
	}
	e.Bool(n.Clock)
	e.F64(n.Weight)
	encodePinRef(e, n.Driver)
	e.Int(len(n.Sinks))
	for _, s := range n.Sinks {
		encodePinRef(e, s)
	}
}

func decodeNetState(dec *stash.Dec, withName bool) netStateWire {
	var w netStateWire
	if withName {
		w.name = dec.Str()
	}
	w.clock = dec.Bool()
	w.weight = dec.F64()
	w.driver = decodePinRefWire(dec)
	n := dec.Int()
	for i := 0; i < n && dec.Err() == nil; i++ {
		w.sinks = append(w.sinks, decodePinRefWire(dec))
	}
	return w
}

func (w netStateWire) validate(nInst, nPort int) error {
	if err := w.driver.validate(nInst, nPort); err != nil {
		return err
	}
	for _, s := range w.sinks {
		if err := s.validate(nInst, nPort); err != nil {
			return err
		}
	}
	return nil
}

func (w netStateWire) apply(d *netlist.Design, net *netlist.Net) {
	net.Clock = w.clock
	net.Weight = w.weight
	net.Driver = w.driver.resolve(d)
	net.Sinks = make([]netlist.PinRef, len(w.sinks))
	for i, s := range w.sinks {
		net.Sinks[i] = s.resolve(d)
	}
}

func encodeReport(e *stash.Enc, rep *sta.Report) {
	e.F64(rep.MinPeriod)
	e.F64(rep.FmaxMHz)
	e.F64(rep.WNS)
	e.F64(rep.TNS)
	encodePath(e, rep.Critical)
	e.Int(len(rep.Paths))
	for _, p := range rep.Paths {
		encodePath(e, p)
	}
	e.Int(rep.Endpoints)
	e.F64(rep.HoldWNS)
	e.Int(rep.HoldViolations)
	e.Int(rep.HoldEndpoints)
}

func encodePath(e *stash.Enc, p sta.Path) {
	e.Int(len(p.Steps))
	for _, s := range p.Steps {
		encodePinRef(e, s.Ref)
		e.F64(s.Arrival)
	}
	e.F64(p.Delay)
	e.F64(p.Wirelength)
	e.Bool(p.HalfCycle)
}

type pathStepWire struct {
	ref     pinRefWire
	arrival float64
}

type pathWire struct {
	steps []pathStepWire
	delay float64
	wl    float64
	half  bool
}

type reportWire struct {
	minPeriod, fmax, wns, tns float64
	critical                  pathWire
	paths                     []pathWire
	endpoints                 int
	holdWNS                   float64
	holdViol, holdEnds        int
}

func decodePathWire(dec *stash.Dec) pathWire {
	var w pathWire
	n := dec.Int()
	for i := 0; i < n && dec.Err() == nil; i++ {
		w.steps = append(w.steps, pathStepWire{ref: decodePinRefWire(dec), arrival: dec.F64()})
	}
	w.delay = dec.F64()
	w.wl = dec.F64()
	w.half = dec.Bool()
	return w
}

func decodeReportWire(dec *stash.Dec) reportWire {
	var w reportWire
	w.minPeriod = dec.F64()
	w.fmax = dec.F64()
	w.wns = dec.F64()
	w.tns = dec.F64()
	w.critical = decodePathWire(dec)
	n := dec.Int()
	for i := 0; i < n && dec.Err() == nil; i++ {
		w.paths = append(w.paths, decodePathWire(dec))
	}
	w.endpoints = dec.Int()
	w.holdWNS = dec.F64()
	w.holdViol = dec.Int()
	w.holdEnds = dec.Int()
	return w
}

func (w pathWire) validate(nInst, nPort int) error {
	for _, s := range w.steps {
		if err := s.ref.validate(nInst, nPort); err != nil {
			return err
		}
	}
	return nil
}

func (w reportWire) validate(nInst, nPort int) error {
	if err := w.critical.validate(nInst, nPort); err != nil {
		return err
	}
	for _, p := range w.paths {
		if err := p.validate(nInst, nPort); err != nil {
			return err
		}
	}
	return nil
}

func (w pathWire) build(d *netlist.Design) sta.Path {
	p := sta.Path{Delay: w.delay, Wirelength: w.wl, HalfCycle: w.half}
	p.Steps = make([]sta.PathStep, len(w.steps))
	for i, s := range w.steps {
		p.Steps[i] = sta.PathStep{Ref: s.ref.resolve(d), Arrival: s.arrival}
	}
	return p
}

func (w reportWire) build(d *netlist.Design) *sta.Report {
	rep := &sta.Report{
		MinPeriod: w.minPeriod, FmaxMHz: w.fmax, WNS: w.wns, TNS: w.tns,
		Critical: w.critical.build(d), Endpoints: w.endpoints,
		HoldWNS: w.holdWNS, HoldViolations: w.holdViol, HoldEndpoints: w.holdEnds,
	}
	rep.Paths = make([]sta.Path, len(w.paths))
	for i, p := range w.paths {
		rep.Paths[i] = p.build(d)
	}
	return rep
}

// signoffCheckpoint snapshots the extract+opt region: the design delta
// optimization produced (resizes, inserted buffers and their nets,
// rewired sinks), the post-ECO routes and DB dynamic state, and the
// timing report. Slow-corner extraction is cheap and pure, so on load
// it re-runs from scratch rather than being stored — incremental and
// from-scratch extraction are bit-identical by the ddb equivalence
// guarantee.
func signoffCheckpoint(r *runner, st *State, t *tech.Tech, material []byte, resized, buffers *int) checkpoint {
	d := st.Design
	preInst, preNet := d.Counts()
	return checkpoint{
		name:     "signoff",
		material: material,
		save: func(e *stash.Enc) error {
			e.Str(d.Name)
			e.Int(preInst)
			e.Int(preNet)
			e.Int(len(d.Instances))
			e.Int(len(d.Nets))
			for i, inst := range d.Instances {
				encodeInstState(e, inst, i >= preInst)
			}
			for i, n := range d.Nets {
				encodeNetState(e, n, i >= preNet)
			}
			encodeResult(e, st.Routes)
			u, h, f := st.DB.DynState()
			e.I32s(u)
			e.F32s(h)
			e.I32s(f)
			encodeReport(e, st.Report)
			e.Int(*resized)
			e.Int(*buffers)
			return nil
		},
		load: func(dec *stash.Dec) error {
			// Phase 1: decode and validate everything against the live
			// design without touching it, so a bad snapshot falls back
			// to the cold path with the design intact.
			if name := dec.Str(); dec.Err() == nil && name != d.Name {
				return fmt.Errorf("signoff snapshot is for design %q, running %q", name, d.Name)
			}
			if pi, pn := dec.Int(), dec.Int(); dec.Err() == nil && (pi != preInst || pn != preNet) {
				return fmt.Errorf("signoff snapshot base %d/%d, design at %d/%d", pi, pn, preInst, preNet)
			}
			postInst := dec.Int()
			postNet := dec.Int()
			if dec.Err() == nil && (postInst < preInst || postNet < preNet) {
				return fmt.Errorf("signoff snapshot shrinks the design")
			}
			insts := make([]instStateWire, 0, preInst)
			for i := 0; i < postInst && dec.Err() == nil; i++ {
				insts = append(insts, decodeInstState(dec, i >= preInst))
			}
			nets := make([]netStateWire, 0, preNet)
			for i := 0; i < postNet && dec.Err() == nil; i++ {
				nets = append(nets, decodeNetState(dec, i >= preNet))
			}
			routes := decodeResultWire(dec)
			u := dec.I32s()
			h := dec.F32s()
			f := dec.I32s()
			rep := decodeReportWire(dec)
			nResized := dec.Int()
			nBuffers := dec.Int()
			if err := dec.Done(); err != nil {
				return err
			}

			mdCache := map[string]*cell.Cell{}
			for i := range insts {
				var cur *cell.Cell
				if i < preInst {
					cur = d.Instances[i].Master
				} else {
					if d.Instance(insts[i].name) != nil {
						return fmt.Errorf("signoff snapshot appends instance %q, which already exists", insts[i].name)
					}
					if insts[i].name == "" {
						return fmt.Errorf("signoff snapshot appends an unnamed instance")
					}
				}
				m, err := resolveMaster(d, cur, insts[i].master, mdCache)
				if err != nil {
					return err
				}
				insts[i].resolved = m
			}
			for i := range nets {
				if i >= preNet {
					if d.Net(nets[i].name) != nil {
						return fmt.Errorf("signoff snapshot appends net %q, which already exists", nets[i].name)
					}
					if nets[i].name == "" {
						return fmt.Errorf("signoff snapshot appends an unnamed net")
					}
				}
				if err := nets[i].validate(postInst, len(d.Ports)); err != nil {
					return err
				}
			}
			if len(routes.routes) != postNet {
				return fmt.Errorf("signoff snapshot routes %d nets, design will have %d", len(routes.routes), postNet)
			}
			cu, ch, cf := st.DB.DynState()
			if len(u) != len(cu) || len(h) != len(ch) || len(f) != len(cf) {
				return fmt.Errorf("signoff snapshot dyn state shape mismatch")
			}
			if err := rep.validate(postInst, len(d.Ports)); err != nil {
				return err
			}

			// Phase 2: apply. Nothing below can fail.
			for i := preInst; i < postInst; i++ {
				inst := d.AddInstance(insts[i].name, insts[i].resolved)
				insts[i].apply(inst)
			}
			for i := 0; i < preInst; i++ {
				insts[i].apply(d.Instances[i])
			}
			for i := preNet; i < postNet; i++ {
				net := d.AddNet(nets[i].name, nets[i].driver.resolve(d))
				nets[i].apply(d, net)
			}
			for i := 0; i < preNet; i++ {
				nets[i].apply(d, d.Nets[i])
			}
			st.Routes = routes.build(d)
			st.DB.SetDynState(u, h, f)
			slow := t.CornerScaleFor(tech.CornerSlow)
			st.ExSlow = extract.Extract(d, st.Routes, st.DB, slow)
			st.DDB = ddb.New(d, st.DB, st.Routes, st.ExSlow, slow)
			st.DDB.AttachObs(r.obs())
			st.Report = rep.build(d)
			*resized = nResized
			*buffers = nBuffers
			return nil
		},
	}
}
