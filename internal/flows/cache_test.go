package flows

import (
	"context"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"macro3d/internal/piton"
	"macro3d/internal/stash"
)

func tinyCacheCfg() Config {
	return Config{Piton: piton.Tiny(), Seed: 7}
}

// runFlow normalizes the four flow entry points to (PPA, error).
func runFlow(t *testing.T, flow string, cfg Config) *PPA {
	t.Helper()
	var ppa *PPA
	var err error
	switch flow {
	case "2d":
		ppa, _, err = Run2DCtx(context.Background(), cfg)
	case "macro3d":
		ppa, _, _, err = RunMacro3DCtx(context.Background(), cfg)
	case "s2d":
		ppa, _, err = RunS2DCtx(context.Background(), cfg, false)
	case "bfs2d":
		ppa, _, err = RunS2DCtx(context.Background(), cfg, true)
	case "c2d":
		ppa, _, err = RunC2DCtx(context.Background(), cfg)
	default:
		t.Fatalf("unknown flow %q", flow)
	}
	if err != nil {
		t.Fatalf("%s: %v", flow, err)
	}
	return ppa
}

// TestStageCacheEquivalence pins the cache's core contract for every
// flow: an uncached run, a cold cached run and a warm cached run all
// produce identical PPA, and the warm run serves every checkpoint from
// the cache.
func TestStageCacheEquivalence(t *testing.T) {
	for _, flow := range []string{"2d", "macro3d", "s2d", "bfs2d", "c2d"} {
		t.Run(flow, func(t *testing.T) {
			base := runFlow(t, flow, tinyCacheCfg())

			dir := t.TempDir()
			cold, err := stash.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyCacheCfg()
			cfg.Cache = cold
			coldPPA := runFlow(t, flow, cfg)
			cs := cold.Stats()
			if cs.Misses == 0 || cs.Puts == 0 || cs.Hits != 0 {
				t.Errorf("cold stats = %+v; want misses and puts, no hits", cs)
			}

			warm, err := stash.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg = tinyCacheCfg()
			cfg.Cache = warm
			warmPPA := runFlow(t, flow, cfg)
			ws := warm.Stats()
			if ws.Hits == 0 || ws.Misses != 0 {
				t.Errorf("warm stats = %+v; want all hits, no misses", ws)
			}

			if !reflect.DeepEqual(base, coldPPA) {
				t.Errorf("cold cached PPA differs from uncached:\n  %+v\n  %+v", base, coldPPA)
			}
			if !reflect.DeepEqual(base, warmPPA) {
				t.Errorf("warm cached PPA differs from uncached:\n  %+v\n  %+v", base, warmPPA)
			}
		})
	}
}

// TestStageCachePrefixSharing pins that runs differing only in
// TargetPeriod share the place and route snapshots: the target enters
// the chain at the signoff checkpoint, not the root key.
func TestStageCachePrefixSharing(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheCfg()
	cfg.Cache = s
	maxPerf := runFlow(t, "macro3d", cfg)

	s2, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCacheCfg()
	cfg.Cache = s2
	cfg.TargetPeriod = maxPerf.MinPeriodPs * 2
	runFlow(t, "macro3d", cfg)
	st := s2.Stats()
	if st.Hits < 2 {
		t.Errorf("iso-performance run should hit the shared place+route prefix, stats = %+v", st)
	}
	if st.Misses == 0 {
		t.Errorf("iso-performance run must re-run signoff (different target), stats = %+v", st)
	}
}

// TestStageCacheKeyStability pins the -j independence of the cache:
// serial and parallel runs produce identical keys (file names) and
// bit-identical snapshot bytes.
func TestStageCacheKeyStability(t *testing.T) {
	snapshots := func(workers int) map[string][]byte {
		dir := t.TempDir()
		s, err := stash.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := tinyCacheCfg()
		cfg.Cache = s
		cfg.Workers = workers
		runFlow(t, "macro3d", cfg)
		out := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = b
		}
		return out
	}

	serial := snapshots(1)
	parallel := snapshots(0)
	if len(serial) == 0 {
		t.Fatal("no snapshots written")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial run wrote %d snapshots, parallel %d", len(serial), len(parallel))
	}
	for name, b := range serial {
		pb, ok := parallel[name]
		if !ok {
			t.Errorf("parallel run lacks snapshot %s (key mismatch)", name)
			continue
		}
		if string(b) != string(pb) {
			t.Errorf("snapshot %s differs between -j 1 and -j 0", name)
		}
	}
}

// TestStageCacheCorruptionRecovery truncates every snapshot after a
// cold run: the warm run must treat them as misses, evict them,
// recompute, and still produce identical PPA — never panic or resume
// from garbage.
func TestStageCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheCfg()
	cfg.Cache = s
	cold := runFlow(t, "s2d", cfg)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no snapshots written")
	}
	for i, e := range entries {
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			b = b[:len(b)/2] // truncation
		} else {
			b[len(b)-1] ^= 0x10 // bit flip
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCacheCfg()
	cfg.Cache = warm
	recomputed := runFlow(t, "s2d", cfg)
	ws := warm.Stats()
	if ws.Evictions == 0 || ws.Misses == 0 {
		t.Errorf("corrupt snapshots must evict and miss, stats = %+v", ws)
	}
	if !reflect.DeepEqual(cold, recomputed) {
		t.Errorf("recovery PPA differs:\n  %+v\n  %+v", cold, recomputed)
	}
}

// TestStageCachePayloadCorruptionFallsBack re-frames a snapshot with a
// truncated payload — a valid checksum over wrong content — to pin the
// decode-validate-then-apply loader: the load fails cleanly, the entry
// is evicted, and the stage recomputes to the same result.
func TestStageCachePayloadCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheCfg()
	cfg.Cache = s
	cold := runFlow(t, "macro3d", cfg)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rewrap, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		hexKey := strings.TrimSuffix(e.Name(), ".snap")
		raw, err := hex.DecodeString(hexKey)
		if err != nil || len(raw) != len(stash.Key{}) {
			t.Fatalf("unexpected snapshot name %q", e.Name())
		}
		var k stash.Key
		copy(k[:], raw)
		payload, ok := rewrap.Get(k)
		if !ok {
			t.Fatalf("cannot read back %s", e.Name())
		}
		// Put is first-writer-wins (a present entry is never rewritten),
		// so displace the good snapshot before re-framing the truncated
		// payload under the same key.
		rewrap.Evict(k)
		if err := rewrap.Put(k, payload[:len(payload)*2/3]); err != nil {
			t.Fatal(err)
		}
	}

	warm, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCacheCfg()
	cfg.Cache = warm
	recomputed := runFlow(t, "macro3d", cfg)
	ws := warm.Stats()
	if ws.Evictions == 0 {
		t.Errorf("undecodable snapshots must be evicted, stats = %+v", ws)
	}
	if !reflect.DeepEqual(cold, recomputed) {
		t.Errorf("fallback PPA differs:\n  %+v\n  %+v", cold, recomputed)
	}
}

// TestStageCacheVerify runs the paranoia mode against a warm cache:
// every hit re-runs and must confirm bit-identical state.
func TestStageCacheVerify(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheCfg()
	cfg.Cache = s
	cold := runFlow(t, "2d", cfg)

	warm, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCacheCfg()
	cfg.Cache = warm
	cfg.CacheVerify = true
	verified := runFlow(t, "2d", cfg)
	ws := warm.Stats()
	if ws.Hits == 0 {
		t.Errorf("verify run should still count hits, stats = %+v", ws)
	}
	if ws.Errors != 0 || ws.Evictions != 0 {
		t.Errorf("verify run found mismatches, stats = %+v", ws)
	}
	if !reflect.DeepEqual(cold, verified) {
		t.Errorf("verified PPA differs:\n  %+v\n  %+v", cold, verified)
	}
}

// TestStageCacheDisabledWithHooks pins that runs with state-mutating
// hooks never read or write the cache.
func TestStageCacheDisabledWithHooks(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCacheCfg()
	cfg.Cache = s
	cfg.AfterStage = func(flow, stage string, st *State) {}
	runFlow(t, "2d", cfg)
	if st := s.Stats(); st.Hits+st.Misses+st.Puts != 0 {
		t.Errorf("hooked run touched the cache: %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("hooked run wrote %d snapshots", len(entries))
	}
}
