package flows

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/stash"
)

// Canonical stage names, in the order the flows execute them. Pseudo
// phases of the S2D/C2D baselines prefix these with "pseudo-".
const (
	StageGenerate  = "generate"
	StageFloorplan = "floorplan"
	StagePrepare   = "prepare"
	StagePlace     = "place"
	StageCTS       = "cts"
	StageRoute     = "route"
	StagePartition = "partition"
	StageTransfer  = "transfer"
	StageExtract   = "extract"
	StageOpt       = "opt"
	StageSTA       = "sta"
	StagePower     = "power"
	StageSeparate  = "separate"
	StageVerify    = "verify"
)

// StageError is the typed failure of one flow stage. Every error
// escaping Run2D/RunS2D/RunC2D/RunMacro3D is a *StageError; panics
// raised inside a stage are contained and carried in Cause with the
// goroutine stack captured at the panic site.
type StageError struct {
	Flow    string // "2D", "S2D", "BF S2D", "C2D", "Macro-3D"
	Stage   string // stage name, e.g. "place", "pseudo-route"
	Seed    uint64 // effective seed of the failing attempt
	Config  string // benchmark configuration name
	Attempt int    // 1-based attempt number that finally failed
	Cause   error
	Stack   []byte // non-nil iff the stage panicked
}

func (e *StageError) Error() string {
	var b []byte
	b = fmt.Appendf(b, "flows: %s/%s stage %q (seed %d", e.Flow, e.Config, e.Stage, e.Seed)
	if e.Attempt > 1 {
		b = fmt.Appendf(b, ", attempt %d", e.Attempt)
	}
	b = fmt.Appendf(b, "): %v", e.Cause)
	if len(e.Stack) > 0 {
		b = fmt.Appendf(b, " [panic contained]")
	}
	return string(b)
}

func (e *StageError) Unwrap() error { return e.Cause }

// PanicError carries a recovered stage panic as an error.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// RetryPolicy bounds re-runs of failed stochastic stages.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget for seeded stages
	// (place and tier partitioning). 0 or 1 disables retry. Each
	// retry runs with a deterministically perturbed seed (PerturbSeed)
	// so reruns are reproducible yet explore different random states.
	MaxAttempts int
}

// PerturbSeed derives the effective seed of retry attempt n (1-based).
// Attempt 1 always returns the seed unchanged; later attempts mix in
// the attempt index through the 64-bit golden ratio so every attempt
// is deterministic given (seed, attempt).
func PerturbSeed(seed uint64, attempt int) uint64 {
	if attempt <= 1 {
		return seed
	}
	return seed ^ (0x9e3779b97f4a7c15 * uint64(attempt-1))
}

// StageRecord is one executed stage attempt in a RunReport.
type StageRecord struct {
	Stage    string
	Attempt  int
	Seed     uint64
	Duration time.Duration
	Panicked bool
	Cached   bool   // region restored from the stage cache, not run
	Err      string // empty on success
}

// RunReport is the instrumented trace of a flow run: every stage
// attempt in execution order, whether the run completed, and the
// terminal error if it did not. Flows attach it to State.Trace, so a
// failed run still documents how far it got.
type RunReport struct {
	Flow      string
	Config    string
	Stages    []StageRecord
	Completed bool
	Err       *StageError // terminal failure, nil when Completed
}

// LastStage returns the name of the most recent attempted stage.
func (r *RunReport) LastStage() string {
	if len(r.Stages) == 0 {
		return ""
	}
	return r.Stages[len(r.Stages)-1].Stage
}

// String renders a compact one-line-per-stage trace.
func (r *RunReport) String() string {
	var b []byte
	b = fmt.Appendf(b, "%s/%s: %d stage attempts, completed=%v\n", r.Flow, r.Config, len(r.Stages), r.Completed)
	for _, s := range r.Stages {
		status := "ok"
		if s.Cached {
			status = "ok (cached)"
		}
		if s.Err != "" {
			status = s.Err
			if s.Panicked {
				status = "PANIC " + status
			}
		}
		b = fmt.Appendf(b, "  %-14s attempt %d  seed %-20d %10s  %s\n",
			s.Stage, s.Attempt, s.Seed, fmtDuration(s.Duration), status)
	}
	return string(b)
}

// fmtDuration renders a stage duration with adaptive precision: the
// rounding unit follows the magnitude, so sub-millisecond stages of
// tiny configs render as e.g. "740µs" instead of collapsing to "0s".
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

// runner executes named stages on behalf of one flow run: context
// checks at stage boundaries, panic containment, per-stage spans
// (which the RunReport durations derive from), bounded seeded
// retries, and the AfterStage hook.
type runner struct {
	flow  string
	cfg   Config
	ctx   context.Context
	st    *State
	trace *RunReport

	// span is the flow's root observability span; cur is the span of
	// the stage attempt currently executing (valid inside stage
	// closures via r.obs()). Both are real spans even with a nil
	// recorder — stage timing always flows through them.
	span *obs.Span
	cur  *obs.Span

	// key is the checkpoint chain's current cache key; caching is set
	// only when the run participates in stage checkpointing (see
	// Config.cacheEnabled and rootKey).
	key     stash.Key
	caching bool

	// stages is the execution tracer's flow-stage track (nil when
	// tracing is off): one container slice per stage attempt, under
	// which the engines' per-worker slices nest in the timeline view.
	stages *trace.Track
}

// flowSlug maps a flow display name to its span-path segment:
// "Macro-3D" → "macro3d", "BF S2D" → "bfs2d".
func flowSlug(flow string) string {
	s := strings.ToLower(flow)
	s = strings.ReplaceAll(s, " ", "")
	return strings.ReplaceAll(s, "-", "")
}

func newRunner(ctx context.Context, flow string, cfg Config, st *State) *runner {
	if ctx == nil {
		ctx = context.Background()
	}
	name := cfg.Piton.Name
	if cfg.Generator != nil && name == "" {
		name = "custom"
	}
	r := &runner{
		flow: flow, cfg: cfg, ctx: ctx, st: st,
		trace:  &RunReport{Flow: flow, Config: name},
		span:   cfg.Obs.StartSpan(flowSlug(flow), obs.KV("config", name)),
		stages: cfg.Trace.Track("stages"),
	}
	st.Trace = r.trace
	if cfg.cacheEnabled() {
		// A failing fingerprint (unbuildable tech) silently disables
		// caching; the flow itself will surface the real error.
		if k, err := rootKey(flow, cfg); err == nil {
			r.key, r.caching = k, true
		}
	}
	return r
}

// obs returns the span of the currently executing stage attempt, the
// parent under which engines hang their phase spans and find the
// run's metric registry. Safe to call from stage closures only.
func (r *runner) obs() *obs.Span { return r.cur }

// setState repoints the AfterStage hook target (the S2D/C2D pseudo
// phases operate on a separate State) and carries the trace over so
// whichever State the flow ultimately returns documents the run.
func (r *runner) setState(st *State) {
	r.st = st
	st.Trace = r.trace
}

// stage runs a deterministic stage once.
func (r *runner) stage(name string, fn func() error) error {
	return r.run(name, r.cfg.Seed, func(uint64) error { return fn() }, 1)
}

// seededStage runs a stochastic stage with the retry budget: a failed
// attempt is re-run with a perturbed seed, and every attempt is
// recorded in the trace.
func (r *runner) seededStage(name string, seed uint64, fn func(seed uint64) error) error {
	attempts := 1
	if r.cfg.Retry.MaxAttempts > attempts {
		attempts = r.cfg.Retry.MaxAttempts
	}
	return r.run(name, seed, fn, attempts)
}

func (r *runner) run(name string, seed uint64, fn func(uint64) error, attempts int) error {
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		// Cancellation and deadlines are honoured at stage boundaries:
		// a flow returns within one stage of the context ending.
		if err := r.ctx.Err(); err != nil {
			r.record(name, attempt, seed, 0, false, err)
			return r.fail(name, seed, attempt, err)
		}
		s := PerturbSeed(seed, attempt)
		sp := r.span.Child(name, obs.KV("attempt", attempt), obs.KV("seed", s))
		r.cur = sp
		stsl := r.stages.Begin("stage", name)
		err := contain(func() error { return fn(s) })
		stsl.End(trace.N("attempt", int64(attempt)))
		if err != nil {
			sp.SetAttr("err", err.Error())
		}
		sp.End()
		r.cur = nil
		r.cfg.Obs.Sample()
		dur := sp.Duration()
		var pe *PanicError
		panicked := errors.As(err, &pe)
		r.record(name, attempt, s, dur, panicked, err)
		if err == nil {
			if r.cfg.StageTimeout > 0 && dur > r.cfg.StageTimeout {
				over := fmt.Errorf("stage took %v, budget %v: %w",
					dur.Round(time.Millisecond), r.cfg.StageTimeout, context.DeadlineExceeded)
				return r.fail(name, s, attempt, over)
			}
			if r.cfg.AfterStage != nil {
				// The hook (instrumentation, fault injection) is
				// contained too: a panicking hook fails the stage
				// instead of crashing the process.
				if hookErr := contain(func() error {
					r.cfg.AfterStage(r.flow, name, r.st)
					return nil
				}); hookErr != nil {
					r.record(name, attempt, s, dur, true, hookErr)
					return r.fail(name, s, attempt, hookErr)
				}
			}
			return nil
		}
		last = err
		seedForFail := s
		if attempt == attempts {
			return r.fail(name, seedForFail, attempt, last)
		}
	}
	return r.fail(name, seed, attempts, last) // unreachable
}

func (r *runner) record(stage string, attempt int, seed uint64, dur time.Duration, panicked bool, err error) {
	rec := StageRecord{Stage: stage, Attempt: attempt, Seed: seed, Duration: dur, Panicked: panicked}
	if err != nil {
		rec.Err = err.Error()
	}
	r.trace.Stages = append(r.trace.Stages, rec)
}

func (r *runner) fail(stage string, seed uint64, attempt int, cause error) error {
	se := &StageError{
		Flow: r.flow, Stage: stage, Seed: seed,
		Config: r.trace.Config, Attempt: attempt, Cause: cause,
	}
	var pe *PanicError
	if errors.As(cause, &pe) {
		se.Stack = pe.Stack
	}
	r.trace.Completed = false
	r.trace.Err = se
	r.span.SetAttr("completed", false)
	r.span.SetAttr("failed_stage", stage)
	r.span.End()
	return se
}

// finish marks the trace complete and closes the flow span.
func (r *runner) finish() {
	r.trace.Completed = true
	r.span.SetAttr("completed", true)
	r.span.End()
	if reg := r.cfg.Obs.Registry(); reg != nil {
		reg.Counter("flow_runs_completed_total",
			"Flow runs that reached the end of their stage sequence.").Inc()
	}
	r.cfg.Obs.Sample()
}

// contain runs fn, converting a panic into a *PanicError with the
// stack captured at the panic site.
func contain(fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return fn()
}
