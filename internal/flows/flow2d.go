package flows

import (
	"context"

	"macro3d/internal/floorplan"
	"macro3d/internal/netlist"
	"macro3d/internal/opt"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// Run2D executes the baseline single-die flow: periphery macro ring,
// six metal layers, full timing optimization against true parasitics.
func Run2D(cfg Config) (*PPA, *State, error) {
	return Run2DCtx(context.Background(), cfg)
}

// Run2DCtx is Run2D honouring cancellation and per-stage deadlines at
// stage boundaries. On failure the returned State carries the partial
// trace (State.Trace) of how far the flow got.
func Run2DCtx(ctx context.Context, cfg Config) (*PPA, *State, error) {
	cfg = cfg.withDefaults()
	st := &State{}
	r := newRunner(ctx, "2D", cfg, st)

	var t *tech.Tech
	if err := r.stage(StageGenerate, func() error {
		var err error
		if t, err = tech.New28(cfg.LogicMetals); err != nil {
			return err
		}
		tile, err := cfg.generate()
		if err != nil {
			return err
		}
		st.Design, st.Tile, st.Beol = tile.Design, tile, t.Logic
		return nil
	}); err != nil {
		return nil, st, err
	}
	d := st.Design

	if err := r.stage(StageFloorplan, func() error {
		sz, err := floorplan.SizeDesign(d, cfg.Util, 1.0, t.RowHeight)
		if err != nil {
			return err
		}
		st.Die, st.Sizing = sz.Die2D, sz
		fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
		if err != nil {
			return err
		}
		st.FP = fp
		floorplan.BuildBlockages(fp, d, netlist.LogicDie)
		floorplan.AssignPorts(st.Tile, sz.Die2D)
		return nil
	}); err != nil {
		return nil, st, err
	}

	if err := r.checkpointed(placementCheckpoint(StagePlace, nil, d), func() error {
		return r.seededStage(StagePlace, cfg.Seed+1, func(seed uint64) error {
			_, err := place.Place(d, st.FP, t.RowHeight, place.Options{Seed: seed, Obs: r.obs(), Workers: cfg.Workers, Fast: cfg.FastRoute, Analytic: cfg.AnalyticPlace, Trace: cfg.Trace})
			return err
		})
	}); err != nil {
		return nil, st, err
	}

	if err := r.stage(StageCTS, func() error {
		buildClock(st)
		return nil
	}); err != nil {
		return nil, st, err
	}

	buildDB := func() {
		st.DB = route.NewDB(st.Die, t.Logic, st.FP.RouteBlk, route.Options{Obs: r.obs(), Workers: cfg.Workers, Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})
	}
	if err := r.checkpointed(routeCheckpoint(st, d, nil, buildDB), func() error {
		return r.stage(StageRoute, func() error {
			buildDB()
			var err error
			st.Routes, err = route.RouteDesign(d, st.DB)
			return err
		})
	}); err != nil {
		return nil, st, err
	}

	ppa, err := signoff(r, cfg, st, t, opt.Options{}, 1, cfg.LogicMetals)
	if err != nil {
		return nil, st, err
	}
	if err := verifyStage(r, cfg, st, t, nil); err != nil {
		return nil, st, err
	}
	r.finish()
	ppa.Flow = "2D"
	return ppa, st, nil
}
