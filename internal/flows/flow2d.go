package flows

import (
	"fmt"

	"macro3d/internal/floorplan"
	"macro3d/internal/netlist"
	"macro3d/internal/opt"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// Run2D executes the baseline single-die flow: periphery macro ring,
// six metal layers, full timing optimization against true parasitics.
func Run2D(cfg Config) (*PPA, *State, error) {
	cfg = cfg.withDefaults()
	t, err := tech.New28(cfg.LogicMetals)
	if err != nil {
		return nil, nil, err
	}
	tile, err := cfg.generate()
	if err != nil {
		return nil, nil, err
	}
	d := tile.Design

	sz, err := floorplan.SizeDesign(d, cfg.Util, 1.0, t.RowHeight)
	if err != nil {
		return nil, nil, err
	}
	st := &State{Design: d, Tile: tile, Die: sz.Die2D, Beol: t.Logic, Sizing: sz}

	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		return nil, nil, err
	}
	st.FP = fp
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)

	if _, err := place.Place(d, fp, t.RowHeight, place.Options{Seed: cfg.Seed + 1}); err != nil {
		return nil, nil, fmt.Errorf("2D place: %w", err)
	}

	buildClock(st)

	st.DB = route.NewDB(sz.Die2D, t.Logic, fp.RouteBlk, route.Options{})
	st.Routes, err = route.RouteDesign(d, st.DB)
	if err != nil {
		return nil, nil, fmt.Errorf("2D route: %w", err)
	}

	ppa, err := signoff(cfg, st, t, opt.Options{}, 1, cfg.LogicMetals)
	if err != nil {
		return nil, nil, err
	}
	ppa.Flow = "2D"
	return ppa, st, nil
}
