package flows

import (
	"runtime"
	"testing"

	"macro3d/internal/piton"
)

// TestWorkerEquivalence pins the parallel engines' flow-level
// contract: every flow run with Workers 1 (the serial reference
// paths in route and place), Workers 4 (forced batch scheduling) and
// Workers 0 (all CPUs) must produce an identical PPA — every field,
// compared exactly, no tolerance. GOMAXPROCS is raised so Workers=0
// genuinely fans out even on single-CPU CI machines.
//
// `make check` also runs this package under -race, which turns the
// test into a data-race audit of the batch router and the parallel
// placer phases.
func TestWorkerEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	type cacheCfg struct {
		name string
		pc   piton.Config
	}
	cfgs := []cacheCfg{{"small", piton.SmallCache()}}
	if !testing.Short() && !raceEnabled {
		cfgs = append(cfgs, cacheCfg{"large", piton.LargeCache()})
	}
	// Race instrumentation slows the flows an order of magnitude;
	// serial-vs-4-workers on the small cache already exercises every
	// parallel code path under the detector.
	workerSets := []int{1, 4, 0}
	if raceEnabled {
		workerSets = []int{1, 4}
	}

	type flowFn struct {
		name string
		run  func(Config) (*PPA, error)
	}
	fns := []flowFn{
		{"2d", func(c Config) (*PPA, error) { p, _, err := Run2D(c); return p, err }},
		{"macro3d", func(c Config) (*PPA, error) { p, _, _, err := RunMacro3D(c); return p, err }},
		{"s2d", func(c Config) (*PPA, error) { p, _, err := RunS2D(c, false); return p, err }},
		{"bf-s2d", func(c Config) (*PPA, error) { p, _, err := RunS2D(c, true); return p, err }},
		{"c2d", func(c Config) (*PPA, error) { p, _, err := RunC2D(c); return p, err }},
	}
	for _, cc := range cfgs {
		for _, f := range fns {
			t.Run(cc.name+"/"+f.name, func(t *testing.T) {
				var ref *PPA
				for _, w := range workerSets {
					got, err := f.run(Config{Piton: cc.pc, Seed: 1, Workers: w})
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if ref == nil {
						ref = got // workers=1: the serial reference
						continue
					}
					if *got != *ref {
						t.Fatalf("workers=%d PPA diverged from the serial reference:\n got: %+v\nwant: %+v",
							w, *got, *ref)
					}
				}
			})
		}
	}
}
