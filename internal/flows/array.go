package flows

import (
	"fmt"

	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

// ArrayReport is the outcome of composing a signed-off tile into an
// nx×ny array and re-verifying it flat.
type ArrayReport struct {
	Nx, Ny       int
	Design       *netlist.Design
	Die          geom.Rect
	TilePeriod   float64 // ps, the single tile's sign-off period
	ArrayPeriod  float64 // ps, the flat array's minimum period
	ClosesAtTile bool    // array period ≤ tile period (+2 % tolerance)
	F2FBumps     int
	StitchedNets int // inter-tile abutment connections
	Critical     sta.Path
}

// VerifyTileArray executes the paper's §V-1 argument: a tile signed
// off with aligned, half-cycle-constrained inter-tile pins composes by
// abutment into arbitrary-size arrays that still meet the tile's
// frequency. Exactly as the paper argues, the tile layout — including
// its routing — replicates verbatim per copy ("tile instances can be
// connected without additional routing"); only the stitched abutment
// nets are new, and they are pin-to-pin touches at shared coordinates.
// The flat array then gets a fresh clock tree and full STA.
func VerifyTileArray(cfg Config, st *State, t *tech.Tech, nx, ny int) (*ArrayReport, error) {
	cfg = cfg.withDefaults()
	arr, arrayDie, err := piton.Abut(st.Tile, st.Die, nx, ny)
	if err != nil {
		return nil, err
	}

	// Array routing grid: an exact nx×ny tiling of the tile's grid so
	// tile routes translate in whole gcells.
	tg := st.DB.Grid
	ag := geom.Grid{
		Region: arrayDie,
		NX:     tg.NX * nx, NY: tg.NY * ny,
		DX: tg.DX, DY: tg.DY,
	}

	// Routing blockages from every macro copy.
	fp := &floorplan.Floorplan{Die: arrayDie}
	for _, m := range arr.Macros() {
		for _, o := range m.Master.Obstructions {
			fp.RouteBlk = append(fp.RouteBlk, floorplan.RouteBlockage{
				Layer: o.Layer, Rect: o.Rect.Translate(m.Loc),
			})
		}
	}
	db := route.NewDB(arrayDie, st.Beol, fp.RouteBlk, route.Options{Grid: &ag, Workers: cfg.Workers,
		Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})

	res := &route.Result{
		Routes:     make([]*route.NetRoute, len(arr.Nets)),
		WLPerLayer: make([]float64, st.Beol.NumLayers()),
	}

	// Replicate tile routes; collect stitched nets for fresh routing.
	src := st.Tile.Design
	var stitched []*netlist.Net
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			tag := fmt.Sprintf("t%d_%d_", ix, iy)
			for _, n := range src.Nets {
				if n.Clock {
					continue
				}
				an := arr.Net(tag + n.Name)
				if an == nil {
					continue // interior port net, absorbed by the stitch
				}
				if sameShape(n, an) && st.Routes.Routes[n.ID] != nil {
					tr := route.TranslateRoute(st.Routes.Routes[n.ID], ix*tg.NX, iy*tg.NY)
					tr.Net = an
					db.CommitRoute(tr)
					res.SetRoute(an.ID, tr)
				} else {
					stitched = append(stitched, an)
				}
			}
		}
	}
	for _, n := range stitched {
		r, err := db.RouteNet(n)
		if err != nil {
			return nil, fmt.Errorf("array stitch route %s: %w", n.Name, err)
		}
		res.SetRoute(n.ID, r)
	}
	res.Recount(db)

	clkSrc := arrayDie.LL()
	if p := arr.Port("clk_i"); p != nil {
		clkSrc = p.Loc
	}
	tree := cts.Build(arr, arr.Net("clk"), clkSrc, arr.Lib, st.Beol, cts.Options{})

	slow := t.CornerScaleFor(tech.CornerSlow)
	ex := extract.Extract(arr, res, db, slow)
	rep, err := sta.Analyze(arr, ex, st.Report.MinPeriod, sta.Options{
		Corner: slow, Clock: tree,
	})
	if err != nil {
		return nil, fmt.Errorf("array STA: %w", err)
	}

	out := &ArrayReport{
		Nx: nx, Ny: ny,
		Design:       arr,
		Die:          arrayDie,
		TilePeriod:   st.Report.MinPeriod,
		ArrayPeriod:  rep.MinPeriod,
		F2FBumps:     res.F2FBumps,
		StitchedNets: len(stitched),
		Critical:     rep.Critical,
	}
	out.ClosesAtTile = rep.MinPeriod <= st.Report.MinPeriod*1.02
	return out, nil
}

// sameShape reports whether the array net has the same pin structure
// as its tile source (no port↔instance substitution happened — i.e.
// the net was not stitched across tiles).
func sameShape(a, b *netlist.Net) bool {
	if len(a.Sinks) != len(b.Sinks) {
		return false
	}
	if a.Driver.IsPort() != b.Driver.IsPort() {
		return false
	}
	for i := range a.Sinks {
		if a.Sinks[i].IsPort() != b.Sinks[i].IsPort() {
			return false
		}
	}
	return true
}
