package flows

import (
	"context"
	"fmt"
	"math"

	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/opt"
	"macro3d/internal/piton"
	"macro3d/internal/place"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

// RunC2D executes the Compact-2D baseline [6]: full-size cells are
// placed in a floorplan of 2× the target 3D footprint with per-unit
// interconnect parasitics scaled by 1/√2 (so wire estimates mimic the
// 3D target despite the inflated floorplan); blockage areas are scaled
// 2×; after P&R and sizing, cell locations are linearly mapped into
// the 3D footprint, tiers are partitioned, overlaps legalized, and the
// combined stack rerouted with only a limited post-partition touch-up
// — C2D's "post-tier-partitioning optimization and incremental
// routing".
func RunC2D(cfg Config) (*PPA, *State, error) {
	return RunC2DCtx(context.Background(), cfg)
}

// RunC2DCtx is RunC2D honouring cancellation and per-stage deadlines
// at stage boundaries.
func RunC2DCtx(ctx context.Context, cfg Config) (*PPA, *State, error) {
	cfg = cfg.withDefaults()
	stP := &State{}
	r := newRunner(ctx, "C2D", cfg, stP)

	var t *tech.Tech
	var realTile *piton.Tile
	var dReal *netlist.Design
	var sz floorplan.Sizing
	var die geom.Rect
	if err := r.stage(StageGenerate, func() error {
		if cfg.Generator != nil {
			return fmt.Errorf("flows: custom generators are only supported by Run2D/RunMacro3D")
		}
		var err error
		if t, err = tech.New28(cfg.LogicMetals); err != nil {
			return err
		}
		// Real design, 3D footprint, MoL macro floorplan.
		if realTile, err = piton.Generate(cfg.Piton); err != nil {
			return err
		}
		dReal = realTile.Design
		return nil
	}); err != nil {
		return nil, stP, err
	}

	if err := r.stage(StageFloorplan, func() error {
		var err error
		sz, err = floorplan.SizeDesign(dReal, cfg.Util, 1.0, t.RowHeight)
		if err != nil {
			return err
		}
		die = sz.Die3D
		if _, _, err := floorplan.PlaceMacros(dReal, die, floorplan.StyleMoL); err != nil {
			return err
		}
		floorplan.AssignPorts(realTile, die)
		return nil
	}); err != nil {
		return nil, stP, err
	}

	// ---- Phase A: the 2×-footprint pseudo design. ----
	s := math.Sqrt2
	// Like S2D, the whole pseudo P&R plus the linear map back is one
	// checkpoint over the real design's standard-cell state.
	var dP *netlist.Design
	var fpP *floorplan.Floorplan
	var dieC geom.Rect
	pseudoBody := func() error {
		if err := r.stage("pseudo-"+StageFloorplan, func() error {
			dieC = geom.R(die.Lx*s, die.Ly*s, die.Ux*s, die.Uy*s)
			pseudoTile, err := piton.Generate(cfg.Piton)
			if err != nil {
				return err
			}
			dP = pseudoTile.Design

			// Macros at linearly scaled locations; blockage rects scaled
			// 2× in area (√2 per dimension, about the origin — consistent
			// with the location map).
			var logicRects, macroRects []geom.Rect
			for _, m := range dReal.Macros() {
				pm := dP.Instance(m.Name)
				if pm == nil {
					return fmt.Errorf("c2d: pseudo design lacks macro %s", m.Name)
				}
				pm.Loc = m.Loc.Scale(s)
				pm.Fixed, pm.Placed = true, true
				pm.Die = netlist.LogicDie
				scaled := m.Bounds().Scale(s)
				if m.Die == netlist.LogicDie {
					logicRects = append(logicRects, scaled)
				} else {
					macroRects = append(macroRects, scaled)
				}
			}
			floorplan.AssignPorts(pseudoTile, dieC)

			pbm := floorplan.NewPartialBlockageMap(dieC, cfg.BlockageResolution, logicRects, macroRects)
			fpP = &floorplan.Floorplan{Die: dieC, PlaceBlk: pbm.Blockages()}
			for _, m := range dReal.Macros() {
				if m.Die != netlist.LogicDie {
					continue
				}
				for _, o := range m.Master.Obstructions {
					fpP.RouteBlk = append(fpP.RouteBlk, floorplan.RouteBlockage{
						Layer: o.Layer, Rect: o.Rect.Translate(m.Loc).Scale(s),
					})
				}
			}

			// Per-unit parasitics scaled by 1/√2: routes in the inflated
			// floorplan estimate target-3D RC.
			scaledBeol := tech.ScaleParasitics(t.Logic, 1/s)
			stP.Design, stP.Tile, stP.Die = dP, pseudoTile, dieC
			stP.FP, stP.Beol, stP.Sizing = fpP, scaledBeol, sz
			return nil
		}); err != nil {
			return err
		}

		if err := r.seededStage("pseudo-"+StagePlace, cfg.Seed+4, func(seed uint64) error {
			_, err := place.Place(dP, fpP, t.RowHeight, place.Options{Seed: seed, Obs: r.obs(), Workers: cfg.Workers, Fast: cfg.FastRoute, Analytic: cfg.AnalyticPlace, Trace: cfg.Trace})
			return err
		}); err != nil {
			return err
		}

		if err := r.stage("pseudo-"+StageRoute, func() error {
			buildClock(stP)
			stP.DB = route.NewDB(dieC, stP.Beol, fpP.RouteBlk, route.Options{Obs: r.obs(), Workers: cfg.Workers, Sharded: cfg.FastRoute, ShardVerify: cfg.FastRouteVerify, Trace: cfg.Trace})
			var err error
			stP.Routes, err = route.RouteDesign(dP, stP.DB)
			return err
		}); err != nil {
			return err
		}

		if err := r.stage("pseudo-"+StageOpt, func() error {
			slow := t.CornerScaleFor(tech.CornerSlow)
			stP.ExSlow = extract.Extract(dP, stP.Routes, stP.DB, slow)
			if err := stP.ExSlow.CheckFinite(); err != nil {
				return err
			}
			stP.DDB = ddb.New(dP, stP.DB, stP.Routes, stP.ExSlow, slow)
			_, err := opt.Optimize(&opt.Context{
				Clock: stP.Tree,
				FP:    fpP, RowHeight: t.RowHeight,
				DDB: stP.DDB,
			}, sta.Options{}, opt.Options{BufferElmore: 1e12, SelfCheck: cfg.SelfCheck})
			return err
		}); err != nil {
			return err
		}

		// ---- Transfer: linear map into the 3D footprint. ----
		return r.stage(StageTransfer, func() error {
			return transferPseudoScaled(dP, dReal, 1/s)
		})
	}
	if err := r.checkpointed(pseudoCheckpoint(resolutionMaterial(cfg), dReal), pseudoBody); err != nil {
		return nil, stP, err
	}

	// ---- Phase B with C2D's limited post-partition optimization. ----
	return finish3DBaseline(r, cfg, t, realTile, die, sz,
		opt.Options{MaxIters: 2, MaxMovesPerIter: 8})
}

// transferPseudoScaled copies drive choices and linearly mapped cell
// locations from the pseudo design onto the real one.
func transferPseudoScaled(dP, dReal *netlist.Design, scale float64) error {
	for _, c := range dReal.StdCells() {
		pc := dP.Instance(c.Name)
		if pc == nil {
			return fmt.Errorf("flows: pseudo design lacks instance %s", c.Name)
		}
		ctr := pc.Center().Scale(scale)
		c.Loc = geom.Pt(ctr.X-c.Master.Width/2, ctr.Y-c.Master.Height/2)
		c.Placed = true
		if pc.Master.Name != c.Master.Name {
			to := dReal.Lib.Cell(pc.Master.Name)
			if to == nil {
				return fmt.Errorf("flows: real library lacks %s", pc.Master.Name)
			}
			if err := dReal.Resize(c, to); err != nil {
				return err
			}
		}
	}
	return nil
}
