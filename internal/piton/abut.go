package piton

import (
	"fmt"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// Abut stitches nx×ny copies of a placed tile into one flat design —
// the paper's §V-1 argument made executable: because associated
// output/input pins share their edge coordinate and inter-tile paths
// are half-cycle constrained on each side, tile instances connect by
// abutment (no extra routing) and the composed system closes timing at
// the tile's frequency for arbitrary core counts.
//
// The tile must have been floorplanned and placed within die; every
// copy is translated by multiples of the die size. Facing NoC ports of
// adjacent tiles merge into ordinary nets; ports on the array boundary
// stay ports. All per-tile clock nets merge into one array clock.
func Abut(t *Tile, die geom.Rect, nx, ny int) (*netlist.Design, geom.Rect, error) {
	if nx < 1 || ny < 1 {
		return nil, geom.Rect{}, fmt.Errorf("piton: abut needs nx, ny >= 1")
	}
	src := t.Design
	for _, p := range src.Ports {
		if p.Loc == (geom.Point{}) && p.Name != t.ClockPort {
			return nil, geom.Rect{}, fmt.Errorf("piton: port %s unassigned — floorplan the tile first", p.Name)
		}
	}

	arrayDie := geom.R(die.Lx, die.Ly,
		die.Lx+die.W()*float64(nx), die.Ly+die.H()*float64(ny))
	out := netlist.NewDesign(fmt.Sprintf("%s_%dx%d", src.Name, nx, ny), src.Lib)

	// Group lookup: for each grouped (NoC) port, its edge and the
	// pairing name on the neighbouring tile.
	partnerName := buildPartnerNames(t)

	clkPort := out.AddPort("clk_i", cell.DirIn)
	clkPort.Layer = "M6"
	clkPort.Loc = geom.Pt(arrayDie.Lx, arrayDie.Center().Y)
	var clkSinks []netlist.PinRef

	// Per-copy instance tables for net stitching.
	type copyKey struct{ ix, iy int }
	instOf := map[copyKey]map[string]*netlist.Instance{}

	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			off := geom.Pt(die.W()*float64(ix), die.H()*float64(iy))
			tag := fmt.Sprintf("t%d_%d_", ix, iy)
			m := make(map[string]*netlist.Instance, len(src.Instances))
			for _, inst := range src.Instances {
				c := out.AddInstance(tag+inst.Name, inst.Master)
				c.Loc = inst.Loc.Add(off)
				c.Orient = inst.Orient
				c.Fixed = inst.Fixed
				c.Placed = inst.Placed
				c.Die = inst.Die
				m[inst.Name] = c
			}
			instOf[copyKey{ix, iy}] = m
		}
	}

	// exteriorPort creates (once) a boundary port for an unmatched
	// tile port.
	madePorts := map[string]*netlist.Port{}
	exteriorPort := func(tag string, p *netlist.Port, off geom.Point) *netlist.Port {
		name := tag + p.Name
		if q := madePorts[name]; q != nil {
			return q
		}
		q := out.AddPort(name, p.Dir)
		q.Layer = p.Layer
		q.Loc = p.Loc.Add(off)
		q.HalfCycle = p.HalfCycle
		q.ExtCap = p.ExtCap
		q.ExtDelay = p.ExtDelay
		madePorts[name] = q
		return q
	}

	// Stitch nets copy by copy. Each source net becomes one net per
	// copy; nets touching an interior-facing port extend into the
	// neighbour instead of getting a port.
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			key := copyKey{ix, iy}
			off := geom.Pt(die.W()*float64(ix), die.H()*float64(iy))
			tag := fmt.Sprintf("t%d_%d_", ix, iy)
			for _, n := range src.Nets {
				if n.Clock {
					// Collect clock sinks; net created at the end.
					for _, s := range n.Sinks {
						if s.Inst != nil {
							clkSinks = append(clkSinks, netlist.IPin(instOf[key][s.Inst.Name], s.Pin))
						}
					}
					continue
				}
				// Input-port-driven nets whose port faces an interior
				// neighbour are handled from the driving side; skip.
				if n.Driver.Port != nil && n.Driver.Port.Name != t.ClockPort {
					if _, interior := interiorNeighbor(partnerName, n.Driver.Port.Name, ix, iy, nx, ny); interior {
						continue
					}
				}
				mapRef := func(r netlist.PinRef) (netlist.PinRef, bool) {
					if r.Inst != nil {
						return netlist.IPin(instOf[key][r.Inst.Name], r.Pin), true
					}
					// Port sink/driver.
					p := r.Port
					if pn, interior := interiorNeighbor(partnerName, p.Name, ix, iy, nx, ny); interior {
						// Extend into the neighbour: the partner port's
						// net continues at the partner's sinks.
						nk := copyKey{pn.ix, pn.iy}
						pNet := portNet(src, pn.name)
						if pNet == nil {
							return netlist.PinRef{}, false
						}
						// Replace with the neighbour's first register
						// sink (input ports drive exactly the input
						// FFs).
						for _, s := range pNet.Sinks {
							if s.Inst != nil {
								return netlist.IPin(instOf[nk][s.Inst.Name], s.Pin), true
							}
						}
						return netlist.PinRef{}, false
					}
					return netlist.PPin(exteriorPort(tag, p, off)), true
				}
				drv, ok := mapRef(n.Driver)
				if !ok {
					continue
				}
				var sinks []netlist.PinRef
				for _, s := range n.Sinks {
					if r, ok := mapRef(s); ok {
						sinks = append(sinks, r)
					}
				}
				out.AddNet(tag+n.Name, drv, sinks...)
			}
		}
	}

	cn := out.AddNet("clk", netlist.PPin(clkPort), clkSinks...)
	cn.Clock = true
	if err := out.Validate(); err != nil {
		return nil, geom.Rect{}, fmt.Errorf("piton: abutted design invalid: %w", err)
	}
	return out, arrayDie, nil
}

// ComposeAbstract instantiates nx×ny copies of a hardened tile
// abstract (flows.Harden) and stitches them by abutment — Abut at the
// macro level. Facing NoC pins of adjacent abstract instances connect
// with two-pin nets at coinciding edge coordinates, pins on the array
// boundary become array ports, and one clock net fans out to every
// instance's clock pin. Pin geometry comes from the abstract itself,
// so the tile handle only supplies netlist-level facts (port pairing
// groups, directions, half-cycle constraints) and needs no floorplan.
func ComposeAbstract(t *Tile, abs *cell.Cell, die geom.Rect, nx, ny int) (*netlist.Design, geom.Rect, error) {
	if nx < 1 || ny < 1 {
		return nil, geom.Rect{}, fmt.Errorf("piton: compose needs nx, ny >= 1")
	}
	if abs.Abstract == nil {
		return nil, geom.Rect{}, fmt.Errorf("piton: %s is not a hardened abstract", abs.Name)
	}
	ck := abs.ClockPin()
	if ck == nil {
		return nil, geom.Rect{}, fmt.Errorf("piton: abstract %s has no clock pin", abs.Name)
	}
	src := t.Design
	arrayDie := geom.R(die.Lx, die.Ly,
		die.Lx+die.W()*float64(nx), die.Ly+die.H()*float64(ny))
	lib := src.Lib
	if lib.Cell(abs.Name) == nil {
		lib.Add(abs)
	}
	out := netlist.NewDesign(fmt.Sprintf("%s_hier_%dx%d", src.Name, nx, ny), lib)

	partnerName := buildPartnerNames(t)

	clkPort := out.AddPort("clk_i", cell.DirIn)
	clkPort.Layer = "M6"
	clkPort.Loc = geom.Pt(arrayDie.Lx, arrayDie.Center().Y)
	var clkSinks []netlist.PinRef

	insts := make([][]*netlist.Instance, ny)
	for iy := 0; iy < ny; iy++ {
		insts[iy] = make([]*netlist.Instance, nx)
		for ix := 0; ix < nx; ix++ {
			inst := out.AddInstance(fmt.Sprintf("t%d_%d", ix, iy), abs)
			inst.Loc = geom.Pt(die.Lx+die.W()*float64(ix), die.Ly+die.H()*float64(iy))
			inst.Placed = true
			inst.Fixed = true
			insts[iy][ix] = inst
			clkSinks = append(clkSinks, netlist.IPin(inst, ck.Name))
		}
	}

	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			inst := insts[iy][ix]
			off := geom.Pt(die.W()*float64(ix), die.H()*float64(iy))
			tag := fmt.Sprintf("t%d_%d_", ix, iy)
			for _, p := range src.Ports {
				if p.Name == t.ClockPort {
					continue
				}
				ap := abs.Pin(p.Name)
				if ap == nil {
					return nil, geom.Rect{}, fmt.Errorf("piton: abstract %s lost pin %s", abs.Name, p.Name)
				}
				switch p.Dir {
				case cell.DirOut:
					if pn, interior := interiorNeighbor(partnerName, p.Name, ix, iy, nx, ny); interior {
						nb := insts[pn.iy][pn.ix]
						out.AddNet(tag+p.Name, netlist.IPin(inst, p.Name), netlist.IPin(nb, pn.name))
						continue
					}
					q := out.AddPort(tag+p.Name, cell.DirOut)
					q.Layer = ap.Layer
					q.Loc = ap.Offset.Add(off)
					q.HalfCycle = p.HalfCycle
					q.ExtCap = p.ExtCap
					q.ExtDelay = p.ExtDelay
					out.AddNet(tag+p.Name, netlist.IPin(inst, p.Name), netlist.PPin(q))
				case cell.DirIn:
					// Interior-facing inputs are stitched from the
					// driving neighbour's side.
					if _, interior := interiorNeighbor(partnerName, p.Name, ix, iy, nx, ny); interior {
						continue
					}
					q := out.AddPort(tag+p.Name, cell.DirIn)
					q.Layer = ap.Layer
					q.Loc = ap.Offset.Add(off)
					q.HalfCycle = p.HalfCycle
					q.ExtCap = p.ExtCap
					q.ExtDelay = p.ExtDelay
					out.AddNet(tag+p.Name, netlist.PPin(q), netlist.IPin(inst, p.Name))
				}
			}
		}
	}

	cn := out.AddNet("clk", netlist.PPin(clkPort), clkSinks...)
	cn.Clock = true
	if err := out.Validate(); err != nil {
		return nil, geom.Rect{}, fmt.Errorf("piton: composed design invalid: %w", err)
	}
	return out, arrayDie, nil
}

// partner describes the tile-relative neighbour a grouped port faces.
type partner struct {
	dx, dy int
	name   string
}

// buildPartnerNames maps each grouped port name to the facing port on
// the adjacent tile: out→in of the same pair/bit on the opposite edge.
func buildPartnerNames(t *Tile) map[string]partner {
	type key struct {
		e    Edge
		pair int
	}
	byKey := map[key]PortGroup{}
	for _, g := range t.Groups {
		byKey[key{g.Edge, g.Pair}] = g
	}
	out := map[string]partner{}
	for _, g := range t.Groups {
		opp, ok := byKey[key{g.Edge.Opposite(), g.Pair}]
		if !ok || len(opp.Names) != len(g.Names) {
			continue
		}
		dx, dy := 0, 0
		switch g.Edge {
		case North:
			dy = 1
		case South:
			dy = -1
		case East:
			dx = 1
		case West:
			dx = -1
		}
		for i, n := range g.Names {
			out[n] = partner{dx: dx, dy: dy, name: opp.Names[i]}
		}
	}
	return out
}

type neighborRef struct {
	ix, iy int
	name   string
}

// interiorNeighbor resolves whether a port of copy (ix, iy) faces
// another copy inside the array.
func interiorNeighbor(partners map[string]partner, port string, ix, iy, nx, ny int) (neighborRef, bool) {
	p, ok := partners[port]
	if !ok {
		return neighborRef{}, false
	}
	jx, jy := ix+p.dx, iy+p.dy
	if jx < 0 || jx >= nx || jy < 0 || jy >= ny {
		return neighborRef{}, false
	}
	return neighborRef{ix: jx, iy: jy, name: p.name}, true
}

// portNet finds the net driven by (input port) or sinking at (output
// port) the named port.
func portNet(d *netlist.Design, port string) *netlist.Net {
	for _, n := range d.Nets {
		if n.Driver.Port != nil && n.Driver.Port.Name == port {
			return n
		}
		for _, s := range n.Sinks {
			if s.Port != nil && s.Port.Name == port {
				return n
			}
		}
	}
	return nil
}
