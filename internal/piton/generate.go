package piton

import (
	"fmt"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// Generate builds the tile netlist for a configuration. The returned
// design is unplaced; floorplanning and placement are the flow's job.
func Generate(cfg Config) (*Tile, error) {
	if cfg.DataWidth < 4 || cfg.CoreStages < 2 || cfg.CoreWidth < 4 || cfg.NoCs < 1 {
		return nil, fmt.Errorf("piton: implausible config %+v", cfg)
	}
	if cfg.CloudDepth < 1 {
		cfg.CloudDepth = 5
	}

	// Pass 1: build with unscaled cells to measure raw logic area.
	t, err := generate(cfg, 1.0)
	if err != nil {
		return nil, err
	}
	if cfg.TargetLogicArea > 0 {
		raw := t.Design.ComputeStats().StdCellArea
		if raw <= 0 {
			return nil, fmt.Errorf("piton: generated no logic area")
		}
		// Pass 2: rebuild with the area scale that hits the target.
		t, err = generate(cfg, cfg.TargetLogicArea/raw)
		if err != nil {
			return nil, err
		}
	}
	if err := t.Design.Validate(); err != nil {
		return nil, fmt.Errorf("piton: generated invalid netlist: %w", err)
	}
	return t, nil
}

func generate(cfg Config, areaScale float64) (*Tile, error) {
	opt := cell.DefaultLibOptions()
	opt.AreaScale = areaScale
	lib := cell.NewStdLib28(opt)

	g := &gen{
		cfg:   cfg,
		lib:   lib,
		d:     netlist.NewDesign(cfg.Name, lib),
		rng:   geom.NewRNG(cfg.Seed),
		netOf: make(map[string]*netlist.Net),
	}
	g.driven = make(map[string]bool)
	g.tile = &Tile{Design: g.d, Config: cfg}

	// Clock input.
	clkPort := g.d.AddPort("clk_i", cell.DirIn)
	clkPort.Layer = "M6"
	g.tile.ClockPort = "clk_i"

	// Core pipeline: CoreStages register banks with clouds between.
	core := g.buildCore()

	// Cache hierarchy. Each level exposes request/response register
	// interfaces; levels are chained core→L1→L2→L3. The D-pin lists
	// are consumed by connectBus, so each pin is driven exactly once.
	l1i, err := g.buildCacheLevel("l1i", cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := g.buildCacheLevel("l1d", cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := g.buildCacheLevel("l2", cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := g.buildCacheLevel("l3", cfg.L3)
	if err != nil {
		return nil, err
	}

	// Core ↔ L1s: fetch path and load/store path.
	g.connectBus("core_l1i", core.outs, &l1i.reqIns, len(l1i.reqIns))
	g.connectBus("l1i_core", l1i.rspOuts, &core.ins, len(core.ins)/3)
	g.connectBus("core_l1d", core.outs, &l1d.reqIns, len(l1d.reqIns))
	g.connectBus("l1d_core", l1d.rspOuts, &core.ins, len(core.ins)/3)

	// L1 ↔ L2 ↔ L3 refill/writeback paths.
	g.connectBus("l1i_l2", l1i.missOuts, &l2.reqIns, len(l2.reqIns)/2)
	g.connectBus("l1d_l2", l1d.missOuts, &l2.reqIns, len(l2.reqIns))
	g.connectBus("l2_l1i", l2.rspOuts, &l1i.fillIns, len(l1i.fillIns))
	g.connectBus("l2_l1d", l2.rspOuts, &l1d.fillIns, len(l1d.fillIns))
	g.connectBus("l2_l3", l2.missOuts, &l3.reqIns, len(l3.reqIns))
	g.connectBus("l3_l2", l3.rspOuts, &l2.fillIns, len(l2.fillIns))

	// NoC routers; router 0 also talks to the L3 (coherence traffic).
	for k := 0; k < cfg.NoCs; k++ {
		r := g.buildRouter(k)
		if k == 0 {
			g.connectBus("l3_noc", l3.missOuts, &r.localIns, len(r.localIns))
			g.connectBus("noc_l3", r.localOuts, &l3.fillIns, len(l3.fillIns))
		} else {
			// Other NoCs carry core-originated traffic.
			g.connectBus(fmt.Sprintf("core_noc%d", k), core.outs, &r.localIns, len(r.localIns))
			g.connectBus(fmt.Sprintf("noc%d_core", k), r.localOuts, &core.ins, len(core.ins))
		}
	}

	// Any interface D pins left over by width mismatches get recirculating
	// connections so no input floats.
	g.sweepUndriven()

	// The single clock net reaching every sequential element.
	clkNet := g.d.AddNet("clk", netlist.PPin(clkPort), g.clk...)
	clkNet.Clock = true

	return g.tile, nil
}

// iface bundles the register-file PinRefs a block exposes.
type iface struct {
	ins      []netlist.PinRef // unconsumed D pins accepting data
	outs     []netlist.PinRef // Q pins producing data
	reqIns   []netlist.PinRef
	rspOuts  []netlist.PinRef
	missOuts []netlist.PinRef
	fillIns  []netlist.PinRef
}

// buildCore creates the Ariane-like pipeline and returns its boundary
// registers.
func (g *gen) buildCore() *iface {
	cfg := g.cfg
	banks := make([][]*netlist.Instance, cfg.CoreStages)
	for s := range banks {
		banks[s] = make([]*netlist.Instance, cfg.CoreWidth)
		for b := range banks[s] {
			banks[s][b] = g.dff(fmt.Sprintf("core_s%d", s))
		}
	}
	// Clouds between consecutive stages.
	for s := 0; s+1 < cfg.CoreStages; s++ {
		drv := make([]netlist.PinRef, len(banks[s]))
		for i, ff := range banks[s] {
			drv[i] = netlist.IPin(ff, "Q")
		}
		outs := g.cloud(fmt.Sprintf("core_c%d", s), drv, cfg.CoreWidth, cfg.CloudDepth)
		for i, ff := range banks[s+1] {
			g.fanout(outs[i%len(outs)], netlist.IPin(ff, "D"))
		}
	}
	fc := &iface{}
	// First stage D pins are the core's bus inputs; last stage Q pins
	// its outputs.
	for _, ff := range banks[0] {
		fc.ins = append(fc.ins, netlist.IPin(ff, "D"))
	}
	for _, ff := range banks[cfg.CoreStages-1] {
		fc.outs = append(fc.outs, netlist.IPin(ff, "Q"))
	}
	return fc
}

// buildCacheLevel creates the SRAM banks of one cache level plus its
// shared-bus interface registers. The structure mirrors a banked
// cache: one address/data register bank fans out to every SRAM macro
// of the level (long shared buses in 2D — the paper's critical paths),
// per-bank enable decode, and a mux tree merging bank outputs into
// capture registers.
func (g *gen) buildCacheLevel(level string, bytes int) (*iface, error) {
	cfg := g.cfg
	specs := sramBanks(level, bytes, cfg.DataWidth)
	if len(specs) == 0 {
		return nil, fmt.Errorf("piton: cache level %s (%d bytes) produced no SRAM banks", level, bytes)
	}
	macros := make([]*netlist.Instance, len(specs))
	for i, spec := range specs {
		m, err := cell.NewSRAM(spec)
		if err != nil {
			return nil, fmt.Errorf("piton: SRAM compile for %s bank %d failed: %w", level, i, err)
		}
		g.cfg.MacroProcess.Apply(m)
		g.lib.Add(m) // registered so DEF/LEF round trips resolve it
		inst := g.d.AddInstance(fmt.Sprintf("%s_bank%d", level, i), m)
		macros[i] = inst
		g.clk = append(g.clk, netlist.IPin(inst, "CLK"))
	}
	addrBits := specs[0].AddrBits()

	fc := &iface{}

	// Shared address bus: one register per bit driving all banks.
	addrFF := make([]*netlist.Instance, addrBits)
	for b := 0; b < addrBits; b++ {
		ff := g.dff(level + "_addr")
		addrFF[b] = ff
		sinks := make([]netlist.PinRef, len(macros))
		for i, m := range macros {
			sinks[i] = netlist.IPin(m, fmt.Sprintf("A%d", b))
		}
		g.drive(g.netName(level+"_a"), netlist.IPin(ff, "Q"), sinks...)
		fc.reqIns = append(fc.reqIns, netlist.IPin(ff, "D"))
	}

	// Shared write-data bus.
	for b := 0; b < cfg.DataWidth; b++ {
		ff := g.dff(level + "_wdata")
		sinks := make([]netlist.PinRef, len(macros))
		for i, m := range macros {
			sinks[i] = netlist.IPin(m, fmt.Sprintf("D%d", b))
		}
		g.drive(g.netName(level+"_d"), netlist.IPin(ff, "Q"), sinks...)
		fc.fillIns = append(fc.fillIns, netlist.IPin(ff, "D"))
	}

	// Per-bank enable decode from the address registers.
	drvs := make([]netlist.PinRef, 0, addrBits)
	for _, ff := range addrFF {
		drvs = append(drvs, netlist.IPin(ff, "Q"))
	}
	enables := g.cloud(level+"_dec", drvs, 2*len(macros), 2)
	for i, m := range macros {
		g.fanout(enables[(2*i)%len(enables)], netlist.IPin(m, "CE"))
		g.fanout(enables[(2*i+1)%len(enables)], netlist.IPin(m, "WE"))
	}

	// Read-data merge: per bit, a mux tree over the bank Q outputs
	// feeding a capture register.
	for b := 0; b < cfg.DataWidth; b++ {
		cur := make([]netlist.PinRef, len(macros))
		for i, m := range macros {
			cur[i] = netlist.IPin(m, fmt.Sprintf("Q%d", b))
		}
		for len(cur) > 1 {
			var next []netlist.PinRef
			for i := 0; i+1 < len(cur); i += 2 {
				mux := g.d.AddInstance(g.instName(level+"_mux"), g.lib.MustCell("MUX2_X1"))
				g.fanout(cur[i], netlist.IPin(mux, "A"))
				g.fanout(cur[i+1], netlist.IPin(mux, "B"))
				// Select from an address register (shared select).
				g.fanout(netlist.IPin(addrFF[(b+i)%len(addrFF)], "Q"), netlist.IPin(mux, "C"))
				next = append(next, netlist.IPin(mux, "Y"))
			}
			if len(cur)%2 == 1 {
				next = append(next, cur[len(cur)-1])
			}
			cur = next
		}
		capFF := g.dff(level + "_rcap")
		g.fanout(cur[0], netlist.IPin(capFF, "D"))
		fc.rspOuts = append(fc.rspOuts, netlist.IPin(capFF, "Q"))
		// Miss path re-uses capture registers (tag mismatch forwards
		// the request downstream).
		fc.missOuts = append(fc.missOuts, netlist.IPin(capFF, "Q"))
	}
	return fc, nil
}

// router bundles one NoC router's local-port registers.
type router struct {
	localIns  []netlist.PinRef
	localOuts []netlist.PinRef
}

// buildRouter creates a 5-port wormhole-router-like structure: four
// direction ports wired to half-cycle-constrained tile edges plus a
// local port, input FIFO registers, a crossbar cloud, and output
// registers.
func (g *gen) buildRouter(k int) *router {
	cfg := g.cfg
	w := cfg.DataWidth
	r := &router{}

	dirs := []Edge{North, South, East, West}
	var allInQ []netlist.PinRef

	// Pair allocation makes abutment work: pair 2k holds {N out,
	// S in, E out, W in}, pair 2k+1 the converse, so an output bundle
	// shares its edge coordinate with the facing tile's input bundle
	// ("associated output-input pin pairs have the same x location",
	// §V-1).
	inPair := func(e Edge) int {
		if e == North || e == East {
			return 2*k + 1
		}
		return 2 * k
	}
	outPair := func(e Edge) int {
		if e == North || e == East {
			return 2 * k
		}
		return 2*k + 1
	}

	// Input side: edge port → input register bank.
	for _, e := range dirs {
		group := PortGroup{Edge: e, Pair: inPair(e)}
		for b := 0; b < w; b++ {
			p := g.d.AddPort(fmt.Sprintf("noc%d_%s_in_%d", k, e, b), cell.DirIn)
			p.Layer = "M6"
			p.HalfCycle = true
			ff := g.dff(fmt.Sprintf("noc%d_%s_in", k, e))
			g.drive(g.netName("nocin"), netlist.PPin(p), netlist.IPin(ff, "D"))
			allInQ = append(allInQ, netlist.IPin(ff, "Q"))
			group.Names = append(group.Names, p.Name)
		}
		g.tile.Groups = append(g.tile.Groups, group)
	}
	// Local input registers (from tile logic).
	for b := 0; b < w; b++ {
		ff := g.dff(fmt.Sprintf("noc%d_loc_in", k))
		r.localIns = append(r.localIns, netlist.IPin(ff, "D"))
		allInQ = append(allInQ, netlist.IPin(ff, "Q"))
	}

	// Crossbar + routing logic cloud (depth tracks the core clouds).
	xd := cfg.CloudDepth - 2
	if xd < 2 {
		xd = 2
	}
	xbar := g.cloud(fmt.Sprintf("noc%d_xbar", k), allInQ, 5*w, xd)

	// Output side: output register bank → edge port.
	oi := 0
	for _, e := range dirs {
		group := PortGroup{Edge: e, Pair: outPair(e)}
		for b := 0; b < w; b++ {
			ff := g.dff(fmt.Sprintf("noc%d_%s_out", k, e))
			g.fanout(xbar[oi%len(xbar)], netlist.IPin(ff, "D"))
			oi++
			p := g.d.AddPort(fmt.Sprintf("noc%d_%s_out_%d", k, e, b), cell.DirOut)
			p.Layer = "M6"
			p.HalfCycle = true
			p.ExtCap = 8 // abutting tile's input register + wire stub
			g.drive(g.netName("nocout"), netlist.IPin(ff, "Q"), netlist.PPin(p))
			group.Names = append(group.Names, p.Name)
		}
		g.tile.Groups = append(g.tile.Groups, group)
	}
	// Local outputs.
	for b := 0; b < w; b++ {
		ff := g.dff(fmt.Sprintf("noc%d_loc_out", k))
		g.fanout(xbar[oi%len(xbar)], netlist.IPin(ff, "D"))
		oi++
		r.localOuts = append(r.localOuts, netlist.IPin(ff, "Q"))
	}
	return r
}

// connectBus consumes up to n sinks from *to and drives them from a
// thin staging cloud over `from`. Consumed sinks are removed so no pin
// is ever driven twice.
func (g *gen) connectBus(hint string, from []netlist.PinRef, to *[]netlist.PinRef, n int) {
	if len(from) == 0 || len(*to) == 0 || n <= 0 {
		return
	}
	if n > len(*to) {
		n = len(*to)
	}
	sinks := (*to)[:n]
	*to = (*to)[n:]
	outs := g.cloud(hint, from, n, 2)
	for i, sink := range sinks {
		g.fanout(outs[i%len(outs)], sink)
	}
}

// sweepUndriven ties any remaining undriven flip-flop D inputs to
// existing register outputs (recirculation), keeping the netlist fully
// connected.
func (g *gen) sweepUndriven() {
	var pool []netlist.PinRef
	for _, inst := range g.d.Instances {
		if inst.Master.Kind == cell.KindSeq {
			pool = append(pool, netlist.IPin(inst, "Q"))
		}
	}
	if len(pool) == 0 {
		return
	}
	for _, inst := range g.d.Instances {
		for _, p := range inst.Master.Inputs() {
			if p.Clock {
				continue
			}
			ref := netlist.IPin(inst, p.Name)
			if !g.driven[ref.String()] {
				g.fanout(pool[g.rng.Intn(len(pool))], ref)
			}
		}
	}
}
