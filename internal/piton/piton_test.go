package piton

import (
	"strings"
	"testing"

	"macro3d/internal/cell"
)

func TestGenerateSmallCache(t *testing.T) {
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	t.Logf("small: %d insts (%d std, %d macro, %d seq), %d nets, %d ports, logic %.3f mm², macro %.3f mm²",
		st.NumInstances, st.NumStdCells, st.NumMacros, st.NumSeq,
		st.NumNets, st.NumPorts, st.StdCellArea/1e6, st.MacroArea/1e6)
	if st.NumStdCells < 2000 {
		t.Fatalf("too few std cells: %d", st.NumStdCells)
	}
	// Logic area calibrated to the paper's 0.29 mm² (±5 %).
	if st.StdCellArea < 0.27e6 || st.StdCellArea > 0.31e6 {
		t.Fatalf("logic area = %.3f mm², want ≈0.29", st.StdCellArea/1e6)
	}
	// Memory macros must occupy >50 % of the combined cell area — the
	// regime the paper identifies even for small caches.
	if st.MacroArea <= st.StdCellArea {
		t.Fatalf("macros (%.3f mm²) do not dominate logic (%.3f mm²)",
			st.MacroArea/1e6, st.StdCellArea/1e6)
	}
	// Cache capacity check: 8+16+16+256 kB in banks.
	total := 0
	for _, m := range d.Macros() {
		total += m.Master.Macro.CapacityBytes
	}
	want := (8 + 16 + 16 + 256) * 1024
	if total != want {
		t.Fatalf("total cache = %d bytes, want %d", total, want)
	}
}

func TestGenerateLargeCache(t *testing.T) {
	tile, err := Generate(LargeCache())
	if err != nil {
		t.Fatal(err)
	}
	st := tile.Design.ComputeStats()
	t.Logf("large: %d insts (%d std, %d macro), logic %.3f mm², macro %.3f mm²",
		st.NumInstances, st.NumStdCells, st.NumMacros,
		st.StdCellArea/1e6, st.MacroArea/1e6)
	if st.StdCellArea < 0.44e6 || st.StdCellArea > 0.50e6 {
		t.Fatalf("logic area = %.3f mm², want ≈0.47", st.StdCellArea/1e6)
	}
	total := 0
	for _, m := range tile.Design.Macros() {
		total += m.Master.Macro.CapacityBytes
	}
	want := (16 + 16 + 128 + 1024) * 1024
	if total != want {
		t.Fatalf("total cache = %d bytes, want %d", total, want)
	}
	// Large config has strictly more macro area than small.
	small, _ := Generate(SmallCache())
	if st.MacroArea <= small.Design.ComputeStats().MacroArea {
		t.Fatal("large cache macro area not larger than small")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Design.ComputeStats(), b.Design.ComputeStats()
	if sa != sb {
		t.Fatalf("stats differ between identical runs:\n%+v\n%+v", sa, sb)
	}
	if a.Design.Instances[100].Name != b.Design.Instances[100].Name {
		t.Fatal("instance order differs")
	}
}

func TestClockNetReachesAllSequentials(t *testing.T) {
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	clk := tile.Design.Net("clk")
	if clk == nil || !clk.Clock {
		t.Fatal("no clock net")
	}
	sinks := make(map[string]bool)
	for _, s := range clk.Sinks {
		sinks[s.String()] = true
	}
	for _, inst := range tile.Design.Instances {
		if inst.Master.IsSequential() {
			ck := inst.Master.ClockPin()
			if !sinks[inst.Name+"/"+ck.Name] {
				t.Fatalf("sequential %s not on clock net", inst.Name)
			}
		}
	}
}

func TestNoFloatingInputs(t *testing.T) {
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	driven := make(map[string]bool)
	for _, n := range tile.Design.Nets {
		for _, s := range n.Sinks {
			if s.Inst != nil {
				driven[s.String()] = true
			}
		}
	}
	for _, inst := range tile.Design.Instances {
		for _, p := range inst.Master.Inputs() {
			if !driven[inst.Name+"/"+p.Name] {
				t.Fatalf("floating input %s/%s", inst.Name, p.Name)
			}
		}
	}
}

func TestPortGroupsAlignable(t *testing.T) {
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tile.Config
	// 3 NoCs × 4 edges × 2 (in groups + out groups).
	want := cfg.NoCs * 4 * 2
	if len(tile.Groups) != want {
		t.Fatalf("groups = %d, want %d", len(tile.Groups), want)
	}
	// Every group on an edge has a same-pair partner on the opposite
	// edge with the same size.
	type key struct {
		e    Edge
		pair int
	}
	byKey := make(map[key]PortGroup)
	for _, gr := range tile.Groups {
		byKey[key{gr.Edge, gr.Pair}] = gr
	}
	for _, gr := range tile.Groups {
		partner, ok := byKey[key{gr.Edge.Opposite(), gr.Pair}]
		if !ok {
			t.Fatalf("group %v pair %d has no opposite partner", gr.Edge, gr.Pair)
		}
		if len(partner.Names) != len(gr.Names) {
			t.Fatalf("pair %d size mismatch", gr.Pair)
		}
	}
	// All group ports exist, are half-cycle constrained, on M6.
	for _, gr := range tile.Groups {
		for _, nm := range gr.Names {
			p := tile.Design.Port(nm)
			if p == nil {
				t.Fatalf("group references unknown port %s", nm)
			}
			if !p.HalfCycle {
				t.Fatalf("port %s not half-cycle constrained", nm)
			}
			if p.Layer != "M6" {
				t.Fatalf("port %s on %s, want M6 (paper: all pins in M6)", nm, p.Layer)
			}
		}
	}
}

func TestSramBanksSplitting(t *testing.T) {
	specs := sramBanks("l3", 256*1024, 32)
	if len(specs) != 8 {
		t.Fatalf("256 kB banks = %d, want 8", len(specs))
	}
	per := 0
	for _, s := range specs {
		per += s.CapacityBytes()
	}
	if per != 256*1024 {
		t.Fatalf("bank capacity sums to %d", per)
	}
	// 1 MB stays at 8 banks of 128 kB.
	specs = sramBanks("l3", 1024*1024, 32)
	if len(specs) != 8 || specs[0].CapacityBytes() != 128*1024 {
		t.Fatalf("1 MB split: %d banks of %d", len(specs), specs[0].CapacityBytes())
	}
	// Small cache stays one bank.
	specs = sramBanks("l1i", 8*1024, 32)
	if len(specs) != 1 {
		t.Fatalf("8 kB split into %d banks", len(specs))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := SmallCache()
	bad.DataWidth = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero-width config accepted")
	}
	bad = SmallCache()
	bad.CoreStages = 1
	if _, err := Generate(bad); err == nil {
		t.Fatal("1-stage core accepted")
	}
}

func TestEdgeOpposite(t *testing.T) {
	if North.Opposite() != South || East.Opposite() != West ||
		South.Opposite() != North || West.Opposite() != East {
		t.Fatal("Opposite wrong")
	}
	if North.String() != "N" || West.String() != "W" {
		t.Fatal("edge names wrong")
	}
}

func TestMacroNamesCarryLevel(t *testing.T) {
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	levels := map[string]int{}
	for _, m := range tile.Design.Macros() {
		for _, lv := range []string{"l1i", "l1d", "l2", "l3"} {
			if strings.HasPrefix(m.Name, lv+"_") {
				levels[lv]++
			}
		}
	}
	if levels["l3"] != 8 || levels["l1i"] != 1 || levels["l1d"] != 1 || levels["l2"] != 1 {
		t.Fatalf("bank counts per level: %v", levels)
	}
}

func TestSharedBusFanout(t *testing.T) {
	// The L3 address nets must fan out to all 8 banks — the banked-bus
	// structure that creates the paper's long 2D critical paths.
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tile.Design.Nets {
		if !strings.HasPrefix(n.Name, "n_l3_a_") {
			continue
		}
		found = true
		macroSinks := 0
		for _, s := range n.Sinks {
			if s.Inst != nil && s.Inst.IsMacro() {
				macroSinks++
			}
		}
		if macroSinks != 8 {
			t.Fatalf("L3 addr net %s reaches %d banks, want 8", n.Name, macroSinks)
		}
	}
	if !found {
		t.Fatal("no L3 address nets found")
	}
}

func TestClockPortIsInput(t *testing.T) {
	tile, err := Generate(SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	p := tile.Design.Port(tile.ClockPort)
	if p == nil || p.Dir != cell.DirIn {
		t.Fatal("clock port missing or not input")
	}
}
