package piton

import (
	"testing"

	"macro3d/internal/cell"
)

func TestGenerateSensorSoC(t *testing.T) {
	tile, err := GenerateSensorSoC(DefaultSensorSoC())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	if st.NumMacros != 16 {
		t.Fatalf("sensors = %d", st.NumMacros)
	}
	// Calibrated logic area.
	if st.StdCellArea < 0.11e6 || st.StdCellArea > 0.13e6 {
		t.Fatalf("logic area = %.3f mm²", st.StdCellArea/1e6)
	}
	// Sensor area dominates (the MoL regime).
	if st.MacroArea <= st.StdCellArea {
		t.Fatal("sensors do not dominate")
	}
	// Sensor macros use only three metals.
	for _, m := range d.Macros() {
		if len(m.Master.Obstructions) != 3 {
			t.Fatalf("sensor %s has %d obstruction layers", m.Name, len(m.Master.Obstructions))
		}
	}
	// Output ports exist and are full-cycle.
	p := d.Port("dout_0")
	if p == nil || p.HalfCycle {
		t.Fatalf("dout_0 wrong: %+v", p)
	}
	// No port groups: a sensor SoC is not tiled.
	if len(tile.Groups) != 0 {
		t.Fatalf("sensor SoC has %d port groups", len(tile.Groups))
	}
}

func TestSensorSoCDeterministic(t *testing.T) {
	a, err := GenerateSensorSoC(DefaultSensorSoC())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSensorSoC(DefaultSensorSoC())
	if err != nil {
		t.Fatal(err)
	}
	if a.Design.ComputeStats() != b.Design.ComputeStats() {
		t.Fatal("sensor generation not deterministic")
	}
}

func TestSensorSoCRejectsBadConfig(t *testing.T) {
	bad := DefaultSensorSoC()
	bad.Sensors = 0
	if _, err := GenerateSensorSoC(bad); err == nil {
		t.Fatal("0-sensor config accepted")
	}
	bad = DefaultSensorSoC()
	bad.Stages = 1
	if _, err := GenerateSensorSoC(bad); err == nil {
		t.Fatal("1-stage config accepted")
	}
}

func TestMacroProcessApply(t *testing.T) {
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 1024, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	clkq, leak, energy := sram.ClkQ, sram.Leakage, sram.Macro.EnergyPerAccess
	p := MacroProcess{ClkQScale: 2, EnergyScale: 1.5, LeakageScale: 0.25}
	p.Apply(sram)
	if sram.ClkQ != 2*clkq || sram.Leakage != leak/4 || sram.Macro.EnergyPerAccess != 1.5*energy {
		t.Fatalf("scales not applied: %+v", sram)
	}
	// Zero value = identity.
	before := sram.ClkQ
	MacroProcess{}.Apply(sram)
	if sram.ClkQ != before {
		t.Fatal("zero-value process changed the macro")
	}
}

func TestTinyConfigGenerates(t *testing.T) {
	tile, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	st := tile.Design.ComputeStats()
	if st.NumStdCells > 2000 {
		t.Fatalf("tiny tile too big: %d cells", st.NumStdCells)
	}
	if st.MacroArea <= st.StdCellArea {
		t.Fatal("tiny tile not macro-dominated")
	}
}
