package piton_test

import (
	"strings"
	"testing"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/piton"
)

// placedTinyTile returns a floorplanned tiny tile and its die.
func placedTinyTile(t *testing.T) (*piton.Tile, geom.Rect) {
	t.Helper()
	tile, err := piton.Generate(piton.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	sz, err := floorplan.SizeDesign(tile.Design, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := floorplan.PlaceMacros(tile.Design, sz.Die2D, floorplan.Style2D); err != nil {
		t.Fatal(err)
	}
	floorplan.AssignPorts(tile, sz.Die2D)
	return tile, sz.Die2D
}

func TestAbut2x2Structure(t *testing.T) {
	tile, die := placedTinyTile(t)
	src := tile.Design
	arr, arrayDie, err := piton.Abut(tile, die, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 copies of every instance.
	if len(arr.Instances) != 4*len(src.Instances) {
		t.Fatalf("instances %d, want %d", len(arr.Instances), 4*len(src.Instances))
	}
	// Array die covers 2×2 tiles.
	if arrayDie.W() != 2*die.W() || arrayDie.H() != 2*die.H() {
		t.Fatalf("array die %v", arrayDie)
	}
	// Interior NoC connections became instance-to-instance nets: the
	// abutted design has fewer ports than 4× the tile (interior edges
	// matched away) and exactly the boundary count.
	srcGrouped := 0
	for _, g := range tile.Groups {
		srcGrouped += len(g.Names)
	}
	// For a 2x2 array, half of all grouped ports face inward.
	wantGrouped := 4*srcGrouped - 2*srcGrouped
	gotGrouped := 0
	for _, p := range arr.Ports {
		if strings.Contains(p.Name, "_noc") || strings.Contains(p.Name[3:], "noc") {
			gotGrouped++
		}
	}
	if gotGrouped != wantGrouped {
		t.Fatalf("boundary NoC ports = %d, want %d", gotGrouped, wantGrouped)
	}
	// One merged clock reaching all sequentials.
	clk := arr.Net("clk")
	if clk == nil || !clk.Clock {
		t.Fatal("no merged clock")
	}
	seq := 0
	for _, inst := range arr.Instances {
		if inst.Master.IsSequential() {
			seq++
		}
	}
	if len(clk.Sinks) != seq {
		t.Fatalf("clock sinks %d, want %d", len(clk.Sinks), seq)
	}
}

func TestAbutInteriorConnectivity(t *testing.T) {
	tile, die := placedTinyTile(t)
	arr, _, err := piton.Abut(tile, die, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tile (0,0)'s north-out net must now sink at tile (0,1)'s
	// south-in register.
	found := false
	for _, n := range arr.Nets {
		if n.Driver.Inst == nil || !strings.HasPrefix(n.Driver.Inst.Name, "t0_0_u_noc0_N_out_ff") {
			continue
		}
		for _, s := range n.Sinks {
			if s.Inst != nil && strings.HasPrefix(s.Inst.Name, "t0_1_u_noc0_S_in_ff") {
				found = true
			}
			if s.Port != nil {
				t.Fatalf("interior connection still has a port: %v", s.Port.Name)
			}
		}
	}
	if !found {
		t.Fatal("no north→south stitched net found")
	}
	// Boundary ports survive: tile (0,0)'s south inputs are array
	// ports.
	if arr.Port("t0_0_noc0_S_in_0") == nil {
		t.Fatal("boundary port missing")
	}
	// Interior ports are gone.
	if arr.Port("t0_0_noc0_N_out_0") != nil {
		t.Fatal("interior port still present")
	}
}

func TestAbutGeometryOffsets(t *testing.T) {
	tile, die := placedTinyTile(t)
	arr, _, err := piton.Abut(tile, die, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := tile.Design
	ref := src.Macros()[0]
	right := arr.Instance("t1_0_" + ref.Name)
	left := arr.Instance("t0_0_" + ref.Name)
	if right == nil || left == nil {
		t.Fatal("copies missing")
	}
	d := right.Loc.Sub(left.Loc)
	if d.X != die.W() || d.Y != 0 {
		t.Fatalf("offset %v, want (%v, 0)", d, die.W())
	}
	// Abutting pins coincide: t0_0's east-out port location equals
	// t1_0's west-in location (name derived by edge flip).
	for _, p := range src.Ports {
		if !strings.Contains(p.Name, "_E_out_") {
			continue
		}
		partner := strings.Replace(p.Name, "_E_out_", "_W_in_", 1)
		q := src.Port(partner)
		if q == nil {
			t.Fatalf("missing partner %s", partner)
		}
		a := p.Loc
		b := q.Loc.Add(geom.Pt(die.W(), 0))
		if a.Dist(b) > 1e-6 {
			t.Fatalf("abutting pins %s/%s apart by %v", p.Name, partner, a.Dist(b))
		}
		break
	}
}

func TestAbutRejectsUnplaced(t *testing.T) {
	tile, err := piton.Generate(piton.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := piton.Abut(tile, geom.R(0, 0, 100, 100), 2, 2); err == nil {
		t.Fatal("unfloorplanned tile accepted")
	}
	placed, die := placedTinyTile(t)
	if _, _, err := piton.Abut(placed, die, 0, 2); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestAbutSingleIsIsomorphic(t *testing.T) {
	tile, die := placedTinyTile(t)
	arr, _, err := piton.Abut(tile, die, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := tile.Design
	if len(arr.Instances) != len(src.Instances) {
		t.Fatal("1x1 array changed instance count")
	}
	if len(arr.Ports) != len(src.Ports) {
		t.Fatalf("1x1 array ports %d vs %d", len(arr.Ports), len(src.Ports))
	}
	sa, sb := arr.ComputeStats(), src.ComputeStats()
	if sa.NumNets != sb.NumNets {
		t.Fatalf("1x1 nets %d vs %d", sa.NumNets, sb.NumNets)
	}
}
