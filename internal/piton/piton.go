// Package piton generates OpenPiton-like tile netlists: a 64-bit
// Ariane-style pipelined core, a three-level cache hierarchy built from
// compiled SRAM macros, three parallel NoC routers, and edge-aligned
// inter-tile ports constrained to half a clock cycle — the benchmark
// architecture of the Macro-3D case study (paper §V, Fig. 3).
//
// The generator is deterministic (seeded) and structural: it does not
// reproduce OpenPiton's RTL, but it reproduces the properties the flow
// comparison depends on — macro-dominated area (>50 %), wide shared
// buses fanning out to banked memories, local pipeline cones, and
// tileable I/O. Instance counts are reduced versus gate-level synthesis
// for runtime; standard-cell areas are inflated (cell.LibOptions
// .AreaScale) so total logic area matches the paper's physical scale.
package piton

import (
	"fmt"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// Config selects the tile architecture.
type Config struct {
	Name string

	// Cache capacities in bytes.
	L1I, L1D, L2, L3 int

	// DataWidth is the bus/flit width used for memory and NoC
	// interfaces (reduced from 64/512-bit real buses for scale).
	DataWidth int

	// CoreStages and CoreWidth shape the Ariane-like pipeline:
	// CoreStages register banks of CoreWidth bits with combinational
	// clouds between them.
	CoreStages int
	CoreWidth  int

	// CloudDepth is the combinational levels per pipeline cloud.
	CloudDepth int

	// NoCs is the number of parallel on-chip networks (OpenPiton: 3).
	NoCs int

	// TargetLogicArea, when > 0, rescales standard-cell widths so the
	// summed logic area equals this value (µm²).
	TargetLogicArea float64

	// MacroProcess scales the memory macros' electrical properties to
	// model a macro die in a *different* process node — the
	// heterogeneity the paper's conclusion leaves as future work. The
	// zero value means same-node (all scales 1).
	MacroProcess MacroProcess

	Seed uint64
}

// MacroProcess describes a macro-die technology relative to the logic
// die's node: e.g. an older node optimized for memory density has
// slower access (ClkQScale > 1) but far lower leakage.
type MacroProcess struct {
	ClkQScale    float64 // access-time multiplier (0 → 1)
	EnergyScale  float64 // per-access energy multiplier (0 → 1)
	LeakageScale float64 // leakage multiplier (0 → 1)
}

func (m MacroProcess) orDefault() MacroProcess {
	if m.ClkQScale == 0 {
		m.ClkQScale = 1
	}
	if m.EnergyScale == 0 {
		m.EnergyScale = 1
	}
	if m.LeakageScale == 0 {
		m.LeakageScale = 1
	}
	return m
}

// Apply scales a compiled macro in place.
func (m MacroProcess) Apply(c *cell.Cell) {
	m = m.orDefault()
	c.ClkQ *= m.ClkQScale
	c.Setup *= m.ClkQScale
	c.Leakage *= m.LeakageScale
	if c.Macro != nil {
		c.Macro.EnergyPerAccess *= m.EnergyScale
	}
}

// SmallCache returns the paper's small-cache tile: 8 kB L1I, 16 kB L1D,
// 16 kB L2, 256 kB L3; logic area calibrated to 0.29 mm².
func SmallCache() Config {
	return Config{
		Name: "piton_small",
		L1I:  8 * 1024, L1D: 16 * 1024, L2: 16 * 1024, L3: 256 * 1024,
		DataWidth:  32,
		CoreStages: 6, CoreWidth: 96, CloudDepth: 5,
		NoCs:            3,
		TargetLogicArea: 0.29e6,
		Seed:            1,
	}
}

// LargeCache returns the paper's modern/large-cache tile: 16 kB L1I and
// L1D, 128 kB L2, 1 MB L3; logic area calibrated to 0.47 mm².
func LargeCache() Config {
	return Config{
		Name: "piton_large",
		L1I:  16 * 1024, L1D: 16 * 1024, L2: 128 * 1024, L3: 1024 * 1024,
		DataWidth:  32,
		CoreStages: 6, CoreWidth: 144, CloudDepth: 7,
		NoCs:            3,
		TargetLogicArea: 0.47e6,
		Seed:            2,
	}
}

// Tiny returns a reduced tile for fast flow-level tests and CI: the
// same structure (core, three cache levels, one NoC, aligned ports) at
// a fraction of the size. Not used by the paper experiments.
func Tiny() Config {
	return Config{
		Name: "piton_tiny",
		L1I:  4 * 1024, L1D: 4 * 1024, L2: 8 * 1024, L3: 32 * 1024,
		DataWidth:  8,
		CoreStages: 3, CoreWidth: 16, CloudDepth: 3,
		NoCs:            1,
		TargetLogicArea: 0.02e6,
		Seed:            3,
	}
}

// Edge names a die side for port placement.
type Edge uint8

// Die edges.
const (
	North Edge = iota
	South
	East
	West
)

func (e Edge) String() string {
	switch e {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	}
	return "W"
}

// Opposite returns the facing edge.
func (e Edge) Opposite() Edge {
	switch e {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	}
	return East
}

// PortGroup is a bundle of ports on one edge. Groups come in aligned
// pairs: pair i on an edge must get the same cross-coordinate as pair
// i on the opposite edge so that abutted tiles connect without extra
// routing (paper §V-1).
type PortGroup struct {
	Edge  Edge
	Pair  int // alignment index shared with the opposite edge
	Names []string
}

// Tile is a generated design plus its tiling port plan.
type Tile struct {
	Design *netlist.Design
	Config Config
	Groups []PortGroup

	// ClockPort is the tile clock input.
	ClockPort string
}

// sramBankSpec splits a cache capacity into macros of at most 32 kB
// (mirroring memory-compiler limits), each DataWidth bits wide.
func sramBanks(level string, bytes, width int) []cell.SRAMSpec {
	const maxBank = 32 * 1024
	banks := 1
	if bytes > maxBank {
		banks = bytes / maxBank
		// 1 MB L3 uses 8 × 128 kB banks rather than 32 × 32 kB to keep
		// macro counts at the paper's scale.
		if banks > 8 {
			banks = 8
		}
	}
	per := bytes / banks
	words := per * 8 / width
	specs := make([]cell.SRAMSpec, banks)
	for i := range specs {
		specs[i] = cell.SRAMSpec{
			Name:  fmt.Sprintf("sram_%s_b%d_%dx%d", level, i, words, width),
			Words: words,
			Bits:  width,
		}
	}
	return specs
}

// gen carries generator state.
type gen struct {
	cfg  Config
	lib  *cell.Library
	d    *netlist.Design
	rng  *geom.RNG
	nns  int // net name sequence
	ins  int // instance name sequence
	clk  []netlist.PinRef
	tile *Tile

	// netOf maps a driver PinRef key to its net so fanout() can extend
	// existing nets instead of creating parallel ones.
	netOf map[string]*netlist.Net
	// driven records sink pins that already have a driver.
	driven map[string]bool
}

func (g *gen) netName(hint string) string {
	g.nns++
	return fmt.Sprintf("n_%s_%d", hint, g.nns)
}

func (g *gen) instName(hint string) string {
	g.ins++
	return fmt.Sprintf("u_%s_%d", hint, g.ins)
}

// dff adds a flip-flop and registers its clock pin.
func (g *gen) dff(hint string) *netlist.Instance {
	ff := g.d.AddInstance(g.instName(hint+"_ff"), g.lib.MustCell("DFF_X1"))
	g.clk = append(g.clk, netlist.IPin(ff, "CK"))
	return ff
}

// gate adds a random 2-to-4-input gate and wires the given drivers to
// its inputs (cycling when fewer drivers than inputs). It returns the
// gate; its output net must be created by the caller.
var gateFamilies = []struct {
	name   string
	inputs int
}{
	{"NAND2_X1", 2}, {"NOR2_X1", 2}, {"NAND3_X1", 3},
	{"AOI22_X1", 4}, {"OAI22_X1", 4}, {"XOR2_X1", 2}, {"MUX2_X1", 3},
	{"INV_X1", 1}, {"BUF_X1", 1},
}

// cloud builds a layered random combinational cone from the driver
// refs to `outs` outputs over `depth` levels. Returns output PinRefs
// (gate Y pins).
func (g *gen) cloud(hint string, drivers []netlist.PinRef, outs, depth int) []netlist.PinRef {
	if len(drivers) == 0 {
		panic("piton: cloud with no drivers")
	}
	level := drivers
	for l := 0; l < depth; l++ {
		// Taper the cloud towards the output count.
		n := len(level) + (outs-len(level))*(l+1)/depth
		if n < 1 {
			n = 1
		}
		next := make([]netlist.PinRef, 0, n)
		for k := 0; k < n; k++ {
			spec := gateFamilies[g.rng.Intn(len(gateFamilies))]
			inst := g.d.AddInstance(g.instName(hint), g.lib.MustCell(spec.name))
			// Wire inputs from random members of the previous level,
			// with a locality bias (nearby indices) so the cone has
			// structure rather than uniform randomness.
			ins := inst.Master.Inputs()
			for ii, ip := range ins {
				src := level[(k+ii*3+g.rng.Intn(5))%len(level)]
				g.fanout(src, netlist.IPin(inst, ip.Name))
			}
			next = append(next, netlist.IPin(inst, "Y"))
		}
		level = next
	}
	return level[:min(outs, len(level))]
}

// fanout connects src → sink, creating or extending src's net.
func (g *gen) fanout(src, sink netlist.PinRef) {
	g.driven[sink.String()] = true
	key := src.String()
	if n, ok := g.netOf[key]; ok {
		n.Sinks = append(n.Sinks, sink)
		return
	}
	n := g.d.AddNet(g.netName("w"), src, sink)
	g.netOf[key] = n
}

// drive creates a named net from src to sinks and records both the
// driver's net and the sinks' driven state.
func (g *gen) drive(name string, src netlist.PinRef, sinks ...netlist.PinRef) *netlist.Net {
	n := g.d.AddNet(name, src, sinks...)
	g.netOf[src.String()] = n
	for _, s := range sinks {
		g.driven[s.String()] = true
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
