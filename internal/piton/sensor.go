package piton

import (
	"fmt"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// SensorConfig describes a sensor-on-logic SoC: an array of
// analog/sensor macros (the paper's second heterogeneous use case,
// §I–II) read out by a digital pipeline on the logic die. The sensor
// die can use an older node — in flow terms its macros simply live on
// the macro die with a shallower BEOL.
type SensorConfig struct {
	Name string

	// Sensors is the macro count (arranged by the floorplanner).
	Sensors int
	// SensorW/H are the macro dimensions, µm.
	SensorW, SensorH float64
	// DataBits per sensor.
	DataBits int

	// Pipeline shape of the readout/processing logic.
	Stages, StageWidth, CloudDepth int

	// TargetLogicArea calibrates the logic area, µm² (0 = no scaling).
	TargetLogicArea float64

	Seed uint64
}

// DefaultSensorSoC returns a 16-sensor imaging-style SoC.
func DefaultSensorSoC() SensorConfig {
	return SensorConfig{
		Name:    "sensor_soc",
		Sensors: 16, SensorW: 180, SensorH: 180, DataBits: 12,
		Stages: 4, StageWidth: 64, CloudDepth: 4,
		TargetLogicArea: 0.12e6,
		Seed:            11,
	}
}

// GenerateSensorSoC builds the sensor-on-logic netlist. The returned
// tile has no inter-tile port groups (a sensor SoC is not abutted).
func GenerateSensorSoC(cfg SensorConfig) (*Tile, error) {
	if cfg.Sensors < 1 || cfg.DataBits < 1 || cfg.Stages < 2 || cfg.StageWidth < 4 {
		return nil, fmt.Errorf("piton: implausible sensor config %+v", cfg)
	}
	if cfg.CloudDepth < 1 {
		cfg.CloudDepth = 4
	}
	t, err := generateSensor(cfg, 1.0)
	if err != nil {
		return nil, err
	}
	if cfg.TargetLogicArea > 0 {
		raw := t.Design.ComputeStats().StdCellArea
		if raw <= 0 {
			return nil, fmt.Errorf("piton: sensor SoC generated no logic")
		}
		t, err = generateSensor(cfg, cfg.TargetLogicArea/raw)
		if err != nil {
			return nil, err
		}
	}
	if err := t.Design.Validate(); err != nil {
		return nil, fmt.Errorf("piton: sensor SoC invalid: %w", err)
	}
	return t, nil
}

func generateSensor(cfg SensorConfig, areaScale float64) (*Tile, error) {
	opt := cell.DefaultLibOptions()
	opt.AreaScale = areaScale
	lib := cell.NewStdLib28(opt)

	g := &gen{
		cfg:    Config{CloudDepth: cfg.CloudDepth},
		lib:    lib,
		d:      netlist.NewDesign(cfg.Name, lib),
		rng:    geom.NewRNG(cfg.Seed),
		netOf:  make(map[string]*netlist.Net),
		driven: make(map[string]bool),
	}
	g.tile = &Tile{Design: g.d, Config: g.cfg}

	clkPort := g.d.AddPort("clk_i", cell.DirIn)
	clkPort.Layer = "M6"
	g.tile.ClockPort = "clk_i"

	// Sensor macros with per-sensor capture registers.
	var captureQ []netlist.PinRef
	for i := 0; i < cfg.Sensors; i++ {
		m, err := cell.NewSensor(fmt.Sprintf("sensor_macro_%d", i), cfg.SensorW, cfg.SensorH, cfg.DataBits)
		if err != nil {
			return nil, err
		}
		g.lib.Add(m)
		inst := g.d.AddInstance(fmt.Sprintf("sens_%d", i), m)
		g.clk = append(g.clk, netlist.IPin(inst, "CLK"))
		// Enable decode (shared cloud built later drives EN via sweep).
		for b := 0; b < cfg.DataBits; b++ {
			ff := g.dff(fmt.Sprintf("sens%d_cap", i))
			g.drive(g.netName("sq"), netlist.IPin(inst, fmt.Sprintf("OUT%d", b)), netlist.IPin(ff, "D"))
			captureQ = append(captureQ, netlist.IPin(ff, "Q"))
		}
	}

	// Readout pipeline: capture registers feed processing stages.
	banks := make([][]*netlist.Instance, cfg.Stages)
	for s := range banks {
		banks[s] = make([]*netlist.Instance, cfg.StageWidth)
		for b := range banks[s] {
			banks[s][b] = g.dff(fmt.Sprintf("proc_s%d", s))
		}
	}
	first := g.cloud("readout", captureQ, cfg.StageWidth, cfg.CloudDepth)
	for i, ff := range banks[0] {
		g.fanout(first[i%len(first)], netlist.IPin(ff, "D"))
	}
	for s := 0; s+1 < cfg.Stages; s++ {
		drv := make([]netlist.PinRef, len(banks[s]))
		for i, ff := range banks[s] {
			drv[i] = netlist.IPin(ff, "Q")
		}
		outs := g.cloud(fmt.Sprintf("proc_c%d", s), drv, cfg.StageWidth, cfg.CloudDepth)
		for i, ff := range banks[s+1] {
			g.fanout(outs[i%len(outs)], netlist.IPin(ff, "D"))
		}
	}

	// Output bus ports on the east edge (full-cycle).
	last := banks[cfg.Stages-1]
	for b := 0; b < cfg.DataBits; b++ {
		p := g.d.AddPort(fmt.Sprintf("dout_%d", b), cell.DirOut)
		p.Layer = "M6"
		p.ExtCap = 10
		g.drive(g.netName("dout"), netlist.IPin(last[b%len(last)], "Q"), netlist.PPin(p))
	}

	g.sweepUndriven()

	clkNet := g.d.AddNet("clk", netlist.PPin(clkPort), g.clk...)
	clkNet.Clock = true
	return g.tile, nil
}
