package stash

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(s string) Key { return NewKey([]byte(s)) }

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("a")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on an empty store")
	}
	payload := []byte("the stage state")
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v; want 1 hit, 1 miss, 1 put", st)
	}
	if st.BytesRead != uint64(len(payload)) || st.BytesWritten != uint64(len(payload)) {
		t.Errorf("byte counters = %+v", st)
	}
}

// TestStoreNoTempLeftovers pins the atomic-write contract: after puts,
// the directory contains only committed .snap files.
func TestStoreNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if err := s.Put(testKey(name), []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("want 3 entries, got %d", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".snap") {
			t.Errorf("leftover non-snapshot file %q", e.Name())
		}
	}
}

// TestStoreCorruptionIsMissAndEviction covers every frame-level
// corruption: truncation, a flipped payload bit, bad magic and a
// version from the future all read as a miss and remove the file.
func TestStoreCorruptionIsMissAndEviction(t *testing.T) {
	corrupt := []struct {
		name string
		mod  func(b []byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:headerSize/2] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bit-flip", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future-version", func(b []byte) []byte { b[len(fileMagic)] = 0xee; return b }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k := testKey(tc.name)
			if err := s.Put(k, []byte("some perfectly good state")); err != nil {
				t.Fatal(err)
			}
			path := s.Path(k)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mod(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); ok {
				t.Fatalf("corrupt snapshot read back as a hit: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt snapshot was not evicted")
			}
			if st := s.Stats(); st.Evictions != 1 {
				t.Errorf("stats = %+v; want 1 eviction", st)
			}
		})
	}
}

func TestKeyDerivation(t *testing.T) {
	root := NewKey([]byte("root"))
	a := root.Derive("place", nil)
	b := root.Derive("place", []byte("x"))
	c := root.Derive("route", nil)
	if a == b || a == c || b == c || a == root {
		t.Error("distinct inputs must derive distinct keys")
	}
	if a != root.Derive("place", nil) {
		t.Error("derivation must be deterministic")
	}
	// Length-prefixed stage names: ("ab", "c") must differ from ("a", "bc").
	if root.Derive("ab", []byte("c")) == root.Derive("a", []byte("bc")) {
		t.Error("stage name and material must not concatenate ambiguously")
	}
	if len(root.String()) != 64 {
		t.Errorf("key hex = %q", root.String())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := NewEnc()
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.Int(-42)
	e.F64(3.14159)
	e.F32(-2.5)
	e.Str("hello, stash")
	e.Blob([]byte{1, 2, 3})
	e.I32s([]int32{-1, 0, 1 << 30})
	e.F32s([]float32{0.5, -0.25})
	e.F64s([]float64{1e-300, 1e300})

	d := NewDec(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %x", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F32(); got != -2.5 {
		t.Errorf("F32 = %v", got)
	}
	if got := d.Str(); got != "hello, stash" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := d.I32s(); len(got) != 3 || got[0] != -1 || got[2] != 1<<30 {
		t.Errorf("I32s = %v", got)
	}
	if got := d.F32s(); len(got) != 2 || got[1] != -0.25 {
		t.Errorf("F32s = %v", got)
	}
	if got := d.F64s(); len(got) != 2 || got[1] != 1e300 {
		t.Errorf("F64s = %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestCodecTruncationNeverPanics decodes every prefix of a valid
// snapshot: each must end in a sticky error or a clean Done, never a
// panic or a giant allocation.
func TestCodecTruncationNeverPanics(t *testing.T) {
	e := NewEnc()
	e.Str("net")
	e.I32s([]int32{1, 2, 3, 4})
	e.F64(1.0)
	full := e.Bytes()
	for n := 0; n < len(full); n++ {
		d := NewDec(full[:n])
		d.Str()
		d.I32s()
		d.F64()
		if err := d.Done(); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded cleanly", n, len(full))
		}
	}
}

// TestCodecHugeLengthPrefix pins that a corrupt length prefix is
// rejected before allocation.
func TestCodecHugeLengthPrefix(t *testing.T) {
	e := NewEnc()
	e.U32(0xffffffff) // a length prefix promising 4 G entries
	d := NewDec(e.Bytes())
	if got := d.I32s(); got != nil {
		t.Errorf("I32s on corrupt prefix = %v", got)
	}
	if d.Err() == nil {
		t.Error("huge length prefix must error")
	}
	d2 := NewDec(e.Bytes())
	if got := d2.Str(); got != "" || d2.Err() == nil {
		t.Error("huge string prefix must error")
	}
}

func TestDecDoneRejectsTrailingBytes(t *testing.T) {
	e := NewEnc()
	e.U32(1)
	e.U8(0)
	d := NewDec(e.Bytes())
	d.U32()
	if err := d.Done(); err == nil {
		t.Error("trailing bytes must fail Done")
	}
}

func TestFrameUnframe(t *testing.T) {
	payload := []byte("payload")
	got, err := unframe(frame(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("unframe(frame(p)) = %q, %v", got, err)
	}
	if _, err := unframe(frame(nil)); err != nil {
		t.Fatalf("empty payload must frame cleanly: %v", err)
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "stash")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
}
