// Package stash is a content-addressed, on-disk stage cache for flow
// checkpoint/resume. A snapshot of a completed stage's state is stored
// under a key that hashes everything the state depends on (technology,
// flow kind, configuration, and the upstream stage's key — see Key),
// so a later run whose inputs match up to some stage loads the
// snapshot and skips straight past it. Sweeps and tables that revisit
// the same configuration hit automatically.
//
// Snapshots are framed with a magic string, the codec version and a
// SHA-256 payload checksum, and written atomically (temp file in the
// cache directory + rename), so a crash mid-write never leaves a
// readable-but-wrong entry. A truncated or bit-flipped file fails the
// frame check, is evicted, and reads as a miss — corruption costs a
// recompute, never a wrong resume.
package stash

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Version is the snapshot codec version. It participates in every
// cache key, so bumping it — on any change to the snapshot format or
// to flow semantics the snapshots capture — invalidates the whole
// cache without needing to delete files.
const Version = 1

// fileMagic opens every snapshot file.
const fileMagic = "M3DSNAP1"

// headerSize is magic + u32 version + u64 payload length + sha256.
const headerSize = len(fileMagic) + 4 + 8 + sha256.Size

// Stats is a point-in-time summary of one Store handle's traffic.
// Counters are per-handle (in-memory), not persisted with the cache.
type Stats struct {
	Hits, Misses uint64
	Puts         uint64
	Evictions    uint64 // corrupt, verify-failed or LRU-displaced entries removed
	Errors       uint64 // I/O failures (reads and writes)
	BytesRead    uint64 // payload bytes served from hits
	BytesWritten uint64 // payload bytes stored by puts
	DupPuts      uint64 // puts that found the entry already stored and skipped the write
	CapSkips     uint64 // puts refused because the payload alone exceeds the byte cap

	// Hardened-abstract traffic (flows.Harden). These count harden
	// requests against the cache — a hit skips the whole sub-block
	// signoff — and are a subset of Hits/Misses above.
	HardenHits   uint64
	HardenMisses uint64
}

// Store is a cache directory. All methods are safe for concurrent use,
// including concurrent use of the same key: same-key Puts serialize on
// a per-key lock (first writer wins, later writers skip), and evicting
// an entry never corrupts a concurrent read of it. A Store opened with
// OpenLimited additionally keeps the directory under a byte cap with
// LRU eviction.
type Store struct {
	dir string

	hits, misses, puts, evictions, errs atomic.Uint64
	bytesRead, bytesWritten             atomic.Uint64
	dupPuts, capSkips                   atomic.Uint64
	hardenHits, hardenMisses            atomic.Uint64

	// Per-key write locks (see keyLock) and the LRU index of a
	// byte-capped store (nil maps/list when unlimited; see lru.go).
	locks    sync.Map
	maxBytes int64
	lmu      sync.Mutex
	ll       *list.List
	idx      map[Key]*list.Element
	total    int64
}

// Open opens (creating if needed) a cache directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stash: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key is stored under.
func (s *Store) Path(k Key) string {
	return filepath.Join(s.dir, k.String()+".snap")
}

// Get returns the payload stored under k. A missing entry returns
// (nil, false); a corrupt entry (bad magic, wrong version, truncation,
// checksum mismatch) is evicted and also returns (nil, false).
func (s *Store) Get(k Key) ([]byte, bool) {
	b, err := os.ReadFile(s.Path(k))
	if err != nil {
		if !os.IsNotExist(err) {
			s.errs.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	payload, err := unframe(b)
	if err != nil {
		s.Evict(k)
		s.misses.Add(1)
		return nil, false
	}
	s.touch(k)
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(payload)))
	return payload, true
}

// Put stores payload under k, atomically: the frame is written to a
// temporary file in the cache directory and renamed into place, so a
// crash or full disk mid-write leaves no entry at all. Concurrent Puts
// of the same key serialize; the losers find the entry present and
// return without writing (the store is content-addressed — same key,
// same content). On a byte-capped store the write may displace the
// least-recently-used entries, and a payload that alone exceeds the
// cap is not stored at all.
func (s *Store) Put(k Key, payload []byte) error {
	mu := s.keyLock(k)
	mu.Lock()
	defer mu.Unlock()
	if s.exists(k) {
		s.dupPuts.Add(1)
		s.touch(k)
		return nil
	}
	frameSize := int64(headerSize + len(payload))
	if s.maxBytes > 0 && frameSize > s.maxBytes {
		s.capSkips.Add(1)
		return nil
	}
	f, err := os.CreateTemp(s.dir, ".put-*.tmp")
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("stash: put %s: %w", k, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		s.errs.Add(1)
		return fmt.Errorf("stash: put %s: %w", k, err)
	}
	if _, err := f.Write(frame(payload)); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, s.Path(k)); err != nil {
		os.Remove(tmp)
		s.errs.Add(1)
		return fmt.Errorf("stash: put %s: %w", k, err)
	}
	s.admit(k, frameSize)
	s.puts.Add(1)
	s.bytesWritten.Add(uint64(len(payload)))
	return nil
}

// Evict removes the entry stored under k, if any. It takes the key's
// write lock, so an eviction never interleaves with a Put of the same
// key (the corrupt-entry path cannot delete a just-rewritten snapshot
// mid-commit).
func (s *Store) Evict(k Key) {
	mu := s.keyLock(k)
	mu.Lock()
	defer mu.Unlock()
	s.forget(k)
	if err := os.Remove(s.Path(k)); err == nil {
		s.evictions.Add(1)
	} else if !os.IsNotExist(err) {
		s.errs.Add(1)
	}
}

// Stats returns this handle's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		Evictions:    s.evictions.Load(),
		Errors:       s.errs.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		DupPuts:      s.dupPuts.Load(),
		CapSkips:     s.capSkips.Load(),
		HardenHits:   s.hardenHits.Load(),
		HardenMisses: s.hardenMisses.Load(),
	}
}

// NoteHarden records the outcome of one hardened-abstract cache lookup
// (the underlying Get already counted it in Hits/Misses; this tags it
// as harden traffic for the CLI summary and /stashz).
func (s *Store) NoteHarden(hit bool) {
	if hit {
		s.hardenHits.Add(1)
	} else {
		s.hardenMisses.Add(1)
	}
}

// frame wraps a payload with magic, version, length and checksum.
func frame(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, fileMagic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// unframe validates a snapshot file and returns its payload.
func unframe(b []byte) ([]byte, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("stash: snapshot truncated (%d bytes)", len(b))
	}
	if !bytes.Equal(b[:len(fileMagic)], []byte(fileMagic)) {
		return nil, fmt.Errorf("stash: bad snapshot magic")
	}
	b = b[len(fileMagic):]
	if v := binary.LittleEndian.Uint32(b); v != Version {
		return nil, fmt.Errorf("stash: snapshot version %d, want %d", v, Version)
	}
	n := binary.LittleEndian.Uint64(b[4:])
	b = b[12:]
	var sum [sha256.Size]byte
	copy(sum[:], b)
	payload := b[sha256.Size:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("stash: snapshot payload is %d bytes, header says %d", len(payload), n)
	}
	if got := sha256.Sum256(payload); got != sum {
		return nil, fmt.Errorf("stash: snapshot checksum mismatch")
	}
	return payload, nil
}
