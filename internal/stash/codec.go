package stash

import (
	"fmt"
	"math"
)

// Enc builds a deterministic little-endian binary snapshot. All
// multi-byte values are written least-significant byte first; floats
// are written as their IEEE-754 bit patterns, so the encoding of equal
// state is byte-identical across runs, worker counts and platforms.
type Enc struct {
	b []byte
}

// NewEnc returns an empty encoder.
func NewEnc() *Enc { return &Enc{b: make([]byte, 0, 4096)} }

// Bytes returns the encoded snapshot.
func (e *Enc) Bytes() []byte { return e.b }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.b) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a bool as one byte (0/1).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Int appends an int as its two's-complement 64-bit pattern.
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// F32 appends a float32 as its IEEE-754 bit pattern.
func (e *Enc) F32(v float32) { e.U32(math.Float32bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(v []int32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// F32s appends a length-prefixed []float32.
func (e *Enc) F32s(v []float32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F32(x)
	}
}

// F64s appends a length-prefixed []float64.
func (e *Enc) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Dec reads a snapshot produced by Enc. Every read is bounds-checked
// against the remaining input and length prefixes are validated before
// allocation, so a truncated or bit-flipped snapshot yields an error
// from Err — never a panic or an over-allocation. The error is sticky:
// after the first failure all further reads return zero values.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over the snapshot bytes.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Done returns an error if decoding failed or input bytes remain.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("stash: %d trailing bytes after decode", len(d.b)-d.off)
	}
	return nil
}

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("stash: "+format+" at offset %d", append(args, d.off)...)
	}
}

// take returns the next n bytes, or nil after recording an error.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated: need %d bytes, have %d", n, len(d.b)-d.off)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte")
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Int reads a two's-complement 64-bit int.
func (d *Dec) Int() int { return int(int64(d.U64())) }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads an IEEE-754 float32.
func (d *Dec) F32() float32 { return math.Float32frombits(d.U32()) }

// sliceLen validates a length prefix against the remaining bytes at
// the given element width, preventing huge allocations from corrupt
// prefixes.
func (d *Dec) sliceLen(elemSize int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int(n) > (len(d.b)-d.off)/elemSize {
		d.fail("length prefix %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice.
func (d *Dec) Blob() []byte {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := d.sliceLen(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// F32s reads a length-prefixed []float32.
func (d *Dec) F32s() []float32 {
	n := d.sliceLen(4)
	if d.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.F32()
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Dec) F64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}
