package stash

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file makes a Store safe and bounded as a *shared* artifact
// store (the daemon's multi-tenant cache):
//
//   - Single-writer-per-key: concurrent Puts of the same key serialize
//     on a per-key lock, and the second writer finds the entry already
//     present and skips the write entirely (same key ⇒ same content in
//     a content-addressed store, so first-wins is sound and saves the
//     duplicate I/O). Evict takes the same lock, so a Put can never
//     interleave with an eviction of its own key.
//
//   - Byte-capped LRU: a Store opened with OpenLimited tracks every
//     entry in recency order and evicts the least-recently-used entries
//     whenever the total exceeds the cap. Readers are never harmed by
//     eviction: Get opens the file before any concurrent Remove could
//     run, and POSIX keeps an unlinked-but-open file readable, so a hit
//     always returns a complete, checksum-verified payload — eviction
//     can only turn a would-be hit into a miss.

// lruEntry is one tracked snapshot: its key and on-disk frame size.
type lruEntry struct {
	key  Key
	size int64
}

// keyLock returns the per-key write lock, creating it on first use.
// Locks are never removed — the key space of one run is small (one
// lock per distinct checkpoint), so the map stays bounded.
func (s *Store) keyLock(k Key) *sync.Mutex {
	if mu, ok := s.locks.Load(k); ok {
		return mu.(*sync.Mutex)
	}
	mu, _ := s.locks.LoadOrStore(k, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// exists reports whether an entry is present. Tracked stores answer
// from the index (authoritative within the owning process); untracked
// stores ask the filesystem.
func (s *Store) exists(k Key) bool {
	if s.maxBytes > 0 {
		s.lmu.Lock()
		_, ok := s.idx[k]
		s.lmu.Unlock()
		return ok
	}
	_, err := os.Stat(s.Path(k))
	return err == nil
}

// OpenLimited opens a cache directory with a byte cap: the total size
// of all snapshot frames is kept at or below maxBytes by evicting the
// least-recently-used entries. Pre-existing snapshots are indexed by
// modification time (oldest = least recent) and trimmed immediately if
// the directory already exceeds the cap. maxBytes <= 0 means unlimited
// (identical to Open).
func OpenLimited(dir string, maxBytes int64) (*Store, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	if maxBytes <= 0 {
		return s, nil
	}
	s.maxBytes = maxBytes
	s.ll = list.New()
	s.idx = make(map[Key]*list.Element)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("stash: open %s: %w", dir, err)
	}
	type onDisk struct {
		e     lruEntry
		mtime int64
	}
	var found []onDisk
	for _, ent := range entries {
		stem, ok := strings.CutSuffix(ent.Name(), ".snap")
		if !ok {
			continue
		}
		raw, err := hex.DecodeString(stem)
		if err != nil || len(raw) != len(Key{}) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		var k Key
		copy(k[:], raw)
		found = append(found, onDisk{lruEntry{key: k, size: info.Size()}, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	s.lmu.Lock()
	for _, f := range found { // oldest pushed first ends up at the back
		s.idx[f.e.key] = s.ll.PushFront(&lruEntry{key: f.e.key, size: f.e.size})
		s.total += f.e.size
	}
	s.evictOverflowLocked(nil)
	s.lmu.Unlock()
	return s, nil
}

// Usage returns the tracked total of on-disk frame bytes and the cap.
// Both are zero for an unlimited store.
func (s *Store) Usage() (total, max int64) {
	if s.maxBytes <= 0 {
		return 0, 0
	}
	s.lmu.Lock()
	defer s.lmu.Unlock()
	return s.total, s.maxBytes
}

// touch marks k most-recently-used.
func (s *Store) touch(k Key) {
	if s.maxBytes <= 0 {
		return
	}
	s.lmu.Lock()
	if el, ok := s.idx[k]; ok {
		s.ll.MoveToFront(el)
	}
	s.lmu.Unlock()
}

// admit records a freshly stored entry and evicts overflow. The entry
// being admitted is never chosen as an eviction victim.
func (s *Store) admit(k Key, size int64) {
	if s.maxBytes <= 0 {
		return
	}
	s.lmu.Lock()
	if el, ok := s.idx[k]; ok {
		e := el.Value.(*lruEntry)
		s.total += size - e.size
		e.size = size
		s.ll.MoveToFront(el)
	} else {
		s.idx[k] = s.ll.PushFront(&lruEntry{key: k, size: size})
		s.total += size
	}
	s.evictOverflowLocked(&k)
	s.lmu.Unlock()
}

// forget drops k from the index (entry removed from disk elsewhere).
func (s *Store) forget(k Key) {
	if s.maxBytes <= 0 {
		return
	}
	s.lmu.Lock()
	if el, ok := s.idx[k]; ok {
		s.total -= el.Value.(*lruEntry).size
		s.ll.Remove(el)
		delete(s.idx, k)
	}
	s.lmu.Unlock()
}

// evictOverflowLocked removes least-recently-used entries until the
// total fits the cap, sparing keep (the entry just admitted). Called
// with lmu held.
func (s *Store) evictOverflowLocked(keep *Key) {
	for s.total > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*lruEntry)
		if keep != nil && e.key == *keep {
			if s.ll.Len() == 1 {
				return
			}
			s.ll.MoveToFront(el)
			continue
		}
		s.ll.Remove(el)
		delete(s.idx, e.key)
		s.total -= e.size
		// Removing the path is safe against concurrent readers: an
		// already-opened file stays readable until closed (POSIX), and
		// a reader that has not opened yet simply misses.
		if err := os.Remove(filepath.Join(s.dir, e.key.String()+".snap")); err == nil || os.IsNotExist(err) {
			s.evictions.Add(1)
		} else {
			s.errs.Add(1)
		}
	}
}
