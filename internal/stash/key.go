package stash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Key is a content address: the SHA-256 over everything that
// determines a checkpoint's state. Keys chain — each stage's key is
// derived from the upstream stage's key plus the stage's own inputs —
// so two runs share a cache entry exactly when every input up to that
// point is identical.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// NewKey hashes root material (technology fingerprint, flow kind,
// configuration) into the chain's first key.
func NewKey(material []byte) Key { return sha256.Sum256(material) }

// Derive chains the next stage's key from this one: a hash over the
// parent key, the stage name and the stage's own key material. The
// stage name is length-prefixed so (name, material) pairs cannot
// collide by concatenation.
func (k Key) Derive(stage string, material []byte) Key {
	h := sha256.New()
	h.Write(k[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(stage)))
	h.Write(n[:])
	h.Write([]byte(stage))
	h.Write(material)
	var out Key
	h.Sum(out[:0])
	return out
}
