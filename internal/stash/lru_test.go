package stash

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func lruKey(i int) Key { return NewKey([]byte(fmt.Sprintf("key-%d", i))) }

// timeAt gives entry i a distinct, monotonic mtime.
func timeAt(i int) time.Time { return time.Unix(int64(1_700_000_000+10*i), 0) }

// frameBytes is the on-disk size of a payload's frame.
func frameBytes(payloadLen int) int64 { return int64(headerSize + payloadLen) }

// TestPutSameKeyConcurrent hammers one key with concurrent Puts and
// Gets. Under -race this is the regression test for the shared-store
// write race: same-key Puts must serialize, every Get must return
// either a miss or the complete payload, and exactly one writer wins.
func TestPutSameKeyConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := lruKey(0)
	payload := bytes.Repeat([]byte("macro3d"), 1000)

	const writers, readers, rounds = 8, 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Put(k, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if got, ok := s.Get(k); ok && !bytes.Equal(got, payload) {
					t.Errorf("Get returned corrupt payload (%d bytes)", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.Puts != 1 {
		t.Errorf("Puts = %d, want exactly 1 (first writer wins)", st.Puts)
	}
	if want := uint64(writers*rounds - 1); st.DupPuts != want {
		t.Errorf("DupPuts = %d, want %d", st.DupPuts, want)
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, payload) {
		t.Fatal("final Get lost the payload")
	}
}

// TestDupPutSkipsWrite asserts the content-addressed first-wins
// contract: the second Put of a key is a recorded no-op.
func TestDupPutSkipsWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := lruKey(1)
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.DupPuts != 1 {
		t.Errorf("Puts=%d DupPuts=%d, want 1/1", st.Puts, st.DupPuts)
	}
}

// TestLRUEviction fills a byte-capped store past its budget and
// asserts the oldest entry is displaced while the directory stays
// under the cap.
func TestLRUEviction(t *testing.T) {
	const payloadLen = 100
	cap := 3 * frameBytes(payloadLen)
	dir := t.TempDir()
	s, err := OpenLimited(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, payloadLen) }
	for i := 0; i < 4; i++ {
		if err := s.Put(lruKey(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(lruKey(0)); ok {
		t.Error("oldest entry survived eviction")
	}
	for i := 1; i < 4; i++ {
		if got, ok := s.Get(lruKey(i)); !ok || !bytes.Equal(got, payload(i)) {
			t.Errorf("entry %d lost or corrupt after eviction", i)
		}
	}
	if total, max := s.Usage(); total > max {
		t.Errorf("tracked usage %d exceeds cap %d", total, max)
	}
	assertDirUnder(t, dir, cap)
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
}

// TestLRURecency asserts Get refreshes recency: touching the oldest
// entry redirects eviction to the second-oldest.
func TestLRURecency(t *testing.T) {
	const payloadLen = 100
	s, err := OpenLimited(t.TempDir(), 3*frameBytes(payloadLen))
	if err != nil {
		t.Fatal(err)
	}
	p := bytes.Repeat([]byte("x"), payloadLen)
	for i := 0; i < 3; i++ {
		if err := s.Put(lruKey(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(lruKey(0)); !ok { // key 0 becomes most recent
		t.Fatal("warm entry missing")
	}
	if err := s.Put(lruKey(3), p); err != nil { // displaces key 1, not key 0
		t.Fatal(err)
	}
	if _, ok := s.Get(lruKey(0)); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := s.Get(lruKey(1)); ok {
		t.Error("least recently used entry survived")
	}
}

// TestOpenLimitedTrimsExisting re-opens an over-budget directory with a
// cap and asserts it is trimmed down, oldest first, on open.
func TestOpenLimitedTrimsExisting(t *testing.T) {
	const payloadLen = 200
	dir := t.TempDir()
	s, err := Open(dir) // unlimited: overfill
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(lruKey(i), bytes.Repeat([]byte{byte(i)}, payloadLen)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the scan's oldest-first order is stable.
		mt := os.Chtimes(s.Path(lruKey(i)), timeAt(i), timeAt(i))
		if mt != nil {
			t.Fatal(mt)
		}
	}
	cap := 2 * frameBytes(payloadLen)
	s2, err := OpenLimited(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	if total, _ := s2.Usage(); total > cap {
		t.Errorf("usage %d exceeds cap %d after trim", total, cap)
	}
	assertDirUnder(t, dir, cap)
	// The newest two survive, the oldest three are gone.
	for i := 0; i < 3; i++ {
		if _, ok := s2.Get(lruKey(i)); ok {
			t.Errorf("old entry %d survived the open-time trim", i)
		}
	}
	for i := 3; i < 5; i++ {
		if _, ok := s2.Get(lruKey(i)); !ok {
			t.Errorf("new entry %d lost in the open-time trim", i)
		}
	}
}

// TestOversizePayloadSkipped asserts a payload that alone exceeds the
// cap is refused outright — never stored-then-evicted, so the
// directory never overshoots its budget even transiently.
func TestOversizePayloadSkipped(t *testing.T) {
	dir := t.TempDir()
	cap := frameBytes(10)
	s, err := OpenLimited(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	k := lruKey(0)
	if err := s.Put(k, bytes.Repeat([]byte("z"), 1000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("oversize payload was stored")
	}
	if st := s.Stats(); st.CapSkips != 1 || st.Puts != 0 {
		t.Errorf("CapSkips=%d Puts=%d, want 1/0", st.CapSkips, st.Puts)
	}
	assertDirUnder(t, dir, cap)
}

// TestGetDuringEviction floods a tiny capped store from many writers
// while readers hammer every key: eviction may turn hits into misses
// but must never surface a torn or wrong payload, and the directory
// must stay under the cap throughout. Run with -race.
func TestGetDuringEviction(t *testing.T) {
	const payloadLen = 64
	const keys = 16
	dir := t.TempDir()
	cap := 4 * frameBytes(payloadLen)
	s, err := OpenLimited(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, payloadLen)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				k := (w + i) % keys
				if err := s.Put(lruKey(k), payload(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (r + i) % keys
				if got, ok := s.Get(lruKey(k)); ok && !bytes.Equal(got, payload(k)) {
					t.Errorf("key %d: corrupt payload under eviction pressure", k)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if total, max := s.Usage(); total > max {
		t.Errorf("usage %d over cap %d after contention", total, max)
	}
	assertDirUnder(t, dir, cap)
}

// TestCorruptionUnderContention bit-flips snapshots while readers and
// writers run: a corrupted entry must read as a miss (never as wrong
// bytes), be evicted, and accept a clean re-Put.
func TestCorruptionUnderContention(t *testing.T) {
	const keys = 8
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('A' + i)}, 256)
	}
	for i := 0; i < keys; i++ {
		if err := s.Put(lruKey(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	// Corruptor: flip the last byte of each snapshot, twice over.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 2; round++ {
			for i := 0; i < keys; i++ {
				p := s.Path(lruKey(i))
				b, err := os.ReadFile(p)
				if err != nil || len(b) == 0 {
					continue // already evicted — fine
				}
				b[len(b)-1] ^= 0x55
				_ = os.WriteFile(p, b, 0o644)
			}
		}
	}()
	// Readers: any successful Get must be byte-perfect.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := (r + i) % keys
				if got, ok := s.Get(lruKey(k)); ok && !bytes.Equal(got, payload(k)) {
					t.Errorf("key %d: corrupt bytes served as a hit", k)
					return
				}
			}
		}(r)
	}
	// Writers: repopulate what the corruptor destroys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			k := i % keys
			if err := s.Put(lruKey(k), payload(k)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Settle: every key must be restorable to a clean hit.
	for i := 0; i < keys; i++ {
		if err := s.Put(lruKey(i), payload(i)); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(lruKey(i)); !ok || !bytes.Equal(got, payload(i)) {
			t.Errorf("key %d not restorable after corruption", i)
		}
	}
}

// assertDirUnder sums the *.snap files and fails if they exceed cap.
func assertDirUnder(t *testing.T, dir string, cap int64) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			continue
		}
		total += info.Size()
	}
	if total > cap {
		t.Errorf("on-disk snapshots total %d bytes, cap is %d", total, cap)
	}
}
