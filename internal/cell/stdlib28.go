package cell

import (
	"fmt"
	"math"

	"macro3d/internal/geom"
)

// LibOptions configures synthetic library generation.
type LibOptions struct {
	RowHeight float64 // µm
	SiteWidth float64 // µm
	// AreaScale inflates standard-cell widths. Case-study netlists are
	// generated at reduced instance counts for runtime; scaling cell
	// area up keeps the total logic area — and therefore the
	// wire-versus-gate balance that drives every 3D-vs-2D result — at
	// the paper's physical scale.
	AreaScale float64
	PinLayer  string // layer carrying standard-cell pins
}

// DefaultLibOptions returns the 28 nm-class defaults.
func DefaultLibOptions() LibOptions {
	return LibOptions{
		RowHeight: 1.2,
		SiteWidth: 0.19,
		AreaScale: 1.0,
		PinLayer:  "M1",
	}
}

// gateSpec is the X1 prototype of one sizing family.
type gateSpec struct {
	family    string
	kind      Kind
	inputs    int
	sites     float64 // width in sites at X1 (before AreaScale)
	cin       float64 // fF per input at X1
	res       float64 // kΩ at X1
	intrinsic float64 // ps
	energy    float64 // fJ per output toggle at X1
	leak      float64 // nW at X1
	drives    []int
}

var gates28 = []gateSpec{
	{"INV", KindInv, 1, 2, 1.2, 3.0, 8, 0.40, 2.0, []int{1, 2, 4, 8, 16, 32}},
	{"BUF", KindBuf, 1, 3, 1.1, 2.8, 16, 0.70, 3.0, []int{1, 2, 4, 8, 16, 32}},
	{"NAND2", KindComb, 2, 3, 1.4, 3.6, 10, 0.55, 3.2, []int{1, 2, 4, 8}},
	{"NAND3", KindComb, 3, 4, 1.5, 4.0, 12, 0.65, 4.0, []int{1, 2, 4, 8}},
	{"NOR2", KindComb, 2, 3, 1.5, 4.2, 11, 0.60, 3.4, []int{1, 2, 4, 8}},
	{"AOI22", KindComb, 4, 5, 1.6, 4.6, 14, 0.80, 4.8, []int{1, 2, 4}},
	{"OAI22", KindComb, 4, 5, 1.6, 4.6, 14, 0.80, 4.8, []int{1, 2, 4}},
	{"XOR2", KindComb, 2, 6, 2.2, 4.0, 18, 1.10, 5.5, []int{1, 2, 4}},
	{"MUX2", KindComb, 3, 6, 1.8, 3.8, 16, 0.95, 5.0, []int{1, 2, 4}},
}

// dffSpec: the flip-flop family.
var dff28 = struct {
	sites             float64
	dCap, ckCap       float64
	res               float64
	clkq, setup, hold float64
	energy, leak      float64
	drives            []int
}{
	sites: 8, dCap: 1.3, ckCap: 1.0,
	res: 2.6, clkq: 70, setup: 35, hold: 5,
	energy: 1.8, leak: 6.0,
	drives: []int{1, 2, 4},
}

// inputNames generates A, B, C, … pin names.
func inputNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	return names
}

// NewStdLib28 builds the synthetic 28 nm standard-cell library.
func NewStdLib28(opt LibOptions) *Library {
	if opt.AreaScale <= 0 {
		opt.AreaScale = 1
	}
	lib := NewLibrary("stdlib28")
	for _, g := range gates28 {
		for _, n := range g.drives {
			lib.Add(makeGate(g, n, opt))
		}
	}
	for _, n := range dff28.drives {
		lib.Add(makeDFF(n, opt))
	}
	// Filler: the minimum-width cell. In the Macro-3D flow, macro-die
	// macros are shrunk to exactly this substrate footprint ("the size
	// of a filler cell; commercial tools do not allow an area of 0").
	lib.Add(&Cell{
		Name:   "FILL_X1",
		Kind:   KindFiller,
		Family: "",
		Width:  opt.SiteWidth,
		Height: opt.RowHeight,
	})
	return lib
}

// footprintDrive quantizes a drive to its footprint group: libraries
// share one cell image inside {X1..X4}, {X8..X16} and {X32}, so sizing
// within a group is footprint-neutral (in-place) while crossing groups
// needs an ECO move.
func footprintDrive(drive int) float64 {
	switch {
	case drive <= 4:
		return 4
	case drive <= 16:
		return 16
	}
	return 32
}

func makeGate(g gateSpec, drive int, opt LibOptions) *Cell {
	d := float64(drive)
	w := g.sites * (1 + 0.8*(footprintDrive(drive)-1)) * opt.SiteWidth * opt.AreaScale
	c := &Cell{
		Name:           fmt.Sprintf("%s_X%d", g.family, drive),
		Kind:           g.kind,
		Family:         g.family,
		Drive:          drive,
		Width:          w,
		Height:         opt.RowHeight,
		Intrinsic:      g.intrinsic * (1 + 0.05*math.Log2(d)),
		DriveRes:       g.res / d,
		SlewSens:       0.12,
		SlewIntrinsic:  10,
		SlewRes:        3.6 / d,
		InternalEnergy: g.energy * d,
		Leakage:        g.leak * d,
	}
	names := inputNames(g.inputs)
	for i, nm := range names {
		c.Pins = append(c.Pins, Pin{
			Name:   nm,
			Dir:    DirIn,
			Cap:    g.cin * (0.7 + 0.3*d),
			Offset: geom.Pt(w*0.15, opt.RowHeight*(0.25+0.5*float64(i)/math.Max(1, float64(g.inputs-1)))),
			Layer:  opt.PinLayer,
		})
	}
	c.Pins = append(c.Pins, Pin{
		Name:   "Y",
		Dir:    DirOut,
		Offset: geom.Pt(w*0.85, opt.RowHeight*0.5),
		Layer:  opt.PinLayer,
	})
	return c
}

func makeDFF(drive int, opt LibOptions) *Cell {
	d := float64(drive)
	w := dff28.sites * (1 + 0.5*(footprintDrive(drive)-1)) * opt.SiteWidth * opt.AreaScale
	c := &Cell{
		Name:           fmt.Sprintf("DFF_X%d", drive),
		Kind:           KindSeq,
		Family:         "DFF",
		Drive:          drive,
		Width:          w,
		Height:         opt.RowHeight,
		Intrinsic:      0, // sequential launch uses ClkQ
		DriveRes:       dff28.res / d,
		SlewSens:       0.10,
		SlewIntrinsic:  12,
		SlewRes:        3.2 / d,
		ClkQ:           dff28.clkq * (1 + 0.04*math.Log2(d)),
		Setup:          dff28.setup,
		Hold:           dff28.hold,
		InternalEnergy: dff28.energy * d,
		Leakage:        dff28.leak * d,
	}
	c.Pins = []Pin{
		{Name: "D", Dir: DirIn, Cap: dff28.dCap * (0.8 + 0.2*d),
			Offset: geom.Pt(w*0.1, opt.RowHeight*0.3), Layer: opt.PinLayer},
		{Name: "CK", Dir: DirIn, Cap: dff28.ckCap, Clock: true,
			Offset: geom.Pt(w*0.1, opt.RowHeight*0.7), Layer: opt.PinLayer},
		{Name: "Q", Dir: DirOut,
			Offset: geom.Pt(w*0.9, opt.RowHeight*0.5), Layer: opt.PinLayer},
	}
	return c
}
