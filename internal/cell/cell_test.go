package cell

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func lib(t *testing.T) *Library {
	t.Helper()
	return NewStdLib28(DefaultLibOptions())
}

func TestLibraryHasExpectedMasters(t *testing.T) {
	l := lib(t)
	for _, name := range []string{
		"INV_X1", "INV_X32", "BUF_X4", "NAND2_X1", "NOR2_X8",
		"AOI22_X2", "XOR2_X4", "MUX2_X1", "DFF_X1", "DFF_X4", "FILL_X1",
	} {
		if l.Cell(name) == nil {
			t.Errorf("missing master %s", name)
		}
	}
	if l.Len() < 30 {
		t.Fatalf("library unexpectedly small: %d", l.Len())
	}
}

func TestDriveScaling(t *testing.T) {
	l := lib(t)
	x1 := l.MustCell("INV_X1")
	x4 := l.MustCell("INV_X4")
	if x4.DriveRes >= x1.DriveRes {
		t.Fatal("X4 not stronger than X1")
	}
	if x4.Pins[0].Cap <= x1.Pins[0].Cap {
		t.Fatal("X4 input cap not larger")
	}
	// X1 and X4 share a footprint group (same cell image); X8 crosses
	// into the next group and grows.
	if x4.Width != x1.Width {
		t.Fatal("X1/X4 not footprint-compatible")
	}
	if l.MustCell("INV_X8").Width <= x4.Width {
		t.Fatal("X8 not wider than the X1–X4 image")
	}
	if x4.InternalEnergy <= x1.InternalEnergy {
		t.Fatal("X4 energy not larger")
	}
}

func TestFamilySizing(t *testing.T) {
	l := lib(t)
	fam := l.Family("INV")
	if len(fam) != 6 {
		t.Fatalf("INV family size %d", len(fam))
	}
	for i := 1; i < len(fam); i++ {
		if fam[i].Drive <= fam[i-1].Drive {
			t.Fatal("family not sorted by drive")
		}
	}
	up := l.NextSizeUp(l.MustCell("INV_X1"))
	if up == nil || up.Name != "INV_X2" {
		t.Fatalf("NextSizeUp(INV_X1) = %v", up)
	}
	if l.NextSizeUp(l.MustCell("INV_X32")) != nil {
		t.Fatal("NextSizeUp at top not nil")
	}
	dn := l.NextSizeDown(l.MustCell("INV_X2"))
	if dn == nil || dn.Name != "INV_X1" {
		t.Fatalf("NextSizeDown(INV_X2) = %v", dn)
	}
	if l.NextSizeDown(l.MustCell("INV_X1")) != nil {
		t.Fatal("NextSizeDown at bottom not nil")
	}
}

func TestDelayModel(t *testing.T) {
	l := lib(t)
	inv := l.MustCell("INV_X1")
	d0 := inv.Delay(0, 0)
	if d0 != inv.Intrinsic {
		t.Fatalf("no-load delay = %v", d0)
	}
	// Delay increases with load and with input slew.
	if inv.Delay(10, 0) <= d0 || inv.Delay(0, 50) <= d0 {
		t.Fatal("delay not monotone in load/slew")
	}
	// FO4 sanity: an inverter driving 4 copies of itself lands in the
	// 15–40 ps band expected at 28 nm.
	fo4 := inv.Delay(4*inv.Pins[0].Cap, 0)
	if fo4 < 10 || fo4 > 50 {
		t.Fatalf("FO4 = %v ps, out of plausible band", fo4)
	}
	if inv.OutSlew(10) <= inv.OutSlew(0) {
		t.Fatal("slew not monotone in load")
	}
}

func TestDFFProperties(t *testing.T) {
	l := lib(t)
	ff := l.MustCell("DFF_X1")
	if !ff.IsSequential() {
		t.Fatal("DFF not sequential")
	}
	if ff.ClkQ <= 0 || ff.Setup <= 0 {
		t.Fatal("missing sequential timing")
	}
	ck := ff.ClockPin()
	if ck == nil || ck.Name != "CK" || !ck.Clock {
		t.Fatalf("clock pin wrong: %+v", ck)
	}
	if ff.Pin("D") == nil || ff.Pin("Q") == nil {
		t.Fatal("missing D/Q pins")
	}
	if out := ff.Output(); out == nil || out.Name != "Q" {
		t.Fatalf("Output = %v", out)
	}
	if got := len(ff.Inputs()); got != 2 {
		t.Fatalf("DFF inputs = %d", got)
	}
}

func TestCombCellsNotSequential(t *testing.T) {
	l := lib(t)
	for _, name := range []string{"INV_X1", "NAND2_X2", "MUX2_X1"} {
		if l.MustCell(name).IsSequential() {
			t.Errorf("%s reported sequential", name)
		}
	}
}

func TestPinOffsetsInsideCell(t *testing.T) {
	l := lib(t)
	for _, c := range l.Cells() {
		for _, p := range c.Pins {
			if p.Offset.X < 0 || p.Offset.X > c.Width ||
				p.Offset.Y < 0 || p.Offset.Y > c.Height {
				t.Errorf("%s pin %s offset %v outside %vx%v",
					c.Name, p.Name, p.Offset, c.Width, c.Height)
			}
		}
	}
}

func TestAreaScale(t *testing.T) {
	opt := DefaultLibOptions()
	opt.AreaScale = 8
	big := NewStdLib28(opt)
	small := lib(t)
	r := big.MustCell("INV_X1").Width / small.MustCell("INV_X1").Width
	if math.Abs(r-8) > 1e-9 {
		t.Fatalf("AreaScale ratio = %v", r)
	}
	// Electrical parameters must not scale with area inflation.
	if big.MustCell("INV_X1").DriveRes != small.MustCell("INV_X1").DriveRes {
		t.Fatal("AreaScale changed drive resistance")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	l := NewLibrary("x")
	l.Add(&Cell{Name: "A"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	l.Add(&Cell{Name: "A"})
}

func TestMustCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCell on unknown did not panic")
		}
	}()
	NewLibrary("x").MustCell("nope")
}

func TestCellsDeterministicOrder(t *testing.T) {
	l := lib(t)
	a := l.Cells()
	b := l.Cells()
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("Cells order not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Name <= a[i-1].Name {
			t.Fatal("Cells not sorted")
		}
	}
}

func TestClone(t *testing.T) {
	l := lib(t)
	c := l.MustCell("DFF_X1").Clone()
	c.Pins[0].Layer = "M9"
	if l.MustCell("DFF_X1").Pins[0].Layer == "M9" {
		t.Fatal("Clone shares pin storage")
	}
}

func TestSRAMCompiler(t *testing.T) {
	s, err := NewSRAM(SRAMSpec{Name: "sram_16k_64", Words: 2048, Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindMacro || s.Macro == nil {
		t.Fatal("not a macro")
	}
	if got := s.Macro.CapacityBytes; got != 16*1024 {
		t.Fatalf("capacity = %d", got)
	}
	wantArea := 2048. * 64 * bitcellArea / arrayEfficiency
	if math.Abs(s.Area()-wantArea)/wantArea > 0.02 {
		t.Fatalf("area %v, want ≈%v", s.Area(), wantArea)
	}
	// Aspect ratio near the requested 1.5.
	if ar := s.Width / s.Height; ar < 1.2 || ar > 1.9 {
		t.Fatalf("aspect = %v", ar)
	}
	// Pin inventory: CLK CE WE + 11 addr + 64 D + 64 Q.
	if got := len(s.Pins); got != 3+11+64+64 {
		t.Fatalf("pin count = %d", got)
	}
	if s.ClockPin() == nil {
		t.Fatal("SRAM has no clock pin")
	}
	if !s.IsSequential() {
		t.Fatal("clocked SRAM not sequential")
	}
	for _, p := range s.Pins {
		if p.Layer != "M4" {
			t.Fatalf("pin %s on %s, want M4", p.Name, p.Layer)
		}
		if p.Offset.X < 0 || p.Offset.X > s.Width {
			t.Fatalf("pin %s off footprint", p.Name)
		}
	}
	// Obstructions M1..M4 covering the footprint.
	if len(s.Obstructions) != 4 {
		t.Fatalf("obstruction count = %d", len(s.Obstructions))
	}
	seen := map[string]bool{}
	for _, o := range s.Obstructions {
		seen[o.Layer] = true
		if o.Rect.W() < s.Width || o.Rect.H() < s.Height {
			t.Fatal("obstruction does not cover footprint")
		}
	}
	for _, ly := range []string{"M1", "M2", "M3", "M4"} {
		if !seen[ly] {
			t.Fatalf("missing obstruction on %s", ly)
		}
	}
}

func TestSRAMScaling(t *testing.T) {
	small, _ := NewSRAM(SRAMSpec{Name: "a", Words: 1024, Bits: 32})
	big, _ := NewSRAM(SRAMSpec{Name: "b", Words: 32768, Bits: 64})
	if big.Area() <= small.Area() {
		t.Fatal("area not monotone in capacity")
	}
	if big.ClkQ <= small.ClkQ {
		t.Fatal("access time not monotone in capacity")
	}
	if big.Macro.EnergyPerAccess <= small.Macro.EnergyPerAccess {
		t.Fatal("access energy not monotone")
	}
	if big.Leakage <= small.Leakage {
		t.Fatal("leakage not monotone")
	}
}

func TestSRAMRejectsBadSpecs(t *testing.T) {
	if _, err := NewSRAM(SRAMSpec{Name: "x", Words: 1, Bits: 8}); err == nil {
		t.Fatal("1-word SRAM accepted")
	}
	if _, err := NewSRAM(SRAMSpec{Name: "x", Words: 64, Bits: 0}); err == nil {
		t.Fatal("0-bit SRAM accepted")
	}
}

func TestSRAMAddrBits(t *testing.T) {
	cases := []struct {
		words, want int
	}{{2, 1}, {1024, 10}, {1025, 11}, {32768, 15}}
	for _, c := range cases {
		if got := (SRAMSpec{Words: c.words, Bits: 8}).AddrBits(); got != c.want {
			t.Errorf("AddrBits(%d) = %d, want %d", c.words, got, c.want)
		}
	}
}

// Property: compiled SRAM area always equals bits/efficiency within
// snapping error, and all pins stay on the footprint.
func TestSRAMProperty(t *testing.T) {
	f := func(w, b uint16) bool {
		words := 64 + int(w)%4096
		bits := 8 + int(b)%128
		s, err := NewSRAM(SRAMSpec{Name: "p", Words: words, Bits: bits})
		if err != nil {
			return false
		}
		want := float64(words*bits) * bitcellArea / arrayEfficiency
		if math.Abs(s.Area()-want)/want > 0.05 {
			return false
		}
		for _, p := range s.Pins {
			if p.Offset.X < 0 || p.Offset.X > s.Width || p.Offset.Y < 0 || p.Offset.Y > s.Height {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSensorMacro(t *testing.T) {
	s, err := NewSensor("imgsense", 400, 300, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindMacro || s.Width != 400 || s.Height != 300 {
		t.Fatalf("sensor geometry wrong: %+v", s)
	}
	// Sensor uses only three metals.
	if len(s.Obstructions) != 3 {
		t.Fatalf("sensor obstructions = %d", len(s.Obstructions))
	}
	for _, p := range s.Pins {
		if p.Layer != "M3" {
			t.Fatalf("sensor pin on %s", p.Layer)
		}
	}
	outs := 0
	for _, p := range s.Pins {
		if p.Dir == DirOut {
			outs++
		}
	}
	if outs != 12 {
		t.Fatalf("sensor outputs = %d", outs)
	}
	if _, err := NewSensor("bad", 0, 10, 4); err == nil {
		t.Fatal("zero-width sensor accepted")
	}
	if _, err := NewSensor("bad", 10, 10, 0); err == nil {
		t.Fatal("zero-bit sensor accepted")
	}
}

func TestKindAndDirStrings(t *testing.T) {
	if KindMacro.String() != "macro" || KindSeq.String() != "seq" {
		t.Fatal("kind names wrong")
	}
	if DirIn.String() != "in" || DirOut.String() != "out" || DirInOut.String() != "inout" {
		t.Fatal("dir names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind formatting")
	}
}
