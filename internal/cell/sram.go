package cell

import (
	"fmt"
	"math"

	"macro3d/internal/geom"
)

// SRAM-compiler constants for the synthetic 28 nm node: a 6T bitcell
// of 0.12 µm² at 75 % array efficiency (0.16 µm² effective per bit),
// which lands macro areas in the range that makes memories occupy
// >50 % of the tile substrate — the regime the paper targets — while
// still letting all macros of the large-cache tile pack onto a macro
// die of half the 2D footprint.
const (
	bitcellArea     = 0.12 // µm² per bit
	arrayEfficiency = 0.75
	sramAspect      = 1.5 // width / height
)

// SRAMSpec requests a memory macro from the compiler.
type SRAMSpec struct {
	Name  string
	Words int
	Bits  int // data width
}

// CapacityBytes returns the macro capacity.
func (s SRAMSpec) CapacityBytes() int { return s.Words * s.Bits / 8 }

// AddrBits returns the address width.
func (s SRAMSpec) AddrBits() int {
	if s.Words <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(s.Words))))
}

// NewSRAM compiles a memory macro. The produced master has
//
//   - footprint area = bits·words·bitcellArea/efficiency, aspect 1.5;
//   - pins (CLK, CE, WE, A[·], D[·], Q[·]) spread along the bottom
//     edge on layer M4;
//   - obstructions covering the full footprint on M1–M4 (the paper:
//     "the internal routing of a memory block fully occupies the
//     first four layers");
//   - access time, energy and leakage scaling with capacity.
func NewSRAM(spec SRAMSpec) (*Cell, error) {
	if spec.Words < 2 || spec.Bits < 1 {
		return nil, fmt.Errorf("cell: SRAM %q needs words>=2, bits>=1 (got %d, %d)",
			spec.Name, spec.Words, spec.Bits)
	}
	bits := float64(spec.Words * spec.Bits)
	area := bits * bitcellArea / arrayEfficiency
	w := geom.Snap(math.Sqrt(area*sramAspect), 0.1)
	h := geom.Snap(area/w, 0.1)
	capKB := float64(spec.CapacityBytes()) / 1024

	c := &Cell{
		Name:   spec.Name,
		Kind:   KindMacro,
		Width:  w,
		Height: h,
		// Clocked macro: launches read data, captures write data.
		ClkQ:  150 + 55*math.Log2(capKB+1),
		Setup: 50,
		Hold:  8,
		// Output drive of the SRAM's data buffers.
		DriveRes:       1.6,
		SlewSens:       0.08,
		SlewIntrinsic:  18,
		SlewRes:        2.0,
		InternalEnergy: 0, // accounted via EnergyPerAccess
		Leakage:        50 * capKB,
		Macro: &MacroInfo{
			Words:           spec.Words,
			Bits:            spec.Bits,
			CapacityBytes:   spec.CapacityBytes(),
			EnergyPerAccess: 2000 + 60*capKB,
		},
	}

	// Pin list: controls, address, data-in, data-out.
	type pd struct {
		name  string
		dir   PinDir
		cap   float64
		clock bool
	}
	var pins []pd
	pins = append(pins,
		pd{"CLK", DirIn, 2.0, true},
		pd{"CE", DirIn, 2.5, false},
		pd{"WE", DirIn, 2.5, false},
	)
	for i := 0; i < spec.AddrBits(); i++ {
		pins = append(pins, pd{fmt.Sprintf("A%d", i), DirIn, 2.5, false})
	}
	for i := 0; i < spec.Bits; i++ {
		pins = append(pins, pd{fmt.Sprintf("D%d", i), DirIn, 2.2, false})
	}
	for i := 0; i < spec.Bits; i++ {
		pins = append(pins, pd{fmt.Sprintf("Q%d", i), DirOut, 0, false})
	}
	// Spread along the bottom edge, slightly inset.
	n := len(pins)
	for i, p := range pins {
		x := w * (0.5 + float64(i)) / float64(n)
		c.Pins = append(c.Pins, Pin{
			Name:   p.name,
			Dir:    p.dir,
			Cap:    p.cap,
			Clock:  p.clock,
			Offset: geom.Pt(x, 0.5),
			Layer:  "M4",
		})
	}

	full := geom.R(0, 0, w, h)
	for _, ly := range []string{"M1", "M2", "M3", "M4"} {
		c.Obstructions = append(c.Obstructions, Obstruction{Layer: ly, Rect: full})
	}
	return c, nil
}

// NewSensor compiles an analog/sensor macro for sensor-on-logic
// stacks: an unclocked block with a configurable digital interface on
// M3 and M1–M3 obstructions (analog blocks use fewer metals).
func NewSensor(name string, w, h float64, dataBits int) (*Cell, error) {
	if w <= 0 || h <= 0 || dataBits < 1 {
		return nil, fmt.Errorf("cell: sensor %q needs positive size and >=1 bit", name)
	}
	c := &Cell{
		Name:   name,
		Kind:   KindMacro,
		Width:  w,
		Height: h,
		// Sensor digital outputs are registered internally.
		ClkQ:          400,
		Setup:         60,
		Hold:          10,
		DriveRes:      2.2,
		SlewSens:      0.08,
		SlewIntrinsic: 22,
		SlewRes:       2.4,
		Leakage:       800,
		Macro: &MacroInfo{
			Bits:            dataBits,
			EnergyPerAccess: 5000,
		},
	}
	pins := []Pin{
		{Name: "CLK", Dir: DirIn, Cap: 2.0, Clock: true},
		{Name: "EN", Dir: DirIn, Cap: 2.4},
	}
	for i := 0; i < dataBits; i++ {
		pins = append(pins, Pin{Name: fmt.Sprintf("OUT%d", i), Dir: DirOut})
	}
	n := len(pins)
	for i := range pins {
		pins[i].Offset = geom.Pt(w*(0.5+float64(i))/float64(n), 0.5)
		pins[i].Layer = "M3"
	}
	c.Pins = pins
	full := geom.R(0, 0, w, h)
	for _, ly := range []string{"M1", "M2", "M3"} {
		c.Obstructions = append(c.Obstructions, Obstruction{Layer: ly, Rect: full})
	}
	return c, nil
}
