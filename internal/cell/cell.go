// Package cell models the building blocks placed by the flow: a
// synthetic standard-cell library with a slew-aware linear delay model
// (the usual k·R·C abstraction of NLDM tables), and an SRAM macro
// compiler producing memory blocks with capacity-scaled area, timing
// and energy, pins on M4 and full M1–M4 internal-routing obstructions —
// matching the macro properties the Macro-3D paper relies on.
//
// Units: µm, kΩ, fF, ps, fJ, nW (leakage).
package cell

import (
	"fmt"
	"sort"

	"macro3d/internal/geom"
)

// PinDir is the signal direction of a cell pin.
type PinDir uint8

// Pin directions.
const (
	DirIn PinDir = iota
	DirOut
	DirInOut
)

func (d PinDir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return "inout"
	}
}

// Pin is a physical + electrical pin of a cell master.
type Pin struct {
	Name   string
	Dir    PinDir
	Cap    float64    // input capacitance, fF (0 for outputs)
	Offset geom.Point // location in the cell's local frame, µm
	Layer  string     // metal layer the pin shape sits on
	Clock  bool       // true for clock inputs

	// Boundary timing arcs of hardened-macro abstracts (Cell.Abstract
	// != nil), in sign-off-corner-absolute ps — STA consumes them
	// without applying a corner scale, unlike the cell-level
	// Setup/ClkQ. Zero on ordinary masters.
	//
	// Setup at a data input is the full internal budget of the pin:
	// worst path delay from the pin to an internal capture register
	// plus that register's setup, referenced to the abstract's clock
	// pin. ClkQ at an output is the worst internal clock-edge→pin
	// delay at the hardened block's own load.
	Setup float64
	ClkQ  float64
}

// Kind classifies cell masters.
type Kind uint8

// Cell kinds.
const (
	KindComb   Kind = iota // combinational gate
	KindSeq                // flip-flop / latch
	KindBuf                // buffer (used by CTS and net buffering)
	KindInv                // inverter
	KindFiller             // filler cell (also the Macro-3D shrink target)
	KindMacro              // hard macro (SRAM, sensor, ADC, …)
)

func (k Kind) String() string {
	switch k {
	case KindComb:
		return "comb"
	case KindSeq:
		return "seq"
	case KindBuf:
		return "buf"
	case KindInv:
		return "inv"
	case KindFiller:
		return "filler"
	case KindMacro:
		return "macro"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Obstruction is an internal-routing blockage of a master on one layer.
type Obstruction struct {
	Layer string
	Rect  geom.Rect // local frame
}

// Cell is a library master: a standard cell or a hard macro.
type Cell struct {
	Name   string
	Kind   Kind
	Family string // sizing family, e.g. "INV", "NAND2", "DFF"
	Drive  int    // drive strength (X1, X2, …); 0 for macros/fillers

	Width  float64 // µm
	Height float64 // µm (row height for standard cells)

	Pins []Pin

	// Linear delay model: for an in→out arc,
	//   delay = Intrinsic + DriveRes·Cload + SlewSens·inputSlew
	//   outSlew = SlewIntrinsic + SlewRes·Cload
	Intrinsic     float64 // ps
	DriveRes      float64 // kΩ
	SlewSens      float64 // ps delay per ps of input slew
	SlewIntrinsic float64 // ps
	SlewRes       float64 // kΩ (slew per fF of load)

	// Sequential timing (KindSeq and clocked macros).
	ClkQ  float64 // clock-to-output delay, ps
	Setup float64 // setup requirement at data inputs, ps
	Hold  float64 // hold requirement, ps

	// Energy.
	InternalEnergy float64 // fJ per output toggle (short-circuit + internal)
	Leakage        float64 // nW

	// Macro-only data.
	Obstructions []Obstruction
	Macro        *MacroInfo

	// Abstract marks a master produced by hardening a sub-block
	// through our own P&R (flows.Harden) rather than by a compiler.
	Abstract *AbstractInfo
}

// MacroInfo carries SRAM-compiler metadata for KindMacro cells.
type MacroInfo struct {
	Words           int
	Bits            int
	CapacityBytes   int
	EnergyPerAccess float64 // fJ
}

// AbstractInfo carries the sign-off summary of a hardened sub-block.
// An abstract's per-pin boundary arcs (Pin.Setup/Pin.ClkQ) plus
// MinPeriodPs fully describe its timing to a parent flow; the
// geometry side is the usual pins + per-layer Obstructions.
type AbstractInfo struct {
	// SourceFlow and SourceConfig record provenance: the flow kind the
	// sub-block was signed off with ("Macro-3D", "2D") and the
	// benchmark configuration name.
	SourceFlow   string
	SourceConfig string

	// MinPeriodPs is the sub-block's own sign-off minimum period
	// (slow corner). A parent clock cannot beat it: STA floors the
	// parent MinPeriod at the worst instantiated abstract.
	MinPeriodPs float64

	// EnergyPerCycleFJ and LeakageUW summarize the sub-block's
	// typical-corner power for parent-level accounting.
	EnergyPerCycleFJ float64
	LeakageUW        float64

	// F2FBumps is the bonding via count the hardened block consumes
	// internally (Macro-3D sub-blocks only).
	F2FBumps int
}

// Area returns the footprint area in µm².
func (c *Cell) Area() float64 { return c.Width * c.Height }

// Pin returns the named pin, or nil.
func (c *Cell) Pin(name string) *Pin {
	for i := range c.Pins {
		if c.Pins[i].Name == name {
			return &c.Pins[i]
		}
	}
	return nil
}

// Output returns the first output pin, or nil. Standard cells here have
// exactly one output.
func (c *Cell) Output() *Pin {
	for i := range c.Pins {
		if c.Pins[i].Dir == DirOut {
			return &c.Pins[i]
		}
	}
	return nil
}

// Inputs returns all input pins (including clocks).
func (c *Cell) Inputs() []*Pin {
	var ins []*Pin
	for i := range c.Pins {
		if c.Pins[i].Dir == DirIn {
			ins = append(ins, &c.Pins[i])
		}
	}
	return ins
}

// ClockPin returns the clock input, or nil.
func (c *Cell) ClockPin() *Pin {
	for i := range c.Pins {
		if c.Pins[i].Clock {
			return &c.Pins[i]
		}
	}
	return nil
}

// IsSequential reports whether the master launches/captures on a clock
// (flip-flops and clocked macros).
func (c *Cell) IsSequential() bool {
	return c.Kind == KindSeq || (c.Kind == KindMacro && c.ClockPin() != nil)
}

// Delay evaluates the arc delay for a load and input slew, in ps.
func (c *Cell) Delay(loadFF, inSlewPs float64) float64 {
	return c.Intrinsic + c.DriveRes*loadFF + c.SlewSens*inSlewPs
}

// OutSlew evaluates the output slew for a load, in ps.
func (c *Cell) OutSlew(loadFF float64) float64 {
	return c.SlewIntrinsic + c.SlewRes*loadFF
}

// Clone returns a deep copy of the master (pins and obstructions
// included). The Macro-3D layer-editing step works on clones so the
// original library is never mutated.
func (c *Cell) Clone() *Cell {
	d := *c
	d.Pins = append([]Pin(nil), c.Pins...)
	d.Obstructions = append([]Obstruction(nil), c.Obstructions...)
	if c.Macro != nil {
		m := *c.Macro
		d.Macro = &m
	}
	if c.Abstract != nil {
		a := *c.Abstract
		d.Abstract = &a
	}
	return &d
}

// Library is a set of masters with sizing-family indices.
type Library struct {
	Name  string
	cells map[string]*Cell
	// families maps a family name ("INV") to its masters sorted by
	// ascending drive.
	families map[string][]*Cell
}

// NewLibrary returns an empty library.
func NewLibrary(name string) *Library {
	return &Library{
		Name:     name,
		cells:    make(map[string]*Cell),
		families: make(map[string][]*Cell),
	}
}

// Add registers a master. It panics on duplicate names — libraries are
// constructed once by generators, so a duplicate is a programming bug.
func (l *Library) Add(c *Cell) {
	if _, dup := l.cells[c.Name]; dup {
		panic(fmt.Sprintf("cell: duplicate master %q", c.Name))
	}
	l.cells[c.Name] = c
	if c.Family != "" {
		fam := l.families[c.Family]
		fam = append(fam, c)
		sort.Slice(fam, func(i, j int) bool { return fam[i].Drive < fam[j].Drive })
		l.families[c.Family] = fam
	}
}

// Cell returns the named master, or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// MustCell returns the named master or panics.
func (l *Library) MustCell(name string) *Cell {
	c := l.cells[name]
	if c == nil {
		panic(fmt.Sprintf("cell: unknown master %q", name))
	}
	return c
}

// Family returns the masters of a sizing family in ascending drive.
func (l *Library) Family(name string) []*Cell { return l.families[name] }

// NextSizeUp returns the next stronger master in c's family, or nil
// when c is already the strongest.
func (l *Library) NextSizeUp(c *Cell) *Cell {
	fam := l.families[c.Family]
	for i, m := range fam {
		if m.Name == c.Name && i+1 < len(fam) {
			return fam[i+1]
		}
	}
	return nil
}

// NextSizeDown returns the next weaker master, or nil.
func (l *Library) NextSizeDown(c *Cell) *Cell {
	fam := l.families[c.Family]
	for i, m := range fam {
		if m.Name == c.Name && i > 0 {
			return fam[i-1]
		}
	}
	return nil
}

// Cells returns all masters in deterministic (name-sorted) order.
func (l *Library) Cells() []*Cell {
	names := make([]string, 0, len(l.cells))
	for n := range l.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Cell, len(names))
	for i, n := range names {
		out[i] = l.cells[n]
	}
	return out
}

// Len returns the master count.
func (l *Library) Len() int { return len(l.cells) }
