package partition

import (
	"math"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/place"
)

// clusters builds two tightly connected clusters joined by a few nets:
// min-cut should keep clusters intact.
func clusters(t *testing.T) *netlist.Design {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("cl", lib)
	mk := func(prefix string, n int) []*netlist.Instance {
		out := make([]*netlist.Instance, n)
		for i := range out {
			out[i] = d.AddInstance(prefix+itoa(i), lib.MustCell("INV_X1"))
		}
		return out
	}
	a := mk("a", 40)
	b := mk("b", 40)
	wire := func(xs []*netlist.Instance, prefix string) {
		for i := 0; i+1 < len(xs); i++ {
			d.AddNet(prefix+itoa(i), netlist.IPin(xs[i], "Y"), netlist.IPin(xs[i+1], "A"))
		}
	}
	wire(a, "na")
	wire(b, "nb")
	// Two bridge nets.
	d.AddNet("bridge0", netlist.IPin(a[39], "Y"), netlist.IPin(b[0], "A"))
	d.AddNet("bridge1", netlist.IPin(b[39], "Y"), netlist.IPin(a[0], "A"))
	return d
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestTierPartitionClusters(t *testing.T) {
	d := clusters(t)
	res, err := TierPartition(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ideal cut is 2 (the bridges); allow small slack.
	if res.CutNets > 6 {
		t.Fatalf("cut = %d, expected near-minimal (2)", res.CutNets)
	}
	// Balance: both sides hold roughly half the area.
	total := res.AreaLogic + res.AreaMacro
	if math.Abs(res.AreaLogic-total/2) > total*0.15 {
		t.Fatalf("unbalanced: %v vs %v", res.AreaLogic, res.AreaMacro)
	}
}

func TestTierPartitionTile(t *testing.T) {
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// MoL macro floorplan (macros → macro die), then partition cells.
	if _, _, err := floorplan.PlaceMacros(d, sz.Die3D, floorplan.StyleMoL); err != nil {
		t.Fatal(err)
	}
	res, err := TierPartition(d, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tile partition: cut %d nets, areas %.3f / %.3f mm², %d moves",
		res.CutNets, res.AreaLogic/1e6, res.AreaMacro/1e6, res.Moves)
	if res.CutNets == 0 {
		t.Fatal("no cut nets on a balanced bipartition")
	}
	total := res.AreaLogic + res.AreaMacro
	if res.AreaLogic < total*0.38 || res.AreaLogic > total*0.62 {
		t.Fatalf("area balance broken: %.1f%%", 100*res.AreaLogic/total)
	}
	// Macros untouched.
	for _, m := range d.Macros() {
		if m.Die != netlist.MacroDie {
			t.Fatal("partition moved a macro")
		}
	}
}

func TestCountCutNets(t *testing.T) {
	d := clusters(t)
	for i, c := range d.StdCells() {
		if i%2 == 0 {
			c.Die = netlist.LogicDie
		} else {
			c.Die = netlist.MacroDie
		}
	}
	// Alternating assignment cuts every chain net.
	if got := CountCutNets(d); got < 70 {
		t.Fatalf("alternating cut = %d, expected ~80", got)
	}
	for _, c := range d.StdCells() {
		c.Die = netlist.LogicDie
	}
	if got := CountCutNets(d); got != 0 {
		t.Fatalf("single-die cut = %d", got)
	}
}

func TestLegalizeTiersDisplacesOverlaps(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("ov", lib)
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 8192, Bits: 32})
	if err != nil {
		t.Fatal(err)
	}
	mem := d.AddInstance("mem", sram)
	mem.Loc = geom.Pt(50, 50)
	mem.Die = netlist.MacroDie
	mem.Fixed, mem.Placed = true, true

	die := geom.R(0, 0, 600, 600)
	// Cells placed ON the macro area, assigned to the macro die — the
	// post-partition overlap scenario.
	var onMacro []*netlist.Instance
	for i := 0; i < 30; i++ {
		c := d.AddInstance("c"+itoa(i), lib.MustCell("NAND2_X1"))
		c.Loc = geom.Pt(60+float64(i%6)*10, 60+float64(i/6)*10)
		c.Die = netlist.MacroDie
		c.Placed = true
		onMacro = append(onMacro, c)
	}
	leg, err := LegalizeTiers(d, die, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if leg.Displaced == 0 {
		t.Fatal("no cells displaced despite macro overlap")
	}
	// Every cell now clear of the macro.
	mb := mem.Bounds()
	for _, c := range onMacro {
		if mb.Expand(-1e-7).Intersects(c.Bounds()) {
			t.Fatalf("%s still on macro after tier legalization", c.Name)
		}
	}
	// Displacement is substantial: at least out of the macro.
	if leg.MaxDisp < 50 {
		t.Fatalf("max displacement %v µm, expected macro-scale", leg.MaxDisp)
	}
	_ = place.CheckLegal // silence import when assertions change
}

// TestLegalizeTiersSpillToLogicDie pins the spill path end to end: when
// the macro die has no room at all (a macro covering the whole die),
// every macro-die cell must spill, change dies, be picked up by the
// logic-die pass (the consistency check on the once-discarded spill
// list), legalize there, and be counted in Spilled and the displacement
// stats.
func TestLegalizeTiersSpillToLogicDie(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("spill", lib)
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 8192, Bits: 32})
	if err != nil {
		t.Fatal(err)
	}
	mem := d.AddInstance("mem", sram)
	mem.Loc = geom.Pt(0, 0)
	mem.Die = netlist.MacroDie
	mem.Fixed, mem.Placed = true, true
	// The macro covers the die bar a 1.2 µm strip: wide enough that
	// placement rows exist on the macro die, too narrow for a DFF
	// (1.52 µm) — so every cell fails there and must spill.
	die := geom.R(0, 0, sram.Width+1.2, sram.Height)

	var cells []*netlist.Instance
	for i := 0; i < 12; i++ {
		c := d.AddInstance("s"+itoa(i), lib.MustCell("DFF_X1"))
		c.Loc = geom.Pt(5+float64(i)*2, 5)
		c.Die = netlist.MacroDie
		c.Placed = true
		cells = append(cells, c)
	}
	leg, err := LegalizeTiers(d, die, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if leg.Spilled != len(cells) {
		t.Fatalf("Spilled = %d, want all %d cells", leg.Spilled, len(cells))
	}
	for _, c := range cells {
		if c.Die != netlist.LogicDie {
			t.Fatalf("%s still on the macro die after spilling", c.Name)
		}
	}
	if leg.MeanDisp <= 0 || leg.MaxDisp <= 0 {
		t.Fatalf("spilled cells not accounted in displacement: mean %v max %v",
			leg.MeanDisp, leg.MaxDisp)
	}
}

func TestBinBalance(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("bb", lib)
	die := geom.R(0, 0, 100, 100)
	// 100 cells clustered in one bin, all on the logic die.
	for i := 0; i < 100; i++ {
		c := d.AddInstance("c"+itoa(i), lib.MustCell("INV_X1"))
		c.Loc = geom.Pt(10+float64(i%10)*0.5, 10+float64(i/10)*0.5)
		c.Die = netlist.LogicDie
	}
	flips := BinBalance(d, die, 40)
	if flips == 0 {
		t.Fatal("no flips despite total imbalance")
	}
	a, b := 0, 0
	for _, c := range d.StdCells() {
		if c.Die == netlist.LogicDie {
			a++
		} else {
			b++
		}
	}
	// Within the 30% tolerance of the bin total.
	if a < 30 || b < 30 {
		t.Fatalf("bin not balanced: %d/%d", a, b)
	}
}

func TestBinBalanceAlreadyBalanced(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("bb2", lib)
	for i := 0; i < 40; i++ {
		c := d.AddInstance("c"+itoa(i), lib.MustCell("INV_X1"))
		c.Loc = geom.Pt(5, 5)
		if i%2 == 0 {
			c.Die = netlist.LogicDie
		} else {
			c.Die = netlist.MacroDie
		}
	}
	if flips := BinBalance(d, geom.R(0, 0, 50, 50), 25); flips != 0 {
		t.Fatalf("balanced bin flipped %d cells", flips)
	}
}
