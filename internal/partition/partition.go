// Package partition implements the tier-partitioning step of the
// Shrunk-2D and Compact-2D baseline flows: an area-balanced
// Fiduccia–Mattheyses-style min-cut bipartition assigning each
// standard cell to the logic or macro die, followed by per-die overlap
// legalization against the *real* macro extents.
//
// The legalization step is where the paper's observed S2D/C2D failure
// materializes: the pseudo-2D placement honoured only coarse partial
// blockages, so after partitioning, cells assigned to a die can sit on
// top of that die's macros and must be displaced — sometimes far —
// degrading timing that the frozen post-partition netlist can no
// longer recover (paper §III).
package partition

import (
	"fmt"
	"sort"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/place"
)

// Options tunes the partitioner.
type Options struct {
	// BalanceTol is the allowed deviation of either side from half the
	// movable area (default 0.10).
	BalanceTol float64
	// MaxPasses bounds improvement passes (default 6).
	MaxPasses int
	Seed      uint64
}

func (o Options) withDefaults() Options {
	if o.BalanceTol <= 0 {
		o.BalanceTol = 0.10
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 6
	}
	return o
}

// Result reports partition quality.
type Result struct {
	CutNets   int
	AreaLogic float64 // µm² of movable cells on the logic die
	AreaMacro float64
	Moves     int // improvement moves applied
}

// TierPartition assigns Die to every movable standard cell. Macros
// keep their floorplanned die; ports anchor to the logic die.
func TierPartition(d *netlist.Design, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	rng := geom.NewRNG(opt.Seed + 13)

	movable := d.StdCells()
	if len(movable) == 0 {
		return &Result{}, nil
	}
	var total float64
	for _, c := range movable {
		total += c.Master.Area()
	}
	half := total / 2
	tol := total * opt.BalanceTol / 2

	// Initial assignment: zig-zag over a spatially sorted order so the
	// starting cut is locality-aware, then balance by area.
	order := append([]*netlist.Instance(nil), movable...)
	sort.Slice(order, func(i, j int) bool {
		ci, cj := order[i].Center(), order[j].Center()
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	var areaA float64 // logic die
	for _, c := range order {
		if areaA < half {
			c.Die = netlist.LogicDie
			areaA += c.Master.Area()
		} else {
			c.Die = netlist.MacroDie
		}
	}

	adj := d.NetsOfInstance()

	// dieOf resolves any pin's die (ports → logic die).
	dieOf := func(p netlist.PinRef) netlist.Die {
		if p.Port != nil {
			return netlist.LogicDie
		}
		return p.Inst.Die
	}
	// Gain of flipping c: nets where c is the sole pin on its side
	// become uncut (+1); nets currently uncut become cut (−1).
	gain := func(c *netlist.Instance) int {
		g := 0
		for _, n := range adj[c.ID] {
			if n.Clock {
				continue
			}
			same, other := 0, 0
			for _, p := range n.Pins() {
				if p.Inst == c {
					continue
				}
				if dieOf(p) == c.Die {
					same++
				} else {
					other++
				}
			}
			if other == 0 && same > 0 {
				g-- // flipping cuts this net
			}
			if same == 0 && other > 0 {
				g++ // flipping uncuts it
			}
		}
		return g
	}

	res := &Result{}
	for pass := 0; pass < opt.MaxPasses; pass++ {
		moved := 0
		// Random sweep order decorrelates passes.
		idx := make([]int, len(movable))
		for i := range idx {
			idx[i] = i
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			c := movable[i]
			g := gain(c)
			if g <= 0 {
				continue
			}
			// Balance check.
			a := c.Master.Area()
			newAreaA := areaA
			if c.Die == netlist.LogicDie {
				newAreaA -= a
			} else {
				newAreaA += a
			}
			if newAreaA < half-tol || newAreaA > half+tol {
				continue
			}
			if c.Die == netlist.LogicDie {
				c.Die = netlist.MacroDie
			} else {
				c.Die = netlist.LogicDie
			}
			areaA = newAreaA
			moved++
		}
		res.Moves += moved
		if moved == 0 {
			break
		}
	}

	// Final accounting.
	for _, c := range movable {
		if c.Die == netlist.LogicDie {
			res.AreaLogic += c.Master.Area()
		} else {
			res.AreaMacro += c.Master.Area()
		}
	}
	res.CutNets = CountCutNets(d)
	return res, nil
}

// BinBalance enforces the published S2D/C2D tier-partitioning rule
// that cell area is balanced *per bin*, not just globally — both
// substrates are meant to be used everywhere. Cells flip dies in
// unbalanced bins. This locality is exactly what lands cells on the
// other die's macros when partial blockages were rasterized too
// coarsely (the paper's overlap mechanism).
func BinBalance(d *netlist.Design, die geom.Rect, binPitch float64) int {
	if binPitch <= 0 {
		binPitch = 40
	}
	g := geom.NewGrid(die, binPitch)
	type binState struct {
		a, b  float64
		cells []*netlist.Instance
	}
	bins := make([]binState, g.Bins())
	for _, c := range d.StdCells() {
		ix, iy := g.Locate(c.Center())
		i := g.Index(ix, iy)
		bins[i].cells = append(bins[i].cells, c)
		if c.Die == netlist.LogicDie {
			bins[i].a += c.Master.Area()
		} else {
			bins[i].b += c.Master.Area()
		}
	}
	flips := 0
	for i := range bins {
		bin := &bins[i]
		total := bin.a + bin.b
		if total == 0 {
			continue
		}
		// Flip smallest cells from the heavy side until within 30 %.
		sort.Slice(bin.cells, func(x, y int) bool {
			return bin.cells[x].Master.Area() < bin.cells[y].Master.Area()
		})
		for _, c := range bin.cells {
			imbalance := bin.a - bin.b
			if imbalance < 0 {
				imbalance = -imbalance
			}
			if imbalance <= 0.3*total {
				break
			}
			area := c.Master.Area()
			if bin.a > bin.b && c.Die == netlist.LogicDie {
				c.Die = netlist.MacroDie
				bin.a -= area
				bin.b += area
				flips++
			} else if bin.b > bin.a && c.Die == netlist.MacroDie {
				c.Die = netlist.LogicDie
				bin.b -= area
				bin.a += area
				flips++
			}
		}
	}
	return flips
}

// CountCutNets counts nets spanning both dies (each needs at least one
// F2F bump).
func CountCutNets(d *netlist.Design) int {
	cut := 0
	for _, n := range d.Nets {
		if n.Clock {
			continue
		}
		sawLogic, sawMacro := false, false
		for _, p := range n.Pins() {
			die := netlist.LogicDie
			if p.Inst != nil {
				die = p.Inst.Die
			}
			if die == netlist.LogicDie {
				sawLogic = true
			} else {
				sawMacro = true
			}
		}
		if sawLogic && sawMacro {
			cut++
		}
	}
	return cut
}

// LegalizeTiers re-legalizes each die's cells against that die's real
// macro extents. It returns per-die displacement statistics — the
// overlap-fixing cost the paper describes. rowHeight sizes the rows.
type TierLegalization struct {
	MeanDisp  float64
	MaxDisp   float64
	Displaced int // cells moved more than one row height
	Spilled   int // cells that found no space and changed dies
}

func LegalizeTiers(d *netlist.Design, die geom.Rect, rowHeight float64) (*TierLegalization, error) {
	out := &TierLegalization{}
	var sum float64
	var n int
	account := func(cells []*netlist.Instance, before map[int]geom.Point) {
		for _, c := range cells {
			disp := before[c.ID].Manhattan(c.Loc)
			sum += disp
			n++
			if disp > out.MaxDisp {
				out.MaxDisp = disp
			}
			if disp > rowHeight {
				out.Displaced++
			}
		}
	}
	fpFor := func(tier netlist.Die) *floorplan.Floorplan {
		fp := &floorplan.Floorplan{Die: die}
		// Real macros of this tier are hard blockages now.
		for _, m := range d.Macros() {
			if m.Die == tier {
				fp.PlaceBlk = append(fp.PlaceBlk, floorplan.Blockage{Rect: m.Bounds(), Fraction: 1})
			}
		}
		return fp
	}
	// The macro die first: cells that do not fit spill to the logic
	// die and legalize there with everything else.
	var spill []*netlist.Instance
	{
		fp := fpFor(netlist.MacroDie)
		var cells []*netlist.Instance
		before := map[int]geom.Point{}
		for _, c := range d.StdCells() {
			if c.Die == netlist.MacroDie {
				cells = append(cells, c)
				before[c.ID] = c.Loc
			}
		}
		if len(cells) > 0 {
			_, _, failed, err := place.LegalizeBestEffort(cells, fp, rowHeight)
			if err != nil {
				return nil, fmt.Errorf("partition: macro tier legalization: %w", err)
			}
			placed := cells[:0]
			inFailed := map[int]bool{}
			for _, f := range failed {
				inFailed[f.ID] = true
				f.Die = netlist.LogicDie
				spill = append(spill, f)
			}
			for _, c := range cells {
				if !inFailed[c.ID] {
					placed = append(placed, c)
				}
			}
			account(placed, before)
			out.Spilled = len(failed)
		}
	}
	// Logic die, including spill.
	{
		fp := fpFor(netlist.LogicDie)
		var cells []*netlist.Instance
		before := map[int]geom.Point{}
		for _, c := range d.StdCells() {
			if c.Die == netlist.LogicDie {
				cells = append(cells, c)
				before[c.ID] = c.Loc
			}
		}
		// Every spilled cell changed dies above, so the rescan must
		// have picked it up — a miss would leave it unlegalized on top
		// of a macro, the exact overlap this pass exists to fix.
		inPass := make(map[int]bool, len(cells))
		for _, c := range cells {
			inPass[c.ID] = true
		}
		for _, s := range spill {
			if !inPass[s.ID] {
				return nil, fmt.Errorf("partition: spilled cell %s missed the logic-die legalization pass", s.Name)
			}
		}
		if len(cells) > 0 {
			_, _, failed, err := place.LegalizeBestEffort(cells, fp, rowHeight)
			if err != nil {
				return nil, fmt.Errorf("partition: logic tier legalization: %w", err)
			}
			if len(failed) > 0 {
				return nil, fmt.Errorf("partition: %d cells fit neither die", len(failed))
			}
			account(cells, before)
		}
	}
	if n > 0 {
		out.MeanDisp = sum / float64(n)
	}
	return out, nil
}
