package lefdef

import (
	"math"
	"strings"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/core"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
	"macro3d/internal/tech"
)

func roundTripLEF(t *testing.T, b *tech.BEOL, lib *cell.Library) *LEFContent {
	t.Helper()
	var sb strings.Builder
	if err := WriteLEF(&sb, b, lib); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLEF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse back: %v\n--- LEF ---\n%s", err, head(sb.String(), 2000))
	}
	return got
}

func head(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func TestLEFRoundTripBEOL(t *testing.T) {
	b, err := tech.NewBEOL28("x", 6)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripLEF(t, b, nil)
	if got.Beol == nil {
		t.Fatal("no stack parsed")
	}
	if got.Beol.NumLayers() != 6 || len(got.Beol.Vias) != 5 {
		t.Fatalf("stack shape %d/%d", got.Beol.NumLayers(), len(got.Beol.Vias))
	}
	for i, l := range b.Layers {
		g := got.Beol.Layers[i]
		if g.Name != l.Name || g.Dir != l.Dir {
			t.Fatalf("layer %d identity: %+v vs %+v", i, g, l)
		}
		if math.Abs(g.Pitch-l.Pitch) > 1e-9 || math.Abs(g.RPerUm-l.RPerUm) > 1e-9 {
			t.Fatalf("layer %d numbers differ", i)
		}
	}
	for i, v := range b.Vias {
		if math.Abs(got.Beol.Vias[i].R-v.R) > 1e-9 {
			t.Fatalf("via %d R differs", i)
		}
	}
}

func TestLEFRoundTripCombinedStack(t *testing.T) {
	logic, _ := tech.NewBEOL28("l", 6)
	macro, _ := tech.NewBEOL28("m", 4)
	comb, err := tech.Combine(logic, macro, tech.DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripLEF(t, comb, nil)
	if got.Beol.F2FViaIndex() != comb.F2FViaIndex() {
		t.Fatalf("F2F via index %d vs %d", got.Beol.F2FViaIndex(), comb.F2FViaIndex())
	}
	v := got.Beol.Vias[got.Beol.F2FViaIndex()]
	if !v.F2F || math.Abs(v.Pitch-1.0) > 1e-9 {
		t.Fatalf("F2F via lost: %+v", v)
	}
	if got.Beol.MacroDieLayers() != 4 {
		t.Fatalf("macro-die layers = %d", got.Beol.MacroDieLayers())
	}
}

func TestLEFRoundTripLibrary(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	got := roundTripLEF(t, nil, lib)
	if got.Lib.Len() != lib.Len() {
		t.Fatalf("master count %d vs %d", got.Lib.Len(), lib.Len())
	}
	for _, want := range lib.Cells() {
		g := got.Lib.Cell(want.Name)
		if g == nil {
			t.Fatalf("missing master %s", want.Name)
		}
		if g.Kind != want.Kind || g.Family != want.Family || g.Drive != want.Drive {
			t.Fatalf("%s identity: %v/%s/%d", want.Name, g.Kind, g.Family, g.Drive)
		}
		if math.Abs(g.Width-want.Width) > 1e-3 || math.Abs(g.DriveRes-want.DriveRes) > 1e-6 {
			t.Fatalf("%s numbers differ", want.Name)
		}
		if len(g.Pins) != len(want.Pins) {
			t.Fatalf("%s pins %d vs %d", want.Name, len(g.Pins), len(want.Pins))
		}
		for i, p := range want.Pins {
			gp := g.Pins[i]
			if gp.Name != p.Name || gp.Dir != p.Dir || gp.Clock != p.Clock || gp.Layer != p.Layer {
				t.Fatalf("%s pin %s identity", want.Name, p.Name)
			}
			if math.Abs(gp.Cap-p.Cap) > 1e-3 || gp.Offset.Dist(p.Offset) > 1e-3 {
				t.Fatalf("%s pin %s numbers", want.Name, p.Name)
			}
		}
	}
	// Delay model survives: evaluate an arc on both.
	a := lib.MustCell("NAND2_X4")
	b := got.Lib.MustCell("NAND2_X4")
	if math.Abs(a.Delay(37, 20)-b.Delay(37, 20)) > 1e-6 {
		t.Fatal("delay model lost in round trip")
	}
}

func TestLEFRoundTripSRAM(t *testing.T) {
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 2048, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewLibrary("x")
	lib.Add(sram)
	got := roundTripLEF(t, nil, lib)
	g := got.Lib.Cell("m")
	if g == nil || g.Macro == nil {
		t.Fatal("SRAM metadata lost")
	}
	if g.Macro.Words != 2048 || g.Macro.Bits != 16 || g.Macro.CapacityBytes != 4096 {
		t.Fatalf("SRAM info %+v", g.Macro)
	}
	if len(g.Obstructions) != 4 {
		t.Fatalf("obstructions %d", len(g.Obstructions))
	}
	SortObstructions(g)
	SortObstructions(sram)
	for i := range g.Obstructions {
		if g.Obstructions[i].Layer != sram.Obstructions[i].Layer {
			t.Fatal("obstruction layers differ")
		}
	}
}

func buildTinyDesign(t *testing.T) (*netlist.Design, *cell.Library, geom.Rect) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("rt", lib)
	clk := d.AddPort("clk", cell.DirIn)
	clk.Layer = "M6"
	clk.Loc = geom.Pt(0, 30)
	out := d.AddPort("dout", cell.DirOut)
	out.Layer = "M6"
	out.Loc = geom.Pt(100, 30)
	out.HalfCycle = true
	out.ExtCap = 7.5
	u := d.AddInstance("u1", lib.MustCell("INV_X2"))
	u.Loc = geom.Pt(10, 10)
	u.Placed = true
	ff := d.AddInstance("ff1", lib.MustCell("DFF_X1"))
	ff.Loc = geom.Pt(50, 10)
	ff.Placed = true
	ff.Orient = geom.OrientFS
	ff.Die = netlist.MacroDie
	d.AddNet("n1", netlist.IPin(u, "Y"), netlist.IPin(ff, "D"))
	d.AddNet("n2", netlist.IPin(ff, "Q"), netlist.IPin(u, "A"), netlist.PPin(out))
	cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(ff, "CK"))
	cn.Clock = true
	return d, lib, geom.R(0, 0, 120, 60)
}

func TestDEFRoundTrip(t *testing.T) {
	d, lib, die := buildTinyDesign(t)
	var sb strings.Builder
	if err := WriteDEF(&sb, d, die); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDEF(strings.NewReader(sb.String()), lib)
	if err != nil {
		t.Fatalf("%v\n--- DEF ---\n%s", err, sb.String())
	}
	if got.Die != die {
		t.Fatalf("die %v vs %v", got.Die, die)
	}
	g := got.Design
	if g.Name != "rt" || len(g.Instances) != 2 || len(g.Nets) != 3 || len(g.Ports) != 2 {
		t.Fatalf("shape: %d inst %d nets %d ports", len(g.Instances), len(g.Nets), len(g.Ports))
	}
	ff := g.Instance("ff1")
	if ff == nil || ff.Master.Name != "DFF_X1" {
		t.Fatal("ff1 lost")
	}
	if ff.Loc != geom.Pt(50, 10) || ff.Orient != geom.OrientFS || !ff.Placed {
		t.Fatalf("ff1 placement: %+v", ff)
	}
	if ff.Die != netlist.MacroDie {
		t.Fatal("die assignment lost")
	}
	out := g.Port("dout")
	if out == nil || !out.HalfCycle || math.Abs(out.ExtCap-7.5) > 1e-9 {
		t.Fatalf("port properties lost: %+v", out)
	}
	// Connectivity: clock flagged, driver/sink structure kept.
	cn := g.Net("clk")
	if cn == nil || !cn.Clock || cn.Driver.Port == nil {
		t.Fatal("clock net lost")
	}
	n2 := g.Net("n2")
	if n2 == nil || len(n2.Sinks) != 2 {
		t.Fatal("n2 connectivity lost")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// HPWL identical after round trip (same locations).
	if math.Abs(g.TotalHPWL()-d.TotalHPWL()) > 1e-6 {
		t.Fatal("HPWL changed across round trip")
	}
}

func TestRewriteMacroDieLayersMatchesCoreEdit(t *testing.T) {
	// The textual LEF rewrite must agree with the in-memory edit.
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 1024, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewLibrary("x")
	lib.Add(sram)
	var sb strings.Builder
	if err := WriteLEF(&sb, nil, lib); err != nil {
		t.Fatal(err)
	}
	rewritten := RewriteMacroDieLayers(sb.String(), 0.19, 1.2)
	parsed, err := ParseLEF(strings.NewReader(rewritten))
	if err != nil {
		t.Fatalf("%v\n--- rewritten ---\n%s", err, head(rewritten, 1500))
	}
	fromText := parsed.Lib.Cell("m")
	fromMem, err := core.EditMacroForMacroDie(sram, 0.19, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Width != fromMem.Width || fromText.Height != fromMem.Height {
		t.Fatalf("size: text %vx%v vs mem %vx%v",
			fromText.Width, fromText.Height, fromMem.Width, fromMem.Height)
	}
	for i, p := range fromMem.Pins {
		tp := fromText.Pins[i]
		if tp.Layer != p.Layer {
			t.Fatalf("pin %s layer: text %s vs mem %s", p.Name, tp.Layer, p.Layer)
		}
		if tp.Offset.Dist(p.Offset) > 1e-3 {
			t.Fatalf("pin %s offset moved by rewrite", p.Name)
		}
	}
	SortObstructions(fromText)
	SortObstructions(fromMem)
	for i := range fromMem.Obstructions {
		if fromText.Obstructions[i].Layer != fromMem.Obstructions[i].Layer {
			t.Fatalf("obstruction %d layer mismatch", i)
		}
	}
}

func TestRewriteLeavesTechLayersAlone(t *testing.T) {
	b, _ := tech.NewBEOL28("x", 4)
	var sb strings.Builder
	if err := WriteLEF(&sb, b, nil); err != nil {
		t.Fatal(err)
	}
	rewritten := RewriteMacroDieLayers(sb.String(), 0.19, 1.2)
	if strings.Contains(rewritten, "M1_MD") {
		t.Fatal("technology LAYER section was rewritten")
	}
	if rewritten != sb.String() {
		t.Fatal("stream without macros changed")
	}
}

func TestRewriteIdempotent(t *testing.T) {
	sram, _ := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 512, Bits: 8})
	lib := cell.NewLibrary("x")
	lib.Add(sram)
	var sb strings.Builder
	if err := WriteLEF(&sb, nil, lib); err != nil {
		t.Fatal(err)
	}
	once := RewriteMacroDieLayers(sb.String(), 0.19, 1.2)
	twice := RewriteMacroDieLayers(once, 0.19, 1.2)
	if once != twice {
		t.Fatal("rewrite not idempotent")
	}
	if strings.Contains(once, "_MD_MD") {
		t.Fatal("double suffix")
	}
}

func TestParseLEFRejectsCorruptStack(t *testing.T) {
	lef := `
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0 ;
  WIDTH 0.05 ;
END M1
`
	if _, err := ParseLEF(strings.NewReader(lef)); err == nil {
		t.Fatal("zero-pitch stack accepted")
	}
}

func TestParseDEFUnknownMaster(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	def := `
DESIGN x ;
COMPONENTS 1 ;
  - u1 NO_SUCH_CELL + PLACED ( 0 0 ) N + PROPERTY die 0 ;
END COMPONENTS
END DESIGN
`
	if _, err := ParseDEF(strings.NewReader(def), lib); err == nil {
		t.Fatal("unknown master accepted")
	}
}

func TestTokenizer(t *testing.T) {
	tk := newTokenizer(strings.NewReader("A B ; # comment\nC 1.5 ;\n"))
	var got []string
	for {
		w, ok := tk.next()
		if !ok {
			break
		}
		got = append(got, w)
	}
	want := []string{"A", "B", ";", "C", "1.5", ";"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q", i, got[i])
		}
	}
}

func TestTokenizerNextFloat(t *testing.T) {
	tk := newTokenizer(strings.NewReader("2.25 nope"))
	v, err := tk.nextFloat()
	if err != nil || v != 2.25 {
		t.Fatalf("nextFloat = %v, %v", v, err)
	}
	if _, err := tk.nextFloat(); err == nil {
		t.Fatal("non-number accepted")
	}
	if _, err := tk.nextFloat(); err == nil {
		t.Fatal("EOF accepted")
	}
}

func TestDEFFullTileRoundTrip(t *testing.T) {
	// A full benchmark netlist survives the DEF round trip.
	tile, err := piton.Generate(piton.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	die := geom.R(0, 0, 500, 500)
	var sb strings.Builder
	if err := WriteDEF(&sb, d, die); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDEF(strings.NewReader(sb.String()), d.Lib)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb2 := got.Design.ComputeStats(), d.ComputeStats()
	if sa.NumInstances != sb2.NumInstances || sa.NumNets != sb2.NumNets ||
		sa.NumPorts != sb2.NumPorts || sa.NumMacros != sb2.NumMacros {
		t.Fatalf("stats differ:\n%+v\n%+v", sa, sb2)
	}
	if err := got.Design.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLEFRoundTripAbstract pins the hardened-macro abstract view
// through the LEF writer and parser: size, boundary pins with their
// timing arcs, per-layer obstructions (including macro-die _MD
// layers) and the AbstractInfo provenance record all survive.
func TestLEFRoundTripAbstract(t *testing.T) {
	abs := &cell.Cell{
		Name: "tile_abs", Kind: cell.KindMacro,
		Width: 325.5021, Height: 326.4,
		DriveRes: 2.6, Leakage: 6373.2,
		Pins: []cell.Pin{
			{Name: "clk_i", Dir: cell.DirIn, Cap: 11.33, Offset: geom.Pt(0, 163.2), Layer: "M6", Clock: true},
			{Name: "noc_in", Dir: cell.DirIn, Cap: 7.8272, Offset: geom.Pt(172.923, 326.4), Layer: "M6", Setup: 35.5626},
			{Name: "noc_out", Dir: cell.DirOut, Offset: geom.Pt(193.267, 0), Layer: "M6", ClkQ: 167.3429},
		},
		Obstructions: []cell.Obstruction{
			{Layer: "M1", Rect: geom.R(14.7956, 0, 103.5689, 14.8364)},
			{Layer: "M4_MD", Rect: geom.R(0, 0, 325.5021, 14.8364)},
			{Layer: "F2F_VIA", Rect: geom.R(10, 10, 20, 20)},
		},
		Abstract: &cell.AbstractInfo{
			SourceFlow: "Macro-3D", SourceConfig: "piton_tiny",
			MinPeriodPs: 727.7372, EnergyPerCycleFJ: 5514.8886,
			LeakageUW: 6.3732, F2FBumps: 149,
		},
	}
	lib := cell.NewLibrary("x")
	lib.Add(abs)
	got := roundTripLEF(t, nil, lib)
	g := got.Lib.Cell("tile_abs")
	if g == nil {
		t.Fatal("abstract lost in round trip")
	}
	if g.Kind != cell.KindMacro {
		t.Fatalf("kind %v", g.Kind)
	}
	if math.Abs(g.Width-abs.Width) > 1e-3 || math.Abs(g.Height-abs.Height) > 1e-3 {
		t.Fatalf("size %v×%v vs %v×%v", g.Width, g.Height, abs.Width, abs.Height)
	}
	if len(g.Pins) != len(abs.Pins) {
		t.Fatalf("pins %d vs %d", len(g.Pins), len(abs.Pins))
	}
	for i, want := range abs.Pins {
		p := g.Pins[i]
		if p.Name != want.Name || p.Dir != want.Dir || p.Clock != want.Clock || p.Layer != want.Layer {
			t.Fatalf("pin %s identity lost", want.Name)
		}
		if p.Offset.Dist(want.Offset) > 1e-3 || math.Abs(p.Cap-want.Cap) > 1e-3 {
			t.Fatalf("pin %s geometry/cap lost", want.Name)
		}
		if math.Abs(p.Setup-want.Setup) > 1e-3 || math.Abs(p.ClkQ-want.ClkQ) > 1e-3 {
			t.Fatalf("pin %s boundary arc lost: setup %v vs %v, clkq %v vs %v",
				want.Name, p.Setup, want.Setup, p.ClkQ, want.ClkQ)
		}
	}
	if len(g.Obstructions) != len(abs.Obstructions) {
		t.Fatalf("obstructions %d vs %d", len(g.Obstructions), len(abs.Obstructions))
	}
	for i, want := range abs.Obstructions {
		o := g.Obstructions[i]
		if o.Layer != want.Layer {
			t.Fatalf("obstruction %d layer %s vs %s", i, o.Layer, want.Layer)
		}
		if math.Abs(o.Rect.Lx-want.Rect.Lx) > 1e-3 || math.Abs(o.Rect.Ly-want.Rect.Ly) > 1e-3 ||
			math.Abs(o.Rect.Ux-want.Rect.Ux) > 1e-3 || math.Abs(o.Rect.Uy-want.Rect.Uy) > 1e-3 {
			t.Fatalf("obstruction %d rect %v vs %v", i, o.Rect, want.Rect)
		}
	}
	a := g.Abstract
	if a == nil {
		t.Fatal("AbstractInfo lost in round trip")
	}
	if a.SourceFlow != abs.Abstract.SourceFlow || a.SourceConfig != abs.Abstract.SourceConfig ||
		a.F2FBumps != abs.Abstract.F2FBumps {
		t.Fatalf("AbstractInfo identity: %+v", a)
	}
	if math.Abs(a.MinPeriodPs-abs.Abstract.MinPeriodPs) > 1e-3 ||
		math.Abs(a.EnergyPerCycleFJ-abs.Abstract.EnergyPerCycleFJ) > 1e-3 ||
		math.Abs(a.LeakageUW-abs.Abstract.LeakageUW) > 1e-3 {
		t.Fatalf("AbstractInfo numbers: %+v", a)
	}
	// A second write from the parsed library is byte-identical —
	// the emit→parse→emit fixpoint.
	var first, second strings.Builder
	if err := WriteLEF(&first, nil, lib); err != nil {
		t.Fatal(err)
	}
	if err := WriteLEF(&second, nil, got.Lib); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("abstract LEF is not an emit→parse→emit fixpoint")
	}
}

// TestLEFAbstractPropertiesConditional pins cache-key stability: a
// library without abstracts emits byte-identical LEF before and after
// the abstract extension (no PROPERTY arc/abstract lines).
func TestLEFAbstractPropertiesConditional(t *testing.T) {
	var sb strings.Builder
	if err := WriteLEF(&sb, nil, cell.NewStdLib28(cell.DefaultLibOptions())); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "PROPERTY arc") || strings.Contains(sb.String(), "PROPERTY abstract") {
		t.Fatal("ordinary library LEF grew abstract properties — stage-cache keys would shift")
	}
}
