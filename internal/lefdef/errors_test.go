package lefdef

import (
	"strings"
	"testing"

	"macro3d/internal/cell"
)

// These tests pin down the parser's failure behaviour: malformed
// streams must come back as descriptive errors carrying source line
// numbers — never as panics or silent truncation.

func mustErr(t *testing.T, err error, wants ...string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corrupt input accepted (wanted error naming %v)", wants)
	}
	for _, w := range wants {
		if !strings.Contains(err.Error(), w) {
			t.Fatalf("error %q does not mention %q", err, w)
		}
	}
}

func TestParseLEFTruncatedMacro(t *testing.T) {
	lef := "MACRO BROKEN\n  CLASS CORE ;\n" // stream ends mid-block
	_, err := ParseLEF(strings.NewReader(lef))
	mustErr(t, err, "unexpected EOF in MACRO BROKEN", "line 2")
}

func TestParseLEFDuplicateMacro(t *testing.T) {
	lef := "MACRO A\n  SIZE 1 BY 1 ;\nEND A\nMACRO A\n  SIZE 2 BY 2 ;\nEND A\n"
	_, err := ParseLEF(strings.NewReader(lef))
	mustErr(t, err, `duplicate MACRO "A"`, "line")
}

func TestParseLEFLayerMismatchedStack(t *testing.T) {
	// Two routing layers with no cut layer between them: the parsed
	// stack must fail BEOL validation (N layers need N-1 vias), not
	// come back as a half-formed technology.
	lef := `LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.1 ;
  WIDTH 0.05 ;
END M1
LAYER M2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.1 ;
  WIDTH 0.05 ;
END M2
`
	_, err := ParseLEF(strings.NewReader(lef))
	mustErr(t, err, "parsed stack invalid", "2 layers but 0 vias")
}

func TestParseLEFBadNumberHasLine(t *testing.T) {
	lef := "LAYER M1\n  TYPE ROUTING ;\n  PITCH oops ;\n"
	_, err := ParseLEF(strings.NewReader(lef))
	mustErr(t, err, `expected number, got "oops"`, "line 3")
}

func TestParseDEFTruncatedComponents(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	def := "DESIGN x ;\nCOMPONENTS 2 ;\n  - u1 INV_X2 + PLACED ( 0 0 ) N ;\n"
	_, err := ParseDEF(strings.NewReader(def), lib)
	mustErr(t, err, "unexpected EOF in COMPONENTS", "line 3")
}

func TestParseDEFBadNumberHasLine(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	def := "DESIGN x ;\n" +
		"COMPONENTS 1 ;\n" +
		"  - u1 INV_X2 + PLACED ( zzz 0 ) N ;\n" +
		"END COMPONENTS\nEND DESIGN\n"
	_, err := ParseDEF(strings.NewReader(def), lib)
	mustErr(t, err, `expected number, got "zzz"`, "line 3")
}

func TestParseDEFUnknownPinRef(t *testing.T) {
	// A net naming a PIN that was never declared used to parse as an
	// empty-success; it must be a hard error.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	def := "DESIGN x ;\n" +
		"NETS 1 ;\n" +
		"  - n1 ( PIN ghost ) ;\n" +
		"END NETS\nEND DESIGN\n"
	_, err := ParseDEF(strings.NewReader(def), lib)
	mustErr(t, err, "net n1 references unknown pin ghost", "line 3")
}

func TestParseDEFDuplicateNames(t *testing.T) {
	// Duplicate components/pins/nets hit panicking netlist builders if
	// unguarded; the parser must refuse them with an error instead.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	cases := []struct {
		name, def, want string
	}{
		{"component", "DESIGN x ;\nCOMPONENTS 2 ;\n" +
			"  - u1 INV_X2 + PLACED ( 0 0 ) N ;\n" +
			"  - u1 INV_X2 + PLACED ( 5 0 ) N ;\n" +
			"END COMPONENTS\nEND DESIGN\n", `duplicate component "u1"`},
		{"pin", "DESIGN x ;\nPINS 2 ;\n" +
			"  - clk + DIRECTION INPUT ;\n" +
			"  - clk + DIRECTION INPUT ;\n" +
			"END PINS\nEND DESIGN\n", `duplicate pin "clk"`},
		{"net", "DESIGN x ;\nCOMPONENTS 1 ;\n" +
			"  - u1 INV_X2 + PLACED ( 0 0 ) N ;\n" +
			"END COMPONENTS\nNETS 2 ;\n" +
			"  - n1 ( u1 Y ) ( u1 A ) ;\n" +
			"  - n1 ( u1 A ) ;\n" +
			"END NETS\nEND DESIGN\n", `duplicate net "n1"`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on duplicate %s: %v", tc.name, r)
				}
			}()
			_, err := ParseDEF(strings.NewReader(tc.def), lib)
			mustErr(t, err, tc.want, "line")
		})
	}
}

// TestParseLEFSwallowedErrors pins the once-swallowed tokenizer and
// number-parse failures inside LAYER/PIN/OBS bodies: each malformed
// stream must surface a line-numbered error. Several of these inputs
// made the old parser hang (EOF-unchecked token loops) or silently
// accept a zeroed value.
func TestParseLEFSwallowedErrors(t *testing.T) {
	cases := []struct {
		name, lef string
		wants     []string
	}{
		{"truncated-after-TYPE", "LAYER M1\n  TYPE",
			[]string{"unexpected EOF after TYPE in LAYER M1", "line 2"}},
		{"truncated-TYPE-tail", "LAYER M1\n  TYPE ROUTING",
			[]string{"unexpected EOF in TYPE of LAYER M1", "line 2"}},
		{"truncated-CLASS", "MACRO A\n  CLASS CORE",
			[]string{"unexpected EOF in CLASS of MACRO A", "line 2"}},
		{"pin-property-bad-number", "MACRO A\n  SIZE 1 BY 1 ;\n  PIN X\n" +
			"    DIRECTION INPUT ;\n    PROPERTY arc setup oops ;\n  END X\nEND A\n",
			[]string{`bad number "oops" for setup in PIN X PROPERTY`, "line 5"}},
		{"truncated-PORT", "MACRO A\n  SIZE 1 BY 1 ;\n  PIN X\n    PORT",
			[]string{"unexpected EOF in PORT of PIN X", "line 4"}},
		{"truncated-PORT-LAYER", "MACRO A\n  SIZE 1 BY 1 ;\n  PIN X\n    PORT\n      LAYER",
			[]string{"unexpected EOF after LAYER in PORT of PIN X", "line 5"}},
		{"truncated-OBS-LAYER", "MACRO A\n  SIZE 1 BY 1 ;\n  OBS\n    LAYER",
			[]string{"unexpected EOF after LAYER in OBS", "line 4"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLEF(strings.NewReader(tc.lef))
			mustErr(t, err, tc.wants...)
		})
	}
}

// TestParseDEFTruncatedPinLayer pins the DEF-side swallowed read: a pin
// statement ending right after LAYER must name the pin and the line.
func TestParseDEFTruncatedPinLayer(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	def := "DESIGN x ;\nPINS 1 ;\n  - p1 + DIRECTION INPUT + LAYER"
	_, err := ParseDEF(strings.NewReader(def), lib)
	mustErr(t, err, "unexpected EOF after LAYER in pin p1", "line 3")
}

func TestTokenizerLineTracking(t *testing.T) {
	tk := newTokenizer(strings.NewReader("A B\n# only a comment\nC\n"))
	for _, want := range []struct {
		tok  string
		line int
	}{{"A", 1}, {"B", 1}, {"C", 3}} {
		w, ok := tk.next()
		if !ok || w != want.tok {
			t.Fatalf("token = %q, %v (want %q)", w, ok, want.tok)
		}
		if tk.line != want.line {
			t.Fatalf("token %q at line %d, want %d", w, tk.line, want.line)
		}
	}
}
