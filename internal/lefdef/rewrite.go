package lefdef

import (
	"fmt"
	"regexp"
	"strings"

	"macro3d/internal/tech"
)

// RewriteMacroDieLayers performs the paper's scripted LEF edit (§IV)
// directly on macro LEF text: every LAYER reference inside PIN PORT
// and OBS sections gets the "_MD" suffix, and the SIZE statement is
// replaced by the filler-cell footprint ("their substrate area is
// shrunk to the minimum possible size, which is the size of a filler
// cell"). Pin and obstruction (x, y) geometry is left untouched.
//
// Only MACRO blocks are edited; a technology LAYER section in the same
// stream is left alone.
func RewriteMacroDieLayers(lef string, fillerW, fillerH float64) string {
	var out strings.Builder
	lines := strings.Split(lef, "\n")
	depth := 0 // nesting inside a MACRO block
	inMacro := false

	sizeRe := regexp.MustCompile(`^(\s*)SIZE\s+[-0-9.eE]+\s+BY\s+[-0-9.eE]+\s*;`)
	layerRe := regexp.MustCompile(`^(\s*)LAYER\s+(\S+)(\s*;?.*)$`)

	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "MACRO "):
			inMacro = true
			depth = 1
		case inMacro && strings.HasPrefix(trimmed, "END"):
			// Block ends reduce macro nesting; MACRO blocks close with
			// "END <name>" at depth 1.
			if depth > 0 {
				depth--
			}
			if depth == 0 {
				inMacro = false
			}
		case inMacro && (strings.HasPrefix(trimmed, "PIN ") ||
			strings.HasPrefix(trimmed, "PORT") || strings.HasPrefix(trimmed, "OBS")):
			depth++
		}

		switch {
		case inMacro && sizeRe.MatchString(line):
			m := sizeRe.FindStringSubmatch(line)
			line = fmt.Sprintf("%sSIZE %.4f BY %.4f ;", m[1], fillerW, fillerH)
		case inMacro && depth >= 2 && layerRe.MatchString(line):
			m := layerRe.FindStringSubmatch(line)
			if !strings.HasSuffix(m[2], tech.MDSuffix) {
				line = m[1] + "LAYER " + m[2] + tech.MDSuffix + m[3]
			}
		}
		out.WriteString(line)
		if i < len(lines)-1 {
			out.WriteByte('\n')
		}
	}
	return out.String()
}
