package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"macro3d/internal/geom"
)

// tokenizer splits a LEF/DEF stream into whitespace-separated words,
// treating ';' as its own token and '#' comments to end of line. It
// tracks the 1-based source line of the tokens it hands out so parse
// errors can point at the offending input.
type tokenizer struct {
	s      *bufio.Scanner
	queued []string
	line   int
}

func newTokenizer(r io.Reader) *tokenizer {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<22)
	return &tokenizer{s: s}
}

func (t *tokenizer) next() (string, bool) {
	for len(t.queued) == 0 {
		if !t.s.Scan() {
			return "", false
		}
		t.line++
		line := t.s.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, ";", " ; ")
		t.queued = strings.Fields(line)
	}
	w := t.queued[0]
	t.queued = t.queued[1:]
	return w, true
}

// nextFloat parses the next token as a number.
func (t *tokenizer) nextFloat() (float64, error) {
	w, ok := t.next()
	if !ok {
		return 0, t.errf("unexpected EOF, wanted number")
	}
	v, err := strconv.ParseFloat(w, 64)
	if err != nil {
		return 0, t.errf("expected number, got %q", w)
	}
	return v, nil
}

// errf builds a parse error tagged with the current source line.
func (t *tokenizer) errf(format string, args ...any) error {
	return fmt.Errorf("lefdef: "+format+" (line %d)", append(args, t.line)...)
}

// expect consumes one token and checks it.
func (t *tokenizer) expect(want string) {
	if w, ok := t.next(); ok && w != want {
		// Tolerant: push back so callers continue (the dialect is
		// machine-written; a mismatch indicates trailing options).
		t.queued = append([]string{w}, t.queued...)
	}
}

// skipStatement consumes tokens through the next ';'.
func (t *tokenizer) skipStatement() {
	for {
		w, ok := t.next()
		if !ok || w == ";" {
			return
		}
	}
}

func rect4(r [4]float64) geom.Rect {
	return geom.R(r[0], r[1], r[2], r[3])
}
