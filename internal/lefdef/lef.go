// Package lefdef reads and writes a compact LEF/DEF-style text
// interchange for libraries, technology stacks and placed designs.
// The dialect is a faithful subset of the real formats: LAYER/VIA
// sections for the BEOL, MACRO blocks with SIZE/PIN/OBS for masters,
// and DEF-like DIEAREA/COMPONENTS/PINS/NETS sections for designs.
//
// The package also implements the paper's "simple scripted
// modifications in the lef files" (§IV): RewriteMacroDieLayers applies
// the Macro-3D macro edit — `_MD` layer suffixes and the filler-size
// SIZE shrink — directly on LEF text, equivalent to
// core.EditMacroForMacroDie on the in-memory master.
package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"macro3d/internal/cell"
	"macro3d/internal/tech"
)

// WriteLEF emits the technology stack and every master of the library.
func WriteLEF(w io.Writer, b *tech.BEOL, lib *cell.Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n")
	if b != nil {
		for i, l := range b.Layers {
			fmt.Fprintf(bw, "LAYER %s\n  TYPE ROUTING ;\n  DIRECTION %s ;\n  PITCH %.4f ;\n  WIDTH %.4f ;\n  RESISTANCE RPERSQ %.6f ;\n  CAPACITANCE CPERSQDIST %.6f ;\nEND %s\n\n",
				l.Name, lefDir(l.Dir), l.Pitch, l.Width, l.RPerUm, l.CPerUm, l.Name)
			if i < len(b.Vias) {
				v := b.Vias[i]
				kind := "CUT"
				if v.F2F {
					kind = "CUT F2F"
				}
				fmt.Fprintf(bw, "LAYER %s\n  TYPE %s ;\n  RESISTANCE %.6f ;\n  CAPACITANCE %.6f ;\n",
					viaName(b, i), kind, v.R, v.C)
				if v.F2F {
					fmt.Fprintf(bw, "  PITCH %.4f ;\n", v.Pitch)
				}
				fmt.Fprintf(bw, "END %s\n\n", viaName(b, i))
			}
		}
	}
	if lib != nil {
		for _, c := range lib.Cells() {
			writeMacro(bw, c)
		}
	}
	return bw.Flush()
}

func viaName(b *tech.BEOL, i int) string {
	if b.Vias[i].Name != "" {
		return b.Vias[i].Name
	}
	return fmt.Sprintf("VIA%d%d", i+1, i+2)
}

func lefDir(d tech.Dir) string {
	if d == tech.DirHorizontal {
		return "HORIZONTAL"
	}
	return "VERTICAL"
}

func writeMacro(w io.Writer, c *cell.Cell) {
	fmt.Fprintf(w, "MACRO %s\n", c.Name)
	fmt.Fprintf(w, "  CLASS %s ;\n", lefClass(c.Kind))
	fmt.Fprintf(w, "  SIZE %.4f BY %.4f ;\n", c.Width, c.Height)
	if c.Family != "" {
		fmt.Fprintf(w, "  PROPERTY family name \"%s\" drive %d ;\n", c.Family, c.Drive)
	}
	fmt.Fprintf(w, "  PROPERTY timing intrinsic %.4f driveres %.6f clkq %.4f setup %.4f hold %.4f ;\n",
		c.Intrinsic, c.DriveRes, c.ClkQ, c.Setup, c.Hold)
	fmt.Fprintf(w, "  PROPERTY slew sens %.4f intrinsic %.4f res %.6f ;\n",
		c.SlewSens, c.SlewIntrinsic, c.SlewRes)
	fmt.Fprintf(w, "  PROPERTY power internal %.4f leakage %.4f ;\n", c.InternalEnergy, c.Leakage)
	if c.Macro != nil {
		fmt.Fprintf(w, "  PROPERTY sram words %d bits %d energy %.4f ;\n",
			c.Macro.Words, c.Macro.Bits, c.Macro.EnergyPerAccess)
	}
	// Abstract provenance and per-pin boundary arcs are emitted only
	// for hardened masters, so the LEF of ordinary libraries (and the
	// cache fingerprints hashed over it) is unchanged.
	if c.Abstract != nil {
		fmt.Fprintf(w, "  PROPERTY abstract flow \"%s\" config \"%s\" minperiod %.4f energy %.4f leakage %.4f bumps %d ;\n",
			c.Abstract.SourceFlow, c.Abstract.SourceConfig, c.Abstract.MinPeriodPs,
			c.Abstract.EnergyPerCycleFJ, c.Abstract.LeakageUW, c.Abstract.F2FBumps)
	}
	for _, p := range c.Pins {
		fmt.Fprintf(w, "  PIN %s\n    DIRECTION %s ;\n", p.Name, lefPinDir(p.Dir))
		if p.Clock {
			fmt.Fprintf(w, "    USE CLOCK ;\n")
		}
		fmt.Fprintf(w, "    CAPACITANCE %.4f ;\n", p.Cap)
		if c.Abstract != nil {
			fmt.Fprintf(w, "    PROPERTY arc setup %.4f clkq %.4f ;\n", p.Setup, p.ClkQ)
		}
		fmt.Fprintf(w, "    PORT\n      LAYER %s ;\n      POINT %.4f %.4f ;\n    END\n", p.Layer, p.Offset.X, p.Offset.Y)
		fmt.Fprintf(w, "  END %s\n", p.Name)
	}
	if len(c.Obstructions) > 0 {
		fmt.Fprintf(w, "  OBS\n")
		for _, o := range c.Obstructions {
			fmt.Fprintf(w, "    LAYER %s ;\n      RECT %.4f %.4f %.4f %.4f ;\n",
				o.Layer, o.Rect.Lx, o.Rect.Ly, o.Rect.Ux, o.Rect.Uy)
		}
		fmt.Fprintf(w, "  END\n")
	}
	fmt.Fprintf(w, "END %s\n\n", c.Name)
}

func lefClass(k cell.Kind) string {
	switch k {
	case cell.KindMacro:
		return "BLOCK"
	case cell.KindFiller:
		return "CORE SPACER"
	case cell.KindSeq:
		return "CORE SEQUENTIAL"
	case cell.KindBuf:
		return "CORE BUFFER"
	case cell.KindInv:
		return "CORE INVERTER"
	}
	return "CORE"
}

func lefPinDir(d cell.PinDir) string {
	switch d {
	case cell.DirIn:
		return "INPUT"
	case cell.DirOut:
		return "OUTPUT"
	}
	return "INOUT"
}

// LEFContent is the parsed form of a LEF stream.
type LEFContent struct {
	Beol *tech.BEOL
	Lib  *cell.Library
}

// ParseLEF reads the dialect WriteLEF emits.
func ParseLEF(r io.Reader) (*LEFContent, error) {
	tk := newTokenizer(r)
	out := &LEFContent{Lib: cell.NewLibrary("lef")}
	var layers []tech.Layer
	var vias []tech.Via
	pendingVia := false
	var curVia tech.Via

	for {
		w, ok := tk.next()
		if !ok {
			break
		}
		switch w {
		case "VERSION", "BUSBITCHARS", "DIVIDERCHAR":
			tk.skipStatement()
		case "LAYER":
			name, _ := tk.next()
			kind, props, err := parseLayerBody(tk, name)
			if err != nil {
				return nil, err
			}
			switch kind {
			case "ROUTING":
				l := tech.Layer{Name: name,
					Pitch:  props["PITCH"],
					Width:  props["WIDTH"],
					RPerUm: props["RESISTANCE"],
					CPerUm: props["CAPACITANCE"],
				}
				if props["DIRVERT"] != 0 {
					l.Dir = tech.DirVertical
				}
				l.MacroDie = strings.HasSuffix(name, tech.MDSuffix)
				layers = append(layers, l)
				if pendingVia {
					vias = append(vias, curVia)
					pendingVia = false
				}
			case "CUT":
				curVia = tech.Via{Name: name, R: props["RESISTANCE"], C: props["CAPACITANCE"]}
				if props["F2F"] != 0 {
					curVia.F2F = true
					curVia.Pitch = props["PITCH"]
				}
				pendingVia = true
			}
		case "MACRO":
			name, _ := tk.next()
			c, err := parseMacroBody(tk, name)
			if err != nil {
				return nil, err
			}
			if out.Lib.Cell(name) != nil {
				return nil, tk.errf("duplicate MACRO %q", name)
			}
			out.Lib.Add(c)
		default:
			tk.skipStatement()
		}
	}
	if len(layers) > 0 {
		out.Beol = &tech.BEOL{Name: "lef", Layers: layers, Vias: vias}
		if err := out.Beol.Validate(); err != nil {
			return nil, fmt.Errorf("lefdef: parsed stack invalid: %w", err)
		}
	}
	return out, nil
}

// parseLayerBody consumes a LAYER block and returns its TYPE and
// numeric properties.
func parseLayerBody(tk *tokenizer, name string) (string, map[string]float64, error) {
	props := map[string]float64{}
	kind := ""
	for {
		w, ok := tk.next()
		if !ok {
			return "", nil, tk.errf("unexpected EOF in LAYER %s", name)
		}
		switch w {
		case "TYPE":
			var ok bool
			kind, ok = tk.next()
			if !ok {
				return "", nil, tk.errf("unexpected EOF after TYPE in LAYER %s", name)
			}
			// optional F2F marker before ';'
			for {
				x, ok := tk.next()
				if !ok {
					return "", nil, tk.errf("unexpected EOF in TYPE of LAYER %s", name)
				}
				if x == ";" {
					break
				}
				if x == "F2F" {
					props["F2F"] = 1
				}
			}
		case "DIRECTION":
			d, _ := tk.next()
			if d == "VERTICAL" {
				props["DIRVERT"] = 1
			}
			tk.expect(";")
		case "PITCH", "WIDTH":
			v, err := tk.nextFloat()
			if err != nil {
				return "", nil, err
			}
			props[w] = v
			tk.expect(";")
		case "RESISTANCE", "CAPACITANCE":
			// Either "RESISTANCE RPERSQ v ;" or "RESISTANCE v ;".
			x, _ := tk.next()
			if v, err := strconv.ParseFloat(x, 64); err == nil {
				props[w] = v
				tk.expect(";")
			} else {
				v, err := tk.nextFloat()
				if err != nil {
					return "", nil, err
				}
				props[w] = v
				tk.expect(";")
			}
		case "END":
			tk.next() // name
			return kind, props, nil
		default:
			tk.skipStatement()
		}
	}
}

// parseMacroBody consumes a MACRO block.
func parseMacroBody(tk *tokenizer, name string) (*cell.Cell, error) {
	c := &cell.Cell{Name: name}
	for {
		w, ok := tk.next()
		if !ok {
			return nil, tk.errf("unexpected EOF in MACRO %s", name)
		}
		switch w {
		case "CLASS":
			var words []string
			for {
				x, ok := tk.next()
				if !ok {
					return nil, tk.errf("unexpected EOF in CLASS of MACRO %s", name)
				}
				if x == ";" {
					break
				}
				words = append(words, x)
			}
			c.Kind = classKind(strings.Join(words, " "))
		case "SIZE":
			var err error
			if c.Width, err = tk.nextFloat(); err != nil {
				return nil, err
			}
			tk.expect("BY")
			if c.Height, err = tk.nextFloat(); err != nil {
				return nil, err
			}
			tk.expect(";")
		case "PROPERTY":
			if err := parseProperty(tk, c); err != nil {
				return nil, err
			}
		case "PIN":
			pname, _ := tk.next()
			p, err := parsePinBody(tk, pname)
			if err != nil {
				return nil, err
			}
			c.Pins = append(c.Pins, *p)
		case "OBS":
			if err := parseObs(tk, c); err != nil {
				return nil, err
			}
		case "END":
			tk.next() // macro name
			return c, nil
		default:
			tk.skipStatement()
		}
	}
}

func classKind(class string) cell.Kind {
	switch class {
	case "BLOCK":
		return cell.KindMacro
	case "CORE SPACER":
		return cell.KindFiller
	case "CORE SEQUENTIAL":
		return cell.KindSeq
	case "CORE BUFFER":
		return cell.KindBuf
	case "CORE INVERTER":
		return cell.KindInv
	}
	return cell.KindComb
}

func parseProperty(tk *tokenizer, c *cell.Cell) error {
	kind, _ := tk.next()
	vals := map[string]string{}
	key := ""
	for {
		w, ok := tk.next()
		if !ok {
			return tk.errf("unexpected EOF in PROPERTY")
		}
		if w == ";" {
			break
		}
		if key == "" {
			key = w
		} else {
			vals[key] = strings.Trim(w, `"`)
			key = ""
		}
	}
	f := func(k string) float64 {
		v, _ := strconv.ParseFloat(vals[k], 64)
		return v
	}
	switch kind {
	case "family":
		c.Family = strings.Trim(vals["name"], `"`)
		if d, err := strconv.Atoi(vals["drive"]); err == nil {
			c.Drive = d
		}
	case "timing":
		c.Intrinsic = f("intrinsic")
		c.DriveRes = f("driveres")
		c.ClkQ = f("clkq")
		c.Setup = f("setup")
		c.Hold = f("hold")
	case "slew":
		c.SlewSens = f("sens")
		c.SlewIntrinsic = f("intrinsic")
		c.SlewRes = f("res")
	case "power":
		c.InternalEnergy = f("internal")
		c.Leakage = f("leakage")
	case "sram":
		words, _ := strconv.Atoi(vals["words"])
		bits, _ := strconv.Atoi(vals["bits"])
		c.Macro = &cell.MacroInfo{
			Words: words, Bits: bits,
			CapacityBytes:   words * bits / 8,
			EnergyPerAccess: f("energy"),
		}
	case "abstract":
		bumps, _ := strconv.Atoi(vals["bumps"])
		c.Abstract = &cell.AbstractInfo{
			SourceFlow:       vals["flow"],
			SourceConfig:     vals["config"],
			MinPeriodPs:      f("minperiod"),
			EnergyPerCycleFJ: f("energy"),
			LeakageUW:        f("leakage"),
			F2FBumps:         bumps,
		}
	}
	return nil
}

func parsePinBody(tk *tokenizer, name string) (*cell.Pin, error) {
	p := &cell.Pin{Name: name}
	for {
		w, ok := tk.next()
		if !ok {
			return nil, tk.errf("unexpected EOF in PIN %s", name)
		}
		switch w {
		case "DIRECTION":
			d, _ := tk.next()
			switch d {
			case "INPUT":
				p.Dir = cell.DirIn
			case "OUTPUT":
				p.Dir = cell.DirOut
			default:
				p.Dir = cell.DirInOut
			}
			tk.expect(";")
		case "USE":
			u, _ := tk.next()
			if u == "CLOCK" {
				p.Clock = true
			}
			tk.expect(";")
		case "CAPACITANCE":
			v, err := tk.nextFloat()
			if err != nil {
				return nil, err
			}
			p.Cap = v
			tk.expect(";")
		case "PROPERTY":
			kind, _ := tk.next()
			vals := map[string]float64{}
			key := ""
			for {
				x, ok := tk.next()
				if !ok {
					return nil, tk.errf("unexpected EOF in PIN %s PROPERTY", name)
				}
				if x == ";" {
					break
				}
				if key == "" {
					key = x
				} else {
					v, err := strconv.ParseFloat(x, 64)
					if err != nil {
						return nil, tk.errf("bad number %q for %s in PIN %s PROPERTY", x, key, name)
					}
					vals[key] = v
					key = ""
				}
			}
			if kind == "arc" {
				p.Setup = vals["setup"]
				p.ClkQ = vals["clkq"]
			}
		case "PORT":
			for {
				x, ok := tk.next()
				if !ok {
					return nil, tk.errf("unexpected EOF in PORT of PIN %s", name)
				}
				if x == "LAYER" {
					var ok bool
					if p.Layer, ok = tk.next(); !ok {
						return nil, tk.errf("unexpected EOF after LAYER in PORT of PIN %s", name)
					}
					tk.expect(";")
				} else if x == "POINT" {
					var err error
					if p.Offset.X, err = tk.nextFloat(); err != nil {
						return nil, err
					}
					if p.Offset.Y, err = tk.nextFloat(); err != nil {
						return nil, err
					}
					tk.expect(";")
				} else if x == "END" {
					break
				}
			}
		case "END":
			tk.next() // pin name
			return p, nil
		default:
			tk.skipStatement()
		}
	}
}

func parseObs(tk *tokenizer, c *cell.Cell) error {
	layer := ""
	for {
		w, ok := tk.next()
		if !ok {
			return tk.errf("unexpected EOF in OBS")
		}
		switch w {
		case "LAYER":
			var ok bool
			if layer, ok = tk.next(); !ok {
				return tk.errf("unexpected EOF after LAYER in OBS")
			}
			tk.expect(";")
		case "RECT":
			var r [4]float64
			for i := range r {
				v, err := tk.nextFloat()
				if err != nil {
					return err
				}
				r[i] = v
			}
			tk.expect(";")
			c.Obstructions = append(c.Obstructions, cell.Obstruction{
				Layer: layer,
				Rect:  rect4(r),
			})
		case "END":
			return nil
		}
	}
}

// SortObstructions orders a master's obstructions deterministically
// (layer, then coordinates) — useful before comparing round-tripped
// masters.
func SortObstructions(c *cell.Cell) {
	sort.Slice(c.Obstructions, func(i, j int) bool {
		a, b := c.Obstructions[i], c.Obstructions[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Rect.Lx < b.Rect.Lx
	})
}
