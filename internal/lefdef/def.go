package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// WriteDEF emits a placed design: die area, components with locations,
// orientations and die assignment, pins, and net connectivity.
func WriteDEF(w io.Writer, d *netlist.Design, die geom.Rect) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS 1000 ;\n", d.Name)
	fmt.Fprintf(bw, "DIEAREA ( %.4f %.4f ) ( %.4f %.4f ) ;\n\n", die.Lx, die.Ly, die.Ux, die.Uy)

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Instances))
	for _, inst := range d.Instances {
		status := "UNPLACED"
		if inst.Fixed {
			status = "FIXED"
		} else if inst.Placed {
			status = "PLACED"
		}
		fmt.Fprintf(bw, "  - %s %s + %s ( %.4f %.4f ) %s + PROPERTY die %d ;\n",
			inst.Name, inst.Master.Name, status, inst.Loc.X, inst.Loc.Y,
			inst.Orient, inst.Die)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n\n")

	fmt.Fprintf(bw, "PINS %d ;\n", len(d.Ports))
	for _, p := range d.Ports {
		half := 0
		if p.HalfCycle {
			half = 1
		}
		fmt.Fprintf(bw, "  - %s + DIRECTION %s + LAYER %s ( %.4f %.4f ) + PROPERTY halfcycle %d extcap %.4f extdelay %.4f ;\n",
			p.Name, lefPinDir(p.Dir), p.Layer, p.Loc.X, p.Loc.Y, half, p.ExtCap, p.ExtDelay)
	}
	fmt.Fprintf(bw, "END PINS\n\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "  - %s", n.Name)
		if n.Clock {
			fmt.Fprintf(bw, " + USE CLOCK")
		}
		writeRef := func(r netlist.PinRef) {
			if r.Port != nil {
				fmt.Fprintf(bw, " ( PIN %s )", r.Port.Name)
			} else {
				fmt.Fprintf(bw, " ( %s %s )", r.Inst.Name, r.Pin)
			}
		}
		writeRef(n.Driver)
		for _, s := range n.Sinks {
			writeRef(s)
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\n\nEND DESIGN\n")
	return bw.Flush()
}

// DEFContent is a parsed design plus its die area.
type DEFContent struct {
	Design *netlist.Design
	Die    geom.Rect
}

// ParseDEF reads the dialect WriteDEF emits, resolving masters against
// the given library.
func ParseDEF(r io.Reader, lib *cell.Library) (*DEFContent, error) {
	tk := newTokenizer(r)
	out := &DEFContent{}
	var d *netlist.Design
	for {
		w, ok := tk.next()
		if !ok {
			break
		}
		switch w {
		case "DESIGN":
			name, _ := tk.next()
			tk.expect(";")
			d = netlist.NewDesign(name, lib)
			out.Design = d
		case "DIEAREA":
			var v [4]float64
			vi := 0
			for vi < 4 {
				x, _ := tk.next()
				if f, err := strconv.ParseFloat(x, 64); err == nil {
					v[vi] = f
					vi++
				}
				if x == ";" {
					break
				}
			}
			tk.skipStatement()
			out.Die = rect4(v)
		case "COMPONENTS":
			if d == nil {
				return nil, fmt.Errorf("lefdef: COMPONENTS before DESIGN")
			}
			if err := parseComponents(tk, d, lib); err != nil {
				return nil, err
			}
		case "PINS":
			if d == nil {
				return nil, fmt.Errorf("lefdef: PINS before DESIGN")
			}
			if err := parsePins(tk, d); err != nil {
				return nil, err
			}
		case "NETS":
			if d == nil {
				return nil, fmt.Errorf("lefdef: NETS before DESIGN")
			}
			if err := parseNets(tk, d); err != nil {
				return nil, err
			}
		default:
			tk.skipStatement()
		}
	}
	if out.Design == nil {
		return nil, fmt.Errorf("lefdef: no DESIGN in stream")
	}
	return out, nil
}

func parseComponents(tk *tokenizer, d *netlist.Design, lib *cell.Library) error {
	tk.skipStatement() // count ;
	for {
		w, ok := tk.next()
		if !ok {
			return tk.errf("unexpected EOF in COMPONENTS")
		}
		if w == "END" {
			tk.next() // COMPONENTS
			return nil
		}
		if w != "-" {
			continue
		}
		name, _ := tk.next()
		master, _ := tk.next()
		m := lib.Cell(master)
		if m == nil {
			return tk.errf("unknown master %q for %s", master, name)
		}
		if d.Instance(name) != nil {
			return tk.errf("duplicate component %q", name)
		}
		inst := d.AddInstance(name, m)
		// "+ STATUS ( x y ) ORIENT + PROPERTY die N ;"
		for {
			x, ok := tk.next()
			if !ok {
				return tk.errf("unexpected EOF in component %s", name)
			}
			if x == ";" {
				break
			}
			switch x {
			case "PLACED":
				inst.Placed = true
			case "FIXED":
				inst.Placed = true
				inst.Fixed = true
			case "(":
				lx, err := tk.nextFloat()
				if err != nil {
					return err
				}
				ly, err := tk.nextFloat()
				if err != nil {
					return err
				}
				tk.expect(")")
				inst.Loc = geom.Pt(lx, ly)
				// Orientation token follows.
				o, _ := tk.next()
				inst.Orient = parseOrient(o)
			case "die":
				v, err := tk.nextFloat()
				if err != nil {
					return err
				}
				inst.Die = netlist.Die(int(v))
			}
		}
	}
}

func parseOrient(s string) geom.Orient {
	switch s {
	case "S":
		return geom.OrientS
	case "FN":
		return geom.OrientFN
	case "FS":
		return geom.OrientFS
	}
	return geom.OrientN
}

func parsePins(tk *tokenizer, d *netlist.Design) error {
	tk.skipStatement()
	for {
		w, ok := tk.next()
		if !ok {
			return tk.errf("unexpected EOF in PINS")
		}
		if w == "END" {
			tk.next()
			return nil
		}
		if w != "-" {
			continue
		}
		name, _ := tk.next()
		var dir cell.PinDir
		var layer string
		var x, y, extCap, extDelay float64
		half := false
		for {
			t, ok := tk.next()
			if !ok {
				return tk.errf("unexpected EOF in pin %s", name)
			}
			if t == ";" {
				break
			}
			switch t {
			case "DIRECTION":
				s, _ := tk.next()
				switch s {
				case "INPUT":
					dir = cell.DirIn
				case "OUTPUT":
					dir = cell.DirOut
				default:
					dir = cell.DirInOut
				}
			case "LAYER":
				var lok bool
				if layer, lok = tk.next(); !lok {
					return tk.errf("unexpected EOF after LAYER in pin %s", name)
				}
				tk.expect("(")
				var err error
				if x, err = tk.nextFloat(); err != nil {
					return err
				}
				if y, err = tk.nextFloat(); err != nil {
					return err
				}
				tk.expect(")")
			case "halfcycle":
				v, err := tk.nextFloat()
				if err != nil {
					return err
				}
				half = v != 0
			case "extcap":
				v, err := tk.nextFloat()
				if err != nil {
					return err
				}
				extCap = v
			case "extdelay":
				v, err := tk.nextFloat()
				if err != nil {
					return err
				}
				extDelay = v
			}
		}
		if d.Port(name) != nil {
			return tk.errf("duplicate pin %q", name)
		}
		p := d.AddPort(name, dir)
		p.Layer = layer
		p.Loc = geom.Pt(x, y)
		p.HalfCycle = half
		p.ExtCap = extCap
		p.ExtDelay = extDelay
	}
}

func parseNets(tk *tokenizer, d *netlist.Design) error {
	tk.skipStatement()
	for {
		w, ok := tk.next()
		if !ok {
			return tk.errf("unexpected EOF in NETS")
		}
		if w == "END" {
			tk.next()
			return nil
		}
		if w != "-" {
			continue
		}
		name, _ := tk.next()
		clock := false
		var refs []netlist.PinRef
		for {
			t, ok := tk.next()
			if !ok {
				return tk.errf("unexpected EOF in net %s", name)
			}
			if t == ";" {
				break
			}
			switch t {
			case "USE":
				u, _ := tk.next()
				if u == "CLOCK" {
					clock = true
				}
			case "(":
				a, _ := tk.next()
				if a == "PIN" {
					pn, _ := tk.next()
					p := d.Port(pn)
					if p == nil {
						return tk.errf("net %s references unknown pin %s", name, pn)
					}
					refs = append(refs, netlist.PPin(p))
				} else {
					pin, _ := tk.next()
					inst := d.Instance(a)
					if inst == nil {
						return tk.errf("net %s references unknown instance %s", name, a)
					}
					refs = append(refs, netlist.IPin(inst, pin))
				}
				tk.expect(")")
			}
		}
		if len(refs) == 0 {
			continue
		}
		if d.Net(name) != nil {
			return tk.errf("duplicate net %q", name)
		}
		n := d.AddNet(name, refs[0], refs[1:]...)
		n.Clock = clock
	}
}
