package viz

import (
	"strings"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

func vizDesign(t *testing.T) (*netlist.Design, geom.Rect) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("v", lib)
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 4096, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	mm := d.AddInstance("l3_bank0", sram)
	mm.Loc = geom.Pt(50, 50)
	mm.Die = netlist.MacroDie
	mm.Fixed, mm.Placed = true, true
	u := d.AddInstance("u1", lib.MustCell("INV_X1"))
	u.Loc = geom.Pt(10, 10)
	u.Placed = true
	p := d.AddPort("clk", cell.DirIn)
	p.Loc = geom.Pt(0, 100)
	return d, geom.R(0, 0, 400, 300)
}

func TestLayoutSVGStructure(t *testing.T) {
	d, die := vizDesign(t)
	svg := LayoutSVG(d, die, Options{Title: "test layout", ShowCells: true, ShowPorts: true,
		Bumps: []geom.Point{{X: 100, Y: 100}}})
	for _, want := range []string{
		"<svg", "</svg>", "test layout",
		"l3_bank0",       // macro label
		`fill="#d9a9a9"`, // macro-die color
		`fill="#7fbf7f"`, // cell color
		`fill="#cc2222"`, // bump dot
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Macro on the macro die is red-toned; same macro on the logic die
	// renders blue-toned.
	d.Instance("l3_bank0").Die = netlist.LogicDie
	svg2 := LayoutSVG(d, die, Options{})
	if !strings.Contains(svg2, `fill="#9db7d9"`) {
		t.Error("logic-die macro color missing")
	}
}

func TestLayoutSVGDieFilter(t *testing.T) {
	d, die := vizDesign(t)
	ld := netlist.LogicDie
	svg := LayoutSVG(d, die, Options{DieFilter: &ld})
	if strings.Contains(svg, "l3_bank0") {
		t.Error("macro-die instance drawn despite logic-die filter")
	}
	md := netlist.MacroDie
	svg = LayoutSVG(d, die, Options{DieFilter: &md})
	if !strings.Contains(svg, "l3_bank0") {
		t.Error("macro missing under macro-die filter")
	}
}

func TestCrossSectionSVG(t *testing.T) {
	flat := CrossSectionSVG(6, 0, false)
	if !strings.Contains(flat, "M6") || strings.Contains(flat, "_MD") {
		t.Error("2D cross section wrong")
	}
	mol := CrossSectionSVG(6, 4, true)
	for _, want := range []string{"M1_MD", "M4_MD", "F2F_VIA", "macro-die substrate", "logic-die substrate"} {
		if !strings.Contains(mol, want) {
			t.Errorf("MoL cross section missing %q", want)
		}
	}
	if strings.Contains(mol, "M5_MD") {
		t.Error("MoL cross section has too many macro metals")
	}
}

func TestASCIIDensity(t *testing.T) {
	d, die := vizDesign(t)
	out := ASCIIDensity(d, die, 40, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("too few rows: %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("row width %d, want 40", len(l))
		}
	}
	if !strings.Contains(out, "M") {
		t.Error("macro marker missing from density map")
	}
	// Filtering to the logic die hides the macro.
	ld := netlist.LogicDie
	out2 := ASCIIDensity(d, die, 40, &ld)
	if strings.Contains(out2, "M") {
		t.Error("macro drawn despite die filter")
	}
}

func TestWirelengthBars(t *testing.T) {
	out := WirelengthBars(map[string]float64{"M1": 1000, "M2": 4000})
	if !strings.Contains(out, "M1") || !strings.Contains(out, "M2") {
		t.Fatal("layers missing")
	}
	// M2 bar longer than M1 bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "▇") <= strings.Count(lines[0], "▇") {
		t.Fatal("bars not proportional")
	}
}
