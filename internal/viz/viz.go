// Package viz renders floorplans and placed/routed layouts as SVG (and
// quick ASCII density maps) — the repository's stand-in for the
// paper's Figs. 1 and 4–6: macro floorplans, final 2D layouts, and the
// separated MoL dies with their F2F bump clouds.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// Options controls layout rendering.
type Options struct {
	Title string
	// WidthPx is the SVG width; height follows the die aspect
	// (default 640).
	WidthPx float64
	// ShowCells draws standard cells (small green rectangles).
	ShowCells bool
	// DieFilter limits drawn instances to one die; nil draws all.
	DieFilter *netlist.Die
	// Bumps are F2F via locations drawn as red dots.
	Bumps []geom.Point
	// ShowPorts marks perimeter ports.
	ShowPorts bool
	// ShowObstructions draws the per-layer routing obstructions of
	// hardened-macro abstracts inside their outlines — logic-die
	// layers in blue, macro-die (_MD) layers in red.
	ShowObstructions bool
}

// LayoutSVG renders the design inside the die outline.
func LayoutSVG(d *netlist.Design, die geom.Rect, o Options) string {
	if o.WidthPx <= 0 {
		o.WidthPx = 640
	}
	s := o.WidthPx / die.W()
	hPx := die.H() * s
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`,
		o.WidthPx, hPx+24, o.WidthPx, hPx+24)
	b.WriteByte('\n')
	if o.Title != "" {
		fmt.Fprintf(&b, `<text x="4" y="14" font-size="12" font-family="monospace">%s</text>`+"\n", o.Title)
	}
	// y grows downward in SVG; flip the die.
	ty := func(y float64) float64 { return 24 + (die.Uy-y)*s }
	tx := func(x float64) float64 { return (x - die.Lx) * s }
	rect := func(r geom.Rect, fill, stroke string, sw float64) {
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="%.2f"/>`+"\n",
			tx(r.Lx), ty(r.Uy), r.W()*s, r.H()*s, fill, stroke, sw)
	}
	// Die outline.
	rect(die, "#ffffff", "#000000", 1.5)

	keep := func(inst *netlist.Instance) bool {
		return o.DieFilter == nil || inst.Die == *o.DieFilter
	}
	// Standard cells first (underneath macros).
	if o.ShowCells {
		for _, inst := range d.Instances {
			if inst.IsMacro() || !inst.Placed || !keep(inst) {
				continue
			}
			rect(inst.Bounds(), "#7fbf7f", "none", 0)
		}
	}
	// Macros with labels. Hardened abstracts get a distinct dashed
	// gold boundary — they are our own signed-off sub-blocks, not
	// compiler macros — and optionally their per-layer obstructions.
	for _, inst := range d.Macros() {
		if !inst.Placed || !keep(inst) {
			continue
		}
		r := inst.Bounds()
		if inst.Master.Abstract != nil {
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#f4ecd2" stroke="#8a6d1a" stroke-width="1.2" stroke-dasharray="5,3"/>`+"\n",
				tx(r.Lx), ty(r.Uy), r.W()*s, r.H()*s)
			if o.ShowObstructions {
				for _, ob := range inst.Master.Obstructions {
					or := ob.Rect.Translate(inst.Loc)
					fill := "#3b6fb5" // logic-die layer
					if strings.HasSuffix(ob.Layer, "_MD") {
						fill = "#b54a3b" // macro-die layer
					}
					fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.12" stroke="none"/>`+"\n",
						tx(or.Lx), ty(or.Uy), or.W()*s, or.H()*s, fill)
				}
			}
			if r.W()*s > 40 {
				fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="9" font-family="monospace" fill="#8a6d1a">%s</text>`+"\n",
					tx(r.Lx)+2, ty(r.Center().Y), inst.Name)
			}
			continue
		}
		fill := "#9db7d9"
		if inst.Die == netlist.MacroDie {
			fill = "#d9a9a9"
		}
		rect(r, fill, "#333333", 0.8)
		if r.W()*s > 40 {
			fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="9" font-family="monospace">%s</text>`+"\n",
				tx(r.Lx)+2, ty(r.Center().Y), inst.Name)
		}
	}
	// Ports.
	if o.ShowPorts {
		for _, p := range d.Ports {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="1.4" fill="#444444"/>`+"\n",
				tx(p.Loc.X), ty(p.Loc.Y))
		}
	}
	// F2F bumps.
	for _, p := range o.Bumps {
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="1.1" fill="#cc2222"/>`+"\n",
			tx(p.X), ty(p.Y))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// CrossSectionSVG draws the Fig. 1-style cross view of either a 2D IC
// (mol=false) or an F2F-stacked MoL 3D IC (mol=true) with the given
// metal counts.
func CrossSectionSVG(logicMetals, macroMetals int, mol bool) string {
	var b strings.Builder
	w, layerH := 420.0, 12.0
	rows := logicMetals + 2
	if mol {
		rows = logicMetals + macroMetals + 5
	}
	h := float64(rows)*layerH + 40
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`, w, h)
	b.WriteByte('\n')
	y := 20.0
	bar := func(label, fill string) {
		fmt.Fprintf(&b, `<rect x="40" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
			y, w-80, layerH-2, fill)
		fmt.Fprintf(&b, `<text x="44" y="%.1f" font-size="9" font-family="monospace">%s</text>`+"\n",
			y+layerH-4, label)
		y += layerH
	}
	if mol {
		// Macro die on top, face down: substrate, then M1_MD..Mn_MD,
		// then F2F bumps, then the logic die's Mn..M1, substrate.
		bar("macro-die substrate (memory/sensor macros)", "#d9a9a9")
		for i := 1; i <= macroMetals; i++ {
			bar(fmt.Sprintf("M%d_MD", i), "#e8d3b0")
		}
		bar("F2F_VIA bumps", "#cc2222")
		for i := logicMetals; i >= 1; i-- {
			bar(fmt.Sprintf("M%d", i), "#c9d8ef")
		}
		bar("logic-die substrate (standard cells)", "#9db7d9")
	} else {
		for i := logicMetals; i >= 1; i-- {
			bar(fmt.Sprintf("M%d", i), "#c9d8ef")
		}
		bar("substrate (cells + macros)", "#9db7d9")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// ASCIIDensity renders a cols-wide density map of placed cell area
// ('.' empty → '#' full; 'M' macro) for terminal inspection.
func ASCIIDensity(d *netlist.Design, die geom.Rect, cols int, dieFilter *netlist.Die) string {
	if cols < 4 {
		cols = 4
	}
	rows := int(float64(cols) * die.H() / die.W() / 2) // chars are ~2× tall
	if rows < 2 {
		rows = 2
	}
	g := geom.Grid{Region: die, NX: cols, NY: rows,
		DX: die.W() / float64(cols), DY: die.H() / float64(rows)}
	area := make([]float64, g.Bins())
	macro := make([]bool, g.Bins())
	for _, inst := range d.Instances {
		if !inst.Placed {
			continue
		}
		if dieFilter != nil && inst.Die != *dieFilter {
			continue
		}
		if inst.IsMacro() {
			x0, y0, x1, y1, ok := g.CoverRange(inst.Bounds())
			if !ok {
				continue
			}
			for iy := y0; iy <= y1; iy++ {
				for ix := x0; ix <= x1; ix++ {
					macro[g.Index(ix, iy)] = true
				}
			}
			continue
		}
		ix, iy := g.Locate(inst.Center())
		area[g.Index(ix, iy)] += inst.Master.Area()
	}
	shades := []byte(" .:-=+*#")
	binArea := g.DX * g.DY
	var b strings.Builder
	for iy := g.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.NX; ix++ {
			i := g.Index(ix, iy)
			if macro[i] {
				b.WriteByte('M')
				continue
			}
			f := area[i] / binArea
			k := int(f * float64(len(shades)))
			if k >= len(shades) {
				k = len(shades) - 1
			}
			b.WriteByte(shades[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WirelengthBars renders per-layer wirelength as an ASCII bar chart —
// handy for the M6–M4 ablation discussion.
func WirelengthBars(byLayer map[string]float64) string {
	names := make([]string, 0, len(byLayer))
	maxWL := 0.0
	for n, v := range byLayer {
		names = append(names, n)
		if v > maxWL {
			maxWL = v
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		bars := 0
		if maxWL > 0 {
			bars = int(byLayer[n] / maxWL * 40)
		}
		fmt.Fprintf(&b, "%-8s %8.2f mm %s\n", n, byLayer[n]/1e3, strings.Repeat("▇", bars))
	}
	return b.String()
}
