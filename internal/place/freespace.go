package place

import (
	"math"
	"sort"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
)

// FreeSpace tracks the unoccupied row intervals of a legal placement
// so incremental edits (gate upsizing, buffer insertion) can claim
// legal locations near their targets — the ECO-placement primitive the
// timing optimizer uses.
type FreeSpace struct {
	rowHeight float64
	die       geom.Rect
	byRow     map[int][]*segment
	maxRow    int
}

// NewFreeSpace builds the free-interval map: the floorplan's row
// segments minus every currently placed, non-fixed standard cell and
// every hard blockage.
func NewFreeSpace(d *netlist.Design, fp *floorplan.Floorplan, rowHeight float64) *FreeSpace {
	fs := &FreeSpace{
		rowHeight: rowHeight,
		die:       fp.Die,
		byRow:     map[int][]*segment{},
	}
	for _, s := range buildSegments(fp, rowHeight) {
		fs.byRow[s.row] = append(fs.byRow[s.row], s)
		if s.row > fs.maxRow {
			fs.maxRow = s.row
		}
	}
	for _, inst := range d.Instances {
		if !inst.Placed || inst.IsMacro() {
			continue
		}
		fs.occupy(inst.Bounds())
	}
	return fs
}

func (fs *FreeSpace) rowOf(y float64) int {
	return geom.ClampInt(int((y-fs.die.Ly)/fs.rowHeight), 0, fs.maxRow)
}

// occupy removes a rectangle's span from its row's free intervals.
func (fs *FreeSpace) occupy(r geom.Rect) {
	row := fs.rowOf(r.Ly + 1e-9)
	for _, s := range fs.byRow[row] {
		if r.Lx >= s.x0-1e-6 && r.Ux <= s.x1+1e-6 {
			s.occupy(r.Lx, r.W())
			return
		}
	}
}

// Occupy claims a rectangle (used to re-claim a footprint after a
// failed reallocation).
func (fs *FreeSpace) Occupy(r geom.Rect) { fs.occupy(r) }

// Release returns a cell's old footprint to the free pool (merging
// with adjacent free intervals).
func (fs *FreeSpace) Release(r geom.Rect) {
	row := fs.rowOf(r.Ly + 1e-9)
	for _, s := range fs.byRow[row] {
		if r.Lx >= s.x0-1e-6 && r.Ux <= s.x1+1e-6 {
			s.release(r.Lx, r.W())
			return
		}
	}
}

// Alloc finds a legal lower-left location for a cell of width w whose
// centre should sit near target, claims it, and returns it. The search
// expands row by row; ok is false when nothing fits anywhere.
func (fs *FreeSpace) Alloc(w float64, target geom.Point) (geom.Point, bool) {
	wantX := target.X - w/2
	targetRow := fs.rowOf(target.Y - fs.rowHeight/2)
	bestCost := -1.0
	var bestSeg *segment
	var bestX float64
	for dr := 0; dr <= fs.maxRow+1; dr++ {
		for _, sgn := range []int{1, -1} {
			if dr == 0 && sgn == -1 {
				continue
			}
			r := targetRow + sgn*dr
			if r < 0 || r > fs.maxRow {
				continue
			}
			dy := float64(dr) * fs.rowHeight
			if bestCost >= 0 && dy > bestCost {
				continue
			}
			for _, s := range fs.byRow[r] {
				x, ok := s.bestFit(wantX, w)
				if !ok {
					continue
				}
				cost := dy + math.Abs(x-wantX)
				if bestCost < 0 || cost < bestCost {
					bestCost, bestSeg, bestX = cost, s, x
				}
			}
		}
		if bestCost >= 0 && float64(dr+1)*fs.rowHeight > bestCost {
			break
		}
	}
	if bestSeg == nil {
		return geom.Point{}, false
	}
	bestSeg.occupy(bestX, w)
	return geom.Pt(bestX, bestSeg.y), true
}

// release merges [x, x+w) back into the free intervals.
func (s *segment) release(x, w float64) {
	nf := iv{x, x + w}
	out := s.free[:0]
	inserted := false
	for _, f := range s.free {
		switch {
		case f.b < nf.a-1e-9:
			out = append(out, f)
		case f.a > nf.b+1e-9:
			if !inserted {
				out = append(out, nf)
				inserted = true
			}
			out = append(out, f)
		default:
			// Overlapping/adjacent: merge into nf.
			if f.a < nf.a {
				nf.a = f.a
			}
			if f.b > nf.b {
				nf.b = f.b
			}
		}
	}
	if !inserted {
		out = append(out, nf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].a < out[j].a })
	s.free = out
}
