package place

import (
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
)

// chainDesign builds a linear chain of inverters between two ports on
// opposite die edges — the placer should spread it between them.
func chainDesign(n int) (*netlist.Design, *floorplan.Floorplan) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("chain", lib)
	in := d.AddPort("in", cell.DirIn)
	in.Loc = geom.Pt(0, 50)
	out := d.AddPort("out", cell.DirOut)
	out.Loc = geom.Pt(100, 50)
	prev := netlist.PPin(in)
	for i := 0; i < n; i++ {
		u := d.AddInstance(instName(i), lib.MustCell("INV_X1"))
		d.AddNet(netName(i), prev, netlist.IPin(u, "A"))
		prev = netlist.IPin(u, "Y")
	}
	d.AddNet("n_out", prev, netlist.PPin(out))
	fp := &floorplan.Floorplan{Die: geom.R(0, 0, 100, 100)}
	return d, fp
}

func instName(i int) string { return "u" + itoa(i) }
func netName(i int) string  { return "n" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestPlaceChain(t *testing.T) {
	d, fp := chainDesign(50)
	res, err := Place(d, fp, 1.2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if viol := CheckLegal(d, fp); len(viol) > 0 {
		t.Fatalf("illegal placement: %v", viol[:min(3, len(viol))])
	}
	// A 50-cell chain between x=0 and x=100: ideal HPWL ≈ 100 µm plus
	// row hops. Anything under ~4× ideal is a sane placement.
	if res.HPWL > 400 {
		t.Fatalf("chain HPWL = %.1f µm, too long", res.HPWL)
	}
	if res.HPWL <= 0 {
		t.Fatal("zero HPWL")
	}
	for _, inst := range d.Instances {
		if !inst.Placed {
			t.Fatalf("%s unplaced", inst.Name)
		}
	}
}

func TestPlaceRespectsHardBlockage(t *testing.T) {
	d, fp := chainDesign(80)
	blk := geom.R(30, 30, 70, 70)
	fp.PlaceBlk = append(fp.PlaceBlk, floorplan.Blockage{Rect: blk, Fraction: 1})
	_, err := Place(d, fp, 1.2, Options{Seed: 2, BinPitch: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range d.Instances {
		if blk.Expand(-1e-7).Intersects(inst.Bounds()) {
			t.Fatalf("%s placed on hard blockage", inst.Name)
		}
	}
	if viol := CheckLegal(d, fp); len(viol) > 0 {
		t.Fatalf("illegal: %v", viol[0])
	}
}

func TestPartialBlockageIsSoft(t *testing.T) {
	// Cells may legally sit inside a 50 % blockage region — the S2D
	// mechanism — but the region must end up underfilled versus free
	// area.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("soft", lib)
	// A clique of cells pulled to the die centre by a port ring.
	var prev netlist.PinRef
	for i := 0; i < 400; i++ {
		u := d.AddInstance(instName(i), lib.MustCell("NAND2_X1"))
		if i > 0 {
			d.AddNet(netName(i), prev, netlist.IPin(u, "A"))
		}
		prev = netlist.IPin(u, "Y")
	}
	// Die sized so the design needs ~2/3 of the unblocked capacity —
	// dense enough that the density engine must act.
	fp := &floorplan.Floorplan{Die: geom.R(0, 0, 42, 42)}
	// Left half partially blocked.
	fp.PlaceBlk = append(fp.PlaceBlk, floorplan.Blockage{Rect: geom.R(0, 0, 21, 42), Fraction: 0.5})
	_, err := Place(d, fp, 1.2, Options{Seed: 3, BinPitch: 7})
	if err != nil {
		t.Fatal(err)
	}
	inLeft := 0
	for _, inst := range d.Instances {
		if inst.Center().X < 21 {
			inLeft++
		}
	}
	// Some cells can use the partially blocked half…
	if inLeft == 0 {
		t.Fatal("partial blockage acted as a hard fence")
	}
	// …but it must carry meaningfully less than half the population.
	if inLeft > 190 {
		t.Fatalf("partially blocked half carries %d/400 cells", inLeft)
	}
}

func TestPlacePitonTile2D(t *testing.T) {
	if testing.Short() {
		t.Skip("full tile placement in -short mode")
	}
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		t.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)

	res, err := Place(d, fp, 1.2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tile: HPWL %.2f m (global %.2f m), mean disp %.1f µm, overflow %.3f",
		res.HPWL/1e6, res.GlobalHPWL/1e6, res.Displacement, res.Overflow)
	if viol := CheckLegal(d, fp); len(viol) > 0 {
		t.Fatalf("%d violations, e.g. %v", len(viol), viol[0])
	}
	// Paper-scale sanity: total wirelength lands in the metres range
	// (paper: 6.3 m for the small 2D tile); accept a broad band.
	if res.HPWL < 0.5e6 || res.HPWL > 20e6 {
		t.Fatalf("HPWL %.2f m outside plausible band", res.HPWL/1e6)
	}
	// Legalization should not explode wirelength.
	if res.HPWL > 2.5*res.GlobalHPWL {
		t.Fatalf("legalization blew up HPWL: %.2f → %.2f", res.GlobalHPWL/1e6, res.HPWL/1e6)
	}
}

func TestLegalizeDeterministic(t *testing.T) {
	d1, fp1 := chainDesign(60)
	d2, fp2 := chainDesign(60)
	if _, err := Place(d1, fp1, 1.2, Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d2, fp2, 1.2, Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Instances {
		if d1.Instances[i].Loc != d2.Instances[i].Loc {
			t.Fatalf("instance %d placed differently across runs", i)
		}
	}
}

func TestPlaceFailsWhenNoRows(t *testing.T) {
	d, fp := chainDesign(10)
	// Block the whole die.
	fp.PlaceBlk = append(fp.PlaceBlk, floorplan.Blockage{Rect: fp.Die, Fraction: 1})
	if _, err := Place(d, fp, 1.2, Options{Seed: 1}); err == nil {
		t.Fatal("placement into fully blocked die succeeded")
	}
}

func TestBuildSegments(t *testing.T) {
	fp := &floorplan.Floorplan{Die: geom.R(0, 0, 100, 12)}
	fp.PlaceBlk = append(fp.PlaceBlk, floorplan.Blockage{Rect: geom.R(40, 0, 60, 12), Fraction: 1})
	segs := buildSegments(fp, 1.2)
	// 10 rows × 2 segments.
	if len(segs) != 20 {
		t.Fatalf("segments = %d, want 20", len(segs))
	}
	for _, s := range segs {
		if s.x1 <= s.x0 {
			t.Fatal("empty segment emitted")
		}
		if s.x0 < 40 && s.x1 > 40 {
			t.Fatal("segment crosses blockage")
		}
	}
	// Partial blockages do not split rows.
	fp2 := &floorplan.Floorplan{Die: geom.R(0, 0, 100, 12)}
	fp2.PlaceBlk = append(fp2.PlaceBlk, floorplan.Blockage{Rect: geom.R(40, 0, 60, 12), Fraction: 0.5})
	if got := len(buildSegments(fp2, 1.2)); got != 10 {
		t.Fatalf("partial blockage split rows: %d segments", got)
	}
}

func TestEmptyDesign(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("empty", lib)
	fp := &floorplan.Floorplan{Die: geom.R(0, 0, 10, 10)}
	res, err := Place(d, fp, 1.2, Options{})
	if err != nil || res.HPWL != 0 {
		t.Fatalf("empty design: %v %v", res, err)
	}
}


func TestLegalizeBestEffortSpills(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("s", lib)
	// More cells than the die can hold.
	var cells []*netlist.Instance
	for i := 0; i < 200; i++ {
		c := d.AddInstance(instName(i), lib.MustCell("DFF_X4"))
		c.Loc = geom.Pt(1, 1)
		cells = append(cells, c)
	}
	fp := &floorplan.Floorplan{Die: geom.R(0, 0, 12, 12)}
	_, _, failed, err := LegalizeBestEffort(cells, fp, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) == 0 {
		t.Fatal("overfull die produced no spill")
	}
	if len(failed) == len(cells) {
		t.Fatal("nothing placed at all")
	}
	// Placed cells are legal among themselves.
	placed := map[int]bool{}
	for _, f := range failed {
		placed[f.ID] = true
	}
	var ok []*netlist.Instance
	for _, c := range cells {
		if !placed[c.ID] {
			ok = append(ok, c)
		}
	}
	for i := 0; i < len(ok); i++ {
		for j := i + 1; j < len(ok); j++ {
			if ok[i].Bounds().Expand(-1e-7).Intersects(ok[j].Bounds()) {
				t.Fatal("placed cells overlap")
			}
		}
	}
}
