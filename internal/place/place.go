// Package place implements standard-cell placement: an iterative
// quadratic-style global placement (net-centroid relaxation with fixed
// macro-pin and port anchors), bin-based density spreading that honours
// full and partial blockages, and row-based Tetris legalization.
//
// Partial blockages only reduce bin capacity — they are not hard
// fences. That is exactly how commercial engines treat them, and it is
// the mechanism behind the S2D/C2D overlap problem the paper reports:
// cells legally placed in a half-blocked bin can land on top of the
// real macro once tiers are separated.
package place

import (
	"math"
	"sort"
	"time"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
)

// parMinCells is the movable-cell count below which the placer stays
// on the serial path — fan-out overhead dominates under this size.
const parMinCells = 512

// Options tunes the placer.
type Options struct {
	// BinPitch is the density-bin size, µm (default 40).
	BinPitch float64
	// SolveIters is the number of net-centroid relaxation sweeps per
	// global iteration (default 24).
	SolveIters int
	// GlobalIters is the number of solve+spread rounds (default 6).
	GlobalIters int
	// MaxFill is the max fraction of a bin's free area filled by cells
	// (default 0.85).
	MaxFill float64
	Seed    uint64
	// Workers sets the placement worker count: 0 (default) uses every
	// CPU (GOMAXPROCS), 1 runs the plain serial reference path. The
	// parallel phases write disjoint elements and replay float
	// accumulation in serial order, so results are bit-identical at
	// any setting.
	Workers int
	// Fast enables banded parallel legalization (part of the flows'
	// fast physical-design mode alongside the sharded router): the
	// placement rows split into a fixed number of bands that run their
	// Tetris sweeps concurrently, with cells that find no space in
	// their band spilling to an ordered serial reconciliation pass.
	// Deterministic at any Workers setting (the band count is fixed,
	// never derived from the worker count) but NOT bit-identical to
	// the default serial sweep, so the flag is part of the
	// result-defining configuration.
	Fast bool

	// Analytic switches global placement to the electrostatics-style
	// analytical engine (analytic.go): WA wirelength gradient plus a
	// Poisson density field descended jointly, with a die-aware weight
	// on nets that cross F2F bumps. Deterministic at any Workers
	// setting but NOT bit-identical to the default quadratic engine,
	// so — like Fast — the flag is part of the result-defining
	// configuration.
	Analytic bool
	// AnalyticIters bounds the analytic engine's descent iterations
	// (default 160). Ignored unless Analytic is set.
	AnalyticIters int

	// Obs, when non-nil, is the stage span the placer hangs its
	// global/legalize phase spans under and whose registry receives
	// the placement metrics. nil disables instrumentation.
	Obs *obs.Span

	// Trace, when non-nil, receives task-level execution slices —
	// solve/spread chunks, legalization row sweeps — on per-worker
	// tracks. nil disables tracing for the cost of one pointer
	// comparison per call site; placements are identical either way.
	Trace *trace.Tracer
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.BinPitch <= 0 {
		o.BinPitch = 40
	}
	if o.SolveIters <= 0 {
		o.SolveIters = 40
	}
	if o.GlobalIters <= 0 {
		o.GlobalIters = 9
	}
	if o.MaxFill <= 0 {
		o.MaxFill = 0.85
	}
	if o.AnalyticIters <= 0 {
		o.AnalyticIters = 160
	}
	return o
}

// Result reports placement quality.
type Result struct {
	HPWL         float64 // µm after legalization
	GlobalHPWL   float64 // µm before legalization
	Displacement float64 // mean legalization displacement, µm
	MaxDisp      float64
	Overflow     float64 // residual density overflow fraction
}

// Place runs global placement and legalization on the design's movable
// standard cells within the floorplan. Fixed instances (macros, pads)
// and ports act as anchors. On return every movable cell has a legal,
// row-aligned, non-overlapping location.
func Place(d *netlist.Design, fp *floorplan.Floorplan, rowHeight float64, opt Options) (*Result, error) {
	t0 := time.Now()
	opt = opt.withDefaults()
	if opt.Analytic {
		return placeAnalytic(d, fp, rowHeight, opt)
	}
	movable := movableCells(d)
	if len(movable) == 0 {
		return &Result{}, nil
	}
	workers := par.Workers(opt.Workers)
	if len(movable) < parMinCells {
		workers = 1
	}
	var busy time.Duration
	die := fp.Die
	rng := geom.NewRNG(opt.Seed + 7)

	// Positions are cell centres during global placement.
	pos := make([]geom.Point, len(d.Instances))
	for _, inst := range d.Instances {
		if inst.Fixed {
			pos[inst.ID] = inst.Center()
		} else {
			pos[inst.ID] = geom.Pt(
				die.Center().X+rng.Norm()*die.W()/20,
				die.Center().Y+rng.Norm()*die.H()/20,
			)
		}
	}

	adj := d.NetsOfInstance()
	bins := newBinGrid(die, opt.BinPitch, fp.PlaceBlk, opt.MaxFill)

	// Spread anchors: after each spreading round, cells are pulled
	// toward their spread location with growing weight.
	anchor := make([]geom.Point, len(d.Instances))
	anchorW := 0.0

	ts := opt.Trace.WorkerSet("place", workers)
	mt := opt.Trace.Track("main")

	gsp := opt.Obs.Child("global", obs.KV("cells", len(movable)))
	for gi := 0; gi < opt.GlobalIters; gi++ {
		busy += solve(d, movable, adj, pos, anchor, anchorW, die, opt.SolveIters, workers, ts)
		busy += spread(movable, pos, bins, rng, workers, ts, mt)
		for _, inst := range movable {
			anchor[inst.ID] = pos[inst.ID]
		}
		// Anchor weight ramps up so late rounds preserve the spread.
		anchorW = 0.2 + 0.4*float64(gi)
	}
	gsp.End()

	res := &Result{}
	// Write back global locations (centres → lower-left).
	for _, inst := range movable {
		inst.Loc = geom.Pt(pos[inst.ID].X-inst.Master.Width/2, pos[inst.ID].Y-inst.Master.Height/2)
		inst.Placed = true
	}
	res.GlobalHPWL = d.TotalHPWL()
	res.Overflow = bins.overflow(movable, pos)

	// Legalization.
	lsp := opt.Obs.Child("legalize")
	disp, maxDisp, err := legalizeN(movable, fp, rowHeight, workers, opt.Fast, ts, mt)
	lsp.End()
	if err != nil {
		return nil, err
	}
	res.Displacement = disp
	res.MaxDisp = maxDisp
	res.HPWL = d.TotalHPWL()
	if reg := opt.Obs.Reg(); reg != nil {
		reg.Counter("place_legalized_cells_total",
			"Movable standard cells legalized into rows.").Add(uint64(len(movable)))
		reg.Gauge("place_legalize_displacement_mean_um",
			"Mean legalization displacement of the latest placement, um.").Set(disp)
		reg.Gauge("place_legalize_displacement_max_um",
			"Max legalization displacement of the latest placement, um.").Set(maxDisp)
		reg.Gauge("place_density_overflow_ratio",
			"Residual density overflow fraction after spreading.").Set(res.Overflow)
		reg.Gauge("place_hpwl_um",
			"Half-perimeter wirelength after legalization, um.").Set(res.HPWL)
		reg.Gauge("place_workers",
			"Worker goroutines used by the parallel placement engine.").Set(float64(workers))
		if wall := time.Since(t0).Seconds(); wall > 0 && workers > 1 {
			reg.Gauge("place_worker_utilization_ratio",
				"Summed worker busy time over workers × stage wall time, latest run.").
				Set(busy.Seconds() / (wall * float64(workers)))
		}
	}
	return res, nil
}

// movableCells returns non-fixed standard cells.
func movableCells(d *netlist.Design) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range d.Instances {
		if !inst.Fixed && !inst.IsMacro() {
			out = append(out, inst)
		}
	}
	return out
}

// solve relaxes positions toward net centroids (a Jacobi sweep of the
// star-model quadratic system) with fixed pins as anchors.
//
// Both phases parallelize bit-identically: phase 1 writes only its
// net's centroid slot while pos is frozen, phase 2 writes only its
// cell's position while the centroids are frozen, and every float sum
// stays a per-element sequential loop. The barrier between phases is
// the Jacobi iteration boundary itself.
func solve(d *netlist.Design, movable []*netlist.Instance, adj [][]*netlist.Net,
	pos, anchor []geom.Point, anchorW float64, die geom.Rect, iters, workers int,
	ts *trace.Set) time.Duration {

	// Net centroid cache.
	cx := make([]float64, len(d.Nets))
	cy := make([]float64, len(d.Nets))
	deg := make([]float64, len(d.Nets))

	var busy time.Duration
	for it := 0; it < iters; it++ {
		// Phase 1: net centroids from current positions and fixed pins.
		busy += par.ChunksTr(ts, "place/centroid", workers, len(d.Nets), func(w, lo, hi int) {
			for _, n := range d.Nets[lo:hi] {
				if n.Clock {
					continue // clock is routed by CTS, not a placement force
				}
				var sx, sy, k float64
				for _, p := range n.Pins() {
					if p.Port != nil {
						sx += p.Port.Loc.X
						sy += p.Port.Loc.Y
					} else if p.Inst.Fixed {
						l := p.Loc()
						sx += l.X
						sy += l.Y
					} else {
						c := pos[p.Inst.ID]
						sx += c.X
						sy += c.Y
					}
					k++
				}
				if k > 0 {
					cx[n.ID] = sx / k
					cy[n.ID] = sy / k
					deg[n.ID] = k
				}
			}
		})
		// Phase 2: move each movable cell to the weighted average of
		// its nets' centroids (small nets pull harder).
		busy += par.ChunksTr(ts, "place/move", workers, len(movable), func(w, lo, hi int) {
			for _, inst := range movable[lo:hi] {
				var sx, sy, wt float64
				for _, n := range adj[inst.ID] {
					if n.Clock || deg[n.ID] < 2 {
						continue
					}
					nw := n.Weight / (deg[n.ID] - 1)
					sx += cx[n.ID] * nw
					sy += cy[n.ID] * nw
					wt += nw
				}
				if anchorW > 0 {
					sx += anchor[inst.ID].X * anchorW
					sy += anchor[inst.ID].Y * anchorW
					wt += anchorW
				}
				if wt > 0 {
					p := geom.Pt(sx/wt, sy/wt)
					pos[inst.ID] = die.Expand(-1).ClampPoint(p)
				}
			}
		})
	}
	return busy
}

// binGrid tracks per-bin capacity (µm² of placeable area).
type binGrid struct {
	grid geom.Grid
	cap  []float64
}

func newBinGrid(die geom.Rect, pitch float64, blk []floorplan.Blockage, maxFill float64) *binGrid {
	g := geom.NewGrid(die, pitch)
	b := &binGrid{grid: g, cap: make([]float64, g.Bins())}
	for i := range b.cap {
		b.cap[i] = g.DX * g.DY
	}
	// Subtract blockage area (partial blockages scale by fraction).
	for _, bl := range blk {
		x0, y0, x1, y1, ok := g.CoverRange(bl.Rect)
		if !ok {
			continue
		}
		for iy := y0; iy <= y1; iy++ {
			for ix := x0; ix <= x1; ix++ {
				i := g.Index(ix, iy)
				ov := bl.Rect.Intersect(g.BinRect(ix, iy)).Area()
				b.cap[i] -= ov * bl.Fraction
				if b.cap[i] < 0 {
					b.cap[i] = 0
				}
			}
		}
	}
	for i := range b.cap {
		b.cap[i] *= maxFill
	}
	return b
}

// spread moves cells out of overfilled bins into the nearest bins with
// headroom, ring-searching outward.
//
// Accumulation runs as a per-partition counting sort with an ordered
// merge: each worker chunk counts its cells per bin, a cheap serial
// prefix pass turns the counts into disjoint write offsets, and the
// scatter places every cell at its stable rank — the exact position
// the serial movable-order loop would have given it. Per-bin area sums
// then reduce independently over the member lists, adding in that same
// movable order, so the result is bit-identical to the historical
// serial accumulation at any worker count. (The former implementation
// replayed the whole accumulation serially, which trace-report ranked
// as the placer's dominant serial segment on large designs.) The
// eviction sweep itself stays serial — it consumes the RNG, which must
// never run concurrently.
func spread(movable []*netlist.Instance, pos []geom.Point, b *binGrid, rng *geom.RNG,
	workers int, ts *trace.Set, mt *trace.Track) time.Duration {

	g := b.grid
	nb := g.Bins()
	binOf := make([]int32, len(movable))
	busy := par.ChunksTr(ts, "place/bin-index", workers, len(movable), func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			ix, iy := g.Locate(pos[movable[k].ID])
			binOf[k] = int32(g.Index(ix, iy))
		}
	})
	// Per-chunk bin counts. Chunk boundaries are a pure function of
	// (workers, n), so the scatter below sees the same ranges.
	cnt := make([][]int32, workers)
	busy += par.ChunksTr(ts, "place/spread-count", workers, len(movable), func(w, lo, hi int) {
		c := make([]int32, nb)
		for k := lo; k < hi; k++ {
			c[binOf[k]]++
		}
		cnt[w] = c
	})
	// Serial prefix pass: bin base offsets in the flat member array,
	// then per-chunk write cursors (chunk w's cells of bin i start
	// after every earlier chunk's cells of that bin).
	base := make([]int32, nb+1)
	for _, c := range cnt {
		if c == nil {
			continue
		}
		for i, n := range c {
			base[i+1] += n
		}
	}
	for i := 0; i < nb; i++ {
		base[i+1] += base[i]
	}
	off := make([][]int32, workers)
	cursor := append([]int32(nil), base[:nb]...)
	for w, c := range cnt {
		if c == nil {
			continue
		}
		o := make([]int32, nb)
		copy(o, cursor)
		for i, n := range c {
			cursor[i] += n
		}
		off[w] = o
	}
	// Scatter: every cell lands at its stable rank — flat holds each
	// bin's members contiguously, in movable order.
	flat := make([]*netlist.Instance, len(movable))
	busy += par.ChunksTr(ts, "place/spread-scatter", workers, len(movable), func(w, lo, hi int) {
		o := off[w]
		for k := lo; k < hi; k++ {
			i := binOf[k]
			flat[o[i]] = movable[k]
			o[i]++
		}
	})
	// Per-bin area sums reduce independently, each adding in movable
	// order — the same float sequence per slot as the serial loop.
	usage := make([]float64, nb)
	members := make([][]*netlist.Instance, nb)
	busy += par.ChunksTr(ts, "place/spread-usage", workers, nb, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			ms := flat[base[i]:base[i+1]]
			var u float64
			for _, inst := range ms {
				u += inst.Master.Area()
			}
			usage[i] = u
			members[i] = ms
		}
	})
	ssp := mt.Begin("place", "place/spread-serial")
	defer func() { ssp.End(trace.N("cells", int64(len(movable)))) }()
	// Process most-overfilled bins first.
	order := make([]int, 0, g.Bins())
	for i := range usage {
		if usage[i] > b.cap[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, c int) bool {
		return usage[order[a]]-b.cap[order[a]] > usage[order[c]]-b.cap[order[c]]
	})
	for _, i := range order {
		ix, iy := g.Coords(i)
		// Evict smallest-degree-of-belonging cells: those farthest
		// from the bin centre go first.
		ms := members[i]
		c := g.BinCenter(ix, iy)
		sort.Slice(ms, func(a, b2 int) bool {
			return pos[ms[a].ID].Dist(c) > pos[ms[b2].ID].Dist(c)
		})
		for _, inst := range ms {
			if usage[i] <= b.cap[i] {
				break
			}
			// Ring search for a bin with headroom.
			tix, tiy, ok := b.nearestFree(ix, iy, usage, inst.Master.Area())
			if !ok {
				continue
			}
			j := g.Index(tix, tiy)
			usage[i] -= inst.Master.Area()
			usage[j] += inst.Master.Area()
			tc := g.BinCenter(tix, tiy)
			pos[inst.ID] = geom.Pt(
				tc.X+(rng.Float64()-0.5)*g.DX*0.8,
				tc.Y+(rng.Float64()-0.5)*g.DY*0.8,
			)
		}
	}
	return busy
}

// nearestFree ring-searches for the closest bin that can absorb area.
func (b *binGrid) nearestFree(ix, iy int, usage []float64, area float64) (int, int, bool) {
	g := b.grid
	maxR := g.NX + g.NY
	for r := 1; r <= maxR; r++ {
		bestD := math.MaxFloat64
		bi, bj := -1, -1
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if max(geom.AbsInt(dx), geom.AbsInt(dy)) != r {
					continue
				}
				x, y := ix+dx, iy+dy
				if x < 0 || x >= g.NX || y < 0 || y >= g.NY {
					continue
				}
				i := g.Index(x, y)
				if usage[i]+area <= b.cap[i] {
					d := float64(dx*dx + dy*dy)
					if d < bestD {
						bestD, bi, bj = d, x, y
					}
				}
			}
		}
		if bi >= 0 {
			return bi, bj, true
		}
	}
	return 0, 0, false
}

// overflow returns the fraction of total cell area sitting above bin
// capacity.
func (b *binGrid) overflow(movable []*netlist.Instance, pos []geom.Point) float64 {
	g := b.grid
	usage := make([]float64, g.Bins())
	total := 0.0
	for _, inst := range movable {
		ix, iy := g.Locate(pos[inst.ID])
		usage[g.Index(ix, iy)] += inst.Master.Area()
		total += inst.Master.Area()
	}
	over := 0.0
	for i := range usage {
		if usage[i] > b.cap[i] {
			over += usage[i] - b.cap[i]
		}
	}
	if total == 0 {
		return 0
	}
	return over / total
}
