package place

import (
	"fmt"
	"math"
	"sort"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
)

// segment is a free span of one placement row. Free space is tracked
// as disjoint intervals so late (wide) cells can still use gaps left
// between earlier placements.
type segment struct {
	y      float64
	x0, x1 float64
	row    int
	free   []iv // sorted, disjoint free intervals
}

type iv struct{ a, b float64 }

// bestFit returns the placement x closest to target within any free
// interval that fits w, and whether one exists.
func (s *segment) bestFit(target, w float64) (float64, bool) {
	bestX, bestCost := 0.0, -1.0
	for _, f := range s.free {
		if f.b-f.a < w {
			continue
		}
		x := target
		if x < f.a {
			x = f.a
		}
		if x > f.b-w {
			x = f.b - w
		}
		cost := math.Abs(x - target)
		if bestCost < 0 || cost < bestCost {
			bestCost, bestX = cost, x
		}
	}
	return bestX, bestCost >= 0
}

// occupy removes [x, x+w) from the free intervals.
func (s *segment) occupy(x, w float64) {
	for i, f := range s.free {
		if x >= f.a-1e-9 && x+w <= f.b+1e-9 {
			var repl []iv
			if x-f.a > 1e-9 {
				repl = append(repl, iv{f.a, x})
			}
			if f.b-(x+w) > 1e-9 {
				repl = append(repl, iv{x + w, f.b})
			}
			s.free = append(s.free[:i], append(repl, s.free[i+1:]...)...)
			return
		}
	}
}

// buildSegments slices the die into rows and subtracts hard (fraction
// >= 1) blockages. Partial blockages deliberately do not fence rows —
// see the package comment.
func buildSegments(fp *floorplan.Floorplan, rowHeight float64) []*segment {
	return buildSegmentsN(fp, rowHeight, 1, nil)
}

// buildSegmentsN is the row-parallel form: rows are independent, so
// each builds its own segment list and the results concatenate in row
// order — identical to the serial sweep at any worker count.
func buildSegmentsN(fp *floorplan.Floorplan, rowHeight float64, workers int, ts *trace.Set) []*segment {
	die := fp.Die
	var hard []geom.Rect
	for _, b := range fp.PlaceBlk {
		if b.Fraction >= 1 {
			hard = append(hard, b.Rect)
		}
	}
	nRows := int(die.H() / rowHeight)
	rows := make([][]*segment, nRows)
	par.ItemsTr(ts, "place/row-segments", workers, nRows, func(w, r int) {
		rows[r] = buildRowSegments(die, hard, rowHeight, r)
	})
	var segs []*segment
	for _, rs := range rows {
		segs = append(segs, rs...)
	}
	return segs
}

// buildRowSegments builds the free segments of one placement row.
func buildRowSegments(die geom.Rect, hard []geom.Rect, rowHeight float64, r int) []*segment {
	y := die.Ly + float64(r)*rowHeight
	rowRect := geom.R(die.Lx, y, die.Ux, y+rowHeight)
	// Collect blocked x-intervals on this row.
	var blocked []iv
	for _, h := range hard {
		if h.Intersects(rowRect) {
			blocked = append(blocked, iv{h.Lx, h.Ux})
		}
	}
	sort.Slice(blocked, func(i, j int) bool { return blocked[i].a < blocked[j].a })
	var segs []*segment
	x := die.Lx
	emit := func(a, b float64) {
		if b-a > 1 { // ignore slivers
			segs = append(segs, &segment{y: y, x0: a, x1: b, row: r,
				free: []iv{{a, b}}})
		}
	}
	for _, bl := range blocked {
		if bl.a > x {
			emit(x, bl.a)
		}
		if bl.b > x {
			x = bl.b
		}
	}
	if x < die.Ux {
		emit(x, die.Ux)
	}
	return segs
}

// legalize snaps cells into rows without overlap using a Tetris-style
// sweep: cells sorted by x are committed left-to-right into the
// segment minimizing displacement. Returns mean and max displacement.
func legalize(movable []*netlist.Instance, fp *floorplan.Floorplan, rowHeight float64) (mean, maxd float64, err error) {
	return legalizeN(movable, fp, rowHeight, 1, false, nil, nil)
}

// legalizeN is legalize with a worker count for the row-parallel
// segment construction and, when fast is set, the banded parallel
// commit sweep (the default sweep stays serial — each commit depends
// on every earlier one).
func legalizeN(movable []*netlist.Instance, fp *floorplan.Floorplan, rowHeight float64, workers int,
	fast bool, ts *trace.Set, mt *trace.Track) (mean, maxd float64, err error) {
	mean, maxd, failed, err := legalizeBestEffort(movable, fp, rowHeight, workers, fast, ts, mt)
	if err != nil {
		return 0, 0, err
	}
	if len(failed) > 0 {
		return 0, 0, fmt.Errorf("place: legalization failed for %s (w=%.2f µm): no row space",
			failed[0].Name, failed[0].Master.Width)
	}
	return mean, maxd, nil
}

// LegalizeBestEffort legalizes what fits and returns the cells that
// found no space instead of failing. The S2D/C2D flows use this: cells
// that cannot fit a tier spill back to the other die.
func LegalizeBestEffort(movable []*netlist.Instance, fp *floorplan.Floorplan, rowHeight float64) (mean, maxd float64, failed []*netlist.Instance, err error) {
	return legalizeBestEffort(movable, fp, rowHeight, 1, false, nil, nil)
}

// legalizeBands is the fixed band count of the fast banded sweep. A
// configuration constant like the router's region count: changing it
// changes results, changing the worker count does not.
const legalizeBands = 8

// tetris is the shared state of a legalization sweep: the per-row
// segment index plus the geometry needed to score candidates. Bands of
// the fast sweep touch disjoint row ranges, so they share one tetris
// concurrently (map reads only; segment mutations stay inside a band's
// rows).
type tetris struct {
	byRow     map[int][]*segment
	die       geom.Rect
	rowHeight float64
	maxRow    int
}

// place commits inst into the best-fit segment searching rows
// [lo, hi] outward from its target row, returning the displacement.
// ok is false when no segment in range fits the cell.
func (t *tetris) place(inst *netlist.Instance, lo, hi int) (disp float64, ok bool) {
	w := inst.Master.Width
	target := inst.Loc
	targetRow := geom.ClampInt(int((target.Y-t.die.Ly)/t.rowHeight), lo, hi)

	bestCost := -1.0
	var bestSeg *segment
	var bestX float64
	// Search rows outward from the target row.
	for dr := 0; dr <= hi-lo; dr++ {
		for _, sgn := range []int{1, -1} {
			if dr == 0 && sgn == -1 {
				continue
			}
			r := targetRow + sgn*dr
			if r < lo || r > hi {
				continue
			}
			dy := float64(dr) * t.rowHeight
			if bestCost >= 0 && dy > bestCost {
				continue // cannot beat best even with zero dx
			}
			for _, s := range t.byRow[r] {
				x, fits := s.bestFit(target.X, w)
				if !fits {
					continue
				}
				cost := dy + math.Abs(x-target.X)
				if bestCost < 0 || cost < bestCost {
					bestCost = cost
					bestSeg = s
					bestX = x
				}
			}
		}
		// Early exit: once a best is found and the next row band
		// already costs more, stop.
		if bestCost >= 0 && float64(dr+1)*t.rowHeight > bestCost {
			break
		}
	}
	if bestSeg == nil {
		return 0, false
	}
	inst.Loc = geom.Pt(bestX, bestSeg.y)
	// Alternate row orientation like real row-based designs.
	if bestSeg.row%2 == 1 {
		inst.Orient = geom.OrientFS
	} else {
		inst.Orient = geom.OrientN
	}
	bestSeg.occupy(bestX, w)
	return math.Abs(bestX-target.X) + math.Abs(bestSeg.y-target.Y), true
}

func legalizeBestEffort(movable []*netlist.Instance, fp *floorplan.Floorplan, rowHeight float64, workers int,
	fast bool, ts *trace.Set, mt *trace.Track) (mean, maxd float64, failed []*netlist.Instance, err error) {
	segs := buildSegmentsN(fp, rowHeight, workers, ts)
	if len(segs) == 0 {
		return 0, 0, nil, fmt.Errorf("place: no placement rows available")
	}
	// Index segments by row for fast lookup.
	byRow := map[int][]*segment{}
	maxRow := 0
	for _, s := range segs {
		byRow[s.row] = append(byRow[s.row], s)
		if s.row > maxRow {
			maxRow = s.row
		}
	}

	order := append([]*netlist.Instance(nil), movable...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Loc.X != order[j].Loc.X {
			return order[i].Loc.X < order[j].Loc.X
		}
		return order[i].Name < order[j].Name
	})

	t := &tetris{byRow: byRow, die: fp.Die, rowHeight: rowHeight, maxRow: maxRow}
	if fast && maxRow+1 >= 2 {
		return legalizeBanded(order, t, workers, ts, mt)
	}

	// The default Tetris commit sweep is inherently serial; record it
	// so the analyzer can rank it among the serial segments.
	ssp := mt.Begin("place", "place/legalize-sweep")
	defer func() { ssp.End(trace.N("cells", int64(len(order)))) }()
	var sum float64
	for _, inst := range order {
		d, ok := t.place(inst, 0, maxRow)
		if !ok {
			failed = append(failed, inst)
			continue
		}
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	if n := len(order) - len(failed); n > 0 {
		mean = sum / float64(n)
	}
	return mean, maxd, failed, nil
}

// legalizeBanded is the fast parallel commit sweep: the rows split
// into legalizeBands contiguous bands, every cell is assigned to the
// band holding its target row, and the bands run their ordered Tetris
// sweeps concurrently — bands own disjoint row ranges, so their
// segment mutations never touch. Cells that find no space inside
// their band spill to a serial full-range reconciliation pass, in
// band-then-sweep order. Deterministic at any worker count (the band
// count and assignment are pure functions of the placement); not
// bit-identical to the serial sweep, which may place a cell across a
// band boundary when that row is marginally closer.
func legalizeBanded(order []*netlist.Instance, t *tetris, workers int,
	ts *trace.Set, mt *trace.Track) (mean, maxd float64, failed []*netlist.Instance, err error) {

	bands := legalizeBands
	if t.maxRow+1 < bands {
		bands = t.maxRow + 1
	}
	rowsPer := (t.maxRow + 1 + bands - 1) / bands

	cells := make([][]*netlist.Instance, bands)
	for _, inst := range order {
		r := geom.ClampInt(int((inst.Loc.Y-t.die.Ly)/t.rowHeight), 0, t.maxRow)
		b := min(r/rowsPer, bands-1)
		cells[b] = append(cells[b], inst)
	}

	sums := make([]float64, bands)
	maxds := make([]float64, bands)
	placed := make([]int, bands)
	spills := make([][]*netlist.Instance, bands)
	par.ItemsTr(ts, "place/legalize-band", workers, bands, func(w, b int) {
		lo := b * rowsPer
		hi := min(lo+rowsPer-1, t.maxRow)
		for _, inst := range cells[b] {
			d, ok := t.place(inst, lo, hi)
			if !ok {
				spills[b] = append(spills[b], inst)
				continue
			}
			sums[b] += d
			placed[b]++
			if d > maxds[b] {
				maxds[b] = d
			}
		}
	})
	var sum float64
	n := 0
	for b := 0; b < bands; b++ {
		sum += sums[b]
		n += placed[b]
		if maxds[b] > maxd {
			maxd = maxds[b]
		}
	}

	// Ordered serial reconciliation: band-spilled cells search the full
	// row range against the free space the bands left behind.
	ssp := mt.Begin("place", "place/legalize-spill")
	spilled := 0
	for b := 0; b < bands; b++ {
		for _, inst := range spills[b] {
			spilled++
			d, ok := t.place(inst, 0, t.maxRow)
			if !ok {
				failed = append(failed, inst)
				continue
			}
			sum += d
			n++
			if d > maxd {
				maxd = d
			}
		}
	}
	ssp.End(trace.N("cells", int64(spilled)))
	if n > 0 {
		mean = sum / float64(n)
	}
	return mean, maxd, failed, nil
}

// Legalize snaps the given cells into non-overlapping row positions of
// the floorplan, starting from their current locations. Exposed for
// the S2D/C2D flows, which must re-legalize per die after tier
// partitioning reveals the real macro extents.
func Legalize(cells []*netlist.Instance, fp *floorplan.Floorplan, rowHeight float64) (mean, maxd float64, err error) {
	return legalize(cells, fp, rowHeight)
}

// CheckLegal verifies that no two movable cells overlap and that all
// sit inside the die and off hard blockages. Used by tests and by the
// S2D/C2D flows to detect post-partitioning overlaps.
func CheckLegal(d *netlist.Design, fp *floorplan.Floorplan) []string {
	var viol []string
	type placedCell struct {
		r    geom.Rect
		name string
	}
	var cells []placedCell
	var hard []geom.Rect
	for _, b := range fp.PlaceBlk {
		if b.Fraction >= 1 {
			hard = append(hard, b.Rect)
		}
	}
	for _, inst := range d.Instances {
		if inst.IsMacro() || inst.Fixed {
			continue
		}
		r := inst.Bounds()
		if !fp.Die.ContainsRect(r.Expand(-1e-7)) {
			viol = append(viol, fmt.Sprintf("%s outside die", inst.Name))
		}
		for _, h := range hard {
			if h.Expand(-1e-7).Intersects(r) {
				viol = append(viol, fmt.Sprintf("%s overlaps blockage", inst.Name))
				break
			}
		}
		cells = append(cells, placedCell{r, inst.Name})
	}
	// Sweep-line overlap check. The sorted cells are read-only, so the
	// outer sweep fans out over contiguous chunks whose per-worker
	// violation lists concatenate in chunk order — the same order the
	// serial sweep reports.
	sort.Slice(cells, func(i, j int) bool { return cells[i].r.Lx < cells[j].r.Lx })
	workers := par.Workers(0)
	if len(cells) < parMinCells {
		workers = 1
	}
	overlaps := make([][]string, workers)
	par.Chunks(workers, len(cells), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < len(cells) && cells[j].r.Lx < cells[i].r.Ux-1e-9; j++ {
				if cells[i].r.Expand(-1e-7).Intersects(cells[j].r) {
					overlaps[w] = append(overlaps[w],
						fmt.Sprintf("%s overlaps %s", cells[i].name, cells[j].name))
				}
			}
		}
	})
	for _, o := range overlaps {
		viol = append(viol, o...)
	}
	return viol
}
