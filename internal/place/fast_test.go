package place

import (
	"testing"

	"macro3d/internal/floorplan"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
)

// placedTileFixture builds the small piton tile floorplan the fast-mode
// tests place.
func placedTileFixture(t *testing.T) (*netlist.Design, *floorplan.Floorplan) {
	t.Helper()
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		t.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)
	return d, fp
}

// TestPlaceWorkerEquivalence pins the default engine's bit-identity
// contract at the package level, covering the counting-sort spread
// accumulation: serial (Workers 1) and forced-parallel (Workers 4)
// placements of the same tile land every instance identically.
func TestPlaceWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full tile placement in -short mode")
	}
	d1, fp1 := placedTileFixture(t)
	d2, fp2 := placedTileFixture(t)
	r1, err := Place(d1, fp1, 1.2, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(d2, fp2, 1.2, Options{Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.HPWL != r2.HPWL || r1.GlobalHPWL != r2.GlobalHPWL {
		t.Fatalf("HPWL diverged across workers: %.6f/%.6f (global %.6f/%.6f)",
			r1.HPWL, r2.HPWL, r1.GlobalHPWL, r2.GlobalHPWL)
	}
	for i := range d1.Instances {
		if d1.Instances[i].Loc != d2.Instances[i].Loc {
			t.Fatalf("instance %s placed differently: %v vs %v",
				d1.Instances[i].Name, d1.Instances[i].Loc, d2.Instances[i].Loc)
		}
	}
}

// TestPlaceFastDeterminism pins the fast engine's contract: banded
// legalization is NOT bit-identical to the default sweep, but it IS
// deterministic across worker counts — the band count is fixed, never
// derived from -j.
func TestPlaceFastDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full tile placement in -short mode")
	}
	d1, fp1 := placedTileFixture(t)
	d2, fp2 := placedTileFixture(t)
	if _, err := Place(d1, fp1, 1.2, Options{Seed: 5, Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d2, fp2, 1.2, Options{Seed: 5, Workers: 4, Fast: true}); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Instances {
		if d1.Instances[i].Loc != d2.Instances[i].Loc {
			t.Fatalf("fast instance %s placed differently across workers: %v vs %v",
				d1.Instances[i].Name, d1.Instances[i].Loc, d2.Instances[i].Loc)
		}
	}
}

// TestPlaceFastQuality bounds the fast engine's PPA drift: the banded
// placement must stay legal and keep HPWL within 10% of the default
// serial sweep on the same tile.
func TestPlaceFastQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("full tile placement in -short mode")
	}
	dRef, fpRef := placedTileFixture(t)
	ref, err := Place(dRef, fpRef, 1.2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dFast, fpFast := placedTileFixture(t)
	fast, err := Place(dFast, fpFast, 1.2, Options{Seed: 5, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if viol := CheckLegal(dFast, fpFast); len(viol) > 0 {
		t.Fatalf("fast placement illegal: %d violations, e.g. %v", len(viol), viol[0])
	}
	if fast.HPWL > ref.HPWL*1.10 {
		t.Fatalf("fast HPWL %.3f m drifts past 10%% of default %.3f m",
			fast.HPWL/1e6, ref.HPWL/1e6)
	}
	t.Logf("fast HPWL %.3f m vs default %.3f m (%.2f%%), disp %.1f vs %.1f µm",
		fast.HPWL/1e6, ref.HPWL/1e6, 100*(fast.HPWL/ref.HPWL-1),
		fast.Displacement, ref.Displacement)
}

// TestPlaceFastChain is the cheap smoke: fast mode on a small design
// (which runs the banded path at workers=1) still produces a legal,
// fully placed result.
func TestPlaceFastChain(t *testing.T) {
	d, fp := chainDesign(50)
	res, err := Place(d, fp, 1.2, Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if viol := CheckLegal(d, fp); len(viol) > 0 {
		t.Fatalf("illegal fast placement: %v", viol[0])
	}
	if res.HPWL <= 0 || res.HPWL > 400 {
		t.Fatalf("fast chain HPWL = %.1f µm", res.HPWL)
	}
}
