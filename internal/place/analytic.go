// Electrostatics-style analytical global placement (ePlace family,
// after the die-to-die analytical placement formulation): a smooth
// weighted-average (WA) wirelength model descended jointly with a
// bin-grid density penalty whose potential comes from a Poisson solve
// over the existing binGrid. Cells are charges; overfilled bins build
// up potential and the field pushes cells toward free area, replacing
// the default placer's discrete bin-eviction spreading with a smooth,
// embarrassingly parallel force.
//
// The engine is gated behind Options.Analytic and is NOT bit-identical
// to the default quadratic placer — it is a different algorithm with
// different (better-or-equal HPWL) results, so the flag is part of the
// result-defining configuration, exactly like the fast-route engine
// split. Within the analytic engine, results are bit-identical at any
// Workers setting: every parallel phase writes disjoint elements while
// reading frozen arrays, and every floating-point reduction (net HPWL
// sums, density means, overflow) replays in a fixed serial order. Max
// reductions combine per-chunk maxima, which is exact for floats.
package place

import (
	"math"
	"strings"
	"time"

	"macro3d/internal/floorplan"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/obs/trace"
	"macro3d/internal/par"
	"macro3d/internal/tech"
)

// trSet abbreviates the tracer worker-set threaded through every
// parallel phase.
type trSet = *trace.Set

// Analytic-engine tuning constants. These are part of the deterministic
// result definition — changing them changes placements.
const (
	// analyticSeedIters quadratic net-centroid sweeps seed the descent
	// (the "coarse level" of the multilevel scheme: a cheap global
	// wirelength minimum the electrostatic refinement spreads out).
	analyticSeedIters = 12
	// analyticBumpWeight multiplies the WA weight of nets that span
	// both logic-die and `_MD` macro-die layers: such nets cross an
	// F2F bump, so a unit of their wirelength is costlier (bump RC +
	// finite bump-pitch congestion) than a same-die unit.
	analyticBumpWeight = 1.5
	// analyticSnapOverflow is the density-overflow ceiling below which
	// an iterate may be recorded as the best-HPWL snapshot.
	analyticSnapOverflow = 0.07
	// analyticStopOverflow ends the descent early once reached.
	analyticStopOverflow = 0.025
	// Poisson relaxation sweep counts per outer iteration (coarse grid
	// first, then the fine grid it seeds — a two-level multigrid
	// cascade over the binGrid). Even so ping-pong buffers land back
	// in place.
	analyticCoarseRelax = 16
	analyticFineRelax   = 8
)

// placeAnalytic runs the analytic global placer and hands the result to
// the shared legalizer. Mirrors Place()'s contract.
func placeAnalytic(d *netlist.Design, fp *floorplan.Floorplan, rowHeight float64, opt Options) (*Result, error) {
	t0 := time.Now()
	movable := movableCells(d)
	if len(movable) == 0 {
		return &Result{}, nil
	}
	workers := par.Workers(opt.Workers)
	if len(movable) < parMinCells {
		workers = 1
	}
	var busy time.Duration
	die := fp.Die
	// Separate stream from the default path: the engines share no RNG
	// state, so neither can perturb the other.
	rng := geom.NewRNG(opt.Seed + 11)

	pos := make([]geom.Point, len(d.Instances))
	for _, inst := range d.Instances {
		if inst.Fixed {
			pos[inst.ID] = inst.Center()
		} else {
			pos[inst.ID] = geom.Pt(
				die.Center().X+rng.Norm()*die.W()/20,
				die.Center().Y+rng.Norm()*die.H()/20,
			)
		}
	}

	adj := d.NetsOfInstance()
	bins := newBinGrid(die, opt.BinPitch, fp.PlaceBlk, opt.MaxFill)

	ts := opt.Trace.WorkerSet("place", workers)
	mt := opt.Trace.Track("main")

	gsp := opt.Obs.Child("global-analytic", obs.KV("cells", len(movable)))

	// Seed: a few quadratic net-centroid sweeps give the wirelength
	// minimum the electrostatic spreading starts from.
	anchor := make([]geom.Point, len(d.Instances))
	busy += solve(d, movable, adj, pos, anchor, 0, die, analyticSeedIters, workers, ts)

	st := newAnalyticState(d, movable, bins, workers)
	busy += st.netWeights(d, workers, ts)

	iters := opt.AnalyticIters
	// Continuation schedules: the WA smoothing γ tightens toward the
	// true max/min as the density weight λ ramps.
	gamma0, gamma1 := 4.0*opt.BinPitch, 0.5*opt.BinPitch
	lambda := 0.0
	best := ([]geom.Point)(nil)
	bestHP := math.MaxFloat64

	for it := 0; it < iters; it++ {
		frac := float64(it) / float64(maxInt(iters-1, 1))
		gamma := gamma0 * math.Pow(gamma1/gamma0, frac)
		step := (0.5 - 0.35*frac) * opt.BinPitch

		busy += st.wlGradient(d, movable, adj, pos, gamma, workers, ts)
		busy += st.density(movable, pos, workers, ts)
		busy += st.densGradient(movable, pos, workers, ts)

		// λ is calibrated once from the first iterate's gradient
		// magnitudes, then ramps geometrically: density starts as a
		// nudge and ends dominating, the ePlace weight schedule.
		wlMax, denMax := st.gradMaxima(workers)
		if it == 0 {
			if denMax > 0 {
				lambda = 0.08 * wlMax / denMax
			}
		} else {
			lambda *= 1.045
		}

		busy += st.descend(movable, pos, die, lambda, step, workers, ts)

		// Snapshot accounting is serial and in fixed order: exact
		// per-net HPWL summed in net order, overflow in movable order.
		hp := st.exactHPWL(d, pos, workers, ts)
		ovf := bins.overflow(movable, pos)
		if ovf <= analyticSnapOverflow && hp < bestHP {
			bestHP = hp
			if best == nil {
				best = make([]geom.Point, len(pos))
			}
			copy(best, pos)
		}
		if ovf <= analyticStopOverflow && it >= iters/4 {
			break
		}
	}
	if best != nil {
		copy(pos, best)
	}
	// Residual cleanup: one deterministic eviction round clears any
	// overflow the smooth field left behind, then the shared legalizer
	// takes over.
	busy += spread(movable, pos, bins, rng, workers, ts, mt)
	gsp.End()

	res := &Result{}
	for _, inst := range movable {
		inst.Loc = geom.Pt(pos[inst.ID].X-inst.Master.Width/2, pos[inst.ID].Y-inst.Master.Height/2)
		inst.Placed = true
	}
	res.GlobalHPWL = d.TotalHPWL()
	res.Overflow = bins.overflow(movable, pos)

	lsp := opt.Obs.Child("legalize")
	disp, maxDisp, err := legalizeN(movable, fp, rowHeight, workers, opt.Fast, ts, mt)
	lsp.End()
	if err != nil {
		return nil, err
	}
	res.Displacement = disp
	res.MaxDisp = maxDisp
	res.HPWL = d.TotalHPWL()
	if reg := opt.Obs.Reg(); reg != nil {
		reg.Counter("place_legalized_cells_total",
			"Movable standard cells legalized into rows.").Add(uint64(len(movable)))
		reg.Gauge("place_legalize_displacement_mean_um",
			"Mean legalization displacement of the latest placement, um.").Set(disp)
		reg.Gauge("place_legalize_displacement_max_um",
			"Max legalization displacement of the latest placement, um.").Set(maxDisp)
		reg.Gauge("place_density_overflow_ratio",
			"Residual density overflow fraction after spreading.").Set(res.Overflow)
		reg.Gauge("place_hpwl_um",
			"Half-perimeter wirelength after legalization, um.").Set(res.HPWL)
		reg.Gauge("place_analytic_best_hpwl_um",
			"Best pre-legalization HPWL snapshot of the analytic engine, um.").Set(bestHP)
		reg.Gauge("place_workers",
			"Worker goroutines used by the parallel placement engine.").Set(float64(workers))
		if wall := time.Since(t0).Seconds(); wall > 0 && workers > 1 {
			reg.Gauge("place_worker_utilization_ratio",
				"Summed worker busy time over workers × stage wall time, latest run.").
				Set(busy.Seconds() / (wall * float64(workers)))
		}
	}
	return res, nil
}

// analyticState holds the per-iteration scratch arrays so the descent
// loop allocates nothing.
type analyticState struct {
	// Per-net WA aggregates, one slot per net (disjoint writes).
	agg []netAgg
	// Die-aware net weights: Net.Weight × bump multiplier.
	wnet []float64
	// Per-cell gradient accumulators (disjoint writes).
	wgx, wgy []float64 // wirelength
	dgx, dgy []float64 // density
	// Per-net exact-HPWL scratch.
	hp []float64

	bins *binGrid
	pois *poissonGrid
	// binOf / counting-sort scratch for the density accumulation.
	binOf []int32
	cnt   [][]int32
	off   [][]int32
	base  []int32
	area  []float64 // per-movable cell area, cached
}

// netAgg is one net's frozen WA aggregates for one iteration: the
// shifted exponential sums the per-cell gradient pass reads.
type netAgg struct {
	xmax, xmin, ymax, ymin float64
	ax, axx, bx, bxx       float64 // x: Σe, Σx·e (max side); Σe, Σx·e (min side)
	ay, ayy, by, byy       float64
	deg                    float64
}

func newAnalyticState(d *netlist.Design, movable []*netlist.Instance, bins *binGrid, workers int) *analyticState {
	st := &analyticState{
		agg:  make([]netAgg, len(d.Nets)),
		wnet: make([]float64, len(d.Nets)),
		wgx:  make([]float64, len(d.Instances)),
		wgy:  make([]float64, len(d.Instances)),
		dgx:  make([]float64, len(d.Instances)),
		dgy:  make([]float64, len(d.Instances)),
		hp:   make([]float64, len(d.Nets)),
		bins: bins,
		pois: newPoissonGrid(bins.grid),
		binOf: make([]int32, len(movable)),
		cnt:   make([][]int32, workers),
		off:   make([][]int32, workers),
		base:  make([]int32, bins.grid.Bins()+1),
		area:  make([]float64, len(movable)),
	}
	for k, inst := range movable {
		st.area[k] = inst.Master.Area()
	}
	return st
}

// netWeights computes the die-aware WA weight of every net once. A net
// whose pins touch both `_MD` macro-die layers and base-die layers
// crosses an F2F bump; its wirelength is priced up so the descent
// shortens bump-crossing spans first.
func (st *analyticState) netWeights(d *netlist.Design, workers int, ts trSet) time.Duration {
	return par.ChunksTr(ts, "place/net-weight", workers, len(d.Nets), func(w, lo, hi int) {
		for _, n := range d.Nets[lo:hi] {
			wt := n.Weight
			hasMD, hasBase := false, false
			for _, p := range n.Pins() {
				layer := ""
				if p.Port != nil {
					layer = p.Port.Layer
				} else if pin := p.Inst.Master.Pin(p.Pin); pin != nil {
					layer = pin.Layer
				}
				if layer == "" {
					continue
				}
				if strings.HasSuffix(layer, tech.MDSuffix) {
					hasMD = true
				} else {
					hasBase = true
				}
			}
			if hasMD && hasBase {
				wt *= analyticBumpWeight
			}
			st.wnet[n.ID] = wt
		}
	})
}

// pinCoord returns the placement coordinate a pin contributes: the
// frozen anchor location for ports and fixed macros, the current cell
// centre for movable cells (pin offsets fold into the anchor model the
// same way solve() treats them).
func pinCoord(p netlist.PinRef, pos []geom.Point) geom.Point {
	if p.Port != nil {
		return p.Port.Loc
	}
	if p.Inst.Fixed {
		return p.Loc()
	}
	return pos[p.Inst.ID]
}

// wlGradient runs the two WA phases: per-net aggregates (parallel over
// nets, each writing only its slot while pos is frozen), then per-cell
// gradients (parallel over cells, each writing only its slot while the
// aggregates are frozen) — the same disjoint-write pattern as solve().
func (st *analyticState) wlGradient(d *netlist.Design, movable []*netlist.Instance,
	adj [][]*netlist.Net, pos []geom.Point, gamma float64, workers int, ts trSet) time.Duration {

	busy := par.ChunksTr(ts, "place/wa-net", workers, len(d.Nets), func(w, lo, hi int) {
		for _, n := range d.Nets[lo:hi] {
			a := &st.agg[n.ID]
			*a = netAgg{}
			if n.Clock {
				continue
			}
			pins := n.Pins()
			a.deg = float64(len(pins))
			if len(pins) < 2 {
				continue
			}
			a.xmax, a.xmin = math.Inf(-1), math.Inf(1)
			a.ymax, a.ymin = math.Inf(-1), math.Inf(1)
			for _, p := range pins {
				c := pinCoord(p, pos)
				a.xmax, a.xmin = math.Max(a.xmax, c.X), math.Min(a.xmin, c.X)
				a.ymax, a.ymin = math.Max(a.ymax, c.Y), math.Min(a.ymin, c.Y)
			}
			for _, p := range pins {
				c := pinCoord(p, pos)
				ex := math.Exp((c.X - a.xmax) / gamma)
				a.ax += ex
				a.axx += c.X * ex
				ex = math.Exp((a.xmin - c.X) / gamma)
				a.bx += ex
				a.bxx += c.X * ex
				ey := math.Exp((c.Y - a.ymax) / gamma)
				a.ay += ey
				a.ayy += c.Y * ey
				ey = math.Exp((a.ymin - c.Y) / gamma)
				a.by += ey
				a.byy += c.Y * ey
			}
		}
	})
	busy += par.ChunksTr(ts, "place/wa-cell", workers, len(movable), func(w, lo, hi int) {
		for _, inst := range movable[lo:hi] {
			var gx, gy float64
			c := pos[inst.ID]
			for _, n := range adj[inst.ID] {
				a := &st.agg[n.ID]
				if n.Clock || a.deg < 2 {
					continue
				}
				wt := st.wnet[n.ID]
				gx += wt * waGrad(c.X, a.xmax, a.xmin, a.ax, a.axx, a.bx, a.bxx, gamma)
				gy += wt * waGrad(c.Y, a.ymax, a.ymin, a.ay, a.ayy, a.by, a.byy, gamma)
			}
			st.wgx[inst.ID] = gx
			st.wgy[inst.ID] = gy
		}
	})
	return busy
}

// waGrad is the derivative of the WA span estimate (x_max^WA − x_min^WA)
// with respect to one pin coordinate x:
//
//	∂/∂x [Σxᵢaᵢ/Σaᵢ] = (a/A)(1 + (x − f)/γ),  aᵢ = e^{xᵢ/γ}, f = Σxᵢaᵢ/Σaᵢ
//
// and symmetrically −(b/B)(1 − (x − g)/γ) for the min side with
// bᵢ = e^{−xᵢ/γ}. The exponentials are max-shifted for stability; the
// shift cancels in every ratio.
func waGrad(x, xmax, xmin, A, AX, B, BX, gamma float64) float64 {
	g := 0.0
	if A > 0 {
		a := math.Exp((x - xmax) / gamma)
		f := AX / A
		g += (a / A) * (1 + (x-f)/gamma)
	}
	if B > 0 {
		b := math.Exp((xmin - x) / gamma)
		m := BX / B
		g -= (b / B) * (1 - (x-m)/gamma)
	}
	return g
}

// density rebuilds the bin charge field from current positions with the
// counting-sort accumulation (per-chunk counts → serial prefix →
// scatter → per-bin sums in movable order — bit-identical at any
// worker count), then refreshes the Poisson potential.
func (st *analyticState) density(movable []*netlist.Instance, pos []geom.Point, workers int, ts trSet) time.Duration {
	g := st.bins.grid
	nb := g.Bins()
	busy := par.ChunksTr(ts, "place/charge-index", workers, len(movable), func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			ix, iy := g.Locate(pos[movable[k].ID])
			st.binOf[k] = int32(g.Index(ix, iy))
		}
	})
	busy += par.ChunksTr(ts, "place/charge-count", workers, len(movable), func(w, lo, hi int) {
		c := st.cnt[w]
		if c == nil {
			c = make([]int32, nb)
			st.cnt[w] = c
		}
		for i := range c {
			c[i] = 0
		}
		for k := lo; k < hi; k++ {
			c[st.binOf[k]]++
		}
	})
	base := st.base
	for i := range base {
		base[i] = 0
	}
	for w := 0; w < workers; w++ {
		c := st.cnt[w]
		if c == nil {
			continue
		}
		for i, n := range c {
			base[i+1] += n
		}
	}
	for i := 0; i < nb; i++ {
		base[i+1] += base[i]
	}
	cursor := make([]int32, nb)
	copy(cursor, base[:nb])
	for w := 0; w < workers; w++ {
		c := st.cnt[w]
		if c == nil {
			continue
		}
		o := st.off[w]
		if o == nil {
			o = make([]int32, nb)
			st.off[w] = o
		}
		copy(o, cursor)
		for i, n := range c {
			cursor[i] += n
		}
	}
	// Scatter movable indices to their stable per-bin ranks; per-bin
	// charge then sums members in movable order.
	flat := st.pois.flat
	if len(flat) < len(movable) {
		flat = make([]int32, len(movable))
		st.pois.flat = flat
	}
	busy += par.ChunksTr(ts, "place/charge-scatter", workers, len(movable), func(w, lo, hi int) {
		o := st.off[w]
		for k := lo; k < hi; k++ {
			i := st.binOf[k]
			flat[o[i]] = int32(k)
			o[i]++
		}
	})
	rho := st.pois.rho
	busy += par.ChunksTr(ts, "place/charge-sum", workers, nb, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			var u float64
			for _, k := range flat[base[i]:base[i+1]] {
				u += st.area[k]
			}
			// Signed charge: cell area above capacity repels, free
			// capacity attracts.
			rho[i] = u - st.bins.cap[i]
		}
	})
	// Neumann boundaries make the Poisson problem singular unless the
	// net charge is zero; remove the mean (serial, fixed bin order).
	var mean float64
	for _, r := range rho {
		mean += r
	}
	mean /= float64(nb)
	busy += par.ChunksTr(ts, "place/charge-center", workers, nb, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			rho[i] -= mean
		}
	})
	busy += st.pois.solve(workers, ts)
	return busy
}

// densGradient evaluates the potential slope at every movable cell:
// ∂N/∂x = q·∂φ/∂x by central difference on the bin the cell sits in.
func (st *analyticState) densGradient(movable []*netlist.Instance, pos []geom.Point, workers int, ts trSet) time.Duration {
	g := st.bins.grid
	phi := st.pois.phi
	return par.ChunksTr(ts, "place/field", workers, len(movable), func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			inst := movable[k]
			ix, iy := g.Locate(pos[inst.ID])
			xl, xr := maxInt(ix-1, 0), minInt(ix+1, g.NX-1)
			yl, yr := maxInt(iy-1, 0), minInt(iy+1, g.NY-1)
			var ddx, ddy float64
			if xr > xl {
				ddx = (phi[g.Index(xr, iy)] - phi[g.Index(xl, iy)]) / (float64(xr-xl) * g.DX)
			}
			if yr > yl {
				ddy = (phi[g.Index(ix, yr)] - phi[g.Index(ix, yl)]) / (float64(yr-yl) * g.DY)
			}
			st.dgx[inst.ID] = st.area[k] * ddx
			st.dgy[inst.ID] = st.area[k] * ddy
		}
	})
}

// gradMaxima returns the ∞-norms of the wirelength and density gradient
// fields. Max combines exactly regardless of chunking, so the result is
// identical at any worker count.
func (st *analyticState) gradMaxima(workers int) (wlMax, denMax float64) {
	for i := range st.wgx {
		wlMax = math.Max(wlMax, math.Max(math.Abs(st.wgx[i]), math.Abs(st.wgy[i])))
		denMax = math.Max(denMax, math.Max(math.Abs(st.dgx[i]), math.Abs(st.dgy[i])))
	}
	return
}

// descend takes one normalized gradient step: the combined gradient is
// scaled so the largest cell move equals step µm, then every movable
// cell updates its own position (disjoint writes).
func (st *analyticState) descend(movable []*netlist.Instance, pos []geom.Point,
	die geom.Rect, lambda, step float64, workers int, ts trSet) time.Duration {

	var gmax float64
	for _, inst := range movable {
		id := inst.ID
		gx := st.wgx[id] + lambda*st.dgx[id]
		gy := st.wgy[id] + lambda*st.dgy[id]
		gmax = math.Max(gmax, math.Max(math.Abs(gx), math.Abs(gy)))
	}
	if gmax == 0 {
		return 0
	}
	lr := step / gmax
	inner := die.Expand(-1)
	return par.ChunksTr(ts, "place/descend", workers, len(movable), func(w, lo, hi int) {
		for _, inst := range movable[lo:hi] {
			id := inst.ID
			p := geom.Pt(
				pos[id].X-lr*(st.wgx[id]+lambda*st.dgx[id]),
				pos[id].Y-lr*(st.wgy[id]+lambda*st.dgy[id]),
			)
			pos[id] = inner.ClampPoint(p)
		}
	})
}

// exactHPWL computes the true (non-smoothed) weighted HPWL of the
// iterate: per-net bounding boxes in parallel (disjoint slots), then a
// serial sum in net order.
func (st *analyticState) exactHPWL(d *netlist.Design, pos []geom.Point, workers int, ts trSet) float64 {
	par.ChunksTr(ts, "place/hpwl", workers, len(d.Nets), func(w, lo, hi int) {
		for _, n := range d.Nets[lo:hi] {
			pins := n.Pins()
			if len(pins) < 2 {
				st.hp[n.ID] = 0
				continue
			}
			xmax, xmin := math.Inf(-1), math.Inf(1)
			ymax, ymin := math.Inf(-1), math.Inf(1)
			for _, p := range pins {
				c := pinCoord(p, pos)
				xmax, xmin = math.Max(xmax, c.X), math.Min(xmin, c.X)
				ymax, ymin = math.Max(ymax, c.Y), math.Min(ymin, c.Y)
			}
			st.hp[n.ID] = st.wnet[n.ID] * ((xmax - xmin) + (ymax - ymin))
		}
	})
	var sum float64
	for _, h := range st.hp {
		sum += h
	}
	return sum
}

// poissonGrid solves ∇²φ = −ρ over the bin grid with Neumann (mirror)
// boundaries by damped Jacobi relaxation on a two-level multigrid: the
// charge restricts to a half-resolution grid that relaxes first, its
// potential prolongates down as the fine grid's initial guess, and a
// few fine sweeps finish. φ persists across outer placement iterations
// as a warm start. Every sweep is a ping-pong between two buffers —
// disjoint writes over frozen reads — so the relaxation is bit-identical
// at any worker count.
type poissonGrid struct {
	nx, ny   int
	cnx, cny int
	phi, tmp []float64
	crho     []float64
	cphi     []float64
	ctmp     []float64
	rho      []float64
	flat     []int32 // charge-scatter scratch, sized on demand
}

func newPoissonGrid(g geom.Grid) *poissonGrid {
	cnx, cny := (g.NX+1)/2, (g.NY+1)/2
	return &poissonGrid{
		nx: g.NX, ny: g.NY, cnx: cnx, cny: cny,
		phi:  make([]float64, g.Bins()),
		tmp:  make([]float64, g.Bins()),
		crho: make([]float64, cnx*cny),
		cphi: make([]float64, cnx*cny),
		ctmp: make([]float64, cnx*cny),
		rho:  make([]float64, g.Bins()),
	}
}

func (p *poissonGrid) solve(workers int, ts trSet) time.Duration {
	// Restrict charge: each coarse bin averages its ≤2×2 fine bins.
	busy := par.ChunksTr(ts, "place/poisson-restrict", workers, p.cnx*p.cny, func(w, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			cx, cy := ci%p.cnx, ci/p.cnx
			var s float64
			var n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					x, y := 2*cx+dx, 2*cy+dy
					if x < p.nx && y < p.ny {
						s += p.rho[y*p.nx+x]
						n++
					}
				}
			}
			p.crho[ci] = s / float64(n)
		}
	})
	busy += relaxJacobi(p.cphi, p.ctmp, p.crho, p.cnx, p.cny, 4, analyticCoarseRelax, workers, ts)
	// Prolongate: inject each coarse potential into its fine bins as
	// the warm start the fine sweeps smooth.
	busy += par.ChunksTr(ts, "place/poisson-prolong", workers, p.nx*p.ny, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			x, y := i%p.nx, i/p.nx
			p.phi[i] = p.cphi[(y/2)*p.cnx+(x/2)]
		}
	})
	busy += relaxJacobi(p.phi, p.tmp, p.rho, p.nx, p.ny, 1, analyticFineRelax, workers, ts)
	return busy
}

// relaxJacobi runs an even number of Jacobi sweeps of
// φ' = ¼(φ_W + φ_E + φ_S + φ_N + h²ρ) with mirrored boundaries,
// ping-ponging between phi and tmp so the result lands back in phi.
func relaxJacobi(phi, tmp, rho []float64, nx, ny int, h2 float64, iters, workers int, ts trSet) time.Duration {
	var busy time.Duration
	src, dst := phi, tmp
	for it := 0; it < iters; it++ {
		s, d := src, dst
		busy += par.ChunksTr(ts, "place/poisson-relax", workers, nx*ny, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				x, y := i%nx, i/nx
				xl, xr := maxInt(x-1, 0), minInt(x+1, nx-1)
				yl, yr := maxInt(y-1, 0), minInt(y+1, ny-1)
				d[i] = 0.25 * (s[y*nx+xl] + s[y*nx+xr] + s[yl*nx+x] + s[yr*nx+x] + h2*rho[i])
			}
		})
		src, dst = dst, src
	}
	if iters%2 == 1 {
		copy(phi, src)
	}
	return busy
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
