package place

import (
	"testing"

	"macro3d/internal/floorplan"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
)

// analyticFixture builds the piton tile floorplan for the given cache
// config — same construction as placedTileFixture but parameterized so
// the quality bound runs on both cache sizes.
func analyticFixture(t *testing.T, cfg piton.Config) (*netlist.Design, *floorplan.Floorplan) {
	t.Helper()
	tile, err := piton.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := tile.Design
	sz, err := floorplan.SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := floorplan.PlaceMacros(d, sz.Die2D, floorplan.Style2D)
	if err != nil {
		t.Fatal(err)
	}
	floorplan.BuildBlockages(fp, d, netlist.LogicDie)
	floorplan.AssignPorts(tile, sz.Die2D)
	return d, fp
}

// TestPlaceAnalyticQuality is the engine's headline bound on both cache
// sizes: the analytic placement must be legal and its post-legalization
// HPWL must be no worse than the default quadratic placer's on the same
// tile.
func TestPlaceAnalyticQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("full tile placement in -short mode")
	}
	for _, tc := range []struct {
		name string
		cfg  piton.Config
	}{
		{"small-cache", piton.SmallCache()},
		{"large-cache", piton.LargeCache()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dRef, fpRef := analyticFixture(t, tc.cfg)
			ref, err := Place(dRef, fpRef, 1.2, Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			dAn, fpAn := analyticFixture(t, tc.cfg)
			an, err := Place(dAn, fpAn, 1.2, Options{Seed: 5, Analytic: true})
			if err != nil {
				t.Fatal(err)
			}
			if viol := CheckLegal(dAn, fpAn); len(viol) > 0 {
				t.Fatalf("analytic placement illegal: %d violations, e.g. %v", len(viol), viol[0])
			}
			if an.HPWL > ref.HPWL {
				t.Fatalf("analytic HPWL %.3f m worse than quadratic %.3f m (%.2f%%)",
					an.HPWL/1e6, ref.HPWL/1e6, 100*(an.HPWL/ref.HPWL-1))
			}
			t.Logf("analytic HPWL %.3f m vs quadratic %.3f m (%.2f%%), disp %.1f vs %.1f µm, ovf %.4f",
				an.HPWL/1e6, ref.HPWL/1e6, 100*(an.HPWL/ref.HPWL-1),
				an.Displacement, ref.Displacement, an.Overflow)
		})
	}
}

// TestPlaceAnalyticDeterminism pins the bit-identity contract inside
// the analytic engine: Workers 1, 4 and 0 (GOMAXPROCS) place every
// instance identically and report identical PPA.
func TestPlaceAnalyticDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full tile placement in -short mode")
	}
	var ref *Result
	var refD *netlist.Design
	for _, w := range []int{1, 4, 0} {
		d, fp := analyticFixture(t, piton.SmallCache())
		r, err := Place(d, fp, 1.2, Options{Seed: 5, Workers: w, Analytic: true})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refD = r, d
			continue
		}
		if *r != *ref {
			t.Fatalf("analytic result diverged at workers=%d: %+v vs %+v", w, *r, *ref)
		}
		for i := range d.Instances {
			if d.Instances[i].Loc != refD.Instances[i].Loc {
				t.Fatalf("analytic instance %s placed differently at workers=%d: %v vs %v",
					d.Instances[i].Name, w, d.Instances[i].Loc, refD.Instances[i].Loc)
			}
		}
	}
}

// TestPlaceAnalyticChain is the cheap smoke: the analytic engine on a
// tiny serial-path design still produces a legal, fully placed result.
func TestPlaceAnalyticChain(t *testing.T) {
	d, fp := chainDesign(50)
	res, err := Place(d, fp, 1.2, Options{Seed: 1, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	if viol := CheckLegal(d, fp); len(viol) > 0 {
		t.Fatalf("illegal analytic placement: %v", viol[0])
	}
	if res.HPWL <= 0 || res.HPWL > 400 {
		t.Fatalf("analytic chain HPWL = %.1f µm", res.HPWL)
	}
	for _, inst := range d.Instances {
		if !inst.Fixed && !inst.Placed {
			t.Fatalf("instance %s left unplaced", inst.Name)
		}
	}
}
