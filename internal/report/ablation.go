package report

import (
	"fmt"
	"strings"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
	"macro3d/internal/tech"
)

// BlockageSweep tests the S2D failure hypothesis the paper states
// (§III): that the spatial resolution at which partial macro blockages
// are rasterized drives post-partitioning overlaps. In this
// implementation the sweep shows the penalty is dominated by the
// bin-balanced partitioning + displacement step at every resolution —
// i.e. S2D's loss on macro-heavy designs is structural, not a tuning
// artifact, which strengthens the paper's conclusion.
type BlockageSweep struct {
	ResolutionsUm []float64
	S2D           []*flows.PPA
	TwoD          *flows.PPA // reference
}

// RunBlockageSweep runs MoL S2D at each partial-blockage resolution.
func RunBlockageSweep(seed uint64, resolutions []float64) (*BlockageSweep, error) {
	if len(resolutions) == 0 {
		resolutions = []float64{15, 30, 50, 80, 120}
	}
	out := &BlockageSweep{ResolutionsUm: resolutions}
	var err error
	if out.TwoD, _, err = flows.Run2D(flows.Config{Piton: piton.SmallCache(), Seed: seed}); err != nil {
		return nil, err
	}
	for _, res := range resolutions {
		cfg := flows.Config{Piton: piton.SmallCache(), Seed: seed, BlockageResolution: res}
		p, _, err := flows.RunS2D(cfg, false)
		if err != nil {
			return nil, fmt.Errorf("blockage sweep @%.0f µm: %w", res, err)
		}
		out.S2D = append(out.S2D, p)
	}
	return out, nil
}

// Format renders the sweep.
func (s *BlockageSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — S2D partial-blockage rasterization resolution (small cache)\n")
	fmt.Fprintf(&b, "2D reference: %.0f MHz\n", s.TwoD.FclkMHz)
	fmt.Fprintf(&b, "%-16s %10s %12s %10s\n", "resolution [µm]", "fclk [MHz]", "vs 2D", "bumps")
	for i, res := range s.ResolutionsUm {
		p := s.S2D[i]
		fmt.Fprintf(&b, "%-16.0f %10.0f %11.1f%% %10d\n",
			res, p.FclkMHz, 100*(p.FclkMHz/s.TwoD.FclkMHz-1), p.F2FBumps)
	}
	return b.String()
}

// PitchSweep varies the F2F bump pitch. The paper (§II) argues MoL
// stacking needs pitches near the wire spacing (hybrid bonding,
// ≤1 µm); coarser bump grids throttle inter-die connectivity, which
// shows up as routing overflow and lost performance.
type PitchSweep struct {
	PitchesUm []float64
	M3D       []*flows.PPA
}

// RunPitchSweep runs Macro-3D at each bump pitch.
func RunPitchSweep(seed uint64, pitches []float64) (*PitchSweep, error) {
	if len(pitches) == 0 {
		pitches = []float64{1, 2, 5, 10, 20}
	}
	out := &PitchSweep{PitchesUm: pitches}
	for _, pitch := range pitches {
		cfg := flows.Config{Piton: piton.SmallCache(), Seed: seed}
		p, _, _, err := runMacro3DWithPitch(cfg, pitch)
		if err != nil {
			return nil, fmt.Errorf("pitch sweep @%.0f µm: %w", pitch, err)
		}
		out.M3D = append(out.M3D, p)
	}
	return out, nil
}

// runMacro3DWithPitch adjusts the F2F technology before the flow.
func runMacro3DWithPitch(cfg flows.Config, pitch float64) (*flows.PPA, *flows.State, *tech.F2FSpec, error) {
	f2f := tech.DefaultF2F()
	f2f.Pitch = pitch
	cfg.F2F = &f2f
	p, st, _, err := flows.RunMacro3D(cfg)
	return p, st, &f2f, err
}

// Format renders the sweep.
func (s *PitchSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — F2F bump pitch (Macro-3D, small cache)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "pitch [µm]", "fclk [MHz]", "bumps", "overflow")
	for i, pitch := range s.PitchesUm {
		p := s.M3D[i]
		fmt.Fprintf(&b, "%-14.1f %10.0f %10d %10d\n",
			pitch, p.FclkMHz, p.F2FBumps, p.RouteOverflow)
	}
	return b.String()
}

// HeteroTechSweep explores the heterogeneity the paper's conclusion
// leaves as future work: manufacturing the macro die in a different
// process node. Each point scales the memory macros' access time,
// energy and leakage relative to the logic node; the 2D design cannot
// follow (its memories must be process-compatible with the logic), so
// only Macro-3D benefits from the leakage-optimized points.
type HeteroTechSweep struct {
	Points []HeteroPoint
}

// HeteroPoint is one macro-die technology choice.
type HeteroPoint struct {
	Label   string
	Process piton.MacroProcess
	PPA     *flows.PPA
}

// RunHeteroTechSweep runs Macro-3D with macro dies in three node
// flavours: the same logic node, a density/leakage-optimized older
// node, and a speed-binned memory node.
func RunHeteroTechSweep(seed uint64) (*HeteroTechSweep, error) {
	points := []HeteroPoint{
		{Label: "same-node", Process: piton.MacroProcess{}},
		{Label: "low-leak (older node)", Process: piton.MacroProcess{
			ClkQScale: 2.2, EnergyScale: 1.2, LeakageScale: 0.25}},
		{Label: "fast-bin memory node", Process: piton.MacroProcess{
			ClkQScale: 0.6, EnergyScale: 1.1, LeakageScale: 1.6}},
	}
	out := &HeteroTechSweep{}
	for _, pt := range points {
		pc := piton.SmallCache()
		pc.MacroProcess = pt.Process
		cfg := flows.Config{Piton: pc, Seed: seed}
		p, _, _, err := flows.RunMacro3D(cfg)
		if err != nil {
			return nil, fmt.Errorf("hetero sweep %q: %w", pt.Label, err)
		}
		pt.PPA = p
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Format renders the sweep.
func (s *HeteroTechSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — heterogeneous macro-die process (Macro-3D, small cache)\n")
	fmt.Fprintf(&b, "%-24s %10s %14s %12s %12s\n", "macro-die node", "fclk [MHz]", "Emean [fJ/cyc]", "power [µW]", "leak [µW]")
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-24s %10.0f %14.1f %12.1f %12.1f\n",
			pt.Label, pt.PPA.FclkMHz, pt.PPA.EmeanFJ, pt.PPA.PowerUW, pt.PPA.LeakageUW)
	}
	return b.String()
}
