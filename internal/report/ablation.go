package report

import (
	"context"
	"fmt"
	"strings"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
	"macro3d/internal/tech"
)

// BlockageSweep tests the S2D failure hypothesis the paper states
// (§III): that the spatial resolution at which partial macro blockages
// are rasterized drives post-partitioning overlaps. In this
// implementation the sweep shows the penalty is dominated by the
// bin-balanced partitioning + displacement step at every resolution —
// i.e. S2D's loss on macro-heavy designs is structural, not a tuning
// artifact, which strengthens the paper's conclusion.
type BlockageSweep struct {
	ResolutionsUm []float64
	// S2D is index-aligned with ResolutionsUm; a nil entry marks a
	// point that failed or was cancelled (keep-going mode).
	S2D  []*flows.PPA
	TwoD *flows.PPA // reference
}

// RunBlockageSweep runs MoL S2D at each partial-blockage resolution.
func RunBlockageSweep(seed uint64, resolutions []float64) (*BlockageSweep, error) {
	return RunBlockageSweepCtx(context.Background(), seed, resolutions, false)
}

// RunBlockageSweepCtx is the context-aware sweep driver: cancellation
// is honoured at flow-stage boundaries, and with keepGoing a failed
// point leaves a nil gap instead of aborting the sweep.
func RunBlockageSweepCtx(ctx context.Context, seed uint64, resolutions []float64, keepGoing bool) (*BlockageSweep, error) {
	return RunBlockageSweepWith(ctx, flows.Config{Seed: seed}, resolutions, keepGoing)
}

// RunBlockageSweepWith is RunBlockageSweepCtx taking a full flow
// configuration, so hardening knobs and the stage cache apply to every
// point (an unset tile defaults to the small-cache config; the swept
// BlockageResolution is set per point). With a cache, all points share
// the 2D and pseudo-phase snapshots where their keys agree.
func RunBlockageSweepWith(ctx context.Context, cfg flows.Config, resolutions []float64, keepGoing bool) (*BlockageSweep, error) {
	if len(resolutions) == 0 {
		resolutions = []float64{15, 30, 50, 80, 120}
	}
	if cfg.Piton.Name == "" && cfg.Generator == nil {
		cfg.Piton = piton.SmallCache()
	}
	out := &BlockageSweep{ResolutionsUm: resolutions}
	cols := []column{{"2D reference", func() (err error) {
		out.TwoD, _, err = flows.Run2DCtx(ctx, cfg)
		return
	}}}
	for _, res := range resolutions {
		res := res
		i := len(out.S2D)
		out.S2D = append(out.S2D, nil)
		cols = append(cols, column{fmt.Sprintf("@%.0f µm", res), func() (err error) {
			pcfg := cfg
			pcfg.BlockageResolution = res
			out.S2D[i], _, err = flows.RunS2DCtx(ctx, pcfg, false)
			return
		}})
	}
	err := runColumns(ctx, "blockage sweep", keepGoing, cols)
	return out, err
}

// Format renders the sweep; failed points render as "—".
func (s *BlockageSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — S2D partial-blockage rasterization resolution (small cache)\n")
	fmt.Fprintf(&b, "2D reference: %s MHz\n", cell(s.TwoD, "%.0f", func(p *flows.PPA) float64 { return p.FclkMHz }))
	fmt.Fprintf(&b, "%-16s %10s %12s %10s\n", "resolution [µm]", "fclk [MHz]", "vs 2D", "bumps")
	for i, res := range s.ResolutionsUm {
		var p *flows.PPA
		if i < len(s.S2D) {
			p = s.S2D[i]
		}
		vs := "—"
		if p != nil && s.TwoD != nil && s.TwoD.FclkMHz != 0 {
			vs = fmt.Sprintf("%.1f%%", 100*(p.FclkMHz/s.TwoD.FclkMHz-1))
		}
		fmt.Fprintf(&b, "%-16.0f %10s %12s %10s\n",
			res,
			cell(p, "%.0f", func(p *flows.PPA) float64 { return p.FclkMHz }),
			vs,
			cell(p, "%.0f", func(p *flows.PPA) float64 { return float64(p.F2FBumps) }))
	}
	return b.String()
}

// PitchSweep varies the F2F bump pitch. The paper (§II) argues MoL
// stacking needs pitches near the wire spacing (hybrid bonding,
// ≤1 µm); coarser bump grids throttle inter-die connectivity, which
// shows up as routing overflow and lost performance.
type PitchSweep struct {
	PitchesUm []float64
	// M3D is index-aligned with PitchesUm; nil entries mark failed or
	// cancelled points.
	M3D []*flows.PPA
}

// RunPitchSweep runs Macro-3D at each bump pitch.
func RunPitchSweep(seed uint64, pitches []float64) (*PitchSweep, error) {
	return RunPitchSweepCtx(context.Background(), seed, pitches, false)
}

// RunPitchSweepCtx is the context-aware pitch-sweep driver.
func RunPitchSweepCtx(ctx context.Context, seed uint64, pitches []float64, keepGoing bool) (*PitchSweep, error) {
	return RunPitchSweepWith(ctx, flows.Config{Seed: seed}, pitches, keepGoing)
}

// RunPitchSweepWith is RunPitchSweepCtx taking a full flow
// configuration (unset tile defaults to small-cache; the swept F2F
// pitch is set per point). With a cache, all points share the place
// snapshot prefix up to where the pitch enters the key.
func RunPitchSweepWith(ctx context.Context, cfg flows.Config, pitches []float64, keepGoing bool) (*PitchSweep, error) {
	if len(pitches) == 0 {
		pitches = []float64{1, 2, 5, 10, 20}
	}
	if cfg.Piton.Name == "" && cfg.Generator == nil {
		cfg.Piton = piton.SmallCache()
	}
	out := &PitchSweep{PitchesUm: pitches}
	var cols []column
	for _, pitch := range pitches {
		pitch := pitch
		i := len(out.M3D)
		out.M3D = append(out.M3D, nil)
		cols = append(cols, column{fmt.Sprintf("@%.0f µm", pitch), func() (err error) {
			out.M3D[i], _, _, err = runMacro3DWithPitch(ctx, cfg, pitch)
			return
		}})
	}
	err := runColumns(ctx, "pitch sweep", keepGoing, cols)
	return out, err
}

// runMacro3DWithPitch adjusts the F2F technology before the flow.
func runMacro3DWithPitch(ctx context.Context, cfg flows.Config, pitch float64) (*flows.PPA, *flows.State, *tech.F2FSpec, error) {
	f2f := tech.DefaultF2F()
	f2f.Pitch = pitch
	cfg.F2F = &f2f
	p, st, _, err := flows.RunMacro3DCtx(ctx, cfg)
	return p, st, &f2f, err
}

// Format renders the sweep; failed points render as "—".
func (s *PitchSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — F2F bump pitch (Macro-3D, small cache)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "pitch [µm]", "fclk [MHz]", "bumps", "overflow")
	for i, pitch := range s.PitchesUm {
		var p *flows.PPA
		if i < len(s.M3D) {
			p = s.M3D[i]
		}
		fmt.Fprintf(&b, "%-14.1f %10s %10s %10s\n",
			pitch,
			cell(p, "%.0f", func(p *flows.PPA) float64 { return p.FclkMHz }),
			cell(p, "%.0f", func(p *flows.PPA) float64 { return float64(p.F2FBumps) }),
			cell(p, "%.0f", func(p *flows.PPA) float64 { return float64(p.RouteOverflow) }))
	}
	return b.String()
}

// HeteroTechSweep explores the heterogeneity the paper's conclusion
// leaves as future work: manufacturing the macro die in a different
// process node. Each point scales the memory macros' access time,
// energy and leakage relative to the logic node; the 2D design cannot
// follow (its memories must be process-compatible with the logic), so
// only Macro-3D benefits from the leakage-optimized points.
type HeteroTechSweep struct {
	Points []HeteroPoint
}

// HeteroPoint is one macro-die technology choice. PPA is nil when the
// point failed or was cancelled (keep-going mode).
type HeteroPoint struct {
	Label   string
	Process piton.MacroProcess
	PPA     *flows.PPA
}

// RunHeteroTechSweep runs Macro-3D with macro dies in three node
// flavours: the same logic node, a density/leakage-optimized older
// node, and a speed-binned memory node.
func RunHeteroTechSweep(seed uint64) (*HeteroTechSweep, error) {
	return RunHeteroTechSweepCtx(context.Background(), seed, false)
}

// RunHeteroTechSweepCtx is the context-aware heterogeneous-node sweep.
func RunHeteroTechSweepCtx(ctx context.Context, seed uint64, keepGoing bool) (*HeteroTechSweep, error) {
	return RunHeteroTechSweepWith(ctx, flows.Config{Seed: seed}, keepGoing)
}

// RunHeteroTechSweepWith is RunHeteroTechSweepCtx taking a full flow
// configuration (unset tile defaults to small-cache; the macro-die
// process is set per point).
func RunHeteroTechSweepWith(ctx context.Context, cfg flows.Config, keepGoing bool) (*HeteroTechSweep, error) {
	points := []HeteroPoint{
		{Label: "same-node", Process: piton.MacroProcess{}},
		{Label: "low-leak (older node)", Process: piton.MacroProcess{
			ClkQScale: 2.2, EnergyScale: 1.2, LeakageScale: 0.25}},
		{Label: "fast-bin memory node", Process: piton.MacroProcess{
			ClkQScale: 0.6, EnergyScale: 1.1, LeakageScale: 1.6}},
	}
	if cfg.Piton.Name == "" && cfg.Generator == nil {
		cfg.Piton = piton.SmallCache()
	}
	out := &HeteroTechSweep{Points: points}
	var cols []column
	for i := range out.Points {
		i := i
		cols = append(cols, column{fmt.Sprintf("%q", out.Points[i].Label), func() (err error) {
			pcfg := cfg
			pcfg.Piton.MacroProcess = out.Points[i].Process
			out.Points[i].PPA, _, _, err = flows.RunMacro3DCtx(ctx, pcfg)
			return
		}})
	}
	err := runColumns(ctx, "hetero sweep", keepGoing, cols)
	return out, err
}

// Format renders the sweep; failed points render as "—".
func (s *HeteroTechSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — heterogeneous macro-die process (Macro-3D, small cache)\n")
	fmt.Fprintf(&b, "%-24s %10s %14s %12s %12s\n", "macro-die node", "fclk [MHz]", "Emean [fJ/cyc]", "power [µW]", "leak [µW]")
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-24s %10s %14s %12s %12s\n",
			pt.Label,
			cell(pt.PPA, "%.0f", func(p *flows.PPA) float64 { return p.FclkMHz }),
			cell(pt.PPA, "%.1f", func(p *flows.PPA) float64 { return p.EmeanFJ }),
			cell(pt.PPA, "%.1f", func(p *flows.PPA) float64 { return p.PowerUW }),
			cell(pt.PPA, "%.1f", func(p *flows.PPA) float64 { return p.LeakageUW }))
	}
	return b.String()
}
