package report

import (
	"context"
	"testing"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
	"macro3d/internal/stash"
)

// TestTableIWarmCacheByteIdentical pins the sweep-level cache
// contract: a warm-cache Table I renders byte-identically to the cold
// run that populated the cache, and the warm run misses nothing.
func TestTableIWarmCacheByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cold, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 11, Cache: cold}
	tc, err := RunTableIWith(context.Background(), cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Puts == 0 {
		t.Fatalf("cold table run stored nothing: %+v", s)
	}

	warm, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = warm
	tw, err := RunTableIWith(context.Background(), cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Stats()
	if ws.Hits == 0 || ws.Misses != 0 {
		t.Errorf("warm table stats = %+v; want all hits", ws)
	}
	if tc.Format() != tw.Format() {
		t.Errorf("warm table differs from cold:\n%s\n%s", tc.Format(), tw.Format())
	}
}

// TestIsoPerfSharesPrefix pins that the iso-performance driver's
// Macro-3D run reuses the max-performance place/route snapshots when a
// prior run populated the cache.
func TestIsoPerfSharesPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 11, Cache: s}
	if _, _, _, err := flows.RunMacro3DCtx(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	baseline := s.Stats()

	iso, err := RunIsoPerfWith(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if iso.PPA3DIso == nil {
		t.Fatal("no iso-performance PPA")
	}
	st := s.Stats()
	if st.Hits-baseline.Hits < 2 {
		t.Errorf("iso run should hit the shared Macro-3D place+route prefix: before %+v, after %+v", baseline, st)
	}
}
