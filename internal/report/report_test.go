package report

import (
	"context"
	"errors"
	"strings"
	"testing"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
)

// fakePPA builds a synthetic flow result so Format tests need no flow
// runs.
func fakePPA(flow string, fclk float64, bumps int) *flows.PPA {
	return &flows.PPA{
		Flow: flow, Config: "t", FclkMHz: fclk, MinPeriodPs: 1e6 / fclk,
		EmeanFJ: 100 + fclk/10, FootprintMM2: 1.2, LogicCellAreaMM2: 0.3,
		MetalAreaMM2: 7.2, TotalWLm: 2.5, F2FBumps: bumps,
		CpinNF: 0.04, CwireNF: 0.3, ClkDepth: 13, CritPathWLmm: 1.5,
	}
}

func TestTableIFormat(t *testing.T) {
	tab := &TableI{
		TwoD:    fakePPA("2D", 400, 0),
		S2D:     fakePPA("S2D", 220, 5405),
		BFS2D:   fakePPA("BF S2D", 260, 8703),
		Macro3D: fakePPA("Macro-3D", 470, 4740),
	}
	out := tab.Format()
	for _, want := range []string{"Table I", "fclk [MHz]", "400", "220", "260", "470",
		"5405", "8703", "4740", "Afootprint", "Emean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q\n%s", want, out)
		}
	}
	// Four data columns per row.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fclk") && len(strings.Fields(line)) != 6 {
			t.Errorf("fclk row malformed: %q", line)
		}
	}
}

func TestTableIIFormatDeltas(t *testing.T) {
	tab := &TableII{
		Small2D:  fakePPA("2D", 400, 0),
		SmallM3D: fakePPA("Macro-3D", 480, 4740),
		Large2D:  fakePPA("2D", 300, 0),
		LargeM3D: fakePPA("Macro-3D", 390, 1215),
	}
	out := tab.Format()
	if !strings.Contains(out, "(+20.0%)") {
		t.Errorf("small delta missing:\n%s", out)
	}
	if !strings.Contains(out, "(+30.0%)") {
		t.Errorf("large delta missing:\n%s", out)
	}
	for _, row := range []string{"Alogic-cells", "Total wirelength", "Cpin,total",
		"Cwire,total", "Max clk-tree depth", "Crit-path WL"} {
		if !strings.Contains(out, row) {
			t.Errorf("row %q missing", row)
		}
	}
}

func TestTableIIIFormat(t *testing.T) {
	tab := &TableIII{
		SmallM6M6: fakePPA("Macro-3D", 470, 4740),
		SmallM6M4: fakePPA("Macro-3D", 462, 3866),
		LargeM6M6: fakePPA("Macro-3D", 421, 1215),
		LargeM6M4: fakePPA("Macro-3D", 423, 922),
	}
	tab.SmallM6M4.MetalAreaMM2 = 6.0
	out := tab.Format()
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "Ametal") {
		t.Fatalf("structure:\n%s", out)
	}
	if !strings.Contains(out, "(-16.7%)") {
		t.Errorf("metal delta missing:\n%s", out)
	}
	if !strings.Contains(out, "(-1.7%)") { // 462/470
		t.Errorf("fclk delta missing:\n%s", out)
	}
}

func TestIsoPerfFormat(t *testing.T) {
	r := &IsoPerf{Config: "piton_small", F2DMHz: 390, Power2D: 1000, Power3D: 968, DeltaPct: -3.2}
	out := r.Format()
	for _, want := range []string{"piton_small", "390 MHz", "-3.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("iso-perf output missing %q: %s", want, out)
		}
	}
}

func TestPctHelper(t *testing.T) {
	if pct(110, 100) != "(+10.0%)" {
		t.Fatalf("pct = %s", pct(110, 100))
	}
	if pct(90, 100) != "(-10.0%)" {
		t.Fatalf("pct = %s", pct(90, 100))
	}
	if pct(1, 0) != "—" {
		t.Fatalf("pct zero-div = %s", pct(1, 0))
	}
}

func TestBlockageSweepFormat(t *testing.T) {
	sw := &BlockageSweep{
		ResolutionsUm: []float64{20, 50},
		TwoD:          fakePPA("2D", 400, 0),
		S2D:           []*flows.PPA{fakePPA("S2D", 200, 5000), fakePPA("S2D", 150, 5200)},
	}
	out := sw.Format()
	if !strings.Contains(out, "-50.0%") || !strings.Contains(out, "-62.5%") {
		t.Fatalf("sweep deltas missing:\n%s", out)
	}
}

func TestPitchSweepFormat(t *testing.T) {
	sw := &PitchSweep{
		PitchesUm: []float64{1, 10},
		M3D:       []*flows.PPA{fakePPA("Macro-3D", 470, 4740), fakePPA("Macro-3D", 430, 900)},
	}
	out := sw.Format()
	if !strings.Contains(out, "4740") || !strings.Contains(out, "900") {
		t.Fatalf("pitch sweep missing bump counts:\n%s", out)
	}
}

func TestNilColumnsFormatAsDash(t *testing.T) {
	partial := &TableI{TwoD: fakePPA("2D", 400, 0)} // other columns missing
	out := partial.Format()
	if !strings.Contains(out, "400") || !strings.Contains(out, "—") {
		t.Fatalf("partial Table I render wrong:\n%s", out)
	}
	if !strings.Contains((&TableII{Small2D: fakePPA("2D", 400, 0)}).Format(), "—") {
		t.Fatal("partial Table II lacks dashes")
	}
	if !strings.Contains((&TableIII{}).Format(), "—") {
		t.Fatal("empty Table III lacks dashes")
	}
	if !strings.Contains((&BlockageSweep{ResolutionsUm: []float64{50}}).Format(), "—") {
		t.Fatal("empty blockage sweep lacks dashes")
	}
	if !strings.Contains((&PitchSweep{PitchesUm: []float64{1}}).Format(), "—") {
		t.Fatal("empty pitch sweep lacks dashes")
	}
	if !strings.Contains((&HeteroTechSweep{Points: []HeteroPoint{{Label: "x"}}}).Format(), "—") {
		t.Fatal("empty hetero sweep lacks dashes")
	}
}

// TestRunTableICancelPreservesColumns is the cancellation acceptance
// check: cancelling during the second column stops the table within
// one stage boundary while the completed first column survives.
func TestRunTableICancelPreservesColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one tiny flow plus a cancelled one")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 3}
	cfg.AfterStage = func(flow, stage string, st *flows.State) {
		if flow != "2D" {
			cancel() // first stage of the second column (MoL S2D)
		}
	}
	tab, err := RunTableIWith(ctx, cfg, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var se *flows.StageError
	if !errors.As(err, &se) || se.Flow != "S2D" {
		t.Fatalf("cancellation not attributed to the running column: %v", err)
	}
	if tab == nil || tab.TwoD == nil {
		t.Fatal("completed 2D column lost on cancellation")
	}
	if tab.BFS2D != nil || tab.Macro3D != nil {
		t.Fatal("columns after the cancellation point should not have run")
	}
	if !strings.Contains(tab.Format(), "—") {
		t.Fatal("partial table does not render missing columns")
	}
}

// TestRunTableIKeepGoing drives the keep-going mode through a config
// only half the columns support: the S2D baselines reject a custom
// Generator, so with keepGoing the 2D and Macro-3D columns must still
// complete and the error must join both S2D failures.
func TestRunTableIKeepGoing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four tiny flows")
	}
	cfg := flows.Config{
		Seed:      3,
		Generator: func() (*piton.Tile, error) { return piton.Generate(piton.Tiny()) },
	}
	tab, err := RunTableIWith(context.Background(), cfg, true)
	if err == nil {
		t.Fatal("S2D columns cannot run a custom generator; expected a joined error")
	}
	if tab.TwoD == nil || tab.Macro3D == nil {
		t.Fatal("keep-going mode lost the healthy columns")
	}
	if tab.S2D != nil || tab.BFS2D != nil {
		t.Fatal("failed columns must stay nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "MoL S2D") || !strings.Contains(msg, "BF S2D") {
		t.Fatalf("joined error does not name both failed columns: %v", err)
	}
	var se *flows.StageError
	if !errors.As(err, &se) {
		t.Fatalf("column failures are not typed: %v", err)
	}
}
