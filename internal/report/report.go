// Package report runs the paper's experiments end to end and formats
// their tables: Table I (max-performance PPA and cost of 2D, MoL S2D,
// BF S2D and Macro-3D on the small-cache tile), Table II (in-depth 2D
// versus Macro-3D for both cache configurations), Table III (the
// heterogeneous-BEOL M6–M4 ablation), and the §V-A iso-performance
// power comparison.
package report

import (
	"fmt"
	"strings"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
)

// TableI holds the four compared flows on the small-cache tile.
type TableI struct {
	TwoD, S2D, BFS2D, Macro3D *flows.PPA
}

// RunTableI reproduces Table I.
func RunTableI(seed uint64) (*TableI, error) {
	cfg := flows.Config{Piton: piton.SmallCache(), Seed: seed}
	t := &TableI{}
	var err error
	if t.TwoD, _, err = flows.Run2D(cfg); err != nil {
		return nil, fmt.Errorf("table I 2D: %w", err)
	}
	if t.S2D, _, err = flows.RunS2D(cfg, false); err != nil {
		return nil, fmt.Errorf("table I S2D: %w", err)
	}
	if t.BFS2D, _, err = flows.RunS2D(cfg, true); err != nil {
		return nil, fmt.Errorf("table I BF S2D: %w", err)
	}
	if t.Macro3D, _, _, err = flows.RunMacro3D(cfg); err != nil {
		return nil, fmt.Errorf("table I Macro-3D: %w", err)
	}
	return t, nil
}

// Format renders the table in the paper's row layout.
func (t *TableI) Format() string {
	cols := []*flows.PPA{t.TwoD, t.S2D, t.BFS2D, t.Macro3D}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — max-performance PPA and cost, small-cache tile\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", "", "2D", "MoL S2D", "BF S2D", "Macro-3D")
	row := func(name string, f func(p *flows.PPA) string) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, p := range cols {
			fmt.Fprintf(&b, " %10s", f(p))
		}
		b.WriteByte('\n')
	}
	row("fclk [MHz]", func(p *flows.PPA) string { return fmt.Sprintf("%.0f", p.FclkMHz) })
	row("Emean [fJ/cycle]", func(p *flows.PPA) string { return fmt.Sprintf("%.1f", p.EmeanFJ) })
	row("Afootprint [mm²]", func(p *flows.PPA) string { return fmt.Sprintf("%.2f", p.FootprintMM2) })
	row("F2F bumps", func(p *flows.PPA) string { return fmt.Sprintf("%d", p.F2FBumps) })
	return b.String()
}

// TableII holds the in-depth comparison for both configurations.
type TableII struct {
	Small2D, SmallM3D *flows.PPA
	Large2D, LargeM3D *flows.PPA
}

// RunTableII reproduces Table II.
func RunTableII(seed uint64) (*TableII, error) {
	t := &TableII{}
	var err error
	cs := flows.Config{Piton: piton.SmallCache(), Seed: seed}
	if t.Small2D, _, err = flows.Run2D(cs); err != nil {
		return nil, fmt.Errorf("table II small 2D: %w", err)
	}
	if t.SmallM3D, _, _, err = flows.RunMacro3D(cs); err != nil {
		return nil, fmt.Errorf("table II small Macro-3D: %w", err)
	}
	cl := flows.Config{Piton: piton.LargeCache(), Seed: seed}
	if t.Large2D, _, err = flows.Run2D(cl); err != nil {
		return nil, fmt.Errorf("table II large 2D: %w", err)
	}
	if t.LargeM3D, _, _, err = flows.RunMacro3D(cl); err != nil {
		return nil, fmt.Errorf("table II large Macro-3D: %w", err)
	}
	return t, nil
}

func pct(n, d float64) string {
	if d == 0 {
		return "—"
	}
	return fmt.Sprintf("(%+.1f%%)", 100*(n/d-1))
}

// Format renders the table with the paper's relative deltas.
func (t *TableII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — in-depth comparison of 2D and Macro-3D designs\n")
	fmt.Fprintf(&b, "%-26s %12s %22s %12s %22s\n", "", "Small 2D", "Small Macro-3D", "Large 2D", "Large Macro-3D")
	row := func(name string, v func(p *flows.PPA) float64, format string) {
		f := func(x float64) string { return fmt.Sprintf(format, x) }
		fmt.Fprintf(&b, "%-26s %12s %12s %9s %12s %12s %9s\n", name,
			f(v(t.Small2D)), f(v(t.SmallM3D)), pct(v(t.SmallM3D), v(t.Small2D)),
			f(v(t.Large2D)), f(v(t.LargeM3D)), pct(v(t.LargeM3D), v(t.Large2D)))
	}
	row("fclk [MHz]", func(p *flows.PPA) float64 { return p.FclkMHz }, "%.0f")
	row("Emean [fJ/cycle]", func(p *flows.PPA) float64 { return p.EmeanFJ }, "%.1f")
	row("Afootprint [mm²]", func(p *flows.PPA) float64 { return p.FootprintMM2 }, "%.2f")
	row("Alogic-cells [mm²]", func(p *flows.PPA) float64 { return p.LogicCellAreaMM2 }, "%.3f")
	row("Total wirelength [m]", func(p *flows.PPA) float64 { return p.TotalWLm }, "%.2f")
	row("F2F bumps", func(p *flows.PPA) float64 { return float64(p.F2FBumps) }, "%.0f")
	row("Cpin,total [nF]", func(p *flows.PPA) float64 { return p.CpinNF }, "%.3f")
	row("Cwire,total [nF]", func(p *flows.PPA) float64 { return p.CwireNF }, "%.3f")
	row("Max clk-tree depth", func(p *flows.PPA) float64 { return float64(p.ClkDepth) }, "%.0f")
	row("Crit-path WL [mm]", func(p *flows.PPA) float64 { return p.CritPathWLmm }, "%.2f")
	return b.String()
}

// TableIII holds the metal-stack ablation (M6–M6 versus M6–M4).
type TableIII struct {
	SmallM6M6, SmallM6M4 *flows.PPA
	LargeM6M6, LargeM6M4 *flows.PPA
}

// RunTableIII reproduces Table III: removing two metal layers from the
// macro die.
func RunTableIII(seed uint64) (*TableIII, error) {
	t := &TableIII{}
	var err error
	for _, c := range []struct {
		pc     piton.Config
		metals int
		dst    **flows.PPA
	}{
		{piton.SmallCache(), 6, &t.SmallM6M6},
		{piton.SmallCache(), 4, &t.SmallM6M4},
		{piton.LargeCache(), 6, &t.LargeM6M6},
		{piton.LargeCache(), 4, &t.LargeM6M4},
	} {
		cfg := flows.Config{Piton: c.pc, Seed: seed, MacroDieMetals: c.metals}
		p, _, _, err2 := flows.RunMacro3D(cfg)
		if err2 != nil {
			return nil, fmt.Errorf("table III (%s, M6–M%d): %w", c.pc.Name, c.metals, err2)
		}
		*c.dst = p
		_ = err
	}
	return t, nil
}

// Format renders the ablation table.
func (t *TableIII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — impact of removing two macro-die metal layers\n")
	fmt.Fprintf(&b, "%-20s %10s %10s %9s %10s %10s %9s\n", "",
		"S M6–M6", "S M6–M4", "", "L M6–M6", "L M6–M4", "")
	row := func(name string, v func(p *flows.PPA) float64, format string) {
		f := func(x float64) string { return fmt.Sprintf(format, x) }
		fmt.Fprintf(&b, "%-20s %10s %10s %9s %10s %10s %9s\n", name,
			f(v(t.SmallM6M6)), f(v(t.SmallM6M4)), pct(v(t.SmallM6M4), v(t.SmallM6M6)),
			f(v(t.LargeM6M6)), f(v(t.LargeM6M4)), pct(v(t.LargeM6M4), v(t.LargeM6M6)))
	}
	row("fclk [MHz]", func(p *flows.PPA) float64 { return p.FclkMHz }, "%.0f")
	row("Emean [fJ/cycle]", func(p *flows.PPA) float64 { return p.EmeanFJ }, "%.1f")
	row("Ametal [mm²]", func(p *flows.PPA) float64 { return p.MetalAreaMM2 }, "%.1f")
	row("F2F bumps", func(p *flows.PPA) float64 { return float64(p.F2FBumps) }, "%.0f")
	return b.String()
}

// IsoPerf holds the §V-A iso-performance power comparison: Macro-3D
// re-implemented at the 2D design's maximum frequency.
type IsoPerf struct {
	Config   string
	F2DMHz   float64
	Power2D  float64 // µW
	Power3D  float64 // µW at the same frequency
	DeltaPct float64
	PPA2D    *flows.PPA
	PPA3DIso *flows.PPA
}

// RunIsoPerf reproduces the iso-performance comparison for one tile
// configuration.
func RunIsoPerf(pc piton.Config, seed uint64) (*IsoPerf, error) {
	cfg := flows.Config{Piton: pc, Seed: seed}
	p2d, _, err := flows.Run2D(cfg)
	if err != nil {
		return nil, err
	}
	// Re-implement Macro-3D for the 2D design's frequency.
	cfg.TargetPeriod = p2d.MinPeriodPs
	p3d, _, _, err := flows.RunMacro3D(cfg)
	if err != nil {
		return nil, err
	}
	r := &IsoPerf{
		Config:   pc.Name,
		F2DMHz:   p2d.FclkMHz,
		Power2D:  p2d.PowerUW,
		Power3D:  p3d.PowerUW,
		PPA2D:    p2d,
		PPA3DIso: p3d,
	}
	if r.Power2D > 0 {
		r.DeltaPct = 100 * (r.Power3D/r.Power2D - 1)
	}
	return r, nil
}

// Format renders the comparison.
func (r *IsoPerf) Format() string {
	return fmt.Sprintf(
		"Iso-performance (%s, %.0f MHz): 2D %.1f µW, Macro-3D %.1f µW (%+.1f%%)\n",
		r.Config, r.F2DMHz, r.Power2D/1e0, r.Power3D/1e0, r.DeltaPct)
}
