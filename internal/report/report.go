// Package report runs the paper's experiments end to end and formats
// their tables: Table I (max-performance PPA and cost of 2D, MoL S2D,
// BF S2D and Macro-3D on the small-cache tile), Table II (in-depth 2D
// versus Macro-3D for both cache configurations), Table III (the
// heterogeneous-BEOL M6–M4 ablation), and the §V-A iso-performance
// power comparison.
//
// Every driver has a context-aware variant that honours cancellation
// at flow-stage boundaries and can keep going past a failed column:
// the returned table always carries the columns that completed, so a
// cancelled or partially failed experiment still renders (missing
// columns format as "—").
package report

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
)

// column is one experiment cell: a labelled flow run writing its
// result through a pointer into the table under construction.
type column struct {
	name string
	run  func() error
}

// runColumns executes the columns in order. Cancellation is observed
// between columns (and, inside a column, at the flow's own stage
// boundaries). With keepGoing, failed columns are recorded and the
// rest still run; otherwise the first failure stops the table. The
// error joins every column failure, each labelled.
func runColumns(ctx context.Context, label string, keepGoing bool, cols []column) error {
	var errs []error
	for _, c := range cols {
		if err := ctx.Err(); err != nil {
			errs = append(errs, fmt.Errorf("%s %s: %w", label, c.name, err))
			break
		}
		if err := c.run(); err != nil {
			err = fmt.Errorf("%s %s: %w", label, c.name, err)
			if !keepGoing || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return errors.Join(append(errs, err)...)
			}
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// TableI holds the four compared flows on the small-cache tile.
// Columns left nil (run failed, cancelled, or not reached) format
// as "—".
type TableI struct {
	TwoD, S2D, BFS2D, Macro3D *flows.PPA
}

// RunTableI reproduces Table I.
func RunTableI(seed uint64) (*TableI, error) {
	return RunTableIWith(context.Background(), flows.Config{Seed: seed}, false)
}

// RunTableIWith reproduces Table I under the given context and flow
// configuration (hardening knobs — Retry, StageTimeout, Verify —
// apply to every column; an unset tile defaults to the paper's
// small-cache config). The returned table is never nil: columns
// completed before a failure or cancellation are preserved.
func RunTableIWith(ctx context.Context, cfg flows.Config, keepGoing bool) (*TableI, error) {
	if cfg.Piton.Name == "" && cfg.Generator == nil {
		cfg.Piton = piton.SmallCache()
	}
	t := &TableI{}
	err := runColumns(ctx, "table I", keepGoing, []column{
		{"2D", func() (err error) { t.TwoD, _, err = flows.Run2DCtx(ctx, cfg); return }},
		{"MoL S2D", func() (err error) { t.S2D, _, err = flows.RunS2DCtx(ctx, cfg, false); return }},
		{"BF S2D", func() (err error) { t.BFS2D, _, err = flows.RunS2DCtx(ctx, cfg, true); return }},
		{"Macro-3D", func() (err error) { t.Macro3D, _, _, err = flows.RunMacro3DCtx(ctx, cfg); return }},
	})
	return t, err
}

// cell formats one table value, rendering missing columns as "—".
func cell(p *flows.PPA, format string, v func(p *flows.PPA) float64) string {
	if p == nil {
		return "—"
	}
	return fmt.Sprintf(format, v(p))
}

// Format renders the table in the paper's row layout.
func (t *TableI) Format() string {
	cols := []*flows.PPA{t.TwoD, t.S2D, t.BFS2D, t.Macro3D}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — max-performance PPA and cost, small-cache tile\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", "", "2D", "MoL S2D", "BF S2D", "Macro-3D")
	row := func(name, format string, v func(p *flows.PPA) float64) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, p := range cols {
			fmt.Fprintf(&b, " %10s", cell(p, format, v))
		}
		b.WriteByte('\n')
	}
	row("fclk [MHz]", "%.0f", func(p *flows.PPA) float64 { return p.FclkMHz })
	row("Emean [fJ/cycle]", "%.1f", func(p *flows.PPA) float64 { return p.EmeanFJ })
	row("Afootprint [mm²]", "%.2f", func(p *flows.PPA) float64 { return p.FootprintMM2 })
	row("F2F bumps", "%.0f", func(p *flows.PPA) float64 { return float64(p.F2FBumps) })
	return b.String()
}

// TableII holds the in-depth comparison for both configurations.
type TableII struct {
	Small2D, SmallM3D *flows.PPA
	Large2D, LargeM3D *flows.PPA
}

// RunTableII reproduces Table II.
func RunTableII(seed uint64) (*TableII, error) {
	return RunTableIIWith(context.Background(), flows.Config{Seed: seed}, false)
}

// RunTableIIWith reproduces Table II under the given context; cfg
// carries the seed and hardening knobs while the tile is set per
// column (the table inherently compares the small- and large-cache
// configurations). Completed columns survive failure or cancellation.
func RunTableIIWith(ctx context.Context, cfg flows.Config, keepGoing bool) (*TableII, error) {
	t := &TableII{}
	cs, cl := cfg, cfg
	cs.Piton = piton.SmallCache()
	cl.Piton = piton.LargeCache()
	err := runColumns(ctx, "table II", keepGoing, []column{
		{"small 2D", func() (err error) { t.Small2D, _, err = flows.Run2DCtx(ctx, cs); return }},
		{"small Macro-3D", func() (err error) { t.SmallM3D, _, _, err = flows.RunMacro3DCtx(ctx, cs); return }},
		{"large 2D", func() (err error) { t.Large2D, _, err = flows.Run2DCtx(ctx, cl); return }},
		{"large Macro-3D", func() (err error) { t.LargeM3D, _, _, err = flows.RunMacro3DCtx(ctx, cl); return }},
	})
	return t, err
}

func pct(n, d float64) string {
	if d == 0 {
		return "—"
	}
	return fmt.Sprintf("(%+.1f%%)", 100*(n/d-1))
}

// pctCell is the nil-safe relative delta between two columns.
func pctCell(n, d *flows.PPA, v func(p *flows.PPA) float64) string {
	if n == nil || d == nil {
		return "—"
	}
	return pct(v(n), v(d))
}

// Format renders the table with the paper's relative deltas.
func (t *TableII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — in-depth comparison of 2D and Macro-3D designs\n")
	fmt.Fprintf(&b, "%-26s %12s %22s %12s %22s\n", "", "Small 2D", "Small Macro-3D", "Large 2D", "Large Macro-3D")
	row := func(name string, v func(p *flows.PPA) float64, format string) {
		fmt.Fprintf(&b, "%-26s %12s %12s %9s %12s %12s %9s\n", name,
			cell(t.Small2D, format, v), cell(t.SmallM3D, format, v), pctCell(t.SmallM3D, t.Small2D, v),
			cell(t.Large2D, format, v), cell(t.LargeM3D, format, v), pctCell(t.LargeM3D, t.Large2D, v))
	}
	row("fclk [MHz]", func(p *flows.PPA) float64 { return p.FclkMHz }, "%.0f")
	row("Emean [fJ/cycle]", func(p *flows.PPA) float64 { return p.EmeanFJ }, "%.1f")
	row("Afootprint [mm²]", func(p *flows.PPA) float64 { return p.FootprintMM2 }, "%.2f")
	row("Alogic-cells [mm²]", func(p *flows.PPA) float64 { return p.LogicCellAreaMM2 }, "%.3f")
	row("Total wirelength [m]", func(p *flows.PPA) float64 { return p.TotalWLm }, "%.2f")
	row("F2F bumps", func(p *flows.PPA) float64 { return float64(p.F2FBumps) }, "%.0f")
	row("Cpin,total [nF]", func(p *flows.PPA) float64 { return p.CpinNF }, "%.3f")
	row("Cwire,total [nF]", func(p *flows.PPA) float64 { return p.CwireNF }, "%.3f")
	row("Max clk-tree depth", func(p *flows.PPA) float64 { return float64(p.ClkDepth) }, "%.0f")
	row("Crit-path WL [mm]", func(p *flows.PPA) float64 { return p.CritPathWLmm }, "%.2f")
	return b.String()
}

// TableIII holds the metal-stack ablation (M6–M6 versus M6–M4).
type TableIII struct {
	SmallM6M6, SmallM6M4 *flows.PPA
	LargeM6M6, LargeM6M4 *flows.PPA
}

// RunTableIII reproduces Table III: removing two metal layers from the
// macro die.
func RunTableIII(seed uint64) (*TableIII, error) {
	return RunTableIIIWith(context.Background(), flows.Config{Seed: seed}, false)
}

// RunTableIIIWith is the context-aware Table III driver; cfg carries
// the seed and hardening knobs, the tile and macro-die metal count are
// set per column.
func RunTableIIIWith(ctx context.Context, cfg flows.Config, keepGoing bool) (*TableIII, error) {
	t := &TableIII{}
	var cols []column
	for _, c := range []struct {
		pc     piton.Config
		metals int
		dst    **flows.PPA
	}{
		{piton.SmallCache(), 6, &t.SmallM6M6},
		{piton.SmallCache(), 4, &t.SmallM6M4},
		{piton.LargeCache(), 6, &t.LargeM6M6},
		{piton.LargeCache(), 4, &t.LargeM6M4},
	} {
		c := c
		ccfg := cfg
		ccfg.Piton = c.pc
		ccfg.MacroDieMetals = c.metals
		cols = append(cols, column{
			name: fmt.Sprintf("(%s, M6–M%d)", c.pc.Name, c.metals),
			run: func() (err error) {
				*c.dst, _, _, err = flows.RunMacro3DCtx(ctx, ccfg)
				return
			},
		})
	}
	err := runColumns(ctx, "table III", keepGoing, cols)
	return t, err
}

// Format renders the ablation table.
func (t *TableIII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — impact of removing two macro-die metal layers\n")
	fmt.Fprintf(&b, "%-20s %10s %10s %9s %10s %10s %9s\n", "",
		"S M6–M6", "S M6–M4", "", "L M6–M6", "L M6–M4", "")
	row := func(name string, v func(p *flows.PPA) float64, format string) {
		fmt.Fprintf(&b, "%-20s %10s %10s %9s %10s %10s %9s\n", name,
			cell(t.SmallM6M6, format, v), cell(t.SmallM6M4, format, v), pctCell(t.SmallM6M4, t.SmallM6M6, v),
			cell(t.LargeM6M6, format, v), cell(t.LargeM6M4, format, v), pctCell(t.LargeM6M4, t.LargeM6M6, v))
	}
	row("fclk [MHz]", func(p *flows.PPA) float64 { return p.FclkMHz }, "%.0f")
	row("Emean [fJ/cycle]", func(p *flows.PPA) float64 { return p.EmeanFJ }, "%.1f")
	row("Ametal [mm²]", func(p *flows.PPA) float64 { return p.MetalAreaMM2 }, "%.1f")
	row("F2F bumps", func(p *flows.PPA) float64 { return float64(p.F2FBumps) }, "%.0f")
	return b.String()
}

// IsoPerf holds the §V-A iso-performance power comparison: Macro-3D
// re-implemented at the 2D design's maximum frequency.
type IsoPerf struct {
	Config   string
	F2DMHz   float64
	Power2D  float64 // µW
	Power3D  float64 // µW at the same frequency
	DeltaPct float64
	PPA2D    *flows.PPA
	PPA3DIso *flows.PPA
}

// RunIsoPerf reproduces the iso-performance comparison for one tile
// configuration.
func RunIsoPerf(pc piton.Config, seed uint64) (*IsoPerf, error) {
	return RunIsoPerfCtx(context.Background(), pc, seed)
}

// RunIsoPerfCtx is the context-aware iso-performance driver. The two
// runs are inherently sequential (the Macro-3D target period is the
// 2D result), so there is no keep-going mode.
func RunIsoPerfCtx(ctx context.Context, pc piton.Config, seed uint64) (*IsoPerf, error) {
	return RunIsoPerfWith(ctx, flows.Config{Piton: pc, Seed: seed})
}

// RunIsoPerfWith is RunIsoPerfCtx taking a full flow configuration
// (unset tile defaults to small-cache). With a stage cache, the
// Macro-3D iso-performance run hits the max-performance run's place
// and route snapshots — only sign-off reruns at the 2D target.
func RunIsoPerfWith(ctx context.Context, cfg flows.Config) (*IsoPerf, error) {
	if cfg.Piton.Name == "" && cfg.Generator == nil {
		cfg.Piton = piton.SmallCache()
	}
	pc := cfg.Piton
	p2d, _, err := flows.Run2DCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	// Re-implement Macro-3D for the 2D design's frequency.
	cfg.TargetPeriod = p2d.MinPeriodPs
	p3d, _, _, err := flows.RunMacro3DCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	r := &IsoPerf{
		Config:   pc.Name,
		F2DMHz:   p2d.FclkMHz,
		Power2D:  p2d.PowerUW,
		Power3D:  p3d.PowerUW,
		PPA2D:    p2d,
		PPA3DIso: p3d,
	}
	if r.Power2D > 0 {
		r.DeltaPct = 100 * (r.Power3D/r.Power2D - 1)
	}
	return r, nil
}

// Format renders the comparison.
func (r *IsoPerf) Format() string {
	return fmt.Sprintf(
		"Iso-performance (%s, %.0f MHz): 2D %.1f µW, Macro-3D %.1f µW (%+.1f%%)\n",
		r.Config, r.F2DMHz, r.Power2D/1e0, r.Power3D/1e0, r.DeltaPct)
}
