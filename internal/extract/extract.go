// Package extract computes net parasitics from global routes: per-net
// RC trees over the BEOL's layer tables (including via and F2F-bump R
// and C), total wire/pin capacitances, and Elmore delays from the
// driver to every sink. Because Macro-3D routes on the combined
// two-die stack, extraction here *is* the final 3D extraction — no
// post-partitioning re-estimation exists in that flow, which is the
// paper's core accuracy argument.
package extract

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// NetRC is the extracted view of one net.
type NetRC struct {
	Net *netlist.Net

	WireC float64 // fF
	WireR float64 // kΩ (total, for reporting)
	PinC  float64 // fF (sink pins + port loads)

	// ElmoreTo[i] is the wire Elmore delay from the driver to
	// Net.Sinks[i], ps.
	ElmoreTo []float64
}

// CTotal is the total load the driver sees at DC.
func (n *NetRC) CTotal() float64 { return n.WireC + n.PinC }

// Design aggregates extraction over all routed nets.
type Design struct {
	Nets []*NetRC // indexed by net ID; nil for clock/unrouted nets

	CWireTotal float64 // fF
	CPinTotal  float64 // fF
}

// Extract builds RC trees for every routed net at the given corner.
// Nets are independent, so with more than one available CPU the trees
// are built across workers; the capacitance totals are then reduced
// sequentially in net-ID order, which keeps every float result
// bit-identical to the serial pass.
func Extract(d *netlist.Design, res *route.Result, db *route.DB, corner tech.CornerScale) *Design {
	out := &Design{Nets: make([]*NetRC, len(d.Nets))}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(d.Nets) >= 256 {
		var wg sync.WaitGroup
		chunk := (len(d.Nets) + workers - 1) / workers
		for lo := 0; lo < len(d.Nets); lo += chunk {
			hi := lo + chunk
			if hi > len(d.Nets) {
				hi = len(d.Nets)
			}
			wg.Add(1)
			go func(nets []*netlist.Net) {
				defer wg.Done()
				for _, n := range nets {
					if r := res.Routes[n.ID]; r != nil {
						out.Nets[n.ID] = extractNet(n, r, db, corner)
					}
				}
			}(d.Nets[lo:hi])
		}
		wg.Wait()
		for _, rc := range out.Nets {
			if rc != nil {
				out.CWireTotal += rc.WireC
				out.CPinTotal += rc.PinC
			}
		}
		return out
	}
	for _, n := range d.Nets {
		r := res.Routes[n.ID]
		if r == nil {
			continue
		}
		rc := extractNet(n, r, db, corner)
		out.Nets[n.ID] = rc
		out.CWireTotal += rc.WireC
		out.CPinTotal += rc.PinC
	}
	return out
}

// One re-extracts a single net (after sizing changed its pin caps or a
// reroute changed its segments) and returns the fresh RC view. The
// caller is responsible for replacing the entry in Design.Nets and
// adjusting the design totals.
func One(n *netlist.Net, r *route.NetRoute, db *route.DB, corner tech.CornerScale) *NetRC {
	return extractNet(n, r, db, corner)
}

// Replace swaps the RC entry for a net and maintains the totals. Pass
// nil rc to remove.
func (d *Design) Replace(netID int, rc *NetRC) {
	for netID >= len(d.Nets) {
		d.Nets = append(d.Nets, nil)
	}
	if old := d.Nets[netID]; old != nil {
		d.CWireTotal -= old.WireC
		d.CPinTotal -= old.PinC
	}
	d.Nets[netID] = rc
	if rc != nil {
		d.CWireTotal += rc.WireC
		d.CPinTotal += rc.PinC
	}
}

// CheckFinite scans the extraction for NaN/Inf parasitics — the
// symptom of corrupt geometry or layer tables upstream — and returns
// a descriptive error naming the first offending net and quantity.
// Flows run it after every extraction so non-finite values become
// stage failures instead of NaN rows in the PPA tables.
func (d *Design) CheckFinite() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	for _, rc := range d.Nets {
		if rc == nil {
			continue
		}
		name := "?"
		if rc.Net != nil {
			name = rc.Net.Name
		}
		switch {
		case bad(rc.WireC):
			return fmt.Errorf("extract: non-finite wire capacitance %v on net %s", rc.WireC, name)
		case bad(rc.WireR):
			return fmt.Errorf("extract: non-finite wire resistance %v on net %s", rc.WireR, name)
		case bad(rc.PinC):
			return fmt.Errorf("extract: non-finite pin capacitance %v on net %s", rc.PinC, name)
		}
		for i, el := range rc.ElmoreTo {
			if bad(el) {
				return fmt.Errorf("extract: non-finite Elmore delay %v to sink %d of net %s", el, i, name)
			}
		}
	}
	if bad(d.CWireTotal) || bad(d.CPinTotal) {
		return fmt.Errorf("extract: non-finite capacitance totals (wire %v, pin %v)", d.CWireTotal, d.CPinTotal)
	}
	return nil
}

// node key for the electrical graph.
type eNode = route.Node

type eEdge struct {
	to eNode
	r  float64
}

// extractNet builds the RC tree of one net and runs Elmore.
func extractNet(n *netlist.Net, r *route.NetRoute, db *route.DB, corner tech.CornerScale) *NetRC {
	rc := &NetRC{Net: n, ElmoreTo: make([]float64, len(n.Sinks))}

	adj := make(map[eNode][]eEdge)
	capAt := make(map[eNode]float64)
	addEdge := func(a, b eNode, res float64, c float64) {
		adj[a] = append(adj[a], eEdge{b, res})
		adj[b] = append(adj[b], eEdge{a, res})
		capAt[a] += c / 2
		capAt[b] += c / 2
		rc.WireR += res
	}

	for _, s := range r.Segments {
		if s.IsVia() {
			lo := s.A.L
			if s.B.L < lo {
				lo = s.B.L
			}
			v := db.Beol.Vias[lo]
			res := v.R * corner.WireR
			c := v.C * corner.WireC
			rc.WireC += c
			addEdge(s.A, s.B, res, c)
			continue
		}
		ly := db.Beol.Layers[s.A.L]
		length := float64(abs(s.B.X-s.A.X))*db.Grid.DX + float64(abs(s.B.Y-s.A.Y))*db.Grid.DY
		res := length * ly.RPerUm * corner.WireR
		c := length * ly.CPerUm * corner.WireC
		rc.WireC += c
		addEdge(s.A, s.B, res, c)
	}

	// Pin caps at their nodes.
	pins := n.Pins()
	for i, p := range pins {
		if i == 0 {
			continue // driver contributes no load to itself
		}
		capAt[r.PinNode[i]] += p.Cap()
		rc.PinC += p.Cap()
	}

	if len(pins) < 2 {
		return rc
	}
	driver := r.PinNode[0]

	// BFS tree from the driver (the routed graph can contain parallel
	// connections from overlapping MST paths; first-found parent
	// wins).
	parent := map[eNode]*eEdge{}
	order := []eNode{driver}
	seen := map[eNode]bool{driver: true}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for i := range adj[u] {
			e := adj[u][i]
			if !seen[e.to] {
				seen[e.to] = true
				parent[e.to] = &eEdge{to: u, r: e.r}
				order = append(order, e.to)
			}
		}
	}

	// Downstream capacitance by reverse BFS order.
	down := make(map[eNode]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		down[u] += capAt[u]
		if p := parent[u]; p != nil {
			down[p.to] += down[u]
		}
	}

	// Elmore from driver to each node: delay(u) = delay(parent) +
	// R_edge × downstream(u). kΩ·fF = ps.
	delay := make(map[eNode]float64, len(order))
	for _, u := range order {
		if p := parent[u]; p != nil {
			delay[u] = delay[p.to] + p.r*down[u]
		}
	}
	for i := range n.Sinks {
		rc.ElmoreTo[i] = delay[r.PinNode[i+1]]
	}
	return rc
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
