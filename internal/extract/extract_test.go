package extract

import (
	"math"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

func typical() tech.CornerScale {
	return tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
}

func setup(t *testing.T, dx, dy float64) (*netlist.Design, *route.DB, *route.Result) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("x", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X4"))
	a.Loc = geom.Pt(10, 10)
	b := d.AddInstance("b", lib.MustCell("INV_X1"))
	b.Loc = geom.Pt(10+dx, 10+dy)
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(b, "A"))
	beol, err := tech.NewBEOL28("logic", 6)
	if err != nil {
		t.Fatal(err)
	}
	db := route.NewDB(geom.R(0, 0, dx+dy+200, dx+dy+200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	return d, db, res
}

func TestExtractTwoPin(t *testing.T) {
	d, db, res := setup(t, 300, 100)
	ex := Extract(d, res, db, typical())
	rc := ex.Nets[0]
	if rc == nil {
		t.Fatal("net not extracted")
	}
	// Wire C should be roughly length × cPer (≈0.2 fF/µm): 400 µm ≈
	// 80 fF plus vias.
	if rc.WireC < 40 || rc.WireC > 200 {
		t.Fatalf("WireC = %v fF for ~400 µm", rc.WireC)
	}
	sinkCap := d.Instances[1].Master.Pin("A").Cap
	if math.Abs(rc.PinC-sinkCap) > 1e-9 {
		t.Fatalf("PinC = %v, want %v", rc.PinC, sinkCap)
	}
	if rc.CTotal() <= rc.WireC {
		t.Fatal("CTotal must include pins")
	}
	if len(rc.ElmoreTo) != 1 || rc.ElmoreTo[0] <= 0 {
		t.Fatalf("Elmore = %v", rc.ElmoreTo)
	}
	if ex.CWireTotal != rc.WireC || ex.CPinTotal != rc.PinC {
		t.Fatal("design totals wrong")
	}
}

func TestElmoreGrowsQuadratically(t *testing.T) {
	// Unbuffered wire Elmore grows ~L²; doubling length should grow
	// delay by clearly more than 2×.
	_, db1, res1 := setup(t, 200, 0)
	d1, db1b, res1b := setup(t, 200, 0)
	_ = db1
	_ = res1
	ex1 := Extract(d1, res1b, db1b, typical())

	d2, db2, res2 := setup(t, 400, 0)
	ex2 := Extract(d2, res2, db2, typical())

	e1 := ex1.Nets[0].ElmoreTo[0]
	e2 := ex2.Nets[0].ElmoreTo[0]
	if e2 < 2.5*e1 {
		t.Fatalf("Elmore scaling: %v → %v (ratio %.2f), want superlinear", e1, e2, e2/e1)
	}
}

func TestCornerScaling(t *testing.T) {
	d, db, res := setup(t, 300, 0)
	typ := Extract(d, res, db, typical())
	slow := Extract(d, res, db, tech.CornerScale{CellDelay: 1.25, WireR: 1.12, WireC: 1.05, Leakage: 1})
	if slow.Nets[0].WireC <= typ.Nets[0].WireC {
		t.Fatal("slow corner wire C not larger")
	}
	if slow.Nets[0].ElmoreTo[0] <= typ.Nets[0].ElmoreTo[0] {
		t.Fatal("slow corner Elmore not larger")
	}
	// Elmore scales ≈ R·C factors.
	want := typ.Nets[0].ElmoreTo[0] * 1.12 * 1.05
	if math.Abs(slow.Nets[0].ElmoreTo[0]-want)/want > 0.15 {
		t.Fatalf("Elmore corner scale: got %v want ≈%v", slow.Nets[0].ElmoreTo[0], want)
	}
}

func TestMultiSinkElmoreOrdering(t *testing.T) {
	// Driver with near and far sinks: far sink has larger Elmore.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("fan", lib)
	a := d.AddInstance("a", lib.MustCell("BUF_X8"))
	a.Loc = geom.Pt(10, 200)
	near := d.AddInstance("near", lib.MustCell("INV_X1"))
	near.Loc = geom.Pt(60, 200)
	far := d.AddInstance("far", lib.MustCell("INV_X1"))
	far.Loc = geom.Pt(700, 200)
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(near, "A"), netlist.IPin(far, "A"))
	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, 800, 400), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	ex := Extract(d, res, db, typical())
	rc := ex.Nets[0]
	if rc.ElmoreTo[0] >= rc.ElmoreTo[1] {
		t.Fatalf("near sink (%v ps) slower than far sink (%v ps)", rc.ElmoreTo[0], rc.ElmoreTo[1])
	}
	if rc.PinC != near.Master.Pin("A").Cap+far.Master.Pin("A").Cap {
		t.Fatalf("PinC = %v", rc.PinC)
	}
}

func TestF2FViaAddsRC(t *testing.T) {
	// Same geometry, one route on a plain stack, one through the
	// macro die: the F2F route carries the bump's extra C.
	logic, _ := tech.NewBEOL28("logic", 6)
	macro, _ := tech.NewBEOL28("macro", 4)
	comb, err := tech.Combine(logic, macro, tech.DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("x", lib)
	a := d.AddInstance("a", lib.MustCell("INV_X1"))
	a.Loc = geom.Pt(10, 10)
	mm := &cell.Cell{
		Name: "mac", Kind: cell.KindMacro, Width: 50, Height: 50,
		Pins: []cell.Pin{{Name: "D", Dir: cell.DirIn, Cap: 2, Layer: "M4_MD",
			Offset: geom.Pt(25, 25)}},
	}
	m := d.AddInstance("m", mm)
	m.Loc = geom.Pt(300, 300)
	m.Fixed, m.Placed = true, true
	d.AddNet("n", netlist.IPin(a, "Y"), netlist.IPin(m, "D"))

	db := route.NewDB(geom.R(0, 0, 500, 500), comb, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.F2FBumps != 1 {
		t.Fatalf("bumps = %d", res.F2FBumps)
	}
	ex := Extract(d, res, db, typical())
	rc := ex.Nets[0]
	if rc.ElmoreTo[0] <= 0 || rc.WireC <= 0 {
		t.Fatal("no RC extracted through F2F")
	}
}

func TestUnroutedNetSkipped(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("c", lib)
	p := d.AddPort("clk", cell.DirIn)
	ff := d.AddInstance("ff", lib.MustCell("DFF_X1"))
	n := d.AddNet("clk", netlist.PPin(p), netlist.IPin(ff, "CK"))
	n.Clock = true
	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, 100, 100), beol, nil, route.Options{})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	ex := Extract(d, res, db, typical())
	if ex.Nets[0] != nil {
		t.Fatal("clock net extracted by signal extractor")
	}
}

func TestElmoreUpperBound(t *testing.T) {
	// Property: Elmore to any sink never exceeds total path R × total
	// C (the lumped worst case).
	for _, span := range []float64{100, 400, 900} {
		d, db, res := setup(t, span, span/3)
		ex := Extract(d, res, db, typical())
		rc := ex.Nets[0]
		bound := rc.WireR * rc.CTotal()
		for i, e := range rc.ElmoreTo {
			if e > bound+1e-9 {
				t.Fatalf("span %v sink %d: Elmore %v exceeds lumped bound %v", span, i, e, bound)
			}
			if e < 0 {
				t.Fatalf("negative Elmore %v", e)
			}
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	d, db, res := setup(t, 350, 120)
	a := Extract(d, res, db, typical())
	b := Extract(d, res, db, typical())
	if a.CWireTotal != b.CWireTotal || a.CPinTotal != b.CPinTotal {
		t.Fatal("extraction not deterministic")
	}
	if a.Nets[0].ElmoreTo[0] != b.Nets[0].ElmoreTo[0] {
		t.Fatal("Elmore not deterministic")
	}
}

func TestReplaceMaintainsTotals(t *testing.T) {
	d, db, res := setup(t, 300, 100)
	ex := Extract(d, res, db, typical())
	w0, p0 := ex.CWireTotal, ex.CPinTotal
	rc := ex.Nets[0]
	// Re-extract the same net and replace: totals unchanged.
	ex.Replace(0, One(d.Nets[0], res.Routes[0], db, typical()))
	if ex.CWireTotal != w0 || ex.CPinTotal != p0 {
		t.Fatalf("totals drifted: %v/%v vs %v/%v", ex.CWireTotal, ex.CPinTotal, w0, p0)
	}
	// Remove: totals drop by the net's contribution.
	ex.Replace(0, nil)
	if ex.CWireTotal != w0-rc.WireC || ex.CPinTotal != p0-rc.PinC {
		t.Fatal("removal accounting wrong")
	}
}
