package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"macro3d/internal/obs/trace"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	for _, n := range []int{1, 2, 7} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestChunksCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 9} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			seen := make([]int32, n)
			Chunks(workers, n, func(w, lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestChunksWorkerIndexDense(t *testing.T) {
	const workers, n = 4, 100
	var used [workers]int32
	Chunks(workers, n, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
			return
		}
		atomic.AddInt32(&used[w], 1)
	})
	for w, c := range used {
		if c != 1 {
			t.Fatalf("worker %d ran %d chunks", w, c)
		}
	}
}

func TestChunksSerialInline(t *testing.T) {
	calls := 0
	Chunks(1, 50, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 50 {
			t.Fatalf("serial path got (%d,%d,%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial path called fn %d times", calls)
	}
}

func TestItems(t *testing.T) {
	const n = 37
	seen := make([]int32, n)
	Items(4, n, func(w, i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d visited %d times", i, c)
		}
	}
}

func TestChunksTrNilSetMatchesChunks(t *testing.T) {
	const n = 40
	seen := make([]int32, n)
	ChunksTr(nil, "x", 4, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("nil-set ChunksTr: index %d visited %d times", i, c)
		}
	}
	seen = make([]int32, n)
	ItemsTr(nil, "x", 4, n, func(w, i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("nil-set ItemsTr: item %d visited %d times", i, c)
		}
	}
}

func TestChunksTrRecordsOneSlicePerChunk(t *testing.T) {
	tr := trace.New()
	ts := tr.WorkerSet("route", 4)
	const n = 100
	seen := make([]int32, n)
	ChunksTr(ts, "route/batch", 4, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	ItemsTr(ts, "route/prep", 4, n, func(w, i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 2 {
			t.Fatalf("index %d visited %d times, want 2", i, c)
		}
	}
	var slices []trace.Slice
	for _, k := range tr.Tracks() {
		slices = append(slices, k.Slices()...)
	}
	if len(slices) != 8 {
		t.Fatalf("got %d slices, want 8 (4 chunks × 2 fan-outs)", len(slices))
	}
	var items int64
	steps := map[int64]int{}
	for _, sl := range slices {
		if sl.Cat != "route" || sl.Step == 0 {
			t.Fatalf("bad slice %+v", sl)
		}
		steps[sl.Step]++
		if len(sl.Args) != 1 || sl.Args[0].Key != "items" {
			t.Fatalf("missing items arg: %+v", sl)
		}
		items += sl.Args[0].Val
	}
	if len(steps) != 2 {
		t.Fatalf("got %d distinct steps, want 2", len(steps))
	}
	if items != 2*n {
		t.Fatalf("items sum %d, want %d", items, 2*n)
	}
}

func TestChunksTrSerialInlineStillTraces(t *testing.T) {
	tr := trace.New()
	ts := tr.WorkerSet("place", 1)
	ChunksTr(ts, "place/solve", 1, 50, func(w, lo, hi int) {})
	sl := tr.Track("worker 0").Slices()
	if len(sl) != 1 || sl[0].Step == 0 || sl[0].Args[0].Val != 50 {
		t.Fatalf("inline traced run: %+v", sl)
	}
}

// TestChunksBusyTimeInline pins the serial accounting contract: an
// inline run (workers == 1) reports its wall time as busy time.
func TestChunksBusyTimeInline(t *testing.T) {
	const d = 20 * time.Millisecond
	busy := Chunks(1, 10, func(w, lo, hi int) { time.Sleep(d) })
	if busy < d {
		t.Fatalf("inline busy %v, want ≥ %v", busy, d)
	}
	if busy > 50*d {
		t.Fatalf("inline busy %v implausibly large", busy)
	}
}

// TestChunksBusyTimeSums pins the parallel accounting contract: the
// returned duration is the SUM of per-worker busy times, not the wall
// time — four workers sleeping d each report ≥ 4d even though they
// sleep concurrently and the wall clock advances by roughly d. This is
// the numerator of every worker-utilization gauge.
func TestChunksBusyTimeSums(t *testing.T) {
	const workers = 4
	const d = 20 * time.Millisecond
	t0 := time.Now()
	busy := Chunks(workers, workers, func(w, lo, hi int) { time.Sleep(d) })
	wall := time.Since(t0)
	if busy < workers*d {
		t.Fatalf("summed busy %v, want ≥ %v", busy, workers*d)
	}
	// Sleeps overlap regardless of CPU count, so summed busy must
	// exceed wall — the signature of per-worker accounting.
	if busy <= wall {
		t.Fatalf("busy %v not above wall %v: accounting looks wall-clock-based", busy, wall)
	}
}

// TestChunksBusyTimeEmpty pins the degenerate case: no items, no busy
// time.
func TestChunksBusyTimeEmpty(t *testing.T) {
	if busy := Chunks(4, 0, func(w, lo, hi int) { time.Sleep(time.Millisecond) }); busy != 0 {
		t.Fatalf("empty fan-out reported busy %v", busy)
	}
}

// TestChunksTrBusyTimeMatches pins that tracing does not change the
// accounting: the traced forms report the same summed-busy semantics
// as the plain ones (within the tracing overhead).
func TestChunksTrBusyTimeMatches(t *testing.T) {
	const workers = 3
	const d = 15 * time.Millisecond
	tr := trace.New()
	ts := tr.WorkerSet("route", workers)
	busy := ChunksTr(ts, "route/batch", workers, workers, func(w, lo, hi int) { time.Sleep(d) })
	if busy < workers*d {
		t.Fatalf("traced summed busy %v, want ≥ %v", busy, workers*d)
	}
	busy = ItemsTr(ts, "route/prep", workers, workers, func(w, i int) { time.Sleep(d) })
	if busy < workers*d {
		t.Fatalf("traced per-item summed busy %v, want ≥ %v", busy, workers*d)
	}
}

// TestUtilizationRatioFromBusy ties the accounting to the gauge the
// engines publish: utilization = busy / (workers × wall) lands in a
// plausible (0, 1] band for balanced CPU-free work, and the perfectly
// balanced sleep case approaches 1.
func TestUtilizationRatioFromBusy(t *testing.T) {
	const workers = 4
	const d = 25 * time.Millisecond
	t0 := time.Now()
	busy := Chunks(workers, workers, func(w, lo, hi int) { time.Sleep(d) })
	wall := time.Since(t0)
	util := busy.Seconds() / (wall.Seconds() * workers)
	if util <= 0.5 || util > 1.01 {
		t.Fatalf("utilization %0.3f outside (0.5, 1.01]: busy %v wall %v", util, busy, wall)
	}
}
