// Package par holds the small deterministic fan-out primitives shared
// by the parallel routing and placement engines: contiguous index
// chunking with one goroutine per worker, worker-count resolution, and
// aggregate busy-time accounting feeding the worker-utilization
// gauges.
//
// Determinism is the caller's contract: workers must write only to
// disjoint state (distinct slice elements, per-worker scratch), and
// any floating-point reduction must be replayed in a fixed order after
// the barrier — never summed per-chunk. Every engine built on this
// package keeps a pure serial reference path (workers == 1) that the
// equivalence tests compare against bit-for-bit.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"macro3d/internal/obs/trace"
)

// Workers resolves a requested worker count: n <= 0 selects
// GOMAXPROCS (use every available CPU), anything else is returned
// unchanged. 1 means the serial reference path.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Chunks splits [0, n) into at most `workers` contiguous chunks and
// runs fn(worker, lo, hi) concurrently, one goroutine per chunk. The
// worker index is dense in [0, workers) so callers can address
// per-worker scratch. With workers <= 1 or n <= 1 fn runs inline as
// fn(0, 0, n) — no goroutines, the serial reference path.
//
// The returned duration is the summed busy time across workers
// (inline runs report their wall time), for utilization metrics.
func Chunks(workers, n int, fn func(w, lo, hi int)) time.Duration {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t0 := time.Now()
		fn(0, 0, n)
		return time.Since(t0)
	}
	chunk := (n + workers - 1) / workers
	var busy atomic.Int64
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			fn(w, lo, hi)
			busy.Add(int64(time.Since(t0)))
		}(w, lo, hi)
		w++
	}
	wg.Wait()
	return time.Duration(busy.Load())
}

// Items runs fn(worker, i) for every i in [0, n) using Chunks — the
// per-item convenience form.
func Items(workers, n int, fn func(w, i int)) time.Duration {
	return Chunks(workers, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// ChunksTr is Chunks with execution tracing: each chunk records one
// slice named `name` on worker w's track, all stamped with a fresh
// fork-join step id, with the chunk size attached. A nil Set falls
// straight through to Chunks — one pointer comparison, so the traced
// call sites stay on the engines' hot paths unconditionally. Tracing
// wraps fn without reordering or altering it, preserving the
// bit-identical-results contract.
func ChunksTr(ts *trace.Set, name string, workers, n int, fn func(w, lo, hi int)) time.Duration {
	if ts == nil {
		return Chunks(workers, n, fn)
	}
	ts.NextStep()
	return Chunks(workers, n, func(w, lo, hi int) {
		sp := ts.Begin(w, name)
		fn(w, lo, hi)
		sp.End(trace.N("items", int64(hi-lo)))
	})
}

// ItemsTr is Items with execution tracing; see ChunksTr.
func ItemsTr(ts *trace.Set, name string, workers, n int, fn func(w, i int)) time.Duration {
	if ts == nil {
		return Items(workers, n, fn)
	}
	ts.NextStep()
	return Chunks(workers, n, func(w, lo, hi int) {
		sp := ts.Begin(w, name)
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
		sp.End(trace.N("items", int64(hi-lo)))
	})
}
