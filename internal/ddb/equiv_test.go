package ddb_test

import (
	"runtime"
	"testing"

	"macro3d/internal/flows"
	"macro3d/internal/piton"
)

// TestIncrementalEquivalence is the equivalence property test for the
// incremental engine: every flow runs with SelfCheck enabled, so after
// each optimization iteration the journal-maintained extraction and
// the incremental STA report are compared against a from-scratch
// extract.Extract + sta.Analyze (1e-9 tolerance, per-sink Elmore,
// WNS/TNS and path order). Any divergence fails the flow's opt stage.
//
// GOMAXPROCS is raised so the parallel full-pass paths (chunked
// extraction, wave-parallel STA) are exercised too — including under
// -race, which `make check` runs on this package.
func TestIncrementalEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	type cacheCfg struct {
		name string
		pc   piton.Config
	}
	cfgs := []cacheCfg{{"small", piton.SmallCache()}}
	if !testing.Short() && !raceEnabled {
		cfgs = append(cfgs, cacheCfg{"large", piton.LargeCache()})
	}
	for _, cc := range cfgs {
		cfg := flows.Config{Piton: cc.pc, Seed: 1, SelfCheck: true}
		t.Run(cc.name+"/2d", func(t *testing.T) {
			if _, _, err := flows.Run2D(cfg); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(cc.name+"/macro3d", func(t *testing.T) {
			if _, _, _, err := flows.RunMacro3D(cfg); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(cc.name+"/s2d", func(t *testing.T) {
			if _, _, err := flows.RunS2D(cfg, false); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(cc.name+"/bf-s2d", func(t *testing.T) {
			if _, _, err := flows.RunS2D(cfg, true); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(cc.name+"/c2d", func(t *testing.T) {
			if _, _, err := flows.RunC2D(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
