//go:build race

package ddb_test

// raceEnabled reports whether this test binary was built with the race
// detector. The equivalence property test drops the large-cache config
// under -race: the instrumentation slows the full flows by an order of
// magnitude, past any reasonable package timeout, while the small-cache
// run already exercises every parallel code path.
const raceEnabled = true
