package ddb

import (
	"macro3d/internal/cell"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
)

// Txn is one journaled edit bundle. All mutations of the design tuple
// go through its methods; each records the touched net/instance ids and
// saves first-touch undo state, so the bundle can be either committed
// (undo state dropped) or rolled back in O(edits).
type Txn struct {
	db *DB

	// Design size at Begin: ids at or above these are additions of this
	// transaction and are truncated away on rollback.
	baseInsts int
	baseNets  int

	// First-touch saves for pre-existing objects.
	savedSinks  map[int][]netlist.PinRef
	sinksOrder  []int
	savedMaster map[*netlist.Instance]*cell.Cell
	savedLoc    map[*netlist.Instance]geom.Point
	savedRoute  map[int]*route.NetRoute
	savedRC     map[int]*extract.NetRC
	routeOrder  []int

	dirtyNets  intSet
	dirtyInsts intSet
	topo       bool
	done       bool
}

// Begin opens a transaction over the current state.
func (db *DB) Begin() *Txn {
	nInst, nNets := db.Design.Counts()
	return &Txn{
		db:          db,
		baseInsts:   nInst,
		baseNets:    nNets,
		savedSinks:  map[int][]netlist.PinRef{},
		savedMaster: map[*netlist.Instance]*cell.Cell{},
		savedLoc:    map[*netlist.Instance]geom.Point{},
		savedRoute:  map[int]*route.NetRoute{},
		savedRC:     map[int]*extract.NetRC{},
	}
}

// DirtyNets returns the touched net ids in ascending order. Valid while
// the transaction is open — the incremental STA engine consumes it
// before the accept/reject decision.
func (t *Txn) DirtyNets() []int { return t.dirtyNets.sortedBelow(int(^uint(0) >> 1)) }

// DirtyInsts returns the touched instance ids in ascending order.
func (t *Txn) DirtyInsts() []int { return t.dirtyInsts.sortedBelow(int(^uint(0) >> 1)) }

// TopoChanged reports whether connectivity changed (instances or nets
// added, sink membership edited) — the signal that levelization and
// adjacency caches must be rebuilt.
func (t *Txn) TopoChanged() bool { return t.topo }

// Resize swaps an instance's master through the netlist's family
// check. The old master is saved on first touch.
func (t *Txn) Resize(inst *netlist.Instance, to *cell.Cell) error {
	old := inst.Master
	if err := t.db.Design.Resize(inst, to); err != nil {
		return err
	}
	t.noteMaster(inst, old)
	return nil
}

// SetMaster swaps a master unchecked — the fault-injection path, which
// deliberately installs degenerate masters the family check would
// reject.
func (t *Txn) SetMaster(inst *netlist.Instance, to *cell.Cell) {
	old := inst.Master
	inst.Master = to
	t.noteMaster(inst, old)
}

func (t *Txn) noteMaster(inst *netlist.Instance, old *cell.Cell) {
	if inst.ID < t.baseInsts {
		if _, ok := t.savedMaster[inst]; !ok {
			t.savedMaster[inst] = old
		}
	}
	t.dirtyInsts.add(inst.ID)
}

// SetLoc moves an instance (ECO placement).
func (t *Txn) SetLoc(inst *netlist.Instance, p geom.Point) {
	if inst.ID < t.baseInsts {
		if _, ok := t.savedLoc[inst]; !ok {
			t.savedLoc[inst] = inst.Loc
		}
	}
	inst.Loc = p
	t.dirtyInsts.add(inst.ID)
}

// AddInstance appends a new instance (buffer insertion). Rollback
// removes it via truncation.
func (t *Txn) AddInstance(name string, master *cell.Cell) *netlist.Instance {
	inst := t.db.Design.AddInstance(name, master)
	t.db.drivenI = append(t.db.drivenI, nil)
	t.db.inputs = append(t.db.inputs, nil)
	t.dirtyInsts.add(inst.ID)
	t.topo = true
	return inst
}

// AddNet appends a new net and indexes its driver/sink adjacency.
func (t *Txn) AddNet(name string, driver netlist.PinRef, sinks ...netlist.PinRef) *netlist.Net {
	n := t.db.Design.AddNet(name, driver, sinks...)
	id := int32(n.ID)
	if driver.Port != nil {
		t.db.drivenP[driver.Port.ID] = append(t.db.drivenP[driver.Port.ID], id)
	} else if driver.Inst != nil {
		t.db.drivenI[driver.Inst.ID] = append(t.db.drivenI[driver.Inst.ID], id)
	}
	if !n.Clock {
		for _, s := range n.Sinks {
			if s.Inst != nil {
				t.db.addInput(s.Inst.ID, id)
				t.dirtyInsts.add(s.Inst.ID)
			}
		}
	}
	t.dirtyNets.add(n.ID)
	t.topo = true
	return n
}

func (t *Txn) saveSinks(n *netlist.Net) {
	if n.ID >= t.baseNets {
		return
	}
	if _, ok := t.savedSinks[n.ID]; ok {
		return
	}
	t.savedSinks[n.ID] = append([]netlist.PinRef(nil), n.Sinks...)
	t.sinksOrder = append(t.sinksOrder, n.ID)
}

// RemoveSinkAt detaches and returns the sink at index si of net n.
func (t *Txn) RemoveSinkAt(n *netlist.Net, si int) netlist.PinRef {
	t.saveSinks(n)
	s := n.Sinks[si]
	n.Sinks = append(n.Sinks[:si], n.Sinks[si+1:]...)
	if s.Inst != nil && !n.Clock {
		if !sinksOn(n, s.Inst) {
			t.db.removeInput(s.Inst.ID, int32(n.ID))
		}
		t.dirtyInsts.add(s.Inst.ID)
	}
	t.dirtyNets.add(n.ID)
	t.topo = true
	return s
}

// AppendSink attaches a sink to net n.
func (t *Txn) AppendSink(n *netlist.Net, s netlist.PinRef) {
	t.saveSinks(n)
	n.Sinks = append(n.Sinks, s)
	if s.Inst != nil && !n.Clock {
		t.db.addInput(s.Inst.ID, int32(n.ID))
		t.dirtyInsts.add(s.Inst.ID)
	}
	t.dirtyNets.add(n.ID)
	t.topo = true
}

// ReplaceSinks swaps net n's sink list wholesale (fanout decoupling:
// the driver keeps only the shield buffer inputs).
func (t *Txn) ReplaceSinks(n *netlist.Net, sinks []netlist.PinRef) {
	t.saveSinks(n)
	old := n.Sinks
	n.Sinks = sinks
	if !n.Clock {
		for _, s := range old {
			if s.Inst != nil {
				if !sinksOn(n, s.Inst) {
					t.db.removeInput(s.Inst.ID, int32(n.ID))
				}
				t.dirtyInsts.add(s.Inst.ID)
			}
		}
		for _, s := range n.Sinks {
			if s.Inst != nil {
				t.db.addInput(s.Inst.ID, int32(n.ID))
				t.dirtyInsts.add(s.Inst.ID)
			}
		}
	}
	t.dirtyNets.add(n.ID)
	t.topo = true
}

func (t *Txn) saveRouteRC(id int) {
	if id >= t.baseNets {
		return
	}
	if _, ok := t.savedRoute[id]; ok {
		return
	}
	var old *route.NetRoute
	if id < len(t.db.Routes.Routes) {
		old = t.db.Routes.Routes[id]
	}
	var oldRC *extract.NetRC
	if id < len(t.db.Ex.Nets) {
		oldRC = t.db.Ex.Nets[id]
	}
	t.savedRoute[id] = old
	t.savedRC[id] = oldRC
	t.routeOrder = append(t.routeOrder, id)
}

// Reroute re-routes net n (releasing any existing route's usage first)
// and patches its RC tree in place — the incremental extraction step.
func (t *Txn) Reroute(n *netlist.Net) error {
	t.saveRouteRC(n.ID)
	if n.ID < len(t.db.Routes.Routes) {
		if old := t.db.Routes.Routes[n.ID]; old != nil {
			t.db.Grid.ReleaseNet(old)
		}
	}
	r, err := t.db.Grid.RouteNet(n)
	if err != nil {
		return err
	}
	t.db.Routes.SetRoute(n.ID, r)
	t.db.Ex.Replace(n.ID, extract.One(n, r, t.db.Grid, t.db.Corner))
	t.dirtyNets.add(n.ID)
	t.db.Obs.Reg().Counter("ddb_incremental_reroutes_total",
		"Per-net incremental reroute+re-extract operations (Txn.Reroute).").Inc()
	return nil
}

// DropRoute discards a net's route without re-routing — the
// dangling-net fault injection. Usage is deliberately left unreleased,
// mirroring the corruption this fault models (a route table entry lost
// after the router accounted for it).
func (t *Txn) DropRoute(n *netlist.Net) {
	t.saveRouteRC(n.ID)
	if n.ID < len(t.db.Routes.Routes) {
		t.db.Routes.SetRoute(n.ID, nil)
	}
	t.dirtyNets.add(n.ID)
}

// Commit finalizes the bundle: undo state is dropped, the edits stay.
func (t *Txn) Commit() {
	t.done = true
	t.savedSinks, t.savedMaster, t.savedLoc = nil, nil, nil
	t.savedRoute, t.savedRC = nil, nil
	if reg := t.db.Obs.Reg(); reg != nil {
		reg.Counter("ddb_txn_commits_total",
			"Committed design-database transactions.").Inc()
		reg.Counter("ddb_txn_dirty_nets_total",
			"Net touches across committed transactions.").Add(uint64(len(t.dirtyNets.ids)))
		reg.Counter("ddb_txn_dirty_insts_total",
			"Instance touches across committed transactions.").Add(uint64(len(t.dirtyInsts.ids)))
	}
}

// Rollback undoes every edit of the bundle in O(edits): restores saved
// routes (by the same ±1 usage increments the router applied), RC
// trees, sink lists, masters and locations, and truncates appended
// instances and nets. It returns the surviving dirty view — the ids
// that existed before the transaction and were touched by it — which
// the caller feeds to the STA engine so its incremental state
// re-converges onto the restored design.
func (t *Txn) Rollback() (nets, insts []int, topo bool) {
	db := t.db
	d := db.Design

	// Appended nets: release their routes and drop their extraction.
	for id := t.baseNets; id < len(d.Nets); id++ {
		if id < len(db.Routes.Routes) {
			if r := db.Routes.Routes[id]; r != nil {
				db.Grid.ReleaseNet(r)
			}
		}
		if id < len(db.Ex.Nets) {
			db.Ex.Replace(id, nil)
		}
	}
	// Rerouted pre-existing nets: release the current route, restore
	// the saved one and its RC tree.
	for _, id := range t.routeOrder {
		var cur *route.NetRoute
		if id < len(db.Routes.Routes) {
			cur = db.Routes.Routes[id]
		}
		old := t.savedRoute[id]
		if cur != old {
			if cur != nil {
				db.Grid.ReleaseNet(cur)
			}
			if old != nil {
				db.Grid.CommitRoute(old)
			}
			db.Routes.SetRoute(id, old)
		}
		if id < len(db.Ex.Nets) && db.Ex.Nets[id] != t.savedRC[id] {
			db.Ex.Replace(id, t.savedRC[id])
		}
	}
	// Connectivity and placement.
	for _, id := range t.sinksOrder {
		d.Nets[id].Sinks = t.savedSinks[id]
	}
	for inst, m := range t.savedMaster {
		inst.Master = m
	}
	for inst, p := range t.savedLoc {
		inst.Loc = p
	}
	// Truncate the appended tail everywhere.
	if len(db.Routes.Routes) > t.baseNets {
		db.Routes.Routes = db.Routes.Routes[:t.baseNets]
	}
	if len(db.Ex.Nets) > t.baseNets {
		db.Ex.Nets = db.Ex.Nets[:t.baseNets]
	}
	d.TruncateTo(t.baseInsts, t.baseNets)
	if t.topo {
		db.rebuildAdjacency()
	}

	nets = t.dirtyNets.sortedBelow(t.baseNets)
	insts = t.dirtyInsts.sortedBelow(t.baseInsts)
	topo = t.topo
	t.done = true
	t.savedSinks, t.savedMaster, t.savedLoc = nil, nil, nil
	t.savedRoute, t.savedRC = nil, nil
	if reg := db.Obs.Reg(); reg != nil {
		reg.Counter("ddb_txn_rollbacks_total",
			"Rolled-back design-database transactions.").Inc()
	}
	return nets, insts, topo
}
