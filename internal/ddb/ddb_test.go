package ddb_test

import (
	"math"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// buildDB routes and extracts a small fanout design and wraps it in a
// database: one driver, `fanout` sinks spread over `span` µm.
func buildDB(t *testing.T, fanout int, span float64) (*ddb.DB, *netlist.Net) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("x", lib)
	drv := d.AddInstance("drv", lib.MustCell("INV_X1"))
	drv.Loc = geom.Pt(10, 10)
	drv.Placed = true
	refs := []netlist.PinRef{}
	for i := 0; i < fanout; i++ {
		u := d.AddInstance("s"+string(rune('a'+i)), lib.MustCell("INV_X4"))
		u.Loc = geom.Pt(10+span*float64(i+1)/float64(fanout), 10+float64(i%3)*20)
		u.Placed = true
		refs = append(refs, netlist.IPin(u, "A"))
	}
	n := d.AddNet("net", netlist.IPin(drv, "Y"), refs...)
	beol, _ := tech.NewBEOL28("l", 6)
	grid := route.NewDB(geom.R(0, 0, span+100, 200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, grid)
	if err != nil {
		t.Fatal(err)
	}
	corner := tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
	ex := extract.Extract(d, res, grid, corner)
	return ddb.New(d, grid, res, ex, corner), n
}

func TestAdjacency(t *testing.T) {
	db, n := buildDB(t, 4, 400)
	drv := db.Design.Instance("drv")
	if got := db.Driven(drv); len(got) != 1 || int(got[0]) != n.ID {
		t.Fatalf("Driven(drv) = %v, want [%d]", got, n.ID)
	}
	if got := db.DrivenBy(netlist.IPin(drv, "Y")); len(got) != 1 || int(got[0]) != n.ID {
		t.Fatalf("DrivenBy(drv/Y) = %v", got)
	}
	for _, s := range n.Sinks {
		in := db.InputNets(s.Inst)
		if len(in) != 1 || int(in[0]) != n.ID {
			t.Fatalf("InputNets(%s) = %v", s.Inst.Name, in)
		}
	}
}

func TestResizeRollbackRestoresMaster(t *testing.T) {
	db, _ := buildDB(t, 4, 400)
	drv := db.Design.Instance("drv")
	was := drv.Master
	txn := db.Begin()
	if err := txn.Resize(drv, db.Design.Lib.MustCell("INV_X32")); err != nil {
		t.Fatal(err)
	}
	if got := txn.DirtyInsts(); len(got) != 1 || got[0] != drv.ID {
		t.Fatalf("DirtyInsts = %v", got)
	}
	if txn.TopoChanged() {
		t.Fatal("resize must not report a topology change")
	}
	insts, _ := mustRollback(t, txn)
	if drv.Master != was {
		t.Fatal("master not restored")
	}
	if len(insts) != 1 || insts[0] != drv.ID {
		t.Fatalf("rollback dirty insts = %v", insts)
	}
}

func mustRollback(t *testing.T, txn *ddb.Txn) (insts, nets []int) {
	t.Helper()
	n, i, _ := txn.Rollback()
	return i, n
}

func TestRerouteRollbackRestoresRouteAndRC(t *testing.T) {
	db, n := buildDB(t, 4, 400)
	oldRoute := db.Routes.Routes[n.ID]
	oldRC := db.Ex.Nets[n.ID]
	oldWireC := db.Ex.CWireTotal

	txn := db.Begin()
	// Move a sink, then reroute: both the route and the RC tree change.
	txn.SetLoc(n.Sinks[0].Inst, geom.Pt(450, 150))
	if err := txn.Reroute(n); err != nil {
		t.Fatal(err)
	}
	if db.Routes.Routes[n.ID] == oldRoute {
		t.Fatal("reroute did not install a new route")
	}
	if db.Ex.Nets[n.ID] == oldRC {
		t.Fatal("reroute did not patch the extraction")
	}

	txn.Rollback()
	if db.Routes.Routes[n.ID] != oldRoute {
		t.Fatal("route pointer not restored")
	}
	if db.Ex.Nets[n.ID] != oldRC {
		t.Fatal("RC pointer not restored — rollback must be bit-exact")
	}
	if math.Abs(db.Ex.CWireTotal-oldWireC) > 1e-9 {
		t.Fatalf("wire-cap total drifted: %v vs %v", db.Ex.CWireTotal, oldWireC)
	}
}

func TestAddRollbackTruncates(t *testing.T) {
	db, n := buildDB(t, 4, 400)
	d := db.Design
	nInst, nNets := d.Counts()
	buf := d.Lib.MustCell("BUF_X16")

	txn := db.Begin()
	sink := txn.RemoveSinkAt(n, 0)
	inst := txn.AddInstance("b0", buf)
	inst.Loc = geom.Pt(100, 50)
	inst.Placed = true
	txn.AppendSink(n, netlist.IPin(inst, "A"))
	nn := txn.AddNet("bn0", netlist.IPin(inst, "Y"), sink)
	if err := txn.Reroute(n); err != nil {
		t.Fatal(err)
	}
	if err := txn.Reroute(nn); err != nil {
		t.Fatal(err)
	}
	if !txn.TopoChanged() {
		t.Fatal("connectivity edits must report a topology change")
	}
	// The new net is live: adjacency sees it.
	if got := db.Driven(inst); len(got) != 1 || int(got[0]) != nn.ID {
		t.Fatalf("Driven(buf) = %v", got)
	}

	nets, insts, topo := txn.Rollback()
	if !topo {
		t.Fatal("rollback lost the topo flag")
	}
	if ni, nn2 := d.Counts(); ni != nInst || nn2 != nNets {
		t.Fatalf("counts after rollback %d/%d, want %d/%d", ni, nn2, nInst, nNets)
	}
	if len(db.Routes.Routes) != nNets || len(db.Ex.Nets) != nNets {
		t.Fatalf("route/extraction tables not truncated: %d/%d", len(db.Routes.Routes), len(db.Ex.Nets))
	}
	if len(n.Sinks) != 4 {
		t.Fatalf("sinks = %d, want 4", len(n.Sinks))
	}
	// Dirty views only report survivors (pre-existing ids).
	for _, id := range nets {
		if id >= nNets {
			t.Fatalf("dirty net %d past truncation", id)
		}
	}
	for _, id := range insts {
		if id >= nInst {
			t.Fatalf("dirty inst %d past truncation", id)
		}
	}
	// Adjacency was rebuilt for the restored design.
	if got := db.InputNets(n.Sinks[0].Inst); len(got) != 1 || int(got[0]) != n.ID {
		t.Fatalf("adjacency stale after rollback: %v", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceSinksAdjacency(t *testing.T) {
	db, n := buildDB(t, 4, 400)
	orig := append([]netlist.PinRef(nil), n.Sinks...)
	dropped := orig[3].Inst

	txn := db.Begin()
	txn.ReplaceSinks(n, orig[:2])
	if got := db.InputNets(dropped); len(got) != 0 {
		t.Fatalf("dropped sink still has inputs: %v", got)
	}
	txn.Rollback()
	if got := db.InputNets(dropped); len(got) != 1 || int(got[0]) != n.ID {
		t.Fatalf("input adjacency not restored: %v", got)
	}
	if len(n.Sinks) != 4 {
		t.Fatalf("sinks = %d", len(n.Sinks))
	}
}

func TestCommitKeepsEdits(t *testing.T) {
	db, n := buildDB(t, 4, 400)
	drv := db.Design.Instance("drv")
	to := db.Design.Lib.MustCell("INV_X32")
	txn := db.Begin()
	if err := txn.Resize(drv, to); err != nil {
		t.Fatal(err)
	}
	if err := txn.Reroute(n); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if drv.Master != to {
		t.Fatal("commit lost the resize")
	}
	// A committed extraction patch matches a fresh single-net extract.
	fresh := extract.One(n, db.Routes.Routes[n.ID], db.Grid, db.Corner)
	if math.Abs(fresh.CTotal()-db.Ex.Nets[n.ID].CTotal()) > 1e-12 {
		t.Fatal("committed RC differs from fresh extraction")
	}
}
