// Package ddb is the incremental design database: it owns the live
// {netlist, placement, routes, extraction} tuple of a flow stage and
// the change journal through which every optimization edit and fault
// injection flows.
//
// The point of the package is the contract it enforces: after routing,
// nothing outside ddb mutates the netlist connectivity, the route
// table, or the extraction in place. Every mutation goes through a Txn
// — gate resize, ECO move, buffer insert, net reroute — which records
// exactly which nets and instances were touched (the dirty set), saves
// the first-touch undo state, and keeps the per-instance net adjacency
// current. Consumers get three things for free:
//
//   - incremental extraction: Txn.Reroute re-builds the RC tree of the
//     one touched net and patches extract.Design in place;
//   - a dirty view (DirtyNets/DirtyInsts/TopoChanged) that seeds the
//     incremental STA engine's re-propagation frontier;
//   - O(edit) rollback: Txn.Rollback restores saved masters, locations,
//     sink lists, routes and RC trees and truncates appended instances
//     and nets, instead of re-extracting the whole design.
//
// Rollback is bit-exact for everything timing reads: routes are undone
// by the same ±1 usage increments the router applied, and restored RC
// trees are the very objects the pre-edit extraction produced. Only the
// extraction's running capacitance totals may drift in the last float
// bits (they are maintained by += / -=); no table-visible metric reads
// them — sign-off re-extracts at the typical corner from scratch.
package ddb

import (
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
	"macro3d/internal/obs"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// DB bundles the stage state and the derived adjacency.
type DB struct {
	Design *netlist.Design
	Grid   *route.DB
	Routes *route.Result
	Ex     *extract.Design
	Corner tech.CornerScale

	// Obs, when non-nil, locates the run's metric registry;
	// transactions publish commit/rollback and dirty-set statistics
	// there. nil disables instrumentation. Prefer AttachObs, which also
	// pre-registers the ddb metric family so exports show it at zero.
	Obs *obs.Span

	// drivenI[i] lists the nets driven by instance i in net-ID order
	// (clock nets included — callers filter); drivenP is the same for
	// port drivers. inputs[i] lists the non-clock nets instance i sinks
	// on (set semantics, unordered).
	drivenI [][]int32
	drivenP [][]int32
	inputs  [][]int32
}

// New builds the database over an already routed and extracted design.
func New(d *netlist.Design, grid *route.DB, routes *route.Result, ex *extract.Design, corner tech.CornerScale) *DB {
	db := &DB{Design: d, Grid: grid, Routes: routes, Ex: ex, Corner: corner}
	db.rebuildAdjacency()
	return db
}

// AttachObs wires the database to the run's observability span and
// pre-registers the transaction metric family, so a run that commits
// no transactions still exports the ddb_ series at zero.
func (db *DB) AttachObs(sp *obs.Span) {
	db.Obs = sp
	if reg := sp.Reg(); reg != nil {
		reg.Counter("ddb_txn_commits_total", "Committed design-database transactions.")
		reg.Counter("ddb_txn_rollbacks_total", "Rolled-back design-database transactions.")
		reg.Counter("ddb_txn_dirty_nets_total", "Net touches across committed transactions.")
		reg.Counter("ddb_txn_dirty_insts_total", "Instance touches across committed transactions.")
		reg.Counter("ddb_incremental_reroutes_total",
			"Per-net incremental reroute+re-extract operations (Txn.Reroute).")
	}
}

func (db *DB) rebuildAdjacency() {
	d := db.Design
	db.drivenI = make([][]int32, len(d.Instances))
	db.drivenP = make([][]int32, len(d.Ports))
	db.inputs = make([][]int32, len(d.Instances))
	for _, n := range d.Nets {
		id := int32(n.ID)
		if n.Driver.Port != nil {
			db.drivenP[n.Driver.Port.ID] = append(db.drivenP[n.Driver.Port.ID], id)
		} else if n.Driver.Inst != nil {
			db.drivenI[n.Driver.Inst.ID] = append(db.drivenI[n.Driver.Inst.ID], id)
		}
		if n.Clock {
			continue
		}
		for _, s := range n.Sinks {
			if s.Inst != nil {
				db.addInput(s.Inst.ID, id)
			}
		}
	}
}

func (db *DB) addInput(instID int, netID int32) {
	for _, id := range db.inputs[instID] {
		if id == netID {
			return
		}
	}
	db.inputs[instID] = append(db.inputs[instID], netID)
}

func (db *DB) removeInput(instID int, netID int32) {
	in := db.inputs[instID]
	for i, id := range in {
		if id == netID {
			db.inputs[instID] = append(in[:i], in[i+1:]...)
			return
		}
	}
}

// Driven returns the ids of the nets driven by an instance, lowest id
// first (clock nets included).
func (db *DB) Driven(inst *netlist.Instance) []int32 { return db.drivenI[inst.ID] }

// DrivenBy returns the ids of the nets whose driver matches the given
// connection point (an instance output or a design port).
func (db *DB) DrivenBy(ref netlist.PinRef) []int32 {
	if ref.Port != nil {
		return db.drivenP[ref.Port.ID]
	}
	if ref.Inst != nil {
		return db.drivenI[ref.Inst.ID]
	}
	return nil
}

// InputNets returns the ids of the non-clock nets the instance sinks
// on (unordered set).
func (db *DB) InputNets(inst *netlist.Instance) []int32 { return db.inputs[inst.ID] }

// sinksOn reports whether inst still appears among n's sinks.
func sinksOn(n *netlist.Net, inst *netlist.Instance) bool {
	for _, s := range n.Sinks {
		if s.Inst == inst {
			return true
		}
	}
	return false
}

// intSet is a reusable dense set over small integer ids.
type intSet struct {
	in  []bool
	ids []int
}

func (s *intSet) add(id int) {
	for id >= len(s.in) {
		s.in = append(s.in, false)
	}
	if !s.in[id] {
		s.in[id] = true
		s.ids = append(s.ids, id)
	}
}

func (s *intSet) has(id int) bool { return id < len(s.in) && s.in[id] }

// sortedBelow returns the members < limit in ascending order.
func (s *intSet) sortedBelow(limit int) []int {
	out := make([]int, 0, len(s.ids))
	for _, id := range s.ids {
		if id < limit {
			out = append(out, id)
		}
	}
	insertionSort(out)
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
