package ddb_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoDirectExtractionMutation enforces the database contract
// mechanically: no package outside internal/ddb (and the owning
// internal/extract itself) may mutate extract.Design in place. Every
// post-routing RC patch must flow through a ddb.Txn so the dirty set
// and undo journal stay complete. The test scans non-test sources for
// the mutation idioms the refactor removed.
func TestNoDirectExtractionMutation(t *testing.T) {
	root := moduleRoot(t)
	banned := []*regexp.Regexp{
		// Single-net re-extraction followed by a manual patch.
		regexp.MustCompile(`\bextract\.One\(`),
		// Direct calls to the extraction's patch method.
		regexp.MustCompile(`\.Replace\(`),
		// In-place edits of the extraction tables and totals.
		regexp.MustCompile(`\.Ex\.Nets\[[^\]]+\]\s*=[^=]`),
		regexp.MustCompile(`\bCWireTotal\s*[-+]?=[^=]`),
		regexp.MustCompile(`\bCPinTotal\s*[-+]?=[^=]`),
		// Wholesale overwrite of a held extraction (the old rollback).
		regexp.MustCompile(`\*\w+\.Ex\s*=[^=]`),
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		if d.IsDir() {
			if rel == filepath.Join("internal", "ddb") || rel == filepath.Join("internal", "extract") || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				continue
			}
			for _, re := range banned {
				if re.MatchString(line) {
					t.Errorf("%s:%d: direct extraction mutation %q outside internal/ddb:\n\t%s",
						rel, lineNo, re.String(), strings.TrimSpace(line))
				}
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
