package power

import (
	"math"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

func typical() tech.CornerScale {
	return tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
}

// smallDesign: port → inv → ff with an SRAM hanging off the net.
func smallDesign(t *testing.T) (*netlist.Design, *extract.Design) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("p", lib)
	clk := d.AddPort("clk", cell.DirIn)
	clk.Loc = geom.Pt(0, 0)
	u := d.AddInstance("u", lib.MustCell("INV_X2"))
	u.Loc = geom.Pt(50, 50)
	ff := d.AddInstance("ff", lib.MustCell("DFF_X1"))
	ff.Loc = geom.Pt(300, 50)
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 1024, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	mem := d.AddInstance("mem", sram)
	mem.Loc = geom.Pt(100, 200)
	mem.Fixed, mem.Placed = true, true

	d.AddNet("n1", netlist.IPin(ff, "Q"), netlist.IPin(u, "A"))
	d.AddNet("n2", netlist.IPin(u, "Y"), netlist.IPin(ff, "D"), netlist.IPin(mem, "D0"))
	cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(ff, "CK"), netlist.IPin(mem, "CLK"))
	cn.Clock = true

	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, 600, 600), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	return d, extract.Extract(d, res, db, typical())
}

func TestBreakdown(t *testing.T) {
	d, ex := smallDesign(t)
	rep := Analyze(d, ex, nil, 400, Options{})
	if rep.SignalWireFJ <= 0 || rep.SignalPinFJ <= 0 {
		t.Fatalf("signal energy missing: %+v", rep)
	}
	if rep.CellInternalFJ <= 0 {
		t.Fatal("internal energy missing")
	}
	if rep.MacroFJ <= 0 {
		t.Fatal("macro energy missing")
	}
	if rep.ClockFJ <= 0 {
		t.Fatal("clock energy missing")
	}
	if rep.LeakageUW <= 0 {
		t.Fatal("leakage missing")
	}
	want := rep.SignalWireFJ + rep.SignalPinFJ + rep.CellInternalFJ + rep.ClockFJ + rep.MacroFJ
	if math.Abs(rep.DynamicFJ-want) > 1e-9 {
		t.Fatal("dynamic sum inconsistent")
	}
	if rep.EnergyPerCycleFJ <= rep.DynamicFJ {
		t.Fatal("E_mean must include leakage share")
	}
}

func TestToggleRateScalesSignalEnergy(t *testing.T) {
	d, ex := smallDesign(t)
	r1 := Analyze(d, ex, nil, 400, Options{ToggleRate: 0.2})
	r2 := Analyze(d, ex, nil, 400, Options{ToggleRate: 0.4})
	if math.Abs(r2.SignalWireFJ/r1.SignalWireFJ-2) > 1e-9 {
		t.Fatal("signal energy not proportional to toggle rate")
	}
	// Clock energy is activity-1 — independent of the signal toggle
	// rate.
	if r1.ClockFJ != r2.ClockFJ {
		t.Fatal("clock energy changed with signal toggle rate")
	}
}

func TestPowerConversion(t *testing.T) {
	d, ex := smallDesign(t)
	rep := Analyze(d, ex, nil, 400, Options{})
	p400 := rep.PowerUW(400)
	p200 := rep.PowerUW(200)
	// Dynamic scales with f; leakage does not.
	if p400 <= p200 {
		t.Fatal("power not increasing with frequency")
	}
	wantDelta := rep.DynamicFJ * 200 * 1e-3
	if math.Abs((p400-p200)-wantDelta) > 1e-9 {
		t.Fatalf("frequency scaling wrong: %v vs %v", p400-p200, wantDelta)
	}
}

func TestClockTreeEnergyCounted(t *testing.T) {
	d, ex := smallDesign(t)
	beol, _ := tech.NewBEOL28("logic", 6)
	tree := cts.Build(d, d.Net("clk"), d.Port("clk").Loc, d.Lib, beol, cts.Options{})
	withTree := Analyze(d, ex, tree, 400, Options{})
	ideal := Analyze(d, ex, nil, 400, Options{})
	if withTree.ClockFJ <= ideal.ClockFJ {
		t.Fatal("real tree should cost more than ideal clock")
	}
}

func TestLargerCacheBurnsMore(t *testing.T) {
	// Macro energy scales with capacity.
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	build := func(words int) *Report {
		d := netlist.NewDesign("m", lib)
		sram, _ := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: words, Bits: 32})
		d.AddInstance("mem", sram)
		ex := &extract.Design{Nets: nil}
		return Analyze(d, ex, nil, 400, Options{})
	}
	small := build(1024)
	large := build(32768)
	if large.MacroFJ <= small.MacroFJ {
		t.Fatal("macro energy not monotone in capacity")
	}
	if large.LeakageUW <= small.LeakageUW {
		t.Fatal("macro leakage not monotone in capacity")
	}
}

func TestCornerScalesLeakage(t *testing.T) {
	d, ex := smallDesign(t)
	typ := Analyze(d, ex, nil, 400, Options{})
	fast := Analyze(d, ex, nil, 400, Options{Corner: tech.CornerScale{CellDelay: 0.8, WireR: 1, WireC: 1, Leakage: 1.8}})
	if math.Abs(fast.LeakageUW/typ.LeakageUW-1.8) > 1e-9 {
		t.Fatal("leakage corner scaling wrong")
	}
}

func TestByModule(t *testing.T) {
	d, ex := smallDesign(t)
	bd := ByModule(d, ex, nil, Options{})
	if len(bd.EnergyFJ) == 0 {
		t.Fatal("no groups")
	}
	// The SRAM instance "mem" forms its own group and dominates.
	if bd.EnergyFJ["mem"] <= 0 {
		t.Fatalf("mem group missing: %v", bd.EnergyFJ)
	}
	if bd.EnergyFJ["(wires)"] <= 0 {
		t.Fatal("wire bucket missing")
	}
	if bd.LeakageUW["mem"] <= 0 {
		t.Fatal("macro leakage missing")
	}
	// Sum of module internal energies ≤ total dynamic (wires/clock are
	// the remainder buckets).
	rep := Analyze(d, ex, nil, 400, Options{})
	var sum float64
	for g, e := range bd.EnergyFJ {
		if g != "(wires)" && g != "(clock)" {
			sum += e
		}
	}
	if sum > rep.DynamicFJ {
		t.Fatalf("module energies %v exceed dynamic %v", sum, rep.DynamicFJ)
	}
}

func TestModuleOf(t *testing.T) {
	cases := map[string]string{
		"u_core_s1_ff_12": "core",
		"l3_bank0":        "l3",
		"u_noc1_xbar_99":  "noc1",
		"optbuf_12_3":     "optbuf",
		"plain":           "plain",
	}
	for in, want := range cases {
		if got := moduleOf(in); got != want {
			t.Errorf("moduleOf(%s) = %s, want %s", in, got, want)
		}
	}
}
