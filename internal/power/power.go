// Package power computes dynamic and leakage power of an analyzed
// design following the paper's setup: a toggle ratio of 0.2 per clock
// cycle for signals and registers, full-rate clock switching through
// the synthesized tree, per-access macro energy, and leakage at the
// typical corner. The headline metric is E_mean in fJ/cycle —
// "equivalent to power-per-megahertz" (Table I).
package power

import (
	"macro3d/internal/cell"
	"macro3d/internal/cts"
	"macro3d/internal/extract"
	"macro3d/internal/netlist"
	"macro3d/internal/tech"
)

// Options configures the analysis.
type Options struct {
	// ToggleRate per cycle for signal nets and macro accesses
	// (default 0.2 — the paper's value).
	ToggleRate float64
	// VDD in volts (default 0.9).
	VDD    float64
	Corner tech.CornerScale
	// ClockBufferName prices clock-buffer internal energy
	// (default BUF_X8, matching cts).
	ClockBufferName string
}

func (o Options) withDefaults() Options {
	if o.ToggleRate <= 0 {
		o.ToggleRate = 0.2
	}
	if o.VDD <= 0 {
		o.VDD = 0.9
	}
	if o.Corner.Leakage == 0 {
		o.Corner = tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
	}
	if o.ClockBufferName == "" {
		o.ClockBufferName = "BUF_X8"
	}
	return o
}

// Report is the power breakdown.
type Report struct {
	// Energy per cycle, fJ.
	SignalWireFJ   float64 // α/2 · C_wire · V²
	SignalPinFJ    float64 // α/2 · C_pin · V²
	CellInternalFJ float64
	ClockFJ        float64
	MacroFJ        float64

	EnergyPerCycleFJ float64 // E_mean including leakage at FreqMHz
	DynamicFJ        float64 // E_mean excluding leakage

	LeakageUW float64

	// Totals echoed for the paper's Table II rows.
	CWireTotalFF float64
	CPinTotalFF  float64
}

// PowerUW converts the report to µW at a clock frequency in MHz.
func (r *Report) PowerUW(freqMHz float64) float64 {
	return r.DynamicFJ*freqMHz*1e-3 + r.LeakageUW
}

// Analyze computes the breakdown. tree may be nil (ideal clock: only
// sink pin caps switch). freqMHz converts leakage into the per-cycle
// figure; pass the operating frequency.
func Analyze(d *netlist.Design, ex *extract.Design, tree *cts.Tree, freqMHz float64, opt Options) *Report {
	opt = opt.withDefaults()
	r := &Report{}
	v2 := opt.VDD * opt.VDD
	a := opt.ToggleRate

	// Signal switching: each toggle charges/discharges C; energy per
	// cycle = α · ½CV².
	r.CWireTotalFF = ex.CWireTotal
	r.CPinTotalFF = ex.CPinTotal
	r.SignalWireFJ = a * 0.5 * ex.CWireTotal * v2
	r.SignalPinFJ = a * 0.5 * ex.CPinTotal * v2

	// Cell internal energy and leakage.
	var leakNW float64
	for _, inst := range d.Instances {
		m := inst.Master
		switch m.Kind {
		case cell.KindMacro:
			if m.Macro != nil {
				r.MacroFJ += a * m.Macro.EnergyPerAccess
			}
			leakNW += m.Leakage
		case cell.KindFiller:
			// no activity
		default:
			r.CellInternalFJ += a * m.InternalEnergy
			leakNW += m.Leakage
		}
	}

	// Clock: the tree's wire+pin capacitance switches twice per cycle
	// (two transitions → full CV² per cycle), plus buffer internal
	// energy at rate 1.
	if tree != nil {
		r.ClockFJ = tree.TotalCap() * v2
		if buf := d.Lib.Cell(opt.ClockBufferName); buf != nil {
			r.ClockFJ += float64(tree.Buffers) * buf.InternalEnergy
		}
	} else {
		// Ideal clock: sink pins still switch.
		var ckCap float64
		for _, inst := range d.Instances {
			if ck := inst.Master.ClockPin(); ck != nil && inst.Master.IsSequential() {
				ckCap += ck.Cap
			}
		}
		r.ClockFJ = ckCap * v2
	}

	r.LeakageUW = leakNW * 1e-3 * opt.Corner.Leakage
	r.DynamicFJ = r.SignalWireFJ + r.SignalPinFJ + r.CellInternalFJ + r.ClockFJ + r.MacroFJ
	r.EnergyPerCycleFJ = r.DynamicFJ
	if freqMHz > 0 {
		// Leakage folded in per cycle: µW / MHz = fJ/cycle.
		r.EnergyPerCycleFJ += r.LeakageUW / freqMHz * 1e3
	}
	return r
}

// ModuleBreakdown attributes cell internal + leakage power to module
// groups by instance-name prefix (up to the second '_', e.g.
// "u_core_…" → "core", "l3_bank0" → "l3"), the OpenPiton generator's
// naming convention. Wire/clock energy is not attributable per module
// from name alone and is reported under "(wires)"/"(clock)".
type ModuleBreakdown struct {
	// EnergyFJ per cycle per group.
	EnergyFJ map[string]float64
	// LeakageUW per group.
	LeakageUW map[string]float64
}

// ByModule computes the breakdown at the given toggle rate.
func ByModule(d *netlist.Design, ex *extract.Design, tree *cts.Tree, opt Options) *ModuleBreakdown {
	opt = opt.withDefaults()
	v2 := opt.VDD * opt.VDD
	out := &ModuleBreakdown{
		EnergyFJ:  map[string]float64{},
		LeakageUW: map[string]float64{},
	}
	for _, inst := range d.Instances {
		g := moduleOf(inst.Name)
		m := inst.Master
		switch m.Kind {
		case cell.KindMacro:
			if m.Macro != nil {
				out.EnergyFJ[g] += opt.ToggleRate * m.Macro.EnergyPerAccess
			}
		case cell.KindFiller:
			continue
		default:
			out.EnergyFJ[g] += opt.ToggleRate * m.InternalEnergy
		}
		out.LeakageUW[g] += m.Leakage * 1e-3 * opt.Corner.Leakage
	}
	out.EnergyFJ["(wires)"] = opt.ToggleRate * 0.5 * (ex.CWireTotal + ex.CPinTotal) * v2
	if tree != nil {
		out.EnergyFJ["(clock)"] = tree.TotalCap() * v2
	}
	return out
}

// moduleOf extracts the group key from a generated instance name.
func moduleOf(name string) string {
	s := name
	if len(s) > 2 && s[:2] == "u_" {
		s = s[2:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '_' {
			return s[:i]
		}
	}
	return s
}
