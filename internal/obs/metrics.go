package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the per-run metric namespace: get-or-create typed
// metrics by name. All methods are safe for concurrent use and valid
// on a nil receiver (returning nil metrics, whose operations no-op) —
// the disabled-observability fast path is a pointer check.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]any
	ordered []string
}

func newRegistry() *Registry {
	return &Registry{byName: map[string]any{}}
}

// Counter returns the registered counter, creating it on first use.
// Registering one name as two different metric kinds panics: that is
// a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as counter (was %T)", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	r.ordered = append(r.ordered, name)
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as gauge (was %T)", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	r.ordered = append(r.ordered, name)
	return g
}

// DefBuckets is the default histogram bucketing: roughly logarithmic,
// wide enough for counts (dirty-frontier sizes) and microsecond-to-
// second durations alike.
var DefBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram returns the registered histogram, creating it on first
// use with the given bucket upper bounds (DefBuckets when none are
// given). Bounds must be sorted ascending; the +Inf bucket is
// implicit.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as histogram (was %T)", name, m))
		}
		return h
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.byName[name] = h
	r.ordered = append(r.ordered, name)
	return h
}

// Counter is a monotonically increasing count. Nil-safe and
// goroutine-safe.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value. Nil-safe and goroutine-safe.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Nil-safe and
// goroutine-safe; Observe is lock-free.
type Histogram struct {
	name, help string
	bounds     []float64       // upper bounds, ascending; +Inf implicit
	buckets    []atomic.Uint64 // len(bounds)+1, non-cumulative
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    float64 `json:"le"` // +Inf on the last bucket
	Count uint64  `json:"count"`
}

// Metric is the point-in-time snapshot of one registered metric.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter", "gauge", "histogram"
	Help    string   `json:"help,omitempty"`
	Value   float64  `json:"value"`             // counter/gauge current value
	Count   uint64   `json:"count,omitempty"`   // histogram observations
	Sum     float64  `json:"sum,omitempty"`     // histogram sum
	Buckets []Bucket `json:"buckets,omitempty"` // cumulative
}

// Snapshot returns every registered metric's current state, sorted by
// name (deterministic export order). Nil-safe: a nil registry
// snapshots empty.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.ordered...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.byName[n]
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(names))
	for i, n := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out = append(out, Metric{Name: n, Kind: "counter", Help: m.help, Value: float64(m.Value())})
		case *Gauge:
			out = append(out, Metric{Name: n, Kind: "gauge", Help: m.help, Value: m.Value()})
		case *Histogram:
			s := Metric{Name: n, Kind: "histogram", Help: m.help}
			var cum uint64
			for bi := range m.buckets {
				cum += m.buckets[bi].Load()
				le := math.Inf(1)
				if bi < len(m.bounds) {
					le = m.bounds[bi]
				}
				s.Buckets = append(s.Buckets, Bucket{LE: le, Count: cum})
			}
			s.Count = m.count.Load()
			s.Sum = math.Float64frombits(m.sumBits.Load())
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
