package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestRecorderCloseIdempotent closes a Recorder twice (the daemon's
// teardown paths double-close): both calls must return the same
// result, events after Close must be dropped rather than written or
// panicking, and SetSink must re-arm the stream.
func TestRecorderCloseIdempotent(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetSink(&buf)
	r.Emit("before_close")
	if err := r.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	n := buf.Len()
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	r.Emit("after_close") // must be dropped, not crash or append
	r.Sample()
	if buf.Len() != n {
		t.Errorf("events written after Close: %d bytes grew to %d", n, buf.Len())
	}
	if !strings.Contains(buf.String(), "before_close") {
		t.Error("pre-Close event lost")
	}

	// Metrics and spans stay usable after Close.
	r.Registry().Counter("post_close_total", "t").Inc()
	sp := r.StartSpan("post-close")
	sp.End()

	// SetSink re-arms the event stream.
	var buf2 bytes.Buffer
	r.SetSink(&buf2)
	r.Emit("rearmed")
	if err := r.Close(); err != nil {
		t.Fatalf("Close after re-arm: %v", err)
	}
	if !strings.Contains(buf2.String(), "rearmed") {
		t.Error("re-armed sink did not receive events")
	}
}

// TestRecorderCloseConcurrent double-closes from racing goroutines
// (run with -race): no panic, no double flush.
func TestRecorderCloseConcurrent(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.SetSink(&buf)
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_ = r.Close()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

// TestServerCloseIdempotent double-closes the observability HTTP
// endpoint: the second Close is a no-op returning the first result,
// and the port is actually released.
func TestServerCloseIdempotent(t *testing.T) {
	r := New()
	s, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatalf("endpoint not serving: %v", err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get(s.URL() + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
}

// TestNilRecorderClose asserts the nil-safety contract extends to
// Close on the disabled Recorder.
func TestNilRecorderClose(t *testing.T) {
	var r *Recorder
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
