// Package obs is the flow-wide observability layer: hierarchical
// spans (flow → stage → phase, e.g. "macro3d/route/rip-up-iter"),
// typed per-run metrics (counters, gauges, histograms), a structured
// JSONL event sink, and live exporters (Prometheus text format, JSON
// snapshot) servable over HTTP alongside expvar and net/http/pprof.
//
// The package has zero dependencies outside the standard library and
// is safe to thread through every engine: all entry points are
// nil-safe, so a nil *Recorder (the default) records nothing, emits
// nothing, registers nothing, and never perturbs the instrumented
// computation — flows produce byte-identical results with
// observability disabled, a contract the flows package verifies by
// test.
//
// Naming convention for metrics: subsystem_name_unit, e.g.
// route_overflow_gcells, place_legalize_displacement_mean_um,
// sta_dirty_frontier_nodes, ddb_txn_commits_total. Monotonic counts
// end in _total; gauges and histograms end in their unit.
package obs

import (
	"io"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the per-run observability hub. One Recorder serves an
// entire process run (possibly many flows): its Registry aggregates
// metrics across flows, and every span and event it emits shares one
// monotonic clock, so a multi-flow sweep produces a single coherent
// JSONL trace. A nil Recorder is the valid disabled state.
type Recorder struct {
	start  time.Time
	reg    *Registry
	nextID atomic.Int64

	mu       sync.Mutex
	sink     *Sink
	closeErr error // result of the Close that detached the sink
}

// New returns an enabled Recorder with an empty registry and its
// monotonic clock started.
func New() *Recorder {
	return &Recorder{start: time.Now(), reg: newRegistry()}
}

// Registry returns the metric registry; nil when the Recorder is nil
// (the returned nil Registry is itself safe to use).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// SetSink directs the JSONL event stream to w (typically the -events
// file). Safe to leave unset: spans and metrics still work, only the
// event trail is dropped.
func (r *Recorder) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = newSink(w)
	r.closeErr = nil
	r.mu.Unlock()
}

// Close emits a final sample of every registered metric, flushes the
// sink and detaches it. Idempotent and safe to call twice (daemon
// restart and teardown paths double-close): later calls return the
// first call's result, and events emitted after Close are dropped.
// Spans and metrics stay usable, and SetSink re-arms the event stream.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	detached := r.sink == nil
	r.mu.Unlock()
	if !detached {
		r.Sample()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return r.closeErr
	}
	r.closeErr = r.sink.Flush()
	r.sink = nil
	return r.closeErr
}

// Emit writes one generic event line (e.g. a fault-injection tag) to
// the sink.
func (r *Recorder) Emit(ev string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.emit(event{Ev: ev, Attrs: attrMap(attrs)})
}

// Sample writes the current value of every registered metric to the
// sink as one "sample" event per metric (histograms sample their
// count and sum), interleaved with the span stream under the same
// monotonic clock. The flow runner calls it at stage boundaries.
func (r *Recorder) Sample() {
	if r == nil {
		return
	}
	for _, m := range r.reg.Snapshot() {
		switch m.Kind {
		case "histogram":
			r.emit(event{Ev: "sample", Metric: m.Name + "_count", Value: float64(m.Count)})
			r.emit(event{Ev: "sample", Metric: m.Name + "_sum", Value: jsonFloat(m.Sum)})
		default:
			r.emit(event{Ev: "sample", Metric: m.Name, Value: jsonFloat(m.Value)})
		}
	}
}

// emit stamps the event with the monotonic clock and writes it. The
// stamp is taken under the sink lock so timestamps are non-decreasing
// in file order even with concurrent emitters.
func (r *Recorder) emit(ev event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return
	}
	ev.T = time.Since(r.start).Nanoseconds()
	r.sink.write(ev)
}

// Attr is one span or event attribute.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		// Non-finite float attributes would poison the JSON sink with a
		// sticky marshal error; spell them out instead.
		if f, ok := a.Value.(float64); ok {
			m[a.Key] = jsonFloat(f)
			continue
		}
		m[a.Key] = a.Value
	}
	return m
}

// Span is one timed node of the hierarchical trace. Spans always
// measure wall time — StartSpan on a nil Recorder returns a real,
// unrecorded span, which is how the flow runner derives RunReport
// durations whether or not observability is on. Allocation deltas and
// event emission happen only when a live Recorder backs the span.
//
// A nil *Span is valid everywhere (Child returns nil, End is a no-op)
// so engines instrumented with an optional span need no guards.
type Span struct {
	rec    *Recorder
	id     int64
	parent int64
	name   string
	start  time.Time
	alloc0 uint64

	mu    sync.Mutex
	attrs []Attr
	dur   time.Duration
	ended bool
}

// StartSpan opens a root span. Valid on a nil Recorder: the returned
// span still measures duration but records nothing.
func (r *Recorder) StartSpan(name string, attrs ...Attr) *Span {
	sp := &Span{name: name, start: time.Now(), attrs: attrs}
	if r != nil {
		sp.rec = r
		sp.id = r.nextID.Add(1)
		sp.alloc0 = heapAllocs()
		r.emit(event{Ev: "span_open", Span: sp.name, ID: sp.id})
	}
	return sp
}

// Child opens a sub-span whose name extends the parent's slash path
// ("macro3d" → "macro3d/route" → "macro3d/route/rip-up-iter").
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	sp := &Span{rec: s.rec, parent: s.id, name: s.name + "/" + name, start: time.Now(), attrs: attrs}
	if s.rec != nil {
		sp.id = s.rec.nextID.Add(1)
		sp.alloc0 = heapAllocs()
		s.rec.emit(event{Ev: "span_open", Span: sp.name, ID: sp.id, Parent: s.id})
	}
	return sp
}

// SetAttr attaches an attribute to the span (goroutine-safe; last
// write of a key wins at emission).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span, fixing its duration and emitting the
// span_close event with the process-wide heap-allocation delta
// (coarse attribution: concurrent allocators are not separated).
// Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	attrs := attrMap(s.attrs)
	s.mu.Unlock()
	if s.rec != nil {
		alloc := heapAllocs() - s.alloc0
		s.rec.emit(event{
			Ev: "span_close", Span: s.name, ID: s.id, Parent: s.parent,
			DurNS: dur.Nanoseconds(), AllocBytes: alloc, Attrs: attrs,
		})
	}
}

// Duration returns the measured wall time: the final duration after
// End, the running time before.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span's full slash path ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Recorder returns the backing Recorder (nil when unrecorded).
func (s *Span) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Reg returns the backing Recorder's registry; nil (and still safe to
// use) when the span is nil or unrecorded. Engines hoist
// sp.Reg().Counter(...) handles out of their hot loops.
func (s *Span) Reg() *Registry { return s.Recorder().Registry() }

// heapAllocs reads the cumulative heap allocation counter via
// runtime/metrics (cheap; no stop-the-world).
func heapAllocs() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}
