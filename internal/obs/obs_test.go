package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"macro3d/internal/obs"
)

// rawEvent mirrors the JSONL line shape for test-side decoding.
type rawEvent struct {
	T          int64          `json:"t"`
	Ev         string         `json:"ev"`
	ID         int64          `json:"id"`
	Parent     int64          `json:"parent"`
	Span       string         `json:"span"`
	Metric     string         `json:"metric"`
	Value      float64        `json:"value"`
	DurNS      int64          `json:"dur_ns"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Attrs      map[string]any `json:"attrs"`
}

func decodeEvents(t *testing.T, buf string) []rawEvent {
	t.Helper()
	var out []rawEvent
	for _, line := range strings.Split(strings.TrimSpace(buf), "\n") {
		if line == "" {
			continue
		}
		var ev rawEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestSpanTreeJSONL opens a three-level span tree with metric samples
// interleaved and checks the event stream: well-formed JSON per line,
// monotonic timestamps, parent links matching the tree, durations and
// attributes on close events.
func TestSpanTreeJSONL(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.New()
	rec.SetSink(&buf)

	c := rec.Registry().Counter("test_ops_total", "ops")
	root := rec.StartSpan("macro3d", obs.KV("config", "tiny"))
	stage := root.Child("route")
	phase := stage.Child("rip-up-iter", obs.KV("iter", 1))
	c.Inc()
	rec.Sample()
	phase.SetAttr("overflow", 3)
	phase.End()
	phase.End() // idempotent
	stage.End()
	root.SetAttr("completed", true)
	root.End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	evs := decodeEvents(t, buf.String())
	var last int64 = -1
	ids := map[string]int64{}   // span path -> id
	parents := map[int64]int64{} // id -> parent
	var closes []rawEvent
	for _, ev := range evs {
		if ev.T < last {
			t.Fatalf("timestamps not monotonic: %d after %d", ev.T, last)
		}
		last = ev.T
		switch ev.Ev {
		case "span_open":
			ids[ev.Span] = ev.ID
			parents[ev.ID] = ev.Parent
		case "span_close":
			closes = append(closes, ev)
		}
	}

	wantPaths := []string{"macro3d", "macro3d/route", "macro3d/route/rip-up-iter"}
	for _, p := range wantPaths {
		if _, ok := ids[p]; !ok {
			t.Fatalf("span %q never opened; have %v", p, ids)
		}
	}
	if parents[ids["macro3d/route"]] != ids["macro3d"] {
		t.Errorf("route's parent is %d, want macro3d's id %d", parents[ids["macro3d/route"]], ids["macro3d"])
	}
	if parents[ids["macro3d/route/rip-up-iter"]] != ids["macro3d/route"] {
		t.Errorf("rip-up-iter's parent is %d, want route's id %d",
			parents[ids["macro3d/route/rip-up-iter"]], ids["macro3d/route"])
	}

	if len(closes) != 3 {
		t.Fatalf("got %d span_close events, want 3 (End must be idempotent): %+v", len(closes), closes)
	}
	// Children close before parents; the innermost close carries the
	// attribute set on the span.
	if closes[0].Span != "macro3d/route/rip-up-iter" || closes[2].Span != "macro3d" {
		t.Errorf("close order wrong: %q, %q, %q", closes[0].Span, closes[1].Span, closes[2].Span)
	}
	if closes[0].DurNS < 0 {
		t.Errorf("negative duration on close: %+v", closes[0])
	}
	if v, ok := closes[0].Attrs["overflow"]; !ok || v != float64(3) {
		t.Errorf("rip-up-iter close lacks overflow attr: %+v", closes[0].Attrs)
	}
	if v, ok := closes[2].Attrs["completed"]; !ok || v != true {
		t.Errorf("root close lacks completed attr: %+v", closes[2].Attrs)
	}

	// The metric sample is in the stream.
	found := false
	for _, ev := range evs {
		if ev.Ev == "sample" && ev.Metric == "test_ops_total" && ev.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("sample event for test_ops_total missing from the stream")
	}
}

// TestNilSafety drives the full API surface through nil receivers: a
// nil Recorder, the nil Registry and metrics it hands out, and a nil
// Span. Nothing may panic, and spans from a nil Recorder must still
// measure wall time (the flow runner derives RunReport durations from
// them with observability disabled).
func TestNilSafety(t *testing.T) {
	var rec *obs.Recorder
	rec.SetSink(&bytes.Buffer{})
	rec.Emit("ev", obs.KV("k", "v"))
	rec.Sample()
	if err := rec.Close(); err != nil {
		t.Fatalf("nil Recorder Close: %v", err)
	}

	reg := rec.Registry()
	if reg != nil {
		t.Fatalf("nil Recorder's Registry() = %v, want nil", reg)
	}
	reg.Counter("c", "").Inc()
	reg.Counter("c", "").Add(5)
	if v := reg.Counter("c", "").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	reg.Gauge("g", "").Set(1)
	reg.Gauge("g", "").Add(2)
	if v := reg.Gauge("g", "").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
	reg.Histogram("h", "").Observe(3)
	if s := reg.Snapshot(); s != nil {
		t.Errorf("nil registry snapshot = %v", s)
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}

	// A span from a nil Recorder is real: it measures time.
	sp := rec.StartSpan("flow", obs.KV("a", 1))
	if sp == nil {
		t.Fatal("StartSpan on nil Recorder returned nil; must return an unrecorded span")
	}
	child := sp.Child("stage")
	child.SetAttr("k", "v")
	time.Sleep(time.Millisecond)
	child.End()
	if child.Duration() < time.Millisecond {
		t.Errorf("unrecorded span did not measure time: %v", child.Duration())
	}
	if child.Name() != "flow/stage" {
		t.Errorf("unrecorded child name = %q", child.Name())
	}
	sp.End()

	// A nil *Span is valid everywhere.
	var nilSp *obs.Span
	if got := nilSp.Child("x"); got != nil {
		t.Errorf("nil span Child = %v", got)
	}
	nilSp.SetAttr("k", 1)
	nilSp.End()
	if d := nilSp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if n := nilSp.Name(); n != "" {
		t.Errorf("nil span name = %q", n)
	}
	nilSp.Reg().Counter("via_nil_span", "").Inc()
}

// TestRecorderWithoutSink exercises spans and metrics with no sink
// configured: everything must work, nothing must block.
func TestRecorderWithoutSink(t *testing.T) {
	rec := obs.New()
	sp := rec.StartSpan("flow")
	sp.Child("stage").End()
	sp.End()
	rec.Registry().Counter("c_total", "").Inc()
	rec.Sample()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if v := rec.Registry().Counter("c_total", "").Value(); v != 1 {
		t.Fatalf("counter lost without sink: %d", v)
	}
}

// TestSinkStickyError checks that a failing writer never surfaces
// mid-flow: the first error is remembered and returned from Close.
func TestSinkStickyError(t *testing.T) {
	rec := obs.New()
	rec.SetSink(failWriter{})
	sp := rec.StartSpan("flow")
	// Overflow the 32 KiB buffer so the writer is actually hit.
	for i := 0; i < 2000; i++ {
		sp.Child("s").End()
	}
	sp.End()
	if err := rec.Close(); err == nil {
		t.Fatal("Close did not surface the sink write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = errFixed("disk full")

type errFixed string

func (e errFixed) Error() string { return string(e) }
