package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns the live inspection mux:
//
//	/metrics       Prometheus text exposition of the run's registry
//	/metrics.json  JSON snapshot of the same
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  net/http/pprof profiles
//
// Valid on a nil Recorder (the metric endpoints expose an empty
// registry).
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Registry().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "macro3d observability\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running observability HTTP endpoint.
type Server struct {
	srv *http.Server
	url string

	closeOnce sync.Once
	closeErr  error
}

// Serve starts the inspection endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0" for an ephemeral port) and serves in a background
// goroutine until Close. The bound address is available from URL, so
// callers can print the endpoint even with port 0.
func (r *Recorder) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		srv: &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second},
		url: "http://" + ln.Addr().String(),
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// URL returns the endpoint base URL, e.g. "http://127.0.0.1:9090".
func (s *Server) URL() string { return s.url }

// Close shuts the endpoint down, letting in-flight requests (e.g. a
// scraper mid-read of /metrics) finish within a short grace period
// before the listener is torn down hard. Idempotent: daemon restart
// and teardown paths may double-close; later calls do nothing and
// return the first call's result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			s.closeErr = s.srv.Close()
		}
	})
	return s.closeErr
}
