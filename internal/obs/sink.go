package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// event is one JSONL line. Field order is fixed by the struct, and
// Attrs (a map) marshals with sorted keys, so the encoding of a given
// event is deterministic.
type event struct {
	T          int64          `json:"t"` // ns since Recorder start, monotonic in file order
	Ev         string         `json:"ev"`
	ID         int64          `json:"id,omitempty"`
	Parent     int64          `json:"parent,omitempty"`
	Span       string         `json:"span,omitempty"`
	Metric     string         `json:"metric,omitempty"`
	Value      any            `json:"value,omitempty"` // number, or "NaN"/"±Inf" as a string
	DurNS      int64          `json:"dur_ns,omitempty"`
	AllocBytes uint64         `json:"alloc_bytes,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Sink serializes events to a writer, one JSON object per line. Write
// errors are sticky and surface from Flush, so a full disk does not
// fail the instrumented flow.
type Sink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

func newSink(w io.Writer) *Sink {
	return &Sink{w: bufio.NewWriterSize(w, 32<<10)}
}

func (s *Sink) write(ev event) {
	line, err := json.Marshal(ev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// Flush drains the buffer and returns the first write error, if any.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}
