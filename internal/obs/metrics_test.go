package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"macro3d/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one metric of each kind and
// deterministic values, covering the three Prometheus output shapes.
func goldenRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.New().Registry()
	reg.Counter("route_nets_routed_total", "nets routed in the initial pass").Add(42)
	reg.Gauge("route_overflow_gcells", "gcell-layers over capacity").Set(3.5)
	h := reg.Histogram("sta_dirty_frontier_nodes", "dirty frontier size per incremental update", 1, 10, 100)
	for _, v := range []float64{0.5, 7, 50, 10000} {
		h.Observe(v)
	}
	return reg
}

// TestPrometheusGolden locks the Prometheus text exposition down to a
// golden file: HELP/TYPE headers, counter and gauge lines, cumulative
// le-labelled buckets with _sum and _count. Regenerate with -update.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus output drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRegistryConcurrency hammers one registry from GOMAXPROCS
// goroutines — concurrent get-or-create, counter/gauge/histogram
// updates, snapshots and exports — and asserts the totals. Run under
// -race this is the concurrency-safety proof for the metrics layer.
func TestRegistryConcurrency(t *testing.T) {
	reg := obs.New().Registry()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const iters = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create inside the loop on purpose: the lookup path
			// must be as safe as the update path.
			for i := 0; i < iters; i++ {
				reg.Counter("hammer_ops_total", "ops").Inc()
				reg.Gauge("hammer_level", "level").Add(1)
				reg.Histogram("hammer_sizes", "sizes").Observe(float64(i % 100))
				if i%500 == 0 {
					reg.Snapshot()
					reg.WritePrometheus(&bytes.Buffer{})
				}
			}
		}()
	}
	wg.Wait()

	total := uint64(workers) * iters
	if v := reg.Counter("hammer_ops_total", "ops").Value(); v != total {
		t.Errorf("counter = %d, want %d", v, total)
	}
	if v := reg.Gauge("hammer_level", "level").Value(); v != float64(total) {
		t.Errorf("gauge = %v, want %d", v, total)
	}
	snap := reg.Snapshot()
	for _, m := range snap {
		if m.Name == "hammer_sizes" {
			if m.Count != total {
				t.Errorf("histogram count = %d, want %d", m.Count, total)
			}
			last := m.Buckets[len(m.Buckets)-1]
			if last.Count != total {
				t.Errorf("+Inf cumulative bucket = %d, want %d", last.Count, total)
			}
		}
	}
}

// TestKindMismatchPanics pins the contract that re-registering a name
// as a different metric kind is a programming error.
func TestKindMismatchPanics(t *testing.T) {
	reg := obs.New().Registry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

// TestHistogramBounds pins bucket-edge behaviour: a value equal to a
// bound lands in that bound's bucket (le is an upper inclusive bound).
func TestHistogramBounds(t *testing.T) {
	reg := obs.New().Registry()
	h := reg.Histogram("edge", "", 10, 20)
	h.Observe(10) // le="10"
	h.Observe(15) // le="20"
	h.Observe(25) // +Inf
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	got := snap[0].Buckets
	want := []uint64{1, 2, 3} // cumulative
	for i, b := range got {
		if b.Count != want[i] {
			t.Errorf("bucket %d cumulative count = %d, want %d", i, b.Count, want[i])
		}
	}
}

// TestWriteJSONNonFinite is the regression test for the snapshot JSON
// export: histograms always carry a +Inf bucket bound and a gauge can
// hold NaN, neither of which has a JSON literal — the export must
// still produce valid JSON (non-finite values spelled as strings).
func TestWriteJSONNonFinite(t *testing.T) {
	reg := obs.New().Registry()
	reg.Gauge("ratio", "").Set(math.NaN())
	reg.Histogram("h_sizes", "", 1).Observe(2)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Metrics []struct {
			Name    string `json:"name"`
			Value   any    `json:"value"`
			Buckets []struct {
				LE any `json:"le"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, m := range doc.Metrics {
		switch m.Name {
		case "ratio":
			if m.Value != "NaN" {
				t.Errorf("NaN gauge exported as %v, want the string NaN", m.Value)
			}
		case "h_sizes":
			last := m.Buckets[len(m.Buckets)-1]
			if last.LE != "+Inf" {
				t.Errorf("+Inf bound exported as %v", last.LE)
			}
		}
	}
}
