package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers,
// cumulative histogram buckets with le labels, _sum and _count
// series. Metrics appear sorted by name. Nil-safe: a nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, uint64(m.Value)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, promFloat(m.Value)); err != nil {
				return err
			}
		case "histogram":
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.LE, 1) {
					le = promFloat(b.LE)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m.Name, promFloat(m.Sum), m.Name, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation; NaN and ±Inf spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonFloat prepares a float for JSON encoding. JSON has no literal
// for NaN or ±Inf (encoding/json rejects them), but histograms always
// carry a +Inf bucket bound and ratio gauges can be NaN before their
// first update — those values marshal as the strings Prometheus uses.
func jsonFloat(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return promFloat(v)
	}
	return v
}

// MarshalJSON encodes the bucket with a non-finite upper bound
// ("+Inf") spelled as a string.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		LE    any    `json:"le"`
		Count uint64 `json:"count"`
	}{jsonFloat(b.LE), b.Count})
}

// MarshalJSON encodes the snapshot with non-finite values spelled as
// strings, so a registry holding histograms (or a NaN gauge) always
// produces valid JSON.
func (m Metric) MarshalJSON() ([]byte, error) {
	type alias Metric // drops the method, avoiding recursion
	aux := struct {
		alias
		Value any `json:"value"`
		Sum   any `json:"sum,omitempty"`
	}{alias: alias(m), Value: jsonFloat(m.Value)}
	if m.Kind == "histogram" {
		aux.Sum = jsonFloat(m.Sum)
	}
	return json.Marshal(aux)
}

// WriteJSON renders the metric snapshot as a single indented JSON
// document: {"metrics": [...]}, sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Metric{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Metric `json:"metrics"`
	}{snap})
}
