// Trace analysis: per-phase worker occupancy, serial fraction, the
// critical path through the slice DAG, and the Amdahl speedup ceiling
// those imply, plus a ranked list of serial segments for the
// `macro3d trace-report` bottleneck table.
//
// Definitions (DESIGN.md §14 derives them):
//
//   - A leaf slice is any slice outside the "stage" category: the
//     actual chunks of work on worker/main tracks. Stage slices (the
//     flow-stage track) are containers; the analyzer only charges
//     them for time not covered by any leaf slice — the
//     "(uninstrumented)" serial segments.
//   - Per phase (= leaf category): wall = max end − min start,
//     busy = Σ dur, workers = distinct tracks; occupancy =
//     busy / (wall × workers). A sweep over the slice endpoints
//     splits wall into serial time (≤ 1 slice active — this includes
//     idle gaps: one runnable lane is serial by definition) and
//     parallel time.
//   - With serial fraction s = serial/wall and W workers, Amdahl
//     gives the ceiling S(W) = 1/(s + (1−s)/W) and S(∞) = 1/s.
//   - The critical path uses the fork-join structure par records:
//     every traced fan-out is one step, a step cannot finish before
//     its longest chunk, and steps are issued sequentially — so
//     CP = Σ_step max(dur) + Σ (step-0 slices). CP/wall ≈ 1 means
//     the engine is already running at its dependency limit.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// PhaseStats summarizes one phase (leaf slice category).
type PhaseStats struct {
	Phase      string  `json:"phase"`
	WallNS     int64   `json:"wall_ns"`
	BusyNS     int64   `json:"busy_ns"`
	SerialNS   int64   `json:"serial_ns"` // wall with ≤1 slice active
	CritPathNS int64   `json:"critical_path_ns"`
	Workers    int     `json:"workers"` // distinct tracks seen
	Steps      int     `json:"steps"`   // traced fan-outs
	Slices     int     `json:"slices"`
	Occupancy  float64 `json:"occupancy"`       // busy/(wall*workers)
	SerialFrac float64 `json:"serial_fraction"` // serial/wall
	AmdahlAtW  float64 `json:"amdahl_at_workers"`
	AmdahlInf  float64 `json:"amdahl_ceiling"` // 1/s; +Inf rendered as 0

	// CPSpeedup = wall / critical path: the speedup this phase's
	// dependency structure supports with unlimited workers. Unlike the
	// measured wall-clock ratio it stays meaningful on a host that
	// serializes the workers (GOMAXPROCS=1): the chunks then run
	// back-to-back, wall ≈ busy, and wall/CP reports what the same
	// fork-join structure would deliver given the cores.
	CPSpeedup float64 `json:"cp_speedup"`
}

// SerialSeg is one named serial segment, aggregated over its
// occurrences: step-0 slices, single-chunk fan-outs, and stage time
// not covered by any leaf slice.
type SerialSeg struct {
	Name    string  `json:"name"`
	Phase   string  `json:"phase"`
	TotalNS int64   `json:"total_ns"`
	Count   int     `json:"count"`
	Share   float64 `json:"share"` // of total trace wall
}

// Report is the full analysis result.
type Report struct {
	WallNS int64        `json:"wall_ns"` // whole-trace span
	Phases []PhaseStats `json:"phases"`
	Serial []SerialSeg  `json:"serial_segments"` // ranked by TotalNS desc
}

// Analyze computes the report over every recorded slice. A nil or
// empty tracer yields an empty report.
func Analyze(t *Tracer) *Report {
	rep := &Report{}
	if t == nil {
		return rep
	}
	var leaves []trackSlice
	var stages []Slice
	minStart, maxEnd := int64(0), int64(0)
	first := true
	for _, k := range t.Tracks() {
		for _, sl := range k.Slices() {
			if first || sl.Start < minStart {
				minStart = sl.Start
			}
			if first || sl.End() > maxEnd {
				maxEnd = sl.End()
			}
			first = false
			if sl.Cat == "stage" {
				stages = append(stages, sl)
			} else {
				leaves = append(leaves, trackSlice{k.Name(), sl})
			}
		}
	}
	if first {
		return rep
	}
	rep.WallNS = maxEnd - minStart

	// Group leaves by phase, preserving first-seen order.
	byPhase := map[string][]trackSlice{}
	var phaseOrder []string
	for _, ts := range leaves {
		if _, ok := byPhase[ts.sl.Cat]; !ok {
			phaseOrder = append(phaseOrder, ts.sl.Cat)
		}
		byPhase[ts.sl.Cat] = append(byPhase[ts.sl.Cat], ts)
	}

	segTotal := map[string]*SerialSeg{}
	var segOrder []string
	addSeg := func(phase, name string, dur int64) {
		key := phase + "\x00" + name
		s := segTotal[key]
		if s == nil {
			s = &SerialSeg{Name: name, Phase: phase}
			segTotal[key] = s
			segOrder = append(segOrder, key)
		}
		s.TotalNS += dur
		s.Count++
	}

	for _, phase := range phaseOrder {
		group := byPhase[phase]
		ps := PhaseStats{Phase: phase, Slices: len(group)}
		tracks := map[string]bool{}
		steps := map[int64]*stepAgg{}
		var stepOrder []int64
		lo, hi := group[0].sl.Start, group[0].sl.End()
		for _, ts := range group {
			sl := ts.sl
			tracks[ts.track] = true
			ps.BusyNS += sl.Dur
			if sl.Start < lo {
				lo = sl.Start
			}
			if sl.End() > hi {
				hi = sl.End()
			}
			if sl.Step == 0 {
				ps.CritPathNS += sl.Dur
				addSeg(phase, sl.Name, sl.Dur)
				continue
			}
			agg := steps[sl.Step]
			if agg == nil {
				agg = &stepAgg{name: sl.Name}
				steps[sl.Step] = agg
				stepOrder = append(stepOrder, sl.Step)
			}
			agg.count++
			if sl.Dur > agg.max {
				agg.max = sl.Dur
			}
		}
		ps.Workers = len(tracks)
		ps.Steps = len(steps)
		ps.WallNS = hi - lo
		for _, id := range stepOrder {
			agg := steps[id]
			ps.CritPathNS += agg.max
			if agg.count == 1 {
				// A fan-out that ran as a single chunk is serial work.
				addSeg(phase, agg.name, agg.max)
			}
		}
		ps.SerialNS = sweepSerial(group)
		if ps.WallNS > 0 {
			ps.Occupancy = float64(ps.BusyNS) / (float64(ps.WallNS) * float64(ps.Workers))
			ps.SerialFrac = float64(ps.SerialNS) / float64(ps.WallNS)
		}
		s := ps.SerialFrac
		if w := float64(ps.Workers); w > 0 {
			ps.AmdahlAtW = 1 / (s + (1-s)/w)
		}
		if s > 0 {
			ps.AmdahlInf = 1 / s
		}
		if ps.CritPathNS > 0 {
			ps.CPSpeedup = float64(ps.WallNS) / float64(ps.CritPathNS)
		}
		rep.Phases = append(rep.Phases, ps)
	}

	// Stage slices: charge only the portion no leaf slice covers.
	if len(stages) > 0 {
		union := intervalUnion(leaves)
		for _, sl := range stages {
			uncovered := sl.Dur - overlap(union, sl.Start, sl.End())
			if uncovered > 0 {
				addSeg("stage", sl.Name+" (uninstrumented)", uncovered)
			}
		}
	}

	for _, key := range segOrder {
		s := segTotal[key]
		if rep.WallNS > 0 {
			s.Share = float64(s.TotalNS) / float64(rep.WallNS)
		}
		rep.Serial = append(rep.Serial, *s)
	}
	sort.SliceStable(rep.Serial, func(i, j int) bool {
		return rep.Serial[i].TotalNS > rep.Serial[j].TotalNS
	})
	return rep
}

type stepAgg struct {
	name  string
	max   int64
	count int
}

type trackSlice struct {
	track string
	sl    Slice
}

// sweepSerial measures the time within the group's span during which
// at most one slice is active — the serial time, idle gaps included.
func sweepSerial(group []trackSlice) int64 {
	type edge struct {
		at    int64
		delta int
	}
	edges := make([]edge, 0, 2*len(group))
	for _, ts := range group {
		edges = append(edges, edge{ts.sl.Start, +1}, edge{ts.sl.End(), -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // close before open
	})
	var serial int64
	active := 0
	prev := edges[0].at
	for _, e := range edges {
		if e.at > prev {
			if active <= 1 {
				serial += e.at - prev
			}
			prev = e.at
		}
		active += e.delta
	}
	return serial
}

// intervalUnion merges all leaf slice intervals into disjoint sorted
// intervals.
func intervalUnion(leaves []trackSlice) [][2]int64 {
	if len(leaves) == 0 {
		return nil
	}
	ivs := make([][2]int64, 0, len(leaves))
	for _, ts := range leaves {
		ivs = append(ivs, [2]int64{ts.sl.Start, ts.sl.End()})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// overlap returns the measure of [lo,hi) covered by the union.
func overlap(union [][2]int64, lo, hi int64) int64 {
	var cov int64
	for _, iv := range union {
		a, b := iv[0], iv[1]
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			cov += b - a
		}
	}
	return cov
}

// Format renders the report as the trace-report bottleneck table: a
// per-phase summary followed by the top-N serial segments by
// wall-clock share.
func (r *Report) Format(topN int) string {
	var b strings.Builder
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(&b, "trace: wall %.2f ms\n\n", ms(r.WallNS))
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %7s %10s %8s %10s %11s %8s\n",
		"phase", "wall ms", "busy ms", "workers", "steps",
		"occupancy", "serial", "amdahl@W", "amdahl@inf", "cp")
	for _, ps := range r.Phases {
		inf := "inf"
		if ps.AmdahlInf > 0 {
			inf = fmt.Sprintf("%.2fx", ps.AmdahlInf)
		}
		fmt.Fprintf(&b, "%-8s %10.2f %10.2f %8d %7d %9.1f%% %7.1f%% %9.2fx %11s %7.2fx\n",
			ps.Phase, ms(ps.WallNS), ms(ps.BusyNS), ps.Workers, ps.Steps,
			100*ps.Occupancy, 100*ps.SerialFrac, ps.AmdahlAtW, inf, ps.CPSpeedup)
	}
	b.WriteString("\n")
	n := len(r.Serial)
	if topN > 0 && n > topN {
		n = topN
	}
	fmt.Fprintf(&b, "top %d serial segments by wall-clock share:\n", n)
	fmt.Fprintf(&b, "%4s %-40s %-8s %10s %7s %7s\n",
		"#", "segment", "phase", "total ms", "count", "share")
	for i := 0; i < n; i++ {
		s := r.Serial[i]
		fmt.Fprintf(&b, "%4d %-40s %-8s %10.2f %7d %6.1f%%\n",
			i+1, s.Name, s.Phase, ms(s.TotalNS), s.Count, 100*s.Share)
	}
	if n == 0 {
		b.WriteString("  (no serial segments recorded)\n")
	}
	return b.String()
}
