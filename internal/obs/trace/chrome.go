// Chrome trace-event export. The on-disk shape is the JSON object
// form of the trace-event format — {"traceEvents":[...]} — which
// loads directly in Perfetto and chrome://tracing:
//
//   - one ph:"M" process_name record, then one ph:"M" thread_name
//     record per track (tid = track registration index), so the UI
//     shows one named row per worker plus the flow-stage row;
//   - one ph:"X" complete event per slice with ts/dur in microseconds
//     and the slice attributes (plus the fork-join step id) in args.
//
// Events are written in track-registration order, then append order
// within each track — never sorted by timestamp — so two identical
// runs differ only in ts/dur values. NormalizeChrome exists for
// exactly that comparison.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"time"
)

const chromePID = 1

// chromeEvent is the wire shape of one trace event. Field order is
// fixed by the struct, keeping the output byte-deterministic.
type chromeEvent struct {
	Ph   string           `json:"ph"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ts   *float64         `json:"ts,omitempty"`
	Dur  *float64         `json:"dur,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeMeta struct {
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Name string            `json:"name"`
	Args map[string]string `json:"args"`
}

// WriteChrome writes the trace as Chrome trace-event JSON. The writer
// is buffered internally; the first error is returned.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := func(v any, last bool) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		sep := ",\n"
		if last {
			sep = "\n"
		}
		_, err = bw.WriteString(sep)
		return err
	}
	tracks := t.Tracks()
	total := 1 + len(tracks) // metadata events
	type flat struct {
		tid int
		sl  Slice
	}
	var all []flat
	for tid, k := range tracks {
		for _, sl := range k.Slices() {
			all = append(all, flat{tid, sl})
		}
	}
	total += len(all)
	n := 0
	emit := func(v any) error {
		n++
		return enc(v, n == total)
	}
	if err := emit(chromeMeta{Ph: "M", Pid: chromePID, Tid: 0,
		Name: "process_name", Args: map[string]string{"name": "macro3d"}}); err != nil {
		return err
	}
	for tid, k := range tracks {
		if err := emit(chromeMeta{Ph: "M", Pid: chromePID, Tid: tid,
			Name: "thread_name", Args: map[string]string{"name": k.Name()}}); err != nil {
			return err
		}
	}
	for _, f := range all {
		ts := float64(f.sl.Start) / 1e3
		dur := float64(f.sl.Dur) / 1e3
		ev := chromeEvent{Ph: "X", Pid: chromePID, Tid: f.tid,
			Name: f.sl.Name, Cat: f.sl.Cat, Ts: &ts, Dur: &dur}
		if f.sl.Step != 0 || len(f.sl.Args) > 0 {
			ev.Args = map[string]int64{}
			if f.sl.Step != 0 {
				ev.Args["step"] = f.sl.Step
			}
			for _, a := range f.sl.Args {
				ev.Args[a.Key] = a.Val
			}
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

var chromeTimeRe = regexp.MustCompile(`"(ts|dur)":[0-9][0-9.e+-]*`)

// NormalizeChrome replaces every ts/dur value with a placeholder so
// two traces of identical runs can be compared byte-for-byte. The
// structure — track order, event order, names, categories, step ids
// and counts — is untouched.
func NormalizeChrome(b []byte) []byte {
	return chromeTimeRe.ReplaceAll(b, []byte(`"$1":0`))
}

// ReadChrome parses a trace previously written by WriteChrome back
// into a Tracer, so `macro3d trace-report -in trace.json` can analyze
// a file captured earlier. It accepts only this package's dialect
// (complete events plus thread_name metadata), not arbitrary Chrome
// traces.
func ReadChrome(r io.Reader) (*Tracer, error) {
	var raw struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	type anyEvent struct {
		Ph   string          `json:"ph"`
		Tid  int             `json:"tid"`
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Args json.RawMessage `json:"args"`
	}
	t := NewAt(time.Unix(0, 0))
	names := map[int]string{}
	var events []anyEvent
	for _, rm := range raw.TraceEvents {
		var ev anyEvent
		if err := json.Unmarshal(rm, &ev); err != nil {
			return nil, fmt.Errorf("trace: parse event: %w", err)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				var args struct {
					Args map[string]string `json:"args"`
				}
				if err := json.Unmarshal(rm, &args); err == nil {
					names[ev.Tid] = args.Args["name"]
				}
			}
		case "X":
			events = append(events, ev)
		}
	}
	// Materialize tracks in tid order so analysis sees the same
	// registration order the writer used.
	var tids []int
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		t.Track(names[tid])
	}
	for _, ev := range events {
		name := names[ev.Tid]
		if name == "" {
			name = "tid " + strconv.Itoa(ev.Tid)
		}
		sl := Slice{
			Name:  ev.Name,
			Cat:   ev.Cat,
			Start: int64(ev.Ts * 1e3),
			Dur:   int64(ev.Dur * 1e3),
		}
		if len(ev.Args) > 0 {
			var args map[string]int64
			if err := json.Unmarshal(ev.Args, &args); err == nil {
				var keys []string
				for k := range args {
					if k == "step" {
						sl.Step = args[k]
						continue
					}
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					sl.Args = append(sl.Args, Arg{Key: k, Val: args[k]})
				}
			}
		}
		t.Track(name).addSlice(sl)
	}
	return t, nil
}
