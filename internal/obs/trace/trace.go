// Package trace is a low-overhead execution tracer for the parallel
// engines. Where internal/obs records a hierarchical span tree (wall
// time per stage), trace records a flat timeline of task-level slices
// — one per routed batch chunk, placement solve chunk, legalization
// row sweep, serve job, … — on named tracks, so wall-clock can be
// attributed to individual workers, batches and serial segments.
//
// The contract mirrors the obs nil-safe rule: every method on a nil
// *Tracer, nil *Track or nil *Set is a no-op, and the zero Span is
// inert. Hot paths pay exactly one pointer comparison when tracing is
// disabled, and recording a slice never changes engine behaviour, so
// the byte-identical-PPA guarantee of the observability layer extends
// to the tracer.
//
// Determinism: slices are kept in per-track append-only buffers and
// merged at flush in track-registration order, then append order —
// never timestamp order. Two identical runs therefore produce traces
// that differ only in the recorded times, which is what the
// golden-file test normalizes away.
package trace

import (
	"sync"
	"time"
)

// Arg is one small typed attribute attached to a slice (batch id, net
// count, stash hits, …). Keeping attributes as an ordered list rather
// than a map keeps the flush byte-deterministic.
type Arg struct {
	Key string
	Val int64
}

// N is shorthand for constructing an Arg.
func N(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// Slice is one recorded interval on a track. Start and Dur are
// nanoseconds relative to the tracer epoch. Step groups the slices of
// one fork-join fan-out (a par.ChunksTr/ItemsTr call): all chunks of
// the same call share a step id, and the analyzer's critical path
// takes the per-step maximum. Step 0 marks serial work recorded
// outside any fan-out.
type Slice struct {
	Name  string
	Cat   string // phase: "route", "place", "stage", "serve", "cache"
	Start int64  // ns since epoch
	Dur   int64  // ns
	Step  int64  // fork-join step id; 0 = serial
	Args  []Arg
}

// End returns the slice end time in ns since the epoch.
func (s *Slice) End() int64 { return s.Start + s.Dur }

// Track is one named timeline — a worker, the orchestrating
// goroutine, the flow-stage row, or a serve tenant. Slices on a track
// never overlap (each track is fed by one goroutine at a time), which
// is what makes the Chrome rendering one row per worker.
type Track struct {
	tr     *Tracer
	name   string
	mu     sync.Mutex
	slices []Slice
}

// Name returns the track's display name.
func (k *Track) Name() string {
	if k == nil {
		return ""
	}
	return k.name
}

// Tracer owns the epoch, the track registry and the fork-join step
// counter. Construct with New; a nil Tracer is the disabled tracer.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	byName map[string]*Track
	order  []*Track
	step   int64
}

// New returns an enabled tracer whose epoch is now.
func New() *Tracer { return NewAt(time.Now()) }

// NewAt returns a tracer with an explicit epoch. Tests use it
// together with Track.Add to build byte-deterministic traces.
func NewAt(epoch time.Time) *Tracer {
	return &Tracer{epoch: epoch, byName: map[string]*Track{}}
}

// Epoch returns the tracer's zero time.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Track returns the named track, creating it on first use. Track
// creation order is the flush order, and engine execution order is
// deterministic, so flush order is too.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	k := t.byName[name]
	if k == nil {
		k = &Track{tr: t, name: name}
		t.byName[name] = k
		t.order = append(t.order, k)
	}
	t.mu.Unlock()
	return k
}

// NextStep reserves a fresh fork-join step id. par's traced fan-outs
// call it once per Chunks/Items invocation; all chunk slices of that
// invocation carry the id. Fan-outs are issued sequentially from one
// orchestrating goroutine per engine, so the ids are deterministic.
func (t *Tracer) NextStep() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.step++
	s := t.step
	t.mu.Unlock()
	return s
}

// Tracks returns the registered tracks in creation order.
func (t *Tracer) Tracks() []*Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]*Track(nil), t.order...)
	t.mu.Unlock()
	return out
}

// Span is an open slice. It is a value: the zero Span (from a nil
// track) is inert and End on it is a no-op.
type Span struct {
	k     *Track
	name  string
	cat   string
	step  int64
	start time.Time
}

// Begin opens a slice on the track. The step id is 0 (serial); traced
// fan-outs go through Set, which stamps the shared step.
func (k *Track) Begin(cat, name string) Span {
	if k == nil {
		return Span{}
	}
	return Span{k: k, name: name, cat: cat, start: time.Now()}
}

// End closes the slice and appends it to the track buffer.
func (s Span) End(args ...Arg) {
	if s.k == nil {
		return
	}
	now := time.Now()
	sl := Slice{
		Name:  s.name,
		Cat:   s.cat,
		Start: s.start.Sub(s.k.tr.epoch).Nanoseconds(),
		Dur:   now.Sub(s.start).Nanoseconds(),
		Step:  s.step,
		Args:  args,
	}
	s.k.mu.Lock()
	s.k.slices = append(s.k.slices, sl)
	s.k.mu.Unlock()
}

// Add records a completed slice with explicit times. serve uses it to
// record queue-wait intervals after the fact, and tests use it with
// NewAt for byte-deterministic traces.
func (k *Track) Add(cat, name string, start, end time.Time, args ...Arg) {
	if k == nil {
		return
	}
	sl := Slice{
		Name:  name,
		Cat:   cat,
		Start: start.Sub(k.tr.epoch).Nanoseconds(),
		Dur:   end.Sub(start).Nanoseconds(),
		Args:  args,
	}
	k.mu.Lock()
	k.slices = append(k.slices, sl)
	k.mu.Unlock()
}

// addSlice appends a fully-formed slice (importer path).
func (k *Track) addSlice(sl Slice) {
	if k == nil {
		return
	}
	k.mu.Lock()
	k.slices = append(k.slices, sl)
	k.mu.Unlock()
}

// Slices returns a copy of the track's buffer in append order.
func (k *Track) Slices() []Slice {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	out := append([]Slice(nil), k.slices...)
	k.mu.Unlock()
	return out
}

// Set is the per-worker track fan used by par's traced fan-outs: one
// track per dense worker id, all slices of one call stamped with one
// step id. Worker tracks are shared across Sets of the same tracer
// ("worker 0" is the same row whether routing or placing is on it),
// so the Chrome view stays one row per worker.
type Set struct {
	tr     *Tracer
	cat    string
	tracks []*Track
	step   int64
}

// WorkerSet returns a Set over `workers` dense worker-id tracks for
// the given phase (category). Returns nil on a nil tracer, which is
// the signal par's traced variants use to skip all recording.
func (t *Tracer) WorkerSet(cat string, workers int) *Set {
	if t == nil {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	s := &Set{tr: t, cat: cat, tracks: make([]*Track, workers)}
	for w := 0; w < workers; w++ {
		s.tracks[w] = t.Track(workerName(w))
	}
	return s
}

func workerName(w int) string {
	// Tiny itoa to keep the hot path allocation-free-ish; worker
	// counts are small.
	if w < 10 {
		return "worker " + string(rune('0'+w))
	}
	buf := [8]byte{}
	i := len(buf)
	for w > 0 {
		i--
		buf[i] = byte('0' + w%10)
		w /= 10
	}
	return "worker " + string(buf[i:])
}

// NextStep advances the set to a fresh fork-join step. Called once
// per traced fan-out, before the workers start.
func (s *Set) NextStep() {
	if s == nil {
		return
	}
	s.step = s.tr.NextStep()
}

// Begin opens a slice on worker w's track, stamped with the current
// step id. Out-of-range worker ids clamp to the last track rather
// than panic — the tracer must never take an engine down.
func (s *Set) Begin(w int, name string) Span {
	if s == nil {
		return Span{}
	}
	if w < 0 {
		w = 0
	}
	if w >= len(s.tracks) {
		w = len(s.tracks) - 1
	}
	sp := s.tracks[w].Begin(s.cat, name)
	sp.step = s.step
	return sp
}
