package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedTracer builds a small deterministic trace with an explicit
// epoch: a stage container, a serial main-track slice, and one
// two-worker fan-out step — enough to exercise export, import and
// every analyzer path.
func fixedTracer() *Tracer {
	epoch := time.Unix(100, 0)
	t := NewAt(epoch)
	at := func(ms int64) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	t.Track("stages").Add("stage", "route", at(0), at(100))
	main := t.Track("main")
	main.Add("route", "route/plan", at(0), at(10), N("nets", 40))
	step := t.NextStep()
	w0, w1 := t.Track("worker 0"), t.Track("worker 1")
	w0.addSlice(Slice{Name: "route/batch", Cat: "route", Start: 10e6, Dur: 60e6, Step: step, Args: []Arg{{"nets", 20}}})
	w1.addSlice(Slice{Name: "route/batch", Cat: "route", Start: 10e6, Dur: 40e6, Step: step, Args: []Arg{{"nets", 20}}})
	main.Add("route", "route/commit", at(70), at(90), N("nets", 40))
	return t
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Track("x") != nil {
		t.Fatal("nil tracer must return nil track")
	}
	if tr.WorkerSet("route", 4) != nil {
		t.Fatal("nil tracer must return nil set")
	}
	if tr.NextStep() != 0 {
		t.Fatal("nil tracer NextStep must return 0")
	}
	var k *Track
	sp := k.Begin("c", "n")
	sp.End() // must not panic
	k.Add("c", "n", time.Now(), time.Now())
	if k.Slices() != nil || k.Name() != "" {
		t.Fatal("nil track must be inert")
	}
	var s *Set
	s.NextStep()
	s.Begin(0, "n").End()
	rep := Analyze(nil)
	if rep.WallNS != 0 || len(rep.Phases) != 0 {
		t.Fatal("nil tracer must analyze to an empty report")
	}
}

func TestSpanRecordsSlice(t *testing.T) {
	tr := New()
	k := tr.Track("main")
	sp := k.Begin("route", "work")
	time.Sleep(time.Millisecond)
	sp.End(N("nets", 7))
	got := k.Slices()
	if len(got) != 1 {
		t.Fatalf("got %d slices, want 1", len(got))
	}
	sl := got[0]
	if sl.Name != "work" || sl.Cat != "route" || sl.Step != 0 {
		t.Fatalf("bad slice %+v", sl)
	}
	if sl.Dur <= 0 {
		t.Fatalf("non-positive duration %d", sl.Dur)
	}
	if len(sl.Args) != 1 || sl.Args[0] != (Arg{"nets", 7}) {
		t.Fatalf("bad args %+v", sl.Args)
	}
}

func TestWorkerSetSharesStepAndTracks(t *testing.T) {
	tr := New()
	s := tr.WorkerSet("route", 3)
	s.NextStep()
	for w := 0; w < 3; w++ {
		s.Begin(w, "chunk").End()
	}
	s.NextStep()
	s.Begin(1, "chunk").End()
	// Same tracer, different phase: worker tracks are shared.
	p := tr.WorkerSet("place", 3)
	p.NextStep()
	p.Begin(0, "solve").End()

	tracks := tr.Tracks()
	if len(tracks) != 3 {
		t.Fatalf("got %d tracks, want 3 shared worker tracks", len(tracks))
	}
	w0 := tr.Track("worker 0").Slices()
	if len(w0) != 2 || w0[0].Step != 1 || w0[1].Step != 3 || w0[1].Cat != "place" {
		t.Fatalf("bad worker-0 slices %+v", w0)
	}
	w1 := tr.Track("worker 1").Slices()
	if len(w1) != 2 || w1[1].Step != 2 {
		t.Fatalf("bad worker-1 slices %+v", w1)
	}
	// Out-of-range worker ids clamp instead of panicking.
	s.Begin(99, "stray").End()
	s.Begin(-1, "stray").End()
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// And it must be valid JSON of the documented shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 10 { // 1 process + 4 tracks + 5 slices
		t.Fatalf("got %d events, want 10", len(doc.TraceEvents))
	}
}

func TestNormalizeChromeMasksOnlyTimes(t *testing.T) {
	var a, b bytes.Buffer
	tr1 := fixedTracer()
	if err := tr1.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	// Same structure, different epoch offsets — as two identical runs
	// would produce.
	epoch := time.Unix(200, 0)
	tr2 := NewAt(epoch)
	at := func(ms int64) time.Time { return epoch.Add(time.Duration(ms)*time.Millisecond + 137*time.Microsecond) }
	tr2.Track("stages").Add("stage", "route", at(0), at(103))
	main := tr2.Track("main")
	main.Add("route", "route/plan", at(0), at(11), N("nets", 40))
	step := tr2.NextStep()
	tr2.Track("worker 0").addSlice(Slice{Name: "route/batch", Cat: "route", Start: 11e6, Dur: 61e6, Step: step, Args: []Arg{{"nets", 20}}})
	tr2.Track("worker 1").addSlice(Slice{Name: "route/batch", Cat: "route", Start: 11e6, Dur: 41e6, Step: step, Args: []Arg{{"nets", 20}}})
	main.Add("route", "route/commit", at(72), at(91), N("nets", 40))
	if err := tr2.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("test premise broken: raw traces should differ in timestamps")
	}
	if !bytes.Equal(NormalizeChrome(a.Bytes()), NormalizeChrome(b.Bytes())) {
		t.Fatalf("normalized traces differ:\n%s\n---\n%s",
			NormalizeChrome(a.Bytes()), NormalizeChrome(b.Bytes()))
	}
}

func TestReadChromeRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	orig := fixedTracer()
	if err := orig.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var reBuf bytes.Buffer
	if err := back.WriteChrome(&reBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), reBuf.Bytes()) {
		t.Fatalf("roundtrip drifted:\n%s\n---\n%s", buf.Bytes(), reBuf.Bytes())
	}
	// Analysis of the imported trace must match the original's.
	a, b := Analyze(orig), Analyze(back)
	if a.WallNS != b.WallNS || len(a.Phases) != len(b.Phases) || len(a.Serial) != len(b.Serial) {
		t.Fatalf("imported analysis differs: %+v vs %+v", a, b)
	}
}

func TestAnalyzeFixedTrace(t *testing.T) {
	rep := Analyze(fixedTracer())
	if rep.WallNS != 100e6 {
		t.Fatalf("wall %d, want 100ms", rep.WallNS)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Phase != "route" {
		t.Fatalf("phases %+v", rep.Phases)
	}
	ps := rep.Phases[0]
	// Tracks: main, worker 0, worker 1.
	if ps.Workers != 3 || ps.Steps != 1 || ps.Slices != 4 {
		t.Fatalf("got workers=%d steps=%d slices=%d", ps.Workers, ps.Steps, ps.Slices)
	}
	if ps.WallNS != 90e6 {
		t.Fatalf("phase wall %d, want 90ms", ps.WallNS)
	}
	if ps.BusyNS != (10+60+40+20)*1e6 {
		t.Fatalf("busy %d", ps.BusyNS)
	}
	// Concurrency timeline: plan 0-10 (1 active), 10-50 (2 active),
	// 50-70 (1 active: worker 0 tail), 70-90 commit (1 active).
	if ps.SerialNS != 50e6 {
		t.Fatalf("serial %d, want 50ms", ps.SerialNS)
	}
	// CP = plan 10 + max(60,40) + commit 20 = 90ms.
	if ps.CritPathNS != 90e6 {
		t.Fatalf("critical path %d, want 90ms", ps.CritPathNS)
	}
	wantS := 50.0 / 90.0
	if math.Abs(ps.SerialFrac-wantS) > 1e-9 {
		t.Fatalf("serial fraction %f, want %f", ps.SerialFrac, wantS)
	}
	wantOcc := 130.0 / (90.0 * 3)
	if math.Abs(ps.Occupancy-wantOcc) > 1e-9 {
		t.Fatalf("occupancy %f, want %f", ps.Occupancy, wantOcc)
	}
	wantCeil := 1 / (wantS + (1-wantS)/3)
	if math.Abs(ps.AmdahlAtW-wantCeil) > 1e-9 {
		t.Fatalf("amdahl@W %f, want %f", ps.AmdahlAtW, wantCeil)
	}
	if math.Abs(ps.AmdahlInf-1/wantS) > 1e-9 {
		t.Fatalf("amdahl@inf %f, want %f", ps.AmdahlInf, 1/wantS)
	}
	// Serial segments: plan and commit (step 0) plus the stage's
	// uncovered tail (90-100ms).
	if len(rep.Serial) != 3 {
		t.Fatalf("serial segments %+v", rep.Serial)
	}
	byName := map[string]SerialSeg{}
	for _, s := range rep.Serial {
		byName[s.Name] = s
	}
	if byName["route/commit"].TotalNS != 20e6 || byName["route/plan"].TotalNS != 10e6 {
		t.Fatalf("segments %+v", rep.Serial)
	}
	if got := byName["route (uninstrumented)"]; got.TotalNS != 10e6 || got.Phase != "stage" {
		t.Fatalf("uninstrumented segment %+v", got)
	}
	// Ranked by total: commit (20) first.
	if rep.Serial[0].Name != "route/commit" {
		t.Fatalf("ranking %+v", rep.Serial)
	}
	out := rep.Format(10)
	for _, want := range []string{"route", "occupancy", "serial segments", "route/commit"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeSingleChunkFanoutIsSerial(t *testing.T) {
	tr := NewAt(time.Unix(0, 0))
	step := tr.NextStep()
	tr.Track("worker 0").addSlice(Slice{Name: "place/solve", Cat: "place", Start: 0, Dur: 5e6, Step: step})
	rep := Analyze(tr)
	if len(rep.Serial) != 1 || rep.Serial[0].Name != "place/solve" || rep.Serial[0].TotalNS != 5e6 {
		t.Fatalf("single-chunk fan-out not counted serial: %+v", rep.Serial)
	}
	if rep.Phases[0].SerialFrac != 1 {
		t.Fatalf("serial fraction %f, want 1", rep.Phases[0].SerialFrac)
	}
	if rep.Phases[0].AmdahlInf != 1 {
		t.Fatalf("amdahl ceiling %f, want 1", rep.Phases[0].AmdahlInf)
	}
}
