package gds

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"macro3d/internal/core"
	"macro3d/internal/flows"
	"macro3d/internal/piton"
)

// parseRecords splits a stream into (type, payload) records.
func parseRecords(t *testing.T, b []byte) [][2]interface{} {
	t.Helper()
	var out [][2]interface{}
	for len(b) > 0 {
		if len(b) < 4 {
			t.Fatal("truncated record header")
		}
		total := int(binary.BigEndian.Uint16(b))
		kind := binary.BigEndian.Uint16(b[2:])
		if total < 4 || total > len(b) {
			t.Fatalf("bad record length %d (have %d)", total, len(b))
		}
		out = append(out, [2]interface{}{kind, append([]byte(nil), b[4:total]...)})
		b = b[total:]
	}
	return out
}

func kinds(recs [][2]interface{}) []uint16 {
	ks := make([]uint16, len(recs))
	for i, r := range recs {
		ks[i] = r[0].(uint16)
	}
	return ks
}

func TestWriterStreamStructure(t *testing.T) {
	var buf bytes.Buffer
	g := NewWriter(&buf, "lib")
	g.BeginStruct("die")
	g.Boundary(1, 0, 0, 10, 5)
	g.Path(3, 0.2, 0, 0, 100, 0)
	g.EndStruct()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	recs := parseRecords(t, buf.Bytes())
	ks := kinds(recs)
	want := []uint16{recHEADER, recBGNLIB, recLIBNAME, recUNITS, recBGNSTR, recSTRNAME,
		recBOUNDARY, recLAYER, recDATATYPE, recXY, recENDEL,
		recPATH, recLAYER, recDATATYPE, recWIDTH, recXY, recENDEL,
		recENDSTR, recENDLIB}
	if len(ks) != len(want) {
		t.Fatalf("record count %d, want %d: %v", len(ks), len(want), ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("record %d = 0x%04x, want 0x%04x", i, ks[i], want[i])
		}
	}
	// Boundary XY: 5 points closed polygon in nm.
	var xy []byte
	for _, r := range recs {
		if r[0].(uint16) == recXY {
			xy = r[1].([]byte)
			break
		}
	}
	if len(xy) != 40 {
		t.Fatalf("boundary XY payload %d bytes", len(xy))
	}
	x0 := int32(binary.BigEndian.Uint32(xy[0:]))
	x1 := int32(binary.BigEndian.Uint32(xy[8:]))
	if x0 != 0 || x1 != 10*DBUPerUm {
		t.Fatalf("coords %d %d", x0, x1)
	}
	first := xy[:8]
	last := xy[32:]
	if !bytes.Equal(first, last) {
		t.Fatal("polygon not closed")
	}
}

// decodeGDSReal inverts the excess-64 encoding for the test.
func decodeGDSReal(b []byte) float64 {
	if isZero(b) {
		return 0
	}
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7F) - 64
	var mant uint64
	for i := 1; i < 8; i++ {
		mant = mant<<8 | uint64(b[i])
	}
	return sign * float64(mant) / math.Pow(2, 56) * math.Pow(16, float64(exp))
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestGDSRealRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1e-3, 1e-9, 1, 0.5, 2, 1e6, 3.14159, 1e-12} {
		got := decodeGDSReal(gdsReal(v))
		if v == 0 {
			if got != 0 {
				t.Fatalf("zero encodes to %v", got)
			}
			continue
		}
		if math.Abs(got-v)/v > 1e-12 {
			t.Fatalf("real %v round-trips to %v", v, got)
		}
	}
	// Negative values.
	if got := decodeGDSReal(gdsReal(-2.5)); math.Abs(got+2.5) > 1e-12 {
		t.Fatalf("-2.5 → %v", got)
	}
}

func TestLayerNumber(t *testing.T) {
	cases := []struct {
		name string
		want int16
	}{
		{"M1", 1}, {"M6", 6}, {"M4_MD", 14}, {"M1_MD", 11}, {"F2F_VIA", LayerF2F},
	}
	for _, c := range cases {
		got, err := LayerNumber(c.name)
		if err != nil || got != c.want {
			t.Errorf("LayerNumber(%s) = %d, %v", c.name, got, err)
		}
	}
	if _, err := LayerNumber("poly"); err == nil {
		t.Fatal("unknown layer accepted")
	}
}

func TestExportSeparatedDies(t *testing.T) {
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 5}
	_, st, mol, err := flows.RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logicPart, macroPart, err := core.Separate(mol, st.Routes, st.DB)
	if err != nil {
		t.Fatal(err)
	}
	var logicBuf, macroBuf bytes.Buffer
	if err := ExportDie(&logicBuf, st.Design, logicPart, st.Routes, st.DB); err != nil {
		t.Fatal(err)
	}
	if err := ExportDie(&macroBuf, st.Design, macroPart, st.Routes, st.DB); err != nil {
		t.Fatal(err)
	}
	lr := parseRecords(t, logicBuf.Bytes())
	mr := parseRecords(t, macroBuf.Bytes())
	countLayer := func(recs [][2]interface{}, layer int16) int {
		n := 0
		for _, r := range recs {
			if r[0].(uint16) == recLAYER {
				b := r[1].([]byte)
				if int16(binary.BigEndian.Uint16(b)) == layer {
					n++
				}
			}
		}
		return n
	}
	// Logic die: cells present, no macro-die wires.
	if countLayer(lr, LayerCells) == 0 {
		t.Fatal("logic die has no cell geometry")
	}
	if countLayer(lr, macroDieBase+1) != 0 {
		t.Fatal("logic die carries M1_MD wires")
	}
	if countLayer(lr, 5) == 0 {
		t.Fatal("logic die has no M5 wires")
	}
	// Macro die: macros, _MD pins accessed... and no logic metal.
	if countLayer(mr, LayerMacros) == 0 {
		t.Fatal("macro die has no macros")
	}
	if countLayer(mr, 1) != 0 {
		t.Fatal("macro die carries M1 wires")
	}
	// Both carry the SAME number of F2F bumps.
	lb, mb := countLayer(lr, LayerF2F), countLayer(mr, LayerF2F)
	if lb == 0 || lb != mb {
		t.Fatalf("bump counts differ: %d vs %d", lb, mb)
	}
}
