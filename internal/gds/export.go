package gds

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"macro3d/internal/cell"
	"macro3d/internal/core"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/tech"
)

// GDS layer numbering: logic metals M<k> → k, macro-die metals
// M<k>_MD → 10+k, the F2F bonding layer → 50, die outline → 0,
// substrate cells → 60, macro footprints → 61.
const (
	LayerOutline = 0
	LayerCells   = 60
	LayerMacros  = 61
	LayerF2F     = 50
	macroDieBase = 10
)

// LayerNumber maps a stack layer name to its GDS layer.
func LayerNumber(name string) (int16, error) {
	if name == tech.F2FLayerName {
		return LayerF2F, nil
	}
	base := int16(0)
	if strings.HasSuffix(name, tech.MDSuffix) {
		base = macroDieBase
		name = strings.TrimSuffix(name, tech.MDSuffix)
	}
	if !strings.HasPrefix(name, "M") {
		return 0, fmt.Errorf("gds: unknown layer %q", name)
	}
	k, err := strconv.Atoi(name[1:])
	if err != nil {
		return 0, fmt.Errorf("gds: unknown layer %q", name)
	}
	return base + int16(k), nil
}

// ExportDie writes one production die as a GDSII structure: outline,
// the substrate objects belonging to the part, routed wires on the
// part's layers, and the shared F2F bumps.
func ExportDie(w io.Writer, d *netlist.Design, part *core.DieLayout, routes *route.Result, db *route.DB) error {
	g := NewWriter(w, part.Name)
	g.BeginStruct(part.Name)

	die := part.Outline
	g.Boundary(LayerOutline, die.Lx, die.Ly, die.Ux, die.Uy)

	// Substrate objects: the logic die carries all standard cells (and
	// filler-sized macro stand-ins); the macro die the real macros.
	for _, inst := range d.Instances {
		if !inst.Placed {
			continue
		}
		b := inst.Bounds()
		switch {
		case inst.IsMacro() && inst.Die == part.Die:
			g.Boundary(LayerMacros, b.Lx, b.Ly, b.Ux, b.Uy)
		case !inst.IsMacro() && part.Die == netlist.LogicDie &&
			inst.Master.Kind != cell.KindFiller:
			g.Boundary(LayerCells, b.Lx, b.Ly, b.Ux, b.Uy)
		}
	}

	// Wires: every straight segment on a layer belonging to this part.
	wanted := map[int]int16{}
	for _, name := range part.Layers {
		if name == tech.F2FLayerName {
			continue
		}
		li := db.LayerIndex(name)
		if li < 0 {
			continue
		}
		num, err := LayerNumber(name)
		if err != nil {
			return err
		}
		wanted[li] = num
	}
	grid := db.Grid
	for _, r := range routes.Routes {
		if r == nil {
			continue
		}
		for _, s := range r.Segments {
			if s.IsVia() {
				continue
			}
			num, ok := wanted[s.A.L]
			if !ok {
				continue
			}
			a := grid.BinCenter(s.A.X, s.A.Y)
			b := grid.BinCenter(s.B.X, s.B.Y)
			width := db.Beol.Layers[s.A.L].Width
			g.Path(num, width, a.X, a.Y, b.X, b.Y)
		}
	}

	// Shared bonding bumps.
	for _, p := range part.Bumps {
		half := 0.25 // 0.5 µm bump
		g.Boundary(LayerF2F, p.X-half, p.Y-half, p.X+half, p.Y+half)
	}

	g.EndStruct()
	return g.Close()
}
