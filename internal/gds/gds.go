// Package gds writes GDSII stream format — the production handoff the
// paper's separation step produces for each die. The writer emits a
// standard library with one structure per die containing the die
// outline, cell and macro footprints, routed wire paths per metal
// layer, and the F2F bump boxes (present in both dies' streams, as the
// paper prescribes). Files open in standard viewers (KLayout etc.).
package gds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Record types (GDSII stream spec).
const (
	recHEADER   = 0x0002
	recBGNLIB   = 0x0102
	recLIBNAME  = 0x0206
	recUNITS    = 0x0305
	recENDLIB   = 0x0400
	recBGNSTR   = 0x0502
	recSTRNAME  = 0x0606
	recENDSTR   = 0x0700
	recBOUNDARY = 0x0800
	recPATH     = 0x0900
	recLAYER    = 0x0D02
	recDATATYPE = 0x0E02
	recWIDTH    = 0x0F03
	recXY       = 0x1003
	recENDEL    = 0x1100
)

// Writer emits GDSII records. Coordinates are in database units; the
// stream declares 1 dbu = 1 nm (so µm values are scaled by 1000).
type Writer struct {
	w   *bufio.Writer
	err error
}

// DBUPerUm is the database-unit scale: 1000 dbu per µm (1 nm grid).
const DBUPerUm = 1000

// NewWriter starts a GDSII stream with the given library name.
func NewWriter(w io.Writer, libName string) *Writer {
	g := &Writer{w: bufio.NewWriter(w)}
	g.record(recHEADER, u16(600))
	// BGNLIB carries modification/access timestamps: 12 int16 values.
	// A reproduction artifact wants determinism, so they are zero.
	g.record(recBGNLIB, make([]byte, 24))
	g.record(recLIBNAME, str(libName))
	g.record(recUNITS, append(gdsReal(1e-3), gdsReal(1e-9)...))
	return g
}

// BeginStruct opens a structure (a die layout).
func (g *Writer) BeginStruct(name string) {
	g.record(recBGNSTR, make([]byte, 24))
	g.record(recSTRNAME, str(name))
}

// EndStruct closes the open structure.
func (g *Writer) EndStruct() { g.record(recENDSTR, nil) }

// Boundary emits a rectangle on a layer. Coordinates in µm.
func (g *Writer) Boundary(layer int16, lx, ly, ux, uy float64) {
	g.record(recBOUNDARY, nil)
	g.record(recLAYER, i16(layer))
	g.record(recDATATYPE, i16(0))
	// Closed polygon: 5 points, first repeated.
	pts := []int32{
		dbu(lx), dbu(ly),
		dbu(ux), dbu(ly),
		dbu(ux), dbu(uy),
		dbu(lx), dbu(uy),
		dbu(lx), dbu(ly),
	}
	g.record(recXY, i32s(pts))
	g.record(recENDEL, nil)
}

// Path emits a two-point wire of the given width on a layer (µm).
func (g *Writer) Path(layer int16, widthUm, x1, y1, x2, y2 float64) {
	g.record(recPATH, nil)
	g.record(recLAYER, i16(layer))
	g.record(recDATATYPE, i16(0))
	g.record(recWIDTH, i32s([]int32{dbu(widthUm)}))
	g.record(recXY, i32s([]int32{dbu(x1), dbu(y1), dbu(x2), dbu(y2)}))
	g.record(recENDEL, nil)
}

// Close terminates the library and flushes. It returns the first error
// encountered while writing.
func (g *Writer) Close() error {
	g.record(recENDLIB, nil)
	if g.err != nil {
		return g.err
	}
	return g.w.Flush()
}

// record writes one GDSII record: u16 total length, u16 type, payload.
func (g *Writer) record(kind uint16, payload []byte) {
	if g.err != nil {
		return
	}
	if len(payload)%2 == 1 {
		payload = append(payload, 0)
	}
	total := 4 + len(payload)
	if total > 0xFFFF {
		g.err = fmt.Errorf("gds: record 0x%04x too long (%d bytes)", kind, total)
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], uint16(total))
	binary.BigEndian.PutUint16(hdr[2:], kind)
	if _, err := g.w.Write(hdr[:]); err != nil {
		g.err = err
		return
	}
	if _, err := g.w.Write(payload); err != nil {
		g.err = err
	}
}

func dbu(um float64) int32 { return int32(math.Round(um * DBUPerUm)) }

func u16(v uint16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, v)
	return b
}

func i16(v int16) []byte { return u16(uint16(v)) }

func i32s(vs []int32) []byte {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func str(s string) []byte { return []byte(s) }

// gdsReal encodes an 8-byte GDSII real: sign bit, 7-bit excess-64
// base-16 exponent, 56-bit mantissa with value = mantissa/2^56 ×
// 16^(exp−64).
func gdsReal(v float64) []byte {
	b := make([]byte, 8)
	if v == 0 {
		return b
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	// v now in [1/16, 1).
	mant := uint64(v * (1 << 56))
	b[0] = sign | byte(exp+64)
	for i := 1; i < 8; i++ {
		b[i] = byte(mant >> uint(8*(7-i)))
	}
	return b
}
