package floorplan

import (
	"fmt"
	"math"
	"testing"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
)

func smallTile(t *testing.T) *piton.Tile {
	t.Helper()
	tile, err := piton.Generate(piton.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	return tile
}

func TestDieForArea(t *testing.T) {
	d, err := DieForArea(1.2e6, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Area()-1.2e6)/1.2e6 > 0.01 {
		t.Fatalf("die area = %v", d.Area())
	}
	// Height snapped to whole rows.
	if math.Mod(d.H(), 1.2) > 1e-6 && 1.2-math.Mod(d.H(), 1.2) > 1e-6 {
		t.Fatalf("height %v not row-aligned", d.H())
	}
	d, err = DieForArea(2e6, 2.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if ar := d.W() / d.H(); ar < 1.8 || ar > 2.2 {
		t.Fatalf("aspect = %v", ar)
	}
}

func TestDieForAreaRejectsBadInputs(t *testing.T) {
	for _, c := range []struct {
		name                    string
		area, aspect, rowHeight float64
	}{
		{"zero area", 0, 1, 1.2},
		{"negative aspect", 1e6, -1, 1.2},
		{"NaN area", math.NaN(), 1, 1.2},
		{"zero row height", 1e6, 1, 0},
	} {
		if _, err := DieForArea(c.area, c.aspect, c.rowHeight); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestSizingRejectsBadUtilization(t *testing.T) {
	for _, util := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := ComputeSizing(netlist.Stats{StdCellArea: 1e5}, 50, util, 1, 1.2); err == nil {
			t.Errorf("ComputeSizing accepted utilization %v", util)
		}
		if _, err := SizeDesign(netlist.NewDesign("u", nil), util, 1, 1.2); err == nil {
			t.Errorf("SizeDesign accepted utilization %v", util)
		}
	}
}

func TestComputeSizing(t *testing.T) {
	tile := smallTile(t)
	_ = tile.Design.ComputeStats()
	s, err := SizeDesign(tile.Design, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2D die %.2f mm², 3D die %.2f mm²", s.Die2D.Area()/1e6, s.Die3D.Area()/1e6)
	// The paper's fairness rule: 2D area = 2× 3D area.
	ratio := s.Die2D.Area() / s.Die3D.Area()
	if math.Abs(ratio-2) > 0.02 {
		t.Fatalf("area ratio = %v, want 2", ratio)
	}
	// Small-cache 2D footprint should land near the paper's 1.20 mm².
	mm2 := s.Die2D.Area() / 1e6
	if mm2 < 1.0 || mm2 > 1.45 {
		t.Fatalf("2D footprint = %.2f mm², want ≈1.2", mm2)
	}
	// 3D linear dimensions ≈ 1/√2 of 2D.
	if math.Abs(s.Die3D.W()/s.Die2D.W()-1/math.Sqrt2) > 0.02 {
		t.Fatalf("3D width ratio = %v", s.Die3D.W()/s.Die2D.W())
	}
}

func checkNoMacroOverlap(t *testing.T, d *netlist.Design, die netlist.Die, outline geom.Rect) {
	t.Helper()
	var rects []geom.Rect
	for _, m := range d.Macros() {
		if m.Die != die {
			continue
		}
		b := m.Bounds()
		if !outline.ContainsRect(b) {
			t.Fatalf("macro %s %v outside die %v", m.Name, b, outline)
		}
		for _, r := range rects {
			if r.Intersects(b) {
				t.Fatalf("macro %s overlaps another macro", m.Name)
			}
		}
		rects = append(rects, b)
	}
}

func TestPlaceMacros2D(t *testing.T) {
	tile := smallTile(t)
	d := tile.Design
	s, err := SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	_, macroFP, err := PlaceMacros(d, s.Die2D, Style2D)
	if err != nil {
		t.Fatal(err)
	}
	if macroFP != nil {
		t.Fatal("2D style produced a macro die")
	}
	checkNoMacroOverlap(t, d, netlist.LogicDie, s.Die2D)
	for _, m := range d.Macros() {
		if m.Die != netlist.LogicDie || !m.Fixed || !m.Placed {
			t.Fatalf("macro %s not fixed on logic die", m.Name)
		}
	}
	// Periphery style: macros hug the edges — none should sit fully in
	// the central third of the die.
	cx0 := s.Die2D.Lx + s.Die2D.W()/3
	cx1 := s.Die2D.Ux - s.Die2D.W()/3
	cy0 := s.Die2D.Ly + s.Die2D.H()/3
	cy1 := s.Die2D.Uy - s.Die2D.H()/3
	center := geom.R(cx0, cy0, cx1, cy1)
	for _, m := range d.Macros() {
		if center.ContainsRect(m.Bounds()) {
			t.Fatalf("macro %s placed in die centre by periphery style", m.Name)
		}
	}
}

func TestPlaceMacrosMoL(t *testing.T) {
	tile := smallTile(t)
	d := tile.Design
	s, err := SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	_, macroFP, err := PlaceMacros(d, s.Die3D, StyleMoL)
	if err != nil {
		t.Fatal(err)
	}
	if macroFP == nil {
		t.Fatal("MoL style produced no macro die")
	}
	checkNoMacroOverlap(t, d, netlist.MacroDie, s.Die3D)
	for _, m := range d.Macros() {
		if m.Die != netlist.MacroDie {
			t.Fatalf("macro %s not on macro die", m.Name)
		}
	}
}

func TestPlaceMacrosBalanced(t *testing.T) {
	tile := smallTile(t)
	d := tile.Design
	s, err := SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = PlaceMacros(d, s.Die3D, StyleBalanced)
	if err != nil {
		t.Fatal(err)
	}
	checkNoMacroOverlap(t, d, netlist.LogicDie, s.Die3D)
	checkNoMacroOverlap(t, d, netlist.MacroDie, s.Die3D)
	nLogic, nMacro := 0, 0
	var overlapArea, macroDieArea float64
	var logicRects []geom.Rect
	for _, m := range d.Macros() {
		if m.Die == netlist.LogicDie {
			nLogic++
			logicRects = append(logicRects, m.Bounds())
		}
	}
	for _, m := range d.Macros() {
		if m.Die == netlist.MacroDie {
			nMacro++
			b := m.Bounds()
			macroDieArea += b.Area()
			for _, r := range logicRects {
				overlapArea += r.Intersect(b).Area()
			}
		}
	}
	if nLogic == 0 || nMacro == 0 {
		t.Fatalf("balanced split degenerate: %d/%d", nLogic, nMacro)
	}
	// The point of the balanced floorplan: substantial z-overlap.
	if overlapArea < 0.5*macroDieArea {
		t.Fatalf("z-overlap only %.0f%% of macro-die area", 100*overlapArea/macroDieArea)
	}
}

func TestBuildBlockages(t *testing.T) {
	tile := smallTile(t)
	d := tile.Design
	s, err := SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := PlaceMacros(d, s.Die2D, Style2D)
	if err != nil {
		t.Fatal(err)
	}
	BuildBlockages(fp, d, netlist.LogicDie)
	nm := len(d.Macros())
	if len(fp.PlaceBlk) != nm {
		t.Fatalf("place blockages = %d, want %d", len(fp.PlaceBlk), nm)
	}
	for _, b := range fp.PlaceBlk {
		if b.Fraction != 1 {
			t.Fatal("2D macro blockage not full")
		}
	}
	// 4 obstruction layers per SRAM.
	if len(fp.RouteBlk) != 4*nm {
		t.Fatalf("route blockages = %d, want %d", len(fp.RouteBlk), 4*nm)
	}
	// Blockage rect covers the macro's absolute bounds.
	m := d.Macros()[0]
	found := false
	for _, rb := range fp.RouteBlk {
		if rb.Layer == "M1" && rb.Rect == m.Bounds() {
			found = true
		}
	}
	if !found {
		t.Fatal("no M1 route blockage matching first macro bounds")
	}
}

func TestAssignPortsAlignment(t *testing.T) {
	tile := smallTile(t)
	d := tile.Design
	die := geom.R(0, 0, 800, 800)
	AssignPorts(tile, die)
	// Every port must sit on the die boundary.
	for _, p := range d.Ports {
		onX := p.Loc.X == die.Lx || p.Loc.X == die.Ux
		onY := p.Loc.Y == die.Ly || p.Loc.Y == die.Uy
		if !onX && !onY {
			t.Fatalf("port %s at %v not on boundary", p.Name, p.Loc)
		}
	}
	// Abutment alignment (§V-1): this tile's north OUTPUT bit b must
	// share x with the south INPUT bit b — the pin the tile above
	// presents when abutted.
	for b := 0; b < 4; b++ {
		n := d.Port(fmtPort("noc0_N_out_%d", b))
		s := d.Port(fmtPort("noc0_S_in_%d", b))
		if n == nil || s == nil {
			t.Fatal("expected ports missing")
		}
		if math.Abs(n.Loc.X-s.Loc.X) > 1e-9 {
			t.Fatalf("bit %d: north-out x=%v south-in x=%v misaligned", b, n.Loc.X, s.Loc.X)
		}
		if n.Loc.Y != die.Uy || s.Loc.Y != die.Ly {
			t.Fatal("north/south ports not on their edges")
		}
	}
	// Converse pair: north-in aligns with south-out.
	ni := d.Port(fmtPort("noc0_N_in_%d", 2))
	so := d.Port(fmtPort("noc0_S_out_%d", 2))
	if math.Abs(ni.Loc.X-so.Loc.X) > 1e-9 {
		t.Fatal("north-in / south-out misaligned")
	}
	// East/west abutment alignment in y.
	e := d.Port(fmtPort("noc1_E_out_%d", 0))
	w := d.Port(fmtPort("noc1_W_in_%d", 0))
	if math.Abs(e.Loc.Y-w.Loc.Y) > 1e-9 {
		t.Fatal("east-out / west-in misaligned")
	}
	// Clock landed on the west edge.
	clk := d.Port("clk_i")
	if clk.Loc.X != die.Lx {
		t.Fatalf("clock port at %v, want west edge", clk.Loc)
	}
}

func fmtPort(f string, b int) string { return fmt.Sprintf(f, b) }

func TestPartialBlockageMap(t *testing.T) {
	die := geom.R(0, 0, 100, 100)
	logic := []geom.Rect{geom.R(0, 0, 50, 50)}
	macro := []geom.Rect{geom.R(25, 25, 75, 75)}
	m := NewPartialBlockageMap(die, 25, logic, macro)
	// Bin (0,0): logic only → 0.5.
	if f := m.FractionAt(geom.Pt(10, 10)); f != 0.5 {
		t.Fatalf("logic-only bin = %v", f)
	}
	// Bin (1,1): both → 1.0.
	if f := m.FractionAt(geom.Pt(30, 30)); f != 1.0 {
		t.Fatalf("stacked bin = %v", f)
	}
	// Bin (2,2): macro only → 0.5.
	if f := m.FractionAt(geom.Pt(60, 60)); f != 0.5 {
		t.Fatalf("macro-only bin = %v", f)
	}
	// Far corner free.
	if f := m.FractionAt(geom.Pt(90, 90)); f != 0 {
		t.Fatalf("free bin = %v", f)
	}
	bl := m.Blockages()
	if len(bl) == 0 {
		t.Fatal("no blockages emitted")
	}
	for _, b := range bl {
		if b.Fraction != 0.5 && b.Fraction != 1.0 {
			t.Fatalf("unquantized fraction %v", b.Fraction)
		}
	}
}

func TestPartialBlockageResolutionLosesDetail(t *testing.T) {
	// The S2D failure mechanism: at coarse resolution, a macro edge is
	// mis-rasterized, so the blocked region differs from the true
	// macro extent. Verify that fine and coarse maps disagree near the
	// macro boundary.
	die := geom.R(0, 0, 400, 400)
	macro := []geom.Rect{geom.R(0, 0, 130, 130)}
	fine := NewPartialBlockageMap(die, 10, macro, nil)
	coarse := NewPartialBlockageMap(die, 100, macro, nil)
	p := geom.Pt(135, 55) // just outside the macro
	if fine.FractionAt(p) != 0 {
		t.Fatal("fine map blocks free space")
	}
	// Coarse 100 µm bin [100,200) is majority-free, so the macro strip
	// 100..130 is lost entirely — cells will be placed over the macro
	// after partitioning.
	q := geom.Pt(115, 55) // inside the macro
	if coarse.FractionAt(q) != 0 {
		t.Fatal("expected coarse map to lose the macro strip (majority-free bin)")
	}
	if fine.FractionAt(q) == 0 {
		t.Fatal("fine map lost the macro strip too")
	}
}

func TestStyleString(t *testing.T) {
	if Style2D.String() != "2D" || StyleMoL.String() != "MoL" || StyleBalanced.String() != "balanced" {
		t.Fatal("style names wrong")
	}
}

func TestFitMacrosGrows(t *testing.T) {
	tile := smallTile(t)
	d := tile.Design
	s, err := SizeDesign(d, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately undersized die: FitMacros must grow it until the
	// shelf packing fits.
	tiny := geom.R(0, 0, s.Die3D.W()*0.8, s.Die3D.H()*0.8)
	die, lfp, mfp, err := FitMacros(d, tiny, StyleMoL)
	if err != nil {
		t.Fatal(err)
	}
	if die.Area() <= tiny.Area() {
		t.Fatal("die did not grow")
	}
	if lfp == nil || mfp == nil {
		t.Fatal("floorplans missing")
	}
	checkNoMacroOverlap(t, d, netlist.MacroDie, die)
}

func TestSizeDesignDeterministic(t *testing.T) {
	tile := smallTile(t)
	a, err := SizeDesign(tile.Design, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SizeDesign(tile.Design, 0.70, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Die2D != b.Die2D || a.Die3D != b.Die3D {
		t.Fatal("sizing not deterministic")
	}
}

func TestSizeDesignUtilMonotone(t *testing.T) {
	tile := smallTile(t)
	lo, err := SizeDesign(tile.Design, 0.55, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := SizeDesign(tile.Design, 0.85, 1.0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Not strictly monotone — the ring/shelf trial packing quantizes
	// the growth — but higher utilization must never need a
	// meaningfully larger die.
	if hi.Die2D.Area() > lo.Die2D.Area()*1.03 {
		t.Fatalf("higher utilization grew the die: %.2f vs %.2f",
			hi.Die2D.Area()/1e6, lo.Die2D.Area()/1e6)
	}
}

func TestMaxMacroMinDim(t *testing.T) {
	tile := smallTile(t)
	dim := MaxMacroMinDim(tile.Design)
	if dim <= 0 {
		t.Fatal("no macro dimension")
	}
	for _, m := range tile.Design.Macros() {
		if min := m.Master.Width; m.Master.Height < min {
			min = m.Master.Height
		}
	}
	// dim is a min-dimension of some macro.
	found := false
	for _, m := range tile.Design.Macros() {
		mn := m.Master.Width
		if m.Master.Height < mn {
			mn = m.Master.Height
		}
		if mn == dim {
			found = true
		}
	}
	if !found {
		t.Fatal("MaxMacroMinDim not a macro dimension")
	}
}
