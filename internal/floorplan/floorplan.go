// Package floorplan builds die outlines, places hard macros, assigns
// perimeter ports (with the inter-tile alignment the OpenPiton case
// study requires), and derives the placement/routing blockages that
// the placer and router honour.
//
// Three macro-placement styles are provided, matching the paper's
// experiments: the 2D style (macros ringing the periphery, logic in
// the centre — Fig. 4 left), the macro-on-logic style (all memories
// packed on the macro die — Fig. 4 right), and the balanced style used
// for the best-case S2D comparison (macros overlapping in z so partial
// blockages become full ones).
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/piton"
)

// Style selects the macro floorplanning strategy.
type Style uint8

// Floorplan styles.
const (
	// Style2D places every macro on the single logic die, ringing the
	// periphery so the centre stays free for standard cells.
	Style2D Style = iota
	// StyleMoL moves every memory macro to the macro die, shelf-packed
	// across its full area; the logic die keeps only standard cells.
	StyleMoL
	// StyleBalanced distributes macros across both dies so that macro
	// extents overlap in z as much as possible (the paper's "balanced
	// floorplan" giving S2D its best case, at the cost of losing MoL's
	// manufacturing advantages).
	StyleBalanced
)

func (s Style) String() string {
	switch s {
	case Style2D:
		return "2D"
	case StyleMoL:
		return "MoL"
	case StyleBalanced:
		return "balanced"
	}
	return fmt.Sprintf("Style(%d)", uint8(s))
}

// Blockage is a partial or full placement blockage: Fraction of the
// area under Rect is unusable for standard cells (1.0 = hard block).
type Blockage struct {
	Rect     geom.Rect
	Fraction float64
}

// RouteBlockage removes routing capacity on one layer under Rect.
type RouteBlockage struct {
	Layer string
	Rect  geom.Rect
}

// Floorplan is the physical canvas handed to placement and routing.
type Floorplan struct {
	Die       geom.Rect
	RowHeight float64

	// Place blockages seen by the standard-cell placer.
	PlaceBlk []Blockage
	// Routing blockages from macro internals.
	RouteBlk []RouteBlockage
}

// DieForArea returns a die rectangle of the given area (µm²) and
// aspect ratio (width/height), origin at (0,0), snapped to whole rows.
func DieForArea(area, aspect, rowHeight float64) (geom.Rect, error) {
	if area <= 0 || aspect <= 0 || math.IsNaN(area) || math.IsNaN(aspect) {
		return geom.Rect{}, fmt.Errorf("floorplan: die area %g µm² and aspect %g must be positive", area, aspect)
	}
	if rowHeight <= 0 || math.IsNaN(rowHeight) {
		return geom.Rect{}, fmt.Errorf("floorplan: row height %g µm must be positive", rowHeight)
	}
	w := math.Sqrt(area * aspect)
	h := area / w
	h = geom.SnapUp(h, rowHeight)
	return geom.R(0, 0, w, h), nil
}

// Sizing computes the 2D and 3D die outlines for a design following
// the paper's fairness rule: the 2D footprint is exactly 2× the 3D
// footprint, so both use the same silicon area.
type Sizing struct {
	Die2D geom.Rect
	Die3D geom.Rect
	Util  float64
}

// macroPackUtil is the fraction of macro-die area shelf packing can
// realistically fill.
const macroPackUtil = 0.80

// ComputeSizing derives die sizes from design stats at the given
// placement utilization (fraction of non-macro area usable by cells).
// The 2D footprint is governed by the periphery-ring geometry: the
// centre must hold the standard cells at the target utilization while
// the ring (whose depth is the deepest macro) holds the memories. The
// 3D footprint then follows the paper's fairness rule — exactly half
// the 2D area, so both designs use the same silicon — but is grown
// when the macro die alone could not hold all macros.
func ComputeSizing(st netlist.Stats, maxMacroMinDim, util, aspect, rowHeight float64) (Sizing, error) {
	if util <= 0 || util > 1 || math.IsNaN(util) {
		return Sizing{}, fmt.Errorf("floorplan: utilization %g must be in (0,1]", util)
	}
	// Ring geometry: centre side for logic plus two ring depths.
	side := math.Sqrt(st.StdCellArea/util) + 2*maxMacroMinDim
	area2D := side * side
	// The 2D die must also simply hold everything.
	if lower := (st.StdCellArea/util + st.MacroArea/macroPackUtil); area2D < lower {
		area2D = lower
	}
	// The macro die (half the 2D area) must hold all macros.
	if lower := 2 * st.MacroArea / macroPackUtil; area2D < lower {
		area2D = lower
	}
	d2, err := DieForArea(area2D, aspect, rowHeight)
	if err != nil {
		return Sizing{}, err
	}
	d3, err := DieForArea(area2D/2, aspect, rowHeight)
	if err != nil {
		return Sizing{}, err
	}
	return Sizing{Die2D: d2, Die3D: d3, Util: util}, nil
}

// SizeDesign determines the die outlines by trial packing: the 3D die
// is grown from the analytic lower bound until shelf packing fits all
// macros (the macro die is the binding constraint of MoL stacking),
// then the 2D die is grown from 2× that area until the periphery ring
// fits, and the 3D die is finally set to exactly half the 2D area —
// the paper's fairness rule. Only macro locations are touched
// (scratch placements); callers re-place macros per flow.
func SizeDesign(d *netlist.Design, util, aspect, rowHeight float64) (Sizing, error) {
	if util <= 0 || util > 1 || math.IsNaN(util) {
		return Sizing{}, fmt.Errorf("floorplan: utilization %g must be in (0,1]", util)
	}
	st := d.ComputeStats()
	macros := d.Macros()

	// 3D die: grow until the macro die holds all macros.
	area3D := math.Max(st.StdCellArea/util, st.MacroArea/0.90)
	var die3D geom.Rect
	fit := false
	for i := 0; i < 60; i++ {
		var err error
		if die3D, err = DieForArea(area3D, aspect, rowHeight); err != nil {
			return Sizing{}, err
		}
		if placeShelves(macros, die3D) == nil {
			fit = true
			break
		}
		area3D *= 1.03
	}
	if !fit {
		return Sizing{}, fmt.Errorf("floorplan: macros never fit a macro die (%.2f mm²)", area3D/1e6)
	}

	// 2D die: grow from the fairness bound until the ring fits with
	// enough centre area for the logic.
	area2D := 2 * die3D.Area()
	var die2D geom.Rect
	fit = false
	for i := 0; i < 60; i++ {
		var err error
		if die2D, err = DieForArea(area2D, aspect, rowHeight); err != nil {
			return Sizing{}, err
		}
		if placeRing(macros, die2D) == nil && centreHoldsLogic(macros, die2D, st.StdCellArea, util) {
			fit = true
			break
		}
		area2D *= 1.03
	}
	if !fit {
		return Sizing{}, fmt.Errorf("floorplan: macros never fit a 2D ring (%.2f mm²)", area2D/1e6)
	}
	// Final fairness: 3D footprint is exactly half the 2D footprint.
	var err error
	if die3D, err = DieForArea(die2D.Area()/2, aspect, rowHeight); err != nil {
		return Sizing{}, err
	}
	return Sizing{Die2D: die2D, Die3D: die3D, Util: util}, nil
}

// centreHoldsLogic checks that the area left after ring placement can
// hold the standard cells at the target utilization.
func centreHoldsLogic(macros []*netlist.Instance, die geom.Rect, stdArea, util float64) bool {
	free := die.Area()
	for _, m := range macros {
		free -= m.Bounds().Area()
	}
	return free*util >= stdArea
}

// MaxMacroMinDim returns the largest min(width, height) over the
// design's macros — the periphery ring depth driver.
func MaxMacroMinDim(d *netlist.Design) float64 {
	dim := 0.0
	for _, m := range d.Macros() {
		md := math.Min(m.Master.Width, m.Master.Height)
		if md > dim {
			dim = md
		}
	}
	return dim
}

// PlaceMacros assigns locations and dies to every macro instance of
// the design according to the style, and returns the floorplans of the
// involved dies (logic die always; macro die for 3D styles). Macros
// are marked Fixed and Placed.
func PlaceMacros(d *netlist.Design, die geom.Rect, style Style) (logicFP, macroFP *Floorplan, err error) {
	macros := d.Macros()
	logicFP = &Floorplan{Die: die}
	switch style {
	case Style2D:
		if err := placeRing(macros, die); err != nil {
			return nil, nil, err
		}
		for _, m := range macros {
			m.Die = netlist.LogicDie
			m.Fixed, m.Placed = true, true
		}
	case StyleMoL:
		macroFP = &Floorplan{Die: die}
		if err := placeShelves(macros, die); err != nil {
			return nil, nil, err
		}
		for _, m := range macros {
			m.Die = netlist.MacroDie
			m.Fixed, m.Placed = true, true
		}
	case StyleBalanced:
		macroFP = &Floorplan{Die: die}
		// Alternate macros between dies after sorting by size so the
		// two dies carry similar macro area, then stack each pair at
		// the same (x, y) to maximize z-overlap (full blockages).
		sorted := append([]*netlist.Instance(nil), macros...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Master.Area() > sorted[j].Master.Area()
		})
		var a, b []*netlist.Instance
		for i, m := range sorted {
			if i%2 == 0 {
				a = append(a, m)
			} else {
				b = append(b, m)
			}
		}
		if err := placeShelves(a, die); err != nil {
			return nil, nil, err
		}
		// Stack die-B macros congruent with die-A partners where they
		// fit; overflow goes through shelf packing over the remainder.
		for i, m := range b {
			if i < len(a) {
				m.Loc = a[i].Loc
			}
		}
		var spill []*netlist.Instance
		for i, m := range b {
			if i >= len(a) || !die.ContainsRect(m.Bounds()) {
				spill = append(spill, m)
			}
		}
		if len(spill) > 0 {
			if err := placeShelves(spill, die); err != nil {
				return nil, nil, err
			}
		}
		for _, m := range a {
			m.Die = netlist.LogicDie
			m.Fixed, m.Placed = true, true
		}
		for _, m := range b {
			m.Die = netlist.MacroDie
			m.Fixed, m.Placed = true, true
		}
	default:
		return nil, nil, fmt.Errorf("floorplan: unknown style %v", style)
	}
	return logicFP, macroFP, nil
}

// macroMargin keeps macros off the die edge so perimeter ports stay
// reachable.
const macroMargin = 5.0

// placeRing packs macros around the die periphery, largest first,
// walking the four edges. It fails when the ring cannot hold them.
func placeRing(macros []*netlist.Instance, die geom.Rect) error {
	sorted := append([]*netlist.Instance(nil), macros...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Master.Area() != sorted[j].Master.Area() {
			return sorted[i].Master.Area() > sorted[j].Master.Area()
		}
		return sorted[i].Name < sorted[j].Name
	})
	inner := die.Expand(-macroMargin)
	var placed []geom.Rect
	// blockedUntil returns the far coordinate of any placed rect
	// overlapping r, so cursors can slide past obstructions.
	tryPlace := func(r geom.Rect) (geom.Rect, bool) {
		if !die.ContainsRect(r) {
			return geom.Rect{}, false
		}
		for _, p := range placed {
			if p.Intersects(r) {
				return p, false
			}
		}
		return r, true
	}
	// Cursors along the four edges.
	bottomX, topX := inner.Lx, inner.Lx
	leftY, rightY := inner.Ly, inner.Ly
	for _, m := range sorted {
		w, h := m.Master.Width, m.Master.Height
		var r geom.Rect
		ok := false
		// Bottom band, sliding right past obstructions.
		for x := bottomX; x+w <= inner.Ux && !ok; {
			cand := geom.RectWH(geom.Pt(x, inner.Ly), w, h)
			if hit, good := tryPlace(cand); good {
				r, ok = cand, true
				bottomX = x + w + macroMargin
			} else if !hit.Empty() {
				x = hit.Ux + macroMargin
			} else {
				break
			}
		}
		// Top band.
		for x := topX; x+w <= inner.Ux && !ok; {
			cand := geom.RectWH(geom.Pt(x, inner.Uy-h), w, h)
			if hit, good := tryPlace(cand); good {
				r, ok = cand, true
				topX = x + w + macroMargin
			} else if !hit.Empty() {
				x = hit.Ux + macroMargin
			} else {
				break
			}
		}
		// Left column, sliding up.
		for y := leftY; y+h <= inner.Uy && !ok; {
			cand := geom.RectWH(geom.Pt(inner.Lx, y), w, h)
			if hit, good := tryPlace(cand); good {
				r, ok = cand, true
				leftY = y + h + macroMargin
			} else if !hit.Empty() {
				y = hit.Uy + macroMargin
			} else {
				break
			}
		}
		// Right column.
		for y := rightY; y+h <= inner.Uy && !ok; {
			cand := geom.RectWH(geom.Pt(inner.Ux-w, y), w, h)
			if hit, good := tryPlace(cand); good {
				r, ok = cand, true
				rightY = y + h + macroMargin
			} else if !hit.Empty() {
				y = hit.Uy + macroMargin
			} else {
				break
			}
		}
		if !ok {
			return fmt.Errorf("floorplan: periphery ring cannot hold macro %s (%.0f×%.0f µm) on die %v",
				m.Name, w, h, die)
		}
		m.Loc = r.LL()
		placed = append(placed, r)
	}
	return nil
}

// FitMacros runs PlaceMacros, growing the die by 4 % per attempt (up
// to 20 attempts) when packing overflows. It returns the die that
// worked. Growth only ever triggers for pathological macro mixes; the
// case-study configurations fit on the first attempt.
func FitMacros(d *netlist.Design, die geom.Rect, style Style) (geom.Rect, *Floorplan, *Floorplan, error) {
	var err error
	for i := 0; i < 20; i++ {
		var lfp, mfp *Floorplan
		lfp, mfp, err = PlaceMacros(d, die, style)
		if err == nil {
			return die, lfp, mfp, nil
		}
		die = geom.R(die.Lx, die.Ly, die.Lx+die.W()*1.02, die.Ly+die.H()*1.02)
	}
	return die, nil, nil, err
}

// placeShelves packs macros into shelves (rows of decreasing height),
// the classic strip-packing heuristic. Used for the macro die, where
// the whole area is available.
func placeShelves(macros []*netlist.Instance, die geom.Rect) error {
	sorted := append([]*netlist.Instance(nil), macros...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Master.Height != sorted[j].Master.Height {
			return sorted[i].Master.Height > sorted[j].Master.Height
		}
		return sorted[i].Name < sorted[j].Name
	})
	inner := die.Expand(-macroMargin)
	x, y := inner.Lx, inner.Ly
	shelfH := 0.0
	for _, m := range sorted {
		w, h := m.Master.Width, m.Master.Height
		if x+w > inner.Ux { // next shelf
			x = inner.Lx
			y += shelfH + macroMargin
			shelfH = 0
		}
		if y+h > inner.Uy || x+w > inner.Ux {
			return fmt.Errorf("floorplan: shelf packing overflows die for macro %s", m.Name)
		}
		m.Loc = geom.Pt(x, y)
		x += w + macroMargin
		if h > shelfH {
			shelfH = h
		}
	}
	return nil
}

// BuildBlockages fills a floorplan's placement and routing blockages
// from the design's placed macros. Macros on the logic die block
// placement fully; macro obstructions become routing blockages on
// their (possibly _MD-suffixed) layers. Pass the die the floorplan
// describes.
func BuildBlockages(fp *Floorplan, d *netlist.Design, die netlist.Die) {
	for _, m := range d.Macros() {
		if !m.Placed {
			continue
		}
		b := m.Bounds()
		if m.Die == die && die == netlist.LogicDie {
			fp.PlaceBlk = append(fp.PlaceBlk, Blockage{Rect: b, Fraction: 1})
		}
		if m.Die == die {
			for _, o := range m.Master.Obstructions {
				fp.RouteBlk = append(fp.RouteBlk, RouteBlockage{
					Layer: o.Layer,
					Rect:  o.Rect.Translate(m.Loc),
				})
			}
		}
	}
}

// AssignPorts places the tile's port groups on the die perimeter with
// the alignment guarantee of §V-1: pair i on an edge gets the same
// cross-coordinate span as pair i on the opposite edge, so abutted
// tile instances connect without additional routing. The clock port
// (and any other ungrouped port) goes to the west edge.
func AssignPorts(t *piton.Tile, die geom.Rect) {
	d := t.Design
	// Index groups by edge and pair.
	type key struct {
		e    piton.Edge
		pair int
	}
	groups := make(map[key]piton.PortGroup)
	pairsSeen := make(map[int]bool)
	var pairs []int
	for _, gr := range t.Groups {
		groups[key{gr.Edge, gr.Pair}] = gr
		if !pairsSeen[gr.Pair] {
			pairsSeen[gr.Pair] = true
			pairs = append(pairs, gr.Pair)
		}
	}
	sort.Ints(pairs)

	assigned := make(map[string]bool)
	nPairs := len(pairs)
	for pi, pair := range pairs {
		// Cross-coordinate span of this pair: an equal slice of the
		// edge, shared by both opposite edges.
		for _, e := range []piton.Edge{piton.North, piton.South, piton.East, piton.West} {
			gr, ok := groups[key{e, pair}]
			if !ok {
				continue
			}
			n := len(gr.Names)
			for i, name := range gr.Names {
				p := d.Port(name)
				// Position within the pair's slice.
				frac := (float64(pi) + (0.5+float64(i))/float64(n)) / float64(nPairs)
				switch e {
				case piton.North:
					p.Loc = geom.Pt(die.Lx+frac*die.W(), die.Uy)
				case piton.South:
					p.Loc = geom.Pt(die.Lx+frac*die.W(), die.Ly)
				case piton.East:
					p.Loc = geom.Pt(die.Ux, die.Ly+frac*die.H())
				case piton.West:
					p.Loc = geom.Pt(die.Lx, die.Ly+frac*die.H())
				}
				assigned[name] = true
			}
		}
	}
	// Remaining ports (clock, config) spread along the west edge inset
	// from the corners.
	var rest []*netlist.Port
	for _, p := range d.Ports {
		if !assigned[p.Name] {
			rest = append(rest, p)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	for i, p := range rest {
		fr := (0.5 + float64(i)) / float64(len(rest))
		p.Loc = geom.Pt(die.Lx, die.Ly+fr*die.H())
	}
}

// PartialBlockageMap discretizes macro coverage onto a grid of the
// given resolution, yielding the fraction of each bin blocked for
// placement. This is how S2D/C2D communicate macro area to the 2D
// engine; the paper observes that the coarse spatial resolution of
// partial blockages in commercial tools causes cell/macro overlaps
// after tier partitioning — so the resolution here is deliberately a
// parameter, and flows using it inherit that error mechanism.
type PartialBlockageMap struct {
	Grid     geom.Grid
	Fraction []float64 // per bin, 0..1 blocked
}

// NewPartialBlockageMap rasterizes per-die macro rectangles. A bin
// covered by macros in one die gets +0.5 per the S2D/C2D convention
// (half the stacked capacity is gone); covered in both dies → 1.0.
// Coverage within a bin is quantized to {0, 0.5, 1} exactly as the
// blockage insertion scripts of the reference flows do.
func NewPartialBlockageMap(die geom.Rect, resolution float64, logicDie, macroDie []geom.Rect) *PartialBlockageMap {
	g := geom.NewGrid(die, resolution)
	m := &PartialBlockageMap{Grid: g, Fraction: make([]float64, g.Bins())}
	cover := func(rects []geom.Rect) []bool {
		cov := make([]bool, g.Bins())
		for _, r := range rects {
			x0, y0, x1, y1, ok := g.CoverRange(r)
			if !ok {
				continue
			}
			for iy := y0; iy <= y1; iy++ {
				for ix := x0; ix <= x1; ix++ {
					// A bin counts as covered when the macro overlaps
					// the majority of it — the quantization step that
					// loses fine detail at coarse resolutions.
					bin := g.BinRect(ix, iy)
					if r.Intersect(bin).Area() >= 0.5*bin.Area() {
						cov[g.Index(ix, iy)] = true
					}
				}
			}
		}
		return cov
	}
	cl := cover(logicDie)
	cm := cover(macroDie)
	for i := range m.Fraction {
		switch {
		case cl[i] && cm[i]:
			m.Fraction[i] = 1.0
		case cl[i] || cm[i]:
			m.Fraction[i] = 0.5
		}
	}
	return m
}

// FractionAt returns the blocked fraction of the bin containing p.
func (m *PartialBlockageMap) FractionAt(p geom.Point) float64 {
	ix, iy := m.Grid.Locate(p)
	return m.Fraction[m.Grid.Index(ix, iy)]
}

// Blockages converts the map to placer blockages (one per non-free
// bin).
func (m *PartialBlockageMap) Blockages() []Blockage {
	var out []Blockage
	for i, f := range m.Fraction {
		if f > 0 {
			ix, iy := m.Grid.Coords(i)
			out = append(out, Blockage{Rect: m.Grid.BinRect(ix, iy), Fraction: f})
		}
	}
	return out
}
