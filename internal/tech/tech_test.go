package tech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustBEOL(t *testing.T, name string, n int) *BEOL {
	t.Helper()
	b, err := NewBEOL28(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBEOL28Structure(t *testing.T) {
	b := mustBEOL(t, "logic", 6)
	if got := b.NumLayers(); got != 6 {
		t.Fatalf("layers = %d", got)
	}
	if len(b.Vias) != 5 {
		t.Fatalf("vias = %d", len(b.Vias))
	}
	if b.Layers[0].Name != "M1" || b.TopLayer() != "M6" {
		t.Fatalf("layer naming wrong: %v", b)
	}
	// HVH alternation.
	for i, l := range b.Layers {
		want := DirHorizontal
		if i%2 == 1 {
			want = DirVertical
		}
		if l.Dir != want {
			t.Fatalf("layer %s dir = %v", l.Name, l.Dir)
		}
	}
	// Upper metals are less resistive than lower.
	if b.Layers[5].RPerUm >= b.Layers[0].RPerUm {
		t.Fatal("M6 not less resistive than M1")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewBEOL28Bounds(t *testing.T) {
	if _, err := NewBEOL28("x", 1); err == nil {
		t.Fatal("1-layer stack accepted")
	}
	if _, err := NewBEOL28("x", 9); err == nil {
		t.Fatal("9-layer stack accepted")
	}
	for n := 2; n <= 8; n++ {
		if _, err := NewBEOL28("x", n); err != nil {
			t.Fatalf("%d layers rejected: %v", n, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := mustBEOL(t, "x", 4)
	b.Layers[2].Name = "M2" // duplicate
	if err := b.Validate(); err == nil {
		t.Fatal("duplicate layer name accepted")
	}
	b = mustBEOL(t, "x", 4)
	b.Vias = b.Vias[:2]
	if err := b.Validate(); err == nil {
		t.Fatal("missing via accepted")
	}
	b = mustBEOL(t, "x", 4)
	b.Layers[0].Pitch = 0
	if err := b.Validate(); err == nil {
		t.Fatal("zero pitch accepted")
	}
	empty := &BEOL{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty stack accepted")
	}
}

func TestCombineLayerOrder(t *testing.T) {
	logic := mustBEOL(t, "logic", 6)
	macro := mustBEOL(t, "macro", 4)
	c, err := Combine(logic, macro, DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumLayers(); got != 10 {
		t.Fatalf("combined layers = %d", got)
	}
	if got := len(c.Vias); got != 9 {
		t.Fatalf("combined vias = %d", got)
	}
	// Logic layers first, unrenamed.
	for i := 0; i < 6; i++ {
		if c.Layers[i].MacroDie {
			t.Fatalf("logic layer %d marked macro-die", i)
		}
		if strings.HasSuffix(c.Layers[i].Name, MDSuffix) {
			t.Fatalf("logic layer renamed: %s", c.Layers[i].Name)
		}
	}
	// F2F via sits between the dies.
	fi := c.F2FViaIndex()
	if fi != 5 {
		t.Fatalf("F2F via index = %d", fi)
	}
	if c.Vias[fi].Name != F2FLayerName || !c.Vias[fi].F2F {
		t.Fatalf("F2F via wrong: %+v", c.Vias[fi])
	}
	// Macro die flipped: traversal order after the F2F via is M4_MD
	// (its top metal) down to M1_MD.
	wantOrder := []string{"M4_MD", "M3_MD", "M2_MD", "M1_MD"}
	for i, want := range wantOrder {
		l := c.Layers[6+i]
		if l.Name != want {
			t.Fatalf("macro layer %d = %s, want %s", i, l.Name, want)
		}
		if !l.MacroDie {
			t.Fatalf("macro layer %s not marked", l.Name)
		}
	}
	if got := c.LogicDieLayers(); got != 6 {
		t.Fatalf("LogicDieLayers = %d", got)
	}
	if got := c.MacroDieLayers(); got != 4 {
		t.Fatalf("MacroDieLayers = %d", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCombineUsesF2FSpec(t *testing.T) {
	logic := mustBEOL(t, "logic", 4)
	macro := mustBEOL(t, "macro", 2)
	spec := DefaultF2F()
	c, err := Combine(logic, macro, spec)
	if err != nil {
		t.Fatal(err)
	}
	v := c.Vias[c.F2FViaIndex()]
	if v.R != spec.R || v.C != spec.C || v.Pitch != spec.Pitch {
		t.Fatalf("F2F via parasitics not applied: %+v", v)
	}
}

func TestCombineRejectsDoubleCombine(t *testing.T) {
	logic := mustBEOL(t, "logic", 4)
	macro := mustBEOL(t, "macro", 2)
	c, err := Combine(logic, macro, DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(c, macro, DefaultF2F()); err == nil {
		t.Fatal("combining a combined stack accepted")
	}
}

func TestSeparate(t *testing.T) {
	logic := mustBEOL(t, "logic", 6)
	macro := mustBEOL(t, "macro", 4)
	c, _ := Combine(logic, macro, DefaultF2F())
	ll, ml, err := Separate(c)
	if err != nil {
		t.Fatal(err)
	}
	// Both parts include the F2F layer (shared bonding layer).
	if ll[len(ll)-1] != F2FLayerName || ml[len(ml)-1] != F2FLayerName {
		t.Fatalf("F2F layer missing from a part: %v / %v", ll, ml)
	}
	if len(ll) != 7 || len(ml) != 5 {
		t.Fatalf("part sizes: %d / %d", len(ll), len(ml))
	}
	for _, n := range ml[:4] {
		if !strings.HasSuffix(n, MDSuffix) {
			t.Fatalf("macro part contains non-MD layer %s", n)
		}
	}
	if _, _, err := Separate(logic); err == nil {
		t.Fatal("separating a plain stack accepted")
	}
}

func TestDefaultF2FMatchesPaper(t *testing.T) {
	f := DefaultF2F()
	if f.Pitch != 1.0 || f.Size != 0.5 || f.Height != 0.17 {
		t.Fatalf("geometry %+v", f)
	}
	// 44 mΩ and 1.0 fF.
	if math.Abs(f.R-44e-6) > 1e-12 || f.C != 1.0 {
		t.Fatalf("parasitics %+v", f)
	}
}

func TestNew28(t *testing.T) {
	tc, err := New28(6)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Logic.NumLayers() != 6 {
		t.Fatalf("logic metals = %d", tc.Logic.NumLayers())
	}
	if tc.VDD != 0.9 || tc.RowHeight <= 0 || tc.SiteWidth <= 0 {
		t.Fatalf("tech params %+v", tc)
	}
	slow := tc.CornerScaleFor(CornerSlow)
	typ := tc.CornerScaleFor(CornerTypical)
	if slow.CellDelay <= typ.CellDelay {
		t.Fatal("slow corner not slower than typical")
	}
	fast := tc.CornerScaleFor(CornerFast)
	if fast.CellDelay >= typ.CellDelay {
		t.Fatal("fast corner not faster than typical")
	}
	// Unknown corner falls back to identity.
	unk := (&Tech{}).CornerScaleFor(CornerSlow)
	if unk.CellDelay != 1 || unk.WireC != 1 {
		t.Fatalf("fallback scale %+v", unk)
	}
}

func TestScaleParasitics(t *testing.T) {
	b := mustBEOL(t, "x", 6)
	f := 1 / math.Sqrt2
	s := ScaleParasitics(b, f)
	for i := range b.Layers {
		if math.Abs(s.Layers[i].RPerUm-b.Layers[i].RPerUm*f) > 1e-12 {
			t.Fatalf("layer %d R not scaled", i)
		}
		if math.Abs(s.Layers[i].CPerUm-b.Layers[i].CPerUm*f) > 1e-12 {
			t.Fatalf("layer %d C not scaled", i)
		}
	}
	// Original untouched.
	if b.Layers[0].RPerUm != metals28[0].r {
		t.Fatal("ScaleParasitics mutated input")
	}
}

func TestShrinkGeometry(t *testing.T) {
	b := mustBEOL(t, "x", 4)
	s := ShrinkGeometry(b, 0.5)
	for i := range b.Layers {
		if math.Abs(s.Layers[i].Pitch-b.Layers[i].Pitch*0.5) > 1e-12 {
			t.Fatalf("layer %d pitch not shrunk", i)
		}
	}
	if b.Layers[0].Pitch != metals28[0].pitch {
		t.Fatal("ShrinkGeometry mutated input")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := mustBEOL(t, "x", 4)
	c := b.Clone()
	c.Layers[0].RPerUm = 99
	if b.Layers[0].RPerUm == 99 {
		t.Fatal("clone shares layer storage")
	}
}

func TestDirOrthogonal(t *testing.T) {
	if DirHorizontal.Orthogonal() != DirVertical || DirVertical.Orthogonal() != DirHorizontal {
		t.Fatal("Orthogonal wrong")
	}
	if DirHorizontal.String() != "H" || DirVertical.String() != "V" {
		t.Fatal("Dir names wrong")
	}
}

func TestMetalAreaPerDie(t *testing.T) {
	b := mustBEOL(t, "x", 6)
	if got := b.MetalAreaPerDie(0.6); math.Abs(got-3.6) > 1e-12 {
		t.Fatalf("MetalAreaPerDie = %v", got)
	}
}

// Property: combining any valid pair of 28nm stacks yields a valid
// stack whose layer count is the sum and which separates back into
// parts of the original sizes (+1 for the shared F2F layer each).
func TestCombineSeparateProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		na := 2 + int(a)%7
		nb := 2 + int(b)%7
		logic, err1 := NewBEOL28("l", na)
		macro, err2 := NewBEOL28("m", nb)
		if err1 != nil || err2 != nil {
			return false
		}
		c, err := Combine(logic, macro, DefaultF2F())
		if err != nil {
			return false
		}
		if c.NumLayers() != na+nb || c.Validate() != nil {
			return false
		}
		ll, ml, err := Separate(c)
		if err != nil {
			return false
		}
		return len(ll) == na+1 && len(ml) == nb+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCornerString(t *testing.T) {
	if CornerSlow.String() != "slow" || CornerTypical.String() != "typical" || CornerFast.String() != "fast" {
		t.Fatal("corner names wrong")
	}
}

func TestShrinkGeometryIncreasesRouterCapacity(t *testing.T) {
	// The S2D premise: shrinking wire geometry by 1/√2 raises track
	// counts — verified at the stack level via pitches.
	b := mustBEOL(t, "x", 6)
	s := ShrinkGeometry(b, 0.7071)
	for i := range b.Layers {
		if s.Layers[i].Pitch >= b.Layers[i].Pitch {
			t.Fatalf("layer %d pitch did not shrink", i)
		}
	}
	// Parasitics untouched by the geometry shrink.
	if s.Layers[0].RPerUm != b.Layers[0].RPerUm {
		t.Fatal("geometry shrink changed parasitics")
	}
}

func TestLayerIndexAndTop(t *testing.T) {
	b := mustBEOL(t, "x", 6)
	if b.LayerIndex("M3") != 2 || b.LayerIndex("M9") != -1 {
		t.Fatal("LayerIndex wrong")
	}
	if b.TopLayer() != "M6" {
		t.Fatal("TopLayer wrong")
	}
	logic := mustBEOL(t, "l", 6)
	macro := mustBEOL(t, "m", 4)
	c, err := Combine(logic, macro, DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	if c.LayerIndex("M4_MD") != 6 {
		t.Fatalf("M4_MD index = %d (flipped traversal: top macro metal first)", c.LayerIndex("M4_MD"))
	}
}

func TestMacroDieName(t *testing.T) {
	logic, _ := NewBEOL28("logic", 6)
	macro, _ := NewBEOL28("macro", 6)
	combined, err := Combine(logic, macro, DefaultF2F())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want string }{
		{"M1", "M1_MD"},
		{"M6", "M6_MD"},
		{"M4_MD", "M4_MD"}, // already a macro-die layer
		{F2FLayerName, F2FLayerName},
	} {
		got, err := combined.MacroDieName(tc.in)
		if err != nil {
			t.Fatalf("MacroDieName(%s): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("MacroDieName(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
	if _, err := combined.MacroDieName("M9"); err == nil {
		t.Fatal("MacroDieName accepted a layer the combined stack does not have")
	}
	// On an uncombined stack no _MD layer exists, so remapping fails
	// loudly instead of fabricating a name.
	if _, err := logic.MacroDieName("M1"); err == nil {
		t.Fatal("MacroDieName on a plain logic stack should fail")
	}
}
