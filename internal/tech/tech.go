// Package tech models the process technology seen by the physical
// design flow: routing layers with per-unit-length parasitics, via
// definitions, complete back-end-of-line (BEOL) stacks, process
// corners, and the face-to-face (F2F) bonding via.
//
// The package also implements the combined-BEOL construction at the
// heart of the Macro-3D methodology: merging the logic-die stack, the
// F2F via layer, and the macro-die stack (layers renamed with an "_MD"
// suffix) into one stack a standard 2D engine can route and extract.
//
// Units used throughout the module: µm for distance, kΩ for
// resistance, fF for capacitance (so R·C is in ps), fJ for energy,
// volts for supply.
package tech

import (
	"fmt"
	"strings"
)

// Dir is the preferred routing direction of a metal layer.
type Dir uint8

// Preferred directions.
const (
	DirHorizontal Dir = iota
	DirVertical
)

func (d Dir) String() string {
	if d == DirHorizontal {
		return "H"
	}
	return "V"
}

// Orthogonal returns the other direction.
func (d Dir) Orthogonal() Dir {
	if d == DirHorizontal {
		return DirVertical
	}
	return DirHorizontal
}

// Layer describes one routing (metal) layer.
type Layer struct {
	Name  string
	Dir   Dir     // preferred routing direction
	Pitch float64 // track pitch in µm
	Width float64 // default wire width in µm

	// Parasitics per µm of routed wire at the typical corner.
	RPerUm float64 // kΩ/µm
	CPerUm float64 // fF/µm

	// MacroDie marks layers that physically belong to the macro die of
	// a combined Macro-3D stack (the "_MD" layers).
	MacroDie bool
}

// Via describes the cut connecting layer i to layer i+1 of a stack.
type Via struct {
	Name string
	R    float64 // kΩ per cut
	C    float64 // fF per cut

	// F2F marks the face-to-face bonding via between the two dies of a
	// combined stack. F2F vias are additionally capacity-limited by the
	// bump pitch.
	F2F bool
	// Pitch is the minimum centre-to-centre spacing of cuts. Only
	// meaningful (nonzero) for F2F vias, where it limits bump density.
	Pitch float64
}

// BEOL is an ordered metal stack: Layers[0] is the lowest metal (M1),
// Vias[i] connects Layers[i] to Layers[i+1], so len(Vias) ==
// len(Layers)-1 for a well-formed stack.
type BEOL struct {
	Name   string
	Layers []Layer
	Vias   []Via
}

// Validate checks structural consistency of the stack.
func (b *BEOL) Validate() error {
	if len(b.Layers) == 0 {
		return fmt.Errorf("tech: BEOL %q has no layers", b.Name)
	}
	if len(b.Vias) != len(b.Layers)-1 {
		return fmt.Errorf("tech: BEOL %q has %d layers but %d vias",
			b.Name, len(b.Layers), len(b.Vias))
	}
	seen := make(map[string]bool, len(b.Layers))
	for i, l := range b.Layers {
		if l.Name == "" {
			return fmt.Errorf("tech: BEOL %q layer %d unnamed", b.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("tech: BEOL %q duplicate layer %q", b.Name, l.Name)
		}
		seen[l.Name] = true
		if l.Pitch <= 0 || l.Width <= 0 {
			return fmt.Errorf("tech: BEOL %q layer %q has non-positive geometry", b.Name, l.Name)
		}
		if l.RPerUm < 0 || l.CPerUm < 0 {
			return fmt.Errorf("tech: BEOL %q layer %q has negative parasitics", b.Name, l.Name)
		}
	}
	for i, v := range b.Vias {
		if v.R < 0 || v.C < 0 {
			return fmt.Errorf("tech: BEOL %q via %d negative parasitics", b.Name, i)
		}
		if v.F2F && v.Pitch <= 0 {
			return fmt.Errorf("tech: BEOL %q F2F via %d without pitch", b.Name, i)
		}
	}
	return nil
}

// NumLayers returns the metal layer count.
func (b *BEOL) NumLayers() int { return len(b.Layers) }

// LayerIndex returns the index of the named layer, or -1.
func (b *BEOL) LayerIndex(name string) int {
	for i, l := range b.Layers {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// F2FViaIndex returns the via index of the F2F bonding layer, or -1
// when the stack is a plain single-die BEOL.
func (b *BEOL) F2FViaIndex() int {
	for i, v := range b.Vias {
		if v.F2F {
			return i
		}
	}
	return -1
}

// LogicDieLayers returns the number of layers belonging to the logic
// die (all of them for a single-die stack).
func (b *BEOL) LogicDieLayers() int {
	n := 0
	for _, l := range b.Layers {
		if !l.MacroDie {
			n++
		}
	}
	return n
}

// MacroDieLayers returns the number of "_MD" layers.
func (b *BEOL) MacroDieLayers() int { return len(b.Layers) - b.LogicDieLayers() }

// TopLayer returns the name of the highest metal.
func (b *BEOL) TopLayer() string { return b.Layers[len(b.Layers)-1].Name }

// Clone returns a deep copy of the stack.
func (b *BEOL) Clone() *BEOL {
	c := &BEOL{Name: b.Name}
	c.Layers = append([]Layer(nil), b.Layers...)
	c.Vias = append([]Via(nil), b.Vias...)
	return c
}

// MetalAreaPerDie returns the number of metal-layer-mm² consumed by a
// die of the given footprint routed with this stack; the paper's
// A_metal cost metric in Table III is footprint × layer count summed
// over both dies.
func (b *BEOL) MetalAreaPerDie(footprintMM2 float64) float64 {
	return footprintMM2 * float64(len(b.Layers))
}

func (b *BEOL) String() string {
	names := make([]string, len(b.Layers))
	for i, l := range b.Layers {
		names[i] = l.Name
	}
	return fmt.Sprintf("BEOL %s: %s", b.Name, strings.Join(names, "→"))
}

// MDSuffix is appended to macro-die layer names in a combined stack,
// exactly as the paper prescribes ("the layers of the macro die are
// extended by the suffix _MD").
const MDSuffix = "_MD"

// F2FLayerName is the name of the bonding via layer in combined stacks
// and in separated per-die layouts (the layer present in both GDSII
// parts).
const F2FLayerName = "F2F_VIA"

// F2FSpec captures the face-to-face via technology parameters. The
// defaults follow the paper (§V-2): 1 µm minimum pitch, 0.5×0.5 µm
// bump, 0.17 µm height, 44 mΩ and 1.0 fF at the typical corner.
type F2FSpec struct {
	Pitch  float64 // minimum bump pitch, µm
	Size   float64 // bump edge length, µm
	Height float64 // bump height, µm
	R      float64 // kΩ per bump
	C      float64 // fF per bump
}

// DefaultF2F returns the paper's F2F via technology.
func DefaultF2F() F2FSpec {
	return F2FSpec{
		Pitch:  1.0,
		Size:   0.5,
		Height: 0.17,
		R:      44e-6, // 44 mΩ in kΩ
		C:      1.0,
	}
}

// Combine builds the Macro-3D combined BEOL: the logic-die stack,
// followed by the F2F bonding via, followed by the macro-die stack in
// *reversed* physical order is not needed — in an F2F bond both dies
// face each other with their top metals, so from the logic die's
// perspective the macro die's topmost metal is nearest. The paper's
// layer order (M1→…→M6→F2F_VIA→M1_MD→…→M4_MD) keeps the macro-die
// layer names in their own die's order; routing distance-wise the
// stack is simply traversed through the F2F via, which is what a 2D
// engine needs. Macro-die layers are renamed with MDSuffix and marked
// MacroDie; their preferred directions are preserved.
func Combine(logic, macro *BEOL, f2f F2FSpec) (*BEOL, error) {
	if err := logic.Validate(); err != nil {
		return nil, fmt.Errorf("tech: logic stack invalid: %w", err)
	}
	if err := macro.Validate(); err != nil {
		return nil, fmt.Errorf("tech: macro stack invalid: %w", err)
	}
	if logic.F2FViaIndex() >= 0 || macro.F2FViaIndex() >= 0 {
		return nil, fmt.Errorf("tech: cannot combine stacks that already contain an F2F via")
	}
	c := &BEOL{Name: fmt.Sprintf("%s+%s", logic.Name, macro.Name)}
	c.Layers = append(c.Layers, logic.Layers...)
	c.Vias = append(c.Vias, logic.Vias...)
	c.Vias = append(c.Vias, Via{
		Name:  F2FLayerName,
		R:     f2f.R,
		C:     f2f.C,
		F2F:   true,
		Pitch: f2f.Pitch,
	})
	// The macro die is flipped face-down onto the logic die, so the
	// macro-die layer adjacent to the F2F interface is its TOP metal.
	// Traversal order from the logic die is therefore Mn_MD, …, M1_MD.
	// Keeping traversal order in the slice preserves the router's
	// "adjacent index = physically adjacent" invariant; names keep
	// their own-die numbering as the paper prescribes.
	for i := len(macro.Layers) - 1; i >= 0; i-- {
		l := macro.Layers[i]
		l.Name += MDSuffix
		l.MacroDie = true
		c.Layers = append(c.Layers, l)
		if i > 0 {
			v := macro.Vias[i-1]
			v.Name += MDSuffix
			c.Vias = append(c.Vias, v)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MacroDieName maps a single-die layer name onto its macro-die
// counterpart in this (combined) stack: "M3" → "M3_MD", validated to
// exist. Names already carrying the suffix pass through unchanged
// (geometry hardened over a combined stack is already in the combined
// frame), as does the F2F via name. Used when a block hardened on a
// plain single-die stack is re-instantiated on the macro die of an F2F
// stack — every pin and obstruction layer remaps through here.
func (b *BEOL) MacroDieName(layer string) (string, error) {
	if layer == F2FLayerName {
		return layer, nil
	}
	name := layer
	if !strings.HasSuffix(name, MDSuffix) {
		name += MDSuffix
	}
	if b.LayerIndex(name) < 0 {
		return "", fmt.Errorf("tech: stack %q has no macro-die layer for %q (want %q)",
			b.Name, layer, name)
	}
	return name, nil
}

// Separate splits a combined stack back into the per-die layer-name
// sets used when writing the two production layouts. Both sets include
// the F2F via layer, mirroring the paper's "the F2F_VIA layer is
// included in both parts".
func Separate(combined *BEOL) (logicLayers, macroLayers []string, err error) {
	if combined.F2FViaIndex() < 0 {
		return nil, nil, fmt.Errorf("tech: %q is not a combined stack", combined.Name)
	}
	for _, l := range combined.Layers {
		if l.MacroDie {
			macroLayers = append(macroLayers, l.Name)
		} else {
			logicLayers = append(logicLayers, l.Name)
		}
	}
	logicLayers = append(logicLayers, F2FLayerName)
	macroLayers = append(macroLayers, F2FLayerName)
	return logicLayers, macroLayers, nil
}
