package tech

import "fmt"

// Corner identifies a process corner for analysis. Timing closure is
// done at the slow corner and power is reported at the typical corner,
// matching the paper's setup.
type Corner uint8

// Supported corners.
const (
	CornerTypical Corner = iota
	CornerSlow
	CornerFast
)

func (c Corner) String() string {
	switch c {
	case CornerSlow:
		return "slow"
	case CornerFast:
		return "fast"
	default:
		return "typical"
	}
}

// CornerScale holds multipliers applied to nominal delays/parasitics
// at a corner.
type CornerScale struct {
	CellDelay float64 // gate delay multiplier
	WireR     float64 // wire resistance multiplier
	WireC     float64 // wire capacitance multiplier
	Leakage   float64 // leakage power multiplier
}

// Tech bundles everything the flow needs to know about a process node:
// the standard-cell geometry grid, supply, BEOL stacks and corners.
type Tech struct {
	Name string

	// Standard-cell placement geometry.
	RowHeight float64 // µm
	SiteWidth float64 // µm, placement site (cell widths are multiples)

	VDD float64 // supply voltage, V

	// Logic is the BEOL manufactured on the logic die. Designs route
	// on this stack (2D) or on a Combine()d stack (Macro-3D).
	Logic *BEOL

	F2F F2FSpec

	Corners map[Corner]CornerScale
}

// CornerScaleFor returns the scale set for a corner, defaulting to the
// identity at the typical corner.
func (t *Tech) CornerScaleFor(c Corner) CornerScale {
	if s, ok := t.Corners[c]; ok {
		return s
	}
	return CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
}

// metalSpec is one row of the synthetic 28 nm stack table.
type metalSpec struct {
	pitch, width, r, c float64
}

// The synthetic 28 nm-class metal stack. Pitches, widths and
// per-unit-length parasitics follow public 28 nm HKMG numbers: tight
// double-patterned-like lower metals with high resistance, relaxed
// upper metals with low resistance. R in kΩ/µm, C in fF/µm.
var metals28 = []metalSpec{
	{pitch: 0.10, width: 0.050, r: 0.0080, c: 0.20}, // M1
	{pitch: 0.10, width: 0.050, r: 0.0080, c: 0.20}, // M2
	{pitch: 0.10, width: 0.050, r: 0.0068, c: 0.20}, // M3
	{pitch: 0.20, width: 0.100, r: 0.0021, c: 0.22}, // M4
	{pitch: 0.20, width: 0.100, r: 0.0021, c: 0.22}, // M5
	{pitch: 0.40, width: 0.200, r: 0.0006, c: 0.24}, // M6
	{pitch: 0.40, width: 0.200, r: 0.0006, c: 0.24}, // M7 (headroom)
	{pitch: 0.80, width: 0.400, r: 0.0002, c: 0.26}, // M8 (headroom)
}

// via resistance/capacitance per cut between Mi and Mi+1.
var vias28 = []Via{
	{Name: "VIA12", R: 0.004, C: 0.05},
	{Name: "VIA23", R: 0.004, C: 0.05},
	{Name: "VIA34", R: 0.003, C: 0.06},
	{Name: "VIA45", R: 0.002, C: 0.06},
	{Name: "VIA56", R: 0.002, C: 0.07},
	{Name: "VIA67", R: 0.001, C: 0.07},
	{Name: "VIA78", R: 0.001, C: 0.08},
}

// NewBEOL28 builds a single-die 28 nm stack with the given number of
// metal layers (2..8). Odd layers route horizontally, even vertically,
// the usual HVH alternation starting from M1 horizontal.
func NewBEOL28(name string, layers int) (*BEOL, error) {
	if layers < 2 || layers > len(metals28) {
		return nil, fmt.Errorf("tech: 28 nm stack supports 2..%d layers, got %d", len(metals28), layers)
	}
	b := &BEOL{Name: name}
	for i := 0; i < layers; i++ {
		dir := DirHorizontal
		if i%2 == 1 {
			dir = DirVertical
		}
		b.Layers = append(b.Layers, Layer{
			Name:   fmt.Sprintf("M%d", i+1),
			Dir:    dir,
			Pitch:  metals28[i].pitch,
			Width:  metals28[i].width,
			RPerUm: metals28[i].r,
			CPerUm: metals28[i].c,
		})
		if i > 0 {
			b.Vias = append(b.Vias, vias28[i-1])
		}
	}
	return b, b.Validate()
}

// New28 returns the synthetic 28 nm HKMG planar technology used by the
// case study, with the given logic-die metal count (the paper uses 6).
func New28(logicMetals int) (*Tech, error) {
	logic, err := NewBEOL28("logic28", logicMetals)
	if err != nil {
		return nil, err
	}
	return &Tech{
		Name:      "synth28",
		RowHeight: 1.2,
		SiteWidth: 0.19,
		VDD:       0.9,
		Logic:     logic,
		F2F:       DefaultF2F(),
		Corners: map[Corner]CornerScale{
			CornerTypical: {CellDelay: 1.00, WireR: 1.00, WireC: 1.00, Leakage: 1.0},
			CornerSlow:    {CellDelay: 1.25, WireR: 1.12, WireC: 1.05, Leakage: 0.6},
			CornerFast:    {CellDelay: 0.82, WireR: 0.92, WireC: 0.96, Leakage: 1.8},
		},
	}, nil
}

// ScaleParasitics returns a copy of b with per-unit-length wire R and C
// multiplied by f. Compact-2D uses this with f = 1/√2 so that routes in
// its 2×-footprint intermediate design mimic target-3D parasitics.
func ScaleParasitics(b *BEOL, f float64) *BEOL {
	c := b.Clone()
	c.Name = fmt.Sprintf("%s×%.3f", b.Name, f)
	for i := range c.Layers {
		c.Layers[i].RPerUm *= f
		c.Layers[i].CPerUm *= f
	}
	return c
}

// ShrinkGeometry returns a copy of b with pitches and widths scaled by
// f (< 1 shrinks). Shrunk-2D uses this to shrink interconnect
// dimensions by 50 % alongside cell shrinking.
func ShrinkGeometry(b *BEOL, f float64) *BEOL {
	c := b.Clone()
	c.Name = fmt.Sprintf("%s-shrunk%.2f", b.Name, f)
	for i := range c.Layers {
		c.Layers[i].Pitch *= f
		c.Layers[i].Width *= f
	}
	return c
}
