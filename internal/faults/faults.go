// Package faults is the fault-injection harness for the hardened flow
// engine: a catalogue of physical-design corruptions that can be
// injected into a running flow through Config.AfterStage, between two
// named stages. Each class either must be flagged by the independent
// sign-off verifier or must fail an earlier stage with a typed
// *flows.StageError — the harness test asserts that no corruption
// slips through silently and that no corruption escapes as an
// uncontained panic.
package faults

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"macro3d/internal/flows"
	"macro3d/internal/geom"
	"macro3d/internal/obs"
	"macro3d/internal/tech"
)

// TagInjected records the injection of a fault class into a running
// flow in the observability event stream, so a fault-matrix run with
// -events produces an auditable JSONL trail of what was corrupted
// where. Nil-safe on the recorder.
func TagInjected(rec *obs.Recorder, flow, class, stage string) {
	rec.Emit("fault_injected",
		obs.KV("flow", flow), obs.KV("class", class), obs.KV("stage", stage))
}

// TagCaught records which mechanism caught an injected fault
// (typically CaughtBy of the flow's error), completing the trail a
// TagInjected event opened.
func TagCaught(rec *obs.Recorder, flow, class, caughtBy string) {
	rec.Emit("fault_caught",
		obs.KV("flow", flow), obs.KV("class", class), obs.KV("caught_by", caughtBy))
}

// CaughtBy names the mechanism that caught an injected fault, derived
// from the error the corrupted flow returned: the failing stage of a
// typed *flows.StageError (the verify stage reporting as "verify"),
// or "uncaught" when the flow completed despite the corruption.
func CaughtBy(err error) string {
	if err == nil {
		return "uncaught"
	}
	var se *flows.StageError
	if errors.As(err, &se) {
		return se.Stage
	}
	return "untyped-error"
}

// Post-extraction corruptions (everything injected at StagePower) flow
// through the design database's change journal — the same ddb.Txn path
// the optimizer uses — so the harness also exercises the journal's
// unchecked mutation surface. The nan-parasitics class fires at
// StageRoute, before the database exists, and stays a direct mutation.

// Class is one injectable corruption.
type Class struct {
	// Name identifies the corruption in reports and test output.
	Name string

	// Stage names the flow stage after which Inject fires (matched
	// against the AfterStage hook's stage argument). All classes use
	// stages every flow executes exactly once in its real (non-pseudo)
	// phase, so one injection corrupts each flow variant identically.
	Stage string

	// Kind is the verify violation kind the corruption surfaces as
	// when it survives to the verify stage. Empty when the fault is
	// expected to fail an earlier stage (NaN parasitics are caught by
	// the extraction finiteness guard, never reaching verify).
	Kind string

	// Inject corrupts the flow state in place. It reports false when
	// the state lacks the prerequisites (e.g. fewer than two same-die
	// standard cells), which the harness treats as a setup error.
	Inject func(st *flows.State) bool
}

// Classes returns the corruption catalogue. Each call builds fresh
// closures, so catalogues are safe to use concurrently across tests.
func Classes() []Class {
	return []Class{
		{
			// Two placed same-die standard cells forced onto the same
			// location — an illegal placement the legalizer would never
			// produce.
			Name:  "overlapping-instances",
			Stage: flows.StagePower,
			Kind:  "overlap",
			Inject: func(st *flows.State) bool {
				var first *struct {
					loc geom.Point
					die int
				}
				for _, c := range st.Design.StdCells() {
					if !c.Placed {
						continue
					}
					if first == nil {
						first = &struct {
							loc geom.Point
							die int
						}{c.Loc, int(c.Die)}
						continue
					}
					if int(c.Die) == first.die {
						if st.DDB == nil {
							return false
						}
						txn := st.DDB.Begin()
						txn.SetLoc(c, first.loc)
						txn.Commit()
						return true
					}
				}
				return false
			},
		},
		{
			// A routed signal net loses its route entirely — the
			// connectivity check must report it open.
			Name:  "dangling-net",
			Stage: flows.StagePower,
			Kind:  "open-net",
			Inject: func(st *flows.State) bool {
				for _, n := range st.Design.Nets {
					if n.Clock || len(n.Sinks) == 0 {
						continue
					}
					if n.ID < len(st.Routes.Routes) && st.Routes.Routes[n.ID] != nil {
						if st.DDB == nil {
							return false
						}
						txn := st.DDB.Begin()
						txn.DropRoute(n)
						txn.Commit()
						return true
					}
				}
				return false
			},
		},
		{
			// A macro master degenerates to a zero-area footprint (the
			// kind of damage a broken LEF round-trip produces).
			Name:  "zero-area-macro",
			Stage: flows.StagePower,
			Kind:  "zero-area",
			Inject: func(st *flows.State) bool {
				ms := st.Design.Macros()
				if len(ms) == 0 || st.DDB == nil {
					return false
				}
				degenerate := *ms[0].Master // private copy; the master is shared
				degenerate.Width, degenerate.Height = 0, 0
				txn := st.DDB.Begin()
				txn.SetMaster(ms[0], &degenerate)
				txn.Commit()
				return true
			},
		},
		{
			// The routing stack's layer tables turn NaN after routing,
			// so the sign-off extraction computes NaN parasitics. The
			// extraction finiteness guard must fail the extract stage;
			// the NaNs must never reach the PPA tables.
			Name:  "nan-parasitics",
			Stage: flows.StageRoute,
			Kind:  "", // caught before verify, at the extract stage
			Inject: func(st *flows.State) bool {
				if st.DB == nil || st.DB.Beol == nil {
					return false
				}
				for i := range st.DB.Beol.Layers {
					st.DB.Beol.Layers[i].CPerUm = math.NaN()
					st.DB.Beol.Layers[i].RPerUm = math.NaN()
				}
				return true
			},
		},
	}
}

// ---- Daemon-path injections ----
//
// The multi-tenant daemon (internal/serve) must survive jobs whose
// stages panic, hang past their cancellation deadline, or read a cache
// that returns corrupt frames — each must kill only its own job, never
// the process or its neighbours. These helpers inject exactly those
// three behaviours; the serve test suite asserts the containment.

// PanicHook returns an AfterStage hook that panics once the named
// stage completes — a stage blowing up mid-job. The flow runner's
// panic containment must convert it into a typed *flows.StageError
// carrying the stack; the process must keep running.
func PanicHook(stage string) func(flow, st string, state *flows.State) {
	return func(_, st string, _ *flows.State) {
		if st == stage {
			panic(fmt.Sprintf("faults: injected panic after stage %q", stage))
		}
	}
}

// HangHook returns an AfterStage hook that blocks for d after the
// named stage, deliberately ignoring every cancellation signal — a
// stage stuck in a non-context-aware loop. The flow cannot return
// before d elapses, so a caller with a shorter deadline must abandon
// the job (the daemon's watchdog path) rather than wait.
func HangHook(stage string, d time.Duration) func(flow, st string, state *flows.State) {
	return func(_, st string, _ *flows.State) {
		if st == stage {
			time.Sleep(d)
		}
	}
}

// CorruptSnapshots bit-flips the final byte of every stage-cache
// snapshot under dir — a shared artifact store returning corrupt
// frames. Every corrupted entry must read back as a miss (checksum
// mismatch), be evicted, and cost only a recompute. Returns how many
// snapshots were corrupted.
func CorruptSnapshots(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil || len(b) == 0 {
			continue
		}
		b[len(b)-1] ^= 0x55
		if err := os.WriteFile(p, b, 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// OffGridBumps corrupts an F2F bump list by pushing the first bump
// off the bonding grid to half the minimum pitch from its neighbour —
// the geometry verify.BumpRules must reject. The input is not
// modified. Returns nil when fewer than two bumps exist.
func OffGridBumps(bumps []geom.Point, f2f tech.F2FSpec) []geom.Point {
	if len(bumps) < 2 {
		return nil
	}
	out := make([]geom.Point, len(bumps))
	copy(out, bumps)
	out[0] = geom.Pt(out[1].X+f2f.Pitch/2, out[1].Y)
	return out
}
