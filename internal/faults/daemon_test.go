package faults_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"macro3d/internal/faults"
	"macro3d/internal/flows"
	"macro3d/internal/piton"
	"macro3d/internal/stash"
)

func tinyCfg() flows.Config {
	return flows.Config{Piton: piton.Tiny(), Seed: 1}
}

// TestPanicHookContained injects a mid-job panic and asserts the flow
// runner converts it into a typed *flows.StageError carrying the
// panic stack — the containment the daemon relies on to survive a
// blowing-up job.
func TestPanicHookContained(t *testing.T) {
	cfg := tinyCfg()
	cfg.AfterStage = faults.PanicHook(flows.StagePlace)
	_, _, err := flows.Run2DCtx(context.Background(), cfg)
	if err == nil {
		t.Fatal("injected panic produced no error")
	}
	var se *flows.StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *flows.StageError: %v", err)
	}
	if se.Stage != flows.StagePlace {
		t.Errorf("StageError.Stage = %q, want %q", se.Stage, flows.StagePlace)
	}
	if len(se.Stack) == 0 {
		t.Error("contained panic lost its stack")
	}
	var pe *flows.PanicError
	if !errors.As(se.Cause, &pe) {
		t.Errorf("StageError.Cause is not a *flows.PanicError: %v", se.Cause)
	}
}

// TestHangHookIgnoresCancellation asserts the hang injection really
// does ignore its context: a flow given a deadline far shorter than
// the hang cannot return until the hang elapses. This is the
// pathological stage the daemon's abandon path exists for.
func TestHangHookIgnoresCancellation(t *testing.T) {
	const hang = 600 * time.Millisecond
	cfg := tinyCfg()
	cfg.AfterStage = faults.HangHook(flows.StagePlace, hang)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := flows.Run2DCtx(ctx, cfg)
	if err == nil {
		t.Fatal("hung flow with expired context returned no error")
	}
	if elapsed := time.Since(start); elapsed < hang {
		t.Errorf("flow returned after %v, before the %v hang elapsed — hook honoured cancellation", elapsed, hang)
	}
}

// TestCorruptSnapshots asserts the cache-corruption injection flips
// every snapshot into a checksummed miss: reads never return the
// corrupt bytes, the entries are evicted, and a clean re-Put restores
// service — corruption costs a recompute, never a wrong result.
func TestCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := stash.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]stash.Key, 3)
	payload := bytes.Repeat([]byte("snapshot"), 64)
	for i := range keys {
		keys[i] = stash.NewKey([]byte{byte(i)})
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	n, err := faults.CorruptSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("corrupted %d snapshots, want %d", n, len(keys))
	}
	for i, k := range keys {
		if got, ok := s.Get(k); ok {
			t.Errorf("key %d: corrupt snapshot served as a hit (%d bytes)", i, len(got))
		}
	}
	// Every corrupt entry was evicted from disk by the failed read.
	left, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("%d corrupt snapshots left on disk after eviction", len(left))
	}
	// Recompute path: a clean re-Put restores hits.
	for _, k := range keys {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, payload) {
			t.Error("re-Put after corruption did not restore the entry")
		}
	}
}

// TestCorruptSnapshotsEmptyDir is the degenerate case: nothing to
// corrupt is not an error.
func TestCorruptSnapshotsEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	n, err := faults.CorruptSnapshots(dir)
	if err != nil || n != 0 {
		t.Fatalf("CorruptSnapshots on empty dir = (%d, %v), want (0, nil)", n, err)
	}
}
