package faults_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"macro3d/internal/core"
	"macro3d/internal/faults"
	"macro3d/internal/flows"
	"macro3d/internal/geom"
	"macro3d/internal/obs"
	"macro3d/internal/piton"
	"macro3d/internal/tech"
	"macro3d/internal/verify"
)

// assertFaultTrail parses the run's JSONL event stream and checks the
// injected fault left its audit pair: a fault_injected event naming
// the class and stage, and a fault_caught event naming the catching
// mechanism.
func assertFaultTrail(t *testing.T, events, class, stage string) {
	t.Helper()
	var sawInjected, sawCaught bool
	for _, line := range strings.Split(strings.TrimSpace(events), "\n") {
		var ev struct {
			Ev    string         `json:"ev"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("malformed JSONL event line %q: %v", line, err)
		}
		switch ev.Ev {
		case "fault_injected":
			if ev.Attrs["class"] == class && ev.Attrs["stage"] == stage {
				sawInjected = true
			}
		case "fault_caught":
			if ev.Attrs["class"] == class && ev.Attrs["caught_by"] != "" &&
				ev.Attrs["caught_by"] != "uncaught" {
				sawCaught = true
			}
		}
	}
	if !sawInjected {
		t.Errorf("event trail lacks fault_injected for %s at %s", class, stage)
	}
	if !sawCaught {
		t.Errorf("event trail lacks fault_caught for %s", class)
	}
}

// flowVariants drives each of the flows the paper compares through a
// uniform signature for the injection matrix.
var flowVariants = []struct {
	name string
	run  func(ctx context.Context, cfg flows.Config) (*flows.State, error)
}{
	{"2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.Run2DCtx(ctx, cfg)
		return st, err
	}},
	{"Macro-3D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, _, err := flows.RunMacro3DCtx(ctx, cfg)
		return st, err
	}},
	{"S2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.RunS2DCtx(ctx, cfg, false)
		return st, err
	}},
	{"BF S2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.RunS2DCtx(ctx, cfg, true)
		return st, err
	}},
	{"C2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.RunC2DCtx(ctx, cfg)
		return st, err
	}},
}

// TestCleanFlowsPassVerify is the control arm: with no corruption
// injected, every flow variant must finish its full trace including
// independent sign-off.
func TestCleanFlowsPassVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five tiny flows")
	}
	for _, fv := range flowVariants {
		fv := fv
		t.Run(fv.name, func(t *testing.T) {
			t.Parallel()
			cfg := flows.Config{Piton: piton.Tiny(), Seed: 7, Verify: true}
			st, err := fv.run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("clean %s run failed sign-off: %v", fv.name, err)
			}
			if st.Trace == nil || !st.Trace.Completed {
				t.Fatalf("clean %s run left an incomplete trace", fv.name)
			}
		})
	}
}

// TestInjectionMatrix injects every corruption class into every flow
// variant and asserts each is caught: by the verify stage with the
// class's violation kind, or by an earlier stage as a typed
// *flows.StageError. A corruption that returns err == nil slipped
// through sign-off; a corruption that panics out of the flow escaped
// containment. Both fail the test.
func TestInjectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full flows × faults matrix of tiny flows")
	}
	for _, class := range faults.Classes() {
		class := class
		for _, fv := range flowVariants {
			fv := fv
			t.Run(class.Name+"/"+fv.name, func(t *testing.T) {
				t.Parallel()
				injected := false
				// Record the run so the injection leaves an auditable
				// JSONL trail alongside the span stream.
				var events bytes.Buffer
				rec := obs.New()
				rec.SetSink(&events)
				cfg := flows.Config{Piton: piton.Tiny(), Seed: 7, Verify: true, Obs: rec}
				cfg.AfterStage = func(flow, stage string, st *flows.State) {
					if stage != class.Stage || injected {
						return
					}
					if !class.Inject(st) {
						t.Errorf("injector %s found no target after %s", class.Name, stage)
						return
					}
					injected = true
					faults.TagInjected(rec, fv.name, class.Name, stage)
				}
				st, err := fv.run(context.Background(), cfg)
				if !injected {
					t.Fatalf("stage %q never ran, corruption was not injected", class.Stage)
				}
				if err == nil {
					t.Fatalf("corruption %s in %s flow went undetected", class.Name, fv.name)
				}
				faults.TagCaught(rec, fv.name, class.Name, faults.CaughtBy(err))
				if err := rec.Close(); err != nil {
					t.Fatalf("event sink: %v", err)
				}
				assertFaultTrail(t, events.String(), class.Name, class.Stage)
				var se *flows.StageError
				if !errors.As(err, &se) {
					t.Fatalf("failure is not a typed *StageError: %T %v", err, err)
				}
				if st == nil || st.Trace == nil || st.Trace.Completed {
					t.Fatalf("failed run must leave an incomplete trace, got %+v", st)
				}
				switch {
				case se.Stage == flows.StageVerify:
					var ve *verify.Error
					if !errors.As(err, &ve) {
						t.Fatalf("verify stage failed without a *verify.Error: %v", err)
					}
					if class.Kind == "" {
						t.Fatalf("%s was expected to fail before verify, got %v", class.Name, err)
					}
					found := false
					for _, v := range ve.Report.Violations {
						if v.Kind == class.Kind {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("verify caught %s but without kind %q: %v",
							class.Name, class.Kind, err)
					}
				case class.Name == "nan-parasitics":
					if se.Stage != flows.StageExtract {
						t.Fatalf("NaN parasitics must fail the extract stage, failed %q: %v", se.Stage, err)
					}
					if !strings.Contains(err.Error(), "non-finite") {
						t.Fatalf("extract failure does not name the non-finite quantity: %v", err)
					}
				default:
					// Degraded gracefully before verify (e.g. die
					// separation rejecting a degenerate macro) — the
					// typed StageError with full attribution suffices.
					if se.Flow == "" || se.Stage == "" {
						t.Fatalf("StageError lacks attribution: %+v", se)
					}
				}
			})
		}
	}
}

// TestOffGridBumpsCaught checks the bump corruption against the
// verifier directly: a legal bonding grid passes, the corrupted copy
// is flagged as a pitch violation.
func TestOffGridBumpsCaught(t *testing.T) {
	f2f := tech.DefaultF2F()
	var bumps []geom.Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			bumps = append(bumps, geom.Pt(float64(i)*f2f.Pitch, float64(j)*f2f.Pitch))
		}
	}
	clean := &verify.Report{}
	verify.BumpRules(clean, bumps, f2f)
	if !clean.Clean() {
		t.Fatalf("legal bonding grid flagged: %v", clean.Violations)
	}
	bad := &verify.Report{}
	verify.BumpRules(bad, faults.OffGridBumps(bumps, f2f), f2f)
	if bad.Clean() {
		t.Fatal("off-grid bump accepted")
	}
	for _, v := range bad.Violations {
		if v.Kind != "bump-pitch" {
			t.Fatalf("unexpected violation kind: %v", v)
		}
	}
}

// TestOffGridBumpsOnRealDesign corrupts the bump list of a genuine
// Macro-3D separation and asserts the verifier rejects it while
// accepting the original.
func TestOffGridBumpsOnRealDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiny Macro-3D flow")
	}
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 7}
	_, st, md, err := flows.RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logicPart, _, err := core.Separate(md, st.Routes, st.DB)
	if err != nil {
		t.Fatal(err)
	}
	f2f := tech.DefaultF2F()
	clean := &verify.Report{}
	verify.BumpRules(clean, logicPart.Bumps, f2f)
	if !clean.Clean() {
		t.Fatalf("real bump list flagged: %v", clean.Violations)
	}
	bad := &verify.Report{}
	verify.BumpRules(bad, faults.OffGridBumps(logicPart.Bumps, f2f), f2f)
	if bad.Clean() {
		t.Fatal("corrupted real bump list accepted")
	}
}
