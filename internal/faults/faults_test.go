package faults_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"macro3d/internal/core"
	"macro3d/internal/faults"
	"macro3d/internal/flows"
	"macro3d/internal/geom"
	"macro3d/internal/piton"
	"macro3d/internal/tech"
	"macro3d/internal/verify"
)

// flowVariants drives each of the flows the paper compares through a
// uniform signature for the injection matrix.
var flowVariants = []struct {
	name string
	run  func(ctx context.Context, cfg flows.Config) (*flows.State, error)
}{
	{"2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.Run2DCtx(ctx, cfg)
		return st, err
	}},
	{"Macro-3D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, _, err := flows.RunMacro3DCtx(ctx, cfg)
		return st, err
	}},
	{"S2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.RunS2DCtx(ctx, cfg, false)
		return st, err
	}},
	{"BF S2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.RunS2DCtx(ctx, cfg, true)
		return st, err
	}},
	{"C2D", func(ctx context.Context, cfg flows.Config) (*flows.State, error) {
		_, st, err := flows.RunC2DCtx(ctx, cfg)
		return st, err
	}},
}

// TestCleanFlowsPassVerify is the control arm: with no corruption
// injected, every flow variant must finish its full trace including
// independent sign-off.
func TestCleanFlowsPassVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five tiny flows")
	}
	for _, fv := range flowVariants {
		fv := fv
		t.Run(fv.name, func(t *testing.T) {
			t.Parallel()
			cfg := flows.Config{Piton: piton.Tiny(), Seed: 7, Verify: true}
			st, err := fv.run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("clean %s run failed sign-off: %v", fv.name, err)
			}
			if st.Trace == nil || !st.Trace.Completed {
				t.Fatalf("clean %s run left an incomplete trace", fv.name)
			}
		})
	}
}

// TestInjectionMatrix injects every corruption class into every flow
// variant and asserts each is caught: by the verify stage with the
// class's violation kind, or by an earlier stage as a typed
// *flows.StageError. A corruption that returns err == nil slipped
// through sign-off; a corruption that panics out of the flow escaped
// containment. Both fail the test.
func TestInjectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full flows × faults matrix of tiny flows")
	}
	for _, class := range faults.Classes() {
		class := class
		for _, fv := range flowVariants {
			fv := fv
			t.Run(class.Name+"/"+fv.name, func(t *testing.T) {
				t.Parallel()
				injected := false
				cfg := flows.Config{Piton: piton.Tiny(), Seed: 7, Verify: true}
				cfg.AfterStage = func(flow, stage string, st *flows.State) {
					if stage != class.Stage || injected {
						return
					}
					if !class.Inject(st) {
						t.Errorf("injector %s found no target after %s", class.Name, stage)
						return
					}
					injected = true
				}
				st, err := fv.run(context.Background(), cfg)
				if !injected {
					t.Fatalf("stage %q never ran, corruption was not injected", class.Stage)
				}
				if err == nil {
					t.Fatalf("corruption %s in %s flow went undetected", class.Name, fv.name)
				}
				var se *flows.StageError
				if !errors.As(err, &se) {
					t.Fatalf("failure is not a typed *StageError: %T %v", err, err)
				}
				if st == nil || st.Trace == nil || st.Trace.Completed {
					t.Fatalf("failed run must leave an incomplete trace, got %+v", st)
				}
				switch {
				case se.Stage == flows.StageVerify:
					var ve *verify.Error
					if !errors.As(err, &ve) {
						t.Fatalf("verify stage failed without a *verify.Error: %v", err)
					}
					if class.Kind == "" {
						t.Fatalf("%s was expected to fail before verify, got %v", class.Name, err)
					}
					found := false
					for _, v := range ve.Report.Violations {
						if v.Kind == class.Kind {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("verify caught %s but without kind %q: %v",
							class.Name, class.Kind, err)
					}
				case class.Name == "nan-parasitics":
					if se.Stage != flows.StageExtract {
						t.Fatalf("NaN parasitics must fail the extract stage, failed %q: %v", se.Stage, err)
					}
					if !strings.Contains(err.Error(), "non-finite") {
						t.Fatalf("extract failure does not name the non-finite quantity: %v", err)
					}
				default:
					// Degraded gracefully before verify (e.g. die
					// separation rejecting a degenerate macro) — the
					// typed StageError with full attribution suffices.
					if se.Flow == "" || se.Stage == "" {
						t.Fatalf("StageError lacks attribution: %+v", se)
					}
				}
			})
		}
	}
}

// TestOffGridBumpsCaught checks the bump corruption against the
// verifier directly: a legal bonding grid passes, the corrupted copy
// is flagged as a pitch violation.
func TestOffGridBumpsCaught(t *testing.T) {
	f2f := tech.DefaultF2F()
	var bumps []geom.Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			bumps = append(bumps, geom.Pt(float64(i)*f2f.Pitch, float64(j)*f2f.Pitch))
		}
	}
	clean := &verify.Report{}
	verify.BumpRules(clean, bumps, f2f)
	if !clean.Clean() {
		t.Fatalf("legal bonding grid flagged: %v", clean.Violations)
	}
	bad := &verify.Report{}
	verify.BumpRules(bad, faults.OffGridBumps(bumps, f2f), f2f)
	if bad.Clean() {
		t.Fatal("off-grid bump accepted")
	}
	for _, v := range bad.Violations {
		if v.Kind != "bump-pitch" {
			t.Fatalf("unexpected violation kind: %v", v)
		}
	}
}

// TestOffGridBumpsOnRealDesign corrupts the bump list of a genuine
// Macro-3D separation and asserts the verifier rejects it while
// accepting the original.
func TestOffGridBumpsOnRealDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiny Macro-3D flow")
	}
	cfg := flows.Config{Piton: piton.Tiny(), Seed: 7}
	_, st, md, err := flows.RunMacro3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logicPart, _, err := core.Separate(md, st.Routes, st.DB)
	if err != nil {
		t.Fatal(err)
	}
	f2f := tech.DefaultF2F()
	clean := &verify.Report{}
	verify.BumpRules(clean, logicPart.Bumps, f2f)
	if !clean.Clean() {
		t.Fatalf("real bump list flagged: %v", clean.Violations)
	}
	bad := &verify.Report{}
	verify.BumpRules(bad, faults.OffGridBumps(logicPart.Bumps, f2f), f2f)
	if bad.Clean() {
		t.Fatal("corrupted real bump list accepted")
	}
}
