package geom

import "fmt"

// Grid maps a rectangular region onto NX×NY equal bins. It is the
// shared indexing scheme for placement density bins and routing gcells.
type Grid struct {
	Region Rect
	NX, NY int
	DX, DY float64
}

// NewGrid covers region with bins of approximately the given pitch.
// The bin counts are at least 1; the exact bin size divides the region
// evenly so the grid tiles the region with no remainder strip.
func NewGrid(region Rect, pitch float64) Grid {
	if pitch <= 0 {
		panic("geom: grid pitch must be positive")
	}
	nx := int(region.W()/pitch + 0.5)
	ny := int(region.H()/pitch + 0.5)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return Grid{
		Region: region,
		NX:     nx, NY: ny,
		DX: region.W() / float64(nx),
		DY: region.H() / float64(ny),
	}
}

// Bins returns the total bin count NX*NY.
func (g Grid) Bins() int { return g.NX * g.NY }

// Index converts bin coordinates to a flat index.
func (g Grid) Index(ix, iy int) int { return iy*g.NX + ix }

// Coords converts a flat index back to bin coordinates.
func (g Grid) Coords(i int) (ix, iy int) { return i % g.NX, i / g.NX }

// Locate returns the bin containing p, clamped to the grid.
func (g Grid) Locate(p Point) (ix, iy int) {
	ix = ClampInt(int((p.X-g.Region.Lx)/g.DX), 0, g.NX-1)
	iy = ClampInt(int((p.Y-g.Region.Ly)/g.DY), 0, g.NY-1)
	return
}

// BinRect returns the rectangle of bin (ix, iy).
func (g Grid) BinRect(ix, iy int) Rect {
	lx := g.Region.Lx + float64(ix)*g.DX
	ly := g.Region.Ly + float64(iy)*g.DY
	return Rect{lx, ly, lx + g.DX, ly + g.DY}
}

// BinCenter returns the centre of bin (ix, iy).
func (g Grid) BinCenter(ix, iy int) Point {
	return g.BinRect(ix, iy).Center()
}

// CoverRange returns the inclusive bin index ranges overlapped by r,
// clamped to the grid. ok is false when r misses the grid entirely.
func (g Grid) CoverRange(r Rect) (x0, y0, x1, y1 int, ok bool) {
	rr := r.Intersect(g.Region)
	if rr.Empty() {
		return 0, 0, 0, 0, false
	}
	x0 = ClampInt(int((rr.Lx-g.Region.Lx)/g.DX), 0, g.NX-1)
	y0 = ClampInt(int((rr.Ly-g.Region.Ly)/g.DY), 0, g.NY-1)
	// Subtract a hair so an exact upper boundary does not spill into
	// the next bin.
	x1 = ClampInt(int((rr.Ux-g.Region.Lx)/g.DX-1e-9), 0, g.NX-1)
	y1 = ClampInt(int((rr.Uy-g.Region.Ly)/g.DY-1e-9), 0, g.NY-1)
	return x0, y0, x1, y1, true
}

func (g Grid) String() string {
	return fmt.Sprintf("grid %dx%d over %v", g.NX, g.NY, g.Region)
}
