package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Manhattan(q); !almostEq(got, 5) {
		t.Errorf("Manhattan = %v", got)
	}
	if got := p.Dist(Pt(4, 6)); !almostEq(got, 5) {
		t.Errorf("Dist = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 10, 4)
	if r.W() != 10 || r.H() != 4 || r.Area() != 40 {
		t.Fatalf("W/H/Area wrong: %v %v %v", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if (Rect{5, 5, 5, 9}).Area() != 0 {
		t.Fatal("degenerate rect has area")
	}
	if c := r.Center(); c != Pt(5, 2) {
		t.Fatalf("Center = %v", c)
	}
	if !r.Contains(Pt(0, 0)) || r.Contains(Pt(10, 2)) {
		t.Fatal("half-open containment wrong")
	}
	if !r.ContainsRect(R(1, 1, 9, 3)) || r.ContainsRect(R(1, 1, 11, 3)) {
		t.Fatal("ContainsRect wrong")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if !a.Intersects(b) {
		t.Fatal("should intersect")
	}
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if u := a.Union(b); u != R(0, 0, 15, 15) {
		t.Fatalf("Union = %v", u)
	}
	c := R(20, 20, 30, 30)
	if a.Intersects(c) {
		t.Fatal("disjoint rects intersect")
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersection not empty")
	}
	// Union with empty operand returns the other operand.
	if u := (Rect{}).Union(a); u != a {
		t.Fatalf("Union with empty = %v", u)
	}
}

func TestRectTransforms(t *testing.T) {
	r := R(1, 1, 3, 5)
	if got := r.Expand(1); got != R(0, 0, 4, 6) {
		t.Fatalf("Expand = %v", got)
	}
	if got := r.Translate(Pt(2, -1)); got != R(3, 0, 5, 4) {
		t.Fatalf("Translate = %v", got)
	}
	if got := r.Scale(2); got != R(2, 2, 6, 10) {
		t.Fatalf("Scale = %v", got)
	}
	if got := r.ClampPoint(Pt(-5, 10)); got != Pt(1, 5) {
		t.Fatalf("ClampPoint = %v", got)
	}
}

func TestHPWL(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {2, 3}}
	if got := HPWL(pts); !almostEq(got, 7) {
		t.Fatalf("HPWL = %v", got)
	}
	if HPWL(pts[:1]) != 0 {
		t.Fatal("single-pin net has nonzero HPWL")
	}
	if HPWL(nil) != 0 {
		t.Fatal("empty net has nonzero HPWL")
	}
}

func TestHPWLProperties(t *testing.T) {
	// HPWL is translation invariant and never exceeds total pairwise
	// Manhattan spans; it is also >= Manhattan distance of any pair /
	// (since bbox covers both points).
	f := func(xs [6]float64, dx, dy float64) bool {
		pts := make([]Point, 3)
		for i := range pts {
			pts[i] = Pt(math.Mod(xs[2*i], 1000), math.Mod(xs[2*i+1], 1000))
		}
		h := HPWL(pts)
		moved := make([]Point, len(pts))
		for i, p := range pts {
			moved[i] = p.Add(Pt(math.Mod(dx, 500), math.Mod(dy, 500)))
		}
		if !almostEq(HPWL(moved), h) {
			return false
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if pts[i].Manhattan(pts[j]) > h+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapAndClamp(t *testing.T) {
	if got := Snap(1.26, 0.5); !almostEq(got, 1.5) {
		t.Fatalf("Snap = %v", got)
	}
	if got := SnapDown(1.99, 0.5); !almostEq(got, 1.5) {
		t.Fatalf("SnapDown = %v", got)
	}
	if got := SnapUp(1.01, 0.5); !almostEq(got, 1.5) {
		t.Fatalf("SnapUp = %v", got)
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 {
		t.Fatal("ClampInt wrong")
	}
}

func TestOrientApply(t *testing.T) {
	w, h := 4.0, 2.0
	p := Pt(1, 0.5)
	cases := []struct {
		o    Orient
		want Point
	}{
		{OrientN, Pt(1, 0.5)},
		{OrientS, Pt(3, 1.5)},
		{OrientFN, Pt(3, 0.5)},
		{OrientFS, Pt(1, 1.5)},
	}
	for _, c := range cases {
		if got := c.o.Apply(p, w, h); got != c.want {
			t.Errorf("%v.Apply = %v, want %v", c.o, got, c.want)
		}
	}
	// Applying any orientation keeps the point inside the cell box.
	f := func(px, py float64, o uint8) bool {
		p := Pt(math.Mod(math.Abs(px), w), math.Mod(math.Abs(py), h))
		q := Orient(o%4).Apply(p, w, h)
		return q.X >= 0 && q.X <= w && q.Y >= 0 && q.Y <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrientString(t *testing.T) {
	if OrientN.String() != "N" || OrientFS.String() != "FS" {
		t.Fatal("orient names wrong")
	}
}

func TestBoundingBox(t *testing.T) {
	if !BoundingBox(nil).Empty() {
		t.Fatal("empty bbox not empty")
	}
	bb := BoundingBox([]Point{{1, 2}, {-1, 5}, {3, 0}})
	if bb != R(-1, 0, 3, 5) {
		t.Fatalf("bbox = %v", bb)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		if v := r.Range(5, 6); v < 5 || v >= 6 {
			t.Fatalf("Range out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(1)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	va := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if math.Abs(va-1) > 0.1 {
		t.Fatalf("Norm variance = %v", va)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	a := r.Fork(1)
	r2 := NewRNG(5)
	b := r2.Fork(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forks with different labels correlated")
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 50), 10)
	if g.NX != 10 || g.NY != 5 {
		t.Fatalf("grid dims %dx%d", g.NX, g.NY)
	}
	if g.Bins() != 50 {
		t.Fatalf("Bins = %d", g.Bins())
	}
	ix, iy := g.Locate(Pt(15, 45))
	if ix != 1 || iy != 4 {
		t.Fatalf("Locate = %d,%d", ix, iy)
	}
	// Clamping outside.
	ix, iy = g.Locate(Pt(-5, 500))
	if ix != 0 || iy != 4 {
		t.Fatalf("Locate clamp = %d,%d", ix, iy)
	}
	if r := g.BinRect(0, 0); r != R(0, 0, 10, 10) {
		t.Fatalf("BinRect = %v", r)
	}
	if c := g.BinCenter(1, 1); c != Pt(15, 15) {
		t.Fatalf("BinCenter = %v", c)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := NewGrid(R(0, 0, 70, 30), 7)
	for i := 0; i < g.Bins(); i++ {
		ix, iy := g.Coords(i)
		if g.Index(ix, iy) != i {
			t.Fatalf("index round trip failed at %d", i)
		}
	}
}

func TestGridCoverRange(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	x0, y0, x1, y1, ok := g.CoverRange(R(5, 5, 25, 15))
	if !ok || x0 != 0 || y0 != 0 || x1 != 2 || y1 != 1 {
		t.Fatalf("CoverRange = %d,%d..%d,%d ok=%v", x0, y0, x1, y1, ok)
	}
	// Exact boundary should not spill into next bin.
	_, _, x1, y1, _ = g.CoverRange(R(0, 0, 10, 10))
	if x1 != 0 || y1 != 0 {
		t.Fatalf("boundary spill: %d,%d", x1, y1)
	}
	if _, _, _, _, ok := g.CoverRange(R(200, 200, 300, 300)); ok {
		t.Fatal("off-grid rect reported covered")
	}
}

func TestGridPitchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero pitch did not panic")
		}
	}()
	NewGrid(R(0, 0, 1, 1), 0)
}

func TestGridBinRectTiling(t *testing.T) {
	// Property: bin rectangles tile the region exactly — disjoint and
	// covering.
	f := func(w, h uint8, p uint8) bool {
		W := 10 + float64(w%200)
		H := 10 + float64(h%200)
		pitch := 3 + float64(p%20)
		g := NewGrid(R(0, 0, W, H), pitch)
		var area float64
		for i := 0; i < g.Bins(); i++ {
			ix, iy := g.Coords(i)
			area += g.BinRect(ix, iy).Area()
		}
		return math.Abs(area-W*H) < 1e-6*W*H
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridLocateConsistentWithBinRect(t *testing.T) {
	// Property: every point locates to the bin whose rect contains it.
	g := NewGrid(R(0, 0, 120, 90), 11)
	rng := NewRNG(3)
	for i := 0; i < 500; i++ {
		p := Pt(rng.Range(0, 120), rng.Range(0, 90))
		ix, iy := g.Locate(p)
		if !g.BinRect(ix, iy).Contains(p) {
			t.Fatalf("point %v located to bin %d,%d not containing it", p, ix, iy)
		}
	}
}

func TestRectUnionCommutativeAssociative(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		mk := func(v [4]float64) Rect {
			x0, y0 := math.Mod(v[0], 100), math.Mod(v[1], 100)
			return R(x0, y0, x0+1+math.Abs(math.Mod(v[2], 50)), y0+1+math.Abs(math.Mod(v[3], 50)))
		}
		ra, rb, rc := mk(a), mk(b), mk(c)
		if ra.Union(rb) != rb.Union(ra) {
			return false
		}
		return ra.Union(rb).Union(rc) == ra.Union(rb.Union(rc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectInsideBoth(t *testing.T) {
	f := func(a, b [4]float64) bool {
		mk := func(v [4]float64) Rect {
			x0, y0 := math.Mod(v[0], 100), math.Mod(v[1], 100)
			return R(x0, y0, x0+1+math.Abs(math.Mod(v[2], 50)), y0+1+math.Abs(math.Mod(v[3], 50)))
		}
		ra, rb := mk(a), mk(b)
		iv := ra.Intersect(rb)
		if iv.Empty() {
			return true
		}
		return ra.ContainsRect(iv) && rb.ContainsRect(iv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGRangeDegenerate(t *testing.T) {
	r := NewRNG(4)
	if v := r.Range(5, 5); v != 5 {
		t.Fatalf("degenerate range = %v", v)
	}
}

func TestSnapIdempotent(t *testing.T) {
	f := func(v float64, s uint8) bool {
		step := 0.1 + float64(s%20)/10
		x := Snap(math.Mod(v, 1e6), step)
		return math.Abs(Snap(x, step)-x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
