// Package geom provides the geometric primitives shared by every stage
// of the physical-design flow: points, rectangles, intervals and
// orientation handling. All coordinates are in micrometres (µm).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in µm.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the point scaled by s in both axes.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Manhattan returns the L1 (rectilinear) distance to q. Wirelength in a
// Manhattan routing fabric is measured with this metric.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [Lx,Ux) × [Ly,Uy) in µm.
// A Rect with Ux <= Lx or Uy <= Ly is considered empty.
type Rect struct {
	Lx, Ly, Ux, Uy float64
}

// R is shorthand for a Rect from its four bounds.
func R(lx, ly, ux, uy float64) Rect { return Rect{lx, ly, ux, uy} }

// RectWH builds a rectangle from its lower-left corner and a size.
func RectWH(ll Point, w, h float64) Rect {
	return Rect{ll.X, ll.Y, ll.X + w, ll.Y + h}
}

// W returns the width of the rectangle (0 if empty).
func (r Rect) W() float64 {
	if r.Ux <= r.Lx {
		return 0
	}
	return r.Ux - r.Lx
}

// H returns the height of the rectangle (0 if empty).
func (r Rect) H() float64 {
	if r.Uy <= r.Ly {
		return 0
	}
	return r.Uy - r.Ly
}

// Area returns the area in µm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.Ux <= r.Lx || r.Uy <= r.Ly }

// Center returns the centre point.
func (r Rect) Center() Point { return Point{(r.Lx + r.Ux) / 2, (r.Ly + r.Uy) / 2} }

// LL returns the lower-left corner.
func (r Rect) LL() Point { return Point{r.Lx, r.Ly} }

// UR returns the upper-right corner.
func (r Rect) UR() Point { return Point{r.Ux, r.Uy} }

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lx && p.X < r.Ux && p.Y >= r.Ly && p.Y < r.Uy
}

// ContainsRect reports whether q lies fully inside r (closed bounds).
func (r Rect) ContainsRect(q Rect) bool {
	return q.Lx >= r.Lx && q.Ux <= r.Ux && q.Ly >= r.Ly && q.Uy <= r.Uy
}

// Intersects reports whether r and q share interior area.
func (r Rect) Intersects(q Rect) bool {
	return r.Lx < q.Ux && q.Lx < r.Ux && r.Ly < q.Uy && q.Ly < r.Uy
}

// Intersect returns the overlapping region of r and q (possibly empty).
func (r Rect) Intersect(q Rect) Rect {
	return Rect{
		math.Max(r.Lx, q.Lx), math.Max(r.Ly, q.Ly),
		math.Min(r.Ux, q.Ux), math.Min(r.Uy, q.Uy),
	}
}

// Union returns the bounding box of r and q. Empty operands are
// ignored, so Union can fold a slice starting from the zero Rect only
// when callers treat the zero Rect as empty.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	return Rect{
		math.Min(r.Lx, q.Lx), math.Min(r.Ly, q.Ly),
		math.Max(r.Ux, q.Ux), math.Max(r.Uy, q.Uy),
	}
}

// Expand grows the rectangle by d on every side (shrinks for d < 0).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.Lx - d, r.Ly - d, r.Ux + d, r.Uy + d}
}

// Translate shifts the rectangle by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.Lx + p.X, r.Ly + p.Y, r.Ux + p.X, r.Uy + p.Y}
}

// Scale scales all four bounds about the origin.
func (r Rect) Scale(s float64) Rect {
	return Rect{r.Lx * s, r.Ly * s, r.Ux * s, r.Uy * s}
}

// ClampPoint returns the point inside r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{Clamp(p.X, r.Lx, r.Ux), Clamp(p.Y, r.Ly, r.Uy)}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f %.3f,%.3f]", r.Lx, r.Ly, r.Ux, r.Uy)
}

// BoundingBox returns the bounding box of a set of points. It returns
// an empty Rect when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	bb := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		bb.Lx = math.Min(bb.Lx, p.X)
		bb.Ly = math.Min(bb.Ly, p.Y)
		bb.Ux = math.Max(bb.Ux, p.X)
		bb.Uy = math.Max(bb.Uy, p.Y)
	}
	return bb
}

// HPWL returns the half-perimeter wirelength of a set of pin locations,
// the standard net-length estimate used by placers.
func HPWL(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	bb := BoundingBox(pts)
	// The bounding box of points is degenerate (Ux==Lx allowed), so use
	// the raw differences rather than W/H which treat that as empty.
	return (bb.Ux - bb.Lx) + (bb.Uy - bb.Ly)
}

// Clamp limits v to the range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the range [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AbsInt returns |v|. The one integer-abs helper shared by the
// geometry consumers (route, place) so the packages stop growing
// private shims.
func AbsInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Snap rounds v to the nearest multiple of step (step > 0).
func Snap(v, step float64) float64 {
	return math.Round(v/step) * step
}

// SnapDown rounds v down to a multiple of step.
func SnapDown(v, step float64) float64 {
	return math.Floor(v/step) * step
}

// SnapUp rounds v up to a multiple of step.
func SnapUp(v, step float64) float64 {
	return math.Ceil(v/step) * step
}

// Orient is a placement orientation for instances (subset of the DEF
// orientations; flows here only distinguish rotation by 0/180 and
// mirroring used for row flipping).
type Orient uint8

// Supported orientations.
const (
	OrientN  Orient = iota // North: no transform
	OrientS                // South: rotated 180°
	OrientFN               // Flipped North: mirrored about the y axis
	OrientFS               // Flipped South: mirrored about the x axis
)

func (o Orient) String() string {
	switch o {
	case OrientN:
		return "N"
	case OrientS:
		return "S"
	case OrientFN:
		return "FN"
	case OrientFS:
		return "FS"
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// Apply maps a point given in the local cell frame (cell of size w×h,
// origin at the lower-left) into the oriented frame.
func (o Orient) Apply(p Point, w, h float64) Point {
	switch o {
	case OrientS:
		return Point{w - p.X, h - p.Y}
	case OrientFN:
		return Point{w - p.X, p.Y}
	case OrientFS:
		return Point{p.X, h - p.Y}
	default:
		return p
	}
}
