package geom

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every randomized step in the flow takes an explicit
// *RNG so that whole-flow runs are reproducible from a single seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("geom: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns an approximately standard-normal value using the sum of
// uniforms (Irwin–Hall with 12 terms), which is plenty for workload
// synthesis and avoids math.Log in hot paths.
func (r *RNG) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Fork derives an independent child generator. Children produced with
// distinct labels have decorrelated streams.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
