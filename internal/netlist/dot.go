package netlist

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits the design's connectivity as a Graphviz digraph:
// instances as boxes (macros emphasized), ports as ellipses, one edge
// per driver→sink pair. Clock nets are dashed. Intended for debugging
// small designs — the benchmark tiles produce very large graphs.
func (d *Design) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [fontsize=9];\n", d.Name)
	for _, inst := range d.Instances {
		shape := "box"
		style := ""
		if inst.IsMacro() {
			style = ` style=filled fillcolor="#d9a9a9"`
		} else if inst.Master.IsSequential() {
			style = ` style=filled fillcolor="#c9d8ef"`
		}
		fmt.Fprintf(bw, "  %q [shape=%s%s label=\"%s\\n%s\"];\n",
			inst.Name, shape, style, inst.Name, inst.Master.Name)
	}
	for _, p := range d.Ports {
		fmt.Fprintf(bw, "  %q [shape=ellipse label=%q];\n", "port:"+p.Name, p.Name)
	}
	nodeOf := func(r PinRef) string {
		if r.Port != nil {
			return "port:" + r.Port.Name
		}
		return r.Inst.Name
	}
	for _, n := range d.Nets {
		attr := ""
		if n.Clock {
			attr = ` [style=dashed color="#888888"]`
		}
		for _, s := range n.Sinks {
			fmt.Fprintf(bw, "  %q -> %q%s;\n", nodeOf(n.Driver), nodeOf(s), attr)
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
