package netlist

import (
	"math"
	"strings"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
)

func testLib() *cell.Library { return cell.NewStdLib28(cell.DefaultLibOptions()) }

// tiny builds inv -> dff with a clock port and a data input port.
func tiny(t *testing.T) *Design {
	t.Helper()
	lib := testLib()
	d := NewDesign("tiny", lib)
	in := d.AddPort("din", cell.DirIn)
	clk := d.AddPort("clk", cell.DirIn)
	out := d.AddPort("dout", cell.DirOut)
	u1 := d.AddInstance("u1", lib.MustCell("INV_X1"))
	ff := d.AddInstance("ff", lib.MustCell("DFF_X1"))
	d.AddNet("n_in", PPin(in), IPin(u1, "A"))
	d.AddNet("n_mid", IPin(u1, "Y"), IPin(ff, "D"))
	n := d.AddNet("clk", PPin(clk), IPin(ff, "CK"))
	n.Clock = true
	d.AddNet("n_out", IPin(ff, "Q"), PPin(out))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildAndLookup(t *testing.T) {
	d := tiny(t)
	if d.Instance("u1") == nil || d.Instance("zz") != nil {
		t.Fatal("instance lookup wrong")
	}
	if d.Net("n_mid") == nil || d.Net("zz") != nil {
		t.Fatal("net lookup wrong")
	}
	if d.Port("clk") == nil || d.Port("zz") != nil {
		t.Fatal("port lookup wrong")
	}
	if len(d.Instances) != 2 || len(d.Nets) != 4 || len(d.Ports) != 3 {
		t.Fatal("counts wrong")
	}
	if d.Instances[0].ID != 0 || d.Instances[1].ID != 1 {
		t.Fatal("instance IDs not sequential")
	}
}

func TestDuplicatePanics(t *testing.T) {
	d := tiny(t)
	for name, f := range map[string]func(){
		"instance": func() { d.AddInstance("u1", testLib().MustCell("INV_X1")) },
		"net":      func() { d.AddNet("n_in", PPin(d.Ports[0])) },
		"port":     func() { d.AddPort("clk", cell.DirIn) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duplicate %s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPinLocWithOrientation(t *testing.T) {
	d := tiny(t)
	u1 := d.Instance("u1")
	u1.Loc = geom.Pt(10, 20)
	pin := u1.Master.Pin("A")
	want := geom.Pt(10, 20).Add(pin.Offset)
	if got := u1.PinLoc("A"); got != want {
		t.Fatalf("PinLoc N = %v, want %v", got, want)
	}
	u1.Orient = geom.OrientFN
	got := u1.PinLoc("A")
	wantX := 10 + (u1.Master.Width - pin.Offset.X)
	if got.X != wantX || got.Y != 20+pin.Offset.Y {
		t.Fatalf("PinLoc FN = %v", got)
	}
}

func TestPinLocUnknownPanics(t *testing.T) {
	d := tiny(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pin did not panic")
		}
	}()
	d.Instance("u1").PinLoc("NOPE")
}

func TestNetHPWL(t *testing.T) {
	d := tiny(t)
	u1 := d.Instance("u1")
	ff := d.Instance("ff")
	u1.Loc = geom.Pt(0, 0)
	ff.Loc = geom.Pt(100, 50)
	n := d.Net("n_mid")
	h := n.HPWL()
	if h <= 100 || h >= 200 {
		t.Fatalf("HPWL = %v, expected ~150", h)
	}
	if d.TotalHPWL() < h {
		t.Fatal("TotalHPWL less than one net")
	}
}

func TestValidateCatchesBadNets(t *testing.T) {
	lib := testLib()
	d := NewDesign("bad", lib)
	u1 := d.AddInstance("u1", lib.MustCell("INV_X1"))
	u2 := d.AddInstance("u2", lib.MustCell("INV_X1"))
	// Driver at an input pin: invalid.
	d.AddNet("n1", IPin(u1, "A"), IPin(u2, "A"))
	if err := d.Validate(); err == nil {
		t.Fatal("input-pin driver accepted")
	}

	d2 := NewDesign("bad2", lib)
	v1 := d2.AddInstance("u1", lib.MustCell("INV_X1"))
	v2 := d2.AddInstance("u2", lib.MustCell("INV_X1"))
	// Sink at an output pin: invalid.
	d2.AddNet("n1", IPin(v1, "Y"), IPin(v2, "Y"))
	if err := d2.Validate(); err == nil {
		t.Fatal("output-pin sink accepted")
	}

	d3 := NewDesign("bad3", lib)
	w1 := d3.AddInstance("u1", lib.MustCell("INV_X1"))
	w2 := d3.AddInstance("u2", lib.MustCell("INV_X1"))
	d3.AddNet("n1", IPin(w1, "Y"), IPin(w2, "A"))
	d3.AddNet("n2", IPin(w2, "Y"), IPin(w2, "A")) // same sink twice
	if err := d3.Validate(); err == nil {
		t.Fatal("doubly-driven pin accepted")
	}

	d4 := NewDesign("bad4", lib)
	d4.AddNet("n1", PinRef{})
	if err := d4.Validate(); err == nil {
		t.Fatal("driverless net accepted")
	}
}

func TestValidatePortDirections(t *testing.T) {
	lib := testLib()
	d := NewDesign("p", lib)
	out := d.AddPort("o", cell.DirOut)
	u := d.AddInstance("u", lib.MustCell("INV_X1"))
	// Output port cannot drive.
	d.AddNet("n", PPin(out), IPin(u, "A"))
	if err := d.Validate(); err == nil {
		t.Fatal("output port as driver accepted")
	}
}

func TestComputeStats(t *testing.T) {
	lib := testLib()
	d := NewDesign("s", lib)
	sram, err := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 1024, Bits: 32})
	if err != nil {
		t.Fatal(err)
	}
	d.AddInstance("mem", sram)
	d.AddInstance("u1", lib.MustCell("INV_X2"))
	d.AddInstance("ff", lib.MustCell("DFF_X1"))
	d.AddInstance("fill", lib.MustCell("FILL_X1"))
	st := d.ComputeStats()
	if st.NumInstances != 4 || st.NumMacros != 1 || st.NumStdCells != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.NumSeq != 2 { // DFF + clocked SRAM
		t.Fatalf("NumSeq = %d", st.NumSeq)
	}
	if st.MacroArea <= st.StdCellArea {
		t.Fatal("macro area should dominate")
	}
}

func TestNetsOfInstance(t *testing.T) {
	d := tiny(t)
	adj := d.NetsOfInstance()
	u1 := d.Instance("u1")
	if len(adj[u1.ID]) != 2 {
		t.Fatalf("u1 net degree = %d", len(adj[u1.ID]))
	}
	ff := d.Instance("ff")
	if len(adj[ff.ID]) != 3 {
		t.Fatalf("ff net degree = %d", len(adj[ff.ID]))
	}
}

func TestMacrosAndStdCells(t *testing.T) {
	lib := testLib()
	d := NewDesign("m", lib)
	s1, _ := cell.NewSRAM(cell.SRAMSpec{Name: "s1", Words: 512, Bits: 16})
	s2, _ := cell.NewSRAM(cell.SRAMSpec{Name: "s2", Words: 512, Bits: 16})
	d.AddInstance("z_mem", s1)
	d.AddInstance("a_mem", s2)
	d.AddInstance("u1", lib.MustCell("INV_X1"))
	ms := d.Macros()
	if len(ms) != 2 || ms[0].Name != "a_mem" {
		t.Fatalf("Macros order wrong: %v", ms)
	}
	if len(d.StdCells()) != 1 {
		t.Fatal("StdCells wrong")
	}
}

func TestResize(t *testing.T) {
	d := tiny(t)
	lib := d.Lib
	u1 := d.Instance("u1")
	if err := d.Resize(u1, lib.MustCell("INV_X4")); err != nil {
		t.Fatal(err)
	}
	if u1.Master.Name != "INV_X4" {
		t.Fatal("resize did not swap master")
	}
	// Net refs still resolve.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cross-family resize rejected.
	if err := d.Resize(u1, lib.MustCell("NAND2_X1")); err == nil {
		t.Fatal("cross-family resize accepted")
	}
	if err := d.Resize(u1, nil); err == nil {
		t.Fatal("nil resize accepted")
	}
}

func TestPinRefAccessors(t *testing.T) {
	d := tiny(t)
	clk := d.Port("clk")
	clk.Loc = geom.Pt(5, 5)
	clk.Layer = "M6"
	r := PPin(clk)
	if !r.IsPort() || r.Loc() != geom.Pt(5, 5) || r.Layer() != "M6" {
		t.Fatal("port PinRef accessors wrong")
	}
	u1 := d.Instance("u1")
	ir := IPin(u1, "A")
	if ir.IsPort() {
		t.Fatal("instance ref reported as port")
	}
	if ir.Cap() <= 0 {
		t.Fatal("input pin cap zero")
	}
	if ir.String() != "u1/A" || r.String() != "port:clk" {
		t.Fatalf("String: %s %s", ir, r)
	}
}

func TestInstanceBounds(t *testing.T) {
	d := tiny(t)
	u1 := d.Instance("u1")
	u1.Loc = geom.Pt(3, 4)
	b := u1.Bounds()
	if b.Lx != 3 || b.Ly != 4 ||
		math.Abs(b.W()-u1.Master.Width) > 1e-9 || math.Abs(b.H()-u1.Master.Height) > 1e-9 {
		t.Fatalf("Bounds = %v", b)
	}
	c := u1.Center()
	if c.X <= 3 || c.Y <= 4 {
		t.Fatalf("Center = %v", c)
	}
}

func TestDieString(t *testing.T) {
	if LogicDie.String() != "logic" || MacroDie.String() != "macro" {
		t.Fatal("die names wrong")
	}
}

func TestNetPins(t *testing.T) {
	d := tiny(t)
	n := d.Net("n_mid")
	ps := n.Pins()
	if len(ps) != 2 || ps[0] != n.Driver {
		t.Fatal("Pins wrong")
	}
}

func TestCountsAndTruncateTo(t *testing.T) {
	d := tiny(t)
	nI, nN := d.Counts()
	if nI != 2 || nN != 4 {
		t.Fatalf("Counts = %d, %d", nI, nN)
	}
	// Append then roll back.
	extra := d.AddInstance("extra", d.Lib.MustCell("BUF_X1"))
	d.AddNet("extra_net", IPin(extra, "Y"))
	d.TruncateTo(nI, nN)
	if got, gotN := d.Counts(); got != nI || gotN != nN {
		t.Fatalf("after truncate: %d, %d", got, gotN)
	}
	if d.Instance("extra") != nil || d.Net("extra_net") != nil {
		t.Fatal("truncated entries still resolvable by name")
	}
	// Names can be reused after truncation.
	d.AddInstance("extra", d.Lib.MustCell("BUF_X1"))
}

func TestTruncateToGrowPanics(t *testing.T) {
	d := tiny(t)
	defer func() {
		if recover() == nil {
			t.Fatal("growing TruncateTo did not panic")
		}
	}()
	d.TruncateTo(100, 100)
}

func TestWriteDOT(t *testing.T) {
	d := tiny(t)
	var sb strings.Builder
	if err := d.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"tiny\"", `"u1"`, `"ff"`, `"port:clk"`,
		`"u1" -> "ff"`, "style=dashed", "}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q\n%s", want, out)
		}
	}
}
