// Package netlist models the gate-level design handed to the physical
// flow: cell/macro instances, top-level ports and the nets connecting
// them. Instances carry their placement state (location, orientation,
// die, fixed flag) so the same structure flows through floorplanning,
// placement, optimization and analysis.
package netlist

import (
	"fmt"
	"sort"

	"macro3d/internal/cell"
	"macro3d/internal/geom"
)

// Die identifies which die of an F2F stack an object belongs to.
type Die uint8

// Dies of a macro-on-logic stack. 2D designs use only LogicDie.
const (
	LogicDie Die = iota
	MacroDie
)

func (d Die) String() string {
	if d == MacroDie {
		return "macro"
	}
	return "logic"
}

// Instance is one placed occurrence of a library master.
type Instance struct {
	Name   string
	Master *cell.Cell
	ID     int // index in Design.Instances

	Loc    geom.Point // lower-left corner, µm
	Orient geom.Orient
	Fixed  bool // pre-placed (macros, pads); placers must not move it
	Die    Die

	// Placed marks instances that have been assigned a legal location.
	Placed bool
}

// Bounds returns the occupied substrate rectangle.
func (i *Instance) Bounds() geom.Rect {
	return geom.RectWH(i.Loc, i.Master.Width, i.Master.Height)
}

// Center returns the footprint centre.
func (i *Instance) Center() geom.Point {
	return geom.Pt(i.Loc.X+i.Master.Width/2, i.Loc.Y+i.Master.Height/2)
}

// PinLoc returns the absolute location of the named pin under the
// instance's orientation.
func (i *Instance) PinLoc(pin string) geom.Point {
	p := i.Master.Pin(pin)
	if p == nil {
		panic(fmt.Sprintf("netlist: instance %q has no pin %q on %s", i.Name, pin, i.Master.Name))
	}
	local := i.Orient.Apply(p.Offset, i.Master.Width, i.Master.Height)
	return i.Loc.Add(local)
}

// IsMacro reports whether the master is a hard macro.
func (i *Instance) IsMacro() bool { return i.Master.Kind == cell.KindMacro }

// Port is a top-level I/O of the design.
type Port struct {
	Name  string
	Dir   cell.PinDir
	Loc   geom.Point // fixed edge location
	Layer string     // pin layer (the case study pins everything on M6)
	ID    int

	// HalfCycle marks inter-tile ports: the path through this port is
	// constrained to half a clock period so that abutted tile
	// instances close timing at the full period (paper §V-1).
	HalfCycle bool

	// ExtCap is the external load seen by output ports, fF.
	ExtCap float64
	// ExtDelay is the arrival time offset for input ports, ps.
	ExtDelay float64
}

// PinRef identifies one connection point of a net: either an instance
// pin (Inst != nil) or a top-level port.
type PinRef struct {
	Inst *Instance
	Pin  string // pin name on Inst's master; empty for ports
	Port *Port
}

// IsPort reports whether the reference is a top-level port.
func (r PinRef) IsPort() bool { return r.Port != nil }

// Loc returns the absolute location of the connection point.
func (r PinRef) Loc() geom.Point {
	if r.Port != nil {
		return r.Port.Loc
	}
	return r.Inst.PinLoc(r.Pin)
}

// Layer returns the metal layer of the connection point.
func (r PinRef) Layer() string {
	if r.Port != nil {
		return r.Port.Layer
	}
	return r.Inst.Master.Pin(r.Pin).Layer
}

// Cap returns the input capacitance contributed by this connection, fF.
func (r PinRef) Cap() float64 {
	if r.Port != nil {
		return r.Port.ExtCap
	}
	return r.Inst.Master.Pin(r.Pin).Cap
}

func (r PinRef) String() string {
	if r.Port != nil {
		return "port:" + r.Port.Name
	}
	return r.Inst.Name + "/" + r.Pin
}

// Net is a signal with one driver and any number of sinks.
type Net struct {
	Name   string
	ID     int
	Driver PinRef
	Sinks  []PinRef

	// Clock marks clock-distribution nets; they are routed by CTS, not
	// the signal router.
	Clock bool

	// Weight biases the placer's attraction for this net (criticality).
	Weight float64
}

// Pins returns driver and sinks as one slice.
func (n *Net) Pins() []PinRef {
	out := make([]PinRef, 0, len(n.Sinks)+1)
	out = append(out, n.Driver)
	out = append(out, n.Sinks...)
	return out
}

// PinLocs returns the locations of all connection points.
func (n *Net) PinLocs() []geom.Point {
	pts := make([]geom.Point, 0, len(n.Sinks)+1)
	for _, p := range n.Pins() {
		pts = append(pts, p.Loc())
	}
	return pts
}

// HPWL returns the half-perimeter wirelength of the net, µm.
func (n *Net) HPWL() float64 { return geom.HPWL(n.PinLocs()) }

// Design is a flat gate-level netlist plus its placement state.
type Design struct {
	Name      string
	Lib       *cell.Library
	Instances []*Instance
	Nets      []*Net
	Ports     []*Port

	instByName map[string]*Instance
	netByName  map[string]*Net
	portByName map[string]*Port
}

// NewDesign returns an empty design over the given library.
func NewDesign(name string, lib *cell.Library) *Design {
	return &Design{
		Name:       name,
		Lib:        lib,
		instByName: make(map[string]*Instance),
		netByName:  make(map[string]*Net),
		portByName: make(map[string]*Port),
	}
}

// AddInstance creates an instance of the named master.
func (d *Design) AddInstance(name string, master *cell.Cell) *Instance {
	if master == nil {
		panic(fmt.Sprintf("netlist: nil master for instance %q", name))
	}
	if _, dup := d.instByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate instance %q", name))
	}
	inst := &Instance{Name: name, Master: master, ID: len(d.Instances)}
	d.Instances = append(d.Instances, inst)
	d.instByName[name] = inst
	return inst
}

// AddPort creates a top-level port.
func (d *Design) AddPort(name string, dir cell.PinDir) *Port {
	if _, dup := d.portByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate port %q", name))
	}
	p := &Port{Name: name, Dir: dir, ID: len(d.Ports)}
	d.Ports = append(d.Ports, p)
	d.portByName[name] = p
	return p
}

// AddNet creates a net driven by driver feeding sinks.
func (d *Design) AddNet(name string, driver PinRef, sinks ...PinRef) *Net {
	if _, dup := d.netByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net %q", name))
	}
	n := &Net{Name: name, ID: len(d.Nets), Driver: driver, Sinks: sinks, Weight: 1}
	d.Nets = append(d.Nets, n)
	d.netByName[name] = n
	return n
}

// Instance returns the named instance, or nil.
func (d *Design) Instance(name string) *Instance { return d.instByName[name] }

// Net returns the named net, or nil.
func (d *Design) Net(name string) *Net { return d.netByName[name] }

// Port returns the named port, or nil.
func (d *Design) Port(name string) *Port { return d.portByName[name] }

// IPin makes a PinRef for inst/pin.
func IPin(inst *Instance, pin string) PinRef { return PinRef{Inst: inst, Pin: pin} }

// PPin makes a PinRef for a top-level port.
func PPin(p *Port) PinRef { return PinRef{Port: p} }

// Validate checks structural sanity: every net has a legal driver,
// every referenced pin exists with the right direction, and clock pins
// are only driven by clock nets.
func (d *Design) Validate() error {
	for _, n := range d.Nets {
		if n.Driver.Inst == nil && n.Driver.Port == nil {
			return fmt.Errorf("netlist: net %q has no driver", n.Name)
		}
		if n.Driver.Inst != nil {
			p := n.Driver.Inst.Master.Pin(n.Driver.Pin)
			if p == nil {
				return fmt.Errorf("netlist: net %q driver pin %s missing", n.Name, n.Driver)
			}
			if p.Dir != cell.DirOut {
				return fmt.Errorf("netlist: net %q driven by non-output %s", n.Name, n.Driver)
			}
		} else if n.Driver.Port.Dir != cell.DirIn {
			return fmt.Errorf("netlist: net %q driven by non-input port %s", n.Name, n.Driver.Port.Name)
		}
		for _, s := range n.Sinks {
			if s.Inst != nil {
				p := s.Inst.Master.Pin(s.Pin)
				if p == nil {
					return fmt.Errorf("netlist: net %q sink pin %s missing", n.Name, s)
				}
				if p.Dir != cell.DirIn {
					return fmt.Errorf("netlist: net %q sinks at non-input %s", n.Name, s)
				}
			} else if s.Port == nil {
				return fmt.Errorf("netlist: net %q has empty sink ref", n.Name)
			} else if s.Port.Dir != cell.DirOut {
				return fmt.Errorf("netlist: net %q sinks at non-output port %s", n.Name, s.Port.Name)
			}
		}
	}
	// No instance pin may be driven by two nets.
	driven := make(map[string]string)
	for _, n := range d.Nets {
		for _, s := range n.Sinks {
			if s.Inst != nil {
				key := s.Inst.Name + "/" + s.Pin
				if prev, dup := driven[key]; dup {
					return fmt.Errorf("netlist: pin %s driven by both %q and %q", key, prev, n.Name)
				}
				driven[key] = n.Name
			}
		}
	}
	return nil
}

// Stats summarizes the design for reports and generators.
type Stats struct {
	NumInstances int
	NumStdCells  int
	NumMacros    int
	NumSeq       int
	NumNets      int
	NumPorts     int

	StdCellArea float64 // µm²
	MacroArea   float64 // µm²
	TotalHPWL   float64 // µm
}

// ComputeStats walks the design once.
func (d *Design) ComputeStats() Stats {
	var s Stats
	s.NumInstances = len(d.Instances)
	s.NumNets = len(d.Nets)
	s.NumPorts = len(d.Ports)
	for _, i := range d.Instances {
		switch {
		case i.IsMacro():
			s.NumMacros++
			s.MacroArea += i.Master.Area()
		case i.Master.Kind == cell.KindFiller:
			// fillers are not logic
		default:
			s.NumStdCells++
			s.StdCellArea += i.Master.Area()
		}
		if i.Master.IsSequential() {
			s.NumSeq++
		}
	}
	for _, n := range d.Nets {
		s.TotalHPWL += n.HPWL()
	}
	return s
}

// TotalHPWL sums net half-perimeter wirelengths, µm.
func (d *Design) TotalHPWL() float64 {
	t := 0.0
	for _, n := range d.Nets {
		t += n.HPWL()
	}
	return t
}

// NetsOfInstance builds the instance→nets adjacency used by placers
// and optimizers. The result is indexed by Instance.ID.
func (d *Design) NetsOfInstance() [][]*Net {
	adj := make([][]*Net, len(d.Instances))
	for _, n := range d.Nets {
		for _, p := range n.Pins() {
			if p.Inst != nil {
				adj[p.Inst.ID] = append(adj[p.Inst.ID], n)
			}
		}
	}
	return adj
}

// Macros returns all macro instances in deterministic order.
func (d *Design) Macros() []*Instance {
	var ms []*Instance
	for _, i := range d.Instances {
		if i.IsMacro() {
			ms = append(ms, i)
		}
	}
	sort.Slice(ms, func(a, b int) bool { return ms[a].Name < ms[b].Name })
	return ms
}

// StdCells returns all movable standard-cell instances (excluding
// macros and fillers).
func (d *Design) StdCells() []*Instance {
	var cs []*Instance
	for _, i := range d.Instances {
		if !i.IsMacro() && i.Master.Kind != cell.KindFiller {
			cs = append(cs, i)
		}
	}
	return cs
}

// Counts returns the current instance and net counts, used together
// with TruncateTo to checkpoint/rollback incremental edits.
func (d *Design) Counts() (instances, nets int) {
	return len(d.Instances), len(d.Nets)
}

// TruncateTo drops instances and nets appended after a checkpoint
// (they must be the trailing entries). Name indices are kept
// consistent. It panics if asked to grow.
func (d *Design) TruncateTo(instances, nets int) {
	if instances > len(d.Instances) || nets > len(d.Nets) {
		panic("netlist: TruncateTo cannot grow a design")
	}
	for _, inst := range d.Instances[instances:] {
		delete(d.instByName, inst.Name)
	}
	d.Instances = d.Instances[:instances]
	for _, n := range d.Nets[nets:] {
		delete(d.netByName, n.Name)
	}
	d.Nets = d.Nets[:nets]
}

// Resize swaps an instance's master within its sizing family, keeping
// the connection pin names valid (families share pin names).
func (d *Design) Resize(inst *Instance, to *cell.Cell) error {
	if to == nil {
		return fmt.Errorf("netlist: resize of %q to nil master", inst.Name)
	}
	if inst.Master.Family == "" || to.Family != inst.Master.Family {
		return fmt.Errorf("netlist: resize of %q across families %q→%q",
			inst.Name, inst.Master.Family, to.Family)
	}
	inst.Master = to
	return nil
}
