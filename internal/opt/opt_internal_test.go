package opt

import (
	"math"
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/ddb"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

func TestClusterSinks(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("c", lib)
	var sinks []netlist.PinRef
	// Two spatial clumps of 6 cells each.
	for i := 0; i < 12; i++ {
		u := d.AddInstance("u"+string(rune('a'+i)), lib.MustCell("INV_X1"))
		if i < 6 {
			u.Loc = geom.Pt(float64(i), 0)
		} else {
			u.Loc = geom.Pt(1000+float64(i), 0)
		}
		sinks = append(sinks, netlist.IPin(u, "A"))
	}
	groups := clusterSinks(sinks, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Each group is spatially coherent: max internal span ≪ 1000.
	for _, g := range groups {
		var pts []geom.Point
		for _, s := range g {
			pts = append(pts, s.Loc())
		}
		bb := geom.BoundingBox(pts)
		if bb.W() > 100 {
			t.Fatalf("cluster spans %v µm — clumps split wrongly", bb.W())
		}
	}
	// Total membership preserved.
	if len(groups[0])+len(groups[1]) != 12 {
		t.Fatal("lost sinks")
	}
	// k larger than sinks degrades gracefully.
	groups = clusterSinks(sinks[:3], 8)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 3 {
		t.Fatal("over-split lost sinks")
	}
}

// buildCtx creates a one-net context for micro-tests.
func buildCtx(t *testing.T, fanout int, span float64) (*Context, *netlist.Net) {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("x", lib)
	drv := d.AddInstance("drv", lib.MustCell("INV_X1"))
	drv.Loc = geom.Pt(10, 10)
	drv.Placed = true
	refs := []netlist.PinRef{}
	for i := 0; i < fanout; i++ {
		u := d.AddInstance("s"+string(rune('a'+i)), lib.MustCell("INV_X4"))
		u.Loc = geom.Pt(10+span*float64(i+1)/float64(fanout), 10+float64(i%3)*20)
		u.Placed = true
		refs = append(refs, netlist.IPin(u, "A"))
	}
	n := d.AddNet("net", netlist.IPin(drv, "Y"), refs...)
	beol, _ := tech.NewBEOL28("l", 6)
	db := route.NewDB(geom.R(0, 0, span+100, 200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	corner := tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
	ex := extract.Extract(d, res, db, corner)
	ctx := &Context{Design: d, DB: db, Routes: res, Ex: ex, Corner: corner,
		DDB: ddb.New(d, db, res, ex, corner)}
	return ctx, n
}

func TestInsertFanoutBufferShieldsDriver(t *testing.T) {
	ctx, n := buildCtx(t, 8, 1500)
	before := ctx.Ex.Nets[n.ID].CTotal()
	seq := 0
	ctx.txn = ctx.DDB.Begin()
	if err := insertFanoutBuffer(ctx, n, Options{}.withDefaults(), &seq); err != nil {
		t.Fatal(err)
	}
	ctx.txn.Commit()
	after := ctx.Ex.Nets[n.ID].CTotal()
	if after >= before/2 {
		t.Fatalf("driver load not shielded: %v → %v fF", before, after)
	}
	// Every original sink is still reachable (design valid).
	if err := ctx.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inserted buffers are inside the die.
	for _, inst := range ctx.Design.Instances {
		if !ctx.DB.Grid.Region.ContainsRect(inst.Bounds()) && inst.Placed {
			t.Fatalf("%s outside die", inst.Name)
		}
	}
}

func TestSizeForLoad(t *testing.T) {
	ctx, n := buildCtx(t, 8, 1500)
	drv := ctx.Design.Instance("drv")
	to := sizeForLoad(ctx, drv)
	if to == nil {
		t.Fatal("no upsize suggested for a heavily loaded X1")
	}
	load := ctx.Ex.Nets[n.ID].CTotal()
	if to.DriveRes*load > 100+1e-9 {
		// Must be the family top if even it cannot meet the budget.
		fam := ctx.Design.Lib.Family(drv.Master.Family)
		if to.Name != fam[len(fam)-1].Name {
			t.Fatalf("suggested %s does not meet budget and is not the top drive", to.Name)
		}
	}
	// After resizing to the suggestion, no further suggestion.
	if err := ctx.Design.Resize(drv, to); err != nil {
		t.Fatal(err)
	}
	if again := sizeForLoad(ctx, drv); again != nil && again.Drive <= to.Drive {
		t.Fatalf("suggested a non-stronger size %s after %s", again.Name, to.Name)
	}
}

func TestTxnRollback(t *testing.T) {
	ctx, n := buildCtx(t, 6, 1200)
	d := ctx.Design
	nInst, nNets := d.Counts()
	drvMaster := d.Instance("drv").Master
	sinks0 := len(n.Sinks)
	wl0 := ctx.Routes.Routes[n.ID].WL

	txn := ctx.DDB.Begin()
	ctx.txn = txn
	// Mutate heavily: resize, fanout-buffer.
	if err := txn.Resize(d.Instance("drv"), d.Lib.MustCell("INV_X32")); err != nil {
		t.Fatal(err)
	}
	seq := 0
	if err := insertFanoutBuffer(ctx, n, Options{}.withDefaults(), &seq); err != nil {
		t.Fatal(err)
	}
	if ni, _ := d.Counts(); ni == nInst {
		t.Fatal("mutation added nothing — test is vacuous")
	}

	nets, insts, topo := txn.Rollback()
	if !topo {
		t.Fatal("topology change not reported by the journal")
	}
	if len(nets) == 0 || len(insts) == 0 {
		t.Fatal("rollback returned an empty dirty view")
	}
	for _, id := range nets {
		if id >= nNets {
			t.Fatalf("dirty net %d survived past truncation point %d", id, nNets)
		}
	}
	for _, id := range insts {
		if id >= nInst {
			t.Fatalf("dirty inst %d survived past truncation point %d", id, nInst)
		}
	}

	if ni, nn := d.Counts(); ni != nInst || nn != nNets {
		t.Fatalf("counts after rollback: %d/%d want %d/%d", ni, nn, nInst, nNets)
	}
	if d.Instance("drv").Master != drvMaster {
		t.Fatal("master not restored")
	}
	if len(n.Sinks) != sinks0 {
		t.Fatalf("sinks = %d, want %d", len(n.Sinks), sinks0)
	}
	if math.Abs(ctx.Routes.Routes[n.ID].WL-wl0) > 1e-9 {
		t.Fatal("route not restored")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Extraction consistent with a fresh run.
	fresh := extract.Extract(d, ctx.Routes, ctx.DB, ctx.Corner)
	if math.Abs(fresh.CWireTotal-ctx.Ex.CWireTotal) > 1e-6 {
		t.Fatalf("extraction drift after rollback: %v vs %v", ctx.Ex.CWireTotal, fresh.CWireTotal)
	}
}

func TestPathScore(t *testing.T) {
	r := &sta.Report{Paths: []sta.Path{{Delay: 100}, {Delay: 50}}}
	if pathScore(r) != 150 {
		t.Fatalf("pathScore = %v", pathScore(r))
	}
	if pathScore(&sta.Report{}) != 0 {
		t.Fatal("empty score nonzero")
	}
}

func TestEcoPlaceFallbackClamp(t *testing.T) {
	// Without a FreeSpace, ecoPlace clamps into the die.
	ctx, _ := buildCtx(t, 2, 100)
	buf := ctx.Design.Lib.MustCell("BUF_X16")
	p := ecoPlace(ctx, geom.Pt(-50, 1e6), buf)
	die := ctx.DB.Grid.Region
	if p.X < die.Lx || p.Y+buf.Height > die.Uy {
		t.Fatalf("clamp failed: %v", p)
	}
}
