package opt

import (
	"testing"

	"macro3d/internal/cell"
	"macro3d/internal/extract"
	"macro3d/internal/geom"
	"macro3d/internal/netlist"
	"macro3d/internal/route"
	"macro3d/internal/sta"
	"macro3d/internal/tech"
)

func typical() tech.CornerScale {
	return tech.CornerScale{CellDelay: 1, WireR: 1, WireC: 1, Leakage: 1}
}

// longPath: FF → 3 weak inverters spread over a long span → FF. Ripe
// for both upsizing and buffering.
func longPath(t *testing.T, span float64) *Context {
	t.Helper()
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("lp", lib)
	clk := d.AddPort("clk", cell.DirIn)
	clk.Loc = geom.Pt(0, 0)
	ff1 := d.AddInstance("ff1", lib.MustCell("DFF_X1"))
	ff1.Loc = geom.Pt(10, 10)
	ff2 := d.AddInstance("ff2", lib.MustCell("DFF_X1"))
	ff2.Loc = geom.Pt(10+span, 10)
	prev := netlist.IPin(ff1, "Q")
	for i := 0; i < 3; i++ {
		u := d.AddInstance("u"+string(rune('a'+i)), lib.MustCell("INV_X1"))
		u.Loc = geom.Pt(10+span*float64(i+1)/4, 10)
		u.Placed = true
		d.AddNet("n"+string(rune('a'+i)), prev, netlist.IPin(u, "A"))
		prev = netlist.IPin(u, "Y")
	}
	d.AddNet("n_end", prev, netlist.IPin(ff2, "D"))
	cn := d.AddNet("clk", netlist.PPin(clk), netlist.IPin(ff1, "CK"), netlist.IPin(ff2, "CK"))
	cn.Clock = true

	beol, _ := tech.NewBEOL28("logic", 6)
	db := route.NewDB(geom.R(0, 0, span+100, 200), beol, nil, route.Options{GCellPitch: 10})
	res, err := route.RouteDesign(d, db)
	if err != nil {
		t.Fatal(err)
	}
	ex := extract.Extract(d, res, db, typical())
	return &Context{Design: d, DB: db, Routes: res, Ex: ex, Corner: typical()}
}

func TestOptimizeImprovesTiming(t *testing.T) {
	ctx := longPath(t, 2000)
	before, err := sta.Analyze(ctx.Design, ctx.Ex, 1e6, sta.Options{Corner: ctx.Corner})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(ctx, sta.Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("period %v → %v ps (%d resized, %d buffers)",
		before.MinPeriod, res.Report.MinPeriod, res.Resized, res.Buffers)
	if res.Report.MinPeriod >= before.MinPeriod {
		t.Fatalf("no improvement: %v → %v", before.MinPeriod, res.Report.MinPeriod)
	}
	if res.Resized == 0 && res.Buffers == 0 {
		t.Fatal("no edits recorded despite improvement")
	}
	// Design must remain structurally valid after buffering edits.
	if err := ctx.Design.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrozenMakesNoEdits(t *testing.T) {
	ctx := longPath(t, 2000)
	n0 := len(ctx.Design.Instances)
	res, err := Optimize(ctx, sta.Options{}, Options{Frozen: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resized != 0 || res.Buffers != 0 {
		t.Fatal("frozen mode made edits")
	}
	if len(ctx.Design.Instances) != n0 {
		t.Fatal("frozen mode added instances")
	}
	if res.Report == nil {
		t.Fatal("frozen mode must still report timing")
	}
}

func TestTargetPeriodStopsEarly(t *testing.T) {
	ctx1 := longPath(t, 2000)
	maxRes, err := Optimize(ctx1, sta.Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A relaxed target: barely any edits needed.
	ctx2 := longPath(t, 2000)
	relaxed, err := Optimize(ctx2, sta.Options{}, Options{TargetPeriod: maxRes.Report.MinPeriod * 3})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Resized+relaxed.Buffers >= maxRes.Resized+maxRes.Buffers {
		t.Fatalf("relaxed target made as many edits (%d) as max-perf (%d)",
			relaxed.Resized+relaxed.Buffers, maxRes.Resized+maxRes.Buffers)
	}
	// Iso-performance effect: fewer edits → less pin cap → less
	// energy (checked at flow level; here just area).
	if LogicCellArea(ctx2.Design) > LogicCellArea(ctx1.Design) {
		t.Fatal("relaxed target grew more area than max-perf")
	}
}

func TestBufferInsertionRewiresCorrectly(t *testing.T) {
	ctx := longPath(t, 3000)
	if _, err := Optimize(ctx, sta.Options{}, Options{MaxIters: 4}); err != nil {
		t.Fatal(err)
	}
	d := ctx.Design
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Any inserted buffer must have exactly one driven input and one
	// output net.
	for _, inst := range d.Instances {
		if len(inst.Name) > 7 && inst.Name[:7] == "optbuf_" {
			driven := false
			drives := false
			for _, n := range d.Nets {
				if n.Driver.Inst == inst {
					drives = true
				}
				for _, s := range n.Sinks {
					if s.Inst == inst {
						driven = true
					}
				}
			}
			if !driven || !drives {
				t.Fatalf("buffer %s dangling (driven=%v drives=%v)", inst.Name, driven, drives)
			}
		}
	}
	// Extraction table covers all nets.
	for id := range d.Nets {
		if d.Nets[id].Clock {
			continue
		}
		if id >= len(ctx.Ex.Nets) || ctx.Ex.Nets[id] == nil {
			t.Fatalf("net %s missing extraction", d.Nets[id].Name)
		}
	}
}

func TestLogicCellArea(t *testing.T) {
	lib := cell.NewStdLib28(cell.DefaultLibOptions())
	d := netlist.NewDesign("a", lib)
	d.AddInstance("u1", lib.MustCell("INV_X1"))
	d.AddInstance("u2", lib.MustCell("INV_X4"))
	sram, _ := cell.NewSRAM(cell.SRAMSpec{Name: "m", Words: 512, Bits: 8})
	d.AddInstance("mem", sram)
	d.AddInstance("f", lib.MustCell("FILL_X1"))
	want := lib.MustCell("INV_X1").Area() + lib.MustCell("INV_X4").Area()
	if got := LogicCellArea(d); got != want {
		t.Fatalf("LogicCellArea = %v, want %v", got, want)
	}
}
